// Graph persistence round-trip and error-path tests.

#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace graphrare {
namespace graph {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(GraphIoTest, RoundTrip) {
  Graph g = Graph::FromEdgeListOrDie(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  const std::string path = TempPath("roundtrip.graph");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 5);
  EXPECT_EQ(loaded->edges(), g.edges());
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyGraphRoundTrip) {
  Graph g = Graph::FromEdgeListOrDie(3, {});
  const std::string path = TempPath("empty.graph");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), 3);
  EXPECT_EQ(loaded->num_edges(), 0);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  auto r = LoadGraph(TempPath("does-not-exist.graph"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoTest, MalformedHeaderRejected) {
  const std::string path = TempPath("malformed.graph");
  std::ofstream(path) << "not a header\n";
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, TruncatedEdgeListRejected) {
  const std::string path = TempPath("truncated.graph");
  std::ofstream(path) << "4 3\n0 1\n1 2\n";  // promises 3 edges, has 2
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  // Truncation is reported with where the file actually ended.
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("found 2"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, MalformedEdgeReportsItsLine) {
  const std::string path = TempPath("bad_edge.graph");
  std::ofstream(path) << "4 2\n0 1\n2 x\n";  // line 3 is not 'u v'
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, TrailingJunkOnHeaderRejected) {
  const std::string path = TempPath("junk_header.graph");
  std::ofstream(path) << "4 1 extra\n0 1\n";
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyFileRejected) {
  const std::string path = TempPath("empty_file.graph");
  std::ofstream out(path);
  out.close();
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphIoTest, OutOfRangeEndpointRejected) {
  const std::string path = TempPath("oob.graph");
  std::ofstream(path) << "2 1\n0 7\n";
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(GraphIoTest, DuplicateEdgesRejected) {
  const std::string path = TempPath("dup.graph");
  std::ofstream(path) << "3 2\n0 1\n1 0\n";  // same undirected edge twice
  auto r = LoadGraph(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, OptimizedGraphExportImport) {
  // End-to-end: rewire, save, reload, same homophily.
  Graph g = Graph::FromEdgeListOrDie(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  const std::string path = TempPath("rewired.graph");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  const std::vector<int64_t> labels = {0, 1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(loaded->EdgeHomophily(labels), g.EdgeHomophily(labels));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graph
}  // namespace graphrare

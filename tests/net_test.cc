// Network-tier unit tests that need no socket: the incremental HTTP/1.1
// parser's negative-path surface (truncation, oversized inputs, malformed
// framing, pipelining), the JSON body parser, the hardened stats helpers,
// and the continuous batcher's contracts — bitwise determinism against a
// direct PredictBatch call for any arrival/batch interleaving, queue-full
// admission control, drain-on-Stop, and hot-swap at the batcher seam.

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/graphrare.h"
#include "net/batcher.h"
#include "net/http.h"
#include "net/json.h"

namespace graphrare {
namespace {

// ---- HTTP parser: positive paths ------------------------------------------

TEST(HttpParserTest, ParsesSimpleGet) {
  net::HttpParser parser;
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_TRUE(parser.request().keep_alive);
  EXPECT_TRUE(parser.request().body.empty());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, ParsesPostBodyByContentLength) {
  net::HttpParser parser;
  parser.Feed(
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, ByteByByteFeedReachesReady) {
  const std::string wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
  net::HttpParser parser;
  for (size_t i = 0; i < wire.size(); ++i) {
    const net::HttpParser::State state = parser.Next();
    ASSERT_EQ(state, net::HttpParser::State::kNeedMore)
        << "premature state after " << i << " bytes";
    parser.Feed(&wire[i], 1);
  }
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParserTest, HeaderNamesLowercasedValuesTrimmed) {
  net::HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nX-Thing:   padded value  \r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  const std::string* v = parser.request().FindHeader("x-thing");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "padded value");
  EXPECT_EQ(parser.request().FindHeader("absent"), nullptr);
}

TEST(HttpParserTest, KeepAliveResolution) {
  {
    net::HttpParser parser;  // 1.1 default: keep alive
    parser.Feed("GET / HTTP/1.1\r\n\r\n");
    ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
    EXPECT_TRUE(parser.request().keep_alive);
  }
  {
    net::HttpParser parser;  // 1.1 + Connection: close
    parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    net::HttpParser parser;  // 1.0 default: close
    parser.Feed("GET / HTTP/1.0\r\n\r\n");
    ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
    EXPECT_FALSE(parser.request().keep_alive);
  }
  {
    net::HttpParser parser;  // 1.0 + keep-alive opt-in
    parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
    ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
    EXPECT_TRUE(parser.request().keep_alive);
  }
}

TEST(HttpParserTest, PipelinedRequestsParseInOrder) {
  net::HttpParser parser;
  parser.Feed(
      "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy"
      "GET /b HTTP/1.1\r\n\r\n"
      "GET /c");  // trailing partial third request stays buffered
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_EQ(parser.request().body, "xy");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.Next(), net::HttpParser::State::kNeedMore);
  EXPECT_GT(parser.buffered_bytes(), 0u);
  parser.Feed(" HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().target, "/c");
}

// ---- HTTP parser: negative paths ------------------------------------------

TEST(HttpParserTest, TruncatedRequestLineNeedsMore) {
  net::HttpParser parser;
  parser.Feed("GET /heal");
  EXPECT_EQ(parser.Next(), net::HttpParser::State::kNeedMore);
  parser.Feed("thz HTTP/1.1\r\n");
  EXPECT_EQ(parser.Next(), net::HttpParser::State::kNeedMore);
  parser.Feed("\r\n");
  EXPECT_EQ(parser.Next(), net::HttpParser::State::kReady);
}

TEST(HttpParserTest, OversizedRequestLineIs431) {
  net::HttpLimits limits;
  limits.max_request_line = 64;
  net::HttpParser parser(limits);
  parser.Feed("GET /" + std::string(200, 'a'));  // no CRLF yet — still over
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 431);
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  net::HttpLimits limits;
  limits.max_header_bytes = 128;
  net::HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(300, 'b') +
              "\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 431);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  net::HttpLimits limits;
  limits.max_headers = 4;
  net::HttpParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 8; ++i) wire += "H" + std::to_string(i) + ": v\r\n";
  parser.Feed(wire + "\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  net::HttpLimits limits;
  limits.max_body_bytes = 16;
  net::HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 413);
}

TEST(HttpParserTest, MalformedFramingIs400) {
  const char* kBad[] = {
      "GET/missing-spaces HTTP/1.1\r\n\r\n",
      "GET  /double-space HTTP/1.1\r\n\r\n",
      "GET / HTTP/1.1 extra\r\n\r\n",
      "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
      "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n",
      "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
  };
  for (const char* wire : kBad) {
    SCOPED_TRACE(wire);
    net::HttpParser parser;
    parser.Feed(wire);
    ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
    EXPECT_EQ(parser.error_status_code(), 400);
  }
}

TEST(HttpParserTest, ConflictingContentLengthIs400) {
  // RFC 7230 §3.3.2: differing Content-Length values are a smuggling
  // vector — a proxy in front may frame the body by the other one.
  net::HttpParser parser;
  parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n"
      "helloX");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 400);
}

TEST(HttpParserTest, IdenticalDuplicateContentLengthParses) {
  net::HttpParser parser;
  parser.Feed(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n"
      "hello");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kReady);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, UnsupportedVersionIs505) {
  net::HttpParser parser;
  parser.Feed("GET / HTTP/2.0\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 505);
}

TEST(HttpParserTest, ChunkedTransferIs501) {
  net::HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  EXPECT_EQ(parser.error_status_code(), 501);
}

TEST(HttpParserTest, ErrorsAreSticky) {
  net::HttpParser parser;
  parser.Feed("BROKEN\r\n\r\n");
  ASSERT_EQ(parser.Next(), net::HttpParser::State::kError);
  parser.Feed("GET / HTTP/1.1\r\n\r\n");  // resync is impossible by design
  EXPECT_EQ(parser.Next(), net::HttpParser::State::kError);
}

TEST(HttpResponseTest, SerializeCarriesFramingHeaders) {
  net::HttpResponse r;
  r.status = 200;
  r.body = "{\"ok\":true}";
  const std::string wire = net::SerializeResponse(r);
  EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Connection: close"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);

  r.status = 503;
  r.keep_alive = false;
  const std::string closed = net::SerializeResponse(r);
  EXPECT_EQ(closed.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
}

// ---- JSON ------------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  auto doc = net::JsonValue::Parse(
      R"({"nodes":[1,2,3],"k":2,"opts":{"deep":[true,null,"s\n"]}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const net::JsonValue* nodes = doc->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_TRUE(nodes->is_array());
  ASSERT_EQ(nodes->items().size(), 3u);
  EXPECT_EQ(nodes->items()[1].AsInt64().value(), 2);
  EXPECT_EQ(doc->Find("k")->AsInt64().value(), 2);
  const net::JsonValue* deep = doc->Find("opts")->Find("deep");
  ASSERT_NE(deep, nullptr);
  EXPECT_TRUE(deep->items()[0].AsBool());
  EXPECT_TRUE(deep->items()[1].is_null());
  EXPECT_EQ(deep->items()[2].AsString(), "s\n");
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  auto doc = net::JsonValue::Parse(R"("aé中b")");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->AsString(), "a\xC3\xA9\xE4\xB8\xAD" "b");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  const char* kBad[] = {
      "",        "{",         "[1,]",      "{\"a\":}",  "nul",
      "1 2",     "\"open",    "{\"a\" 1}", "[1 2]",     "tru",
  };
  for (const char* text : kBad) {
    SCOPED_TRACE(text);
    EXPECT_FALSE(net::JsonValue::Parse(text).ok());
  }
}

TEST(JsonTest, EnforcesDepthBound) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  EXPECT_FALSE(net::JsonValue::Parse(deep, /*max_depth=*/32).ok());
  EXPECT_TRUE(net::JsonValue::Parse("[[[[0]]]]", /*max_depth=*/32).ok());
}

TEST(JsonTest, AsInt64RejectsNonIntegers) {
  EXPECT_FALSE(net::JsonValue::Parse("1.5")->AsInt64().ok());
  EXPECT_FALSE(net::JsonValue::Parse("\"7\"")->AsInt64().ok());
  EXPECT_FALSE(net::JsonValue::Parse("1e30")->AsInt64().ok());
  EXPECT_EQ(net::JsonValue::Parse("-42")->AsInt64().value(), -42);
}

TEST(JsonTest, EscapeRoundTripsThroughParse) {
  const std::string raw = "quote\" slash\\ ctrl\x01 tab\t";
  auto doc = net::JsonValue::Parse("\"" + net::JsonEscape(raw) + "\"");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->AsString(), raw);
}

// ---- Stats hardening -------------------------------------------------------

TEST(StatsTest, PercentileHandlesDegenerateInputs) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(Percentile({7.0}, 0.99), 7.0);
  const std::vector<double> two = {1.0, 9.0};
  EXPECT_EQ(Percentile(two, -1.0), 1.0);   // p clamped to [0, 1]
  EXPECT_EQ(Percentile(two, 2.0), 9.0);
}

TEST(StatsTest, SummarizeHandlesEmptyAndSingle) {
  const LatencySummary empty = Summarize({});
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.p99, 0.0);
  const LatencySummary one = Summarize({3.5});
  EXPECT_EQ(one.count, 1);
  EXPECT_EQ(one.mean, 3.5);
  EXPECT_EQ(one.p50, 3.5);
  EXPECT_EQ(one.max, 3.5);
}

TEST(StatsTest, SummarizeSortsInternally) {
  const LatencySummary s = Summarize({9.0, 1.0, 5.0, 3.0, 7.0});
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.p50, 5.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(StatsTest, RecorderIsExactBelowCapacity) {
  LatencyRecorder recorder(/*capacity=*/128);
  for (int i = 1; i <= 100; ++i) recorder.Record(static_cast<double>(i));
  const LatencySummary s = recorder.Summary();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 0.5);  // nearest rank of 1..100
}

TEST(StatsTest, RecorderReservoirKeepsBoundedPlausibleSample) {
  LatencyRecorder recorder(/*capacity=*/64);
  for (int i = 0; i < 10000; ++i) {
    recorder.Record(static_cast<double>(i % 100));  // values in [0, 99]
  }
  const LatencySummary s = recorder.Summary();
  EXPECT_EQ(s.count, 10000);  // observation count stays exact
  EXPECT_GE(s.p50, 0.0);
  EXPECT_LE(s.max, 99.0);
  EXPECT_GT(s.max, 50.0);  // a uniform reservoir can't miss the top half
}

// ---- Continuous batcher ----------------------------------------------------

serve::InferenceEngine MakeEngine(uint64_t model_seed,
                                  std::vector<int64_t> fanouts) {
  auto ds_or = data::MakeDatasetScaled("cornell", /*shrink=*/1, 3);
  GR_CHECK(ds_or.ok()) << ds_or.status().ToString();
  const data::Dataset& ds = *ds_or;
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = model_seed;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  auto artifact_or = core::PackageArtifact(*model, nn::BackboneKind::kGcn,
                                           mo, model_seed, ds.graph, ds);
  GR_CHECK(artifact_or.ok()) << artifact_or.status().ToString();
  serve::EngineOptions opts;
  opts.fanouts = std::move(fanouts);
  auto engine_or = serve::InferenceEngine::FromArtifact(
      std::move(artifact_or).value(), opts);
  GR_CHECK(engine_or.ok()) << engine_or.status().ToString();
  return std::move(engine_or).value();
}

std::shared_ptr<serve::EngineHandle> MakeHandle(uint64_t model_seed,
                                                std::vector<int64_t> fanouts) {
  return std::make_shared<serve::EngineHandle>(
      std::make_shared<const serve::InferenceEngine>(
          MakeEngine(model_seed, std::move(fanouts))));
}

std::vector<std::vector<int64_t>> SampleRequests() {
  return {{0, 1, 2}, {5}, {7, 9}, {11, 3}, {2},
          {42, 1},   {8}, {0},    {19, 20, 21}, {4, 4}};
}

void ExpectPredictionsBitwise(const std::vector<serve::Prediction>& a,
                              const std::vector<serve::Prediction>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].predicted_class, b[i].predicted_class);
    ASSERT_EQ(a[i].probabilities.size(), b[i].probabilities.size());
    EXPECT_EQ(0, std::memcmp(a[i].probabilities.data(),
                             b[i].probabilities.data(),
                             a[i].probabilities.size() * sizeof(float)));
  }
}

/// Submits every request in order and blocks until all completions land.
std::vector<Result<std::vector<serve::Prediction>>> RunThroughBatcher(
    net::ContinuousBatcher& batcher,
    const std::vector<std::vector<int64_t>>& requests) {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = requests.size();
  std::vector<Result<std::vector<serve::Prediction>>> results(
      requests.size(), Status::Internal("no completion delivered"));
  for (size_t i = 0; i < requests.size(); ++i) {
    const Status s = batcher.Submit(
        requests[i], [&, i](Result<std::vector<serve::Prediction>> r) {
          std::lock_guard<std::mutex> lock(mu);
          results[i] = std::move(r);
          if (--remaining == 0) cv.notify_one();
        });
    GR_CHECK(s.ok()) << s.ToString();
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  return results;
}

TEST(BatcherTest, ResponsesBitwiseEqualDirectPredictBatch) {
  // Sampled mode: answers depend on the sampling seed, so this is the
  // strong version of the contract — the arrival index must be the seed.
  const auto handle = MakeHandle(7, {3, 2});
  const auto requests = SampleRequests();
  const auto expected = handle->Get()->PredictBatch(requests);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Any scheduler shape must reproduce the direct call bitwise.
  const net::BatcherOptions kShapes[] = {
      {/*max_batch=*/1, /*max_queue_delay_ms=*/0.0, 1024, /*num_workers=*/1},
      {/*max_batch=*/4, /*max_queue_delay_ms=*/0.0, 1024, /*num_workers=*/2},
      {/*max_batch=*/16, /*max_queue_delay_ms=*/2.0, 1024, /*num_workers=*/4},
      {/*max_batch=*/3, /*max_queue_delay_ms=*/0.5, 1024, /*num_workers=*/3},
  };
  for (const net::BatcherOptions& options : kShapes) {
    SCOPED_TRACE(options.max_batch * 100 + options.num_workers);
    net::ContinuousBatcher batcher(handle, options);
    const auto results = RunThroughBatcher(batcher, requests);
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
      ExpectPredictionsBitwise(results[i].value(), expected.value()[i]);
    }
    batcher.Stop();
    const net::BatcherStats stats = batcher.Stats();
    EXPECT_EQ(stats.submitted, static_cast<int64_t>(requests.size()));
    EXPECT_EQ(stats.completed, static_cast<int64_t>(requests.size()));
    EXPECT_LE(stats.max_batch_seen, options.max_batch);
  }
}

TEST(BatcherTest, PacedArrivalsWithRacingDelayWaitersComplete) {
  // Regression: with several workers parked in the max_queue_delay wait,
  // one worker taking the whole queue used to leave the others re-entering
  // the fill-wait loop and reading queue_.front() of an empty deque.
  // Paced single-request arrivals keep workers in that window constantly;
  // under ASan the old code crashes here.
  const auto handle = MakeHandle(7, {});
  net::BatcherOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 3.0;
  options.num_workers = 4;
  net::ContinuousBatcher batcher(handle, options);

  constexpr int kRequests = 64;
  std::mutex mu;
  std::condition_variable cv;
  int remaining = kRequests;
  int failures = 0;
  for (int i = 0; i < kRequests; ++i) {
    const Status s = batcher.Submit(
        {i % 8}, [&](Result<std::vector<serve::Prediction>> r) {
          std::lock_guard<std::mutex> lock(mu);
          if (!r.ok()) ++failures;
          if (--remaining == 0) cv.notify_one();
        });
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }
  EXPECT_EQ(failures, 0);
  batcher.Stop();
  EXPECT_EQ(batcher.Stats().completed, kRequests);
}

TEST(BatcherTest, InvalidRequestFailsAloneNotItsBatchmates) {
  const auto handle = MakeHandle(7, {3, 2});
  net::BatcherOptions options;
  options.max_batch = 8;
  options.max_queue_delay_ms = 20.0;  // force the good + bad into one batch
  net::ContinuousBatcher batcher(handle, options);
  const std::vector<std::vector<int64_t>> requests = {
      {0, 1}, {999999}, {2}};
  const auto results = RunThroughBatcher(batcher, requests);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(results[2].ok());
  // The valid members still match the direct call at their arrival seeds.
  const auto engine = handle->Get();
  ExpectPredictionsBitwise(
      results[0].value(),
      engine->PredictBatchWithSeeds({{0, 1}}, {0}).value()[0]);
  ExpectPredictionsBitwise(
      results[2].value(),
      engine->PredictBatchWithSeeds({{2}}, {2}).value()[0]);
}

TEST(BatcherTest, QueueFullRejectsDeterministically) {
  const auto handle = MakeHandle(7, {});
  net::BatcherOptions options;
  options.max_batch = 1;
  options.max_queue_delay_ms = 0.0;
  options.max_queue_depth = 2;
  options.num_workers = 1;
  net::ContinuousBatcher batcher(handle, options);

  // Block the single worker inside the first completion callback so the
  // queue depth is under test control.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false, blocked = false;
  int completions = 0;
  ASSERT_TRUE(batcher
                  .Submit({0},
                          [&](Result<std::vector<serve::Prediction>>) {
                            std::unique_lock<std::mutex> lock(mu);
                            blocked = true;
                            cv.notify_all();
                            cv.wait(lock, [&] { return release; });
                            ++completions;
                          })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return blocked; });
  }
  auto count_completion = [&](Result<std::vector<serve::Prediction>>) {
    std::lock_guard<std::mutex> lock(mu);
    ++completions;
  };
  ASSERT_TRUE(batcher.Submit({1}, count_completion).ok());
  ASSERT_TRUE(batcher.Submit({2}, count_completion).ok());
  const Status overflow = batcher.Submit({3}, count_completion);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(overflow.message().find("queue is full"), std::string::npos);
  EXPECT_EQ(batcher.Stats().rejected, 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  batcher.Stop();  // drains the two queued requests
  EXPECT_EQ(completions, 3);
}

TEST(BatcherTest, StopDrainsEverythingThenRejects) {
  const auto handle = MakeHandle(7, {3, 2});
  net::BatcherOptions options;
  options.max_batch = 4;
  options.max_queue_delay_ms = 50.0;  // requests sit queued when Stop lands
  net::ContinuousBatcher batcher(handle, options);
  std::mutex mu;
  int completions = 0;
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(batcher
                    .Submit({i % 5},
                            [&](Result<std::vector<serve::Prediction>> r) {
                              std::lock_guard<std::mutex> lock(mu);
                              EXPECT_TRUE(r.ok());
                              ++completions;
                            })
                    .ok());
  }
  batcher.Stop();
  EXPECT_EQ(completions, 9);  // every admitted request was answered
  const Status late = batcher.Submit(
      {0}, [](Result<std::vector<serve::Prediction>>) {});
  ASSERT_FALSE(late.ok());
  EXPECT_NE(late.message().find("shutting down"), std::string::npos);
}

TEST(BatcherTest, HotSwapNeverDropsOrMixesWithinABatch) {
  // Two engines with different weights: their answers differ, so a
  // response identifies which engine computed it.
  const auto handle = MakeHandle(7, {});
  const auto v1 = handle->Get();
  const auto v2 = std::make_shared<const serve::InferenceEngine>(
      MakeEngine(1234, {}));
  const std::vector<int64_t> probe = {0, 1, 2, 3};
  const auto v1_expected = v1->Predict(probe).value();
  const auto v2_expected = v2->Predict(probe).value();
  ASSERT_NE(0, std::memcmp(v1_expected[0].probabilities.data(),
                           v2_expected[0].probabilities.data(),
                           v1_expected[0].probabilities.size() *
                               sizeof(float)))
      << "engines must disagree for this test to mean anything";

  net::BatcherOptions options;
  options.max_batch = 4;
  options.num_workers = 2;
  net::ContinuousBatcher batcher(handle, options);
  std::mutex mu;
  std::condition_variable cv;
  int v1_hits = 0, v2_hits = 0, other = 0, completed = 0;
  const int kWave = 60;  // per wave; one wave before the swap, one after
  auto classify = [&](Result<std::vector<serve::Prediction>> r) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const auto& probs = r.value()[0].probabilities;
    std::lock_guard<std::mutex> lock(mu);
    if (std::memcmp(probs.data(), v1_expected[0].probabilities.data(),
                    probs.size() * sizeof(float)) == 0) {
      ++v1_hits;
    } else if (std::memcmp(probs.data(),
                           v2_expected[0].probabilities.data(),
                           probs.size() * sizeof(float)) == 0) {
      ++v2_hits;
    } else {
      ++other;
    }
    ++completed;
    cv.notify_one();
  };
  auto submit_wave = [&] {
    for (int i = 0; i < kWave; ++i) {
      while (!batcher.Submit(probe, classify).ok()) {
        std::this_thread::yield();  // queue full under the burst; retry
      }
    }
  };
  auto await = [&](int target) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed >= target; });
  };

  submit_wave();
  // Everything completed before the swap was computed wholly by v1 —
  // regardless of how the scheduler grouped the wave into batches.
  await(kWave);
  handle->Swap(v2);
  EXPECT_EQ(handle->generation(), 2);
  // Everything submitted after the swap must see v2: Swap is a fence for
  // new batch snapshots.
  submit_wave();
  await(2 * kWave);
  batcher.Stop();

  // Zero drops, and every answer is wholly one version's.
  EXPECT_EQ(other, 0);
  EXPECT_EQ(v1_hits, kWave);
  EXPECT_EQ(v2_hits, kWave);
}

// v1 stays alive (and correct) for in-flight batches even after the handle
// has moved on and the server-side reference is gone.
TEST(EngineHandleTest, OldEngineSurvivesUntilLastSnapshotReleases) {
  auto handle = MakeHandle(7, {});
  std::shared_ptr<const serve::InferenceEngine> snapshot = handle->Get();
  const auto before = snapshot->Predict({0}).value();
  handle->Swap(std::make_shared<const serve::InferenceEngine>(
      MakeEngine(1234, {})));
  const auto after = snapshot->Predict({0}).value();  // old engine, alive
  ExpectPredictionsBitwise(before, after);
  EXPECT_EQ(handle->generation(), 2);
}

}  // namespace
}  // namespace graphrare

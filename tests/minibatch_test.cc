// Mini-batch training pipeline tests. The load-bearing property: with
// fanout >= max degree (full fanout) a mini-batch step on the induced
// subgraph reproduces the full-graph step on the same seed nodes *bitwise*
// — identical loss and identical parameter gradients. This holds because
// (a) local ids preserve ascending global order, so CSR rows of the
// sub-operators enumerate neighbors in the same relative order as the
// full-graph operators, and (b) enough sampling layers make every degree
// feeding the normalisation exact: L layers for row-normalised aggregation
// (SAGE), L+1 for symmetric GCN normalisation (boundary degrees).

#include <gtest/gtest.h>

#include "core/graphrare.h"

namespace graphrare {
namespace {

using data::NeighborSampler;
using data::SamplerOptions;

data::Dataset MakeSparseDataset(uint64_t seed) {
  data::GeneratorOptions o;
  // Sparse on purpose: the k-hop closure of a few seeds must be a proper
  // subset of the graph or the equivalence test degenerates.
  o.num_nodes = 160;
  o.num_edges = 170;
  o.num_features = 40;
  o.num_classes = 3;
  o.homophily = 0.4;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

nn::ModelOptions NoDropoutOptions(const data::Dataset& ds, uint64_t seed) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 12;
  mo.num_classes = ds.num_classes;
  mo.dropout = 0.0f;  // the two paths draw from different dropout streams
  mo.seed = seed;
  return mo;
}

std::vector<int64_t> SeedNodes(const data::Dataset& ds) {
  // A handful of nodes with neighbors, spread across the graph.
  std::vector<int64_t> seeds;
  for (int64_t v = 0; v < ds.num_nodes() && seeds.size() < 6; v += 23) {
    if (ds.graph.Degree(v) > 0) seeds.push_back(v);
  }
  return seeds;
}

/// Runs one loss+backward on the full graph and on a full-fanout block and
/// expects bitwise-identical loss and parameter gradients.
void ExpectFullFanoutEquivalence(nn::BackboneKind kind, size_t num_layers) {
  data::Dataset ds = MakeSparseDataset(11);
  const std::vector<int64_t> seeds = SeedNodes(ds);
  ASSERT_GE(seeds.size(), 3u);

  // --- Full-graph step. ---
  auto full_model = nn::MakeModel(kind, NoDropoutOptions(ds, 101));
  nn::ModelInputs full_in;
  full_in.graph = &ds.graph;
  full_in.features = nn::LayerInput::Sparse(ds.FeaturesCsr());
  full_model->ZeroGrad();
  tensor::Variable full_logits =
      full_model->Logits(full_in, /*training=*/true, nullptr);
  std::vector<int64_t> y;
  for (const int64_t s : seeds) y.push_back(ds.labels[static_cast<size_t>(s)]);
  tensor::Variable full_loss = tensor::ops::CrossEntropy(full_logits, seeds, y);
  full_loss.Backward();

  // --- Mini-batch step on the full-fanout induced block. ---
  SamplerOptions so;
  so.fanouts.assign(num_layers, ds.graph.MaxDegree());
  so.seed = 1;
  NeighborSampler sampler(&ds.graph, so);
  const graph::Subgraph block = sampler.SampleBlock(seeds);
  // The equivalence claim is only interesting on a proper subgraph.
  ASSERT_LT(block.num_nodes(), ds.num_nodes());

  auto mb_model = nn::MakeModel(kind, NoDropoutOptions(ds, 101));
  nn::ModelInputs mb_in;
  mb_in.graph = &block.graph;
  mb_in.features = nn::LayerInput::Sparse(
      std::make_shared<tensor::CsrMatrix>(block.LocalRows(*ds.FeaturesCsr())));
  mb_model->ZeroGrad();
  tensor::Variable mb_logits =
      mb_model->Logits(mb_in, /*training=*/true, nullptr);
  tensor::Variable mb_loss =
      tensor::ops::CrossEntropy(mb_logits, block.seed_local, y);
  mb_loss.Backward();

  EXPECT_EQ(full_loss.value().scalar(), mb_loss.value().scalar());
  const auto full_params = full_model->Parameters();
  const auto mb_params = mb_model->Parameters();
  ASSERT_EQ(full_params.size(), mb_params.size());
  for (size_t i = 0; i < full_params.size(); ++i) {
    ASSERT_TRUE(full_params[i].has_grad());
    ASSERT_TRUE(mb_params[i].has_grad());
    EXPECT_TRUE(
        full_params[i].grad().AllClose(mb_params[i].grad(), 0.0f, 0.0f))
        << "parameter " << i << " gradients diverge";
  }
}

TEST(MiniBatchEquivalenceTest, SageFullFanoutMatchesFullGraphBitwise) {
  // Row-normalised aggregation: L sampling layers suffice.
  ExpectFullFanoutEquivalence(nn::BackboneKind::kSage, 2);
}

TEST(MiniBatchEquivalenceTest, GcnFullFanoutMatchesFullGraphBitwise) {
  // Symmetric normalisation needs exact boundary degrees: L+1 layers.
  ExpectFullFanoutEquivalence(nn::BackboneKind::kGcn, 3);
}

TEST(MiniBatchEquivalenceTest, TrainersProduceIdenticalWeightsAfterOneStep) {
  data::Dataset ds = MakeSparseDataset(12);
  const std::vector<int64_t> seeds = SeedNodes(ds);
  ASSERT_GE(seeds.size(), 3u);

  auto full_model = nn::MakeModel(nn::BackboneKind::kSage,
                                  NoDropoutOptions(ds, 7));
  nn::ClassifierTrainer::Options full_opts;
  full_opts.seed = 7;
  nn::ClassifierTrainer full(full_model.get(),
                             nn::LayerInput::Sparse(ds.FeaturesCsr()),
                             &ds.labels, full_opts);
  const nn::EvalResult full_step = full.TrainEpoch(ds.graph, seeds);

  auto mb_model = nn::MakeModel(nn::BackboneKind::kSage,
                                NoDropoutOptions(ds, 7));
  nn::MiniBatchTrainer::Options mb_opts;
  mb_opts.seed = 7;
  nn::MiniBatchTrainer mb(mb_model.get(), ds.FeaturesCsr(), &ds.labels,
                          mb_opts);
  SamplerOptions so;
  so.fanouts = {ds.graph.MaxDegree(), ds.graph.MaxDegree()};
  NeighborSampler sampler(&ds.graph, so);
  const nn::EvalResult mb_step = mb.TrainBatch(sampler.SampleBlock(seeds));

  EXPECT_EQ(full_step.loss, mb_step.loss);
  EXPECT_EQ(full_step.accuracy, mb_step.accuracy);
  const auto full_weights = full.SaveWeights();
  const auto mb_weights = mb.SaveWeights();
  ASSERT_EQ(full_weights.size(), mb_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    EXPECT_TRUE(full_weights[i].AllClose(mb_weights[i], 0.0f, 0.0f))
        << "post-Adam weights diverge at parameter " << i;
  }
}

TEST(MiniBatchTest, TrainBatchOnIsolatedSeedRuns) {
  data::Dataset ds = MakeSparseDataset(13);
  // Find an isolated node (the sparse generator leaves several).
  int64_t isolated = -1;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    if (ds.graph.Degree(v) == 0) {
      isolated = v;
      break;
    }
  }
  ASSERT_GE(isolated, 0) << "generator produced no isolated node";

  auto model = nn::MakeModel(nn::BackboneKind::kSage,
                             NoDropoutOptions(ds, 3));
  nn::MiniBatchTrainer::Options opts;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               opts);
  NeighborSampler sampler(&ds.graph, SamplerOptions{});
  const nn::EvalResult step =
      trainer.TrainBatch(sampler.SampleBlock({isolated}));
  EXPECT_TRUE(std::isfinite(step.loss));
}

TEST(MiniBatchTest, FitMiniBatchLearnsTheSyntheticTask) {
  data::GeneratorOptions o;
  o.num_nodes = 300;
  o.num_edges = 900;
  o.num_features = 64;
  o.num_classes = 3;
  o.homophily = 0.6;
  o.seed = 4;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 24;
  mo.num_classes = ds.num_classes;
  mo.seed = 5;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::MiniBatchTrainer::Options to;
  to.seed = 5;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               to);
  core::MiniBatchOptions mb;
  mb.sampler.fanouts = {8, 8};
  mb.sampler.seed = 9;
  mb.batch_size = 64;
  mb.max_epochs = 30;
  mb.patience = 30;
  const core::MiniBatchFitResult fit = core::FitMiniBatch(
      &trainer, ds.graph, splits[0].train, splits[0].val, mb, /*seed=*/5);

  EXPECT_EQ(fit.epochs_run, 30);
  EXPECT_GT(fit.batches_run, fit.epochs_run);
  EXPECT_GT(fit.best_val_accuracy, 0.7);
  const double test_acc =
      trainer.Evaluate(ds.graph, splits[0].test).accuracy;
  EXPECT_GT(test_acc, 0.7);
  // Training loss went down overall.
  EXPECT_LT(fit.train_loss_history.back(), fit.train_loss_history.front());
}

TEST(MiniBatchTest, SelectRowsSlicesFeatureRowsExactly) {
  data::Dataset ds = MakeSparseDataset(14);
  auto csr = ds.FeaturesCsr();
  const std::vector<int64_t> rows = {5, 0, 5, 159};
  const tensor::CsrMatrix sliced = csr->SelectRows(rows);
  EXPECT_EQ(sliced.rows(), 4);
  EXPECT_EQ(sliced.cols(), csr->cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int64_t c = 0; c < csr->cols(); ++c) {
      EXPECT_EQ(sliced.At(static_cast<int64_t>(i), c), csr->At(rows[i], c));
    }
  }
}

}  // namespace
}  // namespace graphrare

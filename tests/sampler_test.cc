// Neighbor sampler and induced-subgraph tests: seeded determinism, fanout
// caps, local<->global remap integrity, and empty-frontier / isolated-node
// edge cases.

#include "data/sampler.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/generator.h"

namespace graphrare {
namespace {

using data::NeighborSampler;
using data::SamplerOptions;
using graph::Graph;
using graph::Subgraph;

data::Dataset MakeDataset(uint64_t seed, int64_t nodes = 120,
                          int64_t edges = 320) {
  data::GeneratorOptions o;
  o.num_nodes = nodes;
  o.num_edges = edges;
  o.num_features = 32;
  o.num_classes = 3;
  o.homophily = 0.4;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

/// Checks the remap invariants every block must satisfy.
void ExpectValidBlock(const Graph& g, const Subgraph& block,
                      const std::vector<int64_t>& seeds) {
  // Local->global map: strictly ascending, in range.
  ASSERT_FALSE(block.nodes.empty());
  for (size_t i = 0; i < block.nodes.size(); ++i) {
    EXPECT_GE(block.nodes[i], 0);
    EXPECT_LT(block.nodes[i], g.num_nodes());
    if (i > 0) {
      EXPECT_LT(block.nodes[i - 1], block.nodes[i]);
    }
  }
  // Seeds present, correctly mapped, no out-of-range or duplicate locals.
  ASSERT_EQ(block.seed_local.size(), seeds.size());
  ASSERT_EQ(block.seed_global.size(), seeds.size());
  std::set<int64_t> seen_local;
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(block.seed_global[i], seeds[i]);
    const int64_t local = block.seed_local[i];
    ASSERT_GE(local, 0);
    ASSERT_LT(local, block.num_nodes());
    EXPECT_EQ(block.nodes[static_cast<size_t>(local)], seeds[i]);
    EXPECT_TRUE(seen_local.insert(local).second)
        << "duplicate local seed index " << local;
  }
  // Round trip through GlobalToLocal.
  for (int64_t local = 0; local < block.num_nodes(); ++local) {
    EXPECT_EQ(block.GlobalToLocal(block.nodes[static_cast<size_t>(local)]),
              local);
  }
  // Every subgraph edge exists in the parent graph.
  for (const auto& [lu, lv] : block.graph.edges()) {
    EXPECT_TRUE(g.HasEdge(block.nodes[static_cast<size_t>(lu)],
                          block.nodes[static_cast<size_t>(lv)]));
  }
}

TEST(SamplerTest, DeterministicResamplingUnderFixedSeed) {
  data::Dataset ds = MakeDataset(3);
  SamplerOptions options;
  options.fanouts = {4, 3};
  options.seed = 42;
  NeighborSampler a(&ds.graph, options);
  NeighborSampler b(&ds.graph, options);
  const std::vector<int64_t> seeds = {1, 7, 20, 55};
  // Consecutive blocks advance the stream; matching call positions match.
  for (int call = 0; call < 4; ++call) {
    const Subgraph ba = a.SampleBlock(seeds);
    const Subgraph bb = b.SampleBlock(seeds);
    EXPECT_EQ(ba.nodes, bb.nodes) << "call " << call;
    EXPECT_EQ(ba.graph.edges(), bb.graph.edges()) << "call " << call;
  }
  // Reset rewinds the stream: the replay equals the first block.
  a.Reset();
  b.Reset();
  EXPECT_EQ(a.SampleBlock(seeds).nodes, b.SampleBlock(seeds).nodes);
}

TEST(SamplerTest, ConsecutiveBlocksResampleDifferently) {
  data::Dataset ds = MakeDataset(4, 200, 900);
  SamplerOptions options;
  options.fanouts = {2};
  options.seed = 9;
  NeighborSampler sampler(&ds.graph, options);
  std::vector<int64_t> seeds;
  for (int64_t v = 0; v < 40; ++v) seeds.push_back(v);
  const Subgraph first = sampler.SampleBlock(seeds);
  bool any_diff = false;
  for (int call = 0; call < 5 && !any_diff; ++call) {
    any_diff = sampler.SampleBlock(seeds).nodes != first.nodes;
  }
  EXPECT_TRUE(any_diff) << "block counter does not advance the stream";
}

TEST(SamplerTest, SampleNeighborsRespectsFanoutCap) {
  data::Dataset ds = MakeDataset(5, 80, 400);
  Rng rng(17);
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    for (const int64_t fanout : {1, 3, 1000}) {
      const auto sampled = NeighborSampler::SampleNeighbors(
          ds.graph, v, fanout, /*replace=*/false, &rng);
      EXPECT_LE(static_cast<int64_t>(sampled.size()),
                std::min(fanout, ds.graph.Degree(v)));
      std::set<int64_t> unique(sampled.begin(), sampled.end());
      EXPECT_EQ(unique.size(), sampled.size()) << "duplicates without "
                                                  "replacement";
      for (const int64_t u : sampled) EXPECT_TRUE(ds.graph.HasEdge(v, u));
    }
  }
}

TEST(SamplerTest, SampleNeighborsWithReplacementDrawsExactlyFanout) {
  data::Dataset ds = MakeDataset(6);
  Rng rng(23);
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    if (ds.graph.Degree(v) == 0) continue;
    const auto sampled = NeighborSampler::SampleNeighbors(
        ds.graph, v, 6, /*replace=*/true, &rng);
    EXPECT_EQ(sampled.size(), 6u);
    for (const int64_t u : sampled) EXPECT_TRUE(ds.graph.HasEdge(v, u));
  }
}

TEST(SamplerTest, LayerGrowthBoundedByFanout) {
  data::Dataset ds = MakeDataset(7, 150, 700);
  SamplerOptions options;
  options.fanouts = {3, 2};
  options.seed = 5;
  NeighborSampler sampler(&ds.graph, options);
  const std::vector<int64_t> seeds = {0, 10, 30, 60, 90};
  const Subgraph block = sampler.SampleBlock(seeds);
  const auto& layers = sampler.layers();
  ASSERT_EQ(layers.size(), options.fanouts.size() + 1);
  EXPECT_EQ(layers[0], seeds);
  int64_t reachable = static_cast<int64_t>(seeds.size());
  for (size_t l = 0; l < options.fanouts.size(); ++l) {
    EXPECT_LE(static_cast<int64_t>(layers[l + 1].size()),
              static_cast<int64_t>(layers[l].size()) * options.fanouts[l]);
    reachable += static_cast<int64_t>(layers[l + 1].size());
  }
  EXPECT_EQ(block.num_nodes(), reachable);
  ExpectValidBlock(ds.graph, block, seeds);
}

TEST(SamplerTest, RemapHasNoOutOfRangeOrDuplicateLocals) {
  data::Dataset ds = MakeDataset(8, 200, 600);
  SamplerOptions options;
  options.fanouts = {5, 5};
  options.seed = 77;
  NeighborSampler sampler(&ds.graph, options);
  const std::vector<int64_t> seeds = {3, 4, 50, 120, 199};
  ExpectValidBlock(ds.graph, sampler.SampleBlock(seeds), seeds);
  // Nodes outside the block map to -1.
  const Subgraph block = sampler.SampleBlock(seeds);
  int64_t outside = 0;
  for (int64_t v = 0; v < ds.graph.num_nodes(); ++v) {
    if (!std::binary_search(block.nodes.begin(), block.nodes.end(), v)) {
      EXPECT_EQ(block.GlobalToLocal(v), -1);
      ++outside;
    }
  }
  EXPECT_GT(outside, 0) << "block swallowed the whole graph; remap "
                           "untested";
}

TEST(SamplerTest, IsolatedSeedYieldsSingletonBlock) {
  // Node 4 is isolated; nodes 0-3 form a path.
  Graph g = Graph::FromEdgeListOrDie(5, {{0, 1}, {1, 2}, {2, 3}});
  SamplerOptions options;
  options.fanouts = {4, 4};
  NeighborSampler sampler(&g, options);
  const Subgraph block = sampler.SampleBlock({4});
  EXPECT_EQ(block.num_nodes(), 1);
  EXPECT_EQ(block.graph.num_edges(), 0);
  EXPECT_EQ(block.seed_local[0], 0);
  ExpectValidBlock(g, block, {4});
}

TEST(SamplerTest, EmptyFrontierStopsExpansionGracefully) {
  // Component {0,1} exhausts after one hop; deeper layers must be empty,
  // not a crash.
  Graph g = Graph::FromEdgeListOrDie(6, {{0, 1}, {2, 3}, {3, 4}});
  SamplerOptions options;
  options.fanouts = {4, 4, 4, 4};
  NeighborSampler sampler(&g, options);
  const Subgraph block = sampler.SampleBlock({0});
  EXPECT_EQ(block.num_nodes(), 2);
  const auto& layers = sampler.layers();
  ASSERT_EQ(layers.size(), 5u);
  EXPECT_TRUE(layers[2].empty());
  EXPECT_TRUE(layers[3].empty());
  EXPECT_TRUE(layers[4].empty());
}

TEST(SamplerTest, FullFanoutCoversKHopClosure) {
  data::Dataset ds = MakeDataset(9, 100, 250);
  SamplerOptions options;
  options.fanouts = {1000, 1000};
  NeighborSampler sampler(&ds.graph, options);
  const std::vector<int64_t> seeds = {12, 57};
  const Subgraph block = sampler.SampleBlock(seeds);
  std::set<int64_t> expected(seeds.begin(), seeds.end());
  for (const int64_t s : seeds) {
    for (const int64_t v : ds.graph.KHopNeighbors(s, 2)) expected.insert(v);
  }
  EXPECT_EQ(block.nodes,
            std::vector<int64_t>(expected.begin(), expected.end()));
}

TEST(SamplerTest, MakeBatchesPartitionsAllIndices) {
  Rng rng(3);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < 23; ++i) idx.push_back(i * 2);
  const auto batches =
      NeighborSampler::MakeBatches(idx, 5, /*shuffle=*/true, &rng);
  ASSERT_EQ(batches.size(), 5u);
  std::vector<int64_t> flat;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 5u);
    flat.insert(flat.end(), b.begin(), b.end());
  }
  std::sort(flat.begin(), flat.end());
  EXPECT_EQ(flat, idx);
}

TEST(SamplerTest, UnlimitedFanoutKeepsEveryNeighborWithoutRngDraws) {
  data::Dataset ds = MakeDataset(21);
  int64_t v = 0;
  while (ds.graph.Degree(v) < 2) ++v;
  Rng rng(5);
  const auto all =
      NeighborSampler::SampleNeighbors(ds.graph, v, -1, false, &rng);
  EXPECT_EQ(all, ds.graph.Neighbors(v));
  // -1 validates; 0 still does not.
  SamplerOptions opts;
  opts.fanouts = {-1, -1};
  EXPECT_TRUE(opts.Validate().ok());
  opts.fanouts = {0};
  EXPECT_FALSE(opts.Validate().ok());

  // An unlimited-fanout block equals the k-hop closure of its seeds.
  opts.fanouts = {-1, -1};
  NeighborSampler sampler(&ds.graph, opts);
  const Subgraph block = sampler.SampleBlock({v});
  std::vector<int64_t> want = ds.graph.KHopNeighbors(v, 2);
  want.push_back(v);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(block.nodes, want);
}

TEST(SamplerDeathTest, InvalidSeedsAbort) {
  Graph g = Graph::FromEdgeListOrDie(4, {{0, 1}, {1, 2}});
  SamplerOptions options;
  NeighborSampler sampler(&g, options);
  EXPECT_DEATH(sampler.SampleBlock({}), "empty seed set");
  EXPECT_DEATH(sampler.SampleBlock({99}), "out of range");
  EXPECT_DEATH(sampler.SampleBlock({1, 1}), "duplicate seed");
}

TEST(SubgraphTest, InducedSubgraphKeepsInternalEdgesOnly) {
  //   0-1-2-3 path plus chord 0-2; subgraph on {0,1,2} keeps 0-1,1-2,0-2.
  Graph g = Graph::FromEdgeListOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  auto block = std::move(graph::InducedSubgraph(g, {2, 0, 1, 0}, {1})).value();
  EXPECT_EQ(block.nodes, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(block.graph.num_edges(), 3);
  EXPECT_EQ(block.seed_local, (std::vector<int64_t>{1}));
}

TEST(SubgraphTest, InducedSubgraphRejectsBadInput) {
  Graph g = Graph::FromEdgeListOrDie(4, {{0, 1}});
  EXPECT_FALSE(graph::InducedSubgraph(g, {0, 9}, {0}).ok());
  EXPECT_FALSE(graph::InducedSubgraph(g, {0, 1}, {3}).ok());
}

}  // namespace
}  // namespace graphrare

// End-to-end integration tests: dataset generation -> baseline training ->
// full GraphRARE co-training (Algorithm 1) on small synthetic graphs.

#include <gtest/gtest.h>

#include "core/graphrare.h"

namespace graphrare {
namespace {

data::Dataset SmallHeterophilic(uint64_t seed = 3) {
  data::GeneratorOptions gen;
  gen.name = "itest-het";
  gen.num_nodes = 120;
  gen.num_edges = 300;
  gen.num_features = 64;
  gen.num_classes = 4;
  gen.homophily = 0.15;
  gen.partner_affinity = 0.9;
  gen.feature_signal = 10.0;
  gen.feature_density = 0.1;
  gen.seed = seed;
  return std::move(data::GenerateDataset(gen)).value();
}

core::GraphRareOptions QuickOptions() {
  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kGcn;
  opts.hidden = 32;
  opts.iterations = 8;
  opts.pretrain_epochs = 25;
  opts.pretrain_patience = 10;
  opts.finetune_epochs = 3;
  opts.k_max = 4;
  opts.d_max = 3;
  opts.ppo.steps_per_update = 4;
  opts.entropy.max_two_hop_candidates = 16;
  opts.entropy.num_random_candidates = 6;
  opts.seed = 11;
  return opts;
}

TEST(IntegrationTest, GcnBaselineLearnsSomething) {
  data::Dataset ds = SmallHeterophilic();
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 32;
  mo.num_classes = ds.num_classes;
  mo.seed = 5;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer::Options to;
  to.adam.lr = 0.01f;
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, to);
  const nn::FitResult fit =
      trainer.Fit(ds.graph, splits[0].train, splits[0].val, 60, 20);
  EXPECT_GT(fit.epochs_run, 0);
  // Better than chance (4 classes -> 0.25).
  EXPECT_GT(trainer.Evaluate(ds.graph, splits[0].test).accuracy, 0.3);
}

TEST(IntegrationTest, GraphRareRunsEndToEnd) {
  data::Dataset ds = SmallHeterophilic();
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::GraphRareTrainer trainer(&ds, QuickOptions());
  core::GraphRareResult result = trainer.Run(splits[0]);

  EXPECT_GT(result.test_accuracy, 0.25);  // better than chance
  EXPECT_EQ(static_cast<int>(result.reward_history.size()), 8);
  EXPECT_EQ(static_cast<int>(result.homophily_history.size()), 8);
  EXPECT_GT(result.entropy_build_seconds, 0.0);
  EXPECT_GE(result.best_val_accuracy, 0.0);
  EXPECT_GT(result.final_edges, 0);
  // The best graph must reference the same node set.
  EXPECT_EQ(result.best_graph.num_nodes(), ds.num_nodes());
}

TEST(IntegrationTest, GraphRareRaisesHomophilyOnInformativeHeterophily) {
  data::Dataset ds = SmallHeterophilic(9);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::GraphRareOptions opts = QuickOptions();
  opts.iterations = 12;
  core::GraphRareTrainer trainer(&ds, opts);
  core::GraphRareResult result = trainer.Run(splits[0]);

  // The final (best) graph should not be *less* homophilic than the
  // original by a large margin; typically it improves markedly.
  EXPECT_GE(result.final_homophily, result.initial_homophily - 0.05);
}

TEST(IntegrationTest, AblationModesRun) {
  data::Dataset ds = SmallHeterophilic(4);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  for (core::PolicyMode mode :
       {core::PolicyMode::kFixed, core::PolicyMode::kRandom}) {
    core::GraphRareOptions opts = QuickOptions();
    opts.policy_mode = mode;
    opts.iterations = 4;
    core::GraphRareTrainer trainer(&ds, opts);
    core::GraphRareResult result = trainer.Run(splits[0]);
    EXPECT_GT(result.test_accuracy, 0.2);
  }
}

TEST(IntegrationTest, ShuffledSequencesRun) {
  data::Dataset ds = SmallHeterophilic(5);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::GraphRareOptions opts = QuickOptions();
  opts.sequence_mode = core::SequenceMode::kShuffled;
  opts.iterations = 4;
  core::GraphRareTrainer trainer(&ds, opts);
  core::GraphRareResult result = trainer.Run(splits[0]);
  EXPECT_GT(result.test_accuracy, 0.2);
}

TEST(IntegrationTest, AddOnlyAndRemoveOnlyRun) {
  data::Dataset ds = SmallHeterophilic(6);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  {
    core::GraphRareOptions opts = QuickOptions();
    opts.enable_remove = false;
    opts.iterations = 4;
    core::GraphRareTrainer trainer(&ds, opts);
    core::GraphRareResult r = trainer.Run(splits[0]);
    // Only additions: the best graph can never have fewer edges than G_0.
    EXPECT_GE(r.final_edges, ds.graph.num_edges());
  }
  {
    core::GraphRareOptions opts = QuickOptions();
    opts.enable_add = false;
    opts.iterations = 4;
    core::GraphRareTrainer trainer(&ds, opts);
    core::GraphRareResult r = trainer.Run(splits[0]);
    EXPECT_LE(r.final_edges, ds.graph.num_edges());
  }
}

TEST(IntegrationTest, AucRewardRuns) {
  data::Dataset ds = SmallHeterophilic(7);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::GraphRareOptions opts = QuickOptions();
  opts.reward.kind = core::RewardKind::kAuc;
  opts.iterations = 4;
  core::GraphRareTrainer trainer(&ds, opts);
  core::GraphRareResult result = trainer.Run(splits[0]);
  EXPECT_EQ(static_cast<int>(result.reward_history.size()), 4);
}

TEST(IntegrationTest, AllBackbonesRunUnderGraphRare) {
  data::Dataset ds = SmallHeterophilic(8);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  for (nn::BackboneKind kind :
       {nn::BackboneKind::kGcn, nn::BackboneKind::kSage,
        nn::BackboneKind::kGat, nn::BackboneKind::kH2Gcn}) {
    core::GraphRareOptions opts = QuickOptions();
    opts.backbone = kind;
    opts.iterations = 3;
    opts.pretrain_epochs = 10;
    core::GraphRareTrainer trainer(&ds, opts);
    core::GraphRareResult result = trainer.Run(splits[0]);
    EXPECT_GT(result.test_accuracy, 0.15)
        << "backbone " << nn::BackboneName(kind);
  }
}

TEST(IntegrationTest, ExperimentRunnerAggregates) {
  data::Dataset ds = SmallHeterophilic(10);
  data::SplitOptions so;
  so.num_splits = 2;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::ExperimentOptions eo;
  eo.max_epochs = 30;
  eo.patience = 10;
  eo.hidden = 32;
  const core::BaselineAggregate agg =
      core::RunBackbone(ds, splits, nn::BackboneKind::kMlp, eo);
  EXPECT_EQ(agg.accuracy.values.size(), 2u);
  EXPECT_GT(agg.accuracy.mean, 0.25);
  EXPECT_GT(agg.seconds_per_epoch, 0.0);
}

TEST(IntegrationTest, RewiringBaselinesRun) {
  data::Dataset ds = SmallHeterophilic(12);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::KnnGraphOptions knn;
  knn.k = 3;
  const graph::Graph ugcn = core::BuildUgcnStarGraph(ds, knn);
  EXPECT_GE(ugcn.num_edges(), ds.graph.num_edges());

  core::ExperimentOptions eo;
  eo.max_epochs = 25;
  eo.patience = 10;
  eo.hidden = 32;
  const core::BaselineAggregate on_union =
      core::RunBackbone(ds, splits, nn::BackboneKind::kGcn, eo, &ugcn);
  EXPECT_GT(on_union.accuracy.mean, 0.2);

  auto knn_graph = core::BuildKnnGraph(ds.features, knn);
  auto knn_op = knn_graph.NormalizedAdjacency();
  const core::BaselineAggregate simp = core::RunCustomModel(
      ds, splits,
      [&](uint64_t seed) {
        nn::ModelOptions mo;
        mo.in_features = ds.num_features();
        mo.hidden = 32;
        mo.num_classes = ds.num_classes;
        mo.seed = seed;
        return std::make_unique<core::SimpGcnStarModel>(mo, knn_op);
      },
      eo);
  EXPECT_GT(simp.accuracy.mean, 0.2);
}

}  // namespace
}  // namespace graphrare

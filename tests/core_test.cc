// Core framework tests: topology state/optimizer, observations, reward,
// option validation, rewiring baselines.

#include <gtest/gtest.h>

#include "core/graphrare.h"

namespace graphrare {
namespace core {
namespace {

data::Dataset TinyDataset(uint64_t seed = 41) {
  data::GeneratorOptions o;
  o.num_nodes = 60;
  o.num_edges = 140;
  o.num_features = 40;
  o.num_classes = 3;
  o.homophily = 0.2;
  o.feature_signal = 8.0;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

entropy::RelativeEntropyIndex TinyIndex(const data::Dataset& ds) {
  return std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
}

// ---- TopologyState ----------------------------------------------------------

TEST(TopologyStateTest, StartsAtZero) {
  TopologyState s(5, 3, 2);
  for (int64_t v = 0; v < 5; ++v) {
    EXPECT_EQ(s.k(v), 0);
    EXPECT_EQ(s.d(v), 0);
  }
  EXPECT_EQ(s.TotalK(), 0);
}

TEST(TopologyStateTest, ApplyClampsToBounds) {
  TopologyState s(3, 2, 1);
  rl::ActionSample up;
  up.delta_k = {1, 1, 1};
  up.delta_d = {1, 1, 1};
  for (int i = 0; i < 5; ++i) s.Apply(up);
  for (int64_t v = 0; v < 3; ++v) {
    EXPECT_EQ(s.k(v), 2);
    EXPECT_EQ(s.d(v), 1);
  }
  rl::ActionSample down;
  down.delta_k = {-1, -1, -1};
  down.delta_d = {-1, -1, -1};
  for (int i = 0; i < 5; ++i) s.Apply(down);
  for (int64_t v = 0; v < 3; ++v) {
    EXPECT_EQ(s.k(v), 0);
    EXPECT_EQ(s.d(v), 0);
  }
}

TEST(TopologyStateTest, SetUniformAndRandom) {
  TopologyState s(10, 5, 5);
  s.SetUniform(3, 2);
  EXPECT_EQ(s.TotalK(), 30);
  EXPECT_EQ(s.TotalD(), 20);
  Rng rng(1);
  s.SetRandom(4, 4, &rng);
  for (int64_t v = 0; v < 10; ++v) {
    EXPECT_GE(s.k(v), 0);
    EXPECT_LE(s.k(v), 4);
  }
  s.Reset();
  EXPECT_EQ(s.TotalK(), 0);
}

// ---- Topology optimizer ------------------------------------------------------

TEST(TopologyOptimizerTest, ZeroStateReturnsOriginal) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 3, 3);
  graph::Graph g = BuildOptimizedGraph(ds.graph, s, index);
  EXPECT_EQ(g.edges(), ds.graph.edges());
}

TEST(TopologyOptimizerTest, AddsTopKRemote) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 3, 3);
  rl::ActionSample a;
  a.delta_k.assign(static_cast<size_t>(ds.num_nodes()), 0);
  a.delta_d.assign(static_cast<size_t>(ds.num_nodes()), 0);
  a.delta_k[0] = 1;  // node 0: k=1
  s.Apply(a);
  graph::Graph g = BuildOptimizedGraph(ds.graph, s, index);
  const auto& seq = index.sequences(0);
  ASSERT_FALSE(seq.remote.empty());
  EXPECT_TRUE(g.HasEdge(0, seq.remote[0].node));
  EXPECT_EQ(g.num_edges(), ds.graph.num_edges() + 1);
}

TEST(TopologyOptimizerTest, RemovesLowestEntropyNeighbors) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 3, 3);
  // Find a node with degree >= 2.
  int64_t v = -1;
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    if (ds.graph.Degree(i) >= 2) {
      v = i;
      break;
    }
  }
  ASSERT_GE(v, 0);
  rl::ActionSample a;
  a.delta_k.assign(static_cast<size_t>(ds.num_nodes()), 0);
  a.delta_d.assign(static_cast<size_t>(ds.num_nodes()), 0);
  a.delta_d[static_cast<size_t>(v)] = 1;
  s.Apply(a);
  graph::Graph g = BuildOptimizedGraph(ds.graph, s, index);
  const auto& seq = index.sequences(v);
  EXPECT_FALSE(g.HasEdge(v, seq.neighbors[0].node));
  EXPECT_EQ(g.num_edges(), ds.graph.num_edges() - 1);
}

TEST(TopologyOptimizerTest, DisabledChannelsRespected) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 3, 3);
  s.SetUniform(2, 2);
  TopologyOptimizerOptions no_add;
  no_add.enable_add = false;
  graph::Graph g1 = BuildOptimizedGraph(ds.graph, s, index, no_add);
  EXPECT_LE(g1.num_edges(), ds.graph.num_edges());
  TopologyOptimizerOptions no_remove;
  no_remove.enable_remove = false;
  graph::Graph g2 = BuildOptimizedGraph(ds.graph, s, index, no_remove);
  EXPECT_GE(g2.num_edges(), ds.graph.num_edges());
}

TEST(TopologyOptimizerTest, StateExceedingSequencesIsSafe) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 1000, 1000);
  s.SetUniform(1000, 1000);  // way beyond any sequence length
  graph::Graph g = BuildOptimizedGraph(ds.graph, s, index);
  EXPECT_EQ(g.num_nodes(), ds.num_nodes());
}

// ---- Observation ---------------------------------------------------------------

TEST(ObservationTest, ShapeAndRanges) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 4, 4);
  s.SetUniform(2, 1);
  tensor::Tensor obs =
      BuildObservation(ds.graph, ds.graph, s, index, /*last_reward=*/0.3);
  EXPECT_EQ(obs.rows(), ds.num_nodes());
  EXPECT_EQ(obs.cols(), kObservationDim);
  for (int64_t i = 0; i < obs.numel(); ++i) {
    EXPECT_GE(obs[i], -1.0f);
    EXPECT_LE(obs[i], 1.0f + 1e-5f);
  }
}

TEST(ObservationTest, RewardClipped) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 4, 4);
  tensor::Tensor obs =
      BuildObservation(ds.graph, ds.graph, s, index, /*last_reward=*/42.0);
  EXPECT_FLOAT_EQ(obs.at(0, 7), 1.0f);
}

TEST(ObservationTest, TracksStateValues) {
  data::Dataset ds = TinyDataset();
  auto index = TinyIndex(ds);
  TopologyState s(ds.num_nodes(), 4, 2);
  s.SetUniform(4, 2);
  tensor::Tensor obs = BuildObservation(ds.graph, ds.graph, s, index, 0.0);
  EXPECT_FLOAT_EQ(obs.at(0, 1), 1.0f);  // k at max
  EXPECT_FLOAT_EQ(obs.at(0, 2), 1.0f);  // d at max
}

// ---- Reward --------------------------------------------------------------------

TEST(RewardTest, AccLossFormula) {
  RewardOptions opts;
  opts.lambda_r = 2.0;
  RewardInputs prev{0.5, 1.0, 0.0};
  RewardInputs curr{0.6, 0.8, 0.0};
  // (0.6-0.5) + 2*(1.0-0.8) = 0.1 + 0.4
  EXPECT_NEAR(ComputeReward(opts, prev, curr), 0.5, 1e-9);
}

TEST(RewardTest, AccLossNegativeWhenWorse) {
  RewardOptions opts;
  RewardInputs prev{0.7, 0.5, 0.0};
  RewardInputs curr{0.6, 0.9, 0.0};
  EXPECT_LT(ComputeReward(opts, prev, curr), 0.0);
}

TEST(RewardTest, AucVariant) {
  RewardOptions opts;
  opts.kind = RewardKind::kAuc;
  RewardInputs prev{0.0, 0.0, 0.6};
  RewardInputs curr{0.0, 0.0, 0.75};
  EXPECT_NEAR(ComputeReward(opts, prev, curr), 0.15, 1e-9);
}

// ---- Options validation ----------------------------------------------------------

TEST(GraphRareOptionsTest, DefaultsValid) {
  GraphRareOptions opts;
  EXPECT_TRUE(opts.Validate().ok());
}

TEST(GraphRareOptionsTest, RejectsBadValues) {
  GraphRareOptions opts;
  opts.iterations = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = GraphRareOptions();
  opts.k_max = 0;
  opts.d_max = 0;
  EXPECT_FALSE(opts.Validate().ok());
  opts = GraphRareOptions();
  opts.dropout = 1.0f;
  EXPECT_FALSE(opts.Validate().ok());
  opts = GraphRareOptions();
  opts.entropy.lambda = -0.1;
  EXPECT_FALSE(opts.Validate().ok());
}

// ---- Aggregation ------------------------------------------------------------------

TEST(AggregateTest, MeanAndSampleStd) {
  RunStats s = Aggregate({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);  // sample std of {1,2,3}
}

TEST(AggregateTest, SingleValueHasZeroStd) {
  RunStats s = Aggregate({5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(AggregateTest, EmptyIsZero) {
  RunStats s = Aggregate({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

// ---- kNN / rewiring baselines -------------------------------------------------------

TEST(KnnGraphTest, DegreesAtLeastK) {
  data::Dataset ds = TinyDataset();
  KnnGraphOptions opts;
  opts.k = 3;
  graph::Graph knn = BuildKnnGraph(ds.features, opts);
  EXPECT_EQ(knn.num_nodes(), ds.num_nodes());
  // Each node contributed k out-edges; unions can only raise degree.
  for (int64_t v = 0; v < knn.num_nodes(); ++v) {
    EXPECT_GE(knn.Degree(v), 3);
  }
}

TEST(KnnGraphTest, ConnectsSimilarFeatureNodes) {
  // kNN on strongly separable features should be mostly intra-class,
  // i.e. homophily of the kNN graph exceeds the original graph's.
  data::Dataset ds = TinyDataset();
  KnnGraphOptions opts;
  opts.k = 3;
  graph::Graph knn = BuildKnnGraph(ds.features, opts);
  EXPECT_GT(knn.EdgeHomophily(ds.labels), ds.Homophily());
}

TEST(UgcnStarTest, UnionContainsOriginalEdges) {
  data::Dataset ds = TinyDataset();
  KnnGraphOptions opts;
  opts.k = 2;
  graph::Graph u = BuildUgcnStarGraph(ds, opts);
  for (const auto& [a, b] : ds.graph.edges()) {
    EXPECT_TRUE(u.HasEdge(a, b));
  }
}

TEST(SimpGcnStarTest, MixingWeightLearnable) {
  data::Dataset ds = TinyDataset();
  KnnGraphOptions kopts;
  kopts.k = 3;
  graph::Graph knn = BuildKnnGraph(ds.features, kopts);
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = 9;
  SimpGcnStarModel model(mo, knn.NormalizedAdjacency());
  EXPECT_NEAR(model.MixingWeight(), 0.5f, 1e-6);

  // One training step must move theta.
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  nn::ClassifierTrainer trainer(&model,
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});
  for (int i = 0; i < 5; ++i) trainer.TrainEpoch(ds.graph, splits[0].train);
  EXPECT_NE(model.MixingWeight(), 0.5f);
}

// ---- Bench helpers -------------------------------------------------------------------

TEST(BenchHelpersTest, QuickModeDefaults) {
  // Tests run without GRARE_BENCH_FULL; quick values returned.
  if (!BenchFullScale()) {
    EXPECT_EQ(BenchNumSplits(10, 2), 2);
    EXPECT_EQ(BenchShrink(4), 4);
  } else {
    EXPECT_EQ(BenchNumSplits(10, 2), 10);
    EXPECT_EQ(BenchShrink(4), 1);
  }
}

}  // namespace
}  // namespace core
}  // namespace graphrare

// Block-scoped RL topology optimization tests (ctest label: rl). The
// load-bearing properties:
//  * RelativeEntropyIndex::Restrict remaps sequences into block-local id
//    space exactly (drop-outside-block, order preserved, no recompute).
//  * EditMerger resolves block overlap last-writer-wins per node and merges
//    deterministically (block-order-invariant for disjoint blocks).
//  * Full-graph mode is the B=1/full-fanout special case: a
//    BlockTopologyEnv over the identity block reproduces the full-graph
//    TopologyEnv episode BITWISE (same rewards, same rewired edge set,
//    same post-finetune weights) — scripted actions and PPO-driven alike.
//  * End-to-end: block-scoped co-training completes in seconds on a
//    10k-node graph, a scale past the rl_blocks_scaling bench's
//    full-graph-episode cutoff (full-graph per-step cost grows with the
//    whole adjacency).

#include <gtest/gtest.h>

#include <cmath>

#include "core/graphrare.h"

namespace graphrare {
namespace {

using core::BlockRolloutOptions;
using core::BlockRolloutRunner;
using core::BlockTopologyEnv;
using core::EditMerger;
using core::NodeEdits;
using core::TopologyEnvOptions;

data::Dataset MakeSparseDataset(uint64_t seed) {
  data::GeneratorOptions o;
  o.num_nodes = 160;
  o.num_edges = 300;
  o.num_features = 40;
  o.num_classes = 3;
  o.homophily = 0.5;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

entropy::RelativeEntropyIndex BuildIndex(const data::Dataset& ds,
                                         uint64_t seed = 3) {
  entropy::EntropyOptions eo;
  eo.max_two_hop_candidates = 8;
  eo.num_random_candidates = 4;
  eo.seed = seed;
  return std::move(entropy::RelativeEntropyIndex::Build(ds.graph,
                                                        ds.features, eo))
      .value();
}

// ---- Options validation (Status, not a crash) ------------------------------

TEST(TopologyEnvOptionsTest, RejectsNegativeBounds) {
  TopologyEnvOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.k_max = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = TopologyEnvOptions();
  o.d_max = -3;
  EXPECT_FALSE(o.Validate().ok());
  o = TopologyEnvOptions();
  o.gnn_epochs_per_step = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = TopologyEnvOptions();
  o.reward.lambda_r = -0.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(TopologyEnvOptionsTest, RejectsNegativeEntropyLambda) {
  TopologyEnvOptions o;
  o.entropy.lambda = -0.25;
  const Status s = o.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("lambda"), std::string::npos);
}

TEST(BlockRolloutOptionsTest, Validation) {
  BlockRolloutOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.blocks_per_round = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BlockRolloutOptions();
  o.seeds_per_block = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BlockRolloutOptions();
  o.steps_per_episode = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = BlockRolloutOptions();
  o.fanouts = {10, 0};
  EXPECT_FALSE(o.Validate().ok());
  o.fanouts = {10, -1};  // -1 = unlimited is legal
  EXPECT_TRUE(o.Validate().ok());
  o = BlockRolloutOptions();
  o.env.k_max = -2;
  EXPECT_FALSE(o.Validate().ok());
}

// ---- Restrict remap integrity ----------------------------------------------

TEST(RestrictTest, IdentityBlockReproducesIndexExactly) {
  data::Dataset ds = MakeSparseDataset(11);
  const auto index = BuildIndex(ds);
  const graph::Subgraph block = graph::FullSubgraph(ds.graph, {0, 5});
  const auto restricted = index.Restrict(block);

  ASSERT_EQ(restricted.num_nodes(), index.num_nodes());
  EXPECT_EQ(restricted.lambda(), index.lambda());
  for (int64_t v = 0; v < index.num_nodes(); ++v) {
    const auto& a = index.sequences(v);
    const auto& b = restricted.sequences(v);
    ASSERT_EQ(a.remote.size(), b.remote.size());
    for (size_t i = 0; i < a.remote.size(); ++i) {
      EXPECT_EQ(a.remote[i].node, b.remote[i].node);
      EXPECT_EQ(a.remote[i].entropy, b.remote[i].entropy);
    }
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].node, b.neighbors[i].node);
      EXPECT_EQ(a.neighbors[i].entropy, b.neighbors[i].entropy);
    }
  }
}

TEST(RestrictTest, RemapsAndFiltersSampledBlock) {
  data::Dataset ds = MakeSparseDataset(12);
  const auto index = BuildIndex(ds);

  data::SamplerOptions so;
  so.fanouts = {4, 4};
  so.seed = 9;
  data::NeighborSampler sampler(&ds.graph, so);
  std::vector<int64_t> seeds;
  for (int64_t v = 0; v < ds.num_nodes() && seeds.size() < 8; v += 19) {
    if (ds.graph.Degree(v) > 0) seeds.push_back(v);
  }
  ASSERT_GE(seeds.size(), 4u);
  const graph::Subgraph block = sampler.SampleBlock(seeds);
  ASSERT_LT(block.num_nodes(), ds.num_nodes());

  const auto restricted = index.Restrict(block);
  ASSERT_EQ(restricted.num_nodes(), block.num_nodes());
  for (int64_t local = 0; local < block.num_nodes(); ++local) {
    const int64_t global = block.nodes[static_cast<size_t>(local)];
    const auto& src = index.sequences(global);
    const auto& dst = restricted.sequences(local);

    // Expected: the global sequence filtered to block members, remapped.
    std::vector<entropy::ScoredNode> want_remote;
    for (const auto& s : src.remote) {
      const int64_t l = block.GlobalToLocal(s.node);
      if (l >= 0) want_remote.push_back({l, s.entropy});
    }
    ASSERT_EQ(dst.remote.size(), want_remote.size());
    for (size_t i = 0; i < want_remote.size(); ++i) {
      EXPECT_EQ(dst.remote[i].node, want_remote[i].node);
      EXPECT_EQ(dst.remote[i].entropy, want_remote[i].entropy);
      EXPECT_GE(dst.remote[i].node, 0);
      EXPECT_LT(dst.remote[i].node, block.num_nodes());
    }
    std::vector<entropy::ScoredNode> want_neighbors;
    for (const auto& s : src.neighbors) {
      const int64_t l = block.GlobalToLocal(s.node);
      if (l >= 0) want_neighbors.push_back({l, s.entropy});
    }
    ASSERT_EQ(dst.neighbors.size(), want_neighbors.size());
    for (size_t i = 0; i < want_neighbors.size(); ++i) {
      EXPECT_EQ(dst.neighbors[i].node, want_neighbors[i].node);
      EXPECT_EQ(dst.neighbors[i].entropy, want_neighbors[i].entropy);
    }
  }
}

// ---- EditMerger ------------------------------------------------------------

TEST(EditMergerTest, LastWriterWinsPerNode) {
  // Path 0-1-2-3 plus isolated 4.
  const graph::Graph g =
      graph::Graph::FromEdgeListOrDie(5, {{0, 1}, {1, 2}, {2, 3}});
  EditMerger merger;
  NodeEdits first;
  first.add = {3};     // 0-3
  first.remove = {1};  // drop 0-1
  merger.Record(0, first);
  NodeEdits second;
  second.add = {4};  // 0-4; the earlier 0-3/drop-0-1 must be forgotten
  merger.Record(0, second);

  const graph::Graph merged = merger.Merge(g);
  EXPECT_TRUE(merged.HasEdge(0, 4));
  EXPECT_TRUE(merged.HasEdge(0, 1));   // removal was overwritten
  EXPECT_FALSE(merged.HasEdge(0, 3));  // addition was overwritten
  EXPECT_EQ(merger.num_nodes_recorded(), 1);

  // An empty record still claims ownership and erases earlier edits.
  merger.Record(0, NodeEdits{});
  const graph::Graph cleared = merger.Merge(g);
  EXPECT_EQ(cleared.edges(), g.edges());
}

TEST(EditMergerTest, DisjointBlocksMergeOrderInvariant) {
  data::Dataset ds = MakeSparseDataset(13);
  const auto index = BuildIndex(ds);

  // Two disjoint single-seed blocks (1-hop closures) with deterministic
  // states.
  auto make_block = [&](int64_t seed_node) {
    std::vector<int64_t> nodes = ds.graph.KHopNeighbors(seed_node, 1);
    nodes.push_back(seed_node);
    return std::move(
               graph::InducedSubgraph(ds.graph, nodes, {seed_node}))
        .value();
  };
  int64_t va = -1, vb = -1;
  graph::Subgraph a;
  for (int64_t v = 0; v < ds.num_nodes() && vb < 0; ++v) {
    if (ds.graph.Degree(v) == 0) continue;
    if (va < 0) {
      va = v;
      a = make_block(va);
      continue;
    }
    const graph::Subgraph candidate = make_block(v);
    bool overlap = false;
    for (const int64_t u : a.nodes) {
      if (candidate.GlobalToLocal(u) >= 0) overlap = true;
    }
    if (!overlap) vb = v;
  }
  ASSERT_GE(va, 0);
  ASSERT_GE(vb, 0);
  const graph::Subgraph b = make_block(vb);

  core::TopologyState state_a(a.num_nodes(), 2, 2);
  state_a.SetUniform(1, 1);
  core::TopologyState state_b(b.num_nodes(), 2, 2);
  state_b.SetUniform(2, 0);

  EditMerger ab;
  ab.RecordBlock(a, state_a, index.Restrict(a));
  ab.RecordBlock(b, state_b, index.Restrict(b));
  EditMerger ba;
  ba.RecordBlock(b, state_b, index.Restrict(b));
  ba.RecordBlock(a, state_a, index.Restrict(a));

  EXPECT_EQ(ab.Merge(ds.graph).edges(), ba.Merge(ds.graph).edges());
  EXPECT_EQ(ab.num_pending_additions(), ba.num_pending_additions());
  EXPECT_EQ(ab.num_pending_removals(), ba.num_pending_removals());
}

TEST(EditMergerTest, RecordBlockRemapsToGlobalIds) {
  data::Dataset ds = MakeSparseDataset(14);
  const auto index = BuildIndex(ds);
  // Identity block: merged result must equal BuildOptimizedGraph on G_0.
  const graph::Subgraph block = graph::FullSubgraph(ds.graph, {0});
  const auto restricted = index.Restrict(block);
  core::TopologyState state(ds.num_nodes(), 3, 3);
  state.SetUniform(2, 1);

  EditMerger merger;
  merger.RecordBlock(block, state, restricted);
  const graph::Graph merged = merger.Merge(ds.graph);
  const graph::Graph direct = core::BuildOptimizedGraph(ds.graph, state, index);
  EXPECT_EQ(merged.edges(), direct.edges());
}

// ---- Full-graph special case: bitwise equivalence --------------------------

nn::ModelOptions NoDropoutOptions(const data::Dataset& ds, uint64_t seed) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 12;
  mo.num_classes = ds.num_classes;
  mo.dropout = 0.0f;  // the two paths draw from different dropout streams
  mo.seed = seed;
  return mo;
}

TEST(BlockEnvEquivalenceTest, ScriptedFullBlockEpisodeMatchesTopologyEnv) {
  data::Dataset ds = MakeSparseDataset(15);
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  const auto index = BuildIndex(ds);

  TopologyEnvOptions eo;
  eo.k_max = 3;
  eo.d_max = 2;
  eo.gnn_epochs_per_step = 1;

  // Full-graph reference: TopologyEnv + ClassifierTrainer.
  auto full_model = nn::MakeModel(nn::BackboneKind::kSage,
                                  NoDropoutOptions(ds, 101));
  nn::ClassifierTrainer::Options full_topts;
  full_topts.seed = 101;
  nn::ClassifierTrainer full_trainer(
      full_model.get(), nn::LayerInput::Sparse(ds.FeaturesCsr()),
      &ds.labels, full_topts);
  core::TopologyEnv full_env(&ds, &splits[0], &full_trainer, &index, eo);

  // Block path: identity block + MiniBatchTrainer, same model seed.
  auto mb_model = nn::MakeModel(nn::BackboneKind::kSage,
                                NoDropoutOptions(ds, 101));
  nn::MiniBatchTrainer::Options mb_topts;
  mb_topts.seed = 101;
  nn::MiniBatchTrainer mb_trainer(mb_model.get(), ds.FeaturesCsr(),
                                  &ds.labels, mb_topts);
  const graph::Subgraph block =
      graph::FullSubgraph(ds.graph, splits[0].train);
  BlockTopologyEnv block_env(&ds, block, splits[0].train, &mb_trainer,
                             index.Restrict(block), eo);

  tensor::Tensor full_obs = full_env.Reset();
  tensor::Tensor block_obs = block_env.Reset();
  ASSERT_TRUE(full_obs.AllClose(block_obs, 0.0f, 0.0f));

  Rng action_rng(77);
  for (int t = 0; t < 4; ++t) {
    rl::ActionSample action;
    for (int64_t v = 0; v < ds.num_nodes(); ++v) {
      action.delta_k.push_back(
          static_cast<int>(action_rng.UniformInt(-1, 1)));
      action.delta_d.push_back(
          static_cast<int>(action_rng.UniformInt(-1, 1)));
    }
    const double full_reward = full_env.Step(action, &full_obs);
    const double block_reward = block_env.Step(action, &block_obs);
    EXPECT_EQ(full_reward, block_reward) << "reward diverges at step " << t;
    EXPECT_TRUE(full_obs.AllClose(block_obs, 0.0f, 0.0f))
        << "observation diverges at step " << t;
    // Same rewired edge set (identity block: local ids == global ids).
    EXPECT_EQ(full_env.current_graph().edges(),
              block_env.current_graph().edges())
        << "rewired edges diverge at step " << t;
  }

  // Same post-finetune weights, bitwise.
  const auto full_weights = full_trainer.SaveWeights();
  const auto mb_weights = mb_trainer.SaveWeights();
  ASSERT_EQ(full_weights.size(), mb_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    EXPECT_TRUE(full_weights[i].AllClose(mb_weights[i], 0.0f, 0.0f))
        << "post-finetune weights diverge at parameter " << i;
  }
}

TEST(BlockEnvEquivalenceTest, PpoDrivenRunnerB1ReproducesFullGraphRollout) {
  data::Dataset ds = MakeSparseDataset(16);
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  const auto index = BuildIndex(ds);

  TopologyEnvOptions eo;
  eo.gnn_epochs_per_step = 1;
  rl::PpoOptions po;
  po.steps_per_update = 3;  // two PPO updates inside the episode
  po.seed = 19;
  const int steps = 6;

  // Reference: generic single-env loop on the full-graph TopologyEnv.
  auto full_model = nn::MakeModel(nn::BackboneKind::kSage,
                                  NoDropoutOptions(ds, 7));
  nn::ClassifierTrainer::Options full_topts;
  full_topts.seed = 7;
  nn::ClassifierTrainer full_trainer(
      full_model.get(), nn::LayerInput::Sparse(ds.FeaturesCsr()),
      &ds.labels, full_topts);
  core::TopologyEnv full_env(&ds, &splits[0], &full_trainer, &index, eo);
  rl::PpoAgent full_agent(core::kObservationDim, po);
  const std::vector<double> full_rewards =
      rl::RunAgentOnEnv(&full_agent, &full_env, steps);

  // Block path: B=1, empty fanouts (identity block), one round.
  auto mb_model = nn::MakeModel(nn::BackboneKind::kSage,
                                NoDropoutOptions(ds, 7));
  nn::MiniBatchTrainer::Options mb_topts;
  mb_topts.seed = 7;
  nn::MiniBatchTrainer mb_trainer(mb_model.get(), ds.FeaturesCsr(),
                                  &ds.labels, mb_topts);
  BlockRolloutOptions ro;
  ro.blocks_per_round = 1;
  ro.fanouts = {};  // full-graph mode
  ro.seeds_per_block = ds.num_nodes();  // one batch covers the train set
  ro.steps_per_episode = steps;
  ro.env = eo;
  BlockRolloutRunner runner(&ds, &splits[0], &mb_trainer, &index, ro);
  rl::PpoAgent block_agent(core::kObservationDim, po);
  const BlockRolloutRunner::RoundStats stats = runner.RunRound(&block_agent);

  // Same rewards, step for step, bitwise.
  ASSERT_EQ(stats.env_steps, static_cast<int64_t>(full_rewards.size()));
  EXPECT_EQ(stats.num_blocks, 1);
  double full_mean = 0.0;
  for (const double r : full_rewards) full_mean += r;
  full_mean /= static_cast<double>(full_rewards.size());
  EXPECT_EQ(stats.mean_reward, full_mean);

  // Same rewired edge set after the episode.
  EXPECT_EQ(runner.MergedGraph().edges(), full_env.current_graph().edges());

  // Same post-finetune weights.
  const auto full_weights = full_trainer.SaveWeights();
  const auto mb_weights = mb_trainer.SaveWeights();
  ASSERT_EQ(full_weights.size(), mb_weights.size());
  for (size_t i = 0; i < full_weights.size(); ++i) {
    EXPECT_TRUE(full_weights[i].AllClose(mb_weights[i], 0.0f, 0.0f))
        << "post-finetune weights diverge at parameter " << i;
  }
}

// ---- Sampled-block episodes and end-to-end co-training ---------------------

TEST(BlockRolloutRunnerTest, SampledBlocksStayLocalAndMerge) {
  data::Dataset ds = MakeSparseDataset(17);
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  const auto index = BuildIndex(ds);

  auto model = nn::MakeModel(nn::BackboneKind::kSage,
                             NoDropoutOptions(ds, 5));
  nn::MiniBatchTrainer::Options topts;
  topts.seed = 5;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               topts);
  BlockRolloutOptions ro;
  ro.blocks_per_round = 3;
  ro.seeds_per_block = 12;
  ro.fanouts = {4, 4};
  ro.steps_per_episode = 3;
  ro.env.gnn_epochs_per_step = 1;
  ro.seed = 23;
  BlockRolloutRunner runner(&ds, &splits[0], &trainer, &index, ro);
  rl::PpoOptions po;
  po.steps_per_update = 3;
  rl::PpoAgent agent(core::kObservationDim, po);

  const BlockRolloutRunner::RoundStats stats = runner.RunRound(&agent);
  EXPECT_EQ(stats.num_blocks, 3);
  EXPECT_EQ(stats.env_steps, 3);
  EXPECT_GT(stats.block_nodes, 0);
  EXPECT_LT(stats.block_nodes, 3 * ds.num_nodes());
  EXPECT_TRUE(std::isfinite(stats.mean_reward));

  const graph::Graph merged = runner.MergedGraph();
  EXPECT_EQ(merged.num_nodes(), ds.num_nodes());
  EXPECT_GT(runner.merger().num_nodes_recorded(), 0);
  // A second round keeps accumulating (later rounds may overwrite nodes).
  const BlockRolloutRunner::RoundStats stats2 = runner.RunRound(&agent);
  EXPECT_EQ(stats2.num_blocks, 3);
}

TEST(BlockRolloutEndToEndTest, CoTrainsOnTenThousandNodeGraph) {
  // 10k nodes: the rl_blocks_scaling bench caps full-graph TopologyEnv
  // episodes at 2k for time-budget reasons — per-step observation,
  // rewiring, and GNN training all touch the whole adjacency, so their
  // cost grows with the graph — while block-scoped rollouts finish in
  // seconds here because per-step cost follows the sampled block.
  data::GeneratorOptions o;
  o.name = "synthetic-10k";
  o.num_nodes = 10000;
  o.num_edges = 30000;
  o.num_features = 32;
  o.num_classes = 4;
  o.homophily = 0.6;
  o.feature_signal = 8.0;
  o.feature_density = 0.05;
  o.seed = 5;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  data::SplitOptions so;
  so.num_splits = 1;
  so.seed = 11;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kSage;
  opts.hidden = 24;
  opts.dropout = 0.0f;
  opts.entropy.max_two_hop_candidates = 6;
  opts.entropy.num_random_candidates = 2;
  opts.iterations = 2;
  opts.pretrain_epochs = 2;
  opts.pretrain_patience = 2;
  opts.ppo.steps_per_update = 4;
  opts.seed = 9;

  BlockRolloutOptions ro;
  ro.blocks_per_round = 2;
  ro.seeds_per_block = 256;
  ro.fanouts = {6, 6};
  ro.steps_per_episode = 2;
  ro.env.gnn_epochs_per_step = 1;

  const core::BlockCoTrainResult result =
      core::RunBlockCoTraining(ds, splits[0], opts, ro);

  EXPECT_EQ(result.env_steps, 2 * 2);  // iterations * steps_per_episode
  EXPECT_EQ(result.reward_history.size(), 2u);
  EXPECT_EQ(result.val_acc_history.size(), 2u);
  for (const double r : result.reward_history) {
    EXPECT_TRUE(std::isfinite(r));
  }
  EXPECT_EQ(result.best_graph.num_nodes(), ds.num_nodes());
  EXPECT_GT(result.final_edges, 0);
  // Well above the 4-class chance level: the pipeline actually learns.
  EXPECT_GT(result.test_accuracy, 0.3);
  EXPECT_GE(result.best_val_accuracy, result.val_acc_history.back() - 1e-12);
}

}  // namespace
}  // namespace graphrare

// Loopback tests for the epoll HTTP front-end: request/response round
// trips against a live server on an ephemeral port, HTTP error statuses,
// keep-alive + pipelining, the slow-loris idle sweep, graceful shutdown,
// and the headline serving guarantee — artifact hot-swap under concurrent
// load with zero dropped and zero mixed-version responses.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/graphrare.h"
#include "net/server.h"

namespace graphrare {
namespace {

// ---- Minimal blocking HTTP client -----------------------------------------

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv = {10, 0};  // nothing here should take 10s
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  void Request(const std::string& method, const std::string& target,
               const std::string& body = "", bool close = false) {
    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    if (close) wire += "Connection: close\r\n";
    if (!body.empty() || method == "POST") {
      wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    wire += "\r\n" + body;
    Send(wire);
  }

  /// Reads one complete response off the connection. Leftover bytes stay
  /// buffered, so pipelined responses read back one call at a time.
  bool ReadResponse(ClientResponse* out) {
    while (buf_.find("\r\n\r\n") == std::string::npos) {
      if (!Fill()) return false;
    }
    const size_t head_end = buf_.find("\r\n\r\n");
    const std::string head = buf_.substr(0, head_end);
    buf_.erase(0, head_end + 4);

    out->headers.clear();
    size_t line_start = 0;
    size_t line_end = head.find("\r\n");
    const std::string status_line = head.substr(0, line_end);
    if (std::sscanf(status_line.c_str(), "HTTP/1.1 %d", &out->status) != 1) {
      return false;
    }
    while (line_end != std::string::npos) {
      line_start = line_end + 2;
      line_end = head.find("\r\n", line_start);
      std::string line = head.substr(
          line_start, line_end == std::string::npos ? std::string::npos
                                                    : line_end - line_start);
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      out->headers[name] = value;
    }
    size_t content_length = 0;
    const auto it = out->headers.find("content-length");
    if (it != out->headers.end()) {
      content_length = static_cast<size_t>(std::stoul(it->second));
    }
    while (buf_.size() < content_length) {
      if (!Fill()) return false;
    }
    out->body = buf_.substr(0, content_length);
    buf_.erase(0, content_length);
    return true;
  }

  /// Half-closes the sending side (FIN); the server can still respond.
  void HalfClose() { ::shutdown(fd_, SHUT_WR); }

  /// True once the server closes the connection (read returns 0).
  bool WaitClosed() {
    char tmp[256];
    while (true) {
      const ssize_t n = ::read(fd_, tmp, sizeof(tmp));
      if (n == 0) return true;
      if (n < 0) return false;  // timeout — still open
    }
  }

 private:
  bool Fill() {
    char tmp[4096];
    const ssize_t n = ::read(fd_, tmp, sizeof(tmp));
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buf_;
};

// ---- Server fixture --------------------------------------------------------

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

serve::ModelArtifact MakeArtifact(uint64_t model_seed) {
  auto ds_or = data::MakeDatasetScaled("cornell", /*shrink=*/1, 3);
  GR_CHECK(ds_or.ok()) << ds_or.status().ToString();
  const data::Dataset& ds = *ds_or;
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = model_seed;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  auto artifact_or = core::PackageArtifact(*model, nn::BackboneKind::kGcn,
                                           mo, model_seed, ds.graph, ds);
  GR_CHECK(artifact_or.ok()) << artifact_or.status().ToString();
  return std::move(artifact_or).value();
}

/// Full-graph engines: answers ignore sampling seeds, so expected response
/// bodies are byte-exact regardless of batching/arrival order.
std::shared_ptr<const serve::InferenceEngine> MakeEngine(uint64_t seed) {
  auto engine_or =
      serve::InferenceEngine::FromArtifact(MakeArtifact(seed), {});
  GR_CHECK(engine_or.ok()) << engine_or.status().ToString();
  return std::make_shared<const serve::InferenceEngine>(
      std::move(engine_or).value());
}

class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer(net::HttpServerOptions options = {},
                   uint64_t model_seed = 7) {
    handle_ = std::make_shared<serve::EngineHandle>(MakeEngine(model_seed));
    server_ = std::make_unique<net::HttpServer>(handle_, nullptr, options);
    ASSERT_TRUE(server_->Start().ok());
    loop_ = std::thread([this] { server_->Run(); });
  }

  void TearDown() override {
    if (server_) server_->Shutdown();
    if (loop_.joinable()) loop_.join();
  }

  int port() const { return server_->port(); }
  std::string ExpectedPredictBody(const std::vector<int64_t>& nodes) {
    return net::PredictionsToJson(handle_->Get()->Predict(nodes).value());
  }

  std::shared_ptr<serve::EngineHandle> handle_;
  std::unique_ptr<net::HttpServer> server_;
  std::thread loop_;
};

// ---- Round trips -----------------------------------------------------------

TEST_F(HttpServerTest, HealthzReportsEngine) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Request("GET", "/healthz");
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.body.find("\"generation\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"mode\":\"full\""), std::string::npos);
}

TEST_F(HttpServerTest, PredictBodyIsByteExact) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Request("POST", "/v1/predict", "{\"nodes\":[0,1,2]}");
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, ExpectedPredictBody({0, 1, 2}));
  EXPECT_EQ(r.headers["content-type"], "application/json");
}

TEST_F(HttpServerTest, TopKBodyIsByteExact) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Request("POST", "/v1/topk", "{\"node\":5,\"k\":3}");
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  const auto pred = handle_->Get()->Predict({5}).value();
  EXPECT_EQ(r.body, net::TopKToJson(5, serve::TopKOf(pred[0], 3)));
}

TEST_F(HttpServerTest, MetricsCountRequests) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Request("POST", "/v1/predict", "{\"nodes\":[0]}");
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  ASSERT_EQ(r.status, 200);
  client.Request("GET", "/metrics");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("graphrare_requests_total{route=\"/v1/predict\"} 1"),
            std::string::npos);
  EXPECT_NE(r.body.find("graphrare_request_latency_ms{route=\"/v1/predict\","
                        "quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(r.body.find("graphrare_batches_total 1"), std::string::npos);
  EXPECT_NE(r.body.find("graphrare_engine_generation 1"), std::string::npos);
}

// ---- Error statuses --------------------------------------------------------

TEST_F(HttpServerTest, ErrorStatusesPerRouteContract) {
  StartServer();
  struct Case {
    const char* method;
    const char* target;
    const char* body;
    int want_status;
  };
  const Case kCases[] = {
      {"GET", "/no/such/route", "", 404},
      {"GET", "/v1/predict", "", 405},
      {"POST", "/healthz", "", 405},
      {"POST", "/v1/predict", "not json", 400},
      {"POST", "/v1/predict", "{\"nodes\":[]}", 400},
      {"POST", "/v1/predict", "{\"nodes\":[1.5]}", 400},
      {"POST", "/v1/predict", "{\"nodes\":[999999]}", 400},  // out of range
      {"POST", "/v1/topk", "{\"node\":5,\"k\":0}", 400},
      {"POST", "/v1/reload", "{}", 400},
  };
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  for (const Case& c : kCases) {
    SCOPED_TRACE(std::string(c.method) + " " + c.target + " " + c.body);
    client.Request(c.method, c.target, c.body);
    ClientResponse r;
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_EQ(r.status, c.want_status);
    EXPECT_NE(r.body.find("\"error\""), std::string::npos);
  }
}

TEST_F(HttpServerTest, OversizedBodyIs413AndCloses) {
  net::HttpServerOptions options;
  options.limits.max_body_bytes = 64;
  StartServer(options);
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Send("POST /v1/predict HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 413);
  EXPECT_EQ(r.headers["connection"], "close");
  EXPECT_TRUE(client.WaitClosed());
}

TEST_F(HttpServerTest, MalformedFramingIs400AndCloses) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Send("NOT A REQUEST AT ALL\r\n\r\n");
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 400);
  EXPECT_TRUE(client.WaitClosed());
}

// ---- Connection behavior ---------------------------------------------------

TEST_F(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    client.Request("POST", "/v1/predict",
                   "{\"nodes\":[" + std::to_string(i) + "]}");
    ClientResponse r;
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, ExpectedPredictBody({i}));
  }
  EXPECT_EQ(server_->connections_total(), 1);
}

TEST_F(HttpServerTest, PipelinedRequestsAnswerInOrder) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  // Three requests in one write; the middle one is an error. Responses
  // must come back in request order despite async dispatch.
  std::string wire;
  wire += "POST /v1/predict HTTP/1.1\r\nContent-Length: 13\r\n\r\n"
          "{\"nodes\":[1]}";
  wire += "GET /no/such HTTP/1.1\r\n\r\n";
  wire += "POST /v1/predict HTTP/1.1\r\nContent-Length: 13\r\n\r\n"
          "{\"nodes\":[2]}";
  client.Send(wire);
  ClientResponse r1, r2, r3;
  ASSERT_TRUE(client.ReadResponse(&r1));
  ASSERT_TRUE(client.ReadResponse(&r2));
  ASSERT_TRUE(client.ReadResponse(&r3));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.body, ExpectedPredictBody({1}));
  EXPECT_EQ(r2.status, 404);
  EXPECT_EQ(r3.status, 200);
  EXPECT_EQ(r3.body, ExpectedPredictBody({2}));
}

TEST_F(HttpServerTest, SlowLorisConnectionIsSwept) {
  net::HttpServerOptions options;
  options.idle_timeout_ms = 100;
  options.tick_ms = 20;
  StartServer(options);
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Send("GET /hea");  // partial request line, then silence
  EXPECT_TRUE(client.WaitClosed());
  // A live connection making progress is not swept: full request works.
  TestClient healthy(port());
  ASSERT_TRUE(healthy.ok());
  healthy.Request("GET", "/healthz");
  ClientResponse r;
  ASSERT_TRUE(healthy.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
}

TEST_F(HttpServerTest, HalfClosedClientStillGetsItsResponses) {
  // A client that sends complete requests then shutdown(SHUT_WR) must get
  // every answer before the server closes — EOF stops reading, not the
  // parsing of what is already buffered.
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  std::string wire;
  wire += "POST /v1/predict HTTP/1.1\r\nContent-Length: 15\r\n\r\n"
          "{\"nodes\":[0,1]}";
  wire += "GET /healthz HTTP/1.1\r\n\r\n";
  client.Send(wire);
  client.HalfClose();
  ClientResponse r1, r2;
  ASSERT_TRUE(client.ReadResponse(&r1));
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.body, ExpectedPredictBody({0, 1}));
  ASSERT_TRUE(client.ReadResponse(&r2));
  EXPECT_EQ(r2.status, 200);
  EXPECT_TRUE(client.WaitClosed());
}

TEST_F(HttpServerTest, HalfCloseAfterPartialRequestClosesPromptly) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Send("POST /v1/predict HTTP/1.1\r\nContent-Le");  // truncated
  client.HalfClose();
  // The trailing partial request can never complete; no response, and the
  // connection closes without waiting for the idle sweep (10s default).
  EXPECT_TRUE(client.WaitClosed());
}

TEST_F(HttpServerTest, ConnectionCloseIsHonored) {
  StartServer();
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Request("GET", "/healthz", "", /*close=*/true);
  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers["connection"], "close");
  EXPECT_TRUE(client.WaitClosed());
}

// ---- Hot swap under load ---------------------------------------------------

TEST_F(HttpServerTest, HotSwapUnderLoadDropsNothingMixesNothing) {
  const std::string v2_path = TempPath("hot_swap_v2.grare");
  ASSERT_TRUE(MakeArtifact(1234).Save(v2_path).ok());

  StartServer({}, /*model_seed=*/7);
  const std::vector<int64_t> probe = {0, 1, 2, 3};
  const std::string v1_body = ExpectedPredictBody(probe);
  // What the server will compute after swapping: the same artifact loaded
  // back through the same engine options (bitwise-reproducible logits).
  const std::string v2_body = net::PredictionsToJson(
      serve::InferenceEngine::LoadFrom(v2_path, handle_->Get()->options())
          .value()
          .Predict(probe)
          .value());
  ASSERT_NE(v1_body, v2_body)
      << "engines must disagree for this test to mean anything";

  // Hammer /v1/predict from several connections while the swap lands.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> v1_hits{0}, v2_hits{0}, anomalies{0};
  std::vector<std::thread> clients;
  const std::string body = "{\"nodes\":[0,1,2,3]}";
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      TestClient client(port());
      if (!client.ok()) {
        anomalies.fetch_add(kPerThread);
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        client.Request("POST", "/v1/predict", body);
        ClientResponse r;
        if (!client.ReadResponse(&r) || r.status != 200) {
          anomalies.fetch_add(1);  // a dropped or failed request
          continue;
        }
        if (r.body == v1_body) {
          v1_hits.fetch_add(1);
        } else if (r.body == v2_body) {
          v2_hits.fetch_add(1);
        } else {
          anomalies.fetch_add(1);  // a mixed-version response
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  TestClient admin(port());
  ASSERT_TRUE(admin.ok());
  admin.Request("POST", "/v1/reload", "{\"path\":\"" + v2_path + "\"}");
  ClientResponse reload;
  ASSERT_TRUE(admin.ReadResponse(&reload));
  EXPECT_EQ(reload.status, 200);
  EXPECT_NE(reload.body.find("\"generation\":2"), std::string::npos);

  for (std::thread& t : clients) t.join();

  // Every request answered, every answer wholly one version's.
  EXPECT_EQ(anomalies.load(), 0);
  EXPECT_EQ(v1_hits.load() + v2_hits.load(), kThreads * kPerThread);
  EXPECT_GT(v1_hits.load(), 0);  // load started before the swap

  // The swap is complete: new requests are answered by v2.
  admin.Request("POST", "/v1/predict", body);
  ClientResponse after;
  ASSERT_TRUE(admin.ReadResponse(&after));
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, v2_body);
  EXPECT_EQ(handle_->generation(), 2);

  // A second reload while none is pending also works (409 only *during*).
  admin.Request("POST", "/v1/reload", "{\"path\":\"" + v2_path + "\"}");
  ASSERT_TRUE(admin.ReadResponse(&after));
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.body.find("\"generation\":3"), std::string::npos);
}

// ---- Graceful shutdown -----------------------------------------------------

TEST_F(HttpServerTest, ShutdownDrainsInFlightWork) {
  StartServer();
  constexpr int kThreads = 3;
  constexpr int kPerThread = 20;
  std::atomic<int> answered{0}, failed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      TestClient client(port());
      if (!client.ok()) return;
      for (int i = 0; i < kPerThread; ++i) {
        client.Request("POST", "/v1/predict", "{\"nodes\":[0,1]}");
        ClientResponse r;
        if (!client.ReadResponse(&r)) return;  // server drained us mid-run
        if (r.status == 200) {
          answered.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->Shutdown();
  loop_.join();
  for (std::thread& t : clients) t.join();
  // Whatever was admitted got a well-formed 200; nothing errored.
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(answered.load(), 0);

  // Post-shutdown metrics still render (counters survive the loop).
  const std::string metrics = server_->MetricsText();
  EXPECT_NE(metrics.find("graphrare_requests_total"), std::string::npos);
}

}  // namespace
}  // namespace graphrare

// Tensor value-type and dense kernel tests.

#include "tensor/tensor.h"

#include <gtest/gtest.h>

namespace graphrare {
namespace tensor {
namespace {

TEST(TensorTest, DefaultConstructedIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0);
  EXPECT_EQ(t.cols(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZerosInitialised) {
  Tensor t(3, 4);
  EXPECT_EQ(t.numel(), 12);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(t.at(1, 1), 3.5f);
  Tensor s = Tensor::Scalar(-2.0f);
  EXPECT_TRUE(s.is_scalar());
  EXPECT_EQ(s.scalar(), -2.0f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor eye = Tensor::Eye(3);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(eye.at(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, FromDataTakesOwnership) {
  Tensor t = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ColumnVectorShape) {
  Tensor v = Tensor::ColumnVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 1);
}

TEST(TensorTest, RandnStats) {
  Rng rng(42);
  Tensor t = Tensor::Randn(100, 100, &rng);
  const double mean = t.Mean();
  EXPECT_NEAR(mean, 0.0, 0.02);
  double var = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) var += (t[i] - mean) * (t[i] - mean);
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(TensorTest, RandUniformRange) {
  Rng rng(7);
  Tensor t = Tensor::Rand(50, 50, &rng, -2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(TensorTest, GlorotUniformBounds) {
  Rng rng(3);
  Tensor w = Tensor::GlorotUniform(100, 50, &rng);
  const float limit = std::sqrt(6.0f / 150.0f);
  EXPECT_LE(w.MaxAbs(), limit);
}

TEST(TensorTest, AddInPlace) {
  Tensor a = Tensor::Full(2, 3, 1.0f);
  Tensor b = Tensor::Full(2, 3, 2.5f);
  a.AddInPlace(b);
  EXPECT_EQ(a.at(1, 2), 3.5f);
}

TEST(TensorTest, AxpyInPlace) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 2.0f);
  a.AxpyInPlace(-0.5f, b);
  EXPECT_EQ(a.at(0, 0), 0.0f);
}

TEST(TensorTest, ScaleInPlace) {
  Tensor a = Tensor::Full(2, 2, 3.0f);
  a.ScaleInPlace(2.0f);
  EXPECT_EQ(a.at(1, 1), 6.0f);
}

TEST(TensorTest, MulInPlace) {
  Tensor a = Tensor::FromData(1, 3, {1, 2, 3});
  Tensor b = Tensor::FromData(1, 3, {4, 5, 6});
  a.MulInPlace(b);
  EXPECT_EQ(a[0], 4.0f);
  EXPECT_EQ(a[1], 10.0f);
  EXPECT_EQ(a[2], 18.0f);
}

TEST(TensorTest, Transposed) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = a.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(0, 1), 4.0f);
  EXPECT_EQ(t.at(2, 0), 3.0f);
}

TEST(TensorTest, AllCloseToleratesSmallDiffs) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  Tensor b = Tensor::Full(2, 2, 1.0f + 1e-6f);
  EXPECT_TRUE(a.AllClose(b));
  Tensor c = Tensor::Full(2, 2, 1.1f);
  EXPECT_FALSE(a.AllClose(c));
  Tensor d = Tensor::Full(2, 3, 1.0f);
  EXPECT_FALSE(a.AllClose(d));
}

TEST(TensorTest, SumMeanMaxAbs) {
  Tensor a = Tensor::FromData(2, 2, {-1, 2, -3, 4});
  EXPECT_FLOAT_EQ(a.Sum(), 2.0f);
  EXPECT_FLOAT_EQ(a.Mean(), 0.5f);
  EXPECT_FLOAT_EQ(a.MaxAbs(), 4.0f);
}

TEST(TensorTest, HasNonFinite) {
  Tensor a = Tensor::Full(2, 2, 1.0f);
  EXPECT_FALSE(a.HasNonFinite());
  a.at(1, 1) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(a.HasNonFinite());
  a.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(a.HasNonFinite());
}

TEST(TensorTest, ArgMaxRow) {
  Tensor a = Tensor::FromData(2, 3, {1, 5, 2, 7, 0, 3});
  EXPECT_EQ(a.ArgMaxRow(0), 1);
  EXPECT_EQ(a.ArgMaxRow(1), 0);
}

TEST(TensorTest, ArgMaxRowTiePicksFirst) {
  Tensor a = Tensor::FromData(1, 3, {4, 4, 4});
  EXPECT_EQ(a.ArgMaxRow(0), 0);
}

TEST(MatMulTest, Small) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNoop) {
  Rng rng(5);
  Tensor a = Tensor::Randn(4, 4, &rng);
  Tensor c = MatMul(a, Tensor::Eye(4));
  EXPECT_TRUE(c.AllClose(a));
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Rng rng(6);
  Tensor a = Tensor::Randn(5, 3, &rng);
  Tensor b = Tensor::Randn(5, 4, &rng);
  Tensor expect = MatMul(a.Transposed(), b);
  Tensor got = MatMulTransA(a, b);
  EXPECT_TRUE(got.AllClose(expect));
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Rng rng(8);
  Tensor a = Tensor::Randn(5, 3, &rng);
  Tensor b = Tensor::Randn(4, 3, &rng);
  Tensor expect = MatMul(a, b.Transposed());
  Tensor got = MatMulTransB(a, b);
  EXPECT_TRUE(got.AllClose(expect));
}

TEST(ReductionTest, ColSumRowSum) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor cs = ColSum(a);
  EXPECT_EQ(cs.rows(), 1);
  EXPECT_FLOAT_EQ(cs.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(cs.at(0, 2), 9.0f);
  Tensor rs = RowSum(a);
  EXPECT_EQ(rs.cols(), 1);
  EXPECT_FLOAT_EQ(rs.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs.at(1, 0), 15.0f);
}

TEST(TensorDeathTest, ScalarOnMatrixAborts) {
  Tensor a(2, 2);
  EXPECT_DEATH(a.scalar(), "scalar");
}

TEST(TensorDeathTest, MatMulShapeMismatchAborts) {
  Tensor a(2, 3);
  Tensor b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "GR_CHECK");
}

}  // namespace
}  // namespace tensor
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Kernel equivalence suite (ctest labels: tier1, kernels). Pins the numeric
// contracts of the blocked/register-tiled dense kernels:
//   * MatMul / MatMulTransB produce exactly the plain-triple-loop result
//     (every C[i,j] accumulates over the full k extent in ascending order),
//     on ragged shapes included.
//   * MatMulTransA / ColSum follow their fixed-block reduction specs
//     (tensor::kTransAKBlock / tensor::kColSumRowBlock), so the oracle here
//     is the spec written as a naive loop.
//   * Results are invariant to the OpenMP thread count.
//   * The fused ops (AddBiasRelu, LogSoftmaxNll behind CrossEntropy) match
//     their unfused chains and pass numeric grad checks.
//   * The tensor buffer pool recycles buffers without aliasing live data.
//
// "Exact" comparisons use float equality (== treats +0 and -0 as equal,
// which is the one place the zero-skip in the naive path may differ).

#include "tensor/tensor.h"

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace graphrare {
namespace tensor {
namespace {

// ------------------------------------------------------------------ oracles

/// Plain ikj triple loop, no zero skip: ascending-k accumulation per element.
Tensor RefMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a.at(i, kk);
      for (int64_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(kk, j);
      }
    }
  }
  return c;
}

/// The MatMulTransA contract: fixed kTransAKBlock k-blocks, kij loop per
/// block, partials added in ascending block order.
Tensor RefTransA(const Tensor& a, const Tensor& b) {
  const int64_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor c(m, n);
  for (int64_t k0 = 0; k0 < k; k0 += kTransAKBlock) {
    const int64_t k1 = std::min(k, k0 + kTransAKBlock);
    Tensor partial(m, n);
    for (int64_t kk = k0; kk < k1; ++kk) {
      for (int64_t i = 0; i < m; ++i) {
        const float av = a.at(kk, i);
        for (int64_t j = 0; j < n; ++j) {
          partial.at(i, j) += av * b.at(kk, j);
        }
      }
    }
    for (int64_t i = 0; i < m * n; ++i) c[i] += partial[i];
  }
  return c;
}

/// Row-dot-products: ascending-k accumulation per element.
Tensor RefTransB(const Tensor& a, const Tensor& b) {
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor c(m, n);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(j, kk);
      c.at(i, j) = acc;
    }
  }
  return c;
}

/// The ColSum contract: fixed kColSumRowBlock row blocks in ascending order.
Tensor RefColSum(const Tensor& a) {
  Tensor out(1, a.cols());
  for (int64_t r0 = 0; r0 < a.rows(); r0 += kColSumRowBlock) {
    const int64_t r1 = std::min(a.rows(), r0 + kColSumRowBlock);
    Tensor partial(1, a.cols());
    for (int64_t r = r0; r < r1; ++r) {
      for (int64_t c = 0; c < a.cols(); ++c) partial[c] += a.at(r, c);
    }
    for (int64_t c = 0; c < a.cols(); ++c) out[c] += partial[c];
  }
  return out;
}

void ExpectSameBits(const Tensor& got, const Tensor& want,
                    const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i])
        << what << " differs at flat index " << i << " (" << got.rows() << "x"
        << got.cols() << ")";
  }
}

/// Random matrix with exact-zero rows/columns sprinkled in, to exercise the
/// zero-skip paths and ragged padding.
Tensor TestMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(rows, cols, &rng);
  for (int64_t i = 0; i < t.numel(); i += 7) t[i] = 0.0f;
  if (rows > 2) {
    for (int64_t c = 0; c < cols; ++c) t.at(rows / 2, c) = 0.0f;
  }
  return t;
}

// ------------------------------------------------- blocked GEMM equivalence

struct GemmShape {
  int64_t m, k, n;
};

// Ragged shapes: unit dims, primes, micro-tile remainders, above and below
// the small-GEMM cutoff, and k spanning multiple TransA blocks.
const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {1, 1, 9},     {5, 1, 3},    {1, 300, 1},
    {17, 31, 13}, {64, 64, 64}, {65, 67, 33},  {4, 300, 8},  {128, 96, 64},
    {127, 253, 131}, {3, 1000, 5}, {40, 520, 24}, {256, 256, 16},
};

TEST(BlockedGemm, MatMulMatchesNaiveOnRaggedShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = TestMatrix(s.m, s.k, /*seed=*/s.m * 131 + s.k);
    const Tensor b = TestMatrix(s.k, s.n, /*seed=*/s.k * 17 + s.n);
    ExpectSameBits(MatMul(a, b), RefMatMul(a, b), "MatMul");
  }
}

TEST(BlockedGemm, TransAMatchesFixedBlockSpec) {
  for (const auto& s : kShapes) {
    // Reuse (m, k, n) as (k, m, n): A is (k x m), B is (k x n).
    const Tensor a = TestMatrix(s.k, s.m, /*seed=*/s.k * 7 + s.m);
    const Tensor b = TestMatrix(s.k, s.n, /*seed=*/s.n * 13 + s.k);
    ExpectSameBits(MatMulTransA(a, b), RefTransA(a, b), "MatMulTransA");
  }
}

TEST(BlockedGemm, TransBMatchesNaiveOnRaggedShapes) {
  for (const auto& s : kShapes) {
    const Tensor a = TestMatrix(s.m, s.k, /*seed=*/s.m * 3 + s.k);
    const Tensor b = TestMatrix(s.n, s.k, /*seed=*/s.n * 31 + s.k);
    ExpectSameBits(MatMulTransB(a, b), RefTransB(a, b), "MatMulTransB");
  }
}

TEST(BlockedGemm, ZeroSizedOperands) {
  const Tensor a(0, 5);
  const Tensor b(5, 3);
  EXPECT_EQ(MatMul(a, b).rows(), 0);
  EXPECT_EQ(MatMul(a, b).cols(), 3);
  const Tensor c(4, 0);
  const Tensor d(0, 3);
  const Tensor prod = MatMul(c, d);  // (4 x 0) * (0 x 3) -> zeros
  ExpectSameBits(prod, Tensor(4, 3), "empty-k MatMul");
}

TEST(BlockedGemm, ColSumMatchesFixedBlockSpec) {
  for (const int64_t rows : {1L, 7L, 1024L, 1025L, 3000L}) {
    const Tensor a = TestMatrix(rows, 33, /*seed=*/rows);
    ExpectSameBits(ColSum(a), RefColSum(a), "ColSum");
  }
}

// ------------------------------------------------- thread-count invariance

#ifdef _OPENMP
template <typename Fn>
void ExpectThreadCountInvariant(Fn&& fn, const char* what) {
  const int old_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const Tensor t1 = fn();
  omp_set_num_threads(4);
  const Tensor t4 = fn();
  omp_set_num_threads(old_threads);
  ExpectSameBits(t4, t1, what);
}

TEST(ThreadInvariance, DenseKernels) {
  const Tensor a = TestMatrix(513, 301, 1);
  const Tensor b = TestMatrix(301, 47, 2);
  ExpectThreadCountInvariant([&] { return MatMul(a, b); }, "MatMul");
  const Tensor at = TestMatrix(1000, 37, 3);
  const Tensor bt = TestMatrix(1000, 29, 4);
  ExpectThreadCountInvariant([&] { return MatMulTransA(at, bt); },
                             "MatMulTransA");
  const Tensor bb = TestMatrix(53, 301, 5);
  ExpectThreadCountInvariant([&] { return MatMulTransB(a, bb); },
                             "MatMulTransB");
  const Tensor big = TestMatrix(5000, 40, 6);
  ExpectThreadCountInvariant([&] { return ColSum(big); }, "ColSum");
  ExpectThreadCountInvariant([&] { return RowSum(big); }, "RowSum");
  ExpectThreadCountInvariant(
      [&] {
        Tensor x = big;
        x.AxpyInPlace(0.5f, big);
        x.MulInPlace(big);
        x.ScaleInPlace(1.25f);
        return x;
      },
      "elementwise in-place");
}

TEST(ThreadInvariance, SpMM) {
  Rng rng(9);
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < 4000; ++i) {
    entries.push_back({static_cast<int64_t>(rng.UniformInt(500)),
                       static_cast<int64_t>(rng.UniformInt(500)), 1.0f});
  }
  const auto m = CsrMatrix::FromCoo(500, 500, std::move(entries));
  const Tensor x = TestMatrix(500, 64, 10);
  ExpectThreadCountInvariant([&] { return m.SpMM(x); }, "SpMM");
}
#endif  // _OPENMP

// --------------------------------------------------------------- fused ops

TEST(FusedOps, AddBiasReluMatchesUnfusedChain) {
  Rng rng(11);
  for (const int64_t rows : {1L, 5L, 300L, 1500L}) {
    Variable a1(Tensor::Randn(rows, 19, &rng), /*requires_grad=*/true);
    Variable b1(Tensor::Randn(1, 19, &rng), /*requires_grad=*/true);
    Variable a2(a1.value(), /*requires_grad=*/true);
    Variable b2(b1.value(), /*requires_grad=*/true);

    Variable fused = ops::AddBiasRelu(a1, b1);
    Variable chain = ops::Relu(ops::AddBias(a2, b2));
    ExpectSameBits(fused.value(), chain.value(), "AddBiasRelu forward");

    ops::SumAll(ops::Mul(fused, fused)).Backward();
    ops::SumAll(ops::Mul(chain, chain)).Backward();
    ExpectSameBits(a1.grad(), a2.grad(), "AddBiasRelu d_input");
    ExpectSameBits(b1.grad(), b2.grad(), "AddBiasRelu d_bias");
  }
}

TEST(FusedOps, CrossEntropyMatchesUnfusedChain) {
  Rng rng(13);
  const int64_t n = 400, classes = 7;
  Variable l1(Tensor::Randn(n, classes, &rng), /*requires_grad=*/true);
  Variable l2(l1.value(), /*requires_grad=*/true);
  std::vector<int64_t> index;
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < n; i += 3) {
    index.push_back(i);
    labels.push_back(static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(classes))));
  }

  Variable fused = ops::CrossEntropy(l1, index, labels);
  Variable chain =
      ops::NllLoss(ops::GatherRows(ops::LogSoftmaxRows(l2), index), labels);
  EXPECT_EQ(fused.value().scalar(), chain.value().scalar());

  fused.Backward();
  chain.Backward();
  ExpectSameBits(l1.grad(), l2.grad(), "CrossEntropy d_logits");
}

TEST(FusedOps, CrossEntropyDuplicateIndicesAccumulate) {
  Rng rng(17);
  Variable logits(Tensor::Randn(5, 3, &rng), /*requires_grad=*/true);
  const std::vector<int64_t> index = {2, 2, 4};
  const std::vector<int64_t> labels = {0, 1, 2};
  Variable loss = ops::CrossEntropy(logits, index, labels);
  loss.Backward();
  // Row 2 must carry both occurrences' gradients; rows 0/1/3 none.
  EXPECT_NE(logits.grad().at(2, 0), 0.0f);
  EXPECT_EQ(logits.grad().at(0, 0), 0.0f);
  EXPECT_EQ(logits.grad().at(1, 0), 0.0f);
  EXPECT_EQ(logits.grad().at(3, 0), 0.0f);
  // And the loss is finite and positive.
  EXPECT_GT(loss.value().scalar(), 0.0f);
}

TEST(FusedOps, AddBiasReluGradCheck) {
  Rng rng(19);
  std::vector<Variable> inputs;
  // Shift away from 0 so the finite-difference step never crosses the ReLU
  // kink (the subgradient there would dominate the error estimate).
  Tensor a = Tensor::Randn(6, 5, &rng);
  for (int64_t i = 0; i < a.numel(); ++i) {
    a[i] += a[i] >= 0.0f ? 0.5f : -0.5f;
  }
  inputs.emplace_back(a, /*requires_grad=*/true);
  inputs.emplace_back(Tensor::Full(1, 5, 0.05f), /*requires_grad=*/true);
  const auto f = [](const std::vector<Variable>& in) {
    return ops::SumAll(ops::Mul(ops::AddBiasRelu(in[0], in[1]),
                                ops::AddBiasRelu(in[0], in[1])));
  };
  for (size_t arg = 0; arg < inputs.size(); ++arg) {
    const GradCheckResult r = CheckGradient(f, &inputs, arg);
    EXPECT_TRUE(r.ok) << "AddBiasRelu grad check failed for input " << arg
                      << ": max_abs_err=" << r.max_abs_err
                      << " max_rel_err=" << r.max_rel_err;
  }
}

TEST(FusedOps, LogSoftmaxNllGradCheck) {
  Rng rng(23);
  std::vector<Variable> inputs;
  inputs.emplace_back(Tensor::Randn(8, 4, &rng), /*requires_grad=*/true);
  const std::vector<int64_t> index = {0, 2, 2, 5, 7};
  const std::vector<int64_t> labels = {1, 0, 3, 2, 1};
  const auto f = [&index, &labels](const std::vector<Variable>& in) {
    return ops::LogSoftmaxNll(in[0], index, labels);
  };
  const GradCheckResult r = CheckGradient(f, &inputs, 0);
  EXPECT_TRUE(r.ok) << "LogSoftmaxNll grad check failed: max_abs_err="
                    << r.max_abs_err << " max_rel_err=" << r.max_rel_err;
}

// ------------------------------------------------------------- tensor pool

TEST(TensorPoolTest, ReusesBuffersWithoutAliasing) {
  if (!TensorPool::Enabled()) {
    GTEST_SKIP() << "pool compiled out (sanitizer build) or disabled";
  }
  TensorPool::Clear();
  const TensorPool::Stats before = TensorPool::GetStats();

  const float* recycled = nullptr;
  {
    Tensor t(256, 256);
    recycled = t.data();
    t.Fill(42.0f);
  }  // buffer returns to the pool here
  Tensor u(256, 256);
  EXPECT_EQ(u.data(), recycled) << "freed buffer was not recycled";
  const TensorPool::Stats after = TensorPool::GetStats();
  EXPECT_GT(after.hits, before.hits);
  // Recycled buffers must come back zeroed.
  for (int64_t i = 0; i < u.numel(); ++i) ASSERT_EQ(u[i], 0.0f);

  // Live tensors never share storage: copies get their own buffer...
  Tensor copy = u;
  EXPECT_NE(copy.data(), u.data());
  copy.Fill(7.0f);
  EXPECT_EQ(u[0], 0.0f);
  // ...and a second fresh tensor cannot receive a live tensor's buffer.
  Tensor w(256, 256);
  EXPECT_NE(w.data(), u.data());
  EXPECT_NE(w.data(), copy.data());
}

TEST(TensorPoolTest, MoveTransfersOwnership) {
  if (!TensorPool::Enabled()) {
    GTEST_SKIP() << "pool compiled out (sanitizer build) or disabled";
  }
  Tensor t(128, 128);
  t.Fill(3.0f);
  const float* buf = t.data();
  Tensor moved = std::move(t);
  EXPECT_EQ(moved.data(), buf);
  EXPECT_EQ(moved.at(5, 5), 3.0f);
  EXPECT_EQ(t.numel(), 0);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(TensorPoolTest, KillSwitchStopsRecycling) {
  if (!TensorPool::Enabled()) {
    GTEST_SKIP() << "pool compiled out (sanitizer build) or disabled";
  }
  TensorPool::SetEnabled(false);
  EXPECT_FALSE(TensorPool::Enabled());
  const TensorPool::Stats disabled = TensorPool::GetStats();
  EXPECT_EQ(disabled.cached_bytes, 0u);  // SetEnabled(false) drains the pool
  TensorPool::SetEnabled(true);
  EXPECT_TRUE(TensorPool::Enabled());
}

// ------------------------------------------------------- Kahan summation

TEST(KahanSum, CompensatesBeyondPlainDoubleAccumulation) {
  // 3.4e38 swamps 1e22 even in a double accumulator (ulp(3.4e38) ~ 7.6e22),
  // so a plain double sum returns 1e22 here and classic Kahan also drops
  // one term (the correction is swallowed by the cancellation at -3.4e38).
  // The Neumaier compensation carries both small terms across.
  Tensor t = Tensor::FromData(2, 2, {3.4e38f, 1e22f, -3.4e38f, 1e22f});
  EXPECT_FLOAT_EQ(t.Sum(), 2e22f);
  EXPECT_FLOAT_EQ(t.Mean(), 0.5e22f);
}

TEST(KahanSum, MeanIsSumOverCount) {
  Rng rng(29);
  const Tensor t = Tensor::Randn(100, 7, &rng);
  EXPECT_FLOAT_EQ(t.Mean(), t.Sum() / static_cast<float>(t.numel()));
}

// ------------------------------------------------------------ sparse fast paths

TEST(SparseFastPaths, IdentityMatchesFromCoo) {
  for (const int64_t n : {0L, 1L, 5L, 257L}) {
    const CsrMatrix direct = CsrMatrix::Identity(n);
    std::vector<CooEntry> entries;
    for (int64_t i = 0; i < n; ++i) entries.push_back({i, i, 1.0f});
    const CsrMatrix via_coo = CsrMatrix::FromCoo(n, n, std::move(entries));
    EXPECT_EQ(direct.row_ptr(), via_coo.row_ptr()) << "n=" << n;
    EXPECT_EQ(direct.col_idx(), via_coo.col_idx()) << "n=" << n;
    EXPECT_EQ(direct.values(), via_coo.values()) << "n=" << n;
  }
}

TEST(SparseFastPaths, TransposedMatchesCooRoundTrip) {
  Rng rng(31);
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < 900; ++i) {
    entries.push_back({static_cast<int64_t>(rng.UniformInt(60)),
                       static_cast<int64_t>(rng.UniformInt(45)),
                       static_cast<float>(rng.Uniform(-1.0, 1.0))});
  }
  const CsrMatrix m = CsrMatrix::FromCoo(60, 45, std::move(entries));
  const auto direct = m.Transposed();
  // Oracle: swap every entry and rebuild through the sorting constructor.
  std::vector<CooEntry> swapped;
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t p = m.row_ptr()[static_cast<size_t>(r)];
         p < m.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
      swapped.push_back({m.col_idx()[static_cast<size_t>(p)], r,
                         m.values()[static_cast<size_t>(p)]});
    }
  }
  const CsrMatrix oracle = CsrMatrix::FromCoo(45, 60, std::move(swapped));
  EXPECT_EQ(direct->row_ptr(), oracle.row_ptr());
  EXPECT_EQ(direct->col_idx(), oracle.col_idx());
  EXPECT_EQ(direct->values(), oracle.values());
  // Cache: repeated calls hand back the same matrix.
  EXPECT_EQ(direct.get(), m.Transposed().get());
}

// ------------------------------------------------------------ SpMM contract

/// The SpMM bitwise contract: one float accumulator per (row, feature),
/// the row's entries added in ascending-p order. The vectorised kernels
/// (full-width 8-float panels) must reproduce this exactly because each
/// output element still sums the same values in the same order — panels
/// vectorise across features, never across the reduction.
Tensor RefSpmm(const CsrMatrix& m, const Tensor& x) {
  Tensor y(m.rows(), x.cols());
  const auto& rp = m.row_ptr();
  const auto& ci = m.col_idx();
  const auto& v = m.values();
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < x.cols(); ++c) {
      float acc = 0.0f;
      for (int64_t p = rp[static_cast<size_t>(r)];
           p < rp[static_cast<size_t>(r) + 1]; ++p) {
        acc += v[static_cast<size_t>(p)] *
               x.at(ci[static_cast<size_t>(p)], c);
      }
      y.at(r, c) = acc;
    }
  }
  return y;
}

TEST(SpmmContract, BitwiseMatchesScalarReferenceOnRaggedWidths) {
  // Widths straddle every dispatch path: scalar tail only (1, 3), one
  // 8-panel (8), panel + tail (17), full 64-slab (64), slab + 32 + 8 +
  // tail (107). Rows 20..29 are left structurally empty.
  Rng rng(17);
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < 700; ++i) {
    int64_t r = static_cast<int64_t>(rng.UniformInt(97));
    if (r >= 20 && r < 30) r = 5;
    entries.push_back({r, static_cast<int64_t>(rng.UniformInt(53)),
                       static_cast<float>(rng.Uniform(-1.0, 1.0))});
  }
  const CsrMatrix m = CsrMatrix::FromCoo(97, 53, std::move(entries));
  for (const int64_t f : {1L, 3L, 8L, 17L, 64L, 107L}) {
    Rng xr(static_cast<uint64_t>(f) + 100);
    const Tensor x = Tensor::Randn(53, f, &xr);
    const Tensor got = m.SpMM(x);
    const Tensor want = RefSpmm(m, x);
    ASSERT_EQ(got.rows(), want.rows());
    for (int64_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "f=" << f << " flat=" << i;
    }
    // Empty rows come out exactly zero.
    for (int64_t r = 20; r < 30; ++r) {
      for (int64_t c = 0; c < f; ++c) {
        ASSERT_EQ(got.at(r, c), 0.0f) << "empty row " << r;
      }
    }
  }
}

TEST(SpmmContract, BitwiseOnPowerLawDegrees) {
  // Hub-heavy rows: row ids drawn ~ n * U^3, so a handful of rows collect
  // hundreds of entries (exercising long reductions through the slab
  // kernels) while most rows hold a few or none.
  Rng rng(19);
  const int64_t n = 300;
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < 6000; ++i) {
    const double u = rng.Uniform();
    const int64_t r = static_cast<int64_t>(static_cast<double>(n) * u * u * u);
    entries.push_back({std::min(r, n - 1),
                       static_cast<int64_t>(rng.UniformInt(n)),
                       static_cast<float>(rng.Uniform(-1.0, 1.0))});
  }
  const CsrMatrix m = CsrMatrix::FromCoo(n, n, std::move(entries));
  Rng xr(23);
  const Tensor x = Tensor::Randn(n, 48, &xr);
  ExpectSameBits(m.SpMM(x), RefSpmm(m, x), "SpMM power-law");
}

// ---------------------------------------------------------- fused GAT kernel

/// The unfused chain GatSegmentAttention replaces; kept verbatim from the
/// original GATConv::Forward as the equivalence oracle.
Variable ChainGat(const Variable& h, const Variable& sl, const Variable& sr,
                  const std::vector<int64_t>& src,
                  const std::vector<int64_t>& dst, int64_t n, float slope,
                  float dropout_p, bool training, Rng* rng) {
  Variable e = ops::LeakyRelu(
      ops::Add(ops::GatherRows(sl, src), ops::GatherRows(sr, dst)), slope);
  Variable alpha = ops::SegmentSoftmax(e, dst, n);
  if (dropout_p > 0.0f) {
    alpha = ops::Dropout(alpha, dropout_p, training, rng);
  }
  Variable messages = ops::RowScale(ops::GatherRows(h, src), alpha);
  return ops::ScatterAddRows(messages, dst, n);
}

/// Directed edge list with self loops for a small random graph.
void TestEdges(int64_t n, uint64_t seed, std::vector<int64_t>* src,
               std::vector<int64_t>* dst) {
  Rng rng(seed);
  for (int64_t i = 0; i < n * 3; ++i) {
    const int64_t u = static_cast<int64_t>(rng.UniformInt(n));
    const int64_t v = static_cast<int64_t>(rng.UniformInt(n));
    if (u == v) continue;
    src->push_back(u);
    dst->push_back(v);
  }
  for (int64_t v = 0; v < n; ++v) {
    src->push_back(v);
    dst->push_back(v);
  }
}

/// Runs fused or chain GAT with h/sl/sr as independent leaves (the op's
/// own bitwise contract: when sl/sr are derived from h via MatMul, the
/// ORDER in which sibling nodes add into h.grad is a property of the
/// tape's topological sort, not of the op) and a non-uniform upstream
/// gradient (loss = sum(out * weights)).
struct GatRun {
  Tensor out, d_h, d_sl, d_sr;
};
GatRun RunGat(bool fused, const Tensor& h_val, const Tensor& sl_val,
              const Tensor& sr_val, const std::vector<int64_t>& src,
              const std::vector<int64_t>& dst, int64_t n, float dropout_p,
              Rng* rng) {
  Variable h(h_val, /*requires_grad=*/true);
  Variable sl(sl_val, /*requires_grad=*/true);
  Variable sr(sr_val, /*requires_grad=*/true);
  Variable out =
      fused ? ops::GatSegmentAttention(h, sl, sr, src, dst, n,
                                       /*negative_slope=*/0.2f, dropout_p,
                                       /*training=*/true, rng)
            : ChainGat(h, sl, sr, src, dst, n, 0.2f, dropout_p, true, rng);
  Rng wr(7);
  Variable weights(Tensor::Randn(n, h_val.cols(), &wr));
  ops::SumAll(ops::Mul(out, weights)).Backward();
  return {out.value(), h.grad(), sl.grad(), sr.grad()};
}

TEST(FusedGat, ForwardAndBackwardMatchChainBitwise) {
  const int64_t n = 37, f = 19;
  std::vector<int64_t> src, dst;
  TestEdges(n, 41, &src, &dst);
  Rng rng(43);
  const Tensor h_val = Tensor::Randn(n, f, &rng);
  const Tensor sl_val = Tensor::Randn(n, 1, &rng);
  const Tensor sr_val = Tensor::Randn(n, 1, &rng);
  const GatRun chain =
      RunGat(false, h_val, sl_val, sr_val, src, dst, n, 0.0f, nullptr);
  const GatRun fused =
      RunGat(true, h_val, sl_val, sr_val, src, dst, n, 0.0f, nullptr);
  ExpectSameBits(fused.out, chain.out, "fused GAT forward");
  ExpectSameBits(fused.d_h, chain.d_h, "fused GAT d_h");
  ExpectSameBits(fused.d_sl, chain.d_sl, "fused GAT d_sl");
  ExpectSameBits(fused.d_sr, chain.d_sr, "fused GAT d_sr");
}

TEST(FusedGat, DropoutRngStreamMatchesChain) {
  const int64_t n = 23, f = 8;
  std::vector<int64_t> src, dst;
  TestEdges(n, 47, &src, &dst);
  Rng rng(53);
  const Tensor h_val = Tensor::Randn(n, f, &rng);
  const Tensor sl_val = Tensor::Randn(n, 1, &rng);
  const Tensor sr_val = Tensor::Randn(n, 1, &rng);
  Rng chain_rng(97), fused_rng(97);  // identical stream for both sides
  const GatRun chain =
      RunGat(false, h_val, sl_val, sr_val, src, dst, n, 0.4f, &chain_rng);
  const GatRun fused =
      RunGat(true, h_val, sl_val, sr_val, src, dst, n, 0.4f, &fused_rng);
  ExpectSameBits(fused.out, chain.out, "fused GAT dropout forward");
  ExpectSameBits(fused.d_h, chain.d_h, "fused GAT dropout d_h");
  ExpectSameBits(fused.d_sl, chain.d_sl, "fused GAT dropout d_sl");
  ExpectSameBits(fused.d_sr, chain.d_sr, "fused GAT dropout d_sr");
}

TEST(FusedGat, EvalModeDropoutIsIdentity) {
  const int64_t n = 11, f = 4;
  std::vector<int64_t> src, dst;
  TestEdges(n, 59, &src, &dst);
  Rng rng(61);
  Variable h(Tensor::Randn(n, f, &rng));
  Variable sl(Tensor::Randn(n, 1, &rng));
  Variable sr(Tensor::Randn(n, 1, &rng));
  Rng drop_rng(1);
  const Variable with_p = ops::GatSegmentAttention(
      h, sl, sr, src, dst, n, 0.2f, /*dropout_p=*/0.5f,
      /*training=*/false, &drop_rng);
  const Variable without = ops::GatSegmentAttention(
      h, sl, sr, src, dst, n, 0.2f, /*dropout_p=*/0.0f,
      /*training=*/false, nullptr);
  ExpectSameBits(with_p.value(), without.value(), "eval-mode dropout");
}

TEST(FusedGat, GradCheckAgainstFiniteDifferences) {
  const int64_t n = 9, f = 5;
  std::vector<int64_t> src, dst;
  TestEdges(n, 67, &src, &dst);
  Rng rng(71);
  std::vector<Variable> inputs;
  inputs.emplace_back(Tensor::Randn(n, f, &rng), /*requires_grad=*/true);
  inputs.emplace_back(Tensor::Randn(n, 1, &rng), /*requires_grad=*/true);
  inputs.emplace_back(Tensor::Randn(n, 1, &rng), /*requires_grad=*/true);
  auto fn = [&](const std::vector<Variable>& in) {
    return ops::SumAll(ops::GatSegmentAttention(in[0], in[1], in[2], src,
                                                dst, n, 0.2f, 0.0f, false,
                                                nullptr));
  };
  for (size_t i = 0; i < inputs.size(); ++i) {
    const GradCheckResult r = CheckGradient(fn, &inputs, i);
    EXPECT_TRUE(r.ok) << "input " << i << " max_abs_err=" << r.max_abs_err
                      << " max_rel_err=" << r.max_rel_err << " at "
                      << r.worst_index;
  }
}

#ifdef _OPENMP
TEST(ThreadInvariance, FusedGatForward) {
  const int64_t n = 200, f = 32;
  std::vector<int64_t> src, dst;
  TestEdges(n, 73, &src, &dst);
  Rng rng(79);
  const Tensor h_val = Tensor::Randn(n, f, &rng);
  const Tensor a_src = Tensor::Randn(f, 1, &rng);
  const Tensor a_dst = Tensor::Randn(f, 1, &rng);
  ExpectThreadCountInvariant(
      [&] {
        Variable h(h_val, /*requires_grad=*/true);
        Variable sl = ops::MatMul(h, Variable(a_src));
        Variable sr = ops::MatMul(h, Variable(a_dst));
        Variable out = ops::GatSegmentAttention(h, sl, sr, src, dst, n,
                                                0.2f, 0.0f, true, nullptr);
        ops::SumAll(out).Backward();
        Tensor both(n, f + 1);
        // Pack forward value and d_h into one tensor so a single bitwise
        // comparison covers the whole pass.
        for (int64_t r = 0; r < n; ++r) {
          for (int64_t c = 0; c < f; ++c) both.at(r, c) = h.grad().at(r, c);
          both.at(r, f) = out.value().at(r, 0);
        }
        return both;
      },
      "fused GAT forward+backward");
}
#endif  // _OPENMP

}  // namespace
}  // namespace tensor
}  // namespace graphrare

// Edge-case tests for the op library: extreme values, degenerate shapes,
// numerical stability.

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace graphrare {
namespace tensor {
namespace {

namespace ops = tensor::ops;

Variable Leaf(Tensor t) { return Variable(std::move(t), true); }

TEST(OpsEdgeTest, LogSoftmaxStableForLargeLogits) {
  Tensor t = Tensor::FromData(2, 3, {1000.0f, 999.0f, 998.0f,  //
                                     -1000.0f, -999.0f, -998.0f});
  Variable x(t, false);
  Tensor lp = ops::LogSoftmaxRows(x).value();
  EXPECT_FALSE(lp.HasNonFinite());
  // Rows are shifted copies of the same logits -> identical log-softmax.
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(lp.at(0, c), lp.at(1, 2 - c), 1e-4);
  }
}

TEST(OpsEdgeTest, SoftmaxSingleColumnIsOne) {
  Variable x(Tensor::FromData(3, 1, {-5.0f, 0.0f, 5.0f}), false);
  Tensor p = ops::SoftmaxRows(x).value();
  for (int64_t r = 0; r < 3; ++r) EXPECT_FLOAT_EQ(p.at(r, 0), 1.0f);
}

TEST(OpsEdgeTest, SegmentSoftmaxSingletonSegments) {
  Variable s(Tensor::FromData(3, 1, {7.0f, -2.0f, 0.5f}), false);
  Tensor alpha = ops::SegmentSoftmax(s, {0, 1, 2}, 3).value();
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(alpha.at(i, 0), 1.0f);
}

TEST(OpsEdgeTest, SegmentSoftmaxEmptySegmentsTolerated) {
  // Segment 1 has no edges; segments 0 and 2 normalise independently.
  Variable s(Tensor::FromData(4, 1, {1.0f, 1.0f, 3.0f, 3.0f}), false);
  Tensor alpha = ops::SegmentSoftmax(s, {0, 0, 2, 2}, 3).value();
  EXPECT_NEAR(alpha.at(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(alpha.at(2, 0), 0.5f, 1e-6);
}

TEST(OpsEdgeTest, ConcatSingleInputIsCopy) {
  Rng rng(1);
  Variable x = Leaf(Tensor::Randn(3, 4, &rng));
  Variable y = ops::ConcatCols({x});
  EXPECT_TRUE(y.value().AllClose(x.value()));
  ops::SumAll(y).Backward();
  EXPECT_TRUE(x.grad().AllClose(Tensor::Ones(3, 4)));
}

TEST(OpsEdgeTest, GatherRowsEmptyIndex) {
  Rng rng(2);
  Variable x = Leaf(Tensor::Randn(3, 4, &rng));
  Variable y = ops::GatherRows(x, {});
  EXPECT_EQ(y.value().rows(), 0);
  EXPECT_EQ(y.value().cols(), 4);
}

TEST(OpsEdgeTest, ClampGradientInclusiveAtBoundary) {
  // PyTorch semantics: gradient flows where lo <= x <= hi (inclusive).
  Variable x = Leaf(Tensor::FromData(1, 3, {-1.0f, 0.0f, 1.0f}));
  ops::SumAll(ops::Clamp(x, -1.0f, 1.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
}

TEST(OpsEdgeTest, ClampGradientZeroOutside) {
  Variable x = Leaf(Tensor::FromData(1, 2, {-2.0f, 2.0f}));
  ops::SumAll(ops::Clamp(x, -1.0f, 1.0f)).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.0f);
}

TEST(OpsEdgeTest, MinTieGradientGoesToFirst) {
  Variable a = Leaf(Tensor::Scalar(2.0f));
  Variable b = Leaf(Tensor::Scalar(2.0f));
  ops::Min(a, b).Backward();
  EXPECT_FLOAT_EQ(a.grad().scalar(), 1.0f);
  EXPECT_FLOAT_EQ(b.grad().scalar(), 0.0f);
}

TEST(OpsEdgeTest, HighDropoutStillUnbiased) {
  Rng rng(3);
  Variable x = Leaf(Tensor::Ones(100, 100));
  Variable y = ops::Dropout(x, 0.9f, true, &rng);
  // E[y] = 1; with 10k samples the mean is close.
  EXPECT_NEAR(y.value().Mean(), 1.0f, 0.1f);
}

TEST(OpsEdgeTest, ExpOfLogIsIdentityGradient) {
  Variable x = Leaf(Tensor::FromData(1, 3, {0.5f, 1.0f, 2.0f}));
  ops::SumAll(ops::Exp(ops::Log(x))).Backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad()[i], 1.0f, 1e-4);
  }
}

TEST(OpsEdgeTest, NllLossSingleRow) {
  Variable lp = Leaf(Tensor::FromData(1, 3, {-1.0f, -2.0f, -0.5f}));
  Variable loss = ops::NllLoss(lp, {2});
  EXPECT_FLOAT_EQ(loss.value().scalar(), 0.5f);
  loss.Backward();
  EXPECT_FLOAT_EQ(lp.grad().at(0, 2), -1.0f);
  EXPECT_FLOAT_EQ(lp.grad().at(0, 0), 0.0f);
}

TEST(OpsEdgeTest, ScatterAddAllToOneRow) {
  Variable x = Leaf(Tensor::Ones(4, 2));
  Variable y = ops::ScatterAddRows(x, {1, 1, 1, 1}, 3);
  EXPECT_FLOAT_EQ(y.value().at(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.value().at(0, 0), 0.0f);
  ops::SumAll(ops::Square(y)).Backward();
  // d/dx_i = 2 * y[1,:] = 8 for every contributing row.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x.grad().at(i, 0), 8.0f);
  }
}

TEST(OpsEdgeTest, RowScaleByZeroKillsGradientToX) {
  Variable x = Leaf(Tensor::Ones(2, 3));
  Variable s = Leaf(Tensor::FromData(2, 1, {0.0f, 2.0f}));
  ops::SumAll(ops::RowScale(x, s)).Backward();
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.grad().at(0, 0), 3.0f);  // sum of x row
}

TEST(OpsEdgeTest, ChainedGraphDeepComposition) {
  // 30-op chain exercises the topo sort on long graphs.
  Variable x = Leaf(Tensor::Scalar(0.5f));
  Variable y = x;
  for (int i = 0; i < 30; ++i) {
    y = ops::Tanh(ops::AddScalar(y, 0.01f));
  }
  ops::SumAll(y).Backward();
  EXPECT_TRUE(x.has_grad());
  EXPECT_GT(x.grad().scalar(), 0.0f);
  EXPECT_LT(x.grad().scalar(), 1.0f);
}

}  // namespace
}  // namespace tensor
}  // namespace graphrare

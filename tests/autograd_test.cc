// Autograd correctness: every op is validated against central finite
// differences via CheckGradient, plus tape-mechanics tests (accumulation,
// detach, pruning).

#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace graphrare {
namespace tensor {
namespace {

namespace ops = tensor::ops;

Variable Leaf(Tensor t) { return Variable(std::move(t), true); }

// Convenience: checks gradient of f wrt every input.
void ExpectGradientsOk(
    const std::function<Variable(const std::vector<Variable>&)>& f,
    std::vector<Variable> inputs) {
  for (size_t i = 0; i < inputs.size(); ++i) {
    GradCheckResult r = CheckGradient(f, &inputs, i);
    EXPECT_TRUE(r.ok) << "input " << i << ": max_abs_err=" << r.max_abs_err
                      << " at flat index " << r.worst_index;
  }
}

TEST(AutogradTest, BackwardOnScalarSetsGradOne) {
  Variable x = Leaf(Tensor::Scalar(3.0f));
  x.Backward();
  EXPECT_FLOAT_EQ(x.grad().scalar(), 1.0f);
}

TEST(AutogradTest, AddGradientsBothParents) {
  Variable a = Leaf(Tensor::Full(2, 2, 1.0f));
  Variable b = Leaf(Tensor::Full(2, 2, 2.0f));
  Variable loss = ops::SumAll(ops::Add(a, b));
  loss.Backward();
  EXPECT_TRUE(a.grad().AllClose(Tensor::Ones(2, 2)));
  EXPECT_TRUE(b.grad().AllClose(Tensor::Ones(2, 2)));
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  Variable a = Leaf(Tensor::Scalar(2.0f));
  // loss = a + a -> dloss/da = 2.
  Variable loss = ops::Add(a, a);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().scalar(), 2.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwards) {
  Variable a = Leaf(Tensor::Scalar(1.0f));
  ops::Scale(a, 3.0f).Backward();
  ops::Scale(a, 4.0f).Backward();
  EXPECT_FLOAT_EQ(a.grad().scalar(), 7.0f);
  a.ZeroGrad();
  EXPECT_FLOAT_EQ(a.grad().scalar(), 0.0f);
}

TEST(AutogradTest, DetachStopsGradient) {
  Variable a = Leaf(Tensor::Scalar(2.0f));
  Variable d = ops::Mul(a, a).Detach();
  EXPECT_FALSE(d.requires_grad());
  Variable loss = ops::Mul(d, d);
  loss.Backward();
  EXPECT_FALSE(a.has_grad());
}

TEST(AutogradTest, NoGradParentsPrunesTape) {
  Variable a(Tensor::Scalar(2.0f), /*requires_grad=*/false);
  Variable y = ops::Mul(a, a);
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, DiamondGraphGradient) {
  // loss = (a*a) + (a*3): dloss/da = 2a + 3 = 7 at a=2.
  Variable a = Leaf(Tensor::Scalar(2.0f));
  Variable loss = ops::Add(ops::Mul(a, a), ops::Scale(a, 3.0f));
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().scalar(), 7.0f);
}

// ---- Per-op finite-difference checks -------------------------------------

TEST(GradCheckTest, AddSubMul) {
  Rng rng(1);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(
            ops::Mul(ops::Add(in[0], in[1]), ops::Sub(in[0], in[1])));
      },
      {Leaf(Tensor::Randn(3, 4, &rng)), Leaf(Tensor::Randn(3, 4, &rng))});
}

TEST(GradCheckTest, MatMul) {
  Rng rng(2);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::MatMul(in[0], in[1]));
      },
      {Leaf(Tensor::Randn(3, 4, &rng)), Leaf(Tensor::Randn(4, 2, &rng))});
}

TEST(GradCheckTest, AddBias) {
  Rng rng(3);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::AddBias(in[0], in[1])));
      },
      {Leaf(Tensor::Randn(3, 4, &rng)), Leaf(Tensor::Randn(1, 4, &rng))});
}

TEST(GradCheckTest, ScaleAddScalarNeg) {
  Rng rng(4);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(
            ops::Neg(ops::AddScalar(ops::Scale(in[0], 2.5f), -1.0f)));
      },
      {Leaf(Tensor::Randn(2, 5, &rng))});
}

TEST(GradCheckTest, SpMM) {
  Rng rng(5);
  CsrMatrix m = CsrMatrix::FromCoo(
      3, 4, {{0, 1, 2.0f}, {1, 0, -1.0f}, {2, 3, 0.5f}, {0, 3, 1.5f}});
  auto shared = std::make_shared<CsrMatrix>(m);
  ExpectGradientsOk(
      [shared](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::SpMM(shared, in[0])));
      },
      {Leaf(Tensor::Randn(4, 3, &rng))});
}

TEST(GradCheckTest, ActivationsSmooth) {
  Rng rng(6);
  // Tanh / Sigmoid / Exp are smooth everywhere; ELU smooth a.e.
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Tanh(ops::Sigmoid(ops::Elu(in[0]))));
      },
      {Leaf(Tensor::Randn(3, 3, &rng))});
}

TEST(GradCheckTest, ReluAndLeakyReluAwayFromKink) {
  // Keep inputs away from 0 so finite differences are valid.
  Tensor t = Tensor::FromData(2, 3, {1.0f, -2.0f, 3.0f, -0.5f, 2.0f, -1.5f});
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(
            ops::Add(ops::Relu(in[0]), ops::LeakyRelu(in[0], 0.2f)));
      },
      {Leaf(t)});
}

TEST(GradCheckTest, ExpLog) {
  Rng rng(7);
  Tensor t = Tensor::Rand(3, 3, &rng, 0.5f, 2.0f);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Log(ops::Exp(ops::Log(in[0]))));
      },
      {Leaf(t)});
}

TEST(GradCheckTest, LogSoftmaxRows) {
  Rng rng(8);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::LogSoftmaxRows(in[0])));
      },
      {Leaf(Tensor::Randn(4, 5, &rng))});
}

TEST(GradCheckTest, SoftmaxRows) {
  Rng rng(9);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::SoftmaxRows(in[0])));
      },
      {Leaf(Tensor::Randn(4, 5, &rng))});
}

TEST(GradCheckTest, NllLoss) {
  Rng rng(10);
  std::vector<int64_t> labels = {0, 2, 1, 2};
  ExpectGradientsOk(
      [labels](const std::vector<Variable>& in) {
        return ops::NllLoss(ops::LogSoftmaxRows(in[0]), labels);
      },
      {Leaf(Tensor::Randn(4, 3, &rng))});
}

TEST(GradCheckTest, CrossEntropySubset) {
  Rng rng(11);
  std::vector<int64_t> index = {1, 3};
  std::vector<int64_t> labels = {2, 0};
  ExpectGradientsOk(
      [index, labels](const std::vector<Variable>& in) {
        return ops::CrossEntropy(in[0], index, labels);
      },
      {Leaf(Tensor::Randn(5, 3, &rng))});
}

TEST(GradCheckTest, Reductions) {
  Rng rng(12);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::Add(ops::MeanAll(ops::Square(in[0])),
                        ops::SumAll(ops::Square(ops::RowSumCols(in[0]))));
      },
      {Leaf(Tensor::Randn(3, 4, &rng))});
}

TEST(GradCheckTest, ConcatCols) {
  Rng rng(13);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::ConcatCols({in[0], in[1], in[2]})));
      },
      {Leaf(Tensor::Randn(3, 2, &rng)), Leaf(Tensor::Randn(3, 4, &rng)),
       Leaf(Tensor::Randn(3, 1, &rng))});
}

TEST(GradCheckTest, GatherRows) {
  Rng rng(14);
  std::vector<int64_t> idx = {2, 0, 2, 1};  // repeated index exercises accumulation
  ExpectGradientsOk(
      [idx](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::GatherRows(in[0], idx)));
      },
      {Leaf(Tensor::Randn(3, 4, &rng))});
}

TEST(GradCheckTest, ScatterAddRows) {
  Rng rng(15);
  std::vector<int64_t> idx = {1, 1, 0, 2};
  ExpectGradientsOk(
      [idx](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::ScatterAddRows(in[0], idx, 4)));
      },
      {Leaf(Tensor::Randn(4, 3, &rng))});
}

TEST(GradCheckTest, GatherCols) {
  Rng rng(16);
  std::vector<int64_t> idx = {2, 0, 1};
  ExpectGradientsOk(
      [idx](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::GatherCols(in[0], idx)));
      },
      {Leaf(Tensor::Randn(3, 3, &rng))});
}

TEST(GradCheckTest, RowScale) {
  Rng rng(17);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::RowScale(in[0], in[1])));
      },
      {Leaf(Tensor::Randn(4, 3, &rng)), Leaf(Tensor::Randn(4, 1, &rng))});
}

TEST(GradCheckTest, ScaleByScalar) {
  Rng rng(18);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::ScaleByScalar(in[0], in[1])));
      },
      {Leaf(Tensor::Randn(3, 3, &rng)), Leaf(Tensor::Scalar(0.7f))});
}

TEST(GradCheckTest, SegmentSoftmax) {
  Rng rng(19);
  std::vector<int64_t> seg = {0, 0, 1, 1, 1, 2};
  ExpectGradientsOk(
      [seg](const std::vector<Variable>& in) {
        return ops::SumAll(
            ops::Square(ops::SegmentSoftmax(in[0], seg, 3)));
      },
      {Leaf(Tensor::Randn(6, 1, &rng))});
}

TEST(GradCheckTest, ClampAwayFromBoundaries) {
  Tensor t = Tensor::FromData(2, 3, {-2.0f, -0.5f, 0.3f, 0.9f, 2.5f, -3.0f});
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::Clamp(in[0], -1.0f, 1.0f)));
      },
      {Leaf(t)});
}

TEST(GradCheckTest, MinElementwise) {
  Tensor a = Tensor::FromData(2, 2, {1.0f, 5.0f, -1.0f, 2.0f});
  Tensor b = Tensor::FromData(2, 2, {2.0f, 3.0f, 0.0f, 2.5f});
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::SumAll(ops::Square(ops::Min(in[0], in[1])));
      },
      {Leaf(a), Leaf(b)});
}

TEST(GradCheckTest, MseLoss) {
  Rng rng(20);
  ExpectGradientsOk(
      [](const std::vector<Variable>& in) {
        return ops::MseLoss(in[0], in[1]);
      },
      {Leaf(Tensor::Randn(3, 2, &rng)), Leaf(Tensor::Randn(3, 2, &rng))});
}

// ---- Dropout semantics ----------------------------------------------------

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(21);
  Variable x = Leaf(Tensor::Randn(4, 4, &rng));
  Variable y = ops::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

TEST(DropoutTest, ZeroProbabilityIsIdentity) {
  Rng rng(22);
  Variable x = Leaf(Tensor::Randn(4, 4, &rng));
  Variable y = ops::Dropout(x, 0.0f, /*training=*/true, &rng);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

TEST(DropoutTest, MaskZerosAndRescales) {
  Rng rng(23);
  Variable x = Leaf(Tensor::Ones(50, 50));
  Variable y = ops::Dropout(x, 0.5f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value()[i];
    EXPECT_TRUE(v == 0.0f || std::abs(v - 2.0f) < 1e-6f);
    zeros += v == 0.0f ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 2500.0, 0.5, 0.05);
}

TEST(DropoutTest, GradientFollowsMask) {
  Rng rng(24);
  Variable x = Leaf(Tensor::Ones(10, 10));
  Variable y = ops::Dropout(x, 0.3f, /*training=*/true, &rng);
  ops::SumAll(y).Backward();
  for (int64_t i = 0; i < x.grad().numel(); ++i) {
    const float g = x.grad()[i];
    const float v = y.value()[i];
    if (v == 0.0f) {
      EXPECT_EQ(g, 0.0f);
    } else {
      EXPECT_NEAR(g, 1.0f / 0.7f, 1e-5f);
    }
  }
}

// ---- Shape-mismatch death tests -------------------------------------------

TEST(AutogradDeathTest, BackwardOnMatrixAborts) {
  Variable x = Leaf(Tensor::Ones(2, 2));
  EXPECT_DEATH(x.Backward(), "scalar root");
}

TEST(AutogradDeathTest, AddShapeMismatchAborts) {
  Variable a = Leaf(Tensor::Ones(2, 2));
  Variable b = Leaf(Tensor::Ones(2, 3));
  EXPECT_DEATH(ops::Add(a, b), "shape mismatch");
}

}  // namespace
}  // namespace tensor
}  // namespace graphrare

// RL module tests: policy shapes, PPO mechanics (GAE, buffer discipline),
// and actual learning on a synthetic multi-discrete bandit environment.

#include <gtest/gtest.h>

#include "rl/env.h"
#include "rl/ppo.h"

namespace graphrare {
namespace rl {
namespace {

using tensor::Tensor;

TEST(PolicyTest, OutputShapes) {
  Rng rng(1);
  ActorCriticPolicy policy(6, 16, &rng);
  tensor::Variable obs(Tensor::Ones(10, 6), false);
  PolicyOutput out = policy.Forward(obs);
  EXPECT_EQ(out.k_logits.value().rows(), 10);
  EXPECT_EQ(out.k_logits.value().cols(), kNumActionChoices);
  EXPECT_EQ(out.d_logits.value().rows(), 10);
  EXPECT_TRUE(out.value.value().is_scalar());
}

TEST(PpoOptionsTest, Validation) {
  PpoOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.clip = 0.0f;
  EXPECT_FALSE(o.Validate().ok());
  o = PpoOptions();
  o.gamma = 1.5f;
  EXPECT_FALSE(o.Validate().ok());
  o = PpoOptions();
  o.steps_per_update = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(PpoAgentTest, ActReturnsBoundedDeltas) {
  PpoOptions opts;
  opts.steps_per_update = 4;
  PpoAgent agent(5, opts);
  Rng rng(2);
  const Tensor obs = Tensor::Rand(8, 5, &rng);
  const ActionSample a = agent.Act(obs);
  agent.StoreReward(0.0);
  EXPECT_EQ(a.delta_k.size(), 8u);
  EXPECT_EQ(a.delta_d.size(), 8u);
  for (int v : a.delta_k) EXPECT_TRUE(v >= -1 && v <= 1);
  for (int v : a.delta_d) EXPECT_TRUE(v >= -1 && v <= 1);
}

TEST(PpoAgentTest, ReadyToUpdateAfterRolloutFills) {
  PpoOptions opts;
  opts.steps_per_update = 3;
  PpoAgent agent(4, opts);
  Rng rng(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(agent.ReadyToUpdate());
    agent.Act(Tensor::Rand(5, 4, &rng));
    agent.StoreReward(0.1);
  }
  EXPECT_TRUE(agent.ReadyToUpdate());
  agent.Update(Tensor::Rand(5, 4, &rng));
  EXPECT_FALSE(agent.ReadyToUpdate());
  EXPECT_EQ(agent.num_updates(), 1);
}

TEST(PpoAgentTest, MeanBufferedReward) {
  PpoOptions opts;
  opts.steps_per_update = 8;
  PpoAgent agent(4, opts);
  Rng rng(4);
  agent.Act(Tensor::Rand(3, 4, &rng));
  agent.StoreReward(1.0);
  agent.Act(Tensor::Rand(3, 4, &rng));
  agent.StoreReward(3.0);
  EXPECT_DOUBLE_EQ(agent.MeanBufferedReward(), 2.0);
}

TEST(PpoAgentDeathTest, DoubleActAborts) {
  PpoAgent agent(4, {});
  Rng rng(5);
  agent.Act(Tensor::Rand(3, 4, &rng));
  EXPECT_DEATH(agent.Act(Tensor::Rand(3, 4, &rng)), "StoreReward");
}

TEST(PpoAgentDeathTest, StoreRewardWithoutActAborts) {
  PpoAgent agent(4, {});
  EXPECT_DEATH(agent.StoreReward(1.0), "Act");
}

TEST(PpoAgentTest, DeterministicForSeed) {
  PpoOptions opts;
  opts.seed = 77;
  PpoAgent a(4, opts), b(4, opts);
  Rng rng(6);
  const Tensor obs = Tensor::Rand(6, 4, &rng);
  const ActionSample sa = a.Act(obs);
  const ActionSample sb = b.Act(obs);
  EXPECT_EQ(sa.delta_k, sb.delta_k);
  EXPECT_EQ(sa.delta_d, sb.delta_d);
}

// ---- Learning sanity: a bandit where +1 on channel k is always best. -------

/// Each component's reward is +1 for delta_k = +1 and -1 for delta_k = -1;
/// d deltas are reward-neutral. Observations are constant; the optimal
/// policy pushes the k head towards "+1".
class AlwaysIncreaseBandit : public Env {
 public:
  explicit AlwaysIncreaseBandit(int64_t components)
      : components_(components) {}

  Tensor Reset() override { return Tensor::Ones(components_, obs_dim()); }

  double Step(const ActionSample& action, Tensor* next_obs) override {
    double reward = 0.0;
    for (int v : action.delta_k) reward += v;
    reward /= static_cast<double>(components_);
    *next_obs = Tensor::Ones(components_, obs_dim());
    return reward;
  }

  int64_t obs_dim() const override { return 3; }
  int64_t num_components() const override { return components_; }

 private:
  int64_t components_;
};

TEST(PpoLearningTest, LearnsToIncreaseK) {
  PpoOptions opts;
  opts.steps_per_update = 8;
  opts.update_epochs = 4;
  opts.lr = 3e-3f;
  opts.entropy_coef = 0.003f;
  opts.seed = 11;
  PpoAgent agent(3, opts);
  AlwaysIncreaseBandit env(6);
  const std::vector<double> rewards = RunAgentOnEnv(&agent, &env, 160);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 20; ++i) early += rewards[static_cast<size_t>(i)];
  for (size_t i = rewards.size() - 20; i < rewards.size(); ++i) {
    late += rewards[i];
  }
  early /= 20.0;
  late /= 20.0;
  EXPECT_GT(late, early + 0.2) << "PPO failed to improve on the bandit";
  EXPECT_GT(late, 0.5);  // near-optimal is 1.0
}

TEST(BatchedEnvsTest, SingleEnvMatchesUnbatchedLoopBitwise) {
  PpoOptions opts;
  opts.steps_per_update = 4;
  opts.seed = 21;
  PpoAgent plain_agent(3, opts);
  PpoAgent batched_agent(3, opts);
  AlwaysIncreaseBandit plain_env(5);
  AlwaysIncreaseBandit batched_env(5);
  const std::vector<double> plain =
      RunAgentOnEnv(&plain_agent, &plain_env, 24);
  const std::vector<double> batched = RunAgentOnBatchedEnvs(
      &batched_agent, {&batched_env}, 24);
  ASSERT_EQ(plain.size(), batched.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], batched[i]) << "reward diverges at step " << i;
  }
}

TEST(BatchedEnvsTest, SharedPolicyLearnsAcrossParallelEnvs) {
  PpoOptions opts;
  opts.steps_per_update = 8;
  opts.lr = 3e-3f;
  opts.entropy_coef = 0.003f;
  opts.seed = 23;
  PpoAgent agent(3, opts);
  AlwaysIncreaseBandit a(4), b(4), c(4);
  const std::vector<double> rewards =
      RunAgentOnBatchedEnvs(&agent, {&a, &b, &c}, 160);
  ASSERT_EQ(rewards.size(), 160u);
  double late = 0.0;
  for (size_t i = rewards.size() - 20; i < rewards.size(); ++i) {
    late += rewards[i];
  }
  EXPECT_GT(late / 20.0, 0.3) << "batched PPO failed to improve";
}

TEST(PpoLearningTest, JointRatioModeAlsoLearns) {
  PpoOptions opts;
  opts.steps_per_update = 8;
  opts.lr = 3e-3f;
  opts.joint_ratio = true;
  opts.seed = 12;
  PpoAgent agent(3, opts);
  AlwaysIncreaseBandit env(4);
  const std::vector<double> rewards = RunAgentOnEnv(&agent, &env, 160);
  double late = 0.0;
  for (size_t i = rewards.size() - 20; i < rewards.size(); ++i) {
    late += rewards[i];
  }
  EXPECT_GT(late / 20.0, 0.2);
}

}  // namespace
}  // namespace rl
}  // namespace graphrare

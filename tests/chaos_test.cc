// Chaos suite: fault injection against the serving stack through the
// fail-point framework. Covers the spec grammar and deterministic
// probability streams, crash-safe artifact saves (the incumbent file is
// byte-identical after a failed overwrite at any injectable stage),
// per-section checksum detection of torn/corrupt artifacts, EINTR storms
// and short reads/writes on both the artifact and socket paths, deadline
// shedding with 503 + Retry-After, the overload watchdog, reload rollback
// under concurrent load at every injectable failure stage, and the reload
// circuit breaker lifecycle. Run alone with `ctest -L chaos`.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "core/graphrare.h"
#include "net/server.h"

namespace graphrare {
namespace {

using failpoint::Action;

// Fail points are process-global; every test starts and ends clean.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoint::DisableAll();
    failpoint::SetSeed(0x6368616F73ULL);  // deterministic chaos
  }
  void TearDown() override { failpoint::DisableAll(); }
};

// ---- Fail-point framework -------------------------------------------------

TEST_F(ChaosTest, SpecGrammarParsesEveryAction) {
  ASSERT_TRUE(failpoint::Configure("t.err", "error(EIO)").ok());
  Action a = failpoint::Consult("t.err");
  EXPECT_EQ(a.kind, Action::Kind::kError);
  EXPECT_EQ(a.err, EIO);
  EXPECT_EQ(failpoint::Fired("t.err"), 1);

  ASSERT_TRUE(failpoint::Configure("t.num", "error(13)").ok());
  EXPECT_EQ(failpoint::Consult("t.num").err, 13);

  ASSERT_TRUE(failpoint::Configure("t.eintr", "eintr").ok());
  EXPECT_EQ(failpoint::Consult("t.eintr").kind, Action::Kind::kEintr);

  ASSERT_TRUE(failpoint::Configure("t.short", "short").ok());
  EXPECT_EQ(failpoint::Consult("t.short").kind, Action::Kind::kShort);

  ASSERT_TRUE(failpoint::Configure("t.delay", "delay(7)").ok());
  a = failpoint::Consult("t.delay");
  EXPECT_EQ(a.kind, Action::Kind::kDelay);
  EXPECT_EQ(a.delay_ms, 7);

  // "off" removes the site.
  ASSERT_TRUE(failpoint::Configure("t.err", "off").ok());
  EXPECT_EQ(failpoint::Consult("t.err").kind, Action::Kind::kNone);

  // Malformed specs are rejected, not half-applied.
  EXPECT_FALSE(failpoint::Configure("t.bad", "explode").ok());
  EXPECT_FALSE(failpoint::Configure("t.bad", "error(EBOGUS)").ok());
  EXPECT_FALSE(failpoint::Configure("t.bad", "").ok());
  EXPECT_EQ(failpoint::Consult("t.bad").kind, Action::Kind::kNone);
}

TEST_F(ChaosTest, AfterAndMaxHitsModifiers) {
  // after(2): the first two evaluations pass untouched.
  ASSERT_TRUE(failpoint::Configure("t.after", "after(2)error(EIO)").ok());
  EXPECT_EQ(failpoint::Consult("t.after").kind, Action::Kind::kNone);
  EXPECT_EQ(failpoint::Consult("t.after").kind, Action::Kind::kNone);
  EXPECT_EQ(failpoint::Consult("t.after").kind, Action::Kind::kError);
  EXPECT_EQ(failpoint::Fired("t.after"), 1);

  // 2*: fires at most twice, then falls dormant.
  ASSERT_TRUE(failpoint::Configure("t.twice", "2*eintr").ok());
  EXPECT_EQ(failpoint::Consult("t.twice").kind, Action::Kind::kEintr);
  EXPECT_EQ(failpoint::Consult("t.twice").kind, Action::Kind::kEintr);
  EXPECT_EQ(failpoint::Consult("t.twice").kind, Action::Kind::kNone);
  EXPECT_EQ(failpoint::Fired("t.twice"), 2);

  // Combined: skip 1, then fire once.
  ASSERT_TRUE(failpoint::Configure("t.combo", "after(1)1*error(ENOSPC)").ok());
  EXPECT_EQ(failpoint::Consult("t.combo").kind, Action::Kind::kNone);
  EXPECT_EQ(failpoint::Consult("t.combo").err, ENOSPC);
  EXPECT_EQ(failpoint::Consult("t.combo").kind, Action::Kind::kNone);
}

TEST_F(ChaosTest, ProbabilityStreamIsDeterministicPerSeed) {
  auto draw_pattern = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(failpoint::Consult("t.prob").kind !=
                      Action::Kind::kNone);
    }
    return fired;
  };
  failpoint::SetSeed(1234);
  ASSERT_TRUE(failpoint::Configure("t.prob", "50%eintr").ok());
  const std::vector<bool> first = draw_pattern();
  failpoint::SetSeed(1234);
  ASSERT_TRUE(failpoint::Configure("t.prob", "50%eintr").ok());
  EXPECT_EQ(draw_pattern(), first);

  // A different seed gives a different stream (64 coin flips colliding
  // would mean the seed is ignored).
  failpoint::SetSeed(99);
  ASSERT_TRUE(failpoint::Configure("t.prob", "50%eintr").ok());
  EXPECT_NE(draw_pattern(), first);

  // The rate is roughly honoured.
  int hits = 0;
  for (bool b : first) hits += b ? 1 : 0;
  EXPECT_GT(hits, 16);
  EXPECT_LT(hits, 48);
}

TEST_F(ChaosTest, ConfiguresFromEnvironment) {
  ::setenv("GRAPHRARE_FAILPOINTS", "t.env1 = eintr ; t.env2 = 2*error(EIO)",
           1);
  EXPECT_EQ(failpoint::ConfigureFromEnv(), 2);
  ::unsetenv("GRAPHRARE_FAILPOINTS");
  EXPECT_EQ(failpoint::Consult("t.env1").kind, Action::Kind::kEintr);
  EXPECT_EQ(failpoint::Consult("t.env2").err, EIO);
  EXPECT_EQ(failpoint::ConfigureFromEnv(), 0);  // unset -> no-op
}

TEST_F(ChaosTest, DisabledFrameworkIsIdle) {
  failpoint::DisableAll();
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_EQ(failpoint::Consult("t.anything").kind, Action::Kind::kNone);
  ASSERT_TRUE(failpoint::Configure("t.one", "eintr").ok());
  EXPECT_TRUE(failpoint::AnyActive());
  failpoint::Disable("t.one");
  EXPECT_FALSE(failpoint::AnyActive());
}

// ---- Artifact fixtures ----------------------------------------------------

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

serve::ModelArtifact MakeArtifact(uint64_t model_seed) {
  auto ds_or = data::MakeDatasetScaled("cornell", /*shrink=*/1, 3);
  GR_CHECK(ds_or.ok()) << ds_or.status().ToString();
  const data::Dataset& ds = *ds_or;
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = model_seed;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  auto artifact_or = core::PackageArtifact(*model, nn::BackboneKind::kGcn,
                                           mo, model_seed, ds.graph, ds);
  GR_CHECK(artifact_or.ok()) << artifact_or.status().ToString();
  return std::move(artifact_or).value();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GR_CHECK(in.good()) << "cannot read " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  GR_CHECK(out.good()) << "cannot write " << path;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// ---- Crash-safe artifact saves --------------------------------------------

TEST_F(ChaosTest, FailedSaveLeavesIncumbentByteIdentical) {
  const std::string path = TempPath("chaos_incumbent.grare");
  ASSERT_TRUE(MakeArtifact(7).Save(path).ok());
  const std::string incumbent = ReadFileBytes(path);
  const serve::ModelArtifact replacement = MakeArtifact(8);

  // Probe how many raw write(2) calls one save issues (the 256 KiB flush
  // buffer makes this small), so the mid-file stage can target the last
  // one instead of guessing an offset.
  ASSERT_TRUE(failpoint::Configure("artifact.write", "delay(1)").ok());
  ASSERT_TRUE(replacement.Save(TempPath("chaos_probe.grare")).ok());
  const int64_t write_calls = failpoint::Fired("artifact.write");
  failpoint::Disable("artifact.write");
  ASSERT_GE(write_calls, 1);

  struct Stage {
    std::string site;
    std::string spec;
    std::string syscall_name;
  };
  std::vector<Stage> stages = {
      {"artifact.write", "error(ENOSPC)", "write"},
      {"artifact.fsync", "error(EIO)", "fsync"},
      {"artifact.rename", "error(EIO)", "rename"},
  };
  if (write_calls >= 2) {
    // Fail the final flush: everything before it hit the disk, the file
    // is torn at the tail — the classic mid-file crash.
    stages.push_back({"artifact.write",
                      "after(" + std::to_string(write_calls - 1) +
                          ")error(EIO)",
                      "write"});
  }
  for (const Stage& stage : stages) {
    SCOPED_TRACE(stage.site + "=" + stage.spec);
    ASSERT_TRUE(failpoint::Configure(stage.site, stage.spec).ok());
    const Status s = replacement.Save(path);
    failpoint::Disable(stage.site);

    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.ToString().find(stage.syscall_name), std::string::npos)
        << s.ToString();
    // The temp file is unlinked, the incumbent is untouched and loadable.
    EXPECT_FALSE(FileExists(path + ".tmp"));
    EXPECT_EQ(ReadFileBytes(path), incumbent);
    EXPECT_TRUE(serve::ModelArtifact::Load(path).ok());
  }
}

TEST_F(ChaosTest, SaveSurvivesEintrStormAndShortWrites) {
  const std::string path = TempPath("chaos_stormy_save.grare");
  const serve::ModelArtifact art = MakeArtifact(11);

  ASSERT_TRUE(failpoint::Configure("artifact.write", "40%eintr").ok());
  ASSERT_TRUE(art.Save(path).ok());
  EXPECT_GT(failpoint::Fired("artifact.write"), 0);
  EXPECT_TRUE(serve::ModelArtifact::Load(path).ok());

  ASSERT_TRUE(failpoint::Configure("artifact.write", "60%short").ok());
  ASSERT_TRUE(art.Save(path).ok());
  EXPECT_TRUE(serve::ModelArtifact::Load(path).ok());
}

TEST_F(ChaosTest, LoadSurvivesEintrStormAndShortReads) {
  const std::string path = TempPath("chaos_stormy_load.grare");
  ASSERT_TRUE(MakeArtifact(12).Save(path).ok());

  // The 64 KiB refill buffer keeps the syscall count low, so a bounded
  // storm guarantees hits: the first five reads are interrupted, every one
  // must be retried.
  ASSERT_TRUE(failpoint::Configure("artifact.read", "5*eintr").ok());
  EXPECT_TRUE(serve::ModelArtifact::Load(path).ok());
  EXPECT_EQ(failpoint::Fired("artifact.read"), 5);

  ASSERT_TRUE(failpoint::Configure("artifact.read", "short").ok());
  EXPECT_TRUE(serve::ModelArtifact::Load(path).ok());
}

TEST_F(ChaosTest, LoadErrorsNameTheFailingSyscall) {
  const std::string path = TempPath("chaos_load_err.grare");
  ASSERT_TRUE(MakeArtifact(13).Save(path).ok());

  ASSERT_TRUE(failpoint::Configure("artifact.open", "error(EIO)").ok());
  Status s = serve::ModelArtifact::Load(path).status();
  failpoint::Disable("artifact.open");
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.ToString().find("open"), std::string::npos) << s.ToString();

  ASSERT_TRUE(failpoint::Configure("artifact.read", "error(EIO)").ok());
  s = serve::ModelArtifact::Load(path).status();
  failpoint::Disable("artifact.read");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("read"), std::string::npos) << s.ToString();

  // A genuinely missing file is NotFound, not Internal.
  EXPECT_EQ(serve::ModelArtifact::Load(TempPath("chaos_no_such.grare"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

// ---- Checksums and torn files ---------------------------------------------

TEST_F(ChaosTest, ChecksumCatchesMidFileCorruption) {
  const std::string path = TempPath("chaos_corrupt.grare");
  ASSERT_TRUE(MakeArtifact(21).Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  // Flip one bit in the middle of the file (deep inside a data section,
  // past every length field) — v1 would have served this silently.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  WriteFileBytes(path, bytes);

  const Status s = serve::ModelArtifact::Load(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("checksum mismatch in section"),
            std::string::npos)
      << s.ToString();
}

TEST_F(ChaosTest, ChecksumNamesTheMetaSection) {
  const std::string path = TempPath("chaos_corrupt_meta.grare");
  ASSERT_TRUE(MakeArtifact(22).Save(path).ok());
  std::string bytes = ReadFileBytes(path);

  // Offset 16 is the backbone-kind field, just past magic + version —
  // firmly inside the meta section.
  bytes[16] = static_cast<char>(bytes[16] ^ 0x01);
  WriteFileBytes(path, bytes);

  const Status s = serve::ModelArtifact::Load(path).status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("section 'meta'"), std::string::npos)
      << s.ToString();
}

TEST_F(ChaosTest, TornArtifactSweepNeverCrashes) {
  const std::string path = TempPath("chaos_torn.grare");
  ASSERT_TRUE(MakeArtifact(23).Save(path).ok());
  const std::string bytes = ReadFileBytes(path);
  const std::string torn = TempPath("chaos_torn_cut.grare");

  // Every prefix length across a coarse sweep plus the interesting
  // boundaries: a torn write at any cut point must load-fail cleanly.
  std::vector<size_t> cuts = {0, 1, 7, 8, 11, 12, 16, bytes.size() - 1};
  const size_t stride = std::max<size_t>(1, bytes.size() / 61);
  for (size_t c = stride; c < bytes.size(); c += stride) cuts.push_back(c);

  for (size_t cut : cuts) {
    WriteFileBytes(torn, bytes.substr(0, cut));
    const Status s = serve::ModelArtifact::Load(torn).status();
    EXPECT_FALSE(s.ok()) << "prefix of " << cut << " bytes loaded";
  }
}

// ---- Batcher: deadlines and the overload watchdog -------------------------

std::shared_ptr<serve::EngineHandle> MakeHandle(uint64_t seed) {
  auto engine_or = serve::InferenceEngine::FromArtifact(MakeArtifact(seed), {});
  GR_CHECK(engine_or.ok()) << engine_or.status().ToString();
  return std::make_shared<serve::EngineHandle>(
      std::make_shared<const serve::InferenceEngine>(
          std::move(engine_or).value()));
}

TEST_F(ChaosTest, BatcherShedsExpiredQueuedRequests) {
  auto handle = MakeHandle(7);
  net::BatcherOptions bo;
  bo.max_batch = 1;
  bo.num_workers = 1;
  bo.max_queue_delay_ms = 0.0;
  net::ContinuousBatcher batcher(handle, bo);

  // The first batch holds the single worker for 150 ms; everything queued
  // behind it with a 20 ms deadline must be shed, not evaluated.
  ASSERT_TRUE(failpoint::Configure("batcher.batch", "delay(150)").ok());

  std::mutex mu;
  std::condition_variable cv;
  int done = 0, ok = 0, deadline_exceeded = 0;
  auto count = [&](StatusCode code) {
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    if (code == StatusCode::kOk) ++ok;
    if (code == StatusCode::kDeadlineExceeded) ++deadline_exceeded;
    cv.notify_one();
  };

  ASSERT_TRUE(batcher
                  .Submit({0}, 0.0,
                          [&](Result<std::vector<serve::Prediction>> r) {
                            count(r.status().code());
                          })
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(batcher
                    .Submit({0}, /*deadline_ms=*/20.0,
                            [&](Result<std::vector<serve::Prediction>> r) {
                              count(r.status().code());
                            })
                    .ok());
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return done == 6; }));
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(deadline_exceeded, 5);
  EXPECT_EQ(batcher.Stats().shed, 5);
  batcher.Stop();
}

TEST_F(ChaosTest, OverloadWatchdogShrinksThenRecovers) {
  auto handle = MakeHandle(7);
  net::BatcherOptions bo;
  bo.max_batch = 8;
  bo.num_workers = 1;
  bo.max_queue_delay_ms = 0.0;
  // Far above a real 1-node engine call even under sanitizers, so only
  // the injected stalls cross the budget.
  bo.batch_budget_ms = 200.0;
  bo.overload_recover_batches = 1;
  net::ContinuousBatcher batcher(handle, bo);

  auto sync_predict = [&] {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    GR_CHECK_OK(batcher.Submit({0}, [&](Result<std::vector<serve::Prediction>>
                                            r) {
      GR_CHECK_OK(r.status());
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    }));
    std::unique_lock<std::mutex> lock(mu);
    GR_CHECK(cv.wait_for(lock, std::chrono::seconds(30), [&] { return done; }))
        << "batcher never completed the request";
  };

  // Two engine stalls blow the 200 ms budget: 8 -> 4 -> 2. The worker
  // updates the watchdog *after* delivering completions, so poll briefly
  // for the second shrink to land. (A machine hiccup may add a shrink of
  // its own, so the bounds are one-sided.)
  ASSERT_TRUE(failpoint::Configure("batcher.batch", "2*delay(600)").ok());
  sync_predict();
  sync_predict();
  for (int i = 0; i < 200 && batcher.Stats().overload_shrinks < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  net::BatcherStats stats = batcher.Stats();
  EXPECT_LE(stats.effective_max_batch, 2);
  EXPECT_GE(stats.overload_shrinks, 2);

  // Pressure gone: with overload_recover_batches=1 each in-budget batch
  // grows the cap one step back toward max_batch.
  for (int i = 0; i < 60 && batcher.Stats().effective_max_batch < 8; ++i) {
    sync_predict();
  }
  stats = batcher.Stats();
  EXPECT_EQ(stats.effective_max_batch, 8);
  batcher.Stop();
}

// ---- HTTP client (mirrors http_server_test, plus custom headers) ----------

struct ClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
};

class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    struct timeval tv = {30, 0};  // chaos runs are slow under sanitizers
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      off += static_cast<size_t>(n);
    }
  }

  void Request(const std::string& method, const std::string& target,
               const std::string& body = "") {
    RequestWithHeaders(method, target, {}, body);
  }

  void RequestWithHeaders(
      const std::string& method, const std::string& target,
      const std::vector<std::pair<std::string, std::string>>& headers,
      const std::string& body = "") {
    std::string wire = method + " " + target + " HTTP/1.1\r\n";
    for (const auto& h : headers) {
      wire += h.first + ": " + h.second + "\r\n";
    }
    if (!body.empty() || method == "POST") {
      wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    wire += "\r\n" + body;
    Send(wire);
  }

  bool ReadResponse(ClientResponse* out) {
    while (buf_.find("\r\n\r\n") == std::string::npos) {
      if (!Fill()) return false;
    }
    const size_t head_end = buf_.find("\r\n\r\n");
    const std::string head = buf_.substr(0, head_end);
    buf_.erase(0, head_end + 4);

    out->headers.clear();
    size_t line_start = 0;
    size_t line_end = head.find("\r\n");
    const std::string status_line = head.substr(0, line_end);
    if (std::sscanf(status_line.c_str(), "HTTP/1.1 %d", &out->status) != 1) {
      return false;
    }
    while (line_end != std::string::npos) {
      line_start = line_end + 2;
      line_end = head.find("\r\n", line_start);
      std::string line = head.substr(
          line_start, line_end == std::string::npos ? std::string::npos
                                                    : line_end - line_start);
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      out->headers[name] = value;
    }
    size_t content_length = 0;
    const auto it = out->headers.find("content-length");
    if (it != out->headers.end()) {
      content_length = static_cast<size_t>(std::stoul(it->second));
    }
    while (buf_.size() < content_length) {
      if (!Fill()) return false;
    }
    out->body = buf_.substr(0, content_length);
    buf_.erase(0, content_length);
    return true;
  }

 private:
  bool Fill() {
    char tmp[4096];
    while (true) {
      const ssize_t n = ::read(fd_, tmp, sizeof(tmp));
      if (n > 0) {
        buf_.append(tmp, static_cast<size_t>(n));
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
  }

  int fd_ = -1;
  std::string buf_;
};

class ChaosServerTest : public ChaosTest {
 protected:
  void StartServer(net::HttpServerOptions options = {},
                   uint64_t model_seed = 7) {
    handle_ = std::make_shared<serve::EngineHandle>(
        MakeHandle(model_seed)->Get());
    server_ = std::make_unique<net::HttpServer>(handle_, nullptr, options);
    ASSERT_TRUE(server_->Start().ok());
    loop_ = std::thread([this] { server_->Run(); });
  }

  void TearDown() override {
    // Hard faults off first so the drain itself cannot be wedged.
    failpoint::DisableAll();
    if (server_) server_->Shutdown();
    if (loop_.joinable()) loop_.join();
    ChaosTest::TearDown();
  }

  int port() const { return server_->port(); }
  std::string ExpectedPredictBody(const std::vector<int64_t>& nodes) {
    return net::PredictionsToJson(handle_->Get()->Predict(nodes).value());
  }

  std::shared_ptr<serve::EngineHandle> handle_;
  std::unique_ptr<net::HttpServer> server_;
  std::thread loop_;
};

// ---- Socket-level fault storms --------------------------------------------

TEST_F(ChaosServerTest, SocketFaultStormKeepsResponsesByteExact) {
  StartServer();
  const std::string expected = ExpectedPredictBody({0, 1, 2});

  // Phase 1: EINTR storm across every socket syscall the reactor makes.
  ASSERT_TRUE(failpoint::ConfigureFromList(
                  "net.read=30%eintr; net.write=30%eintr;"
                  "net.epoll_wait=20%eintr; net.accept=50%eintr")
                  .ok());
  for (int c = 0; c < 4; ++c) {
    TestClient client(port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 8; ++i) {
      client.Request("POST", "/v1/predict", "{\"nodes\":[0,1,2]}");
      ClientResponse r;
      ASSERT_TRUE(client.ReadResponse(&r)) << "conn " << c << " req " << i;
      EXPECT_EQ(r.status, 200);
      EXPECT_EQ(r.body, expected);
    }
  }
  EXPECT_GT(failpoint::Fired("net.read") + failpoint::Fired("net.write"), 0);

  // Phase 2: short reads and writes — partial-transfer handling.
  failpoint::DisableAll();
  ASSERT_TRUE(
      failpoint::ConfigureFromList("net.read=50%short; net.write=50%short")
          .ok());
  TestClient client(port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 16; ++i) {
    client.Request("POST", "/v1/predict", "{\"nodes\":[0,1,2]}");
    ClientResponse r;
    ASSERT_TRUE(client.ReadResponse(&r)) << "short-io req " << i;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, expected);
  }
}

// ---- Deadlines and load shedding over HTTP --------------------------------

TEST_F(ChaosServerTest, DeadlineExpiryShedsWith503AndRetryAfter) {
  net::HttpServerOptions options;
  options.default_deadline_ms = 25.0;
  options.batcher.max_batch = 1;
  options.batcher.num_workers = 1;
  options.batcher.max_queue_delay_ms = 0.0;
  StartServer(options);

  // Every batch stalls 250 ms; the first request is batched immediately
  // and survives, everything queued behind it outlives its deadline.
  ASSERT_TRUE(failpoint::Configure("batcher.batch", "delay(250)").ok());

  TestClient client(port());
  ASSERT_TRUE(client.ok());
  client.Request("POST", "/v1/predict", "{\"nodes\":[0,1]}");
  for (int i = 0; i < 3; ++i) {
    client.RequestWithHeaders("POST", "/v1/predict",
                              {{"X-Deadline-Ms", "25"}},
                              "{\"nodes\":[0,1]}");
  }
  client.Request("POST", "/v1/predict", "{\"nodes\":[0,1]}");  // default

  ClientResponse r;
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, ExpectedPredictBody({0, 1}));  // byte-exact despite chaos
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.ReadResponse(&r)) << "shed response " << i;
    EXPECT_EQ(r.status, 503);
    EXPECT_EQ(r.headers["retry-after"], "1");
    EXPECT_NE(r.body.find("deadline"), std::string::npos) << r.body;
  }
  failpoint::Disable("batcher.batch");

  // Shed counters surface on /metrics.
  client.Request("GET", "/metrics");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.body.find("graphrare_batch_shed_total 4"), std::string::npos);
  EXPECT_NE(
      r.body.find("graphrare_requests_shed_total{route=\"/v1/predict\"} 4"),
      std::string::npos);

  // Malformed X-Deadline-Ms is a client error, not a silent default.
  client.RequestWithHeaders("POST", "/v1/predict",
                            {{"X-Deadline-Ms", "soon"}},
                            "{\"nodes\":[0]}");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 400);
}

// ---- Reload rollback under concurrent load --------------------------------

TEST_F(ChaosServerTest, ReloadRollsBackAtEveryFailureStageUnderLoad) {
  net::HttpServerOptions options;
  options.reload_breaker_threshold = 0;  // exercise rollback, not the breaker
  StartServer(options);
  const std::string expected_v1 = ExpectedPredictBody({0, 1, 2});

  const std::string good = TempPath("chaos_reload_good.grare");
  ASSERT_TRUE(MakeArtifact(99).Save(good).ok());

  // A copy with one flipped bit mid-file (checksum mismatch) and a copy
  // claiming a future schema version.
  const std::string bytes = ReadFileBytes(good);
  const std::string corrupt = TempPath("chaos_reload_corrupt.grare");
  {
    std::string b = bytes;
    b[b.size() / 2] = static_cast<char>(b[b.size() / 2] ^ 0x20);
    WriteFileBytes(corrupt, b);
  }
  const std::string wrong_schema = TempPath("chaos_reload_schema.grare");
  {
    std::string b = bytes;
    b[8] = 99;  // schema-version u32 sits right after the 8-byte magic
    WriteFileBytes(wrong_schema, b);
  }

  // Background load: every response must be v1 and byte-exact — a failed
  // reload may never drop a request or leak a half-built engine.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> served{0}, anomalies{0};
  std::thread loader([&] {
    TestClient lc(port());
    if (!lc.ok()) {
      anomalies.fetch_add(1);
      return;
    }
    while (!stop.load()) {
      lc.Request("POST", "/v1/predict", "{\"nodes\":[0,1,2]}");
      ClientResponse lr;
      if (!lc.ReadResponse(&lr) || lr.status != 200 ||
          lr.body != expected_v1) {
        anomalies.fetch_add(1);
        return;
      }
      served.fetch_add(1);
    }
  });

  TestClient admin(port());
  ASSERT_TRUE(admin.ok());
  auto failing_reload = [&](const std::string& path,
                            const std::string& expect_substr) {
    admin.Request("POST", "/v1/reload", "{\"path\":\"" + path + "\"}");
    ClientResponse rr;
    ASSERT_TRUE(admin.ReadResponse(&rr));
    EXPECT_EQ(rr.status, 500);
    EXPECT_NE(rr.body.find("\"rolled_back\":true"), std::string::npos)
        << rr.body;
    EXPECT_NE(rr.body.find(expect_substr), std::string::npos) << rr.body;
    // The incumbent generation survives every failure.
    admin.Request("GET", "/healthz");
    ASSERT_TRUE(admin.ReadResponse(&rr));
    EXPECT_NE(rr.body.find("\"generation\":1"), std::string::npos) << rr.body;
  };

  // Stage 1: the artifact cannot even be opened.
  ASSERT_TRUE(failpoint::Configure("artifact.open", "error(EIO)").ok());
  failing_reload(good, "open");
  failpoint::Disable("artifact.open");

  // Stage 2: reads fail mid-load.
  ASSERT_TRUE(failpoint::Configure("artifact.read", "error(EIO)").ok());
  failing_reload(good, "read");
  failpoint::Disable("artifact.read");

  // Stage 3: the file opens and reads but a section checksum mismatches.
  failing_reload(corrupt, "checksum");

  // Stage 4: schema from the future.
  failing_reload(wrong_schema, "schema");

  stop.store(true);
  loader.join();
  EXPECT_EQ(anomalies.load(), 0);
  EXPECT_GT(served.load(), 0);

  // With the faults gone the very same artifact hot-swaps cleanly.
  admin.Request("POST", "/v1/reload", "{\"path\":\"" + good + "\"}");
  ClientResponse rr;
  ASSERT_TRUE(admin.ReadResponse(&rr));
  EXPECT_EQ(rr.status, 200);
  EXPECT_NE(rr.body.find("\"generation\":2"), std::string::npos) << rr.body;
  admin.Request("POST", "/v1/predict", "{\"nodes\":[0,1,2]}");
  ASSERT_TRUE(admin.ReadResponse(&rr));
  EXPECT_EQ(rr.status, 200);
  EXPECT_EQ(rr.body, ExpectedPredictBody({0, 1, 2}));  // now the v2 engine
}

// ---- Reload circuit breaker -----------------------------------------------

TEST_F(ChaosServerTest, ReloadBreakerOpensDegradesAndRecovers) {
  net::HttpServerOptions options;
  options.reload_breaker_threshold = 2;
  options.reload_breaker_cooldown_ms = 400.0;
  StartServer(options);

  const std::string good = TempPath("chaos_breaker_good.grare");
  ASSERT_TRUE(MakeArtifact(55).Save(good).ok());
  const std::string missing = TempPath("chaos_breaker_missing.grare");

  TestClient client(port());
  ASSERT_TRUE(client.ok());
  ClientResponse r;

  // Two consecutive failures reach the threshold and open the breaker.
  for (int i = 0; i < 2; ++i) {
    client.Request("POST", "/v1/reload", "{\"path\":\"" + missing + "\"}");
    ASSERT_TRUE(client.ReadResponse(&r));
    EXPECT_EQ(r.status, 500);
  }

  // Open: reloads are refused up front with Retry-After, /healthz degrades
  // (but stays HTTP 200 for liveness probes), /metrics shows state 2.
  client.Request("POST", "/v1/reload", "{\"path\":\"" + good + "\"}");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 503);
  EXPECT_EQ(r.headers["retry-after"], "1");
  EXPECT_NE(r.body.find("circuit breaker"), std::string::npos) << r.body;

  client.Request("GET", "/healthz");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(r.body.find("\"reload_breaker\":\"open\""), std::string::npos);

  client.Request("GET", "/metrics");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.body.find("graphrare_reload_breaker_state 2"),
            std::string::npos);
  EXPECT_NE(r.body.find("graphrare_reload_failures_total 2"),
            std::string::npos);

  // After the cooldown one probe is admitted; a failing probe reopens.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  client.Request("POST", "/v1/reload", "{\"path\":\"" + missing + "\"}");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 500);  // the probe itself runs (and fails)
  client.Request("POST", "/v1/reload", "{\"path\":\"" + good + "\"}");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 503);  // reopened immediately, no second probe

  // A successful probe closes the breaker and the swap goes through.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  client.Request("POST", "/v1/reload", "{\"path\":\"" + good + "\"}");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"generation\":2"), std::string::npos) << r.body;

  client.Request("GET", "/healthz");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(r.body.find("\"reload_breaker\":\"closed\""), std::string::npos);
  client.Request("GET", "/metrics");
  ASSERT_TRUE(client.ReadResponse(&r));
  EXPECT_NE(r.body.find("graphrare_reload_breaker_state 0"),
            std::string::npos);
}

}  // namespace
}  // namespace graphrare

// Serving-pipeline tests: state-dict round trips, artifact save/load,
// InferenceEngine correctness, and the end-to-end train -> artifact ->
// serve contract (training-time logits reproduced bitwise in a fresh
// engine, for both co-training paths).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "core/graphrare.h"

namespace graphrare {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

const nn::BackboneKind kAllBackbones[] = {
    nn::BackboneKind::kMlp,  nn::BackboneKind::kGcn,
    nn::BackboneKind::kSage, nn::BackboneKind::kGat,
    nn::BackboneKind::kMixHop, nn::BackboneKind::kH2Gcn,
    nn::BackboneKind::kSgc,  nn::BackboneKind::kAppnp,
};

/// Bitwise float equality over whole tensors (AllClose is too weak for
/// the serving contract).
void ExpectBitwiseEqual(const tensor::Tensor& a, const tensor::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<size_t>(a.numel()) * sizeof(float)));
}

data::Dataset SmallDataset(uint64_t seed = 3) {
  auto ds = data::MakeDatasetScaled("cornell", /*shrink=*/1, seed);
  GR_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

nn::ModelOptions SmallModelOptions(const data::Dataset& ds, uint64_t seed) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = seed;
  return mo;
}

tensor::Tensor EvalLogits(const nn::NodeClassifier& model,
                          const data::Dataset& ds, const graph::Graph& g) {
  nn::ModelInputs inputs;
  inputs.graph = &g;
  inputs.features = nn::LayerInput::Sparse(ds.FeaturesCsr());
  return model.Logits(inputs, /*training=*/false, nullptr).value();
}

// ---- Module state dicts ---------------------------------------------------

TEST(StateDictTest, RoundTripReproducesLogitsAllBackbones) {
  const data::Dataset ds = SmallDataset();
  for (const nn::BackboneKind kind : kAllBackbones) {
    SCOPED_TRACE(nn::BackboneName(kind));
    auto trained = nn::MakeModel(kind, SmallModelOptions(ds, 1));
    // Differently-initialised target: the load must overwrite everything.
    auto fresh = nn::MakeModel(kind, SmallModelOptions(ds, 99));
    ASSERT_TRUE(fresh->LoadStateDict(trained->StateDict()).ok());
    ExpectBitwiseEqual(EvalLogits(*trained, ds, ds.graph),
                       EvalLogits(*fresh, ds, ds.graph));
  }
}

TEST(StateDictTest, NamesFollowModuleTree) {
  const data::Dataset ds = SmallDataset();
  auto model = nn::MakeModel(nn::BackboneKind::kGcn,
                             SmallModelOptions(ds, 1));
  const nn::StateDict dict = model->StateDict();
  ASSERT_FALSE(dict.empty());
  // Two GCNConv children, each holding a Linear: conv<i>.linear.{weight,bias}.
  EXPECT_EQ(dict[0].first, "conv0.linear.weight");
  for (const auto& [name, value] : dict) {
    EXPECT_NE(name.find('.'), std::string::npos) << name;
    EXPECT_GT(value.numel(), 0) << name;
  }
}

TEST(StateDictTest, LoadRejectsCountMismatch) {
  const data::Dataset ds = SmallDataset();
  auto model = nn::MakeModel(nn::BackboneKind::kGcn,
                             SmallModelOptions(ds, 1));
  nn::StateDict dict = model->StateDict();
  dict.pop_back();
  EXPECT_FALSE(model->LoadStateDict(dict).ok());
}

TEST(StateDictTest, LoadRejectsUnknownName) {
  const data::Dataset ds = SmallDataset();
  auto model = nn::MakeModel(nn::BackboneKind::kGcn,
                             SmallModelOptions(ds, 1));
  nn::StateDict dict = model->StateDict();
  dict.back().first = "no.such.parameter";
  const Status s = model->LoadStateDict(dict);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no.such.parameter"), std::string::npos);
}

TEST(StateDictTest, LoadRejectsShapeMismatchWithoutPartialWrite) {
  const data::Dataset ds = SmallDataset();
  auto model = nn::MakeModel(nn::BackboneKind::kGcn,
                             SmallModelOptions(ds, 1));
  const tensor::Tensor before = EvalLogits(*model, ds, ds.graph);
  nn::StateDict dict = model->StateDict();
  // Corrupt the *last* entry's shape; earlier entries must not be applied.
  for (auto& [name, value] : dict) value.Fill(123.0f);
  dict.back().second = tensor::Tensor(1, 1);
  EXPECT_FALSE(model->LoadStateDict(dict).ok());
  ExpectBitwiseEqual(before, EvalLogits(*model, ds, ds.graph));
}

TEST(StateDictTest, LoadIsOrderInsensitive) {
  const data::Dataset ds = SmallDataset();
  auto a = nn::MakeModel(nn::BackboneKind::kSage, SmallModelOptions(ds, 1));
  auto b = nn::MakeModel(nn::BackboneKind::kSage, SmallModelOptions(ds, 7));
  nn::StateDict dict = a->StateDict();
  std::reverse(dict.begin(), dict.end());
  ASSERT_TRUE(b->LoadStateDict(dict).ok());
  ExpectBitwiseEqual(EvalLogits(*a, ds, ds.graph),
                     EvalLogits(*b, ds, ds.graph));
}

// ---- Artifact save/load ---------------------------------------------------

serve::ModelArtifact MakeArtifact(const data::Dataset& ds,
                                  nn::BackboneKind kind, uint64_t seed) {
  const nn::ModelOptions mo = SmallModelOptions(ds, seed);
  auto model = nn::MakeModel(kind, mo);
  auto artifact_or =
      core::PackageArtifact(*model, kind, mo, seed, ds.graph, ds);
  GR_CHECK(artifact_or.ok()) << artifact_or.status().ToString();
  return std::move(artifact_or).value();
}

TEST(ArtifactTest, SaveLoadRoundTripIsBitwiseAllBackbones) {
  const data::Dataset ds = SmallDataset();
  for (const nn::BackboneKind kind : kAllBackbones) {
    SCOPED_TRACE(nn::BackboneName(kind));
    const serve::ModelArtifact original = MakeArtifact(ds, kind, 11);
    const std::string path = TempPath("roundtrip.grare");
    ASSERT_TRUE(original.Save(path).ok());
    auto loaded_or = serve::ModelArtifact::Load(path);
    ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
    const serve::ModelArtifact& loaded = *loaded_or;

    EXPECT_EQ(loaded.backbone, kind);
    EXPECT_EQ(loaded.dataset_name, ds.name);
    EXPECT_EQ(loaded.seed, 11u);
    EXPECT_EQ(loaded.labels, ds.labels);
    EXPECT_EQ(loaded.graph.edges(), ds.graph.edges());
    ASSERT_EQ(loaded.weights.size(), original.weights.size());
    for (size_t i = 0; i < loaded.weights.size(); ++i) {
      EXPECT_EQ(loaded.weights[i].first, original.weights[i].first);
      ExpectBitwiseEqual(loaded.weights[i].second,
                         original.weights[i].second);
    }
    EXPECT_EQ(loaded.features->row_ptr(), ds.FeaturesCsr()->row_ptr());
    EXPECT_EQ(loaded.features->col_idx(), ds.FeaturesCsr()->col_idx());
    EXPECT_EQ(loaded.features->values(), ds.FeaturesCsr()->values());

    // The reloaded model must produce identical logits on every node.
    auto original_model = original.MakeModel();
    auto loaded_model = loaded.MakeModel();
    ASSERT_TRUE(loaded_model.ok()) << loaded_model.status().ToString();
    ExpectBitwiseEqual(EvalLogits(**original_model, ds, ds.graph),
                       EvalLogits(**loaded_model, ds, loaded.graph));
    std::remove(path.c_str());
  }
}

TEST(ArtifactTest, LoadMissingFileIsNotFound) {
  auto r = serve::ModelArtifact::Load(TempPath("no-such.grare"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ArtifactTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.grare");
  std::ofstream(path, std::ios::binary) << "definitely not an artifact";
  auto r = serve::ModelArtifact::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArtifactTest, LoadRejectsTruncatedFile) {
  const data::Dataset ds = SmallDataset();
  const serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5);
  const std::string path = TempPath("truncated.grare");
  ASSERT_TRUE(artifact.Save(path).ok());
  // Drop the trailing 25% of the file (cuts into weights + end marker).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() * 3 / 4);
  auto r = serve::ModelArtifact::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ArtifactTest, LoadRejectsWrongSchemaVersion) {
  const data::Dataset ds = SmallDataset();
  const serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5);
  const std::string path = TempPath("badversion.grare");
  ASSERT_TRUE(artifact.Save(path).ok());
  // The u32 version sits right after the 8-byte magic.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  const uint32_t bogus = serve::kArtifactSchemaVersion + 40;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  auto r = serve::ModelArtifact::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("schema"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArtifactTest, LoadRejectsHugeHeaderCountsWithoutAllocating) {
  // A tiny file whose header claims an enormous graph must fail with a
  // Status (counts are bounded by the file's own size before any
  // allocation), not OOM or overflow.
  const std::string path = TempPath("huge.grare");
  std::string bytes;
  auto put = [&bytes](const void* p, size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  };
  auto put_u32 = [&](uint32_t v) { put(&v, sizeof(v)); };
  auto put_u64 = [&](uint64_t v) { put(&v, sizeof(v)); };
  auto put_i64 = [&](int64_t v) { put(&v, sizeof(v)); };
  auto put_f32 = [&](float v) { put(&v, sizeof(v)); };
  bytes.append("GRAREART", 8);
  put_u32(serve::kArtifactSchemaVersion);
  put_u32(0);                      // backbone kind
  put_i64(1), put_i64(1), put_i64(2);  // in_features, hidden, classes
  put_u32(1), put_f32(0.0f), put_u32(1);  // layers, dropout, gat_heads
  put_f32(0.1f), put_u32(1), put_u64(1);  // appnp alpha/iters, model seed
  put_u64(1);                      // run seed
  put_u64(0);                      // empty dataset name
  put_u32(Crc32::Of(bytes.data(), bytes.size()));  // valid meta checksum
  put_i64(1LL << 60);              // num_nodes: absurd
  put_i64(1LL << 60);              // num_edges: absurd
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  auto r = serve::ModelArtifact::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("implausible"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

TEST(ArtifactTest, LoadRejectsNonMonotonicFeatureRowPtr) {
  // A shuffled row_ptr would silently reassign feature entries to the
  // wrong rows; Load must reject it, not serve wrong predictions.
  const data::Dataset ds = SmallDataset();
  const serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5);
  const std::string path = TempPath("badcsr.grare");
  ASSERT_TRUE(artifact.Save(path).ok());
  // Locate the features section: it starts right after the graph block
  // (each v2 section carries a trailing u32 CRC) with the i64 pair
  // (frows, fcols) and the u64 row_ptr length.
  const uint64_t header =
      8 + 4 + 4 +                 // magic, version, backbone
      3 * 8 + 4 + 4 + 4 + 4 + 4 + 4 + 8 +  // ModelOptions
      8 +                         // run seed
      8 + artifact.dataset_name.size() +    // name
      4;                          // meta CRC
  const uint64_t graph_block =
      8 + 8 + 16 * static_cast<uint64_t>(artifact.graph.num_edges()) +
      4;                          // graph CRC
  const uint64_t features_start = header + graph_block;
  const uint64_t first_row_ptr_entry = features_start + 8 + 8 + 8;
  const uint64_t frows = static_cast<uint64_t>(artifact.features->rows());
  const uint64_t nnz = artifact.features->col_idx().size();
  const uint64_t features_len = 8 + 8 +                // frows, fcols
                                8 + 8 * (frows + 1) +  // row_ptr
                                8 + 8 * nnz +          // col_idx
                                8 + 4 * nnz;           // values
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // row_ptr[0] = 1 (must be 0) makes the array non-monotonic overall
  // once row_ptr[1] for an empty first row reads 0, and always breaks
  // the front()==0 invariant. Re-stamp the section CRC so the semantic
  // check (not the checksum) is what rejects the file — this guards the
  // buggy-writer case, where the CRC is consistent with the bad bytes.
  const int64_t corrupted = 1;
  std::memcpy(&bytes[first_row_ptr_entry], &corrupted, sizeof(corrupted));
  const uint32_t crc =
      Crc32::Of(bytes.data() + features_start, features_len);
  std::memcpy(&bytes[features_start + features_len], &crc, sizeof(crc));
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  auto r = serve::ModelArtifact::Load(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ArtifactTest, ValidateCatchesInconsistentShapes) {
  const data::Dataset ds = SmallDataset();
  serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5);
  artifact.graph = graph::Graph::FromEdgeListOrDie(3, {{0, 1}});
  EXPECT_FALSE(artifact.Validate().ok());  // features rows != nodes
}

// ---- InferenceEngine ------------------------------------------------------

TEST(InferenceEngineTest, FullGraphPredictMatchesDirectForward) {
  const data::Dataset ds = SmallDataset();
  const serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5);
  auto model = artifact.MakeModel();
  const tensor::Tensor reference = EvalLogits(**model, ds, ds.graph);

  auto engine_or = serve::InferenceEngine::FromArtifact(artifact);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  const serve::InferenceEngine& engine = *engine_or;
  ExpectBitwiseEqual(engine.FullLogits(), reference);

  auto preds = engine.Predict({0, 1, 2, 1});
  ASSERT_TRUE(preds.ok());
  ASSERT_EQ(preds->size(), 4u);
  for (const serve::Prediction& p : *preds) {
    EXPECT_EQ(p.predicted_class, reference.ArgMaxRow(p.node));
    ASSERT_EQ(static_cast<int64_t>(p.probabilities.size()),
              engine.num_classes());
    float sum = 0.0f;
    for (const float prob : p.probabilities) sum += prob;
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Duplicate query ids answer identically.
  EXPECT_EQ((*preds)[1].probabilities, (*preds)[3].probabilities);
}

TEST(InferenceEngineTest, RejectsOutOfRangeAndEmptyQueries) {
  const data::Dataset ds = SmallDataset();
  auto engine_or = serve::InferenceEngine::FromArtifact(
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5));
  ASSERT_TRUE(engine_or.ok());
  EXPECT_EQ(engine_or->Predict({ds.num_nodes()}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine_or->Predict({-1}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(engine_or->Predict({}).ok());
}

TEST(InferenceEngineTest, TopKIsSortedAndClamped) {
  const data::Dataset ds = SmallDataset();
  auto engine_or = serve::InferenceEngine::FromArtifact(
      MakeArtifact(ds, nn::BackboneKind::kGcn, 5));
  ASSERT_TRUE(engine_or.ok());
  auto topk = engine_or->TopK(0, 1000);  // clamped to num_classes
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(static_cast<int64_t>(topk->size()), engine_or->num_classes());
  for (size_t i = 1; i < topk->size(); ++i) {
    EXPECT_GE((*topk)[i - 1].second, (*topk)[i].second);
  }
  auto preds = engine_or->Predict({0});
  EXPECT_EQ((*topk)[0].first, (*preds)[0].predicted_class);
  EXPECT_FALSE(engine_or->TopK(0, 0).ok());
}

TEST(InferenceEngineTest, UnlimitedFanoutSamplingMatchesFullGraph) {
  const data::Dataset ds = SmallDataset();
  // SAGE with L fanout entries: row-normalised aggregation over the full
  // neighborhood makes the sampled block forward exact (see
  // tests/minibatch_test.cc for the training-side equivalent).
  const serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kSage, 5);
  auto full_or = serve::InferenceEngine::FromArtifact(artifact);
  ASSERT_TRUE(full_or.ok());

  serve::EngineOptions sampled_opts;
  sampled_opts.fanouts = {-1, -1};
  auto sampled_or =
      serve::InferenceEngine::FromArtifact(artifact, sampled_opts);
  ASSERT_TRUE(sampled_or.ok());

  const std::vector<int64_t> query = {0, 3, 9, 25};
  auto full = full_or->Predict(query);
  auto sampled = sampled_or->Predict(query);
  ASSERT_TRUE(full.ok() && sampled.ok());
  for (size_t i = 0; i < query.size(); ++i) {
    EXPECT_EQ((*full)[i].predicted_class, (*sampled)[i].predicted_class);
    EXPECT_EQ((*full)[i].probabilities, (*sampled)[i].probabilities);
  }
}

TEST(InferenceEngineTest, SampledInferenceAccuracyWithinTolerance) {
  const data::Dataset ds = SmallDataset();
  // Train the backbone briefly so predictions carry real signal.
  nn::ModelOptions mo = SmallModelOptions(ds, 5);
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  auto splits = data::MakeSplits(ds.labels, ds.num_classes);
  nn::ClassifierTrainer trainer(
      model.get(), nn::LayerInput::Sparse(ds.FeaturesCsr()), &ds.labels,
      {});
  trainer.Fit(ds.graph, splits[0].train, splits[0].val, 40, 40);
  auto artifact_or = core::PackageArtifact(
      *model, nn::BackboneKind::kSage, mo, 5, ds.graph, ds);
  ASSERT_TRUE(artifact_or.ok());

  auto full_or = serve::InferenceEngine::FromArtifact(*artifact_or);
  serve::EngineOptions sampled_opts;
  sampled_opts.fanouts = {10, 10};
  auto sampled_or =
      serve::InferenceEngine::FromArtifact(*artifact_or, sampled_opts);
  ASSERT_TRUE(full_or.ok() && sampled_or.ok());

  std::vector<int64_t> all_nodes(static_cast<size_t>(ds.num_nodes()));
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    all_nodes[static_cast<size_t>(v)] = v;
  }
  auto full = full_or->Predict(all_nodes);
  auto sampled = sampled_or->Predict(all_nodes);
  ASSERT_TRUE(full.ok() && sampled.ok());
  int64_t full_hits = 0, sampled_hits = 0;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    const size_t i = static_cast<size_t>(v);
    full_hits += (*full)[i].predicted_class == ds.labels[i];
    sampled_hits += (*sampled)[i].predicted_class == ds.labels[i];
  }
  const double full_acc =
      static_cast<double>(full_hits) / static_cast<double>(ds.num_nodes());
  const double sampled_acc = static_cast<double>(sampled_hits) /
                             static_cast<double>(ds.num_nodes());
  EXPECT_NEAR(sampled_acc, full_acc, 0.15)
      << "sampled " << sampled_acc << " vs full " << full_acc;
}

TEST(InferenceEngineTest, ConcurrentPredictBatchIsDeterministic) {
  const data::Dataset ds = SmallDataset();
  const serve::ModelArtifact artifact =
      MakeArtifact(ds, nn::BackboneKind::kSage, 5);
  serve::EngineOptions opts;
  opts.fanouts = {5, 5};  // finite fanout: sampling streams matter
  auto engine_or = serve::InferenceEngine::FromArtifact(artifact, opts);
  ASSERT_TRUE(engine_or.ok());
  const serve::InferenceEngine& engine = *engine_or;

  std::vector<std::vector<int64_t>> requests;
  for (int64_t r = 0; r < 32; ++r) {
    requests.push_back({r % ds.num_nodes(), (7 * r + 3) % ds.num_nodes()});
  }
  // The batch (OpenMP-parallel when compiled in) must agree with itself
  // across runs — scheduling must not leak into the sampling streams.
  auto first = engine.PredictBatch(requests);
  auto second = engine.PredictBatch(requests);
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    ASSERT_EQ((*first)[r].size(), requests[r].size());
    for (size_t i = 0; i < requests[r].size(); ++i) {
      EXPECT_EQ((*first)[r][i].predicted_class,
                (*second)[r][i].predicted_class);
      EXPECT_EQ((*first)[r][i].probabilities,
                (*second)[r][i].probabilities);
    }
  }
  // A batch error (one bad request) surfaces without answering.
  requests[5] = {ds.num_nodes() + 10};
  EXPECT_FALSE(engine.PredictBatch(requests).ok());
}

// ---- End-to-end: train -> artifact -> fresh engine ------------------------

TEST(ServingPipelineTest, RunExportsArtifactThatServesBitwise) {
  const data::Dataset ds = SmallDataset();
  auto splits = data::MakeSplits(ds.labels, ds.num_classes);
  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kGcn;
  opts.iterations = 3;
  opts.pretrain_epochs = 12;
  opts.finetune_epochs = 2;
  opts.seed = 4;
  core::GraphRareTrainer trainer(&ds, opts);
  const core::GraphRareResult result = trainer.Run(splits[0]);
  ASSERT_NE(result.model, nullptr);
  EXPECT_EQ(result.backbone, nn::BackboneKind::kGcn);
  EXPECT_EQ(result.seed, opts.seed);

  // Training-time logits of the selected (model, graph) pair.
  const tensor::Tensor reference =
      EvalLogits(*result.model, ds, result.best_graph);

  auto artifact_or = result.ExportArtifact(ds);
  ASSERT_TRUE(artifact_or.ok()) << artifact_or.status().ToString();
  const std::string path = TempPath("run.grare");
  ASSERT_TRUE(artifact_or->Save(path).ok());

  auto engine_or = serve::InferenceEngine::LoadFrom(path);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ExpectBitwiseEqual(engine_or->FullLogits(), reference);

  // Test-set predictions served exactly as evaluated during training.
  auto preds = engine_or->Predict(splits[0].test);
  ASSERT_TRUE(preds.ok());
  for (size_t i = 0; i < splits[0].test.size(); ++i) {
    EXPECT_EQ((*preds)[i].predicted_class,
              reference.ArgMaxRow(splits[0].test[i]));
  }
  std::remove(path.c_str());
}

TEST(ServingPipelineTest, BlockCoTrainingExportsArtifactThatServesBitwise) {
  const data::Dataset ds = SmallDataset();
  auto splits = data::MakeSplits(ds.labels, ds.num_classes);
  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kGcn;
  opts.iterations = 2;
  opts.pretrain_epochs = 6;
  opts.seed = 4;
  core::BlockRolloutOptions rollout;
  rollout.blocks_per_round = 2;
  rollout.seeds_per_block = 16;
  rollout.steps_per_episode = 2;
  const core::BlockCoTrainResult result =
      core::RunBlockCoTraining(ds, splits[0], opts, rollout);
  ASSERT_NE(result.model, nullptr);

  const tensor::Tensor reference =
      EvalLogits(*result.model, ds, result.best_graph);
  auto artifact_or = result.ExportArtifact(ds);
  ASSERT_TRUE(artifact_or.ok()) << artifact_or.status().ToString();
  const std::string path = TempPath("blocks.grare");
  ASSERT_TRUE(artifact_or->Save(path).ok());
  auto engine_or = serve::InferenceEngine::LoadFrom(path);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ExpectBitwiseEqual(engine_or->FullLogits(), reference);
  std::remove(path.c_str());
}

TEST(ServingPipelineTest, RunGraphRareBlocksRetainsServableModel) {
  const data::Dataset ds = SmallDataset();
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kSage;
  opts.iterations = 2;
  opts.pretrain_epochs = 4;
  opts.seed = 9;
  core::BlockRolloutOptions rollout;
  rollout.blocks_per_round = 2;
  rollout.seeds_per_block = 16;
  rollout.steps_per_episode = 2;
  const core::GraphRareAggregate agg =
      core::RunGraphRareBlocks(ds, splits, opts, rollout);
  ASSERT_NE(agg.last_run.model, nullptr);
  EXPECT_EQ(agg.last_run.backbone, nn::BackboneKind::kSage);

  const tensor::Tensor reference =
      EvalLogits(*agg.last_run.model, ds, agg.last_run.best_graph);
  auto artifact_or = agg.last_run.ExportArtifact(ds);
  ASSERT_TRUE(artifact_or.ok()) << artifact_or.status().ToString();
  const std::string path = TempPath("agg.grare");
  ASSERT_TRUE(artifact_or->Save(path).ok());
  auto engine_or = serve::InferenceEngine::LoadFrom(path);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  ExpectBitwiseEqual(engine_or->FullLogits(), reference);
  std::remove(path.c_str());
}

TEST(ServingPipelineTest, ExportWithoutModelFails) {
  const data::Dataset ds = SmallDataset();
  const core::GraphRareResult empty;
  EXPECT_EQ(empty.ExportArtifact(ds).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace graphrare

// Partition-aware block scheduling tests (ctest label: partition). The
// load-bearing properties of the PR-6 layer seams:
//  * Partitioner(kIndependent) replays the legacy runner's shuffled-chunk
//    stream bitwise, so pre-refactor trajectories are unchanged.
//  * Both partition modes cover every train node exactly once per epoch,
//    deterministically.
//  * BlockPipeline produces the same ScheduledBlock stream whether
//    sampling runs inline, on one producer, or on several, under any
//    OpenMP thread count.
//  * RelativeEntropyIndex::ApplyEdits matches a full re-bucket oracle
//    (carry scores, re-split by final adjacency, canonical sort).
//  * EditMerger conflict accounting counts exactly the last-writer-wins
//    overwrites, per round and across rounds.
//  * The B=1/full-fanout rollout path stays bitwise backward-compatible
//    through the new pipeline, prefetched or inline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/graphrare.h"
#include "data/block_pipeline.h"
#include "data/partitioner.h"

namespace graphrare {
namespace {

using core::BlockRolloutOptions;
using core::BlockRolloutRunner;
using core::ConflictStats;
using core::EditMerger;
using core::NodeEdits;
using data::BlockPipeline;
using data::BlockPipelineOptions;
using data::Partitioner;
using data::PartitionerOptions;
using data::PartitionMode;
using data::ScheduledBlock;

data::Dataset MakeSparseDataset(uint64_t seed) {
  data::GeneratorOptions o;
  o.num_nodes = 160;
  o.num_edges = 300;
  o.num_features = 40;
  o.num_classes = 3;
  o.homophily = 0.5;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

entropy::RelativeEntropyIndex BuildIndex(const data::Dataset& ds,
                                         uint64_t seed = 3) {
  entropy::EntropyOptions eo;
  eo.max_two_hop_candidates = 8;
  eo.num_random_candidates = 4;
  eo.seed = seed;
  return std::move(entropy::RelativeEntropyIndex::Build(ds.graph,
                                                        ds.features, eo))
      .value();
}

// ---- Partitioner -----------------------------------------------------------

TEST(PartitionerTest, OptionsValidation) {
  PartitionerOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.batch_size = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(PartitionerTest, IndependentModeReplaysLegacyStreamBitwise) {
  data::Dataset ds = MakeSparseDataset(21);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < ds.num_nodes(); v += 2) train.push_back(v);

  const uint64_t seed = 23;
  const int64_t batch_size = 12;

  // The pre-refactor BlockRolloutRunner stream: shuffle-chunk an epoch
  // with Rng(seed ^ 0xB10C5EED), emit batches in epoch order.
  Rng legacy_rng(seed ^ 0xB10C5EEDULL);
  std::vector<std::vector<int64_t>> legacy;
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto batches = data::NeighborSampler::MakeBatches(train, batch_size,
                                                      /*shuffle=*/true,
                                                      &legacy_rng);
    for (auto& b : batches) legacy.push_back(std::move(b));
  }

  PartitionerOptions po;
  po.mode = PartitionMode::kIndependent;
  po.batch_size = batch_size;
  po.seed = seed;
  Partitioner partitioner(&ds.graph, train, po);
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(partitioner.NextBatch(), legacy[i])
        << "batch " << i << " diverges from the legacy stream";
  }
}

TEST(PartitionerTest, BothModesCoverEveryTrainNodeExactlyOncePerEpoch) {
  data::Dataset ds = MakeSparseDataset(22);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    if (v % 3 != 0) train.push_back(v);
  }
  const int64_t batch_size = 16;
  const int64_t expect_batches =
      (static_cast<int64_t>(train.size()) + batch_size - 1) / batch_size;

  for (const PartitionMode mode :
       {PartitionMode::kIndependent, PartitionMode::kLocality}) {
    PartitionerOptions po;
    po.mode = mode;
    po.batch_size = batch_size;
    po.seed = 7;
    Partitioner partitioner(&ds.graph, train, po);
    EXPECT_EQ(partitioner.batches_per_epoch(), expect_batches);

    for (int epoch = 0; epoch < 2; ++epoch) {
      std::map<int64_t, int> seen;
      int64_t total = 0;
      for (int64_t b = 0; b < expect_batches; ++b) {
        const std::vector<int64_t> batch = partitioner.NextBatch();
        EXPECT_LE(static_cast<int64_t>(batch.size()), batch_size);
        EXPECT_FALSE(batch.empty());
        for (const int64_t v : batch) {
          ++seen[v];
          ++total;
        }
      }
      EXPECT_EQ(total, static_cast<int64_t>(train.size()))
          << "mode " << static_cast<int>(mode) << " epoch " << epoch;
      for (const int64_t v : train) {
        EXPECT_EQ(seen[v], 1) << "node " << v << " coverage in mode "
                              << static_cast<int>(mode);
      }
    }
  }
}

TEST(PartitionerTest, LocalityModeIsDeterministic) {
  data::Dataset ds = MakeSparseDataset(24);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) train.push_back(v);

  PartitionerOptions po;
  po.mode = PartitionMode::kLocality;
  po.batch_size = 20;
  po.seed = 31;
  Partitioner a(&ds.graph, train, po);
  Partitioner b(&ds.graph, train, po);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextBatch(), b.NextBatch()) << "batch " << i;
  }
}

TEST(PartitionerTest, LocalityModeKeepsCliquesTogether) {
  // Eight disjoint 4-cliques; with batch_size == clique size each BFS
  // region is exactly one clique, so every locality batch must stay
  // within one clique (independent chunking would mix them).
  const int64_t kCliques = 8, kSize = 4;
  std::vector<graph::Edge> edges;
  for (int64_t c = 0; c < kCliques; ++c) {
    for (int64_t i = 0; i < kSize; ++i) {
      for (int64_t j = i + 1; j < kSize; ++j) {
        edges.push_back({c * kSize + i, c * kSize + j});
      }
    }
  }
  const graph::Graph g =
      graph::Graph::FromEdgeListOrDie(kCliques * kSize, edges);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < g.num_nodes(); ++v) train.push_back(v);

  PartitionerOptions po;
  po.mode = PartitionMode::kLocality;
  po.batch_size = kSize;
  po.seed = 5;
  Partitioner partitioner(&g, train, po);
  for (int64_t b = 0; b < kCliques; ++b) {
    const std::vector<int64_t> batch = partitioner.NextBatch();
    ASSERT_EQ(static_cast<int64_t>(batch.size()), kSize);
    const int64_t clique = batch[0] / kSize;
    for (const int64_t v : batch) {
      EXPECT_EQ(v / kSize, clique) << "batch mixes cliques";
    }
  }
}

// ---- BlockPipeline: pipelined == inline, bitwise ---------------------------

std::vector<ScheduledBlock> CollectRounds(const graph::Graph* g,
                                          const std::vector<int64_t>& train,
                                          const BlockPipelineOptions& po,
                                          int rounds) {
  BlockPipeline pipeline(g, train, po);
  std::vector<ScheduledBlock> out;
  for (int r = 0; r < rounds; ++r) {
    for (ScheduledBlock& sb : pipeline.NextRound()) {
      out.push_back(std::move(sb));
    }
  }
  return out;
}

void ExpectSameBlocks(const std::vector<ScheduledBlock>& a,
                      const std::vector<ScheduledBlock>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].block_index, b[i].block_index) << what << " block " << i;
    EXPECT_EQ(a[i].seeds, b[i].seeds) << what << " block " << i;
    EXPECT_EQ(a[i].block.nodes, b[i].block.nodes) << what << " block " << i;
    EXPECT_EQ(a[i].block.seed_global, b[i].block.seed_global)
        << what << " block " << i;
    EXPECT_EQ(a[i].block.seed_local, b[i].block.seed_local)
        << what << " block " << i;
    EXPECT_EQ(a[i].block.graph.edges(), b[i].block.graph.edges())
        << what << " block " << i;
  }
}

TEST(BlockPipelineTest, PipelinedMatchesInlineBitwise) {
  data::Dataset ds = MakeSparseDataset(25);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < ds.num_nodes(); v += 2) train.push_back(v);

  BlockPipelineOptions base;
  base.sampler.fanouts = {4, 4};
  base.sampler.seed = 13;
  base.blocks_per_round = 3;
  base.seeds_per_block = 10;
  base.partition_seed = 13;
  const int kRounds = 6;

  for (const PartitionMode mode :
       {PartitionMode::kIndependent, PartitionMode::kLocality}) {
    BlockPipelineOptions inline_po = base;
    inline_po.partition = mode;
    inline_po.prefetch_depth = 0;
    const auto inline_blocks =
        CollectRounds(&ds.graph, train, inline_po, kRounds);

    for (const int depth : {1, 3}) {
      for (const int producers : {1, 3}) {
        BlockPipelineOptions po = inline_po;
        po.prefetch_depth = depth;
        po.num_producers = producers;
        const auto piped = CollectRounds(&ds.graph, train, po, kRounds);
        ExpectSameBlocks(inline_blocks, piped, "pipelined vs inline");
      }
    }
  }
}

#ifdef _OPENMP
TEST(BlockPipelineTest, StreamInvariantToOmpThreadCount) {
  data::Dataset ds = MakeSparseDataset(26);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < ds.num_nodes(); v += 3) train.push_back(v);

  BlockPipelineOptions po;
  po.sampler.fanouts = {6, 4};
  po.sampler.seed = 17;
  po.blocks_per_round = 2;
  po.seeds_per_block = 8;
  po.partition_seed = 17;
  po.prefetch_depth = 2;
  po.num_producers = 2;

  const int old_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto t1 = CollectRounds(&ds.graph, train, po, 5);
  omp_set_num_threads(4);
  const auto t4 = CollectRounds(&ds.graph, train, po, 5);
  omp_set_num_threads(old_threads);
  ExpectSameBlocks(t1, t4, "omp 1 vs 4 threads");
}
#endif  // _OPENMP

TEST(BlockPipelineTest, FullGraphModePrefetchesIdentityBlocks) {
  data::Dataset ds = MakeSparseDataset(27);
  std::vector<int64_t> train;
  for (int64_t v = 0; v < ds.num_nodes(); v += 4) train.push_back(v);

  BlockPipelineOptions po;
  po.sampler.fanouts = {};  // full-graph mode
  po.blocks_per_round = 1;
  po.seeds_per_block = static_cast<int64_t>(train.size());
  po.partition_seed = 3;
  po.prefetch_depth = 2;
  BlockPipeline pipeline(&ds.graph, train, po);
  const auto round = pipeline.NextRound();
  ASSERT_EQ(round.size(), 1u);
  EXPECT_EQ(round[0].block.num_nodes(), ds.num_nodes());
  EXPECT_EQ(round[0].block.graph.edges(), ds.graph.edges());
}

// ---- EdgeListDiff ----------------------------------------------------------

TEST(EdgeListDiffTest, ReportsSymmetricDifferenceSorted) {
  const graph::Graph before =
      graph::Graph::FromEdgeListOrDie(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  const graph::Graph after =
      graph::Graph::FromEdgeListOrDie(6, {{0, 1}, {1, 3}, {2, 3}, {3, 5}});
  std::vector<graph::Edge> added, removed;
  graph::EdgeListDiff(before, after, &added, &removed);
  EXPECT_EQ(added, (std::vector<graph::Edge>{{1, 3}, {3, 5}}));
  EXPECT_EQ(removed, (std::vector<graph::Edge>{{1, 2}, {4, 5}}));

  graph::EdgeListDiff(before, before, &added, &removed);
  EXPECT_TRUE(added.empty());
  EXPECT_TRUE(removed.empty());
}

// ---- Incremental entropy refresh vs full re-bucket oracle ------------------

// Full re-bucket oracle: every scored pair of the pre-refresh index keeps
// its score, membership follows the final graph's adjacency, and the
// sequences sort by the canonical comparators. This is exactly what
// ApplyEdits must reproduce when fed the (before, after) edge diffs.
void ExpectIndexMatchesRebucket(const entropy::RelativeEntropyIndex& original,
                                const entropy::RelativeEntropyIndex& refreshed,
                                const graph::Graph& final_g) {
  ASSERT_EQ(original.num_nodes(), refreshed.num_nodes());
  for (int64_t v = 0; v < original.num_nodes(); ++v) {
    const auto& src = original.sequences(v);
    std::vector<entropy::ScoredNode> want_remote, want_neighbors;
    auto place = [&](const entropy::ScoredNode& s) {
      if (final_g.HasEdge(v, s.node)) {
        want_neighbors.push_back(s);
      } else {
        want_remote.push_back(s);
      }
    };
    for (const auto& s : src.remote) place(s);
    for (const auto& s : src.neighbors) place(s);
    std::sort(want_remote.begin(), want_remote.end(),
              [](const entropy::ScoredNode& a, const entropy::ScoredNode& b) {
                return a.entropy != b.entropy ? a.entropy > b.entropy
                                              : a.node < b.node;
              });
    std::sort(want_neighbors.begin(), want_neighbors.end(),
              [](const entropy::ScoredNode& a, const entropy::ScoredNode& b) {
                return a.entropy != b.entropy ? a.entropy < b.entropy
                                              : a.node < b.node;
              });

    const auto& got = refreshed.sequences(v);
    ASSERT_EQ(got.remote.size(), want_remote.size()) << "node " << v;
    for (size_t i = 0; i < want_remote.size(); ++i) {
      EXPECT_EQ(got.remote[i].node, want_remote[i].node) << "node " << v;
      EXPECT_EQ(got.remote[i].entropy, want_remote[i].entropy)
          << "node " << v;
    }
    ASSERT_EQ(got.neighbors.size(), want_neighbors.size()) << "node " << v;
    for (size_t i = 0; i < want_neighbors.size(); ++i) {
      EXPECT_EQ(got.neighbors[i].node, want_neighbors[i].node)
          << "node " << v;
      EXPECT_EQ(got.neighbors[i].entropy, want_neighbors[i].entropy)
          << "node " << v;
    }
  }
}

TEST(EntropyRefreshTest, ApplyEditsMatchesFullRebucketOracle) {
  data::Dataset ds = MakeSparseDataset(28);
  const entropy::RelativeEntropyIndex original = BuildIndex(ds);
  entropy::RelativeEntropyIndex refreshed = original;

  // Drive realistic multi-round rewiring through the topology optimizer:
  // additions come from remote prefixes, deletions from neighbor
  // prefixes, exactly the scored pairs ApplyEdits must re-bucket.
  graph::Graph current = ds.graph;
  core::TopologyState s1(ds.num_nodes(), 2, 2);
  s1.SetUniform(1, 1);
  core::TopologyState s2(ds.num_nodes(), 3, 3);
  s2.SetUniform(2, 0);
  core::TopologyState s3(ds.num_nodes(), 3, 3);
  s3.SetUniform(0, 2);
  for (const core::TopologyState* state : {&s1, &s2, &s3}) {
    // Each round rewires from G_0 slices against the ORIGINAL scores (the
    // optimizer contract), then the diff is applied incrementally.
    const graph::Graph next =
        core::BuildOptimizedGraph(ds.graph, *state, original);
    std::vector<graph::Edge> added, removed;
    graph::EdgeListDiff(current, next, &added, &removed);
    refreshed.ApplyEdits(added, removed);
    current = next;
    ExpectIndexMatchesRebucket(original, refreshed, current);
  }
}

TEST(EntropyRefreshTest, UnscoredPairsAreNoOps) {
  data::Dataset ds = MakeSparseDataset(29);
  const entropy::RelativeEntropyIndex original = BuildIndex(ds);
  entropy::RelativeEntropyIndex refreshed = original;

  // Find a pair scored in neither direction: refresh must ignore it.
  int64_t pu = -1, pv = -1;
  for (int64_t u = 0; u < ds.num_nodes() && pu < 0; ++u) {
    for (int64_t v = u + 1; v < ds.num_nodes() && pu < 0; ++v) {
      if (ds.graph.HasEdge(u, v)) continue;
      auto scored = [&](int64_t a, int64_t b) {
        for (const auto& s : original.sequences(a).remote) {
          if (s.node == b) return true;
        }
        for (const auto& s : original.sequences(a).neighbors) {
          if (s.node == b) return true;
        }
        return false;
      };
      if (!scored(u, v) && !scored(v, u)) {
        pu = u;
        pv = v;
      }
    }
  }
  ASSERT_GE(pu, 0) << "dataset unexpectedly scores every pair";

  refreshed.ApplyEdits({{pu, pv}}, {});
  for (int64_t v = 0; v < original.num_nodes(); ++v) {
    const auto& a = original.sequences(v);
    const auto& b = refreshed.sequences(v);
    ASSERT_EQ(a.remote.size(), b.remote.size());
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  }
}

// ---- EditMerger conflict accounting ----------------------------------------

TEST(EditMergerConflictTest, CountsOverlapWithinRound) {
  EditMerger merger;
  merger.BeginRound();
  merger.Record(3, NodeEdits{});
  merger.Record(5, NodeEdits{});
  merger.Record(3, NodeEdits{});  // block overlap on node 3
  merger.Record(3, NodeEdits{});  // and a third writer
  const ConflictStats& s = merger.round_stats();
  EXPECT_EQ(s.nodes_recorded, 2);
  EXPECT_EQ(s.conflict_nodes, 1);
  EXPECT_EQ(s.overwrites, 2);
  EXPECT_EQ(s.cross_round_overwrites, 0);
  EXPECT_DOUBLE_EQ(s.ConflictRate(), 0.5);
}

TEST(EditMergerConflictTest, DisjointBlocksReportNoConflicts) {
  EditMerger merger;
  merger.BeginRound();
  for (int64_t v = 0; v < 10; ++v) merger.Record(v, NodeEdits{});
  const ConflictStats& s = merger.round_stats();
  EXPECT_EQ(s.nodes_recorded, 10);
  EXPECT_EQ(s.conflict_nodes, 0);
  EXPECT_EQ(s.overwrites, 0);
  EXPECT_DOUBLE_EQ(s.ConflictRate(), 0.0);
}

TEST(EditMergerConflictTest, TracksCrossRoundOverwritesSeparately) {
  EditMerger merger;
  merger.BeginRound();
  merger.Record(1, NodeEdits{});
  merger.Record(2, NodeEdits{});

  merger.BeginRound();
  merger.Record(2, NodeEdits{});  // re-owned from round 1: cross-round
  merger.Record(7, NodeEdits{});  // fresh
  const ConflictStats& s = merger.round_stats();
  EXPECT_EQ(s.nodes_recorded, 2);
  EXPECT_EQ(s.conflict_nodes, 0);  // no within-round overlap
  EXPECT_EQ(s.overwrites, 0);
  EXPECT_EQ(s.cross_round_overwrites, 1);
}

// ---- Backward compat: prefetched pipeline == inline rollout ----------------

nn::ModelOptions NoDropoutOptions(const data::Dataset& ds, uint64_t seed) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 12;
  mo.num_classes = ds.num_classes;
  mo.dropout = 0.0f;
  mo.seed = seed;
  return mo;
}

struct RolloutOutcome {
  std::vector<double> mean_rewards;
  std::vector<graph::Edge> merged_edges;
  std::vector<tensor::Tensor> weights;
};

RolloutOutcome RunRollout(const data::Dataset& ds, const data::Split& split,
                          const entropy::RelativeEntropyIndex& index,
                          const BlockRolloutOptions& ro, int rounds) {
  auto model = nn::MakeModel(nn::BackboneKind::kSage,
                             NoDropoutOptions(ds, 7));
  nn::MiniBatchTrainer::Options topts;
  topts.seed = 7;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               topts);
  rl::PpoOptions po;
  po.steps_per_update = 3;
  po.seed = 19;
  rl::PpoAgent agent(core::kObservationDim, po);
  BlockRolloutRunner runner(&ds, &split, &trainer, &index, ro);
  RolloutOutcome out;
  for (int r = 0; r < rounds; ++r) {
    out.mean_rewards.push_back(runner.RunRound(&agent).mean_reward);
  }
  out.merged_edges = runner.MergedGraph().edges();
  out.weights = trainer.SaveWeights();
  return out;
}

TEST(BackwardCompatTest, PrefetchedRolloutMatchesInlineBitwise) {
  data::Dataset ds = MakeSparseDataset(30);
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  const auto index = BuildIndex(ds);

  BlockRolloutOptions ro;
  ro.blocks_per_round = 2;
  ro.seeds_per_block = 12;
  ro.fanouts = {4, 4};
  ro.steps_per_episode = 3;
  ro.env.gnn_epochs_per_step = 1;
  ro.seed = 23;

  BlockRolloutOptions inline_ro = ro;
  inline_ro.prefetch_depth = 0;
  const RolloutOutcome inline_out =
      RunRollout(ds, splits[0], index, inline_ro, 3);

  BlockRolloutOptions piped_ro = ro;
  piped_ro.prefetch_depth = 2;
  piped_ro.num_producers = 2;
  const RolloutOutcome piped_out =
      RunRollout(ds, splits[0], index, piped_ro, 3);

  EXPECT_EQ(inline_out.mean_rewards, piped_out.mean_rewards);
  EXPECT_EQ(inline_out.merged_edges, piped_out.merged_edges);
  ASSERT_EQ(inline_out.weights.size(), piped_out.weights.size());
  for (size_t i = 0; i < inline_out.weights.size(); ++i) {
    EXPECT_TRUE(
        inline_out.weights[i].AllClose(piped_out.weights[i], 0.0f, 0.0f))
        << "weights diverge at parameter " << i;
  }
}

TEST(BackwardCompatTest, B1FullFanoutReproducesFullGraphThroughPipeline) {
  data::Dataset ds = MakeSparseDataset(16);  // same data as rl suite's pin
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  const auto index = BuildIndex(ds);

  core::TopologyEnvOptions eo;
  eo.gnn_epochs_per_step = 1;
  rl::PpoOptions po;
  po.steps_per_update = 3;
  po.seed = 19;
  const int steps = 6;

  // Full-graph reference trajectory (TopologyEnv + ClassifierTrainer).
  auto full_model = nn::MakeModel(nn::BackboneKind::kSage,
                                  NoDropoutOptions(ds, 7));
  nn::ClassifierTrainer::Options full_topts;
  full_topts.seed = 7;
  nn::ClassifierTrainer full_trainer(
      full_model.get(), nn::LayerInput::Sparse(ds.FeaturesCsr()),
      &ds.labels, full_topts);
  core::TopologyEnv full_env(&ds, &splits[0], &full_trainer, &index, eo);
  rl::PpoAgent full_agent(core::kObservationDim, po);
  const std::vector<double> full_rewards =
      rl::RunAgentOnEnv(&full_agent, &full_env, steps);

  // B=1/full-fanout through the new pipeline, prefetching enabled.
  auto mb_model = nn::MakeModel(nn::BackboneKind::kSage,
                                NoDropoutOptions(ds, 7));
  nn::MiniBatchTrainer::Options mb_topts;
  mb_topts.seed = 7;
  nn::MiniBatchTrainer mb_trainer(mb_model.get(), ds.FeaturesCsr(),
                                  &ds.labels, mb_topts);
  BlockRolloutOptions ro;
  ro.blocks_per_round = 1;
  ro.fanouts = {};
  ro.seeds_per_block = ds.num_nodes();
  ro.steps_per_episode = steps;
  ro.env = eo;
  ro.prefetch_depth = 2;
  ro.num_producers = 2;
  BlockRolloutRunner runner(&ds, &splits[0], &mb_trainer, &index, ro);
  rl::PpoAgent block_agent(core::kObservationDim, po);
  const BlockRolloutRunner::RoundStats stats = runner.RunRound(&block_agent);

  ASSERT_EQ(stats.env_steps, static_cast<int64_t>(full_rewards.size()));
  double full_mean = 0.0;
  for (const double r : full_rewards) full_mean += r;
  full_mean /= static_cast<double>(full_rewards.size());
  EXPECT_EQ(stats.mean_reward, full_mean);
  EXPECT_EQ(runner.MergedGraph().edges(), full_env.current_graph().edges());
}

// ---- Locality + refresh end-to-end smoke -----------------------------------

TEST(PartitionCoTrainTest, LocalityWithEntropyRefreshCoTrains) {
  data::Dataset ds = MakeSparseDataset(31);
  data::SplitOptions so;
  so.num_splits = 1;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kSage;
  opts.hidden = 12;
  opts.dropout = 0.0f;
  opts.entropy.max_two_hop_candidates = 6;
  opts.entropy.num_random_candidates = 2;
  opts.iterations = 2;
  opts.pretrain_epochs = 1;
  opts.ppo.steps_per_update = 3;
  opts.seed = 9;

  BlockRolloutOptions ro;
  ro.blocks_per_round = 3;
  ro.seeds_per_block = 16;
  ro.fanouts = {4, 4};
  ro.steps_per_episode = 2;
  ro.env.gnn_epochs_per_step = 1;
  ro.partition = PartitionMode::kLocality;
  ro.prefetch_depth = 2;
  ro.refresh_entropy = true;

  const core::BlockCoTrainResult result =
      core::RunBlockCoTraining(ds, splits[0], opts, ro);
  EXPECT_EQ(result.round_telemetry.size(), 2u);
  for (const core::BlockRoundTelemetry& t : result.round_telemetry) {
    EXPECT_EQ(t.num_blocks, 3);
    EXPECT_GE(t.conflicts.nodes_recorded, t.conflicts.conflict_nodes);
    EXPECT_GE(t.conflicts.ConflictRate(), 0.0);
    EXPECT_LE(t.conflicts.ConflictRate(), 1.0);
    EXPECT_TRUE(std::isfinite(t.mean_reward));
  }
  EXPECT_GT(result.final_edges, 0);
}

}  // namespace
}  // namespace graphrare

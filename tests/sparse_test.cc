// CSR matrix tests: construction, SpMM, transpose, sparse-sparse product,
// row slicing, and gradient checks through the SpMM backward.

#include "tensor/sparse.h"

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace graphrare {
namespace tensor {
namespace {

CsrMatrix SmallMatrix() {
  // [[0 2 0]
  //  [1 0 0]
  //  [0 3 4]]
  return CsrMatrix::FromCoo(
      3, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {2, 1, 3.0f}, {2, 2, 4.0f}});
}

TEST(CsrTest, FromCooBasics) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(2, 2), 4.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(CsrTest, DuplicateEntriesSummed) {
  CsrMatrix m =
      CsrMatrix::FromCoo(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, 1.0f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.At(0, 0), 3.5f);
}

TEST(CsrTest, UnsortedInputSorted) {
  CsrMatrix m = CsrMatrix::FromCoo(
      2, 3, {{1, 2, 1.0f}, {0, 1, 2.0f}, {1, 0, 3.0f}, {0, 0, 4.0f}});
  // Column indices must be ascending within each row.
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t p = m.row_ptr()[r] + 1; p < m.row_ptr()[r + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p - 1], m.col_idx()[p]);
    }
  }
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromCoo(3, 3, {});
  EXPECT_EQ(m.nnz(), 0);
  Tensor x = Tensor::Ones(3, 2);
  Tensor y = m.SpMM(x);
  EXPECT_TRUE(y.AllClose(Tensor::Zeros(3, 2)));
}

TEST(CsrTest, IdentitySpMMIsNoop) {
  Rng rng(1);
  Tensor x = Tensor::Randn(4, 3, &rng);
  CsrMatrix eye = CsrMatrix::Identity(4);
  EXPECT_TRUE(eye.SpMM(x).AllClose(x));
}

TEST(CsrTest, SpMMMatchesDense) {
  Rng rng(2);
  CsrMatrix m = SmallMatrix();
  Tensor x = Tensor::Randn(3, 5, &rng);
  Tensor sparse_result = m.SpMM(x);
  Tensor dense_result = MatMul(m.ToDense(), x);
  EXPECT_TRUE(sparse_result.AllClose(dense_result));
}

TEST(CsrTest, TransposeMatchesDense) {
  CsrMatrix m = SmallMatrix();
  auto t = m.Transposed();
  EXPECT_TRUE(t->ToDense().AllClose(m.ToDense().Transposed()));
}

TEST(CsrTest, TransposeIsCached) {
  CsrMatrix m = SmallMatrix();
  auto t1 = m.Transposed();
  auto t2 = m.Transposed();
  EXPECT_EQ(t1.get(), t2.get());
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(3);
  CsrMatrix a = SmallMatrix();
  CsrMatrix b = CsrMatrix::FromCoo(
      3, 4, {{0, 0, 1.0f}, {1, 2, 2.0f}, {2, 1, -1.0f}, {2, 3, 0.5f}});
  CsrMatrix c = a.Multiply(b);
  Tensor expect = MatMul(a.ToDense(), b.ToDense());
  EXPECT_TRUE(c.ToDense().AllClose(expect));
}

TEST(CsrTest, MultiplySquareOfAdjacencyCountsPaths) {
  // Path graph 0-1-2: A^2 should have (0,2) entry = 1 (one 2-path).
  CsrMatrix a = CsrMatrix::FromCoo(3, 3,
                                   {{0, 1, 1.0f},
                                    {1, 0, 1.0f},
                                    {1, 2, 1.0f},
                                    {2, 1, 1.0f}});
  CsrMatrix a2 = a.Multiply(a);
  EXPECT_FLOAT_EQ(a2.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(a2.At(0, 0), 1.0f);  // back-and-forth
  EXPECT_FLOAT_EQ(a2.At(1, 1), 2.0f);  // two return paths via 0 and 2
}

TEST(CsrTest, WithUniformValues) {
  CsrMatrix m = SmallMatrix().WithUniformValues(1.0f);
  for (float v : m.values()) EXPECT_EQ(v, 1.0f);
  EXPECT_EQ(m.nnz(), 4);
}

TEST(CsrTest, SelectRowsCopiesRowsInOrder) {
  CsrMatrix m = SmallMatrix();
  CsrMatrix s = m.SelectRows({2, 0, 2});
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.cols(), 3);
  EXPECT_EQ(s.nnz(), 5);  // rows 2 (2 entries) + 0 (1) + 2 (2)
  EXPECT_FLOAT_EQ(s.At(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(s.At(0, 2), 4.0f);
  EXPECT_FLOAT_EQ(s.At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(s.At(2, 2), 4.0f);
  EXPECT_EQ(m.SelectRows({}).rows(), 0);
}

// --- Gradient checks through the SpMM backward (x -> A x). Forward values
// were already covered; these pin the A^T dY pullback on inputs that stress
// the COO assembly: non-square shapes and duplicate entries. ---

/// d MeanAll(Square(A x)) / dx must match central differences.
void ExpectSpMMGradOk(CsrMatrix a, int64_t x_cols) {
  auto shared = std::make_shared<const CsrMatrix>(std::move(a));
  Rng rng(31);
  std::vector<Variable> inputs = {
      Variable(Tensor::Randn(shared->cols(), x_cols, &rng),
               /*requires_grad=*/true)};
  auto f = [shared](const std::vector<Variable>& in) {
    return ops::MeanAll(ops::Square(ops::SpMM(shared, in[0])));
  };
  const GradCheckResult r = CheckGradient(f, &inputs, 0);
  EXPECT_TRUE(r.ok) << "max_abs_err=" << r.max_abs_err
                    << " max_rel_err=" << r.max_rel_err << " at flat index "
                    << r.worst_index;
}

TEST(CsrGradTest, SpMMBackwardNonSquareTall) {
  // 4x2: more rows than columns.
  ExpectSpMMGradOk(CsrMatrix::FromCoo(4, 2,
                                      {{0, 0, 1.5f},
                                       {1, 1, -2.0f},
                                       {2, 0, 0.5f},
                                       {3, 1, 3.0f},
                                       {3, 0, -1.0f}}),
                   3);
}

TEST(CsrGradTest, SpMMBackwardNonSquareWide) {
  // 2x5: more columns than rows, including an all-zero column.
  ExpectSpMMGradOk(CsrMatrix::FromCoo(2, 5,
                                      {{0, 4, 2.0f},
                                       {0, 1, -0.5f},
                                       {1, 0, 1.0f},
                                       {1, 3, -3.0f}}),
                   2);
}

TEST(CsrGradTest, SpMMBackwardDuplicateEntriesSummed) {
  // Duplicates (0,1) and (2,0) must act as their sums in both directions.
  CsrMatrix a = CsrMatrix::FromCoo(3, 2,
                                   {{0, 1, 1.0f},
                                    {0, 1, 2.0f},
                                    {2, 0, -1.0f},
                                    {2, 0, 0.25f},
                                    {1, 0, 4.0f}});
  EXPECT_EQ(a.nnz(), 3);
  ExpectSpMMGradOk(std::move(a), 2);
}

TEST(CsrGradTest, SpMMBackwardMatchesDenseMatMulGrad) {
  // Same loss through SpMM and through the dense MatMul path must produce
  // the same input gradient.
  CsrMatrix a = CsrMatrix::FromCoo(
      3, 4, {{0, 0, 1.0f}, {0, 3, -2.0f}, {1, 1, 0.5f}, {2, 2, 2.0f}});
  auto shared = std::make_shared<const CsrMatrix>(a);
  Rng rng(7);
  const Tensor x0 = Tensor::Randn(4, 3, &rng);

  Variable x_sparse(x0, /*requires_grad=*/true);
  ops::MeanAll(ops::Square(ops::SpMM(shared, x_sparse))).Backward();

  Variable x_dense(x0, /*requires_grad=*/true);
  Variable a_const(a.ToDense(), /*requires_grad=*/false);
  ops::MeanAll(ops::Square(ops::MatMul(a_const, x_dense))).Backward();

  EXPECT_TRUE(x_sparse.grad().AllClose(x_dense.grad(), 1e-6f, 1e-5f));
}

TEST(CsrDeathTest, OutOfRangeCooAborts) {
  EXPECT_DEATH(CsrMatrix::FromCoo(2, 2, {{2, 0, 1.0f}}), "out of range");
}

TEST(CsrDeathTest, SpMMDimensionMismatchAborts) {
  CsrMatrix m = SmallMatrix();
  Tensor x(4, 2);
  EXPECT_DEATH(m.SpMM(x), "GR_CHECK");
}

CsrMatrix RandomMatrix(int64_t rows, int64_t cols, int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<CooEntry> entries;
  for (int64_t i = 0; i < n; ++i) {
    entries.push_back({static_cast<int64_t>(rng.UniformInt(rows)),
                       static_cast<int64_t>(rng.UniformInt(cols)),
                       static_cast<float>(rng.Uniform(-2.0, 2.0))});
  }
  return CsrMatrix::FromCoo(rows, cols, std::move(entries));
}

void ExpectSameCsr(const CsrMatrix& got, const CsrMatrix& want) {
  EXPECT_EQ(got.rows(), want.rows());
  EXPECT_EQ(got.cols(), want.cols());
  EXPECT_EQ(got.row_ptr(), want.row_ptr());
  EXPECT_EQ(got.col_idx(), want.col_idx());
  EXPECT_EQ(got.values(), want.values());
}

TEST(CsrPermutedTest, MatchesCooOracle) {
  const CsrMatrix m = RandomMatrix(17, 17, 90, 101);
  Rng rng(103);
  std::vector<int64_t> perm(17);
  for (int64_t i = 0; i < 17; ++i) perm[static_cast<size_t>(i)] = i;
  for (int64_t i = 16; i > 0; --i) {
    std::swap(perm[static_cast<size_t>(i)],
              perm[rng.UniformInt(static_cast<uint64_t>(i) + 1)]);
  }
  struct Case {
    bool rows, cols;
  };
  for (const Case c : {Case{true, true}, Case{true, false},
                       Case{false, true}}) {
    std::vector<CooEntry> mapped;
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t p = m.row_ptr()[static_cast<size_t>(r)];
           p < m.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        const int64_t col = m.col_idx()[static_cast<size_t>(p)];
        mapped.push_back(
            {c.rows ? perm[static_cast<size_t>(r)] : r,
             c.cols ? perm[static_cast<size_t>(col)] : col,
             m.values()[static_cast<size_t>(p)]});
      }
    }
    ExpectSameCsr(m.Permuted(perm, c.rows, c.cols),
                  CsrMatrix::FromCoo(17, 17, std::move(mapped)));
  }
}

TEST(CsrTransposedTest, ConcurrentCallsShareOneInstance) {
  // Transposed() is lazily cached behind std::call_once; hammer it from
  // many threads and require a single shared instance with correct
  // contents.
  const CsrMatrix m = RandomMatrix(120, 80, 2000, 107);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CsrMatrix>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m, &results, t] {
      for (int i = 0; i < 50; ++i) results[static_cast<size_t>(t)] =
          m.Transposed();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[static_cast<size_t>(t)].get(), results[0].get());
  }
  // Contents: (c, r) of every original entry.
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t p = m.row_ptr()[static_cast<size_t>(r)];
         p < m.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
      EXPECT_EQ(
          results[0]->At(m.col_idx()[static_cast<size_t>(p)], r),
          m.values()[static_cast<size_t>(p)]);
    }
  }
}

}  // namespace
}  // namespace tensor
}  // namespace graphrare

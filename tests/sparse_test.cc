// CSR matrix tests: construction, SpMM, transpose, sparse-sparse product.

#include "tensor/sparse.h"

#include <gtest/gtest.h>

namespace graphrare {
namespace tensor {
namespace {

CsrMatrix SmallMatrix() {
  // [[0 2 0]
  //  [1 0 0]
  //  [0 3 4]]
  return CsrMatrix::FromCoo(
      3, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {2, 1, 3.0f}, {2, 2, 4.0f}});
}

TEST(CsrTest, FromCooBasics) {
  CsrMatrix m = SmallMatrix();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(2, 2), 4.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(CsrTest, DuplicateEntriesSummed) {
  CsrMatrix m =
      CsrMatrix::FromCoo(2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, 1.0f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.At(0, 0), 3.5f);
}

TEST(CsrTest, UnsortedInputSorted) {
  CsrMatrix m = CsrMatrix::FromCoo(
      2, 3, {{1, 2, 1.0f}, {0, 1, 2.0f}, {1, 0, 3.0f}, {0, 0, 4.0f}});
  // Column indices must be ascending within each row.
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t p = m.row_ptr()[r] + 1; p < m.row_ptr()[r + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p - 1], m.col_idx()[p]);
    }
  }
}

TEST(CsrTest, EmptyMatrix) {
  CsrMatrix m = CsrMatrix::FromCoo(3, 3, {});
  EXPECT_EQ(m.nnz(), 0);
  Tensor x = Tensor::Ones(3, 2);
  Tensor y = m.SpMM(x);
  EXPECT_TRUE(y.AllClose(Tensor::Zeros(3, 2)));
}

TEST(CsrTest, IdentitySpMMIsNoop) {
  Rng rng(1);
  Tensor x = Tensor::Randn(4, 3, &rng);
  CsrMatrix eye = CsrMatrix::Identity(4);
  EXPECT_TRUE(eye.SpMM(x).AllClose(x));
}

TEST(CsrTest, SpMMMatchesDense) {
  Rng rng(2);
  CsrMatrix m = SmallMatrix();
  Tensor x = Tensor::Randn(3, 5, &rng);
  Tensor sparse_result = m.SpMM(x);
  Tensor dense_result = MatMul(m.ToDense(), x);
  EXPECT_TRUE(sparse_result.AllClose(dense_result));
}

TEST(CsrTest, TransposeMatchesDense) {
  CsrMatrix m = SmallMatrix();
  auto t = m.Transposed();
  EXPECT_TRUE(t->ToDense().AllClose(m.ToDense().Transposed()));
}

TEST(CsrTest, TransposeIsCached) {
  CsrMatrix m = SmallMatrix();
  auto t1 = m.Transposed();
  auto t2 = m.Transposed();
  EXPECT_EQ(t1.get(), t2.get());
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(3);
  CsrMatrix a = SmallMatrix();
  CsrMatrix b = CsrMatrix::FromCoo(
      3, 4, {{0, 0, 1.0f}, {1, 2, 2.0f}, {2, 1, -1.0f}, {2, 3, 0.5f}});
  CsrMatrix c = a.Multiply(b);
  Tensor expect = MatMul(a.ToDense(), b.ToDense());
  EXPECT_TRUE(c.ToDense().AllClose(expect));
}

TEST(CsrTest, MultiplySquareOfAdjacencyCountsPaths) {
  // Path graph 0-1-2: A^2 should have (0,2) entry = 1 (one 2-path).
  CsrMatrix a = CsrMatrix::FromCoo(3, 3,
                                   {{0, 1, 1.0f},
                                    {1, 0, 1.0f},
                                    {1, 2, 1.0f},
                                    {2, 1, 1.0f}});
  CsrMatrix a2 = a.Multiply(a);
  EXPECT_FLOAT_EQ(a2.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(a2.At(0, 0), 1.0f);  // back-and-forth
  EXPECT_FLOAT_EQ(a2.At(1, 1), 2.0f);  // two return paths via 0 and 2
}

TEST(CsrTest, WithUniformValues) {
  CsrMatrix m = SmallMatrix().WithUniformValues(1.0f);
  for (float v : m.values()) EXPECT_EQ(v, 1.0f);
  EXPECT_EQ(m.nnz(), 4);
}

TEST(CsrDeathTest, OutOfRangeCooAborts) {
  EXPECT_DEATH(CsrMatrix::FromCoo(2, 2, {{2, 0, 1.0f}}), "out of range");
}

TEST(CsrDeathTest, SpMMDimensionMismatchAborts) {
  CsrMatrix m = SmallMatrix();
  Tensor x(4, 2);
  EXPECT_DEATH(m.SpMM(x), "GR_CHECK");
}

}  // namespace
}  // namespace tensor
}  // namespace graphrare

// Dataset generator and registry tests: planted statistics, feature model,
// split protocol.

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "data/registry.h"
#include "data/splits.h"

namespace graphrare {
namespace data {
namespace {

GeneratorOptions BaseOptions() {
  GeneratorOptions o;
  o.num_nodes = 300;
  o.num_edges = 900;
  o.num_features = 120;
  o.num_classes = 5;
  o.homophily = 0.3;
  o.seed = 21;
  return o;
}

TEST(GeneratorTest, MatchesRequestedCounts) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  EXPECT_EQ(ds.num_nodes(), 300);
  EXPECT_EQ(ds.graph.num_edges(), 900);
  EXPECT_EQ(ds.num_features(), 120);
  EXPECT_EQ(ds.num_classes, 5);
  EXPECT_EQ(ds.labels.size(), 300u);
}

TEST(GeneratorTest, PlantsHomophilyRatio) {
  for (double h : {0.1, 0.3, 0.5, 0.8}) {
    GeneratorOptions o = BaseOptions();
    o.homophily = h;
    Dataset ds = std::move(GenerateDataset(o)).value();
    EXPECT_NEAR(ds.Homophily(), h, 0.02) << "target H=" << h;
  }
}

TEST(GeneratorTest, LabelsBalanced) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  std::vector<int> counts(5, 0);
  for (int64_t y : ds.labels) counts[static_cast<size_t>(y)]++;
  for (int c : counts) EXPECT_EQ(c, 60);
}

TEST(GeneratorTest, FeaturesAreBinary) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  for (int64_t i = 0; i < ds.features.numel(); ++i) {
    EXPECT_TRUE(ds.features[i] == 0.0f || ds.features[i] == 1.0f);
  }
}

TEST(GeneratorTest, FeatureDensityApproximatelyMet) {
  GeneratorOptions o = BaseOptions();
  o.feature_density = 0.08;
  Dataset ds = std::move(GenerateDataset(o)).value();
  const double density = ds.features.Sum() / ds.features.numel();
  EXPECT_NEAR(density, 0.08, 0.02);
}

TEST(GeneratorTest, FeatureSignalSeparatesClasses) {
  GeneratorOptions o = BaseOptions();
  o.feature_signal = 12.0;
  Dataset ds = std::move(GenerateDataset(o)).value();
  // Mean topic-block activation should far exceed off-topic activation.
  const int64_t block = o.num_features / o.num_classes;
  double in_topic = 0.0, off_topic = 0.0;
  int64_t in_n = 0, off_n = 0;
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    const int64_t cls = ds.labels[static_cast<size_t>(i)];
    for (int64_t j = 0; j < o.num_features; ++j) {
      const bool topical = j >= cls * block && j < (cls + 1) * block;
      if (topical) {
        in_topic += ds.features.at(i, j);
        ++in_n;
      } else {
        off_topic += ds.features.at(i, j);
        ++off_n;
      }
    }
  }
  EXPECT_GT(in_topic / in_n, 4.0 * (off_topic / off_n));
}

TEST(GeneratorTest, DeterministicForSeed) {
  Dataset a = std::move(GenerateDataset(BaseOptions())).value();
  Dataset b = std::move(GenerateDataset(BaseOptions())).value();
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_TRUE(a.features.AllClose(b.features));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions o2 = BaseOptions();
  o2.seed = 22;
  Dataset a = std::move(GenerateDataset(BaseOptions())).value();
  Dataset b = std::move(GenerateDataset(o2)).value();
  EXPECT_NE(a.graph.edges(), b.graph.edges());
}

TEST(GeneratorTest, DegreeSkewRaisesMaxDegree) {
  GeneratorOptions flat = BaseOptions();
  flat.degree_power = 0.0;
  GeneratorOptions skewed = BaseOptions();
  skewed.degree_power = 0.8;
  Dataset a = std::move(GenerateDataset(flat)).value();
  Dataset b = std::move(GenerateDataset(skewed)).value();
  EXPECT_GT(b.graph.MaxDegree(), a.graph.MaxDegree());
}

TEST(GeneratorTest, ValidationCatchesBadOptions) {
  GeneratorOptions o = BaseOptions();
  o.homophily = 1.5;
  EXPECT_FALSE(GenerateDataset(o).ok());
  o = BaseOptions();
  o.num_classes = 1;
  EXPECT_FALSE(GenerateDataset(o).ok());
  o = BaseOptions();
  o.num_edges = o.num_nodes * o.num_nodes;  // over simple-graph max
  EXPECT_FALSE(GenerateDataset(o).ok());
  o = BaseOptions();
  o.feature_density = 0.0;
  EXPECT_FALSE(GenerateDataset(o).ok());
}

TEST(GeneratorTest, FeaturesCsrMatchesDense) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  auto csr = ds.FeaturesCsr();
  EXPECT_TRUE(csr->ToDense().AllClose(ds.features));
  // Cached.
  EXPECT_EQ(csr.get(), ds.FeaturesCsr().get());
}

// ---- Registry --------------------------------------------------------------

TEST(RegistryTest, ListsSevenDatasets) {
  const auto names = ListDatasets();
  EXPECT_EQ(names.size(), 7u);
  EXPECT_EQ(names.front(), "chameleon");
  EXPECT_EQ(names.back(), "pubmed");
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_FALSE(GetDatasetSpec("citeseer").ok());
  EXPECT_FALSE(MakeDataset("citeseer").ok());
}

TEST(RegistryTest, SpecMatchesTable2) {
  const DatasetSpec cham = *GetDatasetSpec("chameleon");
  EXPECT_EQ(cham.num_nodes, 2277);
  EXPECT_EQ(cham.num_edges, 36101);
  EXPECT_EQ(cham.num_features, 2325);
  EXPECT_EQ(cham.num_classes, 5);
  EXPECT_NEAR(cham.homophily, 0.23, 1e-9);

  const DatasetSpec pubmed = *GetDatasetSpec("pubmed");
  EXPECT_EQ(pubmed.num_nodes, 19717);
  EXPECT_EQ(pubmed.num_classes, 3);
  EXPECT_NEAR(pubmed.homophily, 0.80, 1e-9);
}

TEST(RegistryTest, SmallDatasetsRealiseSpec) {
  for (const char* name : {"cornell", "texas", "wisconsin"}) {
    const DatasetSpec spec = *GetDatasetSpec(name);
    Dataset ds = *MakeDataset(name, 2);
    EXPECT_EQ(ds.num_nodes(), spec.num_nodes) << name;
    EXPECT_EQ(ds.graph.num_edges(), spec.num_edges) << name;
    EXPECT_EQ(ds.num_features(), spec.num_features) << name;
    EXPECT_NEAR(ds.Homophily(), spec.homophily, 0.05) << name;
  }
}

TEST(RegistryTest, ScaledVariantShrinks) {
  Dataset full = *MakeDataset("cora", 1);
  Dataset half = *MakeDatasetScaled("cora", 2, 1);
  EXPECT_NEAR(static_cast<double>(half.num_nodes()),
              full.num_nodes() / 2.0, 2.0);
  EXPECT_LT(half.graph.num_edges(), full.graph.num_edges());
  // Homophily preserved under scaling.
  EXPECT_NEAR(half.Homophily(), full.Homophily(), 0.05);
}

TEST(RegistryTest, ShrinkValidation) {
  EXPECT_FALSE(MakeDatasetScaled("cora", 0).ok());
}

// ---- Splits ----------------------------------------------------------------

TEST(SplitsTest, PartitionsAreDisjointAndComplete) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  SplitOptions so;
  so.num_splits = 3;
  const auto splits = MakeSplits(ds.labels, ds.num_classes, so);
  ASSERT_EQ(splits.size(), 3u);
  for (const Split& s : splits) {
    std::set<int64_t> all;
    all.insert(s.train.begin(), s.train.end());
    all.insert(s.val.begin(), s.val.end());
    all.insert(s.test.begin(), s.test.end());
    EXPECT_EQ(static_cast<int64_t>(all.size()), ds.num_nodes());
    EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(),
              static_cast<size_t>(ds.num_nodes()));
  }
}

TEST(SplitsTest, FractionsApproximatelyHonoured) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  const auto splits = MakeSplits(ds.labels, ds.num_classes, {});
  const double n = static_cast<double>(ds.num_nodes());
  EXPECT_NEAR(splits[0].train.size() / n, 0.6, 0.05);
  EXPECT_NEAR(splits[0].val.size() / n, 0.2, 0.05);
  EXPECT_NEAR(splits[0].test.size() / n, 0.2, 0.05);
}

TEST(SplitsTest, EveryClassRepresentedInTrain) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  const auto splits = MakeSplits(ds.labels, ds.num_classes, {});
  for (const Split& s : splits) {
    std::set<int64_t> classes;
    for (int64_t i : s.train) classes.insert(ds.labels[static_cast<size_t>(i)]);
    EXPECT_EQ(static_cast<int64_t>(classes.size()), ds.num_classes);
  }
}

TEST(SplitsTest, SplitsDifferAcrossIndices) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  SplitOptions so;
  so.num_splits = 2;
  const auto splits = MakeSplits(ds.labels, ds.num_classes, so);
  EXPECT_NE(splits[0].train, splits[1].train);
}

TEST(SplitsTest, DeterministicForSeed) {
  Dataset ds = std::move(GenerateDataset(BaseOptions())).value();
  const auto a = MakeSplits(ds.labels, ds.num_classes, {});
  const auto b = MakeSplits(ds.labels, ds.num_classes, {});
  EXPECT_EQ(a[0].train, b[0].train);
  EXPECT_EQ(a[0].test, b[0].test);
}

TEST(SplitsTest, TinyClassesStillSplit) {
  // 3 members per class: train/val/test each get exactly one.
  std::vector<int64_t> labels = {0, 0, 0, 1, 1, 1};
  const auto splits = MakeSplits(labels, 2, {});
  EXPECT_EQ(splits[0].train.size(), 2u);
  EXPECT_EQ(splits[0].val.size(), 2u);
  EXPECT_EQ(splits[0].test.size(), 2u);
}

}  // namespace
}  // namespace data
}  // namespace graphrare

// Bit-for-bit reproducibility: every stochastic component is seeded, so
// identical configurations must produce identical results end to end.

#include <gtest/gtest.h>

#include "core/graphrare.h"

namespace graphrare {
namespace {

data::Dataset Make(uint64_t seed) {
  data::GeneratorOptions o;
  o.num_nodes = 90;
  o.num_edges = 220;
  o.num_features = 48;
  o.num_classes = 3;
  o.homophily = 0.25;
  o.feature_signal = 9.0;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

TEST(DeterminismTest, EntropyIndexIdenticalAcrossBuilds) {
  data::Dataset ds = Make(5);
  auto a = std::move(*entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
  auto b = std::move(*entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    const auto& sa = a.sequences(v);
    const auto& sb = b.sequences(v);
    ASSERT_EQ(sa.remote.size(), sb.remote.size());
    for (size_t i = 0; i < sa.remote.size(); ++i) {
      EXPECT_EQ(sa.remote[i].node, sb.remote[i].node);
      EXPECT_DOUBLE_EQ(sa.remote[i].entropy, sb.remote[i].entropy);
    }
  }
}

TEST(DeterminismTest, BaselineFitIdenticalAcrossRuns) {
  data::Dataset ds = Make(6);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  auto run_once = [&]() {
    nn::ModelOptions mo;
    mo.in_features = ds.num_features();
    mo.hidden = 16;
    mo.num_classes = ds.num_classes;
    mo.seed = 33;
    auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
    nn::ClassifierTrainer::Options to;
    to.seed = 33;
    nn::ClassifierTrainer trainer(model.get(),
                                  nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                  &ds.labels, to);
    trainer.Fit(ds.graph, splits[0].train, splits[0].val, 30, 10);
    return trainer.EvalLogits(ds.graph);
  };
  EXPECT_TRUE(run_once().AllClose(run_once(), 0.0f, 0.0f));
}

TEST(DeterminismTest, GraphRareRunIdenticalAcrossRuns) {
  data::Dataset ds = Make(7);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  auto run_once = [&]() {
    core::GraphRareOptions opts;
    opts.backbone = nn::BackboneKind::kGcn;
    opts.hidden = 16;
    opts.iterations = 6;
    opts.pretrain_epochs = 15;
    opts.finetune_epochs = 2;
    opts.seed = 99;
    core::GraphRareTrainer trainer(&ds, opts);
    return trainer.Run(splits[0]);
  };
  const core::GraphRareResult a = run_once();
  const core::GraphRareResult b = run_once();
  EXPECT_DOUBLE_EQ(a.test_accuracy, b.test_accuracy);
  EXPECT_DOUBLE_EQ(a.best_val_accuracy, b.best_val_accuracy);
  EXPECT_EQ(a.best_graph.edges(), b.best_graph.edges());
  ASSERT_EQ(a.reward_history.size(), b.reward_history.size());
  for (size_t i = 0; i < a.reward_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.reward_history[i], b.reward_history[i]);
  }
}

// Mini-batch path: sampling, shuffling, and OpenMP-parallel frontier
// expansion are all seeded per-stream, so two identical configurations
// must produce identical telemetry and weights regardless of thread count
// (the CI matrix covers GRAPHRARE_ENABLE_OPENMP=ON builds).
TEST(DeterminismTest, MiniBatchFitIdenticalAcrossRuns) {
  data::Dataset ds = Make(9);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  auto run_once = [&](core::MiniBatchFitResult* fit_out) {
    nn::ModelOptions mo;
    mo.in_features = ds.num_features();
    mo.hidden = 16;
    mo.num_classes = ds.num_classes;
    mo.seed = 21;
    auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
    nn::MiniBatchTrainer::Options to;
    to.seed = 21;
    nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                                 to);
    core::MiniBatchOptions mb;
    mb.sampler.fanouts = {4, 4};
    mb.sampler.seed = 13;
    mb.batch_size = 16;
    mb.max_epochs = 8;
    mb.patience = 8;
    *fit_out = core::FitMiniBatch(&trainer, ds.graph, splits[0].train,
                                  splits[0].val, mb, /*seed=*/21);
    return trainer.EvalLogits(ds.graph);
  };

  core::MiniBatchFitResult fit_a;
  core::MiniBatchFitResult fit_b;
  const tensor::Tensor logits_a = run_once(&fit_a);
  const tensor::Tensor logits_b = run_once(&fit_b);

  EXPECT_TRUE(logits_a.AllClose(logits_b, 0.0f, 0.0f));
  EXPECT_EQ(fit_a.epochs_run, fit_b.epochs_run);
  EXPECT_EQ(fit_a.batches_run, fit_b.batches_run);
  EXPECT_DOUBLE_EQ(fit_a.best_val_accuracy, fit_b.best_val_accuracy);
  ASSERT_EQ(fit_a.val_acc_history.size(), fit_b.val_acc_history.size());
  for (size_t i = 0; i < fit_a.val_acc_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(fit_a.val_acc_history[i], fit_b.val_acc_history[i]);
    EXPECT_DOUBLE_EQ(fit_a.train_acc_history[i], fit_b.train_acc_history[i]);
    EXPECT_DOUBLE_EQ(fit_a.train_loss_history[i],
                     fit_b.train_loss_history[i]);
  }
}

TEST(DeterminismTest, MiniBatchSamplerSeedChangesBlocks) {
  data::Dataset ds = Make(10);
  auto sample_nodes = [&](uint64_t seed) {
    data::SamplerOptions so;
    so.fanouts = {2, 2};
    so.seed = seed;
    data::NeighborSampler sampler(&ds.graph, so);
    std::vector<int64_t> seeds;
    for (int64_t v = 0; v < 30; v += 3) seeds.push_back(v);
    return sampler.SampleBlock(seeds).nodes;
  };
  EXPECT_EQ(sample_nodes(1), sample_nodes(1));
  EXPECT_NE(sample_nodes(1), sample_nodes(2));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  data::Dataset ds = Make(8);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  auto run_with_seed = [&](uint64_t seed) {
    core::GraphRareOptions opts;
    opts.backbone = nn::BackboneKind::kGcn;
    opts.hidden = 16;
    opts.iterations = 5;
    opts.pretrain_epochs = 10;
    opts.seed = seed;
    core::GraphRareTrainer trainer(&ds, opts);
    return trainer.Run(splits[0]);
  };
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(2);
  // Weights differ -> histories differ (graphs may coincide by chance).
  bool any_diff = a.test_accuracy != b.test_accuracy;
  for (size_t i = 0; !any_diff && i < a.train_acc_history.size(); ++i) {
    any_diff = a.train_acc_history[i] != b.train_acc_history[i];
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace graphrare

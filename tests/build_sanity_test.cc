// Copyright 2026 The GraphRARE Authors.
//
// Build/link smoke test (CTest label: smoke). Touches at least one symbol
// that is *defined in a .cc file* of every module library, so the test only
// links if all nine archives resolve together in the declared dependency
// order. Per-suite builds can hide a missing-symbol or link-order
// regression in a module they never call; this suite exists to catch it.

#include <gtest/gtest.h>

#include "common/status.h"
#include "core/experiment.h"
#include "core/observation.h"
#include "data/generator.h"
#include "entropy/feature_entropy.h"
#include "graph/graph.h"
#include "nn/models.h"
#include "rl/ppo.h"
#include "serve/engine.h"
#include "tensor/tensor.h"

namespace graphrare {
namespace {

TEST(BuildSanity, LinksEveryModuleLibrary) {
  // common (status.cc)
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");

  // tensor (tensor.cc)
  const tensor::Tensor product =
      tensor::MatMul(tensor::Tensor::Eye(3), tensor::Tensor::Ones(3, 2));
  EXPECT_EQ(product.rows(), 3);
  EXPECT_EQ(product.cols(), 2);

  // graph (graph.cc)
  const graph::Graph g = graph::Graph::FromEdgeListOrDie(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);

  // entropy (feature_entropy.cc)
  Rng rng(7);
  const tensor::Tensor features = tensor::Tensor::Rand(3, 8, &rng);
  const tensor::Tensor embedded =
      entropy::EmbedFeatures(features, entropy::FeatureEmbeddingOptions{});
  EXPECT_EQ(embedded.rows(), 3);

  // data (generator.cc)
  data::GeneratorOptions gen;
  gen.num_nodes = 24;
  gen.num_edges = 48;
  gen.num_features = 16;
  gen.num_classes = 2;
  const auto dataset = data::GenerateDataset(gen);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->graph.num_nodes(), 24);

  // nn (models.cc)
  EXPECT_STREQ(nn::BackboneName(nn::BackboneKind::kGcn), "gcn");

  // rl (ppo.cc)
  rl::PpoAgent agent(core::kObservationDim, rl::PpoOptions{});
  EXPECT_FALSE(agent.ReadyToUpdate());

  // serve (artifact.cc / engine.cc)
  EXPECT_EQ(serve::ModelArtifact{}.Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(serve::EngineOptions{}.Validate().ok());

  // core (experiment.cc)
  EXPECT_FALSE(core::BenchFullScale());
}

}  // namespace
}  // namespace graphrare

// Entropy module tests: JS divergence properties, structural entropy
// (Eqs. 5-8), feature entropy (Eq. 4), relative entropy index (Eq. 9) and
// sequence construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "data/generator.h"
#include "entropy/relative_entropy.h"

namespace graphrare {
namespace entropy {
namespace {

TEST(JsDivergenceTest, IdenticalDistributionsGiveZero) {
  std::vector<float> p = {0.5f, 0.3f, 0.2f};
  EXPECT_NEAR(JsDivergence(p, p), 0.0, 1e-9);
}

TEST(JsDivergenceTest, DisjointSupportGivesOne) {
  std::vector<float> p = {1.0f, 0.0f};
  std::vector<float> q = {0.0f, 1.0f};
  EXPECT_NEAR(JsDivergence(p, q), 1.0, 1e-9);
}

TEST(JsDivergenceTest, Symmetric) {
  std::vector<float> p = {0.7f, 0.2f, 0.1f};
  std::vector<float> q = {0.1f, 0.6f, 0.3f};
  EXPECT_NEAR(JsDivergence(p, q), JsDivergence(q, p), 1e-12);
}

TEST(JsDivergenceTest, BoundedInUnitInterval) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> p(6), q(6);
    float sp = 0, sq = 0;
    for (int i = 0; i < 6; ++i) {
      p[i] = static_cast<float>(rng.Uniform());
      q[i] = static_cast<float>(rng.Uniform());
      sp += p[i];
      sq += q[i];
    }
    for (int i = 0; i < 6; ++i) {
      p[i] /= sp;
      q[i] /= sq;
    }
    const double js = JsDivergence(p, q);
    EXPECT_GE(js, 0.0);
    EXPECT_LE(js, 1.0);
  }
}

TEST(JsDivergenceTest, DifferentLengthsZeroPadded) {
  std::vector<float> p = {0.5f, 0.5f};
  std::vector<float> q = {0.5f, 0.25f, 0.25f};
  const double js = JsDivergence(p, q);
  EXPECT_GT(js, 0.0);
  EXPECT_LT(js, 1.0);
}

// ---- Structural entropy -----------------------------------------------------

TEST(StructuralEntropyTest, IdenticalLocalStructureGivesOne) {
  // 4-cycle: every node has the same degree profile.
  graph::Graph g =
      graph::Graph::FromEdgeListOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  StructuralEntropyCalculator calc(g);
  EXPECT_NEAR(calc.Between(0, 2), 1.0, 1e-9);
  EXPECT_NEAR(calc.Between(1, 3), 1.0, 1e-9);
}

TEST(StructuralEntropyTest, HubVsLeafIsLow) {
  // Star: node 0 is the hub of 5 leaves; compare hub vs leaf profiles.
  graph::Graph g = graph::Graph::FromEdgeListOrDie(
      6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  StructuralEntropyCalculator calc(g);
  const double hub_leaf = calc.Between(0, 1);
  const double leaf_leaf = calc.Between(1, 2);
  EXPECT_GT(leaf_leaf, hub_leaf);
  EXPECT_NEAR(leaf_leaf, 1.0, 1e-9);
}

TEST(StructuralEntropyTest, Symmetric) {
  graph::Graph g = graph::Graph::FromEdgeListOrDie(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}});
  StructuralEntropyCalculator calc(g);
  for (int64_t v = 0; v < 5; ++v) {
    for (int64_t u = 0; u < 5; ++u) {
      EXPECT_NEAR(calc.Between(v, u), calc.Between(u, v), 1e-12);
    }
  }
}

TEST(StructuralEntropyTest, SequencesNormalised) {
  graph::Graph g = graph::Graph::FromEdgeListOrDie(4, {{0, 1}, {0, 2}, {2, 3}});
  StructuralEntropyCalculator calc(g);
  for (int64_t v = 0; v < 4; ++v) {
    const auto& seq = calc.Sequence(v);
    double sum = 0.0;
    for (float x : seq) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    // Descending.
    for (size_t i = 1; i < seq.size(); ++i) EXPECT_LE(seq[i], seq[i - 1]);
  }
}

TEST(StructuralEntropyTest, IsolatedNodeHandled) {
  graph::Graph g = graph::Graph::FromEdgeListOrDie(3, {{0, 1}});
  StructuralEntropyCalculator calc(g);
  const double h = calc.Between(2, 0);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, 1.0);
}

// ---- Feature entropy --------------------------------------------------------

TEST(FeatureEntropyTest, EmbeddingL2Normalised) {
  Rng rng(2);
  tensor::Tensor x = tensor::Tensor::Rand(10, 32, &rng);
  FeatureEmbeddingOptions opts;
  opts.projection_dim = 8;
  tensor::Tensor z = EmbedFeatures(x, opts);
  EXPECT_EQ(z.cols(), 8);
  for (int64_t r = 0; r < z.rows(); ++r) {
    EXPECT_NEAR(EmbeddingDot(z, r, r), 1.0, 1e-5);
  }
}

TEST(FeatureEntropyTest, IdentityWhenProjectionDisabled) {
  Rng rng(3);
  tensor::Tensor x = tensor::Tensor::Rand(5, 6, &rng);
  FeatureEmbeddingOptions opts;
  opts.projection_dim = 0;
  opts.l2_normalize = false;
  tensor::Tensor z = EmbedFeatures(x, opts);
  EXPECT_TRUE(z.AllClose(x));
}

TEST(FeatureEntropyTest, MoreSimilarPairsHaveHigherEntropy) {
  // Nodes 0 and 1 share features; 2 is orthogonal to both. With a realistic
  // (large) pair set every pair probability is << 1/e, where -P log P is
  // increasing, so the similar pair must rank above the dissimilar one
  // (the paper's Eq. 4 reading).
  Rng rng(99);
  tensor::Tensor x = tensor::Tensor::Rand(20, 4, &rng);
  // Overwrite the three probe nodes with controlled features.
  for (int64_t c = 0; c < 4; ++c) {
    x.at(0, c) = c < 2 ? 1.0f : 0.0f;
    x.at(1, c) = c < 2 ? 1.0f : 0.0f;
    x.at(2, c) = c < 2 ? 0.0f : 1.0f;
  }
  FeatureEmbeddingOptions opts;
  opts.projection_dim = 0;
  tensor::Tensor z = EmbedFeatures(x, opts);
  std::vector<NodePair> pairs = {{0, 1}, {0, 2}};
  for (int64_t v = 3; v < 20; ++v) pairs.push_back({v, (v + 5) % 20});
  const auto h = FeatureEntropyForPairs(z, pairs);
  EXPECT_GT(h[0], h[1]);  // similar pair ranks above dissimilar pair
}

TEST(FeatureEntropyTest, TinyPairSetsAreOutsideMonotoneRegime) {
  // Documented boundary: with only two pairs the larger probability can
  // exceed 1/e, where -P log P decreases — rankings are only meaningful
  // for candidate sets of realistic size (the index always builds those).
  tensor::Tensor x = tensor::Tensor::FromData(3, 4,
                                              {1, 1, 0, 0,   //
                                               1, 1, 0, 0,   //
                                               0, 0, 1, 1});
  FeatureEmbeddingOptions opts;
  opts.projection_dim = 0;
  tensor::Tensor z = EmbedFeatures(x, opts);
  const auto h = FeatureEntropyForPairs(z, {{0, 1}, {0, 2}});
  ASSERT_EQ(h.size(), 2u);
  EXPECT_LT(h[0], h[1]);  // inverted: P(0,1) = 0.73 > 1/e here
}

TEST(FeatureEntropyTest, EntropiesPositive) {
  Rng rng(4);
  tensor::Tensor x = tensor::Tensor::Rand(20, 16, &rng);
  FeatureEmbeddingOptions opts;
  opts.projection_dim = 0;
  tensor::Tensor z = EmbedFeatures(x, opts);
  std::vector<NodePair> pairs;
  for (int64_t v = 0; v < 20; ++v) {
    for (int64_t u = v + 1; u < 20; ++u) pairs.push_back({v, u});
  }
  const auto h = FeatureEntropyForPairs(z, pairs);
  for (double e : h) EXPECT_GT(e, 0.0);
}

TEST(FeatureEntropyTest, EmptyPairsGiveEmpty) {
  tensor::Tensor z = tensor::Tensor::Ones(3, 3);
  EXPECT_TRUE(FeatureEntropyForPairs(z, {}).empty());
}

// ---- Relative entropy index -------------------------------------------------

data::Dataset TestDataset(uint64_t seed = 31) {
  data::GeneratorOptions o;
  o.num_nodes = 100;
  o.num_edges = 250;
  o.num_features = 60;
  o.num_classes = 4;
  o.homophily = 0.2;
  o.partner_affinity = 0.9;
  o.feature_signal = 10.0;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

TEST(RelativeEntropyIndexTest, BuildsSequencesForEveryNode) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  EXPECT_EQ(index.num_nodes(), ds.num_nodes());
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    const NodeSequences& seq = index.sequences(v);
    EXPECT_EQ(static_cast<int64_t>(seq.neighbors.size()), ds.graph.Degree(v));
  }
}

TEST(RelativeEntropyIndexTest, RemoteSequencesDescending) {
  data::Dataset ds = TestDataset();
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, {});
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    const auto& remote = index.sequences(v).remote;
    for (size_t i = 1; i < remote.size(); ++i) {
      EXPECT_GE(remote[i - 1].entropy, remote[i].entropy);
    }
  }
}

TEST(RelativeEntropyIndexTest, NeighborSequencesAscending) {
  data::Dataset ds = TestDataset();
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, {});
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    const auto& nbrs = index.sequences(v).neighbors;
    for (size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LE(nbrs[i - 1].entropy, nbrs[i].entropy);
    }
  }
}

TEST(RelativeEntropyIndexTest, RemoteCandidatesAreNonAdjacent) {
  data::Dataset ds = TestDataset();
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, {});
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    for (const auto& s : index.sequences(v).remote) {
      EXPECT_FALSE(ds.graph.HasEdge(v, s.node));
      EXPECT_NE(s.node, v);
    }
  }
}

TEST(RelativeEntropyIndexTest, CandidateCapRespected) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  opts.max_two_hop_candidates = 5;
  opts.num_random_candidates = 3;
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    EXPECT_LE(index.sequences(v).remote.size(), 8u);
  }
}

TEST(RelativeEntropyIndexTest, LambdaZeroIgnoresStructure) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  opts.lambda = 0.0;
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  // All entropies must be within [0, 1] (rescaled feature entropy alone).
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    for (const auto& s : index.sequences(v).remote) {
      EXPECT_GE(s.entropy, 0.0);
      EXPECT_LE(s.entropy, 1.0);
    }
  }
}

TEST(RelativeEntropyIndexTest, EntropyBoundedByOnePlusLambda) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  opts.lambda = 2.0;
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    for (const auto& s : index.sequences(v).remote) {
      EXPECT_GE(s.entropy, 0.0);
      EXPECT_LE(s.entropy, 3.0 + 1e-9);
    }
  }
}

TEST(RelativeEntropyIndexTest, ShuffleKeepsMembership) {
  data::Dataset ds = TestDataset();
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, {});
  std::vector<int64_t> before;
  for (const auto& s : index.sequences(0).remote) before.push_back(s.node);
  Rng rng(5);
  index.ShuffleSequences(&rng);
  std::vector<int64_t> after;
  for (const auto& s : index.sequences(0).remote) after.push_back(s.node);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(RelativeEntropyIndexTest, ShuffleSequencesDeterministicForFixedRng) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  auto a = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  auto b = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  Rng rng_a(42), rng_b(42);
  a.ShuffleSequences(&rng_a);
  b.ShuffleSequences(&rng_b);
  for (int64_t v = 0; v < a.num_nodes(); ++v) {
    const NodeSequences& sa = a.sequences(v);
    const NodeSequences& sb = b.sequences(v);
    ASSERT_EQ(sa.remote.size(), sb.remote.size());
    for (size_t i = 0; i < sa.remote.size(); ++i) {
      EXPECT_EQ(sa.remote[i].node, sb.remote[i].node);
      EXPECT_EQ(sa.remote[i].entropy, sb.remote[i].entropy);
    }
    ASSERT_EQ(sa.neighbors.size(), sb.neighbors.size());
    for (size_t i = 0; i < sa.neighbors.size(); ++i) {
      EXPECT_EQ(sa.neighbors[i].node, sb.neighbors[i].node);
      EXPECT_EQ(sa.neighbors[i].entropy, sb.neighbors[i].entropy);
    }
  }
}

TEST(RelativeEntropyIndexTest, ShuffleSequencesIsPermutationOnly) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  auto index = *RelativeEntropyIndex::Build(ds.graph, ds.features, opts);
  const auto snapshot = [&] {
    std::vector<std::vector<std::pair<int64_t, double>>> all;
    for (int64_t v = 0; v < index.num_nodes(); ++v) {
      std::vector<std::pair<int64_t, double>> entries;
      for (const auto& s : index.sequences(v).remote) {
        entries.emplace_back(s.node, s.entropy);
      }
      for (const auto& s : index.sequences(v).neighbors) {
        entries.emplace_back(s.node, s.entropy);
      }
      std::sort(entries.begin(), entries.end());
      all.push_back(std::move(entries));
    }
    return all;
  };
  const auto before = snapshot();
  Rng rng(7);
  index.ShuffleSequences(&rng);
  // Shuffling permutes each sequence in place: the (node, entropy) multiset
  // per node is untouched — no entry gains, loses, or changes its score.
  EXPECT_EQ(snapshot(), before);
}

TEST(RelativeEntropyIndexTest, MaxRemoteLengthOnEmptyGraph) {
  const graph::Graph empty = graph::Graph::FromEdgeListOrDie(0, {});
  const tensor::Tensor features(0, 4);
  auto index = *RelativeEntropyIndex::Build(empty, features, {});
  EXPECT_EQ(index.num_nodes(), 0);
  EXPECT_EQ(index.MaxRemoteLength(), 0);
}

TEST(RelativeEntropyIndexTest, MaxRemoteLengthOnSingletonGraph) {
  const graph::Graph singleton = graph::Graph::FromEdgeListOrDie(1, {});
  const tensor::Tensor features(1, 4);
  auto index = *RelativeEntropyIndex::Build(singleton, features, {});
  EXPECT_EQ(index.num_nodes(), 1);
  // The only node has no 2-hop or remote candidates: remote stays empty.
  EXPECT_EQ(index.MaxRemoteLength(), 0);
  EXPECT_TRUE(index.sequences(0).remote.empty());
  EXPECT_TRUE(index.sequences(0).neighbors.empty());
}

TEST(RelativeEntropyIndexTest, ValidationErrors) {
  data::Dataset ds = TestDataset();
  EntropyOptions opts;
  opts.lambda = -1.0;
  EXPECT_FALSE(RelativeEntropyIndex::Build(ds.graph, ds.features, opts).ok());
  opts = EntropyOptions();
  opts.max_two_hop_candidates = 0;
  opts.num_random_candidates = 0;
  EXPECT_FALSE(RelativeEntropyIndex::Build(ds.graph, ds.features, opts).ok());
  // Feature row mismatch.
  tensor::Tensor bad(ds.num_nodes() + 1, 4);
  EXPECT_FALSE(RelativeEntropyIndex::Build(ds.graph, bad, {}).ok());
}

TEST(DenseEntropyMatrixTest, SymmetricWithEmptyDiagonal) {
  data::Dataset ds = TestDataset();
  tensor::Tensor m = DenseRelativeEntropyMatrix(ds.graph, ds.features, {});
  EXPECT_EQ(m.rows(), ds.num_nodes());
  for (int64_t v = 0; v < 20; ++v) {
    EXPECT_EQ(m.at(v, v), 0.0f);
    for (int64_t u = 0; u < 20; ++u) {
      EXPECT_FLOAT_EQ(m.at(v, u), m.at(u, v));
    }
  }
}

TEST(DenseEntropyMatrixTest, SameLabelPairsHaveHigherEntropy) {
  // The paper's Fig. 8 claim: same-label blocks are brighter. Use a
  // strongly separable feature model so it holds robustly.
  data::GeneratorOptions o;
  o.num_nodes = 80;
  o.num_edges = 200;
  o.num_features = 80;
  o.num_classes = 4;
  o.homophily = 0.25;
  o.feature_signal = 15.0;
  o.feature_density = 0.15;
  o.seed = 77;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  tensor::Tensor m = DenseRelativeEntropyMatrix(ds.graph, ds.features, {});
  double same = 0.0, cross = 0.0;
  int64_t n_same = 0, n_cross = 0;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    for (int64_t u = v + 1; u < ds.num_nodes(); ++u) {
      if (ds.labels[v] == ds.labels[u]) {
        same += m.at(v, u);
        ++n_same;
      } else {
        cross += m.at(v, u);
        ++n_cross;
      }
    }
  }
  EXPECT_GT(same / n_same, cross / n_cross);
}

}  // namespace
}  // namespace entropy
}  // namespace graphrare

// Tests for the extension components: dataset I/O, TopologyEnv, telemetry
// CSV, SGC/APPNP backbones, and the GraphRARE framework over the new
// backbones.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/io.h"
#include "core/graphrare.h"
#include "core/telemetry.h"
#include "core/topology_env.h"

namespace graphrare {
namespace {

data::Dataset Small(uint64_t seed = 51) {
  data::GeneratorOptions o;
  o.num_nodes = 80;
  o.num_edges = 200;
  o.num_features = 40;
  o.num_classes = 4;
  o.homophily = 0.2;
  o.feature_signal = 9.0;
  o.feature_density = 0.1;
  o.seed = seed;
  return std::move(data::GenerateDataset(o)).value();
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// ---- Dataset I/O -----------------------------------------------------------

TEST(DatasetIoTest, RoundTrip) {
  data::Dataset ds = Small();
  const std::string path = TempPath("ds_roundtrip.txt");
  ASSERT_TRUE(data::SaveDataset(ds, path).ok());
  auto loaded = data::LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, ds.name);
  EXPECT_EQ(loaded->num_classes, ds.num_classes);
  EXPECT_EQ(loaded->labels, ds.labels);
  EXPECT_EQ(loaded->graph.edges(), ds.graph.edges());
  EXPECT_TRUE(loaded->features.AllClose(ds.features, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsNonBinaryFeatures) {
  data::Dataset ds = Small();
  ds.features.at(0, 0) = 0.5f;
  EXPECT_FALSE(data::SaveDataset(ds, TempPath("bad.txt")).ok());
}

TEST(DatasetIoTest, MissingFile) {
  EXPECT_EQ(data::LoadDataset(TempPath("missing.txt")).status().code(),
            StatusCode::kNotFound);
}

TEST(DatasetIoTest, CorruptHeader) {
  const std::string path = TempPath("corrupt.txt");
  std::ofstream(path) << "something else\n";
  EXPECT_EQ(data::LoadDataset(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// The loader reports the 1-based line of the first malformed token, so a
// truncated or hand-edited file points straight at the problem.
TEST(DatasetIoTest, TruncatedLabelsReportsLineNumber) {
  const std::string path = TempPath("ds_short_labels.txt");
  std::ofstream(path) << "# graphrare-dataset v1\n"
                      << "name tiny\n"
                      << "nodes 4 edges 1 features 2 classes 2\n"
                      << "labels\n"
                      << "0 1 0\n";  // promises 4 labels, line 5 has 3
  const Status s = data::LoadDataset(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 5"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoTest, OutOfRangeLabelReportsLineNumber) {
  const std::string path = TempPath("ds_bad_label.txt");
  std::ofstream(path) << "# graphrare-dataset v1\n"
                      << "name tiny\n"
                      << "nodes 2 edges 0 features 2 classes 2\n"
                      << "labels\n"
                      << "0 9\n";  // 9 >= num_classes
  const Status s = data::LoadDataset(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 5"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TruncatedEdgeSectionReportsLastLine) {
  const std::string path = TempPath("ds_short_edges.txt");
  std::ofstream(path) << "# graphrare-dataset v1\n"
                      << "name tiny\n"
                      << "nodes 3 edges 2 features 2 classes 2\n"
                      << "labels\n"
                      << "0 1 0\n"
                      << "edges\n"
                      << "0 1\n";  // promises 2 edges, file ends
  const Status s = data::LoadDataset(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 7"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("found 1"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MalformedFeatureEntryReportsLineNumber) {
  const std::string path = TempPath("ds_bad_feature.txt");
  std::ofstream(path) << "# graphrare-dataset v1\n"
                      << "name tiny\n"
                      << "nodes 2 edges 1 features 2 classes 2\n"
                      << "labels\n"
                      << "0 1\n"
                      << "edges\n"
                      << "0 1\n"
                      << "features\n"
                      << "0 7\n"  // dim 7 >= 2, line 9
                      << "end\n";
  const Status s = data::LoadDataset(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 9"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingEndMarkerRejected) {
  const std::string path = TempPath("ds_no_end.txt");
  std::ofstream(path) << "# graphrare-dataset v1\n"
                      << "name tiny\n"
                      << "nodes 2 edges 1 features 2 classes 2\n"
                      << "labels\n"
                      << "0 1\n"
                      << "edges\n"
                      << "0 1\n"
                      << "features\n"
                      << "0 1\n";  // no "end"
  const Status s = data::LoadDataset(path).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("end"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST(DatasetIoTest, HomophilyPreservedThroughRoundTrip) {
  data::Dataset ds = Small(52);
  const std::string path = TempPath("ds_h.txt");
  ASSERT_TRUE(data::SaveDataset(ds, path).ok());
  auto loaded = data::LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Homophily(), ds.Homophily());
  std::remove(path.c_str());
}

// ---- TopologyEnv -----------------------------------------------------------

TEST(TopologyEnvTest, ResetReturnsObservation) {
  data::Dataset ds = Small(53);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));

  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = 3;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});

  core::TopologyEnv env(&ds, &splits[0], &trainer, &index, {});
  tensor::Tensor obs = env.Reset();
  EXPECT_EQ(obs.rows(), ds.num_nodes());
  EXPECT_EQ(obs.cols(), core::kObservationDim);
  EXPECT_EQ(env.obs_dim(), core::kObservationDim);
  EXPECT_EQ(env.num_components(), ds.num_nodes());
}

TEST(TopologyEnvTest, AgentLoopRunsAndRewiresGraph) {
  data::Dataset ds = Small(54);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));

  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = 4;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});

  core::TopologyEnvOptions eopts;
  eopts.gnn_epochs_per_step = 1;
  core::TopologyEnv env(&ds, &splits[0], &trainer, &index, eopts);

  rl::PpoOptions popts;
  popts.steps_per_update = 4;
  rl::PpoAgent agent(env.obs_dim(), popts);
  const auto rewards = rl::RunAgentOnEnv(&agent, &env, 10);
  EXPECT_EQ(rewards.size(), 10u);
  EXPECT_GE(env.ValidationAccuracy(), 0.0);
  // After 10 steps of random-ish +-1 actions some edits are very likely.
  EXPECT_EQ(env.current_graph().num_nodes(), ds.num_nodes());
}

TEST(TopologyEnvDeathTest, StepBeforeResetAborts) {
  data::Dataset ds = Small(55);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 8;
  mo.num_classes = ds.num_classes;
  mo.seed = 5;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});
  core::TopologyEnv env(&ds, &splits[0], &trainer, &index, {});
  rl::ActionSample a;
  a.delta_k.assign(static_cast<size_t>(ds.num_nodes()), 0);
  a.delta_d.assign(static_cast<size_t>(ds.num_nodes()), 0);
  tensor::Tensor obs;
  EXPECT_DEATH(env.Step(a, &obs), "Reset");
}

// ---- Telemetry --------------------------------------------------------------

TEST(TelemetryTest, CsvContainsAllIterations) {
  core::GraphRareResult r;
  r.train_acc_history = {0.5, 0.6, 0.7};
  r.val_acc_history = {0.4, 0.5, 0.55};
  r.homophily_history = {0.2, 0.3, 0.35};
  r.reward_history = {0.0, 0.1, -0.05};
  const std::string csv = core::TelemetryCsvString(r);
  EXPECT_NE(csv.find("iteration,train_accuracy"), std::string::npos);
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("2,0.7,0.55,0.35,-0.05"), std::string::npos);
}

TEST(TelemetryTest, WriteAndReadBack) {
  core::GraphRareResult r;
  r.train_acc_history = {1.0};
  r.val_acc_history = {0.9};
  r.homophily_history = {0.5};
  r.reward_history = {0.25};
  const std::string path = TempPath("telemetry.csv");
  ASSERT_TRUE(core::WriteTelemetryCsv(r, path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(row, "0,1,0.9,0.5,0.25");
  std::remove(path.c_str());
}

// ---- New backbones ------------------------------------------------------------

TEST(NewBackboneTest, SgcAndAppnpProduceLogits) {
  data::Dataset ds = Small(56);
  for (nn::BackboneKind kind : {nn::BackboneKind::kSgc,
                                nn::BackboneKind::kAppnp}) {
    nn::ModelOptions mo;
    mo.in_features = ds.num_features();
    mo.hidden = 16;
    mo.num_classes = ds.num_classes;
    mo.seed = 6;
    auto model = nn::MakeModel(kind, mo);
    EXPECT_EQ(model->kind(), kind);
    nn::ModelInputs in;
    in.graph = &ds.graph;
    in.features = nn::LayerInput::Sparse(ds.FeaturesCsr());
    tensor::Tensor logits = model->Logits(in, false, nullptr).value();
    EXPECT_EQ(logits.rows(), ds.num_nodes());
    EXPECT_EQ(logits.cols(), ds.num_classes);
    EXPECT_FALSE(logits.HasNonFinite());
  }
}

TEST(NewBackboneTest, NamesRoundTrip) {
  EXPECT_EQ(*nn::BackboneFromName("sgc"), nn::BackboneKind::kSgc);
  EXPECT_EQ(*nn::BackboneFromName("appnp"), nn::BackboneKind::kAppnp);
  EXPECT_STREQ(nn::BackboneName(nn::BackboneKind::kSgc), "sgc");
  EXPECT_STREQ(nn::BackboneName(nn::BackboneKind::kAppnp), "appnp");
}

TEST(NewBackboneTest, SgcLearnsOnHomophilicGraph) {
  data::GeneratorOptions o;
  o.num_nodes = 120;
  o.num_edges = 360;
  o.num_features = 48;
  o.num_classes = 3;
  o.homophily = 0.85;
  o.feature_signal = 6.0;
  o.feature_density = 0.1;
  o.seed = 57;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSgc, mo);
  nn::ClassifierTrainer::Options to;
  to.adam.lr = 0.05f;
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, to);
  trainer.Fit(ds.graph, splits[0].train, splits[0].val, 60, 20);
  EXPECT_GT(trainer.Evaluate(ds.graph, splits[0].test).accuracy, 0.5);
}

TEST(NewBackboneTest, AppnpValidationCatchesBadAlpha) {
  nn::ModelOptions mo;
  mo.in_features = 4;
  mo.num_classes = 2;
  mo.appnp_alpha = 0.0f;
  EXPECT_FALSE(mo.Validate().ok());
  mo.appnp_alpha = 0.1f;
  mo.appnp_iterations = 0;
  EXPECT_FALSE(mo.Validate().ok());
}

TEST(NewBackboneTest, GraphRareWrapsSgc) {
  data::Dataset ds = Small(58);
  data::SplitOptions so;
  so.num_splits = 1;
  auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  core::GraphRareOptions opts;
  opts.backbone = nn::BackboneKind::kSgc;
  opts.hidden = 16;
  opts.iterations = 4;
  opts.pretrain_epochs = 15;
  opts.seed = 21;
  core::GraphRareTrainer trainer(&ds, opts);
  const core::GraphRareResult r = trainer.Run(splits[0]);
  EXPECT_GT(r.test_accuracy, 0.2);
}

}  // namespace
}  // namespace graphrare

// Property-based tests (parameterized sweeps) over the library's core
// invariants: graph canonicalisation, entropy bounds and symmetry, topology
// optimization conservation laws, generator statistics, autograd linearity.

#include <gtest/gtest.h>

#include "core/graphrare.h"
#include "tensor/grad_check.h"

namespace graphrare {
namespace {

// ===== Generator invariants over a (homophily x size) grid ==================

struct GenCase {
  int64_t nodes;
  int64_t edges;
  double homophily;
  uint64_t seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, PlantedStatisticsHold) {
  const GenCase& c = GetParam();
  data::GeneratorOptions o;
  o.num_nodes = c.nodes;
  o.num_edges = c.edges;
  o.num_features = 48;
  o.num_classes = 4;
  o.homophily = c.homophily;
  o.seed = c.seed;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();

  EXPECT_EQ(ds.num_nodes(), c.nodes);
  EXPECT_EQ(ds.graph.num_edges(), c.edges);
  EXPECT_NEAR(ds.Homophily(), c.homophily, 0.035);
  // Simple graph: no self loops, no duplicate edges (FromEdgeList enforces,
  // but verify via the CSR too).
  auto adj = ds.graph.Adjacency();
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    EXPECT_EQ(adj->At(v, v), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    HomophilyGrid, GeneratorPropertyTest,
    ::testing::Values(GenCase{150, 400, 0.05, 1}, GenCase{150, 400, 0.2, 2},
                      GenCase{150, 400, 0.5, 3}, GenCase{150, 400, 0.9, 4},
                      GenCase{400, 1200, 0.1, 5}, GenCase{400, 1200, 0.8, 6},
                      GenCase{80, 150, 0.3, 7}, GenCase{600, 3000, 0.22, 8}));

// ===== Entropy invariants across graph families =============================

class EntropyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EntropyPropertyTest, StructuralEntropySymmetricAndBounded) {
  Rng rng(GetParam());
  // Random graph.
  const int64_t n = 40;
  std::vector<graph::Edge> edges;
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t u = v + 1; u < n; ++u) {
      if (rng.Bernoulli(0.08)) edges.emplace_back(v, u);
    }
  }
  graph::Graph g = graph::Graph::FromEdgeListOrDie(n, edges);
  entropy::StructuralEntropyCalculator calc(g);
  for (int64_t v = 0; v < n; v += 3) {
    for (int64_t u = 0; u < n; u += 5) {
      const double h = calc.Between(v, u);
      EXPECT_GE(h, 0.0);
      EXPECT_LE(h, 1.0);
      EXPECT_NEAR(h, calc.Between(u, v), 1e-12);
    }
    EXPECT_NEAR(calc.Between(v, v), 1.0, 1e-9);
  }
}

TEST_P(EntropyPropertyTest, FeatureEntropyRankingMatchesSimilarity) {
  Rng rng(GetParam() * 13 + 1);
  tensor::Tensor x = tensor::Tensor::Rand(30, 24, &rng);
  entropy::FeatureEmbeddingOptions opts;
  opts.projection_dim = 0;
  tensor::Tensor z = entropy::EmbedFeatures(x, opts);
  std::vector<entropy::NodePair> pairs;
  for (int64_t v = 0; v < 30; ++v) {
    for (int64_t u = v + 1; u < 30; ++u) pairs.push_back({v, u});
  }
  const auto h = entropy::FeatureEntropyForPairs(z, pairs);
  // -P log P must preserve the similarity (dot product) order: whenever
  // dot(a) < dot(b), entropy(a) <= entropy(b).
  for (size_t i = 1; i < pairs.size(); i += 17) {
    const double da =
        entropy::EmbeddingDot(z, pairs[i - 1].first, pairs[i - 1].second);
    const double db = entropy::EmbeddingDot(z, pairs[i].first, pairs[i].second);
    if (da < db) {
      EXPECT_LE(h[i - 1], h[i] + 1e-12);
    } else if (db < da) {
      EXPECT_LE(h[i], h[i - 1] + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ===== Topology optimization conservation laws ==============================

struct TopoCase {
  int k;
  int d;
  uint64_t seed;
};

class TopologyPropertyTest : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TopologyPropertyTest, EdgeCountBoundsRespected) {
  const TopoCase& c = GetParam();
  data::GeneratorOptions o;
  o.num_nodes = 80;
  o.num_edges = 200;
  o.num_features = 32;
  o.num_classes = 4;
  o.homophily = 0.25;
  o.seed = c.seed;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  auto index =
      std::move(*entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));

  core::TopologyState state(ds.num_nodes(), 10, 10);
  state.SetUniform(c.k, c.d);
  graph::Graph g = core::BuildOptimizedGraph(ds.graph, state, index);

  // Additions bounded by sum(k); removals bounded by sum(d).
  EXPECT_LE(g.num_edges(), ds.graph.num_edges() + ds.num_nodes() * c.k);
  EXPECT_GE(g.num_edges(), ds.graph.num_edges() - ds.num_nodes() * c.d);
  // Rebuild is deterministic.
  graph::Graph g2 = core::BuildOptimizedGraph(ds.graph, state, index);
  EXPECT_EQ(g.edges(), g2.edges());
  // All added edges come from remote sequences -> never previously present
  // and never self loops (Graph invariants re-checked by construction).
  EXPECT_EQ(g.num_nodes(), ds.num_nodes());
}

TEST_P(TopologyPropertyTest, AddOnlyMonotoneRemoveOnlyAntitone) {
  const TopoCase& c = GetParam();
  data::GeneratorOptions o;
  o.num_nodes = 60;
  o.num_edges = 150;
  o.num_features = 32;
  o.num_classes = 3;
  o.homophily = 0.3;
  o.seed = c.seed + 100;
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  auto index =
      std::move(*entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));

  core::TopologyState state(ds.num_nodes(), 10, 10);
  state.SetUniform(c.k, c.d);

  core::TopologyOptimizerOptions add_only;
  add_only.enable_remove = false;
  EXPECT_GE(core::BuildOptimizedGraph(ds.graph, state, index, add_only)
                .num_edges(),
            ds.graph.num_edges());

  core::TopologyOptimizerOptions remove_only;
  remove_only.enable_add = false;
  EXPECT_LE(core::BuildOptimizedGraph(ds.graph, state, index, remove_only)
                .num_edges(),
            ds.graph.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    KdGrid, TopologyPropertyTest,
    ::testing::Values(TopoCase{0, 0, 1}, TopoCase{1, 0, 2}, TopoCase{0, 1, 3},
                      TopoCase{2, 2, 4}, TopoCase{5, 1, 5}, TopoCase{1, 5, 6},
                      TopoCase{10, 10, 7}));

// ===== Homophily-raising property of entropy-guided addition ================

class HomophilyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HomophilyPropertyTest, EntropyGuidedAdditionsRaiseHomophily) {
  // On separable-feature graphs, adding top-entropy remote edges must raise
  // edge homophily relative to the original graph (the mechanism behind
  // Fig. 7 of the paper).
  data::GeneratorOptions o;
  o.num_nodes = 100;
  o.num_edges = 250;
  o.num_features = 64;
  o.num_classes = 4;
  o.homophily = 0.2;
  o.feature_signal = 12.0;
  o.feature_density = 0.12;
  o.seed = GetParam();
  data::Dataset ds = std::move(data::GenerateDataset(o)).value();
  auto index =
      std::move(*entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));

  core::TopologyState state(ds.num_nodes(), 3, 0);
  state.SetUniform(3, 0);
  graph::Graph g = core::BuildOptimizedGraph(ds.graph, state, index);
  EXPECT_GT(g.EdgeHomophily(ds.labels), ds.Homophily() + 0.05)
      << "entropy-guided additions failed to raise homophily";
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomophilyPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ===== Autograd linearity / composition properties ==========================

class AutogradPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradPropertyTest, GradientOfSumIsSumOfGradients) {
  Rng rng(GetParam());
  tensor::Tensor x0 = tensor::Tensor::Randn(4, 3, &rng);

  auto grad_of = [&](float c1, float c2) {
    tensor::Variable x(x0, true);
    tensor::ops::Add(tensor::ops::Scale(tensor::ops::SumAll(tensor::ops::Square(x)), c1),
                     tensor::ops::Scale(tensor::ops::SumAll(tensor::ops::Tanh(x)), c2))
        .Backward();
    return x.grad();
  };

  tensor::Tensor g_both = grad_of(0.7f, 1.3f);
  tensor::Tensor g_a = grad_of(0.7f, 0.0f);
  tensor::Tensor g_b = grad_of(0.0f, 1.3f);
  g_a.AddInPlace(g_b);
  EXPECT_TRUE(g_both.AllClose(g_a, 1e-4f, 1e-3f));
}

TEST_P(AutogradPropertyTest, SoftmaxRowsSumToOne) {
  Rng rng(GetParam() * 7 + 5);
  tensor::Variable x(tensor::Tensor::Randn(6, 9, &rng), false);
  tensor::Tensor p = tensor::ops::SoftmaxRows(x).value();
  for (int64_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < p.cols(); ++c) sum += p.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_P(AutogradPropertyTest, LogSoftmaxConsistentWithSoftmax) {
  Rng rng(GetParam() * 31 + 3);
  tensor::Variable x(tensor::Tensor::Randn(5, 7, &rng), false);
  tensor::Tensor p = tensor::ops::SoftmaxRows(x).value();
  tensor::Tensor lp = tensor::ops::LogSoftmaxRows(x).value();
  for (int64_t i = 0; i < p.numel(); ++i) {
    EXPECT_NEAR(std::log(p[i]), lp[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ===== GCN permutation equivariance ==========================================

TEST(GnnPropertyTest, GcnPermutationEquivariant) {
  // Relabelling nodes and permuting features permutes the logits.
  Rng rng(9);
  const int64_t n = 8;
  graph::Graph g = graph::Graph::FromEdgeListOrDie(
      n, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0},
          {0, 4}});
  tensor::Tensor x = tensor::Tensor::Rand(n, 6, &rng);

  // Permutation: reverse order.
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = n - 1 - i;

  std::vector<graph::Edge> permuted_edges;
  for (const auto& [u, v] : g.edges()) {
    permuted_edges.emplace_back(perm[static_cast<size_t>(u)],
                                perm[static_cast<size_t>(v)]);
  }
  graph::Graph pg = graph::Graph::FromEdgeListOrDie(n, permuted_edges);
  tensor::Tensor px(n, 6);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < 6; ++c) {
      px.at(perm[static_cast<size_t>(i)], c) = x.at(i, c);
    }
  }

  nn::ModelOptions mo;
  mo.in_features = 6;
  mo.hidden = 12;
  mo.num_classes = 3;
  mo.dropout = 0.0f;
  mo.seed = 17;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);

  nn::ModelInputs in1;
  in1.graph = &g;
  in1.features = nn::LayerInput::Dense(tensor::Variable(x, false));
  tensor::Tensor y1 = model->Logits(in1, false, nullptr).value();

  nn::ModelInputs in2;
  in2.graph = &pg;
  in2.features = nn::LayerInput::Dense(tensor::Variable(px, false));
  tensor::Tensor y2 = model->Logits(in2, false, nullptr).value();

  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(y1.at(i, c), y2.at(perm[static_cast<size_t>(i)], c), 1e-4);
    }
  }
}

}  // namespace
}  // namespace graphrare

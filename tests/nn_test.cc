// nn module tests: module registry, linear, GNN layers, models, optimizers,
// metrics, trainer.

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "nn/models.h"
#include "nn/optim.h"
#include "nn/trainer.h"
#include "tensor/grad_check.h"
#include "tensor/ops.h"

namespace graphrare {
namespace nn {
namespace {

namespace ops = tensor::ops;
using tensor::Tensor;
using tensor::Variable;

graph::Graph TestGraph() {
  return graph::Graph::FromEdgeListOrDie(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
}

TEST(ModuleTest, ParameterRegistryCollectsChildren) {
  Rng rng(1);
  Linear outer(4, 3, &rng);
  EXPECT_EQ(outer.Parameters().size(), 2u);  // W + b
  EXPECT_EQ(outer.NumParameters(), 4 * 3 + 3);
  const auto named = outer.NamedParameters();
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(2);
  Linear lin(3, 2, &rng);
  Variable x(Tensor::Ones(4, 3), false);
  ops::SumAll(lin.Forward(x)).Backward();
  EXPECT_TRUE(lin.Parameters()[0].has_grad());
  EXPECT_GT(lin.Parameters()[0].grad().MaxAbs(), 0.0f);
  lin.ZeroGrad();
  EXPECT_EQ(lin.Parameters()[0].grad().MaxAbs(), 0.0f);
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  Linear lin(2, 2, &rng);
  Variable x(Tensor::FromData(1, 2, {1.0f, 2.0f}), false);
  const Tensor& w = lin.weight().value();
  const Tensor& b = lin.bias().value();
  Tensor y = lin.Forward(x).value();
  EXPECT_NEAR(y.at(0, 0), w.at(0, 0) + 2 * w.at(1, 0) + b.at(0, 0), 1e-5);
  EXPECT_NEAR(y.at(0, 1), w.at(0, 1) + 2 * w.at(1, 1) + b.at(0, 1), 1e-5);
}

TEST(LinearTest, SparseForwardMatchesDense) {
  Rng rng(4);
  Linear lin(5, 3, &rng);
  Tensor x = Tensor::Zeros(4, 5);
  x.at(0, 1) = 1.0f;
  x.at(2, 3) = 1.0f;
  x.at(3, 0) = 1.0f;
  std::vector<tensor::CooEntry> entries = {
      {0, 1, 1.0f}, {2, 3, 1.0f}, {3, 0, 1.0f}};
  auto csr = std::make_shared<tensor::CsrMatrix>(
      tensor::CsrMatrix::FromCoo(4, 5, entries));
  Variable dense_in(x, false);
  EXPECT_TRUE(
      lin.ForwardSparse(csr).value().AllClose(lin.Forward(dense_in).value()));
}

TEST(LinearTest, SparseForwardGradMatchesDense) {
  Rng rng(5);
  Linear lin_a(3, 2, &rng);
  Rng rng2(5);
  Linear lin_b(3, 2, &rng2);
  Tensor x = Tensor::FromData(2, 3, {1, 0, 2, 0, 3, 0});
  auto csr = std::make_shared<tensor::CsrMatrix>(tensor::CsrMatrix::FromCoo(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}}));
  ops::SumAll(ops::Square(lin_a.Forward(Variable(x, false)))).Backward();
  ops::SumAll(ops::Square(lin_b.ForwardSparse(csr))).Backward();
  EXPECT_TRUE(lin_a.weight().grad().AllClose(lin_b.weight().grad()));
  EXPECT_TRUE(lin_a.bias().grad().AllClose(lin_b.bias().grad()));
}

// ---- GNN layers -------------------------------------------------------------

TEST(GcnConvTest, UniformFeaturesStayUniform) {
  // On a regular graph with identical features, GCN output is identical
  // across nodes (eigenvector property of the normalised operator).
  graph::Graph ring =
      graph::Graph::FromEdgeListOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  Rng rng(6);
  GCNConv conv(3, 2, &rng);
  Variable x(Tensor::Ones(4, 3), false);
  Tensor y = conv.Forward(ring, LayerInput::Dense(x)).value();
  for (int64_t v = 1; v < 4; ++v) {
    for (int64_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(y.at(v, c), y.at(0, c), 1e-5);
    }
  }
}

TEST(GcnConvTest, GradFlowsToWeights) {
  graph::Graph g = TestGraph();
  Rng rng(7);
  GCNConv conv(4, 3, &rng);
  Rng xr(8);
  Variable x(Tensor::Randn(6, 4, &xr), false);
  ops::SumAll(ops::Square(conv.Forward(g, LayerInput::Dense(x)))).Backward();
  for (const auto& p : conv.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(SageConvTest, SelfAndNeighborSeparated) {
  // A node with no neighbours only receives its self transform.
  graph::Graph g = graph::Graph::FromEdgeListOrDie(3, {{0, 1}});
  Rng rng(9);
  SAGEConv conv(2, 2, &rng);
  Rng xr(10);
  Tensor x = Tensor::Randn(3, 2, &xr);
  Tensor y = conv.Forward(g, LayerInput::Dense(Variable(x, false))).value();
  // Manual: node 2 isolated -> y = x W_self + b.
  Variable x2(Tensor::FromData(1, 2, {x.at(2, 0), x.at(2, 1)}), false);
  // Recompute through the same layer's self path by zeroing neighbours:
  // isolated row of row-normalised adjacency is zero, so this holds by
  // construction; verify aggregation contributed nothing.
  graph::Graph g_iso = graph::Graph::FromEdgeListOrDie(3, {});
  Tensor y_iso =
      conv.Forward(g_iso, LayerInput::Dense(Variable(x, false))).value();
  EXPECT_NEAR(y.at(2, 0), y_iso.at(2, 0), 1e-5);
  EXPECT_NEAR(y.at(2, 1), y_iso.at(2, 1), 1e-5);
}

TEST(GatConvTest, OutputShapeMultiHead) {
  graph::Graph g = TestGraph();
  Rng rng(11);
  GATConv conv(4, 3, /*num_heads=*/2, &rng);
  Rng xr(12);
  Variable x(Tensor::Randn(6, 4, &xr), false);
  Tensor y = conv.Forward(g, LayerInput::Dense(x), false, nullptr).value();
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 6);  // 2 heads x 3
}

TEST(GatConvTest, AttentionIsConvexCombination) {
  // With one head and identical transformed features, each output row must
  // equal that shared feature row (attention weights sum to one).
  graph::Graph g = TestGraph();
  Rng rng(13);
  GATConv conv(3, 4, 1, &rng);
  Variable x(Tensor::Ones(6, 3), false);
  Tensor y = conv.Forward(g, LayerInput::Dense(x), false, nullptr).value();
  for (int64_t v = 1; v < 6; ++v) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(y.at(v, c), y.at(0, c), 1e-4);
    }
  }
}

TEST(GatConvTest, GradFlowsThroughAttention) {
  graph::Graph g = TestGraph();
  Rng rng(14);
  GATConv conv(3, 2, 2, &rng);
  Rng xr(15);
  Variable x(Tensor::Randn(6, 3, &xr), false);
  ops::SumAll(
      ops::Square(conv.Forward(g, LayerInput::Dense(x), false, nullptr)))
      .Backward();
  for (const auto& p : conv.Parameters()) {
    EXPECT_TRUE(p.has_grad());
    EXPECT_GT(p.grad().MaxAbs(), 0.0f);
  }
}

TEST(MixHopConvTest, OutputWidthIsThreePowers) {
  graph::Graph g = TestGraph();
  Rng rng(16);
  MixHopConv conv(4, 5, &rng);
  EXPECT_EQ(conv.out_features(), 15);
  Rng xr(17);
  Variable x(Tensor::Randn(6, 4, &xr), false);
  EXPECT_EQ(conv.Forward(g, LayerInput::Dense(x)).value().cols(), 15);
}

TEST(H2GcnAggregateTest, WidthDoubles) {
  graph::Graph g = TestGraph();
  Rng xr(18);
  Variable h(Tensor::Randn(6, 4, &xr), false);
  Variable out = H2GCNAggregate(g, h);
  EXPECT_EQ(out.value().cols(), 8);
}

// ---- Models ------------------------------------------------------------------

ModelOptions SmallModelOptions() {
  ModelOptions mo;
  mo.in_features = 8;
  mo.hidden = 16;
  mo.num_classes = 3;
  mo.seed = 21;
  return mo;
}

TEST(ModelsTest, AllBackbonesProduceLogits) {
  graph::Graph g = TestGraph();
  Rng xr(19);
  Tensor x = Tensor::Rand(6, 8, &xr);
  for (BackboneKind kind :
       {BackboneKind::kMlp, BackboneKind::kGcn, BackboneKind::kSage,
        BackboneKind::kGat, BackboneKind::kMixHop, BackboneKind::kH2Gcn}) {
    auto model = MakeModel(kind, SmallModelOptions());
    EXPECT_EQ(model->kind(), kind);
    ModelInputs in;
    in.graph = &g;
    in.features = LayerInput::Dense(Variable(x, false));
    Rng dropout_rng(20);
    Tensor logits = model->Logits(in, true, &dropout_rng).value();
    EXPECT_EQ(logits.rows(), 6);
    EXPECT_EQ(logits.cols(), 3);
    EXPECT_FALSE(logits.HasNonFinite());
  }
}

TEST(ModelsTest, BackboneNamesRoundTrip) {
  for (BackboneKind kind :
       {BackboneKind::kMlp, BackboneKind::kGcn, BackboneKind::kSage,
        BackboneKind::kGat, BackboneKind::kMixHop, BackboneKind::kH2Gcn}) {
    EXPECT_EQ(*BackboneFromName(BackboneName(kind)), kind);
  }
  EXPECT_FALSE(BackboneFromName("resnet").ok());
  EXPECT_EQ(*BackboneFromName("graphsage"), BackboneKind::kSage);
}

TEST(ModelsTest, OptionsValidation) {
  ModelOptions mo = SmallModelOptions();
  mo.num_classes = 1;
  EXPECT_FALSE(mo.Validate().ok());
  mo = SmallModelOptions();
  mo.dropout = 1.0f;
  EXPECT_FALSE(mo.Validate().ok());
  mo = SmallModelOptions();
  mo.in_features = 0;
  EXPECT_FALSE(mo.Validate().ok());
}

TEST(ModelsTest, DeterministicInitForSeed) {
  auto a = MakeModel(BackboneKind::kGcn, SmallModelOptions());
  auto b = MakeModel(BackboneKind::kGcn, SmallModelOptions());
  auto pa = a->Parameters();
  auto pb = b->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value().AllClose(pb[i].value()));
  }
}

// ---- Optimizers ----------------------------------------------------------------

TEST(AdamTest, ReducesQuadraticLoss) {
  Variable w(Tensor::Full(1, 1, 5.0f), true);
  Adam::Options opts;
  opts.lr = 0.2f;
  opts.weight_decay = 0.0f;
  Adam adam({w}, opts);
  for (int i = 0; i < 100; ++i) {
    adam.ZeroGrad();
    ops::Square(w).Backward();
    adam.Step();
  }
  EXPECT_NEAR(w.value().scalar(), 0.0f, 0.05f);
  EXPECT_EQ(adam.step_count(), 100);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Variable a(Tensor::Scalar(1.0f), true);
  Variable b(Tensor::Scalar(2.0f), true);
  Adam adam({a, b}, {});
  adam.ZeroGrad();
  ops::Square(a).Backward();  // only a gets a gradient
  adam.Step();
  EXPECT_EQ(b.value().scalar(), 2.0f);
  EXPECT_NE(a.value().scalar(), 1.0f);
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  Variable w(Tensor::Scalar(1.0f), true);
  Adam::Options opts;
  opts.lr = 0.01f;
  opts.weight_decay = 1.0f;
  Adam adam({w}, opts);
  // Gradient-free loss: only decay acts. Use a zero-grad surrogate.
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    ops::Scale(w, 0.0f).Backward();  // zero gradient, but allocates grads
    adam.Step();
  }
  EXPECT_LT(w.value().scalar(), 1.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable w(Tensor::Scalar(-3.0f), true);
  Sgd::Options opts;
  opts.lr = 0.1f;
  opts.momentum = 0.5f;
  Sgd sgd({w}, opts);
  for (int i = 0; i < 120; ++i) {
    sgd.ZeroGrad();
    ops::Square(w).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value().scalar(), 0.0f, 0.05f);
}

// ---- Metrics --------------------------------------------------------------------

TEST(MetricsTest, AccuracyOnSubset) {
  Tensor logits = Tensor::FromData(4, 2,
                                   {2, 1,    // pred 0
                                    0, 3,    // pred 1
                                    5, 1,    // pred 0
                                    1, 2});  // pred 1
  std::vector<int64_t> labels = {0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2, 3}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {2}), 0.0);
}

TEST(MetricsTest, PredictionsMatchArgmax) {
  Tensor logits = Tensor::FromData(2, 3, {0, 5, 1, 9, 2, 3});
  EXPECT_EQ(Predictions(logits, {0, 1}), (std::vector<int64_t>{1, 0}));
}

TEST(MetricsTest, AucPerfectSeparation) {
  Tensor logits = Tensor::FromData(4, 2,
                                   {5, 0,   //
                                    4, 1,   //
                                    0, 5,   //
                                    1, 4});
  std::vector<int64_t> labels = {0, 0, 1, 1};
  EXPECT_NEAR(MacroAucOvr(logits, labels, {0, 1, 2, 3}, 2), 1.0, 1e-9);
}

TEST(MetricsTest, AucRandomScoresNearHalf) {
  Rng rng(22);
  Tensor logits = Tensor::Randn(400, 2, &rng);
  std::vector<int64_t> labels;
  std::vector<int64_t> index;
  for (int64_t i = 0; i < 400; ++i) {
    labels.push_back(i % 2);
    index.push_back(i);
  }
  EXPECT_NEAR(MacroAucOvr(logits, labels, index, 2), 0.5, 0.08);
}

TEST(MetricsTest, AucHandlesMissingClass) {
  Tensor logits = Tensor::FromData(2, 3, {1, 0, 0, 0, 1, 0});
  std::vector<int64_t> labels = {0, 1};
  // Class 2 absent -> skipped; still well-defined.
  const double auc = MacroAucOvr(logits, labels, {0, 1}, 3);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

TEST(MetricsTest, AucTiesUseMidrank) {
  Tensor logits = Tensor::FromData(4, 2, {1, 0, 1, 0, 1, 0, 1, 0});
  std::vector<int64_t> labels = {0, 0, 1, 1};
  EXPECT_NEAR(MacroAucOvr(logits, labels, {0, 1, 2, 3}, 2), 0.5, 1e-9);
}

// ---- Trainer --------------------------------------------------------------------

TEST(TrainerTest, FitImprovesOverInit) {
  graph::Graph g = TestGraph();
  Rng xr(23);
  Tensor x = Tensor::Rand(6, 8, &xr);
  std::vector<int64_t> labels = {0, 0, 1, 1, 2, 2};
  auto model = MakeModel(BackboneKind::kMlp, SmallModelOptions());
  ClassifierTrainer::Options to;
  to.adam.lr = 0.05f;
  ClassifierTrainer trainer(model.get(),
                            LayerInput::Dense(Variable(x, false)), &labels,
                            to);
  const std::vector<int64_t> all = {0, 1, 2, 3, 4, 5};
  const EvalResult before = trainer.Evaluate(g, all);
  trainer.Fit(g, all, all, 80, 80);
  const EvalResult after = trainer.Evaluate(g, all);
  EXPECT_LT(after.loss, before.loss);
  EXPECT_GE(after.accuracy, before.accuracy);
}

TEST(TrainerTest, SaveLoadWeightsRoundTrip) {
  graph::Graph g = TestGraph();
  Rng xr(24);
  Tensor x = Tensor::Rand(6, 8, &xr);
  std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2};
  auto model = MakeModel(BackboneKind::kGcn, SmallModelOptions());
  ClassifierTrainer trainer(model.get(),
                            LayerInput::Dense(Variable(x, false)), &labels,
                            {});
  const auto saved = trainer.SaveWeights();
  const Tensor logits_before = trainer.EvalLogits(g);
  trainer.TrainEpoch(g, {0, 1, 2, 3});
  EXPECT_FALSE(trainer.EvalLogits(g).AllClose(logits_before));
  trainer.LoadWeights(saved);
  EXPECT_TRUE(trainer.EvalLogits(g).AllClose(logits_before));
}

TEST(TrainerTest, EarlyStoppingStopsBeforeMaxEpochs) {
  graph::Graph g = TestGraph();
  Rng xr(25);
  Tensor x = Tensor::Rand(6, 8, &xr);
  // Random labels on val: no generalisation signal -> early stop.
  std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2};
  auto model = MakeModel(BackboneKind::kMlp, SmallModelOptions());
  ClassifierTrainer trainer(model.get(),
                            LayerInput::Dense(Variable(x, false)), &labels,
                            {});
  const FitResult fit = trainer.Fit(g, {0, 1, 2}, {3, 4, 5}, 500, 5);
  EXPECT_LT(fit.epochs_run, 500);
  EXPECT_EQ(fit.train_acc_history.size(),
            static_cast<size_t>(fit.epochs_run));
}

}  // namespace
}  // namespace nn
}  // namespace graphrare

// Tests for the common substrate: Status/Result, RNG, logging, strings.

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace graphrare {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  GR_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(r.value(), "boom");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  const auto sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int64_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 20u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementAllWhenKExceedsN) {
  Rng rng(11);
  const auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(12);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, ForkIndependentStream) {
  Rng a(13);
  Rng child = a.Fork();
  // The child stream should not replay the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == child.Next() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  GR_LOG(INFO) << "should be suppressed";
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedMillis(), w.ElapsedSeconds() * 1000.0 * 0.5);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace graphrare

// Graph topology tests: canonicalisation, derived operators, homophily,
// k-hop, editing.

#include "graph/graph.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph_editor.h"
#include "graph/reorder.h"

namespace graphrare {
namespace graph {
namespace {

// 0-1, 1-2, 2-3, 3-0 square plus 0-2 diagonal.
Graph Square() {
  return Graph::FromEdgeListOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
}

TEST(GraphTest, BasicCounts) {
  Graph g = Square();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.MaxDegree(), 3);
}

TEST(GraphTest, CanonicalisesDuplicatesAndDirections) {
  Graph g = Graph::FromEdgeListOrDie(3, {{0, 1}, {1, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphTest, DropsSelfLoops) {
  Graph g = Graph::FromEdgeListOrDie(3, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, RejectsOutOfRange) {
  auto r = Graph::FromEdgeList(2, {{0, 5}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdgeListOrDie(3, {});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.Degree(1), 0);
  EXPECT_EQ(g.CountConnectedComponents(), 3);
}

TEST(GraphTest, HasEdgeSymmetric) {
  Graph g = Square();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphTest, NeighborsSorted) {
  Graph g = Square();
  const auto n0 = g.Neighbors(0);
  EXPECT_EQ(n0, (std::vector<int64_t>{1, 2, 3}));
}

TEST(GraphTest, AdjacencyMatchesEdges) {
  Graph g = Square();
  auto a = g.Adjacency();
  EXPECT_EQ(a->nnz(), 10);  // 2 * 5 edges
  EXPECT_FLOAT_EQ(a->At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a->At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(a->At(0, 0), 0.0f);
}

TEST(GraphTest, NormalizedAdjacencyRowsSumCorrectly) {
  // For D^{-1/2}(A+I)D^{-1/2}, the row sum of row i equals
  // sum_j (a_ij+I_ij) / sqrt(d_i d_j); verify diag and one entry by hand.
  Graph g = Graph::FromEdgeListOrDie(2, {{0, 1}});
  auto norm = g.NormalizedAdjacency();
  // Both nodes have degree 1 -> (A+I) degrees are 2.
  EXPECT_NEAR(norm->At(0, 0), 0.5f, 1e-6);
  EXPECT_NEAR(norm->At(0, 1), 0.5f, 1e-6);
}

TEST(GraphTest, RowNormalizedAdjacencySums) {
  Graph g = Square();
  auto rn = g.RowNormalizedAdjacency();
  tensor::Tensor ones = tensor::Tensor::Ones(4, 1);
  tensor::Tensor sums = rn->SpMM(ones);
  for (int64_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(sums.at(v, 0), 1.0f, 1e-6);
  }
}

TEST(GraphTest, IsolatedNodeRowNormalizedIsZero) {
  Graph g = Graph::FromEdgeListOrDie(3, {{0, 1}});
  auto rn = g.RowNormalizedAdjacency();
  tensor::Tensor ones = tensor::Tensor::Ones(3, 1);
  tensor::Tensor sums = rn->SpMM(ones);
  EXPECT_NEAR(sums.at(2, 0), 0.0f, 1e-6);
}

TEST(GraphTest, TwoHopExcludesSelfAndOneHop) {
  // Path 0-1-2-3.
  Graph g = Graph::FromEdgeListOrDie(4, {{0, 1}, {1, 2}, {2, 3}});
  auto two = g.TwoHopAdjacency();
  EXPECT_FLOAT_EQ(two->At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(two->At(1, 3), 1.0f);
  EXPECT_FLOAT_EQ(two->At(0, 1), 0.0f);  // 1-hop excluded
  EXPECT_FLOAT_EQ(two->At(0, 0), 0.0f);  // self excluded
  EXPECT_FLOAT_EQ(two->At(0, 3), 0.0f);  // 3 hops away
}

TEST(GraphTest, TriangleHasNoStrictTwoHop) {
  Graph g = Graph::FromEdgeListOrDie(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.TwoHopAdjacency()->nnz(), 0);
}

TEST(GraphTest, KHopNeighbors) {
  // Path 0-1-2-3-4.
  Graph g = Graph::FromEdgeListOrDie(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(g.KHopNeighbors(0, 1), (std::vector<int64_t>{1}));
  EXPECT_EQ(g.KHopNeighbors(0, 2), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(g.KHopNeighbors(0, 4), (std::vector<int64_t>{1, 2, 3, 4}));
  EXPECT_TRUE(g.KHopNeighbors(0, 0).empty());
}

TEST(GraphTest, DirectedEdgesWithSelfLoops) {
  Graph g = Graph::FromEdgeListOrDie(3, {{0, 1}});
  std::vector<int64_t> src, dst;
  g.DirectedEdgesWithSelfLoops(&src, &dst);
  // 2 directions + 3 self loops.
  EXPECT_EQ(src.size(), 5u);
  EXPECT_EQ(dst.size(), 5u);
}

TEST(GraphTest, EdgeHomophily) {
  // labels: 0,0,1,1. Edges: (0,1) same, (2,3) same, (1,2) cross.
  Graph g = Graph::FromEdgeListOrDie(4, {{0, 1}, {2, 3}, {1, 2}});
  EXPECT_NEAR(g.EdgeHomophily({0, 0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(GraphTest, EdgeHomophilyEdgeless) {
  Graph g = Graph::FromEdgeListOrDie(2, {});
  EXPECT_EQ(g.EdgeHomophily({0, 1}), 0.0);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = Graph::FromEdgeListOrDie(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(g.CountConnectedComponents(), 3);  // {0,1,2}, {3,4}, {5}
}

// ---- GraphEditor ----------------------------------------------------------

TEST(GraphEditorTest, AddEdge) {
  Graph g = Square();
  GraphEditor editor(&g);
  EXPECT_TRUE(editor.AddEdge(1, 3));
  Graph g2 = editor.Build();
  EXPECT_TRUE(g2.HasEdge(1, 3));
  EXPECT_EQ(g2.num_edges(), 6);
  // Original untouched.
  EXPECT_FALSE(g.HasEdge(1, 3));
}

TEST(GraphEditorTest, AddExistingEdgeIsNoop) {
  Graph g = Square();
  GraphEditor editor(&g);
  EXPECT_FALSE(editor.AddEdge(0, 1));
  EXPECT_EQ(editor.Build().num_edges(), 5);
}

TEST(GraphEditorTest, RemoveEdge) {
  Graph g = Square();
  GraphEditor editor(&g);
  EXPECT_TRUE(editor.RemoveEdge(0, 2));
  Graph g2 = editor.Build();
  EXPECT_FALSE(g2.HasEdge(0, 2));
  EXPECT_EQ(g2.num_edges(), 4);
}

TEST(GraphEditorTest, RemoveMissingEdgeIsNoop) {
  Graph g = Square();
  GraphEditor editor(&g);
  EXPECT_FALSE(editor.RemoveEdge(1, 3));
  EXPECT_EQ(editor.Build().num_edges(), 5);
}

TEST(GraphEditorTest, RemoveWinsOverAdd) {
  Graph g = Square();
  GraphEditor editor(&g);
  editor.AddEdge(1, 3);
  editor.RemoveEdge(1, 3);  // unqueues the addition
  EXPECT_FALSE(editor.Build().HasEdge(1, 3));
}

TEST(GraphEditorTest, SelfLoopIgnored) {
  Graph g = Square();
  GraphEditor editor(&g);
  EXPECT_FALSE(editor.AddEdge(2, 2));
  EXPECT_EQ(editor.Build().num_edges(), 5);
}

TEST(GraphEditorTest, DirectionAgnostic) {
  Graph g = Square();
  GraphEditor editor(&g);
  EXPECT_TRUE(editor.AddEdge(3, 1));
  EXPECT_FALSE(editor.AddEdge(1, 3));  // same undirected edge
  EXPECT_EQ(editor.num_pending_additions(), 1);
}

// ----------------------------------------------------------------- reorder

TEST(ReorderTest, DegreeSortPutsHubsFirst) {
  // Star around node 3 plus a pendant chain: degrees 3:4, 0:2, others 1.
  Graph g = Graph::FromEdgeListOrDie(
      6, {{3, 0}, {3, 1}, {3, 2}, {3, 4}, {0, 5}});
  const auto perm = DegreeSortPermutation(g);
  const auto inv = InversePermutation(perm);
  for (size_t i = 1; i < inv.size(); ++i) {
    EXPECT_GE(g.Degree(inv[i - 1]), g.Degree(inv[i]))
        << "degrees must be non-increasing in the new order";
  }
  EXPECT_EQ(perm[3], 0) << "the hub takes id 0";
}

TEST(ReorderTest, RcmRelabelsShuffledPathToBandwidthOne) {
  // A 30-node path under scrambled labels: node i connects to i+1 through
  // the scramble. RCM must recover consecutive labels along the path.
  const int64_t n = 30;
  Rng rng(201);
  std::vector<int64_t> scramble(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) scramble[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(scramble[static_cast<size_t>(i)],
              scramble[rng.UniformInt(static_cast<uint64_t>(i) + 1)]);
  }
  std::vector<Edge> edges;
  for (int64_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(scramble[static_cast<size_t>(i)],
                       scramble[static_cast<size_t>(i) + 1]);
  }
  Graph g = Graph::FromEdgeListOrDie(n, edges);
  const auto perm = RcmPermutation(g);
  Graph r = PermuteGraph(g, perm);
  int64_t bandwidth = 0;
  for (const auto& [u, v] : r.edges()) {
    bandwidth = std::max(bandwidth, std::abs(u - v));
  }
  EXPECT_EQ(bandwidth, 1);
}

TEST(ReorderTest, RcmCoversDisconnectedComponentsAndIsolatedNodes) {
  // Two components plus isolated node 6: the permutation must still be a
  // bijection over all seven ids.
  Graph g = Graph::FromEdgeListOrDie(
      7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const auto perm = RcmPermutation(g);
  EXPECT_EQ(perm.size(), 7u);
  const auto inv = InversePermutation(perm);  // aborts if not a bijection
  EXPECT_EQ(inv.size(), 7u);
}

TEST(ReorderTest, PermuteGraphPreservesTopology) {
  Graph g = Graph::FromEdgeListOrDie(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}});
  const std::vector<int64_t> perm = {4, 2, 0, 3, 1};
  Graph p = PermuteGraph(g, perm);
  EXPECT_EQ(p.num_nodes(), g.num_nodes());
  EXPECT_EQ(p.num_edges(), g.num_edges());
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(p.Degree(perm[static_cast<size_t>(u)]), g.Degree(u));
  }
  EXPECT_TRUE(p.HasEdge(perm[1], perm[3]));
  EXPECT_FALSE(p.HasEdge(perm[0], perm[2]));
}

TEST(ReorderTest, ReorderCsrRoundTripsBitwise) {
  // Permuting a CSR matrix and permuting back with the inverse must
  // reproduce the original arrays bit for bit — the machinery moves
  // values, it never recomputes them.
  Rng rng(203);
  std::vector<Edge> edges;
  for (int64_t i = 0; i < 200; ++i) {
    const int64_t u = static_cast<int64_t>(rng.UniformInt(40));
    const int64_t v = static_cast<int64_t>(rng.UniformInt(40));
    if (u != v) edges.emplace_back(u, v);
  }
  Graph g = Graph::FromEdgeListOrDie(40, edges);
  const tensor::CsrMatrix m = *g.NormalizedAdjacency();
  for (const ReorderKind kind :
       {ReorderKind::kDegreeSort, ReorderKind::kRcm}) {
    const auto perm = ReorderPermutation(g, kind);
    const tensor::CsrMatrix fwd = ReorderCsr(m, perm);
    // Entries land where the permutation says.
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t p = m.row_ptr()[static_cast<size_t>(r)];
           p < m.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
        const int64_t c = m.col_idx()[static_cast<size_t>(p)];
        EXPECT_EQ(fwd.At(perm[static_cast<size_t>(r)],
                         perm[static_cast<size_t>(c)]),
                  m.values()[static_cast<size_t>(p)]);
      }
    }
    const tensor::CsrMatrix back = ReorderCsr(fwd, InversePermutation(perm));
    EXPECT_EQ(back.row_ptr(), m.row_ptr());
    EXPECT_EQ(back.col_idx(), m.col_idx());
    EXPECT_EQ(back.values(), m.values());
  }
}

TEST(ReorderDeathTest, InversePermutationRejectsNonBijections) {
  EXPECT_DEATH(InversePermutation({0, 0, 1}), "GR_CHECK");
  EXPECT_DEATH(InversePermutation({0, 1, 5}), "GR_CHECK");
}

}  // namespace
}  // namespace graph
}  // namespace graphrare

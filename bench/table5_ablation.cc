// Regenerates Table V: ablation study on the relative entropy and the DRL
// module, all with the GCN backbone:
//   GCN              — plain backbone
//   GCN-RE[0..x]     — random per-node (k, d) in [0, x], no DRL
//   GCN-RA           — shuffled entropy sequences (no relative entropy)
//   GCN-RARE-add     — additions only
//   GCN-RARE-remove  — removals only
//   GCN-RARE-reward  — AUC reward instead of Eq. 11
//   GCN-RARE         — the full framework
//
// Shape expectation: full GCN-RARE tops every ablation; GCN-RA (no entropy)
// and plain GCN trail the most.

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

const char* kDatasets[] = {"chameleon", "squirrel", "cornell", "texas",
                           "wisconsin", "cora", "pubmed"};

void Run() {
  PrintBanner("Table V: ablation on relative entropy and DRL module",
              "Sec. V-F, Table V");

  std::vector<data::Dataset> datasets;
  std::vector<std::vector<data::Split>> all_splits;
  for (const char* name : kDatasets) {
    datasets.push_back(LoadBenchDataset(name));
    all_splits.push_back(BenchSplits(datasets.back(), /*quick_splits=*/1));
  }

  struct Variant {
    std::string name;
    std::function<core::GraphRareOptions()> make;
    bool plain_gcn = false;
  };
  auto base = [] { return BenchRareOptions(nn::BackboneKind::kGcn); };
  std::vector<Variant> variants;
  variants.push_back({"GCN", {}, /*plain_gcn=*/true});
  for (int x : {5, 10, 15, 20}) {
    variants.push_back({StrFormat("GCN-RE[0..%d]", x), [base, x] {
                          core::GraphRareOptions o = base();
                          o.policy_mode = core::PolicyMode::kRandom;
                          o.random_k_max = x;
                          o.random_d_max = x;
                          o.k_max = x;
                          o.d_max = x;
                          return o;
                        }});
  }
  variants.push_back({"GCN-RA", [base] {
                        core::GraphRareOptions o = base();
                        o.sequence_mode = core::SequenceMode::kShuffled;
                        return o;
                      }});
  variants.push_back({"GCN-RARE-add", [base] {
                        core::GraphRareOptions o = base();
                        o.enable_remove = false;
                        return o;
                      }});
  variants.push_back({"GCN-RARE-remove", [base] {
                        core::GraphRareOptions o = base();
                        o.enable_add = false;
                        return o;
                      }});
  variants.push_back({"GCN-RARE-reward", [base] {
                        core::GraphRareOptions o = base();
                        o.reward.kind = core::RewardKind::kAuc;
                        return o;
                      }});
  variants.push_back({"GCN-RARE", base});

  PrintRow("Method",
           {"Chameleon", "Squirrel", "Cornell", "Texas", "Wisconsin", "Cora",
            "Pubmed", "Average"},
           20, 13);
  std::printf("%s\n", std::string(20 + 8 * 13, '-').c_str());

  for (const auto& variant : variants) {
    std::vector<std::string> cells;
    double sum = 0.0;
    for (size_t d = 0; d < 7; ++d) {
      std::fprintf(stderr, "[table5] %s %s...\n", variant.name.c_str(),
                   kDatasets[d]);
      core::RunStats stats;
      if (variant.plain_gcn) {
        stats = core::RunBackbone(datasets[d], all_splits[d],
                                  nn::BackboneKind::kGcn,
                                  BenchBaselineOptions())
                    .accuracy;
      } else {
        stats = core::RunGraphRare(datasets[d], all_splits[d], variant.make())
                    .accuracy;
      }
      cells.push_back(AccCell(stats));
      sum += stats.mean;
    }
    cells.push_back(StrFormat("%5.2f", 100.0 * sum / 7.0));
    PrintRow(variant.name, cells, 20, 13);
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Regenerates Figure 7: homophily ratio of the original graph vs the
// optimized graphs produced by the four RARE models, on all seven datasets.
//
// Shape expectation: every RARE model raises homophily on the heterophilic
// datasets (strongly on WebKB, mildly on the dense wiki graphs, mirroring
// the paper's "subdued enhancements ... attributed to intricate topology"),
// and roughly preserves it on the already-homophilic Cora/Pubmed.

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

const char* kDatasets[] = {"chameleon", "squirrel", "cornell", "texas",
                           "wisconsin", "cora", "pubmed"};

void Run() {
  PrintBanner("Figure 7: homophily ratios, original vs optimized",
              "Sec. V-I, Fig. 7");

  const nn::BackboneKind kinds[] = {nn::BackboneKind::kGcn,
                                    nn::BackboneKind::kSage,
                                    nn::BackboneKind::kGat,
                                    nn::BackboneKind::kH2Gcn};
  const char* names[] = {"GCN-RARE", "GraphSAGE-RARE", "GAT-RARE",
                         "H2GCN-RARE"};

  PrintRow("Dataset", {"Original", "GCN-RARE", "SAGE-RARE", "GAT-RARE",
                       "H2GCN-RARE"},
           12, 12);
  std::printf("%s\n", std::string(12 + 5 * 12, '-').c_str());

  double gain[4] = {0, 0, 0, 0};
  for (const char* ds_name : kDatasets) {
    const data::Dataset ds = LoadBenchDataset(ds_name);
    const auto splits = BenchSplits(ds, /*quick_splits=*/1);
    std::vector<std::string> cells = {StrFormat("%.2f", ds.Homophily())};
    for (size_t m = 0; m < 4; ++m) {
      std::fprintf(stderr, "[fig7] %s %s...\n", names[m], ds_name);
      core::GraphRareOptions opts = BenchRareOptions(kinds[m]);
      const auto agg = core::RunGraphRare(ds, splits, opts);
      cells.push_back(StrFormat("%.2f", agg.mean_final_homophily));
      gain[m] += agg.mean_final_homophily - agg.mean_initial_homophily;
    }
    PrintRow(ds_name, cells, 12, 12);
  }
  std::printf("\nMean homophily gain over the 7 datasets:\n");
  for (size_t m = 0; m < 4; ++m) {
    std::printf("  %-16s %+0.3f\n", names[m], gain[m] / 7.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Regenerates Table IV: sensitivity of the relative-entropy mixing weight
// lambda (Eq. 9). For each enhanced model and dataset, sweeps
// lambda in {0.1, 0.5, 1.0, 10.0}.
//
// Shape expectation: lambda = 1.0 (features and structure weighted equally)
// is the best or near-best column, and both extremes (feature-entropy-only
// and structure-entropy-heavy) lose accuracy — the paper's Sec. V-E finding.

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

const char* kDatasets[] = {"chameleon", "squirrel", "cornell", "texas",
                           "wisconsin", "cora", "pubmed"};
const double kLambdas[] = {0.1, 0.5, 1.0, 10.0};

void Run() {
  PrintBanner("Table IV: hyper-parameter (lambda) analysis",
              "Sec. V-E, Table IV");

  const nn::BackboneKind kinds[] = {nn::BackboneKind::kGcn,
                                    nn::BackboneKind::kSage,
                                    nn::BackboneKind::kGat,
                                    nn::BackboneKind::kH2Gcn};
  const char* names[] = {"GCN-RARE", "GraphSAGE-RARE", "GAT-RARE",
                         "H2GCN-RARE"};

  // Quick mode trims the sweep to the GCN and SAGE rows (the paper's
  // finding is identical across backbones); full mode runs all four.
  const size_t num_models = core::BenchFullScale() ? 4 : 2;
  const int quick_splits = 1;

  // Preload datasets + splits once.
  std::vector<data::Dataset> datasets;
  std::vector<std::vector<data::Split>> all_splits;
  for (const char* ds_name : kDatasets) {
    datasets.push_back(LoadBenchDataset(ds_name));
    all_splits.push_back(BenchSplits(datasets.back(), quick_splits));
  }

  for (size_t m = 0; m < num_models; ++m) {
    std::printf("\n%s\n", names[m]);
    PrintRow("lambda",
             {"Chameleon", "Squirrel", "Cornell", "Texas", "Wisconsin",
              "Cora", "Pubmed", "Average"},
             10, 13);
    std::printf("%s\n", std::string(10 + 8 * 13, '-').c_str());
    for (double lambda : kLambdas) {
      std::vector<std::string> cells;
      double sum = 0.0;
      for (size_t d = 0; d < 7; ++d) {
        std::fprintf(stderr, "[table4] %s lambda=%.1f %s...\n", names[m],
                     lambda, kDatasets[d]);
        core::GraphRareOptions opts = BenchRareOptions(kinds[m]);
        opts.entropy.lambda = lambda;
        const auto agg = core::RunGraphRare(datasets[d], all_splits[d], opts);
        cells.push_back(AccCell(agg.accuracy));
        sum += agg.accuracy.mean;
      }
      cells.push_back(StrFormat("%5.2f", 100.0 * sum / 7.0));
      PrintRow(StrFormat("%.1f", lambda), cells, 10, 13);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Regenerates Figure 6: the training process of GCN-RARE on the Cornell
// dataset — (a) node classification accuracy per iteration, (b) homophily
// ratio of the rewired graph per iteration, (c) mean DRL reward per episode.
//
// Shape expectation: accuracy rises and stabilises; homophily climbs from
// ~0.30 toward a plateau well above the original graph; episode rewards are
// noisy early and converge toward zero as the topology stabilises.

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

void PrintSeries(const char* title, const std::vector<double>& ys,
                 double scale) {
  std::printf("\n%s\n", title);
  double mn = 1e30, mx = -1e30;
  for (double y : ys) {
    mn = std::min(mn, y * scale);
    mx = std::max(mx, y * scale);
  }
  const double range = mx - mn > 1e-12 ? mx - mn : 1.0;
  for (size_t i = 0; i < ys.size(); ++i) {
    const int bar =
        static_cast<int>(40.0 * (ys[i] * scale - mn) / range + 0.5);
    std::printf("%4zu  %8.3f  |%s\n", i, ys[i] * scale,
                std::string(static_cast<size_t>(bar), '#').c_str());
  }
}

void Run() {
  PrintBanner("Figure 6: convergence of GraphRARE (GCN-RARE on Cornell)",
              "Sec. V-H, Fig. 6a-6c");

  const data::Dataset ds = LoadBenchDataset("cornell");
  const auto splits = BenchSplits(ds, /*quick_splits=*/1);

  core::GraphRareOptions opts = BenchRareOptions(nn::BackboneKind::kGcn);
  opts.iterations = core::BenchFullScale() ? 48 : 24;
  opts.ppo.steps_per_update = 6;
  core::GraphRareTrainer trainer(&ds, opts);
  const core::GraphRareResult r = trainer.Run(splits[0]);

  PrintSeries("(a) train accuracy per co-training iteration (%)",
              r.train_acc_history, 100.0);
  PrintSeries("(b) homophily ratio of G_t per iteration",
              r.homophily_history, 1.0);

  // Episode = one PPO rollout (steps_per_update iterations).
  std::vector<double> episode_rewards;
  double acc = 0.0;
  int in_episode = 0;
  for (double rew : r.reward_history) {
    acc += rew;
    if (++in_episode == opts.ppo.steps_per_update) {
      episode_rewards.push_back(acc / in_episode);
      acc = 0.0;
      in_episode = 0;
    }
  }
  if (in_episode > 0) episode_rewards.push_back(acc / in_episode);
  PrintSeries("(c) mean DRL reward per episode", episode_rewards, 1.0);

  std::printf("\nOriginal homophily: %.3f -> best-graph homophily: %.3f\n",
              r.initial_homophily, r.final_homophily);
  std::printf("Test accuracy at best validation: %.2f%%\n",
              100.0 * r.test_accuracy);
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Serving throughput/latency bench: queries/sec and p50/p99 per-query
// latency of serve::InferenceEngine vs batch size, sampling fanout, and
// OpenMP thread count. Writes BENCH_serve_throughput.json so the serving
// perf trajectory is tracked across PRs like the training-side scaling
// benches.
//
// Quick mode serves a shrunk cora twin; GRARE_BENCH_FULL=1 serves the
// full-size twin with more requests.

#include <algorithm>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench/bench_util.h"
#include "common/stats.h"

using namespace graphrare;

namespace {

int MaxThreads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void SetThreads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

std::string FanoutLabel(const std::vector<int64_t>& fanouts) {
  if (fanouts.empty()) return "full";
  std::string out;
  for (size_t i = 0; i < fanouts.size(); ++i) {
    out += (i ? "," : "") + std::to_string(fanouts[i]);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner("serving throughput (InferenceEngine)",
                     "deployable-artifact serving pipeline");

  const data::Dataset ds = bench::LoadBenchDataset("cora");
  const auto splits = bench::BenchSplits(ds, /*quick_splits=*/1);

  // A briefly trained SAGE backbone: enough signal for realistic logits,
  // cheap enough that the bench stays about serving, not training.
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::ClassifierTrainer trainer(
      model.get(), nn::LayerInput::Sparse(ds.FeaturesCsr()), &ds.labels, {});
  trainer.Fit(ds.graph, splits[0].train, splits[0].val,
              core::BenchFullScale() ? 100 : 25, 20);

  auto artifact_or = core::PackageArtifact(*model, nn::BackboneKind::kSage,
                                           mo, 7, ds.graph, ds);
  GR_CHECK(artifact_or.ok()) << artifact_or.status().ToString();

  const int num_requests = core::BenchFullScale() ? 512 : 96;
  const std::vector<int64_t> batch_sizes = {1, 16, 64, 256};
  const std::vector<std::vector<int64_t>> fanout_modes = {
      {},        // full-graph (precomputed logits)
      {5, 5},    // tight sampled
      {10, 10},  // default sampled
  };

  std::printf("dataset=%s nodes=%lld edges=%lld threads(max)=%d "
              "requests/config=%d\n\n",
              ds.name.c_str(), static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.graph.num_edges()), MaxThreads(),
              num_requests);
  bench::PrintRow("config",
                  {"batch", "threads", "qps", "p50 ms", "p99 ms"});

  bench::BenchJson json("serve_throughput");
  Rng node_rng(123);
  for (const auto& fanouts : fanout_modes) {
    serve::EngineOptions opts;
    opts.fanouts = fanouts;
    auto engine_or =
        serve::InferenceEngine::FromArtifact(*artifact_or, opts);
    GR_CHECK(engine_or.ok()) << engine_or.status().ToString();
    const serve::InferenceEngine& engine = *engine_or;

    // Sampled mode is where concurrency matters; the full-graph engine is
    // a lookup table, so one thread configuration suffices there.
    std::vector<int> thread_counts = {MaxThreads()};
    if (!fanouts.empty() && MaxThreads() > 1) {
      thread_counts.insert(thread_counts.begin(), 1);
    }

    for (const int64_t batch : batch_sizes) {
      // One fixed request set per (mode, batch) so thread counts compare
      // identical work.
      std::vector<std::vector<int64_t>> requests(
          static_cast<size_t>(num_requests));
      for (auto& request : requests) {
        request.resize(static_cast<size_t>(batch));
        for (auto& id : request) {
          id = static_cast<int64_t>(
              node_rng.UniformInt(static_cast<uint64_t>(ds.num_nodes())));
        }
      }

      for (const int threads : thread_counts) {
        SetThreads(threads);
        // Warm-up (operator caches, allocator).
        GR_CHECK(engine.PredictBatch({requests[0]}).ok());

        Stopwatch batch_watch;
        auto results = engine.PredictBatch(requests);
        const double batch_seconds = batch_watch.ElapsedSeconds();
        GR_CHECK(results.ok()) << results.status().ToString();

        // Per-query latency distribution from sequential Predict calls.
        std::vector<double> lat_ms;
        lat_ms.reserve(requests.size());
        for (const auto& request : requests) {
          Stopwatch w;
          GR_CHECK(engine.Predict(request).ok());
          lat_ms.push_back(w.ElapsedSeconds() * 1e3);
        }
        std::sort(lat_ms.begin(), lat_ms.end());

        const double qps =
            static_cast<double>(num_requests) * static_cast<double>(batch) /
            batch_seconds;
        const double p50 = Percentile(lat_ms, 0.50);
        const double p99 = Percentile(lat_ms, 0.99);
        bench::PrintRow(
            FanoutLabel(fanouts),
            {StrFormat("%lld", static_cast<long long>(batch)),
             StrFormat("%d", threads), StrFormat("%.0f", qps),
             StrFormat("%.3f", p50), StrFormat("%.3f", p99)});

        json.BeginConfig()
            .Field("mode", fanouts.empty() ? "full" : "sampled")
            .Field("fanouts", FanoutLabel(fanouts))
            .Field("batch_size", batch)
            .Field("num_requests", static_cast<int64_t>(num_requests))
            .Field("threads", threads)
            .Field("queries_per_second", qps)
            .Field("batch_seconds", batch_seconds)
            .Field("p50_ms", p50)
            .Field("p99_ms", p99)
            .Field("max_ms", lat_ms.back())
            .Field("nodes", ds.num_nodes())
            .Field("peak_rss_mib", bench::PeakRssMiB());
      }
    }
    std::printf("\n");
  }
  SetThreads(MaxThreads());
  json.Write();
  return 0;
}

// HTTP serving-tier bench: end-to-end request latency and sustained
// throughput of the epoll front-end + continuous batcher over loopback,
// under a Zipfian query trace with open-loop (exponential) arrivals —
// clients send on a fixed schedule whether or not earlier responses have
// come back, so queueing delay shows up in the percentiles instead of
// being absorbed by a closed loop.
//
// Two scheduler shapes at each offered load:
//   batch1      max_batch=1, no fill wait — a plain request-per-engine-call
//               server (the baseline)
//   continuous  max_batch=16, 2ms fill wait — arrivals join the next free
//               slot and ride one PredictBatchWithSeeds call
//
// The headline figure is goodput-at-SLO: the highest offered load whose
// p99 stays under the SLO, per shape, and their ratio. Continuous batching
// wins by running the in-flight requests through one OpenMP-parallel
// engine call, so the speedup tracks the core count — on a single-core
// runner the two shapes are expected to tie (the batch is drained serially
// there), which the JSON records honestly via the threads field.
//
// Writes BENCH_http_serve.json for the cross-PR perf trajectory.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench/bench_util.h"
#include "common/failpoint.h"
#include "common/stats.h"
#include "net/server.h"

using namespace graphrare;

namespace {

int MaxThreads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

// ---- Minimal pipelined loopback client ------------------------------------

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  GR_CHECK(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) == 0)
      << "connect to bench server failed";
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    GR_CHECK(n > 0) << "bench client write failed";
    off += static_cast<size_t>(n);
  }
}

/// Counts complete HTTP responses (header block + Content-Length body) in
/// a byte stream fed incrementally. The server answers pipelined requests
/// in order, so response k on a connection is request k's answer.
class ResponseCounter {
 public:
  /// Returns how many complete responses this chunk finished.
  int Feed(const char* data, size_t n) {
    buf_.append(data, n);
    int completed = 0;
    while (true) {
      const size_t head_end = buf_.find("\r\n\r\n");
      if (head_end == std::string::npos) return completed;
      const size_t content_length = ParseContentLength(buf_, head_end);
      const size_t total = head_end + 4 + content_length;
      if (buf_.size() < total) return completed;
      ok_ = ok_ && buf_.compare(0, 12, "HTTP/1.1 200") == 0;
      buf_.erase(0, total);
      ++completed;
    }
  }
  bool all_ok() const { return ok_; }

 private:
  static size_t ParseContentLength(const std::string& head, size_t limit) {
    const size_t pos = head.find("Content-Length: ");
    if (pos == std::string::npos || pos > limit) return 0;
    return static_cast<size_t>(
        std::strtoul(head.c_str() + pos + 16, nullptr, 10));
  }
  std::string buf_;
  bool ok_ = true;
};

// ---- Trace generation ------------------------------------------------------

/// Zipfian node ids (exponent ~1.1) over [0, n): rank r is queried with
/// probability proportional to 1/(r+1)^s — a few hot nodes dominate, the
/// realistic shape for serving traffic.
std::vector<int64_t> ZipfianTrace(int64_t n, int count, Rng* rng) {
  const double s = 1.1;
  std::vector<double> cdf(static_cast<size_t>(n));
  double total = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[static_cast<size_t>(r)] = total;
  }
  // Ranks map to shuffled ids so "hot" nodes are spread over the graph.
  std::vector<int64_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  rng->Shuffle(&ids);
  std::vector<int64_t> trace(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double u = rng->Uniform() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    trace[static_cast<size_t>(i)] =
        ids[static_cast<size_t>(it - cdf.begin())];
  }
  return trace;
}

/// Open-loop arrival offsets (seconds): exponential interarrivals at
/// `offered_qps`.
std::vector<double> ArrivalSchedule(int count, double offered_qps,
                                    Rng* rng) {
  std::vector<double> at(static_cast<size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    double u = rng->Uniform();
    while (u <= 1e-12) u = rng->Uniform();
    t += -std::log(u) / offered_qps;
    at[static_cast<size_t>(i)] = t;
  }
  return at;
}

// ---- One open-loop run -----------------------------------------------------

struct RunResult {
  double achieved_qps = 0.0;
  LatencySummary latency_ms;
  int64_t batches = 0;
  int64_t max_batch_seen = 0;
};

/// Drives `trace` at the scheduled arrival times over `num_conns`
/// pipelined connections and reports end-to-end latency measured from the
/// *scheduled* arrival (open-loop: sender lateness counts as latency).
RunResult RunOpenLoop(int port, const std::vector<int64_t>& trace,
                      const std::vector<double>& schedule, int num_conns) {
  struct Conn {
    int fd = -1;
    std::mutex mu;
    std::deque<double> scheduled;  // arrival time of each in-flight request
    std::vector<double> latencies_ms;
    std::thread reader;
    std::atomic<bool> done{false};
  };
  std::vector<Conn> conns(static_cast<size_t>(num_conns));
  const auto t0 = std::chrono::steady_clock::now();
  auto now_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  for (Conn& conn : conns) {
    conn.fd = ConnectLoopback(port);
    conn.reader = std::thread([&conn, &now_s] {
      ResponseCounter counter;
      char buf[8192];
      while (true) {
        const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n <= 0) break;
        const int completed = counter.Feed(buf, static_cast<size_t>(n));
        if (completed > 0) {
          const double t = now_s();
          std::lock_guard<std::mutex> lock(conn.mu);
          for (int i = 0; i < completed; ++i) {
            conn.latencies_ms.push_back((t - conn.scheduled.front()) * 1e3);
            conn.scheduled.pop_front();
          }
          if (conn.done.load() && conn.scheduled.empty()) break;
        }
      }
      GR_CHECK(counter.all_ok()) << "bench saw a non-200 response";
    });
  }

  // The sender: one thread paces every connection (requests are tiny and
  // pipelined; the schedule, not the sender, is the bottleneck).
  for (size_t i = 0; i < trace.size(); ++i) {
    const double due = schedule[i];
    double now = now_s();
    if (now < due) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(due - now));
    }
    Conn& conn = conns[i % conns.size()];
    const std::string body =
        "{\"nodes\":[" + std::to_string(trace[i]) + "]}";
    const std::string wire =
        "POST /v1/predict HTTP/1.1\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      conn.scheduled.push_back(due);
    }
    WriteAll(conn.fd, wire);
  }
  for (Conn& conn : conns) conn.done.store(true);

  RunResult result;
  std::vector<double> all_ms;
  for (Conn& conn : conns) {
    conn.reader.join();
    ::close(conn.fd);
    all_ms.insert(all_ms.end(), conn.latencies_ms.begin(),
                  conn.latencies_ms.end());
  }
  GR_CHECK(all_ms.size() == trace.size())
      << "dropped responses: " << all_ms.size() << " of " << trace.size();
  const double wall_s = now_s();
  result.achieved_qps = static_cast<double>(trace.size()) / wall_s;
  result.latency_ms = Summarize(all_ms);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --chaos: rerun the continuous shape with ~1% transient I/O faults
  // (EINTR storms plus short reads/writes on every socket syscall) and
  // record goodput-at-SLO under faults. The faults are recoverable by
  // construction, so the zero-drops / all-200 assertions still hold — the
  // question the row answers is what the retry paths cost.
  bool chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }

  bench::PrintBanner("HTTP serving tier (epoll + continuous batching)",
                     "network serving front-end over InferenceEngine");

  const data::Dataset ds = bench::LoadBenchDataset("cora");
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  auto artifact_or = core::PackageArtifact(*model, nn::BackboneKind::kSage,
                                           mo, 7, ds.graph, ds);
  GR_CHECK(artifact_or.ok()) << artifact_or.status().ToString();

  // Sampled mode: per-request work is real compute, which is what the
  // batcher parallelises. (Full-graph mode is a row lookup — nothing for
  // a batch to win there.)
  serve::EngineOptions engine_opts;
  engine_opts.fanouts = {10, 10};
  auto engine_or = serve::InferenceEngine::FromArtifact(
      std::move(artifact_or).value(), engine_opts);
  GR_CHECK(engine_or.ok()) << engine_or.status().ToString();
  auto handle = std::make_shared<serve::EngineHandle>(
      std::make_shared<const serve::InferenceEngine>(
          std::move(engine_or).value()));

  // Calibrate the per-request service time with a few direct serial calls;
  // offered loads are multiples of the serial capacity.
  Rng rng(123);
  {  // warm-up
    GR_CHECK(handle->Get()->Predict({0}).ok());
  }
  const int kCalibrate = 40;
  Stopwatch calibration;
  for (int i = 0; i < kCalibrate; ++i) {
    const int64_t node =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(
            ds.num_nodes())));
    GR_CHECK(handle->Get()->Predict({node}).ok());
  }
  const double serial_qps =
      static_cast<double>(kCalibrate) / calibration.ElapsedSeconds();

  const int num_requests = core::BenchFullScale() ? 2000 : 400;
  const int num_conns = 4;
  const double slo_ms = 50.0;
  const std::vector<double> load_factors = {0.5, 0.8, 1.2, 1.8, 2.5};

  struct Shape {
    const char* name;
    net::BatcherOptions batcher;
    bool chaos = false;
  };
  std::vector<Shape> shapes(2);
  shapes[0].name = "batch1";
  shapes[0].batcher.max_batch = 1;
  shapes[0].batcher.max_queue_delay_ms = 0.0;
  shapes[1].name = "continuous";
  shapes[1].batcher.max_batch = 16;
  shapes[1].batcher.max_queue_delay_ms = 2.0;
  if (chaos) {
    Shape c = shapes[1];
    c.name = "continuous_chaos";
    c.chaos = true;
    shapes.push_back(c);
  }

  std::printf("dataset=%s nodes=%lld threads=%d serial_qps=%.0f "
              "requests/run=%d conns=%d slo=%.0fms\n\n",
              ds.name.c_str(), static_cast<long long>(ds.num_nodes()),
              MaxThreads(), serial_qps, num_requests, num_conns, slo_ms);
  bench::PrintRow("shape", {"offered", "achieved", "p50 ms", "p99 ms",
                            "batch(avg)", "slo"});

  bench::BenchJson json("http_serve");
  std::vector<double> goodput(shapes.size(), 0.0);
  for (size_t s = 0; s < shapes.size(); ++s) {
    const Shape& shape = shapes[s];
    net::HttpServerOptions options;
    options.batcher = shape.batcher;
    options.slo_ms = slo_ms;
    net::HttpServer server(handle, nullptr, options);
    GR_CHECK(server.Start().ok());
    if (shape.chaos) {
      failpoint::SetSeed(20260807);
      // One spec per site: interrupted reads, partial writes.
      GR_CHECK_OK(failpoint::ConfigureFromList(
          "net.read=1%eintr; net.write=1%short"));
    }
    std::thread loop([&server] { server.Run(); });

    int64_t prev_batches = 0, prev_requests = 0;
    for (const double factor : load_factors) {
      const double offered = serial_qps * factor;
      // Identical trace + schedule per (shape, factor) pair: both shapes
      // see the same arrivals.
      Rng trace_rng(1000 + static_cast<uint64_t>(factor * 100));
      const auto trace =
          ZipfianTrace(ds.num_nodes(), num_requests, &trace_rng);
      const auto schedule =
          ArrivalSchedule(num_requests, offered, &trace_rng);
      const RunResult run =
          RunOpenLoop(server.port(), trace, schedule, num_conns);

      const net::BatcherStats stats = server.batcher().Stats();
      const int64_t run_batches = stats.batches - prev_batches;
      const int64_t run_requests = stats.batched_requests - prev_requests;
      prev_batches = stats.batches;
      prev_requests = stats.batched_requests;
      const double avg_batch =
          run_batches > 0 ? static_cast<double>(run_requests) /
                                static_cast<double>(run_batches)
                          : 0.0;
      const bool slo_ok = run.latency_ms.p99 <= slo_ms;
      if (slo_ok) goodput[s] = std::max(goodput[s], run.achieved_qps);

      bench::PrintRow(shape.name,
                      {StrFormat("%.0f", offered),
                       StrFormat("%.0f", run.achieved_qps),
                       StrFormat("%.2f", run.latency_ms.p50),
                       StrFormat("%.2f", run.latency_ms.p99),
                       StrFormat("%.1f", avg_batch),
                       slo_ok ? "ok" : "MISS"});
      json.BeginConfig()
          .Field("shape", shape.name)
          .Field("max_batch", shape.batcher.max_batch)
          .Field("load_factor", factor)
          .Field("offered_qps", offered)
          .Field("achieved_qps", run.achieved_qps)
          .Field("p50_ms", run.latency_ms.p50)
          .Field("p99_ms", run.latency_ms.p99)
          .Field("max_ms", run.latency_ms.max)
          .Field("avg_batch", avg_batch)
          .Field("slo_ms", slo_ms)
          .Field("slo_ok", slo_ok)
          .Field("num_requests", static_cast<int64_t>(num_requests))
          .Field("threads", MaxThreads())
          .Field("chaos", shape.chaos)
          .Field("peak_rss_mib", bench::PeakRssMiB());
    }
    server.Shutdown();
    loop.join();
    if (shape.chaos) {
      std::printf("  faults injected: net.read eintr=%lld, net.write "
                  "short=%lld (every response still 200, none dropped)\n",
                  static_cast<long long>(failpoint::Fired("net.read")),
                  static_cast<long long>(failpoint::Fired("net.write")));
      failpoint::DisableAll();
    }
    std::printf("\n");
  }

  const double speedup =
      goodput[0] > 0.0 ? goodput[1] / goodput[0] : 0.0;
  std::printf("goodput at p99<=%.0fms: batch1 %.0f qps, continuous %.0f "
              "qps -> %.2fx\n",
              slo_ms, goodput[0], goodput[1], speedup);
  if (chaos) {
    std::printf("goodput under 1%% transient I/O faults: %.0f qps "
                "(%.2fx of fault-free continuous)\n",
                goodput[2], goodput[1] > 0.0 ? goodput[2] / goodput[1] : 0.0);
  }
  if (MaxThreads() <= 1) {
    std::printf("note: single-core host — continuous batching drains its "
                "batch serially here, so ~1x is expected; the win tracks "
                "the core count.\n");
  }
  bench::BenchJson& summary = json.BeginConfig();
  summary.Field("shape", "summary")
      .Field("goodput_batch1_qps", goodput[0])
      .Field("goodput_continuous_qps", goodput[1])
      .Field("speedup", speedup)
      .Field("threads", MaxThreads());
  if (chaos) summary.Field("goodput_continuous_chaos_qps", goodput[2]);
  json.Write();
  return 0;
}

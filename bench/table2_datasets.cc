// Regenerates Table II: statistics and properties of the seven datasets.
// Always runs at full scale (generation is cheap); compares the synthetic
// twins' realised statistics against the paper's targets.

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

void Run() {
  PrintBanner("Table II: dataset statistics",
              "Sec. V-A, Table II (paper targets in parentheses)");
  PrintRow("Dataset", {"#Nodes", "#Edges", "#Features", "#Classes",
                       "H (got)", "H (paper)"},
           12, 12);
  std::printf("%s\n", std::string(12 + 6 * 12, '-').c_str());
  for (const auto& name : data::ListDatasets()) {
    const data::DatasetSpec spec = *data::GetDatasetSpec(name);
    const data::Dataset ds = *data::MakeDataset(name, /*seed=*/1);
    PrintRow(name,
             {StrFormat("%lld", static_cast<long long>(ds.num_nodes())),
              StrFormat("%lld", static_cast<long long>(ds.graph.num_edges())),
              StrFormat("%lld", static_cast<long long>(ds.num_features())),
              StrFormat("%lld", static_cast<long long>(ds.num_classes)),
              StrFormat("%.2f", ds.Homophily()),
              StrFormat("%.2f", spec.homophily)},
             12, 12);
  }
  std::printf(
      "\nNote: synthetic twins (DESIGN.md S4). Counts are planted exactly;\n"
      "edge homophily is planted up to rounding.\n");
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Regenerates Figure 8: visualisation of the node relative entropy between
// node pairs on Wisconsin and Cora, with nodes grouped by label. The paper
// shows a heatmap whose same-label diagonal blocks are darkest; here each
// label-block's mean entropy is printed as a matrix plus an ASCII shade map.
//
// Shape expectation: diagonal (same-label) blocks have the highest mean
// relative entropy — the basis for connecting high-entropy pairs under the
// homophily assumption.

#include <algorithm>

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

void RunDataset(const std::string& name) {
  data::Dataset ds = LoadBenchDataset(name);
  // Cap the node count for the dense pairwise matrix.
  const int64_t n = std::min<int64_t>(ds.num_nodes(), 1200);
  if (n < ds.num_nodes()) {
    std::printf("(%s subsampled to %lld nodes for the dense matrix)\n",
                name.c_str(), static_cast<long long>(n));
  }
  // Restrict to the first n nodes (generator assigns labels uniformly, so
  // the prefix is label-balanced in expectation).
  std::vector<graph::Edge> edges;
  for (const auto& [u, v] : ds.graph.edges()) {
    if (u < n && v < n) edges.emplace_back(u, v);
  }
  graph::Graph sub = graph::Graph::FromEdgeListOrDie(n, edges);
  tensor::Tensor feats(n, ds.num_features());
  for (int64_t i = 0; i < n; ++i) {
    std::copy(ds.features.row(i), ds.features.row(i) + ds.num_features(),
              feats.row(i));
  }

  entropy::EntropyOptions opts;
  const tensor::Tensor m = entropy::DenseRelativeEntropyMatrix(sub, feats, opts);

  const int64_t c = ds.num_classes;
  std::vector<std::vector<double>> block_sum(
      static_cast<size_t>(c), std::vector<double>(static_cast<size_t>(c), 0.0));
  std::vector<std::vector<int64_t>> block_n(
      static_cast<size_t>(c), std::vector<int64_t>(static_cast<size_t>(c), 0));
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t u = 0; u < n; ++u) {
      if (u == v) continue;
      const auto cv = static_cast<size_t>(ds.labels[static_cast<size_t>(v)]);
      const auto cu = static_cast<size_t>(ds.labels[static_cast<size_t>(u)]);
      block_sum[cv][cu] += m.at(v, u);
      block_n[cv][cu]++;
    }
  }

  std::printf("\n%s: mean relative entropy per label block\n", name.c_str());
  std::printf("%8s", "");
  for (int64_t j = 0; j < c; ++j) std::printf(" label%-2lld", static_cast<long long>(j + 1));
  std::printf("\n");
  double mn = 1e30, mx = -1e30;
  std::vector<std::vector<double>> mean(
      static_cast<size_t>(c), std::vector<double>(static_cast<size_t>(c)));
  for (int64_t i = 0; i < c; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      mean[i][j] = block_sum[i][j] / std::max<int64_t>(1, block_n[i][j]);
      mn = std::min(mn, mean[i][j]);
      mx = std::max(mx, mean[i][j]);
    }
  }
  const char* shades = " .:-=+*#%@";
  double diag = 0.0, off = 0.0;
  int64_t n_diag = 0, n_off = 0;
  for (int64_t i = 0; i < c; ++i) {
    std::printf("label%-2lld ", static_cast<long long>(i + 1));
    for (int64_t j = 0; j < c; ++j) {
      std::printf(" %6.3f ", mean[i][j]);
      if (i == j) {
        diag += mean[i][j];
        ++n_diag;
      } else {
        off += mean[i][j];
        ++n_off;
      }
    }
    std::printf("  |");
    for (int64_t j = 0; j < c; ++j) {
      const int shade = static_cast<int>(
          9.0 * (mean[i][j] - mn) / std::max(1e-12, mx - mn) + 0.5);
      std::printf("%c%c", shades[shade], shades[shade]);
    }
    std::printf("|\n");
  }
  std::printf("same-label mean: %.4f   cross-label mean: %.4f   -> %s\n",
              diag / n_diag, off / n_off,
              diag / n_diag > off / n_off
                  ? "same-label pairs have higher entropy (matches Fig. 8)"
                  : "UNEXPECTED: same-label blocks not dominant");
}

void Run() {
  PrintBanner("Figure 8: relative-entropy visualisation by label blocks",
              "Sec. V-J, Fig. 8 (Wisconsin, Cora)");
  RunDataset("wisconsin");
  RunDataset("cora");
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

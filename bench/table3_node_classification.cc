// Regenerates Table III: node-classification accuracy (mean ± std over
// random splits) for the baseline family and the four GraphRARE-enhanced
// models, plus the per-backbone improvement rows.
//
// Shape expectations vs the paper: every X-RARE model beats its backbone X
// on the heterophilic datasets; gains shrink but stay non-negative on
// homophilic Cora/Pubmed; the RARE family is competitive with the rewiring
// SOTA (UGCN*, SimP-GCN*).

#include <map>

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

const char* kDatasets[] = {"chameleon", "squirrel", "cornell", "texas",
                           "wisconsin", "cora", "pubmed"};

struct Row {
  std::string name;
  std::map<std::string, core::RunStats> cells;
  double average = 0.0;
};

Row MakeRow(const std::string& name) {
  Row r;
  r.name = name;
  return r;
}

void FinishRow(Row* row) {
  double sum = 0.0;
  for (const char* ds : kDatasets) sum += row->cells[ds].mean;
  row->average = sum / 7.0;
}

void PrintTable(const std::vector<Row>& rows) {
  std::vector<std::string> header = {"Method"};
  PrintRow("Method",
           {"Chameleon", "Squirrel", "Cornell", "Texas", "Wisconsin", "Cora",
            "Pubmed", "Average"},
           22, 13);
  std::printf("%s\n", std::string(22 + 8 * 13, '-').c_str());
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    for (const char* ds : kDatasets) {
      cells.push_back(AccCell(row.cells.at(ds)));
    }
    cells.push_back(StrFormat("%5.2f", 100.0 * row.average));
    PrintRow(row.name, cells, 22, 13);
  }
}

void Run() {
  PrintBanner("Table III: node classification accuracy",
              "Sec. V-D, Table III");

  const nn::BackboneKind baseline_kinds[] = {
      nn::BackboneKind::kMlp,    nn::BackboneKind::kGcn,
      nn::BackboneKind::kSage,   nn::BackboneKind::kGat,
      nn::BackboneKind::kMixHop, nn::BackboneKind::kH2Gcn};
  const char* baseline_names[] = {"MLP",    "GCN", "GraphSAGE",
                                  "GAT",    "MixHop", "H2GCN"};
  const nn::BackboneKind rare_kinds[] = {
      nn::BackboneKind::kGcn, nn::BackboneKind::kSage, nn::BackboneKind::kGat,
      nn::BackboneKind::kH2Gcn};
  const char* rare_names[] = {"GCN-RARE", "GraphSAGE-RARE", "GAT-RARE",
                              "H2GCN-RARE"};

  std::vector<Row> rows;
  for (const char* n : baseline_names) rows.push_back(MakeRow(n));
  rows.push_back(MakeRow("UGCN*"));
  rows.push_back(MakeRow("SimP-GCN*"));
  for (const char* n : rare_names) rows.push_back(MakeRow(n));

  std::map<std::string, std::map<std::string, double>> backbone_means;

  for (const char* ds_name : kDatasets) {
    std::fprintf(stderr, "[table3] dataset %s...\n", ds_name);
    const data::Dataset ds = LoadBenchDataset(ds_name);
    const auto splits = BenchSplits(ds);
    const core::ExperimentOptions exp_opts = BenchBaselineOptions();

    // Backbone baselines.
    for (size_t i = 0; i < 6; ++i) {
      const auto agg = core::RunBackbone(ds, splits, baseline_kinds[i],
                                         exp_opts);
      rows[i].cells[ds_name] = agg.accuracy;
      backbone_means[baseline_names[i]][ds_name] = agg.accuracy.mean;
    }

    // UGCN*: GCN on the feature-kNN union graph.
    core::KnnGraphOptions knn_opts;
    knn_opts.k = 5;
    const graph::Graph ugcn_graph = core::BuildUgcnStarGraph(ds, knn_opts);
    rows[6].cells[ds_name] =
        core::RunBackbone(ds, splits, nn::BackboneKind::kGcn, exp_opts,
                          &ugcn_graph)
            .accuracy;

    // SimP-GCN*: learned blend of adjacency and kNN operator.
    const graph::Graph knn_graph = core::BuildKnnGraph(ds.features, knn_opts);
    auto knn_op = knn_graph.NormalizedAdjacency();
    rows[7].cells[ds_name] =
        core::RunCustomModel(
            ds, splits,
            [&](uint64_t seed) {
              nn::ModelOptions mo;
              mo.in_features = ds.num_features();
              mo.hidden = exp_opts.hidden;
              mo.num_classes = ds.num_classes;
              mo.dropout = exp_opts.dropout;
              mo.seed = seed;
              return std::make_unique<core::SimpGcnStarModel>(mo, knn_op);
            },
            exp_opts)
            .accuracy;

    // GraphRARE-enhanced models.
    for (size_t i = 0; i < 4; ++i) {
      core::GraphRareOptions rare = BenchRareOptions(rare_kinds[i]);
      const auto agg = core::RunGraphRare(ds, splits, rare);
      rows[8 + i].cells[ds_name] = agg.accuracy;
    }
  }
  for (auto& row : rows) FinishRow(&row);
  PrintTable(rows);

  // Improvement rows (paper's up-arrows).
  std::printf("\nImprovement of X-RARE over backbone X (percentage points):\n");
  const char* backbone_of_rare[] = {"GCN", "GraphSAGE", "GAT", "H2GCN"};
  for (size_t i = 0; i < 4; ++i) {
    std::vector<std::string> cells;
    for (const char* ds : kDatasets) {
      const double delta = 100.0 * (rows[8 + i].cells[ds].mean -
                                    backbone_means[backbone_of_rare[i]][ds]);
      cells.push_back(StrFormat("%+5.2f", delta));
    }
    PrintRow(rows[8 + i].name, cells, 22, 13);
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Regenerates Table VI: real running time on the five heterophilic datasets
// — mean training time per epoch for the backbones, a rewiring SOTA
// (SimP-GCN*), and the RARE-enhanced models, plus the one-off relative
// entropy computation time.
//
// Absolute numbers differ from the paper (CPU + this tensor engine vs an
// A100 + PyTorch); the *relative* structure should hold: RARE variants cost
// a constant factor over their backbones, entropy cost scales steeply with
// graph size/density (Squirrel >> Chameleon >> WebKB), and the total stays
// comparable to SOTA rewiring baselines.

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

const char* kDatasets[] = {"chameleon", "squirrel", "cornell", "texas",
                           "wisconsin"};

double TimeBackboneEpoch(const data::Dataset& ds, const data::Split& split,
                         nn::BackboneKind kind, int epochs) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 1;
  auto model = nn::MakeModel(kind, mo);
  nn::ClassifierTrainer::Options to;
  to.adam.lr = 0.01f;
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, to);
  Stopwatch watch;
  for (int e = 0; e < epochs; ++e) trainer.TrainEpoch(ds.graph, split.train);
  return watch.ElapsedSeconds() / epochs;
}

void Run() {
  PrintBanner("Table VI: real running time (seconds)",
              "Sec. V-G, Table VI — per-epoch mean training time; entropy "
              "computed once before training");

  const int epochs = core::BenchFullScale() ? 100 : 20;

  std::vector<data::Dataset> datasets;
  std::vector<data::Split> splits;
  for (const char* name : kDatasets) {
    datasets.push_back(LoadBenchDataset(name));
    splits.push_back(BenchSplits(datasets.back(), 1)[0]);
  }

  PrintRow("Method", {"Chameleon", "Squirrel", "Cornell", "Texas",
                      "Wisconsin"},
           24, 12);
  std::printf("%s\n", std::string(24 + 5 * 12, '-').c_str());

  // Plain backbones.
  const nn::BackboneKind kinds[] = {nn::BackboneKind::kGcn,
                                    nn::BackboneKind::kGat,
                                    nn::BackboneKind::kSage,
                                    nn::BackboneKind::kH2Gcn};
  const char* names[] = {"GCN", "GAT", "GraphSAGE", "H2GCN"};
  for (size_t m = 0; m < 4; ++m) {
    std::vector<std::string> cells;
    for (size_t d = 0; d < 5; ++d) {
      std::fprintf(stderr, "[table6] %s %s...\n", names[m], kDatasets[d]);
      cells.push_back(StrFormat(
          "%.4f", TimeBackboneEpoch(datasets[d], splits[d], kinds[m],
                                    epochs)));
    }
    PrintRow(names[m], cells, 24, 12);
  }

  // SimP-GCN* (SOTA rewiring baseline).
  {
    std::vector<std::string> cells;
    for (size_t d = 0; d < 5; ++d) {
      const data::Dataset& ds = datasets[d];
      core::KnnGraphOptions knn_opts;
      knn_opts.k = 5;
      const graph::Graph knn = core::BuildKnnGraph(ds.features, knn_opts);
      nn::ModelOptions mo;
      mo.in_features = ds.num_features();
      mo.hidden = 64;
      mo.num_classes = ds.num_classes;
      mo.seed = 1;
      core::SimpGcnStarModel model(mo, knn.NormalizedAdjacency());
      nn::ClassifierTrainer trainer(&model,
                                    nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                    &ds.labels, {});
      Stopwatch watch;
      for (int e = 0; e < epochs; ++e) {
        trainer.TrainEpoch(ds.graph, splits[d].train);
      }
      cells.push_back(StrFormat("%.4f", watch.ElapsedSeconds() / epochs));
    }
    PrintRow("SimP-GCN* [SOTA]", cells, 24, 12);
  }

  // RARE-enhanced models: amortised per-epoch cost of the co-training loop.
  const char* rare_names[] = {"GCN-RARE", "GAT-RARE", "GraphSAGE-RARE",
                              "H2GCN-RARE"};
  const nn::BackboneKind rare_kinds[] = {
      nn::BackboneKind::kGcn, nn::BackboneKind::kGat, nn::BackboneKind::kSage,
      nn::BackboneKind::kH2Gcn};
  std::vector<double> entropy_seconds(5, 0.0);
  for (size_t m = 0; m < 4; ++m) {
    std::vector<std::string> cells;
    for (size_t d = 0; d < 5; ++d) {
      std::fprintf(stderr, "[table6] %s %s...\n", rare_names[m], kDatasets[d]);
      core::GraphRareOptions opts = BenchRareOptions(rare_kinds[m]);
      const auto agg =
          core::RunGraphRare(datasets[d], {splits[d]}, opts);
      cells.push_back(StrFormat("%.4f", agg.seconds_per_epoch));
      entropy_seconds[d] = agg.mean_entropy_seconds;
    }
    PrintRow(rare_names[m], cells, 24, 12);
  }

  // One-off entropy computation row.
  {
    std::vector<std::string> cells;
    for (size_t d = 0; d < 5; ++d) {
      cells.push_back(StrFormat("%.4f", entropy_seconds[d]));
    }
    PrintRow("Entropy Computation", cells, 24, 12);
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

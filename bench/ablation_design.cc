// Extra ablations on *this implementation's* design choices (documented in
// DESIGN.md §5), beyond the paper's Table V:
//
//   1. Candidate sources for the entropy sequences: 2-hop only, random
//      remote only, or both (the default). The paper only says sequences
//      "can be constructed flexibly to cover the whole graph".
//   2. PPO importance-ratio factorisation: per-node (default, bounded
//      ratios) vs a single joint ratio per step (strict SB3 MultiDiscrete
//      semantics).
//   3. Feature-embedding projection dimension for the feature entropy
//      (random projection width; 0 = raw features).

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

void Run() {
  PrintBanner("Design-choice ablations (DESIGN.md section 5)",
              "implementation ablations; no direct paper counterpart");

  const char* kDatasets[] = {"chameleon", "cornell", "wisconsin"};
  std::vector<data::Dataset> datasets;
  std::vector<std::vector<data::Split>> splits;
  for (const char* name : kDatasets) {
    datasets.push_back(LoadBenchDataset(name));
    splits.push_back(BenchSplits(datasets.back(), /*quick_splits=*/1));
  }

  auto run_all = [&](const core::GraphRareOptions& opts) {
    std::vector<std::string> cells;
    for (size_t d = 0; d < 3; ++d) {
      const auto agg = core::RunGraphRare(datasets[d], splits[d], opts);
      cells.push_back(AccCell(agg.accuracy));
    }
    return cells;
  };
  auto base = [] { return BenchRareOptions(nn::BackboneKind::kGcn); };

  PrintRow("Variant", {"Chameleon", "Cornell", "Wisconsin"}, 32, 14);
  std::printf("%s\n", std::string(32 + 3 * 14, '-').c_str());

  // 1. Candidate sources.
  {
    core::GraphRareOptions two_hop_only = base();
    two_hop_only.entropy.num_random_candidates = 0;
    PrintRow("candidates: 2-hop only", run_all(two_hop_only), 32, 14);

    core::GraphRareOptions random_only = base();
    random_only.entropy.max_two_hop_candidates = 0;
    random_only.entropy.num_random_candidates = 32;
    PrintRow("candidates: random only", run_all(random_only), 32, 14);

    PrintRow("candidates: 2-hop + random", run_all(base()), 32, 14);
  }

  // 2. PPO ratio factorisation.
  {
    core::GraphRareOptions joint = base();
    joint.ppo.joint_ratio = true;
    PrintRow("ppo: joint ratio (SB3)", run_all(joint), 32, 14);
    PrintRow("ppo: per-node ratio", run_all(base()), 32, 14);
  }

  // 3. Embedding projection width.
  for (int64_t dim : {0, 16, 64, 256}) {
    core::GraphRareOptions opts = base();
    opts.entropy.embedding.projection_dim = dim;
    PrintRow(dim == 0 ? std::string("embedding: raw features")
                      : StrFormat("embedding: proj dim %lld",
                                  static_cast<long long>(dim)),
             run_all(opts), 32, 14);
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

// Mini-batch vs full-graph training scaling. Generates synthetic graphs of
// increasing size (GeneratorOptions-scaled, >= 100k nodes) and reports
// epoch time, peak RSS, mean sampled-block size, and test accuracy for the
// neighbor-sampled pipeline against full-graph training.
//
// Full-graph training runs only on the smallest configuration: beyond that
// its per-step memory and latency scale with the whole adjacency, which is
// exactly the bottleneck the sampler removes, so larger sizes run the
// mini-batch path only (the skip is printed, not silent).
//
// Quick mode: 10k and 100k nodes. GRARE_BENCH_FULL=1 adds 300k.

#include <algorithm>

#include "bench/bench_util.h"
#include "core/graphrare.h"

namespace graphrare {
namespace bench {
namespace {

data::Dataset MakeScaledDataset(int64_t num_nodes, uint64_t seed) {
  data::GeneratorOptions o;
  o.name = StrFormat("synthetic-%lldk",
                     static_cast<long long>(num_nodes / 1000));
  o.num_nodes = num_nodes;
  o.num_edges = 3 * num_nodes;
  o.num_features = 128;
  o.num_classes = 4;
  o.homophily = 0.6;
  o.feature_signal = 8.0;
  o.feature_density = 0.05;
  o.seed = seed;
  auto result = data::GenerateDataset(o);
  GR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

struct PathReport {
  bool ran = false;
  double seconds_per_epoch = 0.0;
  double test_accuracy = 0.0;
  double peak_rss_mib = 0.0;
  int64_t mean_block_nodes = 0;  ///< sampled path only
};

/// Drives sampler + TrainBatch directly (not FitMiniBatch): epoch timing
/// and the peak-RSS reading must cover *only* the sampled training steps —
/// a full-graph validation forward per epoch would re-inflate both and the
/// table would no longer measure the block-vs-adjacency decoupling. The
/// full-graph test evaluation runs after the RSS reading.
PathReport RunMiniBatch(const data::Dataset& ds, const data::Split& split,
                        int max_epochs) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::MiniBatchTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               to);

  data::SamplerOptions so;
  so.fanouts = {10, 10};
  so.seed = 21;
  data::NeighborSampler sampler(&ds.graph, so);
  Rng shuffle_rng(7);
  int64_t total_block_nodes = 0;
  int64_t num_blocks = 0;
  Stopwatch watch;
  for (int epoch = 0; epoch < max_epochs; ++epoch) {
    const auto batches = data::NeighborSampler::MakeBatches(
        split.train, /*batch_size=*/1024, /*shuffle=*/true, &shuffle_rng);
    for (const auto& batch : batches) {
      const graph::Subgraph block = sampler.SampleBlock(batch);
      total_block_nodes += block.num_nodes();
      ++num_blocks;
      trainer.TrainBatch(block);
    }
  }
  PathReport report;
  report.ran = true;
  report.seconds_per_epoch = watch.ElapsedSeconds() / max_epochs;
  report.peak_rss_mib = PeakRssMiB();
  report.mean_block_nodes = total_block_nodes / std::max<int64_t>(1, num_blocks);
  report.test_accuracy = trainer.Evaluate(ds.graph, split.test).accuracy;
  return report;
}

PathReport RunFullGraph(const data::Dataset& ds, const data::Split& split,
                        int max_epochs) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::ClassifierTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, to);
  Stopwatch watch;
  const nn::FitResult fit = trainer.Fit(ds.graph, split.train, split.val,
                                        max_epochs, max_epochs);
  PathReport report;
  report.ran = true;
  report.seconds_per_epoch =
      watch.ElapsedSeconds() / std::max(1, fit.epochs_run);
  report.test_accuracy = trainer.Evaluate(ds.graph, split.test).accuracy;
  report.peak_rss_mib = PeakRssMiB();
  return report;
}

}  // namespace

int Main() {
  PrintBanner("mini-batch neighbor-sampled scaling",
              "beyond-paper: production-scale training pipeline");

  std::vector<int64_t> sizes = {10000, 100000};
  if (core::BenchFullScale()) sizes.push_back(300000);
  // Full-graph training only below this size; above it, per-step cost
  // scales with the entire adjacency and the run is skipped on purpose.
  const int64_t full_graph_max_nodes = 10000;
  const int epochs_small = 20;
  const int epochs_large = 2;

  PrintRow("nodes", {"path", "s/epoch", "test acc", "peak RSS", "blk nodes"},
           12, 12);
  BenchJson json("minibatch_scaling");
  double acc_full_10k = -1.0;
  double acc_mini_10k = -1.0;
  for (const int64_t n : sizes) {
    data::Dataset ds = MakeScaledDataset(n, /*seed=*/5);
    data::SplitOptions so;
    so.num_splits = 1;
    so.seed = 11;
    const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
    const int epochs = n <= full_graph_max_nodes ? epochs_small
                                                 : epochs_large;

    // Mini-batch first so its peak-RSS reading is not inflated by the
    // full-graph pass (ru_maxrss is monotonic across the process).
    const PathReport mini = RunMiniBatch(ds, splits[0], epochs);
    PrintRow(StrFormat("%lld", static_cast<long long>(n)),
             {"sampled", StrFormat("%.3f", mini.seconds_per_epoch),
              StrFormat("%.2f%%", 100.0 * mini.test_accuracy),
              StrFormat("%.0f MiB", mini.peak_rss_mib),
              StrFormat("%lld", static_cast<long long>(
                                    mini.mean_block_nodes))},
             12, 12);
    json.BeginConfig()
        .Field("nodes", n)
        .Field("path", "sampled")
        .Field("epochs", epochs)
        .Field("seconds_per_epoch", mini.seconds_per_epoch)
        .Field("test_accuracy", mini.test_accuracy)
        .Field("peak_rss_mib", mini.peak_rss_mib)
        .Field("mean_block_nodes", mini.mean_block_nodes);
    if (n == 10000) acc_mini_10k = mini.test_accuracy;

    if (n <= full_graph_max_nodes) {
      const PathReport full = RunFullGraph(ds, splits[0], epochs);
      PrintRow("", {"full", StrFormat("%.3f", full.seconds_per_epoch),
                    StrFormat("%.2f%%", 100.0 * full.test_accuracy),
                    StrFormat("%.0f MiB", full.peak_rss_mib), "-"},
               12, 12);
      json.BeginConfig()
          .Field("nodes", n)
          .Field("path", "full")
          .Field("epochs", epochs)
          .Field("seconds_per_epoch", full.seconds_per_epoch)
          .Field("test_accuracy", full.test_accuracy)
          .Field("peak_rss_mib", full.peak_rss_mib);
      if (n == 10000) acc_full_10k = full.test_accuracy;
    } else {
      PrintRow("", {"full", "skipped", "-", "-", "-"}, 12, 12);
      std::printf("    (full-graph training skipped at %lld nodes: "
                  "per-step memory/latency scale with the whole "
                  "adjacency)\n",
                  static_cast<long long>(n));
      json.BeginConfig()
          .Field("nodes", n)
          .Field("path", "full")
          .Field("skipped", true);
    }
  }

  if (acc_full_10k >= 0.0 && acc_mini_10k >= 0.0) {
    std::printf("\n10k-node accuracy gap (full - sampled): %.2f points\n",
                100.0 * (acc_full_10k - acc_mini_10k));
  }
  json.Write();
  return 0;
}

}  // namespace bench
}  // namespace graphrare

int main() { return graphrare::bench::Main(); }

// Copyright 2026 The GraphRARE Authors.
//
// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Default ("quick") mode shrinks the dense datasets and the
// split counts so the whole suite finishes in minutes on a laptop CPU; set
// GRARE_BENCH_FULL=1 for the paper-scale protocol.

#ifndef GRAPHRARE_BENCH_BENCH_UTIL_H_
#define GRAPHRARE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/graphrare.h"

namespace graphrare {
namespace bench {

/// Per-dataset shrink factors for quick mode (1 = full scale). The dense
/// wiki graphs and Pubmed dominate runtime, so they shrink hardest.
inline int64_t QuickShrinkFor(const std::string& name) {
  if (!core::BenchFullScale()) {
    if (name == "chameleon") return 2;
    if (name == "squirrel") return 6;
    if (name == "pubmed") return 6;
    if (name == "cora") return 2;
  }
  return 1;
}

/// Loads a registry dataset at bench scale.
inline data::Dataset LoadBenchDataset(const std::string& name,
                                      uint64_t seed = 1) {
  const int64_t shrink = core::BenchFullScale() ? 1 : QuickShrinkFor(name);
  auto result = data::MakeDatasetScaled(name, shrink, seed);
  GR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Standard splits for a dataset at bench scale.
inline std::vector<data::Split> BenchSplits(const data::Dataset& ds,
                                            int quick_splits = 2) {
  data::SplitOptions so;
  so.num_splits = core::BenchNumSplits(10, quick_splits);
  return data::MakeSplits(ds.labels, ds.num_classes, so);
}

/// GraphRARE options tuned for bench scale.
inline core::GraphRareOptions BenchRareOptions(nn::BackboneKind backbone) {
  core::GraphRareOptions opts;
  opts.backbone = backbone;
  opts.adam.lr = 0.01f;
  opts.adam.weight_decay = 5e-5f;
  opts.seed = 7;  // same per-split model-init seeds as the baselines
  // Pretraining gets the same supervised budget as the baseline fits so
  // accuracy deltas isolate the topology optimization, not training time.
  if (core::BenchFullScale()) {
    opts.iterations = 40;
    opts.pretrain_epochs = 200;
    opts.pretrain_patience = 30;
    opts.finetune_epochs = 8;
  } else {
    opts.iterations = 24;
    opts.pretrain_epochs = 100;
    opts.pretrain_patience = 20;
    opts.finetune_epochs = 6;
  }
  opts.ppo.steps_per_update = 6;
  return opts;
}

/// Baseline fit budget at bench scale.
inline core::ExperimentOptions BenchBaselineOptions() {
  core::ExperimentOptions opts;
  if (core::BenchFullScale()) {
    opts.max_epochs = 200;
    opts.patience = 30;
  } else {
    opts.max_epochs = 100;
    opts.patience = 20;
  }
  return opts;
}

/// "85.16 ±1.01"-style cell.
inline std::string AccCell(const core::RunStats& s) {
  return StrFormat("%5.2f ±%.2f", 100.0 * s.mean, 100.0 * s.stddev);
}

/// Header banner shared by all benches.
inline void PrintBanner(const char* experiment, const char* paper_ref) {
  std::printf("=======================================================\n");
  std::printf("GraphRARE reproduction — %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("Mode: %s (set GRARE_BENCH_FULL=1 for paper-scale)\n",
              core::BenchFullScale() ? "FULL" : "QUICK");
  std::printf("=======================================================\n\n");
}

/// Row printer: name column + cells.
inline void PrintRow(const std::string& name,
                     const std::vector<std::string>& cells,
                     size_t name_width = 24, size_t cell_width = 14) {
  std::printf("%s", PadRight(name, name_width).c_str());
  for (const auto& c : cells) std::printf("%s", PadLeft(c, cell_width).c_str());
  std::printf("\n");
}

}  // namespace bench
}  // namespace graphrare

#endif  // GRAPHRARE_BENCH_BENCH_UTIL_H_

// Copyright 2026 The GraphRARE Authors.
//
// Shared helpers for the bench binaries that regenerate the paper's tables
// and figures. Default ("quick") mode shrinks the dense datasets and the
// split counts so the whole suite finishes in minutes on a laptop CPU; set
// GRARE_BENCH_FULL=1 for the paper-scale protocol.

#ifndef GRAPHRARE_BENCH_BENCH_UTIL_H_
#define GRAPHRARE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/graphrare.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace graphrare {
namespace bench {

/// Peak resident set size in MiB (0 when the platform has no getrusage).
/// Monotonic across the process: read it before running a second,
/// heavier path or the first path's figure is inflated.
inline double PeakRssMiB() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

/// Per-dataset shrink factors for quick mode (1 = full scale). The dense
/// wiki graphs and Pubmed dominate runtime, so they shrink hardest.
inline int64_t QuickShrinkFor(const std::string& name) {
  if (!core::BenchFullScale()) {
    if (name == "chameleon") return 2;
    if (name == "squirrel") return 6;
    if (name == "pubmed") return 6;
    if (name == "cora") return 2;
  }
  return 1;
}

/// Loads a registry dataset at bench scale.
inline data::Dataset LoadBenchDataset(const std::string& name,
                                      uint64_t seed = 1) {
  const int64_t shrink = core::BenchFullScale() ? 1 : QuickShrinkFor(name);
  auto result = data::MakeDatasetScaled(name, shrink, seed);
  GR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Standard splits for a dataset at bench scale.
inline std::vector<data::Split> BenchSplits(const data::Dataset& ds,
                                            int quick_splits = 2) {
  data::SplitOptions so;
  so.num_splits = core::BenchNumSplits(10, quick_splits);
  return data::MakeSplits(ds.labels, ds.num_classes, so);
}

/// GraphRARE options tuned for bench scale.
inline core::GraphRareOptions BenchRareOptions(nn::BackboneKind backbone) {
  core::GraphRareOptions opts;
  opts.backbone = backbone;
  opts.adam.lr = 0.01f;
  opts.adam.weight_decay = 5e-5f;
  opts.seed = 7;  // same per-split model-init seeds as the baselines
  // Pretraining gets the same supervised budget as the baseline fits so
  // accuracy deltas isolate the topology optimization, not training time.
  if (core::BenchFullScale()) {
    opts.iterations = 40;
    opts.pretrain_epochs = 200;
    opts.pretrain_patience = 30;
    opts.finetune_epochs = 8;
  } else {
    opts.iterations = 24;
    opts.pretrain_epochs = 100;
    opts.pretrain_patience = 20;
    opts.finetune_epochs = 6;
  }
  opts.ppo.steps_per_update = 6;
  return opts;
}

/// Baseline fit budget at bench scale.
inline core::ExperimentOptions BenchBaselineOptions() {
  core::ExperimentOptions opts;
  if (core::BenchFullScale()) {
    opts.max_epochs = 200;
    opts.patience = 30;
  } else {
    opts.max_epochs = 100;
    opts.patience = 20;
  }
  return opts;
}

/// "85.16 ±1.01"-style cell.
inline std::string AccCell(const core::RunStats& s) {
  return StrFormat("%5.2f ±%.2f", 100.0 * s.mean, 100.0 * s.stddev);
}

/// Header banner shared by all benches.
inline void PrintBanner(const char* experiment, const char* paper_ref) {
  std::printf("=======================================================\n");
  std::printf("GraphRARE reproduction — %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_ref);
  std::printf("Mode: %s (set GRARE_BENCH_FULL=1 for paper-scale)\n",
              core::BenchFullScale() ? "FULL" : "QUICK");
  std::printf("=======================================================\n\n");
}

/// Row printer: name column + cells.
inline void PrintRow(const std::string& name,
                     const std::vector<std::string>& cells,
                     size_t name_width = 24, size_t cell_width = 14) {
  std::printf("%s", PadRight(name, name_width).c_str());
  for (const auto& c : cells) std::printf("%s", PadLeft(c, cell_width).c_str());
  std::printf("\n");
}

/// Machine-readable bench output: accumulates per-config records and writes
/// BENCH_<name>.json next to the binary's working directory, so the perf
/// trajectory (epoch time, peak RSS, accuracy, ...) is tracked across PRs
/// instead of living only in stdout tables. Format:
///   {"bench": "<name>", "full_scale": 0|1,
///    "configs": [{"key": value, ...}, ...]}
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Starts a new config record; subsequent Field calls attach to it.
  BenchJson& BeginConfig() {
    configs_.emplace_back();
    return *this;
  }
  BenchJson& Field(const std::string& key, const std::string& value) {
    return Raw(key, StrFormat("\"%s\"", Escape(value).c_str()));
  }
  BenchJson& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  BenchJson& Field(const std::string& key, double value) {
    return Raw(key, StrFormat("%.6g", value));
  }
  BenchJson& Field(const std::string& key, int64_t value) {
    return Raw(key, StrFormat("%lld", static_cast<long long>(value)));
  }
  BenchJson& Field(const std::string& key, int value) {
    return Field(key, static_cast<int64_t>(value));
  }
  BenchJson& Field(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  /// Writes BENCH_<name>.json (path printed). Returns false on I/O error.
  bool Write() const {
    const std::string path = StrFormat("BENCH_%s.json", name_.c_str());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"full_scale\": %d, \"configs\": [",
                 Escape(name_).c_str(), core::BenchFullScale() ? 1 : 0);
    for (size_t c = 0; c < configs_.size(); ++c) {
      std::fprintf(f, "%s{", c == 0 ? "" : ", ");
      for (size_t i = 0; i < configs_[c].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     Escape(configs_[c][i].first).c_str(),
                     configs_[c][i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nmachine-readable results written to %s\n", path.c_str());
    return true;
  }

 private:
  BenchJson& Raw(const std::string& key, std::string json_value) {
    GR_CHECK(!configs_.empty()) << "BenchJson: Field before BeginConfig";
    configs_.back().emplace_back(key, std::move(json_value));
    return *this;
  }
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> configs_;
};

}  // namespace bench
}  // namespace graphrare

#endif  // GRAPHRARE_BENCH_BENCH_UTIL_H_

// google-benchmark microbenchmarks of the library's hot kernels: dense
// matmul, SpMM, GCN forward/backward, relative-entropy construction, graph
// editing, and one PPO update. These back the Table VI timing analysis at
// kernel granularity.

#include <benchmark/benchmark.h>

#include "core/graphrare.h"

namespace graphrare {
namespace {

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<tensor::CooEntry> entries;
  for (int64_t i = 0; i < n * 8; ++i) {
    entries.push_back({static_cast<int64_t>(rng.UniformInt(n)),
                       static_cast<int64_t>(rng.UniformInt(n)), 1.0f});
  }
  auto m = tensor::CsrMatrix::FromCoo(n, n, std::move(entries));
  tensor::Tensor x = tensor::Tensor::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SpMM(x));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(5000)->Arg(20000);

data::Dataset BenchDataset(int64_t nodes) {
  data::GeneratorOptions o;
  o.num_nodes = nodes;
  o.num_edges = nodes * 4;
  o.num_features = 256;
  o.num_classes = 5;
  o.homophily = 0.25;
  o.seed = 3;
  return std::move(data::GenerateDataset(o)).value();
}

void BM_GcnEpoch(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  auto splits = data::MakeSplits(ds.labels, ds.num_classes,
                                 {.num_splits = 1});
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 1;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});
  for (auto _ : state) {
    trainer.TrainEpoch(ds.graph, splits[0].train);
  }
}
BENCHMARK(BM_GcnEpoch)->Arg(500)->Arg(2000)->Arg(8000);

void BM_EntropyIndexBuild(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  for (auto _ : state) {
    auto index = entropy::RelativeEntropyIndex::Build(ds.graph, ds.features,
                                                      {});
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_EntropyIndexBuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_StructuralEntropyPair(benchmark::State& state) {
  data::Dataset ds = BenchDataset(2000);
  entropy::StructuralEntropyCalculator calc(ds.graph);
  Rng rng(4);
  for (auto _ : state) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(2000));
    const int64_t u = static_cast<int64_t>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(calc.Between(v, u));
  }
}
BENCHMARK(BM_StructuralEntropyPair);

void BM_TopologyRebuild(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
  core::TopologyState s(ds.num_nodes(), 5, 5);
  s.SetUniform(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildOptimizedGraph(ds.graph, s, index));
  }
}
BENCHMARK(BM_TopologyRebuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_PpoUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  rl::PpoOptions opts;
  opts.steps_per_update = 4;
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    rl::PpoAgent agent(core::kObservationDim, opts);
    tensor::Tensor obs = tensor::Tensor::Rand(n, core::kObservationDim, &rng);
    for (int i = 0; i < 4; ++i) {
      agent.Act(obs);
      agent.StoreReward(0.1);
    }
    state.ResumeTiming();
    agent.Update(obs);
  }
}
BENCHMARK(BM_PpoUpdate)->Arg(500)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace graphrare

BENCHMARK_MAIN();

// google-benchmark microbenchmarks of the library's hot kernels: dense
// matmul (all three transpose variants), SpMM, GCN forward/backward,
// relative-entropy construction, graph editing, and one PPO update. These
// back the Table VI timing analysis at kernel granularity and feed the
// cross-PR perf trajectory: every run writes BENCH_micro_kernels.json
// (google-benchmark's JSON schema) next to the working directory.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/graphrare.h"

namespace graphrare {
namespace {

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The backward-pass kernels: dW = X^T G (TransA, reduction over the large
// node dimension) and dX = G W^T (TransB). Shapes mimic a dense layer
// backward at n nodes with 256-in/64-out features.
void BM_DenseMatMulTransA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor x = tensor::Tensor::Randn(n, 256, &rng);
  tensor::Tensor g = tensor::Tensor::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMulTransA(x, g));
  }
  state.SetItemsProcessed(state.iterations() * n * 256 * 64);
}
BENCHMARK(BM_DenseMatMulTransA)->Arg(512)->Arg(2000)->Arg(8000);

void BM_DenseMatMulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor g = tensor::Tensor::Randn(n, 64, &rng);
  tensor::Tensor w = tensor::Tensor::Randn(256, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMulTransB(g, w));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 256);
}
BENCHMARK(BM_DenseMatMulTransB)->Arg(512)->Arg(2000)->Arg(8000);

// Fused cross-entropy (log-softmax + NLL in one pass) at training shapes.
void BM_FusedCrossEntropy(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  tensor::Tensor logits_val = tensor::Tensor::Randn(n, 16, &rng);
  std::vector<int64_t> index(static_cast<size_t>(n));
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    index[static_cast<size_t>(i)] = i;
    labels[static_cast<size_t>(i)] =
        static_cast<int64_t>(rng.UniformInt(16));
  }
  for (auto _ : state) {
    tensor::Variable logits(logits_val, /*requires_grad=*/true);
    tensor::Variable loss = tensor::ops::CrossEntropy(logits, index, labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FusedCrossEntropy)->Arg(2000)->Arg(8000);

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<tensor::CooEntry> entries;
  for (int64_t i = 0; i < n * 8; ++i) {
    entries.push_back({static_cast<int64_t>(rng.UniformInt(n)),
                       static_cast<int64_t>(rng.UniformInt(n)), 1.0f});
  }
  auto m = tensor::CsrMatrix::FromCoo(n, n, std::move(entries));
  tensor::Tensor x = tensor::Tensor::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SpMM(x));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(5000)->Arg(20000);

data::Dataset BenchDataset(int64_t nodes) {
  data::GeneratorOptions o;
  o.num_nodes = nodes;
  o.num_edges = nodes * 4;
  o.num_features = 256;
  o.num_classes = 5;
  o.homophily = 0.25;
  o.seed = 3;
  return std::move(data::GenerateDataset(o)).value();
}

void BM_GcnEpoch(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  auto splits = data::MakeSplits(ds.labels, ds.num_classes,
                                 {.num_splits = 1});
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 1;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});
  for (auto _ : state) {
    trainer.TrainEpoch(ds.graph, splits[0].train);
  }
}
BENCHMARK(BM_GcnEpoch)->Arg(500)->Arg(2000)->Arg(8000);

void BM_EntropyIndexBuild(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  for (auto _ : state) {
    auto index = entropy::RelativeEntropyIndex::Build(ds.graph, ds.features,
                                                      {});
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_EntropyIndexBuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_StructuralEntropyPair(benchmark::State& state) {
  data::Dataset ds = BenchDataset(2000);
  entropy::StructuralEntropyCalculator calc(ds.graph);
  Rng rng(4);
  for (auto _ : state) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(2000));
    const int64_t u = static_cast<int64_t>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(calc.Between(v, u));
  }
}
BENCHMARK(BM_StructuralEntropyPair);

void BM_TopologyRebuild(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
  core::TopologyState s(ds.num_nodes(), 5, 5);
  s.SetUniform(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildOptimizedGraph(ds.graph, s, index));
  }
}
BENCHMARK(BM_TopologyRebuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_PpoUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  rl::PpoOptions opts;
  opts.steps_per_update = 4;
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    rl::PpoAgent agent(core::kObservationDim, opts);
    tensor::Tensor obs = tensor::Tensor::Rand(n, core::kObservationDim, &rng);
    for (int i = 0; i < 4; ++i) {
      agent.Act(obs);
      agent.StoreReward(0.1);
    }
    state.ResumeTiming();
    agent.Update(obs);
  }
}
BENCHMARK(BM_PpoUpdate)->Arg(500)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace graphrare

// BENCHMARK_MAIN with JSON output on by default: unless the caller passes
// their own --benchmark_out, the run is also recorded to
// BENCH_micro_kernels.json for the cross-PR perf trajectory (the console
// table is unchanged and every --benchmark_* flag still works).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Match only the output-file flag itself — "--benchmark_out_format"
    // alone must not suppress the default JSON file.
    const std::string arg(argv[i]);
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) {
    std::printf(
        "machine-readable results written to BENCH_micro_kernels.json\n");
  }
  return 0;
}

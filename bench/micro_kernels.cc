// google-benchmark microbenchmarks of the library's hot kernels: dense
// matmul (all three transpose variants), SpMM, GCN forward/backward,
// relative-entropy construction, graph editing, and one PPO update. These
// back the Table VI timing analysis at kernel granularity and feed the
// cross-PR perf trajectory: every run writes BENCH_micro_kernels.json
// (google-benchmark's JSON schema) next to the working directory.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/graphrare.h"
#include "graph/reorder.h"

namespace graphrare {
namespace {

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn(n, n, &rng);
  tensor::Tensor b = tensor::Tensor::Randn(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The backward-pass kernels: dW = X^T G (TransA, reduction over the large
// node dimension) and dX = G W^T (TransB). Shapes mimic a dense layer
// backward at n nodes with 256-in/64-out features.
void BM_DenseMatMulTransA(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor x = tensor::Tensor::Randn(n, 256, &rng);
  tensor::Tensor g = tensor::Tensor::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMulTransA(x, g));
  }
  state.SetItemsProcessed(state.iterations() * n * 256 * 64);
}
BENCHMARK(BM_DenseMatMulTransA)->Arg(512)->Arg(2000)->Arg(8000);

void BM_DenseMatMulTransB(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  tensor::Tensor g = tensor::Tensor::Randn(n, 64, &rng);
  tensor::Tensor w = tensor::Tensor::Randn(256, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMulTransB(g, w));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 256);
}
BENCHMARK(BM_DenseMatMulTransB)->Arg(512)->Arg(2000)->Arg(8000);

// Fused cross-entropy (log-softmax + NLL in one pass) at training shapes.
void BM_FusedCrossEntropy(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  tensor::Tensor logits_val = tensor::Tensor::Randn(n, 16, &rng);
  std::vector<int64_t> index(static_cast<size_t>(n));
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    index[static_cast<size_t>(i)] = i;
    labels[static_cast<size_t>(i)] =
        static_cast<int64_t>(rng.UniformInt(16));
  }
  for (auto _ : state) {
    tensor::Variable logits(logits_val, /*requires_grad=*/true);
    tensor::Variable loss = tensor::ops::CrossEntropy(logits, index, labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_FusedCrossEntropy)->Arg(2000)->Arg(8000);

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  std::vector<tensor::CooEntry> entries;
  for (int64_t i = 0; i < n * 8; ++i) {
    entries.push_back({static_cast<int64_t>(rng.UniformInt(n)),
                       static_cast<int64_t>(rng.UniformInt(n)), 1.0f});
  }
  auto m = tensor::CsrMatrix::FromCoo(n, n, std::move(entries));
  tensor::Tensor x = tensor::Tensor::Randn(n, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SpMM(x));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(1000)->Arg(5000)->Arg(20000);

// Hub-heavy graph with scrambled node ids: endpoint u is drawn from a
// power-law-ish distribution (u ~ n * U^2.5, so a few nodes collect most
// edges), then all ids are shuffled so the hubs are scattered across the
// id space — the worst case for gather locality and the case CSR
// reordering is designed to repair.
graph::Graph SkewedBenchGraph(int64_t n, int64_t num_edges) {
  Rng rng(7);
  std::vector<int64_t> scramble(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) scramble[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    std::swap(scramble[static_cast<size_t>(i)],
              scramble[rng.UniformInt(static_cast<uint64_t>(i) + 1)]);
  }
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges));
  while (static_cast<int64_t>(edges.size()) < num_edges) {
    const int64_t u = static_cast<int64_t>(
        static_cast<double>(n) * std::pow(rng.Uniform(), 2.5));
    const int64_t v = static_cast<int64_t>(rng.UniformInt(n));
    if (u == v || u >= n) continue;
    edges.emplace_back(scramble[static_cast<size_t>(u)],
                       scramble[static_cast<size_t>(v)]);
  }
  return graph::Graph::FromEdgeListOrDie(n, edges);
}

// SpMM over the skewed graph's adjacency, natural ids vs reordered
// (range(1): 0 = natural, 1 = degree sort, 2 = RCM). The reordered
// variants permute the matrix AND the dense operand's rows, so all three
// compute the same product up to row relabelling.
void BM_SpMMSkewed(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t kind = state.range(1);
  graph::Graph g = SkewedBenchGraph(n, n * 8);
  Rng rng(2);
  tensor::Tensor x = tensor::Tensor::Randn(n, 64, &rng);
  tensor::CsrMatrix m = *g.Adjacency();
  if (kind > 0) {
    const std::vector<int64_t> perm = graph::ReorderPermutation(
        g, kind == 1 ? graph::ReorderKind::kDegreeSort
                     : graph::ReorderKind::kRcm);
    m = graph::ReorderCsr(m, perm);
    tensor::Tensor xp(n, 64);
    for (int64_t u = 0; u < n; ++u) {
      std::copy(x.row(u), x.row(u) + 64,
                xp.row(perm[static_cast<size_t>(u)]));
    }
    x = std::move(xp);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.SpMM(x));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz() * 64);
}
BENCHMARK(BM_SpMMSkewed)
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({100000, 2});

// The fused GAT attention-edge kernel (score -> segment softmax ->
// weighted scatter in one pass over the edges). range(1) = 1 also runs
// the backward pass through the fused node.
void BM_GatAttention(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool backward = state.range(1) != 0;
  graph::Graph g = SkewedBenchGraph(n, n * 8);
  std::vector<int64_t> src, dst;
  g.DirectedEdgesWithSelfLoops(&src, &dst);
  Rng rng(3);
  const int64_t f = 64;
  tensor::Tensor h_val = tensor::Tensor::Randn(n, f, &rng);
  tensor::Tensor a_src = tensor::Tensor::Randn(f, 1, &rng);
  tensor::Tensor a_dst = tensor::Tensor::Randn(f, 1, &rng);
  for (auto _ : state) {
    tensor::Variable h(h_val, /*requires_grad=*/backward);
    tensor::Variable sl = tensor::ops::MatMul(h, tensor::Variable(a_src));
    tensor::Variable sr = tensor::ops::MatMul(h, tensor::Variable(a_dst));
    tensor::Variable out = tensor::ops::GatSegmentAttention(
        h, sl, sr, src, dst, n, /*negative_slope=*/0.2f,
        /*dropout_p=*/0.0f, /*training=*/backward, /*rng=*/nullptr);
    if (backward) {
      tensor::Variable loss = tensor::ops::SumAll(out);
      loss.Backward();
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(src.size()) * f);
}
BENCHMARK(BM_GatAttention)->Args({20000, 0})->Args({20000, 1});

data::Dataset BenchDataset(int64_t nodes) {
  data::GeneratorOptions o;
  o.num_nodes = nodes;
  o.num_edges = nodes * 4;
  o.num_features = 256;
  o.num_classes = 5;
  o.homophily = 0.25;
  o.seed = 3;
  return std::move(data::GenerateDataset(o)).value();
}

void BM_GcnEpoch(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  auto splits = data::MakeSplits(ds.labels, ds.num_classes,
                                 {.num_splits = 1});
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 1;
  auto model = nn::MakeModel(nn::BackboneKind::kGcn, mo);
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, {});
  for (auto _ : state) {
    trainer.TrainEpoch(ds.graph, splits[0].train);
  }
}
BENCHMARK(BM_GcnEpoch)->Arg(500)->Arg(2000)->Arg(8000);

void BM_EntropyIndexBuild(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  for (auto _ : state) {
    auto index = entropy::RelativeEntropyIndex::Build(ds.graph, ds.features,
                                                      {});
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_EntropyIndexBuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_StructuralEntropyPair(benchmark::State& state) {
  data::Dataset ds = BenchDataset(2000);
  entropy::StructuralEntropyCalculator calc(ds.graph);
  Rng rng(4);
  for (auto _ : state) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(2000));
    const int64_t u = static_cast<int64_t>(rng.UniformInt(2000));
    benchmark::DoNotOptimize(calc.Between(v, u));
  }
}
BENCHMARK(BM_StructuralEntropyPair);

void BM_TopologyRebuild(benchmark::State& state) {
  data::Dataset ds = BenchDataset(state.range(0));
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(ds.graph, ds.features, {}));
  core::TopologyState s(ds.num_nodes(), 5, 5);
  s.SetUniform(3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BuildOptimizedGraph(ds.graph, s, index));
  }
}
BENCHMARK(BM_TopologyRebuild)->Arg(500)->Arg(2000)->Arg(8000);

void BM_PpoUpdate(benchmark::State& state) {
  const int64_t n = state.range(0);
  rl::PpoOptions opts;
  opts.steps_per_update = 4;
  Rng rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    rl::PpoAgent agent(core::kObservationDim, opts);
    tensor::Tensor obs = tensor::Tensor::Rand(n, core::kObservationDim, &rng);
    for (int i = 0; i < 4; ++i) {
      agent.Act(obs);
      agent.StoreReward(0.1);
    }
    state.ResumeTiming();
    agent.Update(obs);
  }
}
BENCHMARK(BM_PpoUpdate)->Arg(500)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace graphrare

// BENCHMARK_MAIN with JSON output on by default: unless the caller passes
// their own --benchmark_out, the run is also recorded to
// BENCH_micro_kernels.json for the cross-PR perf trajectory (the console
// table is unchanged and every --benchmark_* flag still works).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Match only the output-file flag itself — "--benchmark_out_format"
    // alone must not suppress the default JSON file.
    const std::string arg(argv[i]);
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) {
    std::printf(
        "machine-readable results written to BENCH_micro_kernels.json\n");
  }
  return 0;
}

// Million-node co-training round: exercises the PR-6 scaling stack end to
// end — streaming O(E) generation, small-candidate entropy build, locality
// partitioned block scheduling, and the prefetching block pipeline — and
// records wall time + peak RSS so the bounded-memory claim is a tracked
// number, not a comment.
//
// Two identically-seeded co-training paths run back to back:
//   inline     prefetch_depth=0 — blocks sampled on the training thread
//   pipelined  prefetch_depth=2, 2 producers — round R+1 sampled while
//              round R trains
// The block stream is bitwise identical either way (data/block_pipeline.h),
// so the JSON also records whether the two paths' rewards matched — a
// determinism check riding along with the perf numbers. The speedup column
// is honest wall clock: on a single-core machine the producer threads just
// time-slice the trainer and the ratio hovers near 1.
//
// Quick mode: 100k nodes. GRARE_BENCH_FULL=1: 1M nodes.

#include "bench/bench_util.h"
#include "core/graphrare.h"

namespace graphrare {
namespace bench {
namespace {

constexpr int kRounds = 2;

data::Dataset MakeMillionDataset(int64_t num_nodes, double* gen_seconds) {
  data::GeneratorOptions o;
  o.name = StrFormat("synthetic-%lldk",
                     static_cast<long long>(num_nodes / 1000));
  o.num_nodes = num_nodes;
  o.num_edges = 3 * num_nodes;
  o.num_features = 32;
  o.num_classes = 4;
  o.homophily = 0.6;
  o.degree_power = 0.35;  // heavy-tailed degrees, like the web graphs
  o.feature_signal = 8.0;
  o.feature_density = 0.05;
  o.seed = 5;
  Stopwatch watch;
  auto result = data::GenerateDataset(o);
  GR_CHECK(result.ok()) << result.status().ToString();
  *gen_seconds = watch.ElapsedSeconds();
  return std::move(result).value();
}

entropy::EntropyOptions SmallEntropyOptions() {
  // Small candidate sets keep the index O(nodes * candidates) in both
  // time and memory; at 1M nodes the default budgets dominate RSS.
  entropy::EntropyOptions eo;
  eo.max_two_hop_candidates = 4;
  eo.num_random_candidates = 2;
  eo.seed = 13;
  return eo;
}

struct PathReport {
  std::vector<double> round_seconds;
  std::vector<double> mean_rewards;
  int64_t block_nodes = 0;           ///< last round
  core::ConflictStats conflicts;     ///< last round
  double peak_rss_mib = 0.0;

  double MeanRoundSeconds() const {
    double acc = 0.0;
    for (const double s : round_seconds) acc += s;
    return acc / static_cast<double>(round_seconds.size());
  }
};

/// `kRounds` co-training rounds with a fresh (identically seeded) model,
/// trainer, and agent, so inline and pipelined runs are the same
/// trajectory and differ only in where sampling happens.
PathReport RunPath(const data::Dataset& ds, const data::Split& split,
                   const entropy::RelativeEntropyIndex& index,
                   int prefetch_depth, int num_producers) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 16;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::MiniBatchTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               to);

  core::BlockRolloutOptions ro;
  ro.blocks_per_round = 8;
  ro.seeds_per_block = 512;
  ro.fanouts = {8, 8};
  ro.steps_per_episode = 2;
  ro.env.gnn_epochs_per_step = 1;
  ro.seed = 21;
  ro.partition = data::PartitionMode::kLocality;
  ro.partition_seed = 21;
  ro.prefetch_depth = prefetch_depth;
  ro.num_producers = num_producers;
  core::BlockRolloutRunner runner(&ds, &split, &trainer, &index, ro);

  rl::PpoOptions po;
  po.steps_per_update = ro.steps_per_episode;
  po.seed = 11;
  rl::PpoAgent agent(core::kObservationDim, po);

  PathReport report;
  for (int r = 0; r < kRounds; ++r) {
    Stopwatch watch;
    const core::BlockRolloutRunner::RoundStats stats = runner.RunRound(&agent);
    report.round_seconds.push_back(watch.ElapsedSeconds());
    report.mean_rewards.push_back(stats.mean_reward);
    report.block_nodes = stats.block_nodes;
    report.conflicts = stats.conflicts;
  }
  report.peak_rss_mib = PeakRssMiB();
  return report;
}

}  // namespace

int Main() {
  PrintBanner("million-node partition-aware co-training round",
              "beyond-paper: bounded-RSS block scheduling at 1M nodes");

  const int64_t num_nodes = core::BenchFullScale() ? 1000000 : 100000;

  double gen_seconds = 0.0;
  data::Dataset ds = MakeMillionDataset(num_nodes, &gen_seconds);
  const double rss_after_gen = PeakRssMiB();
  std::printf("generated %lld nodes / %lld edges in %.2fs (RSS %.0f MiB)\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.graph.num_edges()), gen_seconds,
              rss_after_gen);

  data::SplitOptions so;
  so.num_splits = 1;
  so.seed = 11;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

  Stopwatch entropy_watch;
  auto index = std::move(entropy::RelativeEntropyIndex::Build(
                             ds.graph, ds.features, SmallEntropyOptions()))
                   .value();
  const double entropy_seconds = entropy_watch.ElapsedSeconds();
  const double rss_after_entropy = PeakRssMiB();
  std::printf("entropy index built in %.2fs (RSS %.0f MiB)\n\n",
              entropy_seconds, rss_after_entropy);

  PrintRow("path", {"s/round", "mean R", "blk nodes", "conflicts", "rate",
                    "peak RSS"},
           12, 12);
  const PathReport inline_path = RunPath(ds, splits[0], index,
                                         /*prefetch_depth=*/0,
                                         /*num_producers=*/1);
  PrintRow("inline",
           {StrFormat("%.3f", inline_path.MeanRoundSeconds()),
            StrFormat("%+.4f", inline_path.mean_rewards.back()),
            StrFormat("%lld", static_cast<long long>(inline_path.block_nodes)),
            StrFormat("%lld",
                      static_cast<long long>(inline_path.conflicts
                                                 .conflict_nodes)),
            StrFormat("%.3f", inline_path.conflicts.ConflictRate()),
            StrFormat("%.0f MiB", inline_path.peak_rss_mib)},
           12, 12);
  const PathReport piped = RunPath(ds, splits[0], index,
                                   /*prefetch_depth=*/2,
                                   /*num_producers=*/2);
  PrintRow("pipelined",
           {StrFormat("%.3f", piped.MeanRoundSeconds()),
            StrFormat("%+.4f", piped.mean_rewards.back()),
            StrFormat("%lld", static_cast<long long>(piped.block_nodes)),
            StrFormat("%lld",
                      static_cast<long long>(piped.conflicts.conflict_nodes)),
            StrFormat("%.3f", piped.conflicts.ConflictRate()),
            StrFormat("%.0f MiB", piped.peak_rss_mib)},
           12, 12);

  const bool rewards_match = inline_path.mean_rewards == piped.mean_rewards;
  const double speedup =
      piped.MeanRoundSeconds() > 0.0
          ? inline_path.MeanRoundSeconds() / piped.MeanRoundSeconds()
          : 0.0;
  std::printf("\npipelined speedup: %.2fx, reward trajectories %s\n", speedup,
              rewards_match ? "match bitwise" : "DIVERGED (bug!)");
  GR_CHECK(rewards_match)
      << "pipelined sampling changed the trajectory; see data/block_pipeline";

  BenchJson json("million_node");
  json.BeginConfig()
      .Field("nodes", ds.num_nodes())
      .Field("edges", ds.graph.num_edges())
      .Field("rounds", kRounds)
      .Field("generation_seconds", gen_seconds)
      .Field("entropy_build_seconds", entropy_seconds)
      .Field("rss_after_generation_mib", rss_after_gen)
      .Field("rss_after_entropy_mib", rss_after_entropy)
      .Field("inline_seconds_per_round", inline_path.MeanRoundSeconds())
      .Field("pipelined_seconds_per_round", piped.MeanRoundSeconds())
      .Field("pipelined_speedup", speedup)
      .Field("rewards_match", rewards_match)
      .Field("block_nodes", piped.block_nodes)
      .Field("conflict_nodes", piped.conflicts.conflict_nodes)
      .Field("conflict_rate", piped.conflicts.ConflictRate())
      .Field("nodes_recorded", piped.conflicts.nodes_recorded)
      .Field("peak_rss_mib", piped.peak_rss_mib);
  json.Write();
  return 0;
}

}  // namespace bench
}  // namespace graphrare

int main() { return graphrare::bench::Main(); }

// Block-scoped vs full-graph RL topology optimization scaling. Generates
// synthetic graphs of increasing size and compares one co-training round of
// the full-graph TopologyEnv path (observation + rewiring + GNN epochs over
// the whole adjacency per step) against BlockRolloutRunner episodes on
// neighbor-sampled blocks (core/block_rollout.h).
//
// The full-graph path runs only at the smallest size: beyond it a single
// episode blows the bench's time budget — per-step cost scales with the
// global adjacency, which is precisely what the block scheduler removes —
// so larger sizes run the block path only (the skip is printed and recorded
// in the JSON, not silent).
//
// Quick mode: 2k and 10k nodes. GRARE_BENCH_FULL=1 adds 100k.

#include "bench/bench_util.h"
#include "core/graphrare.h"

namespace graphrare {
namespace bench {
namespace {

data::Dataset MakeScaledDataset(int64_t num_nodes, uint64_t seed) {
  data::GeneratorOptions o;
  o.name = StrFormat("synthetic-%lldk",
                     static_cast<long long>(num_nodes / 1000));
  o.num_nodes = num_nodes;
  o.num_edges = 3 * num_nodes;
  o.num_features = 64;
  o.num_classes = 4;
  o.homophily = 0.6;
  o.feature_signal = 8.0;
  o.feature_density = 0.05;
  o.seed = seed;
  auto result = data::GenerateDataset(o);
  GR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

entropy::EntropyOptions BenchEntropyOptions() {
  entropy::EntropyOptions eo;
  eo.max_two_hop_candidates = 8;
  eo.num_random_candidates = 4;
  eo.seed = 13;
  return eo;
}

struct PathReport {
  double seconds_per_round = 0.0;
  double entropy_seconds = 0.0;
  double peak_rss_mib = 0.0;
  double mean_reward = 0.0;
  int64_t block_nodes = 0;  ///< block path: nodes touched per round
};

/// One full-graph co-training round: TopologyEnv + PPO, `steps` env steps.
PathReport RunFullGraph(const data::Dataset& ds, const data::Split& split,
                        int steps) {
  Stopwatch entropy_watch;
  auto index = std::move(entropy::RelativeEntropyIndex::Build(
                             ds.graph, ds.features, BenchEntropyOptions()))
                   .value();
  PathReport report;
  report.entropy_seconds = entropy_watch.ElapsedSeconds();

  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 32;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::ClassifierTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, to);

  core::TopologyEnvOptions eo;
  eo.gnn_epochs_per_step = 1;
  core::TopologyEnv env(&ds, &split, &trainer, &index, eo);
  rl::PpoOptions po;
  po.steps_per_update = steps;
  po.seed = 11;
  rl::PpoAgent agent(core::kObservationDim, po);

  Stopwatch watch;
  const std::vector<double> rewards = rl::RunAgentOnEnv(&agent, &env, steps);
  report.seconds_per_round = watch.ElapsedSeconds();
  for (const double r : rewards) report.mean_reward += r;
  report.mean_reward /= static_cast<double>(rewards.size());
  report.peak_rss_mib = PeakRssMiB();
  return report;
}

/// One block-scoped round: BlockRolloutRunner episodes on sampled blocks.
PathReport RunBlocks(const data::Dataset& ds, const data::Split& split,
                     int steps) {
  Stopwatch entropy_watch;
  auto index = std::move(entropy::RelativeEntropyIndex::Build(
                             ds.graph, ds.features, BenchEntropyOptions()))
                   .value();
  PathReport report;
  report.entropy_seconds = entropy_watch.ElapsedSeconds();

  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 32;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::MiniBatchTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels,
                               to);

  core::BlockRolloutOptions ro;
  ro.blocks_per_round = 4;
  ro.seeds_per_block = 64;
  ro.fanouts = {10, 10};
  ro.steps_per_episode = steps;
  ro.env.gnn_epochs_per_step = 1;
  ro.seed = 21;
  core::BlockRolloutRunner runner(&ds, &split, &trainer, &index, ro);
  rl::PpoOptions po;
  po.steps_per_update = steps;
  po.seed = 11;
  rl::PpoAgent agent(core::kObservationDim, po);

  Stopwatch watch;
  const core::BlockRolloutRunner::RoundStats stats = runner.RunRound(&agent);
  report.seconds_per_round = watch.ElapsedSeconds();
  report.mean_reward = stats.mean_reward;
  report.block_nodes = stats.block_nodes;
  report.peak_rss_mib = PeakRssMiB();
  return report;
}

}  // namespace

int Main() {
  PrintBanner("block-scoped RL topology rollout scaling",
              "beyond-paper: SparRL-style subgraph rollouts (Fig. 3 MDP)");

  std::vector<int64_t> sizes = {2000, 10000};
  if (core::BenchFullScale()) sizes.push_back(100000);
  // Full-graph episodes only below this size; above it one episode's
  // observation/rewiring/training all scale with the whole adjacency and
  // the run would blow the bench's time budget.
  const int64_t full_graph_max_nodes = 2000;
  const int steps = 4;

  PrintRow("nodes",
           {"path", "s/round", "entropy s", "mean R", "peak RSS", "blk nodes"},
           12, 12);
  BenchJson json("rl_blocks_scaling");
  for (const int64_t n : sizes) {
    data::Dataset ds = MakeScaledDataset(n, /*seed=*/5);
    data::SplitOptions so;
    so.num_splits = 1;
    so.seed = 11;
    const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);

    // Block path first so its peak-RSS reading is not inflated by the
    // full-graph pass (ru_maxrss is monotonic across the process).
    const PathReport blocks = RunBlocks(ds, splits[0], steps);
    PrintRow(StrFormat("%lld", static_cast<long long>(n)),
             {"blocks", StrFormat("%.3f", blocks.seconds_per_round),
              StrFormat("%.3f", blocks.entropy_seconds),
              StrFormat("%+.4f", blocks.mean_reward),
              StrFormat("%.0f MiB", blocks.peak_rss_mib),
              StrFormat("%lld", static_cast<long long>(blocks.block_nodes))},
             12, 12);
    json.BeginConfig()
        .Field("nodes", n)
        .Field("path", "blocks")
        .Field("steps", steps)
        .Field("seconds_per_round", blocks.seconds_per_round)
        .Field("entropy_seconds", blocks.entropy_seconds)
        .Field("mean_reward", blocks.mean_reward)
        .Field("peak_rss_mib", blocks.peak_rss_mib)
        .Field("block_nodes", blocks.block_nodes);

    if (n <= full_graph_max_nodes) {
      const PathReport full = RunFullGraph(ds, splits[0], steps);
      PrintRow("", {"full", StrFormat("%.3f", full.seconds_per_round),
                    StrFormat("%.3f", full.entropy_seconds),
                    StrFormat("%+.4f", full.mean_reward),
                    StrFormat("%.0f MiB", full.peak_rss_mib), "-"},
               12, 12);
      json.BeginConfig()
          .Field("nodes", n)
          .Field("path", "full")
          .Field("steps", steps)
          .Field("seconds_per_round", full.seconds_per_round)
          .Field("entropy_seconds", full.entropy_seconds)
          .Field("mean_reward", full.mean_reward)
          .Field("peak_rss_mib", full.peak_rss_mib);
    } else {
      PrintRow("", {"full", "skipped", "-", "-", "-", "-"}, 12, 12);
      std::printf("    (full-graph episodes skipped at %lld nodes: "
                  "per-step observation/rewiring/training scale with the "
                  "whole adjacency)\n",
                  static_cast<long long>(n));
      json.BeginConfig()
          .Field("nodes", n)
          .Field("path", "full")
          .Field("skipped", true);
    }
  }

  json.Write();
  return 0;
}

}  // namespace bench
}  // namespace graphrare

int main() { return graphrare::bench::Main(); }

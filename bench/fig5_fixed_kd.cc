// Regenerates Figure 5: accuracy grids under *fixed* (k, d) for every node,
// compared against the DRL-chosen per-node values. One ASCII heatmap per
// (backbone, dataset) pair; the DRL row is appended below each grid.
//
// Shape expectation: the DRL accuracy matches or beats the best fixed cell
// (the paper's argument for per-node "personality"), and removing many
// edges (large d) hurts more than adding many (large k).

#include "bench/bench_util.h"

namespace graphrare {
namespace bench {
namespace {

void Run() {
  PrintBanner("Figure 5: fixed (k, d) grids vs DRL",
              "Sec. V-F.1, Fig. 5 heatmaps");

  const std::vector<std::string> datasets =
      core::BenchFullScale()
          ? std::vector<std::string>{"chameleon", "squirrel", "cora"}
          : std::vector<std::string>{"chameleon", "cora"};
  const std::vector<std::pair<nn::BackboneKind, const char*>> backbones =
      core::BenchFullScale()
          ? std::vector<std::pair<nn::BackboneKind, const char*>>{
                {nn::BackboneKind::kGcn, "GCN"},
                {nn::BackboneKind::kSage, "GraphSAGE"},
                {nn::BackboneKind::kGat, "GAT"},
                {nn::BackboneKind::kH2Gcn, "H2GCN"}}
          : std::vector<std::pair<nn::BackboneKind, const char*>>{
                {nn::BackboneKind::kGcn, "GCN"},
                {nn::BackboneKind::kSage, "GraphSAGE"}};
  const std::vector<int> grid = core::BenchFullScale()
                                    ? std::vector<int>{0, 1, 2, 3, 4, 5}
                                    : std::vector<int>{0, 2, 4};

  for (const auto& ds_name : datasets) {
    const data::Dataset ds = LoadBenchDataset(ds_name);
    const auto splits = BenchSplits(ds, /*quick_splits=*/1);
    for (const auto& [kind, bname] : backbones) {
      std::printf("\n--- %s on %s (rows: k added, cols: d removed) ---\n",
                  bname, ds_name.c_str());
      std::printf("%6s", "");
      for (int d : grid) std::printf("  d=%-5d", d);
      std::printf("\n");
      double best_fixed = 0.0;
      for (int k : grid) {
        std::printf("k=%-4d", k);
        for (int d : grid) {
          std::fprintf(stderr, "[fig5] %s %s k=%d d=%d...\n", bname,
                       ds_name.c_str(), k, d);
          core::GraphRareOptions opts = BenchRareOptions(kind);
          opts.policy_mode = core::PolicyMode::kFixed;
          opts.fixed_k = k;
          opts.fixed_d = d;
          opts.k_max = std::max(k, 1);
          opts.d_max = std::max(d, 1);
          opts.iterations = 4;  // fixed state converges immediately
          const auto agg = core::RunGraphRare(ds, splits, opts);
          best_fixed = std::max(best_fixed, agg.accuracy.mean);
          std::printf("  %6.2f ", 100.0 * agg.accuracy.mean);
        }
        std::printf("\n");
      }
      core::GraphRareOptions drl = BenchRareOptions(kind);
      const auto agg = core::RunGraphRare(ds, splits, drl);
      std::printf("DRL (per-node k,d): %.2f   | best fixed cell: %.2f\n",
                  100.0 * agg.accuracy.mean, 100.0 * best_fixed);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace graphrare

int main() {
  graphrare::SetLogLevel(graphrare::LogLevel::kWarning);
  graphrare::bench::Run();
  return 0;
}

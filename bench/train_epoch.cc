// End-to-end training-epoch benchmark on the 10k-node synthetic config:
// the number that tracks whether kernel work (blocked GEMM, fused ops,
// buffer pooling, parallel reductions) actually moves the training hot
// path, not just microbenchmarks. Covers the full-graph trainer for the
// dense-heavy backbones (GCN, SAGE, MLP) and one neighbor-sampled
// mini-batch epoch (sampling + per-block CSR assembly + block steps), and
// reports tensor-pool hit rates so allocator churn shows up in the
// trajectory too.
//
// Writes BENCH_train_epoch.json. Quick mode times a handful of epochs;
// GRARE_BENCH_FULL=1 runs more epochs for tighter numbers.

#include <algorithm>

#include "bench/bench_util.h"
#include "core/graphrare.h"

namespace graphrare {
namespace bench {
namespace {

// Mirrors the micro_kernels BenchDataset shape (256 dense-ish features) at
// 10k nodes, so the dense layers dominate the way they do in real runs.
data::Dataset EpochDataset(int64_t num_nodes) {
  data::GeneratorOptions o;
  o.name = StrFormat("synthetic-%lldk",
                     static_cast<long long>(num_nodes / 1000));
  o.num_nodes = num_nodes;
  o.num_edges = 4 * num_nodes;
  o.num_features = 256;
  o.num_classes = 5;
  o.homophily = 0.4;
  o.feature_signal = 8.0;
  o.feature_density = 0.05;
  o.seed = 3;
  auto result = data::GenerateDataset(o);
  GR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

struct EpochReport {
  double seconds_per_epoch = 0.0;
  double last_loss = 0.0;
};

EpochReport TimeFullGraphEpochs(nn::BackboneKind backbone,
                                const data::Dataset& ds,
                                const std::vector<int64_t>& train_idx,
                                int epochs) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(backbone, mo);
  nn::ClassifierTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::ClassifierTrainer trainer(model.get(),
                                nn::LayerInput::Sparse(ds.FeaturesCsr()),
                                &ds.labels, to);
  trainer.TrainEpoch(ds.graph, train_idx);  // warm caches + graph operators
  EpochReport report;
  Stopwatch watch;
  for (int e = 0; e < epochs; ++e) {
    report.last_loss = trainer.TrainEpoch(ds.graph, train_idx).loss;
  }
  report.seconds_per_epoch = watch.ElapsedSeconds() / epochs;
  return report;
}

EpochReport TimeMiniBatchEpochs(const data::Dataset& ds,
                                const std::vector<int64_t>& train_idx,
                                int epochs) {
  nn::ModelOptions mo;
  mo.in_features = ds.num_features();
  mo.hidden = 64;
  mo.num_classes = ds.num_classes;
  mo.seed = 7;
  auto model = nn::MakeModel(nn::BackboneKind::kSage, mo);
  nn::MiniBatchTrainer::Options to;
  to.adam.lr = 0.01f;
  to.seed = 7;
  nn::MiniBatchTrainer trainer(model.get(), ds.FeaturesCsr(), &ds.labels, to);
  data::SamplerOptions so;
  so.fanouts = {10, 10};
  so.seed = 21;
  data::NeighborSampler sampler(&ds.graph, so);
  Rng shuffle_rng(7);
  EpochReport report;
  Stopwatch watch;
  for (int e = 0; e < epochs; ++e) {
    const auto batches = data::NeighborSampler::MakeBatches(
        train_idx, /*batch_size=*/1024, /*shuffle=*/true, &shuffle_rng);
    for (const auto& batch : batches) {
      report.last_loss = trainer.TrainBatch(sampler.SampleBlock(batch)).loss;
    }
  }
  report.seconds_per_epoch = watch.ElapsedSeconds() / epochs;
  return report;
}

}  // namespace

int Main() {
  PrintBanner("end-to-end training epoch (10k-node synthetic)",
              "beyond-paper: kernel-layer perf trajectory");

  const int64_t num_nodes = 10000;
  const int epochs = core::BenchFullScale() ? 40 : 10;
  data::Dataset ds = EpochDataset(num_nodes);
  data::SplitOptions so;
  so.num_splits = 1;
  so.seed = 11;
  const auto splits = data::MakeSplits(ds.labels, ds.num_classes, so);
  const std::vector<int64_t>& train_idx = splits[0].train;

  BenchJson json("train_epoch");
  PrintRow("config", {"s/epoch", "epochs", "loss"}, 24, 12);

  const struct {
    const char* name;
    nn::BackboneKind backbone;
  } kFullConfigs[] = {
      {"gcn/full", nn::BackboneKind::kGcn},
      {"sage/full", nn::BackboneKind::kSage},
      {"gat/full", nn::BackboneKind::kGat},
      {"mlp/full", nn::BackboneKind::kMlp},
  };
  for (const auto& cfg : kFullConfigs) {
    const EpochReport r =
        TimeFullGraphEpochs(cfg.backbone, ds, train_idx, epochs);
    PrintRow(cfg.name,
             {StrFormat("%.4f", r.seconds_per_epoch),
              StrFormat("%d", epochs), StrFormat("%.4f", r.last_loss)},
             24, 12);
    json.BeginConfig()
        .Field("config", cfg.name)
        .Field("nodes", num_nodes)
        .Field("epochs", epochs)
        .Field("seconds_per_epoch", r.seconds_per_epoch)
        .Field("last_loss", r.last_loss);
  }

  const EpochReport mb = TimeMiniBatchEpochs(ds, train_idx, epochs);
  PrintRow("sage/minibatch",
           {StrFormat("%.4f", mb.seconds_per_epoch), StrFormat("%d", epochs),
            StrFormat("%.4f", mb.last_loss)},
           24, 12);
  json.BeginConfig()
      .Field("config", "sage/minibatch")
      .Field("nodes", num_nodes)
      .Field("epochs", epochs)
      .Field("seconds_per_epoch", mb.seconds_per_epoch)
      .Field("last_loss", mb.last_loss);

  // Pool effectiveness over the whole run: a healthy hot path acquires
  // nearly every buffer from the free list.
  const tensor::TensorPool::Stats pool = tensor::TensorPool::GetStats();
  const double total =
      static_cast<double>(pool.hits) + static_cast<double>(pool.misses);
  std::printf("\ntensor pool: %s, hit rate %.1f%% (%llu hits, %llu misses, "
              "%.1f MiB cached)\n",
              tensor::TensorPool::Enabled() ? "enabled" : "disabled",
              total > 0 ? 100.0 * static_cast<double>(pool.hits) / total : 0.0,
              static_cast<unsigned long long>(pool.hits),
              static_cast<unsigned long long>(pool.misses),
              static_cast<double>(pool.cached_bytes) / (1024.0 * 1024.0));
  json.BeginConfig()
      .Field("config", "tensor_pool")
      .Field("enabled", tensor::TensorPool::Enabled())
      .Field("pool_hits", static_cast<int64_t>(pool.hits))
      .Field("pool_misses", static_cast<int64_t>(pool.misses))
      .Field("peak_rss_mib", PeakRssMiB());

  json.Write();
  return 0;
}

}  // namespace bench
}  // namespace graphrare

int main() { return graphrare::bench::Main(); }

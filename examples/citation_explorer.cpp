// Citation-network explorer: uses the library's *components* directly —
// entropy index, per-node sequences, manual topology edits — rather than
// the end-to-end trainer. Demonstrates the public API at the level a
// downstream system (e.g. a graph database doing query-time rewiring)
// would consume it.
//
// Run: ./build/examples/citation_explorer

#include <cstdio>

#include "core/graphrare.h"

using namespace graphrare;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== Citation network explorer (Cora twin) ===\n\n");

  data::Dataset cora = *data::MakeDataset("cora", /*seed=*/3);
  std::printf("Citation graph: %lld papers, %lld citations, homophily %.2f, "
              "%lld components\n\n",
              static_cast<long long>(cora.num_nodes()),
              static_cast<long long>(cora.graph.num_edges()),
              cora.Homophily(),
              static_cast<long long>(cora.graph.CountConnectedComponents()));

  // 1. Build the relative-entropy index once (Sec. IV-A of the paper).
  entropy::EntropyOptions eopts;
  eopts.lambda = 1.0;
  Stopwatch watch;
  auto index = std::move(
      *entropy::RelativeEntropyIndex::Build(cora.graph, cora.features, eopts));
  std::printf("Entropy index built in %.2fs (%lld nodes)\n\n",
              watch.ElapsedSeconds(),
              static_cast<long long>(index.num_nodes()));

  // 2. Inspect one paper's entropy sequences: do the top-ranked remote
  //    candidates share its research area (label)?
  const int64_t probe = 42;
  const auto& seq = index.sequences(probe);
  std::printf("Paper %lld (area %lld, %lld citations):\n",
              static_cast<long long>(probe),
              static_cast<long long>(cora.labels[probe]),
              static_cast<long long>(cora.graph.Degree(probe)));
  std::printf("  top remote candidates by relative entropy:\n");
  int64_t same = 0;
  const size_t top_n = std::min<size_t>(5, seq.remote.size());
  for (size_t i = 0; i < top_n; ++i) {
    const auto& cand = seq.remote[i];
    const bool match = cora.labels[static_cast<size_t>(cand.node)] ==
                       cora.labels[static_cast<size_t>(probe)];
    same += match ? 1 : 0;
    std::printf("    #%zu node %-5lld H=%.3f  area %lld %s\n", i + 1,
                static_cast<long long>(cand.node), cand.entropy,
                static_cast<long long>(
                    cora.labels[static_cast<size_t>(cand.node)]),
                match ? "(same area)" : "");
  }
  std::printf("  -> %lld/%zu top candidates share the research area\n\n",
              static_cast<long long>(same), top_n);

  // 3. Hand-drive the topology optimizer: connect every paper to its top-2
  //    candidates and drop its single most dissimilar citation.
  core::TopologyState state(cora.num_nodes(), /*k_max=*/2, /*d_max=*/1);
  state.SetUniform(2, 1);
  graph::Graph rewired = core::BuildOptimizedGraph(cora.graph, state, index);
  std::printf("Uniform rewiring (k=2, d=1): %lld -> %lld edges, homophily "
              "%.3f -> %.3f\n",
              static_cast<long long>(cora.graph.num_edges()),
              static_cast<long long>(rewired.num_edges()), cora.Homophily(),
              rewired.EdgeHomophily(cora.labels));

  // 4. Compare a GCN trained on original vs rewired topology.
  data::SplitOptions so;
  so.num_splits = 2;
  const auto splits = data::MakeSplits(cora.labels, cora.num_classes, so);
  core::ExperimentOptions exp;
  exp.num_splits = 2;
  const auto on_original =
      core::RunBackbone(cora, splits, nn::BackboneKind::kGcn, exp);
  const auto on_rewired = core::RunBackbone(
      cora, splits, nn::BackboneKind::kGcn, exp, &rewired);
  std::printf("GCN accuracy: %.2f%% (original) vs %.2f%% (rewired)\n",
              100.0 * on_original.accuracy.mean,
              100.0 * on_rewired.accuracy.mean);
  std::printf(
      "\nOn an already homophilic citation graph, uniform rewiring changes\n"
      "little — the per-node, learned (k, d) of the full framework is what\n"
      "protects homophilic graphs from harmful edits (paper Sec. V-D).\n");
  return 0;
}

// Fraud detection on a transaction network — the paper's motivating
// heterophily scenario ("fraudsters are more likely to build connections
// with customers instead of other fraudsters").
//
// We synthesise a bipartite-leaning transaction graph: fraudsters link
// almost exclusively to legitimate customers, so 1-hop neighbourhoods are
// maximally misleading for a message-passing GNN while 2-hop neighbourhoods
// (fraudster -> customer -> fraudster) are informative. GraphRARE's entropy
// ranking surfaces those remote same-role nodes, and the DRL agent learns
// per-node how many to connect.
//
// Run: ./build/examples/fraud_detection

#include <cstdio>

#include "core/graphrare.h"

using namespace graphrare;

namespace {

/// Builds the transaction network: classes {0 = customer, 1 = fraudster,
/// 2 = merchant} with near-zero homophily and strong partner structure.
data::Dataset MakeTransactionNetwork() {
  data::GeneratorOptions opts;
  opts.name = "transactions";
  opts.num_nodes = 900;
  opts.num_edges = 2600;
  opts.num_features = 128;  // behavioural features (velocity, amounts, ...)
  opts.num_classes = 3;
  opts.homophily = 0.06;        // fraudsters basically never link directly
  opts.partner_affinity = 0.9;  // fraud -> customer, merchant -> customer
  opts.feature_signal = 6.0;    // behavioural features are informative but
  opts.feature_density = 0.08;  // noisy — structure must contribute
  opts.seed = 2026;
  return std::move(data::GenerateDataset(opts)).value();
}

double RunBackboneOnly(const data::Dataset& ds,
                       const std::vector<data::Split>& splits) {
  core::ExperimentOptions opts;
  opts.num_splits = static_cast<int>(splits.size());
  return core::RunBackbone(ds, splits, nn::BackboneKind::kSage, opts)
      .accuracy.mean;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== Fraud detection under extreme heterophily ===\n\n");

  data::Dataset network = MakeTransactionNetwork();
  std::printf(
      "Transaction graph: %lld accounts, %lld edges, homophily %.3f\n"
      "(fraudsters connect to customers, almost never to each other)\n\n",
      static_cast<long long>(network.num_nodes()),
      static_cast<long long>(network.graph.num_edges()),
      network.Homophily());

  data::SplitOptions so;
  so.num_splits = 3;
  const auto splits = data::MakeSplits(network.labels, network.num_classes, so);

  // 1. How badly does vanilla message passing do here?
  const double sage_acc = RunBackboneOnly(network, splits);
  std::printf("GraphSAGE on raw topology:       %.2f%%\n", 100.0 * sage_acc);

  // 2. GraphRARE: let the agent rewire towards informative remote accounts.
  core::GraphRareOptions rare;
  rare.backbone = nn::BackboneKind::kSage;
  rare.adam.lr = 0.01f;
  rare.iterations = 16;
  rare.k_max = 6;  // fraud rings are small: allow several new links
  rare.d_max = 4;  // and drop the most misleading customer edges
  const auto enhanced = core::RunGraphRare(network, splits, rare);
  std::printf("GraphSAGE-RARE (rewired):        %.2f%%\n",
              100.0 * enhanced.accuracy.mean);
  std::printf("Homophily after rewiring:        %.3f -> %.3f\n\n",
              enhanced.mean_initial_homophily, enhanced.mean_final_homophily);

  // 3. Audit the rewiring: how many of the agent's added edges connect
  //    same-role accounts (the useful long-range links)?
  const core::GraphRareResult& run = enhanced.last_run;
  int64_t added_same = 0, added_total = 0;
  for (const auto& [u, v] : run.best_graph.edges()) {
    if (!network.graph.HasEdge(u, v)) {
      ++added_total;
      if (network.labels[static_cast<size_t>(u)] ==
          network.labels[static_cast<size_t>(v)]) {
        ++added_same;
      }
    }
  }
  if (added_total > 0) {
    std::printf("Agent-added edges: %lld, of which %.1f%% connect same-role "
                "accounts\n",
                static_cast<long long>(added_total),
                100.0 * static_cast<double>(added_same) /
                    static_cast<double>(added_total));
  } else {
    std::printf("Agent added no edges on the selected best graph.\n");
  }
  std::printf(
      "\nInterpretation: the relative-entropy ranking finds remote accounts\n"
      "with fraud-like behaviour AND fraud-like local structure; connecting\n"
      "them gives message passing a same-role neighbourhood to aggregate.\n");
  return 0;
}

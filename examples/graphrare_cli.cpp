// Command-line runner: train any backbone with or without GraphRARE on any
// registry dataset, export telemetry and the optimized graph.
//
// Usage:
//   graphrare_cli [--dataset=cornell] [--backbone=gcn] [--rare]
//                 [--splits=3] [--iterations=20] [--lambda=1.0]
//                 [--k-max=5] [--d-max=5] [--seed=1] [--lr=0.01]
//                 [--minibatch] [--fanouts=10,10] [--batch-size=256]
//                 [--epochs=100] [--sample-replace]
//                 [--rl-blocks=4] [--rl-block-fanouts=10,10]
//                 [--rl-block-seeds=64] [--rl-steps=4]
//                 [--telemetry=out.csv] [--save-graph=out.graph]
//
// --seed is the single master seed: it fans out to the dataset generator,
// splits, entropy candidate sampling, PPO, the neighbor sampler, and the
// env streams through core::DeriveSeeds, so one number pins the whole run.
//
// --rare --rl-blocks=B runs block-scoped co-training: each PPO round
// rewires B neighbor-sampled blocks (SparRL-style) instead of the full
// graph. --rl-block-fanouts=full uses whole-graph blocks (the B=1 special
// case reproduces classic --rare env trajectories); -1 entries mean
// unlimited fanout.
//
// Examples:
//   ./build/examples/graphrare_cli --dataset=texas --backbone=sage --rare
//   ./build/examples/graphrare_cli --dataset=cora --backbone=appnp
//   ./build/examples/graphrare_cli --dataset=pubmed --backbone=sage
//       --minibatch --fanouts=10,10 --batch-size=512
//   ./build/examples/graphrare_cli --dataset=pubmed --backbone=sage --rare
//       --rl-blocks=8 --rl-block-fanouts=10,10 --rl-block-seeds=128

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/graphrare.h"
#include "core/telemetry.h"
#include "graph/io.h"

using namespace graphrare;

namespace {

/// Minimal --key=value parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognised argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";  // boolean flag
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const { return values_.count(key); }

 private:
  std::map<std::string, std::string> values_;
};

/// Parses "10,10,5" into a fanout vector (-1 entries = unlimited fanout).
std::vector<int64_t> ParseFanouts(const std::string& spec) {
  std::vector<int64_t> fanouts;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const long f = std::atol(spec.substr(begin, end - begin).c_str());
    if (f < 1 && f != -1) {
      std::fprintf(stderr, "invalid fanout spec: %s\n", spec.c_str());
      std::exit(2);
    }
    fanouts.push_back(f);
    begin = end + 1;
  }
  return fanouts;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const Flags flags(argc, argv);

  const std::string dataset_name = flags.Get("dataset", "cornell");
  const std::string backbone_name = flags.Get("backbone", "gcn");
  const int num_splits = flags.GetInt("splits", 3);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  // The one master seed: every subsystem seed below derives from it.
  const core::DerivedSeeds seeds = core::DeriveSeeds(seed);

  auto dataset_or = data::MakeDataset(dataset_name, seed);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset = std::move(dataset_or).value();

  auto backbone_or = nn::BackboneFromName(backbone_name);
  if (!backbone_or.ok()) {
    std::fprintf(stderr, "error: %s\n", backbone_or.status().ToString().c_str());
    return 1;
  }
  const nn::BackboneKind backbone = *backbone_or;

  data::SplitOptions so;
  so.num_splits = num_splits;
  so.seed = seeds.splits;
  const auto splits = data::MakeSplits(dataset.labels, dataset.num_classes, so);

  std::printf("dataset=%s nodes=%lld edges=%lld H=%.3f backbone=%s\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              dataset.Homophily(), nn::BackboneName(backbone));

  if (flags.GetBool("minibatch")) {
    if (flags.GetBool("rare")) {
      std::fprintf(stderr,
                   "error: --minibatch and --rare cannot be combined; "
                   "GraphRARE co-training is full-graph only for now\n");
      return 2;
    }
    core::ExperimentOptions opts;
    opts.num_splits = num_splits;
    opts.adam.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
    opts.seed = seed;
    core::MiniBatchOptions mb;
    mb.sampler.fanouts = ParseFanouts(flags.Get("fanouts", "10,10"));
    mb.sampler.replace = flags.GetBool("sample-replace");
    mb.sampler.seed = seeds.sampler;
    mb.batch_size = flags.GetInt("batch-size", 256);
    mb.max_epochs = flags.GetInt("epochs", 100);
    mb.patience = flags.GetInt("patience", 20);
    const auto agg =
        core::RunBackboneMiniBatch(dataset, splits, backbone, opts, mb);
    std::printf("minibatch (batch=%d, fanouts=%s) test accuracy: "
                "%.2f%% (±%.2f) over %d splits\n",
                flags.GetInt("batch-size", 256),
                flags.Get("fanouts", "10,10").c_str(),
                100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev,
                num_splits);
    std::printf("seconds/epoch: %.4f\n", agg.seconds_per_epoch);
    return 0;
  }

  if (!flags.GetBool("rare")) {
    core::ExperimentOptions opts;
    opts.num_splits = num_splits;
    opts.adam.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
    opts.seed = seed;
    const auto agg = core::RunBackbone(dataset, splits, backbone, opts);
    std::printf("test accuracy: %.2f%% (±%.2f) over %d splits\n",
                100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev,
                num_splits);
    std::printf("seconds/epoch: %.4f\n", agg.seconds_per_epoch);
    return 0;
  }

  core::GraphRareOptions opts;
  opts.backbone = backbone;
  opts.adam.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
  opts.iterations = flags.GetInt("iterations", 20);
  opts.entropy.lambda = flags.GetDouble("lambda", 1.0);
  opts.k_max = flags.GetInt("k-max", 5);
  opts.d_max = flags.GetInt("d-max", 5);
  opts.seed = seed;

  const int rl_blocks = flags.GetInt("rl-blocks", 0);
  if (rl_blocks > 0) {
    core::BlockRolloutOptions rollout;
    rollout.blocks_per_round = rl_blocks;
    const std::string fanout_spec = flags.Get("rl-block-fanouts", "10,10");
    rollout.fanouts = fanout_spec == "full"
                          ? std::vector<int64_t>{}
                          : ParseFanouts(fanout_spec);
    rollout.seeds_per_block = flags.GetInt("rl-block-seeds", 64);
    rollout.sample_replace = flags.GetBool("sample-replace");
    rollout.steps_per_episode = flags.GetInt("rl-steps", 4);
    const auto agg = core::RunGraphRareBlocks(dataset, splits, opts, rollout);
    std::printf("block co-training (B=%d, fanouts=%s) test accuracy: "
                "%.2f%% (±%.2f) over %d splits\n",
                rl_blocks, fanout_spec.c_str(), 100.0 * agg.accuracy.mean,
                100.0 * agg.accuracy.stddev, num_splits);
    std::printf("homophily: %.3f -> %.3f, entropy build %.3fs, "
                "edges %lld -> %lld\n",
                agg.mean_initial_homophily, agg.mean_final_homophily,
                agg.mean_entropy_seconds,
                static_cast<long long>(agg.last_run.initial_edges),
                static_cast<long long>(agg.last_run.final_edges));
    const std::string telemetry_path = flags.Get("telemetry", "");
    if (!telemetry_path.empty()) {
      const Status s = core::WriteTelemetryCsv(agg.last_run, telemetry_path);
      if (!s.ok()) {
        std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("telemetry written to %s\n", telemetry_path.c_str());
    }
    const std::string graph_path = flags.Get("save-graph", "");
    if (!graph_path.empty()) {
      const Status s = graph::SaveGraph(agg.last_run.best_graph, graph_path);
      if (!s.ok()) {
        std::fprintf(stderr, "save-graph: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("optimized graph written to %s\n", graph_path.c_str());
    }
    return 0;
  }

  const auto agg = core::RunGraphRare(dataset, splits, opts);
  std::printf("test accuracy: %.2f%% (±%.2f) over %d splits\n",
              100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev,
              num_splits);
  std::printf("homophily: %.3f -> %.3f, entropy build %.3fs\n",
              agg.mean_initial_homophily, agg.mean_final_homophily,
              agg.mean_entropy_seconds);

  const std::string telemetry_path = flags.Get("telemetry", "");
  if (!telemetry_path.empty()) {
    const Status s = core::WriteTelemetryCsv(agg.last_run, telemetry_path);
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", telemetry_path.c_str());
  }
  const std::string graph_path = flags.Get("save-graph", "");
  if (!graph_path.empty()) {
    const Status s = graph::SaveGraph(agg.last_run.best_graph, graph_path);
    if (!s.ok()) {
      std::fprintf(stderr, "save-graph: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("optimized graph written to %s\n", graph_path.c_str());
  }
  return 0;
}

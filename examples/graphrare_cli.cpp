// Command-line runner: train any backbone with or without GraphRARE on any
// registry dataset, export telemetry, the optimized graph, and a
// deployable model artifact — or serve a previously saved artifact.
//
// Usage (training):
//   graphrare_cli [--dataset=cornell] [--backbone=gcn] [--rare]
//                 [--splits=3] [--iterations=20] [--lambda=1.0]
//                 [--k-max=5] [--d-max=5] [--seed=1] [--lr=0.01]
//                 [--minibatch] [--fanouts=10,10] [--batch-size=256]
//                 [--epochs=100] [--sample-replace]
//                 [--rl-blocks=4] [--rl-block-fanouts=10,10]
//                 [--rl-block-seeds=64] [--rl-steps=4]
//                 [--rl-partition=independent|locality]
//                 [--rl-prefetch-depth=1] [--rl-producers=1]
//                 [--rl-entropy-refresh] [--csr-reorder=degree|rcm]
//                 [--telemetry=out.csv] [--save-graph=out.graph]
//                 [--save-artifact=model.grare]
//
// Usage (serving a saved artifact; no dataset or training involved):
//   graphrare_cli --serve-artifact=model.grare --predict=0,1,2
//                 [--topk=3] [--serve-fanouts=10,10] [--seed=1]
//
// --seed is the single master seed: it fans out to the dataset generator,
// splits, entropy candidate sampling, PPO, the neighbor sampler, and the
// env streams through core::DeriveSeeds, so one number pins the whole run.
//
// --rare --rl-blocks=B runs block-scoped co-training: each PPO round
// rewires B neighbor-sampled blocks (SparRL-style) instead of the full
// graph. --rl-block-fanouts=full uses whole-graph blocks (the B=1 special
// case reproduces classic --rare env trajectories); -1 entries mean
// unlimited fanout. --rl-partition=locality grows BFS seed batches so
// blocks overlap less; --rl-prefetch-depth=N samples N rounds of blocks
// ahead of training on --rl-producers threads (0 = inline, same stream
// either way); --rl-entropy-refresh incrementally re-buckets the entropy
// index from each round's merged edits.
//
// --csr-reorder relabels the dataset's nodes before anything else sees
// them (degree = hubs-first degree sort, rcm = reverse Cuthill-McKee), so
// every CSR built afterwards — adjacency operators and partitioned-block
// matrices — has better row locality. Opt-in: relabelling changes float
// accumulation orders, so metrics match the natural ordering to tolerance
// rather than bitwise.
//
// --save-artifact packages the last split's co-trained backbone plus its
// optimized graph (serve::ModelArtifact); it requires --rare since plain
// baselines train one throwaway model per split. --serve-artifact reloads
// such a file into a serve::InferenceEngine: exact full-graph inference by
// default, fanout-bounded sampled inference with --serve-fanouts.
//
// Examples:
//   ./build/examples/graphrare_cli --dataset=texas --backbone=sage --rare
//   ./build/examples/graphrare_cli --dataset=cora --backbone=appnp
//   ./build/examples/graphrare_cli --dataset=pubmed --backbone=sage
//       --minibatch --fanouts=10,10 --batch-size=512
//   ./build/examples/graphrare_cli --dataset=pubmed --backbone=sage --rare
//       --rl-blocks=8 --rl-block-fanouts=10,10 --rl-block-seeds=128
//   ./build/examples/graphrare_cli --dataset=cornell --rare
//       --save-artifact=model.grare
//   ./build/examples/graphrare_cli --serve-artifact=model.grare
//       --predict=0,5,17 --topk=3

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/graphrare.h"
#include "core/telemetry.h"
#include "graph/io.h"
#include "graph/reorder.h"

using namespace graphrare;

namespace {

/// Minimal --key=value parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unrecognised argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "1";  // boolean flag
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::atoi(it->second.c_str());
  }
  bool GetBool(const std::string& key) const { return values_.count(key); }

 private:
  std::map<std::string, std::string> values_;
};

/// Parses "10,10,5" into a fanout vector (-1 entries = unlimited fanout).
std::vector<int64_t> ParseFanouts(const std::string& spec) {
  std::vector<int64_t> fanouts;
  if (!ParseInt64List(spec, &fanouts)) {
    std::fprintf(stderr, "invalid fanout spec: %s\n", spec.c_str());
    std::exit(2);
  }
  for (const int64_t f : fanouts) {
    if (f < 1 && f != -1) {
      std::fprintf(stderr, "invalid fanout spec: %s\n", spec.c_str());
      std::exit(2);
    }
  }
  return fanouts;
}

/// Parses "0,5,17" into a node-id list (non-negative integers).
std::vector<int64_t> ParseNodeIds(const std::string& spec) {
  std::vector<int64_t> ids;
  if (!ParseInt64List(spec, &ids)) {
    std::fprintf(stderr, "invalid node id list: %s\n", spec.c_str());
    std::exit(2);
  }
  for (const int64_t id : ids) {
    if (id < 0) {
      std::fprintf(stderr, "invalid node id list: %s\n", spec.c_str());
      std::exit(2);
    }
  }
  return ids;
}

/// Applies --csr-reorder: relabels the dataset's nodes (graph, feature
/// rows, labels) with a locality-improving permutation before splits or
/// training see it, so every downstream CSR — adjacency operators and the
/// partitioned block path's per-block matrices alike — is built in the
/// reordered id space. Opt-in because relabelling changes the kernels'
/// float accumulation orders: results match the natural ordering to
/// tolerance, not bitwise.
void MaybeReorderDataset(const Flags& flags, data::Dataset* dataset) {
  const std::string spec = flags.Get("csr-reorder", "");
  if (spec.empty()) return;
  graph::ReorderKind kind;
  if (spec == "degree") {
    kind = graph::ReorderKind::kDegreeSort;
  } else if (spec == "rcm") {
    kind = graph::ReorderKind::kRcm;
  } else {
    std::fprintf(stderr, "invalid --csr-reorder: %s (want degree or rcm)\n",
                 spec.c_str());
    std::exit(2);
  }
  const std::vector<int64_t> perm =
      graph::ReorderPermutation(dataset->graph, kind);
  const int64_t n = dataset->graph.num_nodes();
  tensor::Tensor features(n, dataset->features.cols());
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    const int64_t nu = perm[static_cast<size_t>(u)];
    std::copy(dataset->features.row(u),
              dataset->features.row(u) + dataset->features.cols(),
              features.row(nu));
    labels[static_cast<size_t>(nu)] = dataset->labels[static_cast<size_t>(u)];
  }
  dataset->graph = graph::PermuteGraph(dataset->graph, perm);
  dataset->features = std::move(features);
  dataset->labels = std::move(labels);
  std::printf("csr-reorder=%s: relabelled %lld nodes\n", spec.c_str(),
              static_cast<long long>(n));
}

/// --serve-artifact mode: load, predict, print. Returns the process exit
/// code.
int ServeArtifact(const Flags& flags) {
  const std::string artifact_path = flags.Get("serve-artifact", "");
  serve::EngineOptions engine_opts;
  const std::string fanout_spec = flags.Get("serve-fanouts", "");
  if (!fanout_spec.empty()) {
    engine_opts.fanouts = ParseFanouts(fanout_spec);
  }
  engine_opts.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  auto engine_or =
      serve::InferenceEngine::LoadFrom(artifact_path, engine_opts);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  const serve::InferenceEngine& engine = *engine_or;
  const serve::ModelArtifact& art = engine.artifact();
  std::printf("artifact=%s dataset=%s backbone=%s nodes=%lld classes=%lld "
              "mode=%s\n",
              artifact_path.c_str(), art.dataset_name.c_str(),
              nn::BackboneName(art.backbone),
              static_cast<long long>(engine.num_nodes()),
              static_cast<long long>(engine.num_classes()),
              engine.full_graph_mode() ? "full-graph" : "sampled");

  const std::string predict_spec = flags.Get("predict", "");
  if (predict_spec.empty()) {
    std::fprintf(stderr,
                 "error: --serve-artifact needs --predict=ID,ID,...\n");
    return 2;
  }
  const std::vector<int64_t> ids = ParseNodeIds(predict_spec);
  const int topk = flags.GetInt("topk", 1);

  auto preds_or = engine.Predict(ids);
  if (!preds_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 preds_or.status().ToString().c_str());
    return 1;
  }
  for (const serve::Prediction& p : preds_or.value()) {
    std::printf("node %lld -> class %lld",
                static_cast<long long>(p.node),
                static_cast<long long>(p.predicted_class));
    if (topk > 1) {
      // Rank the probabilities already in hand: a fresh engine.TopK call
      // would re-sample in sampled mode and could disagree with p.
      std::printf("  top%d:", topk);
      for (const auto& [cls, prob] : serve::TopKOf(p, topk)) {
        std::printf(" %lld=%.4f", static_cast<long long>(cls), prob);
      }
    } else {
      std::printf("  p=%.4f",
                  p.probabilities[static_cast<size_t>(p.predicted_class)]);
    }
    std::printf("\n");
  }
  return 0;
}

/// Saves the last run's artifact if --save-artifact was given. Returns
/// false on failure.
bool MaybeSaveArtifact(const Flags& flags, const core::GraphRareResult& run,
                       const data::Dataset& dataset) {
  const std::string path = flags.Get("save-artifact", "");
  if (path.empty()) return true;
  auto artifact_or = run.ExportArtifact(dataset);
  if (!artifact_or.ok()) {
    std::fprintf(stderr, "save-artifact: %s\n",
                 artifact_or.status().ToString().c_str());
    return false;
  }
  const Status s = artifact_or->Save(path);
  if (!s.ok()) {
    std::fprintf(stderr, "save-artifact: %s\n", s.ToString().c_str());
    return false;
  }
  std::printf("model artifact written to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  const Flags flags(argc, argv);

  // Serve mode: no dataset, no training — just artifact + queries.
  if (!flags.Get("serve-artifact", "").empty()) {
    return ServeArtifact(flags);
  }

  const std::string dataset_name = flags.Get("dataset", "cornell");
  const std::string backbone_name = flags.Get("backbone", "gcn");
  const int num_splits = flags.GetInt("splits", 3);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  // The one master seed: every subsystem seed below derives from it.
  const core::DerivedSeeds seeds = core::DeriveSeeds(seed);

  auto dataset_or = data::MakeDataset(dataset_name, seed);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset = std::move(dataset_or).value();
  MaybeReorderDataset(flags, &dataset);

  auto backbone_or = nn::BackboneFromName(backbone_name);
  if (!backbone_or.ok()) {
    std::fprintf(stderr, "error: %s\n", backbone_or.status().ToString().c_str());
    return 1;
  }
  const nn::BackboneKind backbone = *backbone_or;

  data::SplitOptions so;
  so.num_splits = num_splits;
  so.seed = seeds.splits;
  const auto splits = data::MakeSplits(dataset.labels, dataset.num_classes, so);

  std::printf("dataset=%s nodes=%lld edges=%lld H=%.3f backbone=%s\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              dataset.Homophily(), nn::BackboneName(backbone));

  // Guarded before any training branch so the flag is never silently
  // dropped: only the --rare paths retain a deployable model.
  if (!flags.Get("save-artifact", "").empty() && !flags.GetBool("rare")) {
    std::fprintf(stderr,
                 "error: --save-artifact requires --rare (baseline runs "
                 "train one throwaway model per split)\n");
    return 2;
  }

  if (flags.GetBool("minibatch")) {
    if (flags.GetBool("rare")) {
      std::fprintf(stderr,
                   "error: --minibatch and --rare cannot be combined; "
                   "GraphRARE co-training is full-graph only for now\n");
      return 2;
    }
    core::ExperimentOptions opts;
    opts.num_splits = num_splits;
    opts.adam.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
    opts.seed = seed;
    core::MiniBatchOptions mb;
    mb.sampler.fanouts = ParseFanouts(flags.Get("fanouts", "10,10"));
    mb.sampler.replace = flags.GetBool("sample-replace");
    mb.sampler.seed = seeds.sampler;
    mb.batch_size = flags.GetInt("batch-size", 256);
    mb.max_epochs = flags.GetInt("epochs", 100);
    mb.patience = flags.GetInt("patience", 20);
    const auto agg =
        core::RunBackboneMiniBatch(dataset, splits, backbone, opts, mb);
    std::printf("minibatch (batch=%d, fanouts=%s) test accuracy: "
                "%.2f%% (±%.2f) over %d splits\n",
                flags.GetInt("batch-size", 256),
                flags.Get("fanouts", "10,10").c_str(),
                100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev,
                num_splits);
    std::printf("seconds/epoch: %.4f\n", agg.seconds_per_epoch);
    return 0;
  }

  if (!flags.GetBool("rare")) {
    core::ExperimentOptions opts;
    opts.num_splits = num_splits;
    opts.adam.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
    opts.seed = seed;
    const auto agg = core::RunBackbone(dataset, splits, backbone, opts);
    std::printf("test accuracy: %.2f%% (±%.2f) over %d splits\n",
                100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev,
                num_splits);
    std::printf("seconds/epoch: %.4f\n", agg.seconds_per_epoch);
    return 0;
  }

  core::GraphRareOptions opts;
  opts.backbone = backbone;
  opts.adam.lr = static_cast<float>(flags.GetDouble("lr", 0.01));
  opts.iterations = flags.GetInt("iterations", 20);
  opts.entropy.lambda = flags.GetDouble("lambda", 1.0);
  opts.k_max = flags.GetInt("k-max", 5);
  opts.d_max = flags.GetInt("d-max", 5);
  opts.seed = seed;

  const int rl_blocks = flags.GetInt("rl-blocks", 0);
  if (rl_blocks > 0) {
    core::BlockRolloutOptions rollout;
    rollout.blocks_per_round = rl_blocks;
    const std::string fanout_spec = flags.Get("rl-block-fanouts", "10,10");
    rollout.fanouts = fanout_spec == "full"
                          ? std::vector<int64_t>{}
                          : ParseFanouts(fanout_spec);
    rollout.seeds_per_block = flags.GetInt("rl-block-seeds", 64);
    rollout.sample_replace = flags.GetBool("sample-replace");
    rollout.steps_per_episode = flags.GetInt("rl-steps", 4);
    const std::string partition = flags.Get("rl-partition", "independent");
    if (partition == "locality") {
      rollout.partition = data::PartitionMode::kLocality;
    } else if (partition != "independent") {
      std::fprintf(stderr, "invalid --rl-partition: %s "
                   "(want independent or locality)\n", partition.c_str());
      return 2;
    }
    rollout.prefetch_depth = flags.GetInt("rl-prefetch-depth", 1);
    rollout.num_producers = flags.GetInt("rl-producers", 1);
    rollout.refresh_entropy = flags.GetBool("rl-entropy-refresh");
    // The locality partitioner seed comes from the master seed like every
    // other subsystem (RunBlockCoTraining re-derives it per split, but
    // setting it here keeps direct BlockRolloutRunner uses pinned too).
    rollout.partition_seed = seeds.partition;
    const auto agg = core::RunGraphRareBlocks(dataset, splits, opts, rollout);
    std::printf("block co-training (B=%d, fanouts=%s, partition=%s, "
                "prefetch=%d) test accuracy: %.2f%% (±%.2f) over %d splits\n",
                rl_blocks, fanout_spec.c_str(), partition.c_str(),
                rollout.prefetch_depth, 100.0 * agg.accuracy.mean,
                100.0 * agg.accuracy.stddev, num_splits);
    std::printf("homophily: %.3f -> %.3f, entropy build %.3fs, "
                "edges %lld -> %lld\n",
                agg.mean_initial_homophily, agg.mean_final_homophily,
                agg.mean_entropy_seconds,
                static_cast<long long>(agg.last_run.initial_edges),
                static_cast<long long>(agg.last_run.final_edges));
    const std::string telemetry_path = flags.Get("telemetry", "");
    if (!telemetry_path.empty()) {
      const Status s = core::WriteTelemetryCsv(agg.last_run, telemetry_path);
      if (!s.ok()) {
        std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("telemetry written to %s\n", telemetry_path.c_str());
    }
    const std::string graph_path = flags.Get("save-graph", "");
    if (!graph_path.empty()) {
      const Status s = graph::SaveGraph(agg.last_run.best_graph, graph_path);
      if (!s.ok()) {
        std::fprintf(stderr, "save-graph: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("optimized graph written to %s\n", graph_path.c_str());
    }
    if (!MaybeSaveArtifact(flags, agg.last_run, dataset)) return 1;
    return 0;
  }

  const auto agg = core::RunGraphRare(dataset, splits, opts);
  std::printf("test accuracy: %.2f%% (±%.2f) over %d splits\n",
              100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev,
              num_splits);
  std::printf("homophily: %.3f -> %.3f, entropy build %.3fs\n",
              agg.mean_initial_homophily, agg.mean_final_homophily,
              agg.mean_entropy_seconds);

  const std::string telemetry_path = flags.Get("telemetry", "");
  if (!telemetry_path.empty()) {
    const Status s = core::WriteTelemetryCsv(agg.last_run, telemetry_path);
    if (!s.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("telemetry written to %s\n", telemetry_path.c_str());
  }
  const std::string graph_path = flags.Get("save-graph", "");
  if (!graph_path.empty()) {
    const Status s = graph::SaveGraph(agg.last_run.best_graph, graph_path);
    if (!s.ok()) {
      std::fprintf(stderr, "save-graph: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("optimized graph written to %s\n", graph_path.c_str());
  }
  if (!MaybeSaveArtifact(flags, agg.last_run, dataset)) return 1;
  return 0;
}

// Serving daemon for GraphRARE model artifacts — the deploy half of the
// train -> artifact -> serve pipeline. Two front-ends, one dispatch path:
// every query, whether it arrives on stdin, from a --queries file, or over
// HTTP, goes through the same serve::EngineHandle ->
// net::ContinuousBatcher pipeline, and every completion lands in the same
// latency accounting, so the percentile report printed at shutdown means
// the same thing in all modes.
//
// Usage:
//   graphrare_serve --artifact=model.grare [--queries=FILE] [--topk=3]
//                   [--fanouts=10,10] [--batch] [--seed=1]
//                   [--http=PORT] [--max-batch=16] [--max-delay-ms=2]
//                   [--workers=1] [--slo-ms=50] [--deadline-ms=0]
//                   [--batch-budget-ms=0] [--breaker-threshold=3]
//                   [--breaker-cooldown-ms=5000]
//
// Robustness knobs (HTTP mode): --deadline-ms gives every /v1/predict and
// /v1/topk request a default deadline (clients override per request with
// X-Deadline-Ms); queued work that outlives its deadline is shed with
// 503 + Retry-After. --batch-budget-ms arms the overload watchdog that
// adaptively shrinks the batch cap when engine calls blow their budget.
// --breaker-threshold/--breaker-cooldown-ms tune the reload circuit
// breaker. The GRAPHRARE_FAILPOINTS environment variable injects faults
// for chaos drills (see src/common/failpoint.h for the spec grammar).
//
// CLI mode (default): one query per line, each a whitespace-separated list
// of node ids. Queries run one at a time through the batcher (the
// per-query latency percentiles measure exactly that); with --batch all
// queries are submitted up front and the batcher coalesces them into full
// engine calls.
//
// HTTP mode (--http=PORT): serves POST /v1/predict, POST /v1/topk,
// POST /v1/reload (artifact hot-swap), GET /healthz, and GET /metrics on
// 127.0.0.1:PORT until SIGINT/SIGTERM.
//
// Both modes shut down gracefully on SIGINT/SIGTERM: stop admitting work,
// drain everything in flight, then print final percentiles.
//
// Produce an artifact with:
//   graphrare_cli --dataset=cornell --rare --save-artifact=model.grare

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "core/graphrare.h"
#include "net/batcher.h"
#include "net/server.h"

using namespace graphrare;

namespace {

std::atomic<net::HttpServer*> g_server{nullptr};
volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) {
  g_stop = 1;
  if (net::HttpServer* server = g_server.load()) server->Shutdown();
}

void InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read must return so
                    // the CLI loop can drain and report
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void PrintLatencySummary(const char* label, const LatencySummary& s) {
  if (s.count == 0) return;
  std::printf("# %s latency (n=%lld): p50 %.3fms  p90 %.3fms  "
              "p99 %.3fms  max %.3fms\n",
              label, static_cast<long long>(s.count), s.p50, s.p90, s.p99,
              s.max);
}

/// The shared dispatch seam: submits through the batcher and records the
/// submit->completion time of every query into one recorder.
struct Dispatcher {
  net::ContinuousBatcher& batcher;
  LatencyRecorder latency_ms;

  /// Submits one query and blocks for its answer. Retries briefly when the
  /// admission queue is full; any other Submit failure is returned.
  Result<std::vector<serve::Prediction>> Ask(std::vector<int64_t> ids) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Result<std::vector<serve::Prediction>> out =
        Status::Internal("no completion delivered");
    const Stopwatch watch;
    while (true) {
      Status admitted = batcher.Submit(
          ids, [&](Result<std::vector<serve::Prediction>> r) {
            std::lock_guard<std::mutex> lock(mu);
            out = std::move(r);
            done = true;
            cv.notify_one();
          });
      if (admitted.ok()) break;
      if (g_stop || admitted.message() != "request queue is full") {
        return admitted;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    latency_ms.Record(watch.ElapsedMillis());
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string artifact_path, queries_path, fanout_spec;
  int topk = 1;
  bool batch = false;
  uint64_t seed = 1;
  int http_port = -1;
  net::BatcherOptions batcher_opts;
  double slo_ms = 50.0;
  double deadline_ms = 0.0;
  int breaker_threshold = 3;
  double breaker_cooldown_ms = 5000.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                       : nullptr;
    };
    if (const char* v = value("--artifact=")) {
      artifact_path = v;
    } else if (const char* v = value("--queries=")) {
      queries_path = v;
    } else if (const char* v = value("--fanouts=")) {
      fanout_spec = v;
    } else if (const char* v = value("--topk=")) {
      topk = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--http=")) {
      http_port = std::atoi(v);
    } else if (const char* v = value("--max-batch=")) {
      batcher_opts.max_batch = std::atoi(v);
    } else if (const char* v = value("--max-delay-ms=")) {
      batcher_opts.max_queue_delay_ms = std::atof(v);
    } else if (const char* v = value("--workers=")) {
      batcher_opts.num_workers = std::atoi(v);
    } else if (const char* v = value("--slo-ms=")) {
      slo_ms = std::atof(v);
    } else if (const char* v = value("--deadline-ms=")) {
      deadline_ms = std::atof(v);
    } else if (const char* v = value("--batch-budget-ms=")) {
      batcher_opts.batch_budget_ms = std::atof(v);
    } else if (const char* v = value("--breaker-threshold=")) {
      breaker_threshold = std::atoi(v);
    } else if (const char* v = value("--breaker-cooldown-ms=")) {
      breaker_cooldown_ms = std::atof(v);
    } else if (arg == "--batch") {
      batch = true;
    } else {
      std::fprintf(stderr, "unrecognised argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (artifact_path.empty()) {
    std::fprintf(stderr,
                 "usage: graphrare_serve --artifact=model.grare "
                 "[--queries=FILE] [--topk=K] [--fanouts=10,10] [--batch] "
                 "[--http=PORT] [--max-batch=N] [--max-delay-ms=MS] "
                 "[--workers=N] [--slo-ms=MS] [--deadline-ms=MS] "
                 "[--batch-budget-ms=MS] [--breaker-threshold=N] "
                 "[--breaker-cooldown-ms=MS]\n");
    return 2;
  }
  if (const Status s = batcher_opts.Validate(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 2;
  }

  // Chaos drills: GRAPHRARE_FAILPOINTS=site=spec;... arms fault injection
  // before any artifact or socket I/O happens.
  if (const int n = failpoint::ConfigureFromEnv(); n > 0) {
    std::printf("# fail points armed from GRAPHRARE_FAILPOINTS: %d site%s\n",
                n, n == 1 ? "" : "s");
  }

  serve::EngineOptions opts;
  if (!fanout_spec.empty() &&
      !ParseInt64List(fanout_spec, &opts.fanouts)) {
    std::fprintf(stderr, "error: invalid --fanouts=%s\n",
                 fanout_spec.c_str());
    return 2;
  }
  opts.seed = seed;  // fanout *values* are validated by the engine

  Stopwatch load_watch;
  auto engine_or = serve::InferenceEngine::LoadFrom(artifact_path, opts);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  auto handle = std::make_shared<serve::EngineHandle>(
      std::make_shared<const serve::InferenceEngine>(
          std::move(engine_or.value())));
  {
    const auto engine = handle->Get();
    std::printf("# loaded %s (%s, %lld nodes, %lld classes, %s mode) "
                "in %.3fs\n",
                artifact_path.c_str(),
                nn::BackboneName(engine->artifact().backbone),
                static_cast<long long>(engine->num_nodes()),
                static_cast<long long>(engine->num_classes()),
                engine->full_graph_mode() ? "full-graph" : "sampled",
                load_watch.ElapsedSeconds());
  }

  auto batcher =
      std::make_shared<net::ContinuousBatcher>(handle, batcher_opts);
  InstallSignalHandlers();

  if (http_port >= 0) {
    net::HttpServerOptions server_opts;
    server_opts.port = http_port;
    server_opts.slo_ms = slo_ms;
    server_opts.default_deadline_ms = deadline_ms;
    server_opts.reload_breaker_threshold = breaker_threshold;
    server_opts.reload_breaker_cooldown_ms = breaker_cooldown_ms;
    server_opts.batcher = batcher_opts;
    net::HttpServer server(handle, batcher, server_opts);
    if (const Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("# serving on http://%s:%d (max_batch=%d, "
                "max_delay=%.1fms, workers=%d, slo=%.1fms)\n",
                server_opts.host.c_str(), server.port(),
                batcher_opts.max_batch, batcher_opts.max_queue_delay_ms,
                batcher_opts.num_workers, slo_ms);
    std::fflush(stdout);
    g_server.store(&server);
    if (g_stop) server.Shutdown();  // signal raced the store
    server.Run();
    g_server.store(nullptr);

    const net::BatcherStats stats = server.batcher().Stats();
    std::printf("# shutdown: %lld connections, %lld requests in %lld "
                "batches (max batch %lld)\n",
                static_cast<long long>(server.connections_total()),
                static_cast<long long>(stats.submitted),
                static_cast<long long>(stats.batches),
                static_cast<long long>(stats.max_batch_seen));
    for (const net::RouteStats& route : server.AllRouteStats()) {
      PrintLatencySummary(route.route.c_str(), route.latency_ms);
    }
    batcher->Stop();
    return 0;
  }

  // CLI mode: queries from a file, or stdin when --queries is omitted.
  std::ifstream file;
  if (!queries_path.empty()) {
    file.open(queries_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   queries_path.c_str());
      return 1;
    }
  }
  std::istream& in = queries_path.empty() ? std::cin : file;

  auto parse_line = [](const std::string& line) {
    std::istringstream ss(line);
    std::vector<int64_t> ids;
    int64_t id = 0;
    while (ss >> id) ids.push_back(id);
    return ids;
  };
  auto print_predictions = [&](const std::vector<serve::Prediction>& preds) {
    for (const serve::Prediction& p : preds) {
      std::printf("node %lld -> class %lld",
                  static_cast<long long>(p.node),
                  static_cast<long long>(p.predicted_class));
      if (topk > 1) {
        // Rank the returned probabilities directly so the list always
        // agrees with the prediction on this line (engine.TopK would
        // re-sample in sampled mode).
        for (const auto& [cls, prob] : serve::TopKOf(p, topk)) {
          std::printf(" %lld=%.4f", static_cast<long long>(cls), prob);
        }
      }
      std::printf("\n");
    }
  };

  Dispatcher dispatcher{*batcher, LatencyRecorder()};
  size_t num_queries = 0;
  int64_t total_nodes = 0;
  bool interrupted = false;
  const Stopwatch total_watch;
  std::string line;

  if (batch) {
    // Submit everything up front; the batcher coalesces arrivals into full
    // engine calls. Answers print in submission order.
    std::vector<std::vector<int64_t>> requests;
    while (!g_stop && std::getline(in, line)) {
      auto ids = parse_line(line);
      if (!ids.empty()) requests.push_back(std::move(ids));
    }
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Result<std::vector<serve::Prediction>>> results(
        requests.size(), Status::Internal("no completion delivered"));
    size_t remaining = requests.size();
    for (size_t i = 0; i < requests.size(); ++i) {
      const Stopwatch watch;
      while (true) {
        Status admitted = batcher->Submit(
            requests[i],
            [&, i, watch](Result<std::vector<serve::Prediction>> r) {
              std::lock_guard<std::mutex> lock(mu);
              dispatcher.latency_ms.Record(watch.ElapsedMillis());
              results[i] = std::move(r);
              if (--remaining == 0) cv.notify_one();
            });
        if (admitted.ok()) break;
        if (admitted.message() != "request queue is full") {
          std::fprintf(stderr, "error: %s\n",
                       admitted.ToString().c_str());
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      total_nodes += static_cast<int64_t>(requests[i].size());
    }
    num_queries = requests.size();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return remaining == 0; });
    }
    for (const auto& result : results) {
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      print_predictions(result.value());
    }
  } else {
    // Streaming: answer each line as it arrives. A signal interrupts the
    // blocked read (no SA_RESTART), so the loop falls through to the
    // drain + report below.
    while (!g_stop && std::getline(in, line)) {
      auto ids = parse_line(line);
      if (ids.empty()) continue;
      total_nodes += static_cast<int64_t>(ids.size());
      auto result = dispatcher.Ask(std::move(ids));
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      print_predictions(result.value());
      ++num_queries;
    }
  }
  interrupted = g_stop != 0;
  batcher->Stop();  // drains anything still queued

  if (num_queries == 0 && !interrupted) {
    std::fprintf(stderr, "error: no queries (one 'id id ...' per line)\n");
    return 2;
  }
  const double total_s = total_watch.ElapsedSeconds();
  std::printf("# %zu queries (%lld nodes) in %.3fs -> %.0f nodes/s%s\n",
              num_queries, static_cast<long long>(total_nodes), total_s,
              total_s > 0 ? static_cast<double>(total_nodes) / total_s : 0.0,
              interrupted ? " (interrupted; drained)" : "");
  PrintLatencySummary("per-query", dispatcher.latency_ms.Summary());
  return 0;
}

// Minimal serving daemon built on serve::InferenceEngine: load a model
// artifact once, answer node-classification queries from a file or stdin,
// and report latency percentiles — the deploy half of the GraphRARE
// train -> artifact -> serve pipeline.
//
// Usage:
//   graphrare_serve --artifact=model.grare [--queries=FILE] [--topk=3]
//                   [--fanouts=10,10] [--batch] [--seed=1]
//
// Query input (FILE, or stdin when --queries is omitted): one query per
// line, each a whitespace-separated list of node ids. With --batch all
// queries are answered by one PredictBatch call (OpenMP-parallel);
// otherwise they run one Predict at a time, which is what the per-query
// latency percentiles measure.
//
// Produce an artifact with:
//   graphrare_cli --dataset=cornell --rare --save-artifact=model.grare

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/stopwatch.h"
#include "core/graphrare.h"

using namespace graphrare;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string artifact_path, queries_path, fanout_spec;
  int topk = 1;
  bool batch = false;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + std::strlen(prefix)
                                       : nullptr;
    };
    if (const char* v = value("--artifact=")) {
      artifact_path = v;
    } else if (const char* v = value("--queries=")) {
      queries_path = v;
    } else if (const char* v = value("--fanouts=")) {
      fanout_spec = v;
    } else if (const char* v = value("--topk=")) {
      topk = std::atoi(v);
    } else if (const char* v = value("--seed=")) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--batch") {
      batch = true;
    } else {
      std::fprintf(stderr, "unrecognised argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (artifact_path.empty()) {
    std::fprintf(stderr,
                 "usage: graphrare_serve --artifact=model.grare "
                 "[--queries=FILE] [--topk=K] [--fanouts=10,10] "
                 "[--batch]\n");
    return 2;
  }

  serve::EngineOptions opts;
  if (!fanout_spec.empty() &&
      !ParseInt64List(fanout_spec, &opts.fanouts)) {
    std::fprintf(stderr, "error: invalid --fanouts=%s\n",
                 fanout_spec.c_str());
    return 2;
  }
  opts.seed = seed;  // fanout *values* are validated by the engine

  Stopwatch load_watch;
  auto engine_or = serve::InferenceEngine::LoadFrom(artifact_path, opts);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  const serve::InferenceEngine& engine = *engine_or;
  std::printf("# loaded %s (%s, %lld nodes, %lld classes, %s mode) "
              "in %.3fs\n",
              artifact_path.c_str(),
              nn::BackboneName(engine.artifact().backbone),
              static_cast<long long>(engine.num_nodes()),
              static_cast<long long>(engine.num_classes()),
              engine.full_graph_mode() ? "full-graph" : "sampled",
              load_watch.ElapsedSeconds());

  // Read queries: one per line, whitespace-separated node ids.
  std::ifstream file;
  if (!queries_path.empty()) {
    file.open(queries_path);
    if (!file) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   queries_path.c_str());
      return 1;
    }
  }
  std::istream& in = queries_path.empty() ? std::cin : file;
  std::vector<std::vector<int64_t>> requests;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    std::vector<int64_t> ids;
    int64_t id = 0;
    while (ss >> id) ids.push_back(id);
    if (!ids.empty()) requests.push_back(std::move(ids));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "error: no queries (one 'id id ...' per line)\n");
    return 2;
  }

  auto print_predictions = [&](const std::vector<serve::Prediction>& preds) {
    for (const serve::Prediction& p : preds) {
      std::printf("node %lld -> class %lld",
                  static_cast<long long>(p.node),
                  static_cast<long long>(p.predicted_class));
      if (topk > 1) {
        // Rank the returned probabilities directly so the list always
        // agrees with the prediction on this line (engine.TopK would
        // re-sample in sampled mode).
        for (const auto& [cls, prob] : serve::TopKOf(p, topk)) {
          std::printf(" %lld=%.4f", static_cast<long long>(cls), prob);
        }
      }
      std::printf("\n");
    }
  };

  int64_t total_nodes = 0;
  for (const auto& r : requests) {
    total_nodes += static_cast<int64_t>(r.size());
  }
  Stopwatch total_watch;
  std::vector<double> latencies_ms;
  if (batch) {
    auto results = engine.PredictBatch(requests);
    if (!results.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    for (const auto& preds : results.value()) print_predictions(preds);
  } else {
    latencies_ms.reserve(requests.size());
    for (const auto& request : requests) {
      Stopwatch watch;
      auto preds = engine.Predict(request);
      if (!preds.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     preds.status().ToString().c_str());
        return 1;
      }
      latencies_ms.push_back(watch.ElapsedSeconds() * 1e3);
      print_predictions(preds.value());
    }
  }
  const double total_s = total_watch.ElapsedSeconds();

  std::printf("# %zu queries (%lld nodes) in %.3fs -> %.0f nodes/s\n",
              requests.size(), static_cast<long long>(total_nodes),
              total_s, static_cast<double>(total_nodes) / total_s);
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    std::printf("# per-query latency: p50 %.3fms  p90 %.3fms  p99 %.3fms  "
                "max %.3fms\n",
                Percentile(latencies_ms, 0.50),
                Percentile(latencies_ms, 0.90),
                Percentile(latencies_ms, 0.99), latencies_ms.back());
  }
  return 0;
}

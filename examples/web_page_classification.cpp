// Web-page classification on a WebKB-style university web graph — the
// paper's core benchmark family (Cornell/Texas/Wisconsin).
//
// University web pages link across categories (student pages link to
// faculty, courses link to staff), so hyperlink neighbourhoods are
// heterophilic while page text (bag of words) is strongly predictive. This
// example compares every backbone and shows what GraphRARE adds on top of
// the strongest one, and demonstrates the lambda knob of the relative
// entropy (Eq. 9).
//
// Run: ./build/examples/web_page_classification

#include <cstdio>

#include "core/graphrare.h"

using namespace graphrare;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("=== Web page classification (WebKB-style) ===\n\n");

  // The registry's Texas twin: 183 pages, H = 0.11 — the most heterophilic
  // dataset in the paper.
  data::Dataset pages = *data::MakeDataset("texas", /*seed=*/7);
  std::printf("Web graph: %lld pages, %lld hyperlinks, homophily %.2f\n\n",
              static_cast<long long>(pages.num_nodes()),
              static_cast<long long>(pages.graph.num_edges()),
              pages.Homophily());

  data::SplitOptions so;
  so.num_splits = 3;
  const auto splits = data::MakeSplits(pages.labels, pages.num_classes, so);

  // 1. Backbone shoot-out on the raw hyperlink graph.
  std::printf("%-12s %s\n", "Backbone", "Test accuracy (raw topology)");
  core::ExperimentOptions exp;
  exp.num_splits = 3;
  double best_acc = 0.0;
  nn::BackboneKind best_kind = nn::BackboneKind::kMlp;
  for (nn::BackboneKind kind :
       {nn::BackboneKind::kMlp, nn::BackboneKind::kGcn,
        nn::BackboneKind::kSage, nn::BackboneKind::kGat,
        nn::BackboneKind::kH2Gcn}) {
    const auto agg = core::RunBackbone(pages, splits, kind, exp);
    std::printf("%-12s %.2f%% (±%.2f)\n", nn::BackboneName(kind),
                100.0 * agg.accuracy.mean, 100.0 * agg.accuracy.stddev);
    if (agg.accuracy.mean > best_acc && kind != nn::BackboneKind::kMlp) {
      best_acc = agg.accuracy.mean;
      best_kind = kind;
    }
  }

  // 2. GraphRARE on the strongest graph backbone.
  std::printf("\nEnhancing %s with GraphRARE...\n",
              nn::BackboneName(best_kind));
  core::GraphRareOptions rare;
  rare.backbone = best_kind;
  rare.adam.lr = 0.01f;
  rare.iterations = 16;
  const auto enhanced = core::RunGraphRare(pages, splits, rare);
  std::printf("%s-RARE: %.2f%% (±%.2f), homophily %.2f -> %.2f\n",
              nn::BackboneName(best_kind), 100.0 * enhanced.accuracy.mean,
              100.0 * enhanced.accuracy.stddev,
              enhanced.mean_initial_homophily,
              enhanced.mean_final_homophily);

  // 3. The lambda knob: feature entropy only (0.1) vs balanced (1.0) vs
  //    structure-heavy (10).
  std::printf("\nRelative-entropy mixing weight (Eq. 9):\n");
  for (double lambda : {0.1, 1.0, 10.0}) {
    core::GraphRareOptions opts = rare;
    opts.entropy.lambda = lambda;
    opts.iterations = 12;
    const auto agg = core::RunGraphRare(
        pages, {splits.begin(), splits.begin() + 1}, opts);
    std::printf("  lambda=%-5.1f -> %.2f%%\n", lambda,
                100.0 * agg.accuracy.mean);
  }
  std::printf(
      "\nTakeaway: on feature-rich heterophilic graphs the MLP already beats\n"
      "vanilla GNNs (the paper's Table III pattern); GraphRARE rewires the\n"
      "topology until message passing helps instead of hurting.\n");
  return 0;
}

// Quickstart: the smallest useful GraphRARE program.
//
// Generates a heterophilic graph, trains a plain GCN baseline, then trains
// GCN-RARE (entropy-guided, DRL-optimized topology) and compares test
// accuracy and graph homophily.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/graphrare.h"

using namespace graphrare;

int main() {
  SetLogLevel(LogLevel::kWarning);

  // 1. A dataset. Registry names: chameleon, squirrel, cornell, texas,
  //    wisconsin, cora, pubmed (synthetic twins of the paper's benchmarks).
  auto dataset_or = data::MakeDataset("cornell", /*seed=*/1);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset = std::move(dataset_or).value();
  std::printf("Loaded %s: %lld nodes, %lld edges, homophily %.2f\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.graph.num_edges()),
              dataset.Homophily());

  // 2. The paper's split protocol: 60/20/20 per class.
  const auto splits = data::MakeSplits(dataset.labels, dataset.num_classes);

  // 3. Baseline: plain GCN on the original topology.
  core::ExperimentOptions baseline_opts;
  baseline_opts.num_splits = 3;
  const auto baseline = core::RunBackbone(
      dataset, {splits.begin(), splits.begin() + 3}, nn::BackboneKind::kGcn,
      baseline_opts);
  std::printf("GCN baseline:  %.2f%% (±%.2f) test accuracy\n",
              100.0 * baseline.accuracy.mean, 100.0 * baseline.accuracy.stddev);

  // 4. GraphRARE: co-train the same backbone with the PPO topology agent.
  core::GraphRareOptions rare_opts;
  rare_opts.backbone = nn::BackboneKind::kGcn;
  rare_opts.adam.lr = 0.01f;
  rare_opts.iterations = 16;
  const auto rare = core::RunGraphRare(
      dataset, {splits.begin(), splits.begin() + 3}, rare_opts);
  std::printf("GCN-RARE:      %.2f%% (±%.2f) test accuracy\n",
              100.0 * rare.accuracy.mean, 100.0 * rare.accuracy.stddev);
  std::printf("Homophily:     %.2f -> %.2f after topology optimization\n",
              rare.mean_initial_homophily, rare.mean_final_homophily);
  std::printf("Entropy build: %.3fs (computed once before co-training)\n",
              rare.mean_entropy_seconds);

  // 5. Inspect the last run's optimized graph.
  const core::GraphRareResult& last = rare.last_run;
  std::printf("Optimized graph: %lld -> %lld edges\n",
              static_cast<long long>(last.initial_edges),
              static_cast<long long>(last.final_edges));
  return 0;
}

// Copyright 2026 The GraphRARE Authors.
//
// Simplified-but-faithful implementations of the feature-similarity rewiring
// SOTA family the paper compares against (Table III):
//
//  * UGCN* — Universal GCN's core idea: connect each node to its top-k most
//    cosine-similar nodes (kNN graph), union with the original topology,
//    train a GCN on the result.
//  * SimP-GCN* — SimP-GCN's core idea: propagate over a learned blend of
//    the original normalised adjacency and a feature-kNN operator, with the
//    blend weight trained end-to-end.
//
// Both rely on a fixed top-k — exactly the "no node personality" weakness
// GraphRARE's per-node DRL-chosen (k, d) addresses.

#ifndef GRAPHRARE_CORE_REWIRING_BASELINES_H_
#define GRAPHRARE_CORE_REWIRING_BASELINES_H_

#include <memory>

#include "data/dataset.h"
#include "entropy/feature_entropy.h"
#include "nn/models.h"

namespace graphrare {
namespace core {

/// Options for feature-similarity kNN graph construction.
struct KnnGraphOptions {
  int k = 5;
  entropy::FeatureEmbeddingOptions embedding;
  /// Exact kNN for graphs up to this size; larger graphs score a sampled
  /// candidate pool per node (documented approximation).
  int64_t exact_limit = 4096;
  int64_t sampled_candidates = 512;
  uint64_t seed = 19;
};

/// Builds the cosine-similarity kNN graph over node features.
graph::Graph BuildKnnGraph(const tensor::Tensor& features,
                           const KnnGraphOptions& options);

/// UGCN*: union of the original edges and the feature kNN edges.
graph::Graph BuildUgcnStarGraph(const data::Dataset& dataset,
                                const KnnGraphOptions& options);

/// SimP-GCN*: a 2-layer GCN propagating over
///   P = s * norm_adj(G) + (1 - s) * norm_adj(kNN),
/// with s = sigmoid(theta) learned jointly. The kNN operator is fixed at
/// construction; the graph operator follows whatever graph is passed in.
class SimpGcnStarModel : public nn::NodeClassifier {
 public:
  SimpGcnStarModel(const nn::ModelOptions& options,
                   std::shared_ptr<const tensor::CsrMatrix> knn_operator);

  tensor::Variable Logits(const nn::ModelInputs& in, bool training,
                          Rng* rng) const override;
  /// Reported as GCN-family (custom baselines have no dedicated enum).
  nn::BackboneKind kind() const override { return nn::BackboneKind::kGcn; }

  /// Current mixing weight sigmoid(theta) (diagnostics).
  float MixingWeight() const;

 private:
  std::unique_ptr<nn::Linear> lin1_;
  std::unique_ptr<nn::Linear> lin2_;
  tensor::Variable theta_;
  std::shared_ptr<const tensor::CsrMatrix> knn_operator_;
  float dropout_;
};

/// Normalised adjacency D^{-1/2}(A+I)D^{-1/2} of an arbitrary graph
/// (helper shared with benches).
std::shared_ptr<const tensor::CsrMatrix> NormalizedOperator(
    const graph::Graph& g);

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_REWIRING_BASELINES_H_

#include "core/topology_optimizer.h"

namespace graphrare {
namespace core {

void AppendEditsForNode(int64_t v, const TopologyState& state,
                        const entropy::RelativeEntropyIndex& index,
                        const TopologyOptimizerOptions& options,
                        NodeEdits* out) {
  GR_CHECK(out != nullptr);
  out->add.clear();
  out->remove.clear();
  const entropy::NodeSequences& seq = index.sequences(v);
  if (options.enable_add) {
    const int64_t k = std::min<int64_t>(
        state.k(v), static_cast<int64_t>(seq.remote.size()));
    out->add.reserve(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      out->add.push_back(seq.remote[static_cast<size_t>(i)].node);
    }
  }
  if (options.enable_remove) {
    const int64_t d = std::min<int64_t>(
        state.d(v), static_cast<int64_t>(seq.neighbors.size()));
    out->remove.reserve(static_cast<size_t>(d));
    for (int64_t i = 0; i < d; ++i) {
      out->remove.push_back(seq.neighbors[static_cast<size_t>(i)].node);
    }
  }
}

NodeEdits EditsForNode(int64_t v, const TopologyState& state,
                       const entropy::RelativeEntropyIndex& index,
                       const TopologyOptimizerOptions& options) {
  NodeEdits edits;
  AppendEditsForNode(v, state, index, options, &edits);
  return edits;
}

graph::Graph BuildOptimizedGraph(const graph::Graph& original,
                                 const TopologyState& state,
                                 const entropy::RelativeEntropyIndex& index,
                                 const TopologyOptimizerOptions& options) {
  GR_CHECK_EQ(original.num_nodes(), state.num_nodes());
  GR_CHECK_EQ(original.num_nodes(), index.num_nodes());
  graph::GraphEditor editor(&original);
  NodeEdits edits;  // reused across nodes: the per-step loop is a hot path
  for (int64_t v = 0; v < original.num_nodes(); ++v) {
    AppendEditsForNode(v, state, index, options, &edits);
    for (const int64_t u : edits.add) editor.AddEdge(v, u);
    for (const int64_t u : edits.remove) editor.RemoveEdge(v, u);
  }
  return editor.Build();
}

}  // namespace core
}  // namespace graphrare

#include "core/topology_optimizer.h"

namespace graphrare {
namespace core {

graph::Graph BuildOptimizedGraph(const graph::Graph& original,
                                 const TopologyState& state,
                                 const entropy::RelativeEntropyIndex& index,
                                 const TopologyOptimizerOptions& options) {
  GR_CHECK_EQ(original.num_nodes(), state.num_nodes());
  GR_CHECK_EQ(original.num_nodes(), index.num_nodes());
  graph::GraphEditor editor(&original);
  for (int64_t v = 0; v < original.num_nodes(); ++v) {
    const entropy::NodeSequences& seq = index.sequences(v);
    if (options.enable_add) {
      const int64_t k = std::min<int64_t>(state.k(v),
                                          static_cast<int64_t>(seq.remote.size()));
      for (int64_t i = 0; i < k; ++i) {
        editor.AddEdge(v, seq.remote[static_cast<size_t>(i)].node);
      }
    }
    if (options.enable_remove) {
      const int64_t d = std::min<int64_t>(
          state.d(v), static_cast<int64_t>(seq.neighbors.size()));
      for (int64_t i = 0; i < d; ++i) {
        editor.RemoveEdge(v, seq.neighbors[static_cast<size_t>(i)].node);
      }
    }
  }
  return editor.Build();
}

}  // namespace core
}  // namespace graphrare

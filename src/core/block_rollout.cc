#include "core/block_rollout.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "nn/metrics.h"
#include "core/observation.h"
#include "core/topology_optimizer.h"

namespace graphrare {
namespace core {

Result<serve::ModelArtifact> BlockCoTrainResult::ExportArtifact(
    const data::Dataset& dataset) const {
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "result holds no trained model (was it produced by "
        "RunBlockCoTraining?)");
  }
  return PackageArtifact(*model, backbone, model_options, seed, best_graph,
                         dataset);
}

Status BlockRolloutOptions::Validate() const {
  if (blocks_per_round < 1) {
    return Status::InvalidArgument("blocks_per_round must be >= 1");
  }
  if (seeds_per_block < 1) {
    return Status::InvalidArgument("seeds_per_block must be >= 1");
  }
  if (steps_per_episode < 1) {
    return Status::InvalidArgument("steps_per_episode must be >= 1");
  }
  if (prefetch_depth < 0) {
    return Status::InvalidArgument("prefetch_depth must be >= 0");
  }
  if (num_producers < 1) {
    return Status::InvalidArgument("num_producers must be >= 1");
  }
  for (const int64_t f : fanouts) {
    if (f < 1 && f != -1) {
      return Status::InvalidArgument(
          "every fanout must be >= 1 (or -1 for unlimited)");
    }
  }
  return env.Validate();
}

// ---- BlockTopologyEnv ------------------------------------------------------

BlockTopologyEnv::BlockTopologyEnv(
    const data::Dataset* dataset, graph::Subgraph block,
    const std::vector<int64_t>& sorted_train_global,
    nn::MiniBatchTrainer* trainer, entropy::RelativeEntropyIndex block_index,
    const TopologyEnvOptions& options)
    : dataset_(dataset),
      trainer_(trainer),
      options_(options),
      block_(std::move(block)),
      index_(std::move(block_index)) {
  GR_CHECK(dataset != nullptr && trainer != nullptr);
  GR_CHECK_OK(options_.Validate());
  GR_CHECK_EQ(index_.num_nodes(), block_.num_nodes());

  // Train view: same nodes and (initially) topology as the block, seeds =
  // block intersect train, ascending. Both inputs are sorted, so one
  // two-pointer sweep suffices.
  view_.nodes = block_.nodes;
  view_.graph = block_.graph;
  size_t ti = 0;
  for (size_t l = 0; l < block_.nodes.size(); ++l) {
    const int64_t g = block_.nodes[l];
    while (ti < sorted_train_global.size() && sorted_train_global[ti] < g) {
      ++ti;
    }
    if (ti < sorted_train_global.size() && sorted_train_global[ti] == g) {
      view_.seed_local.push_back(static_cast<int64_t>(l));
      view_.seed_global.push_back(g);
    }
  }
  GR_CHECK(!view_.seed_local.empty())
      << "BlockTopologyEnv: block contains no train nodes";

  if (options_.reward.kind == RewardKind::kAuc) {
    block_labels_.reserve(block_.nodes.size());
    for (const int64_t g : block_.nodes) {
      block_labels_.push_back(dataset_->labels[static_cast<size_t>(g)]);
    }
  }
}

int64_t BlockTopologyEnv::obs_dim() const { return kObservationDim; }

RewardInputs BlockTopologyEnv::Evaluate() {
  RewardInputs out;
  const nn::EvalResult eval = trainer_->EvaluateBlock(view_);
  out.accuracy = eval.accuracy;
  out.loss = eval.loss;
  if (options_.reward.kind == RewardKind::kAuc) {
    out.auc = nn::MacroAucOvr(trainer_->EvalLogitsBlock(view_),
                              block_labels_, view_.seed_local,
                              dataset_->num_classes);
  }
  return out;
}

tensor::Tensor BlockTopologyEnv::Reset() {
  state_ = std::make_unique<TopologyState>(block_.num_nodes(),
                                           options_.k_max, options_.d_max);
  view_.graph = block_.graph;
  last_reward_ = 0.0;
  prev_ = Evaluate();
  return BuildObservation(block_.graph, view_.graph, *state_, index_,
                          last_reward_);
}

double BlockTopologyEnv::Step(const rl::ActionSample& action,
                              tensor::Tensor* next_obs) {
  GR_CHECK(state_ != nullptr) << "Step() before Reset()";
  GR_CHECK(next_obs != nullptr);

  // S_{t+1} = S_t + A_t, then rebuild the block from its G_0 slice
  // (Fig. 4, block-local id space throughout).
  state_->Apply(action);
  view_.graph = BuildOptimizedGraph(block_.graph, *state_, index_);

  // Finetune on the rewired block's train subset, then measure Eq. 11.
  for (int e = 0; e < options_.gnn_epochs_per_step; ++e) {
    trainer_->TrainBatch(view_);
  }
  const RewardInputs curr = Evaluate();
  const double reward = ComputeReward(options_.reward, prev_, curr);
  prev_ = curr;
  last_reward_ = reward;

  *next_obs = BuildObservation(block_.graph, view_.graph, *state_, index_,
                               last_reward_);
  return reward;
}

void BlockTopologyEnv::MergeInto(EditMerger* merger) const {
  GR_CHECK(merger != nullptr);
  GR_CHECK(state_ != nullptr) << "MergeInto() before Reset()";
  merger->RecordBlock(block_, *state_, index_);
}

// ---- BlockRolloutRunner ----------------------------------------------------

BlockRolloutRunner::BlockRolloutRunner(
    const data::Dataset* dataset, const data::Split* split,
    nn::MiniBatchTrainer* trainer,
    const entropy::RelativeEntropyIndex* index,
    const BlockRolloutOptions& options)
    : dataset_(dataset),
      split_(split),
      trainer_(trainer),
      index_(index),
      options_(options) {
  GR_CHECK(dataset != nullptr && split != nullptr && trainer != nullptr &&
           index != nullptr);
  GR_CHECK_OK(options_.Validate());
  GR_CHECK_EQ(index->num_nodes(), dataset->num_nodes());
  GR_CHECK(!split->train.empty());

  data::BlockPipelineOptions po;
  po.sampler.fanouts = options_.fanouts;  // empty = full-graph blocks
  po.sampler.replace = options_.sample_replace;
  po.sampler.seed = options_.seed;
  po.blocks_per_round = options_.blocks_per_round;
  po.seeds_per_block = options_.seeds_per_block;
  po.partition = options_.partition;
  // Independent mode always derives its shuffle stream from the rollout
  // seed (the pipeline's partitioner applies the legacy ^0xB10C5EED), so
  // pre-refactor trajectories replay bitwise; only locality mode takes
  // the dedicated partition seed.
  po.partition_seed =
      options_.partition == data::PartitionMode::kIndependent
          ? options_.seed
          : (options_.partition_seed != 0 ? options_.partition_seed
                                          : options_.seed);
  po.prefetch_depth = options_.prefetch_depth;
  po.num_producers = options_.num_producers;
  pipeline_ = std::make_unique<data::BlockPipeline>(&dataset->graph,
                                                    split->train, po);
}

BlockRolloutRunner::RoundStats BlockRolloutRunner::RunRound(
    rl::PpoAgent* agent) {
  GR_CHECK(agent != nullptr);
  std::vector<data::ScheduledBlock> scheduled = pipeline_->NextRound();

  RoundStats stats;
  std::vector<std::unique_ptr<BlockTopologyEnv>> envs;
  envs.reserve(scheduled.size());
  for (data::ScheduledBlock& sb : scheduled) {
    stats.block_nodes += sb.block.num_nodes();
    entropy::RelativeEntropyIndex block_index = index_->Restrict(sb.block);
    envs.push_back(std::make_unique<BlockTopologyEnv>(
        dataset_, std::move(sb.block), split_->train, trainer_,
        std::move(block_index), options_.env));
  }

  std::vector<rl::Env*> raw;
  raw.reserve(envs.size());
  for (const auto& e : envs) raw.push_back(e.get());
  const std::vector<double> rewards =
      rl::RunAgentOnBatchedEnvs(agent, raw, options_.steps_per_episode);

  // Block order = schedule order: the merge is deterministic per round.
  // BeginRound opens a fresh conflict-accounting window so the stats below
  // describe exactly this round's records.
  merger_.BeginRound();
  for (const auto& e : envs) e->MergeInto(&merger_);
  stats.conflicts = merger_.round_stats();

  stats.num_blocks = static_cast<int>(envs.size());
  stats.env_steps = static_cast<int64_t>(rewards.size());
  double sum = 0.0;
  for (const double r : rewards) sum += r;
  stats.mean_reward =
      rewards.empty() ? 0.0 : sum / static_cast<double>(rewards.size());
  return stats;
}

// ---- RunBlockCoTraining ----------------------------------------------------

BlockCoTrainResult RunBlockCoTraining(const data::Dataset& dataset,
                                      const data::Split& split,
                                      const GraphRareOptions& options,
                                      const BlockRolloutOptions& rollout_in) {
  GR_CHECK_OK(options.Validate());
  const DerivedSeeds seeds = DeriveSeeds(options.seed);
  Rng run_rng(seeds.run);

  BlockCoTrainResult result;
  result.initial_edges = dataset.graph.num_edges();

  // Entropy index on G_0, computed once (Algorithm 1, lines 1-6).
  Stopwatch entropy_watch;
  entropy::EntropyOptions entropy_opts = options.entropy;
  entropy_opts.seed = seeds.entropy;
  auto index_or = entropy::RelativeEntropyIndex::Build(
      dataset.graph, dataset.features, entropy_opts);
  GR_CHECK(index_or.ok()) << index_or.status().ToString();
  entropy::RelativeEntropyIndex index = std::move(index_or).value();
  if (options.sequence_mode == SequenceMode::kShuffled) {
    index.ShuffleSequences(&run_rng);
  }
  result.entropy_build_seconds = entropy_watch.ElapsedSeconds();

  Stopwatch train_watch;
  nn::ModelOptions model_opts;
  model_opts.in_features = dataset.num_features();
  model_opts.hidden = options.hidden;
  model_opts.num_classes = dataset.num_classes;
  model_opts.num_layers = options.num_layers;
  model_opts.dropout = options.dropout;
  model_opts.gat_heads = options.gat_heads;
  model_opts.seed = options.seed;
  auto model = nn::MakeModel(options.backbone, model_opts);

  nn::MiniBatchTrainer::Options trainer_opts;
  trainer_opts.adam = options.adam;
  trainer_opts.seed = options.seed;
  nn::MiniBatchTrainer trainer(model.get(), dataset.FeaturesCsr(),
                               &dataset.labels, trainer_opts);

  // One GraphRareOptions + one master seed configures both co-training
  // paths: the MDP knobs and subsystem seeds override the rollout config.
  BlockRolloutOptions rollout = rollout_in;
  rollout.seed = seeds.sampler;
  rollout.partition_seed = seeds.partition;
  rollout.env.k_max = options.k_max;
  rollout.env.d_max = options.d_max;
  rollout.env.reward = options.reward;
  rollout.env.entropy = entropy_opts;
  rollout.env.seed = seeds.env;
  GR_CHECK_OK(rollout.Validate());

  // Mini-batch pretraining on G_0 so reward deltas are informative. In
  // full-graph mode (empty fanouts) pretraining samples unlimited-fanout
  // blocks: L+1 layers make every aggregation degree exact.
  if (options.pretrain_epochs > 0) {
    MiniBatchOptions pre;
    pre.sampler.fanouts =
        rollout.fanouts.empty()
            ? std::vector<int64_t>(
                  static_cast<size_t>(options.num_layers + 1), -1)
            : rollout.fanouts;
    pre.sampler.replace = rollout.sample_replace;
    pre.sampler.seed = seeds.sampler ^ 0x9E37ULL;
    pre.batch_size = rollout.seeds_per_block;
    pre.max_epochs = options.pretrain_epochs;
    pre.patience = std::max(1, options.pretrain_patience);
    FitMiniBatch(&trainer, dataset.graph, split.train, split.val, pre,
                 seeds.shuffle);
  }

  rl::PpoOptions ppo_opts = options.ppo;
  ppo_opts.seed = seeds.ppo;
  rl::PpoAgent agent(kObservationDim, ppo_opts);

  BlockRolloutRunner runner(&dataset, &split, &trainer, &index, rollout);

  std::vector<tensor::Tensor> best_weights = trainer.SaveWeights();
  result.best_graph = dataset.graph;
  double best_val = trainer.Evaluate(dataset.graph, split.val).accuracy;
  result.best_val_accuracy = best_val;

  // Entropy-refresh bookkeeping: the merged graph the index currently
  // reflects (G_0 until the first refresh).
  graph::Graph refreshed_base = dataset.graph;

  for (int t = 0; t < options.iterations; ++t) {
    const BlockRolloutRunner::RoundStats stats = runner.RunRound(&agent);
    result.env_steps += stats.env_steps;
    result.reward_history.push_back(stats.mean_reward);

    // Model/graph selection on full-graph validation accuracy over the
    // merged topology (Sec. V-C protocol, merged across blocks).
    graph::Graph merged = runner.MergedGraph();

    if (rollout.refresh_entropy) {
      // Incremental index refresh: re-bucket exactly the edges this
      // round's merge flipped, so next round's Restrict views score
      // against the rewired graph instead of G_0.
      std::vector<graph::Edge> added, removed;
      graph::EdgeListDiff(refreshed_base, merged, &added, &removed);
      index.ApplyEdits(added, removed);
      refreshed_base = merged;
    }

    const double val = trainer.Evaluate(merged, split.val).accuracy;
    result.val_acc_history.push_back(val);

    BlockRoundTelemetry round_log;
    round_log.round = t;
    round_log.num_blocks = stats.num_blocks;
    round_log.block_nodes = stats.block_nodes;
    round_log.conflicts = stats.conflicts;
    round_log.mean_reward = stats.mean_reward;
    round_log.val_accuracy = val;
    LogBlockRound(round_log);
    result.round_telemetry.push_back(round_log);

    if (val > best_val) {
      best_val = val;
      best_weights = trainer.SaveWeights();
      result.best_graph = std::move(merged);
    }
  }

  trainer.LoadWeights(best_weights);
  result.best_val_accuracy = best_val;
  result.test_accuracy =
      trainer.Evaluate(result.best_graph, split.test).accuracy;
  result.final_edges = result.best_graph.num_edges();
  result.train_seconds = train_watch.ElapsedSeconds();

  // Hand the co-trained backbone (best weights restored) to the caller.
  result.model = std::move(model);
  result.backbone = options.backbone;
  result.model_options = model_opts;
  result.seed = options.seed;
  return result;
}

}  // namespace core
}  // namespace graphrare

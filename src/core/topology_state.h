// Copyright 2026 The GraphRARE Authors.
//
// The MDP state S = [k_1..k_N, d_1..d_N] (paper Sec. IV-B): per node, how
// many remote candidates are connected and how many 1-hop neighbours are
// dropped. Actions are per-node deltas in {-1, 0, +1}, clamped to bounds.

#ifndef GRAPHRARE_CORE_TOPOLOGY_STATE_H_
#define GRAPHRARE_CORE_TOPOLOGY_STATE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "rl/ppo.h"

namespace graphrare {
namespace core {

/// Per-node (k, d) counters with bounds.
class TopologyState {
 public:
  TopologyState(int64_t num_nodes, int k_max, int d_max)
      : k_(static_cast<size_t>(num_nodes), 0),
        d_(static_cast<size_t>(num_nodes), 0),
        k_max_(k_max),
        d_max_(d_max) {
    GR_CHECK_GE(k_max, 0);
    GR_CHECK_GE(d_max, 0);
  }

  int64_t num_nodes() const { return static_cast<int64_t>(k_.size()); }
  int k_max() const { return k_max_; }
  int d_max() const { return d_max_; }

  int k(int64_t v) const { return k_[static_cast<size_t>(v)]; }
  int d(int64_t v) const { return d_[static_cast<size_t>(v)]; }

  /// S_{t+1} = S_t + A_t (Eq. 10), clamped into [0, k_max] x [0, d_max].
  void Apply(const rl::ActionSample& action) {
    GR_CHECK_EQ(static_cast<int64_t>(action.delta_k.size()), num_nodes());
    GR_CHECK_EQ(static_cast<int64_t>(action.delta_d.size()), num_nodes());
    for (size_t i = 0; i < k_.size(); ++i) {
      k_[i] = Clamp(k_[i] + action.delta_k[i], k_max_);
      d_[i] = Clamp(d_[i] + action.delta_d[i], d_max_);
    }
  }

  /// Sets every node to the same (k, d) — the fixed-hyper-parameter
  /// baseline of Fig. 5.
  void SetUniform(int k, int d) {
    for (auto& v : k_) v = Clamp(k, k_max_);
    for (auto& v : d_) v = Clamp(d, d_max_);
  }

  /// Independently uniform k in [0, k_hi], d in [0, d_hi] per node — the
  /// GCN-RE[0..x] ablation of Table V.
  void SetRandom(int k_hi, int d_hi, Rng* rng) {
    GR_CHECK(rng != nullptr);
    for (auto& v : k_) {
      v = Clamp(static_cast<int>(rng->UniformInt(0, k_hi)), k_max_);
    }
    for (auto& v : d_) {
      v = Clamp(static_cast<int>(rng->UniformInt(0, d_hi)), d_max_);
    }
  }

  void Reset() {
    std::fill(k_.begin(), k_.end(), 0);
    std::fill(d_.begin(), d_.end(), 0);
  }

  /// Sum of all k (total queued additions) / d (total queued deletions).
  int64_t TotalK() const {
    int64_t s = 0;
    for (int v : k_) s += v;
    return s;
  }
  int64_t TotalD() const {
    int64_t s = 0;
    for (int v : d_) s += v;
    return s;
  }

 private:
  static int Clamp(int v, int hi) { return v < 0 ? 0 : (v > hi ? hi : v); }

  std::vector<int> k_;
  std::vector<int> d_;
  int k_max_;
  int d_max_;
};

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TOPOLOGY_STATE_H_

#include "core/observation.h"

#include <algorithm>

namespace graphrare {
namespace core {

tensor::Tensor BuildObservation(const graph::Graph& original,
                                const graph::Graph& current,
                                const TopologyState& state,
                                const entropy::RelativeEntropyIndex& index,
                                double last_reward) {
  const int64_t n = original.num_nodes();
  GR_CHECK_EQ(current.num_nodes(), n);
  GR_CHECK_EQ(state.num_nodes(), n);
  tensor::Tensor obs(n, kObservationDim);

  const double max_deg =
      std::max<int64_t>(1, original.MaxDegree());
  const double entropy_scale = 1.0 + index.lambda();
  const double reward_feature =
      std::clamp(last_reward, -1.0, 1.0);

  for (int64_t v = 0; v < n; ++v) {
    const entropy::NodeSequences& seq = index.sequences(v);
    float* row = obs.row(v);
    row[0] = static_cast<float>(original.Degree(v) / max_deg);
    row[1] = state.k_max() > 0
                 ? static_cast<float>(state.k(v)) / state.k_max()
                 : 0.0f;
    row[2] = state.d_max() > 0
                 ? static_cast<float>(state.d(v)) / state.d_max()
                 : 0.0f;

    double top_remote = 0.0;
    const int64_t top_n = std::min<int64_t>(
        std::max(1, state.k_max()), static_cast<int64_t>(seq.remote.size()));
    for (int64_t i = 0; i < top_n; ++i) {
      top_remote += seq.remote[static_cast<size_t>(i)].entropy;
    }
    row[3] = top_n > 0 ? static_cast<float>(top_remote /
                                            (top_n * entropy_scale))
                       : 0.0f;

    double neigh = 0.0;
    for (const auto& s : seq.neighbors) neigh += s.entropy;
    row[4] = seq.neighbors.empty()
                 ? 0.0f
                 : static_cast<float>(
                       neigh / (static_cast<double>(seq.neighbors.size()) *
                                entropy_scale));

    row[5] = state.k_max() > 0
                 ? std::min(1.0f, static_cast<float>(seq.remote.size()) /
                                      state.k_max())
                 : 0.0f;
    row[6] = static_cast<float>(current.Degree(v) / max_deg);
    row[7] = static_cast<float>(reward_feature);
  }
  return obs;
}

}  // namespace core
}  // namespace graphrare

#include "core/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "nn/metrics.h"
#include "core/observation.h"

namespace graphrare {
namespace core {

Status GraphRareOptions::Validate() const {
  if (hidden < 1) return Status::InvalidArgument("hidden must be >= 1");
  if (num_layers < 1) {
    return Status::InvalidArgument("num_layers must be >= 1");
  }
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }
  if (iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (pretrain_epochs < 0 || finetune_epochs < 0) {
    return Status::InvalidArgument("epoch counts must be non-negative");
  }
  if (k_max < 0 || d_max < 0) {
    return Status::InvalidArgument("k_max/d_max must be non-negative");
  }
  if (k_max == 0 && d_max == 0) {
    return Status::InvalidArgument("k_max and d_max cannot both be zero");
  }
  if (fixed_k < 0 || fixed_d < 0 || random_k_max < 0 || random_d_max < 0) {
    return Status::InvalidArgument("fixed/random bounds must be >= 0");
  }
  GR_RETURN_IF_ERROR(entropy.Validate());
  GR_RETURN_IF_ERROR(ppo.Validate());
  return Status::OK();
}

Result<serve::ModelArtifact> PackageArtifact(
    const nn::NodeClassifier& model, nn::BackboneKind backbone,
    const nn::ModelOptions& model_options, uint64_t seed,
    const graph::Graph& graph, const data::Dataset& dataset) {
  serve::ModelArtifact artifact;
  artifact.backbone = backbone;
  artifact.model_options = model_options;
  artifact.weights = model.StateDict();
  artifact.graph = graph;
  artifact.features = dataset.FeaturesCsr();
  artifact.labels = dataset.labels;
  artifact.dataset_name = dataset.name;
  artifact.seed = seed;
  GR_RETURN_IF_ERROR(artifact.Validate());
  return artifact;
}

Result<serve::ModelArtifact> GraphRareResult::ExportArtifact(
    const data::Dataset& dataset) const {
  if (model == nullptr) {
    return Status::FailedPrecondition(
        "result holds no trained model (was it produced by "
        "GraphRareTrainer::Run?)");
  }
  return PackageArtifact(*model, backbone, model_options, seed, best_graph,
                         dataset);
}

DerivedSeeds DeriveSeeds(uint64_t master) {
  DerivedSeeds s;
  // The entropy/ppo/run formulas predate this helper; they are kept
  // verbatim so existing trajectories (benches, determinism tests) are
  // unchanged.
  s.entropy = master * 977 + 11;
  s.ppo = master * 31 + 7;
  s.run = master * 0x51D4ULL + 3;
  s.sampler = master * 131 + 17;
  s.env = master * 53 + 29;
  s.shuffle = master * 7 + 3;
  s.splits = master + 100;
  s.partition = master * 211 + 41;
  return s;
}

Status MiniBatchOptions::Validate() const {
  if (batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (max_epochs < 1) {
    return Status::InvalidArgument("max_epochs must be >= 1");
  }
  if (patience < 1) return Status::InvalidArgument("patience must be >= 1");
  return sampler.Validate();
}

MiniBatchFitResult FitMiniBatch(nn::MiniBatchTrainer* trainer,
                                const graph::Graph& g,
                                const std::vector<int64_t>& train_idx,
                                const std::vector<int64_t>& val_idx,
                                const MiniBatchOptions& options,
                                uint64_t seed) {
  GR_CHECK(trainer != nullptr);
  GR_CHECK(!train_idx.empty());
  GR_CHECK(!val_idx.empty());
  GR_CHECK_OK(options.Validate());

  data::NeighborSampler sampler(&g, options.sampler);
  Rng shuffle_rng(seed ^ 0xB47C4E5ULL);

  MiniBatchFitResult result;
  std::vector<tensor::Tensor> best_weights = trainer->SaveWeights();
  int since_best = 0;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    const auto batches = data::NeighborSampler::MakeBatches(
        train_idx, options.batch_size, options.shuffle, &shuffle_rng);
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    int64_t seeds_seen = 0;
    for (const auto& batch : batches) {
      const graph::Subgraph block = sampler.SampleBlock(batch);
      const nn::EvalResult step = trainer->TrainBatch(block);
      const auto weight = static_cast<double>(batch.size());
      loss_sum += step.loss * weight;
      acc_sum += step.accuracy * weight;
      seeds_seen += static_cast<int64_t>(batch.size());
      ++result.batches_run;
    }
    result.train_loss_history.push_back(loss_sum /
                                        static_cast<double>(seeds_seen));
    result.train_acc_history.push_back(acc_sum /
                                       static_cast<double>(seeds_seen));
    const double val_acc = trainer->Evaluate(g, val_idx).accuracy;
    result.val_acc_history.push_back(val_acc);
    ++result.epochs_run;
    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      result.best_epoch = epoch;
      best_weights = trainer->SaveWeights();
      since_best = 0;
    } else if (++since_best >= options.patience) {
      break;
    }
  }
  trainer->LoadWeights(best_weights);
  return result;
}

GraphRareTrainer::GraphRareTrainer(const data::Dataset* dataset,
                                   GraphRareOptions options)
    : dataset_(dataset), options_(std::move(options)) {
  GR_CHECK(dataset != nullptr);
  GR_CHECK_OK(options_.Validate());
}

RewardInputs GraphRareTrainer::EvaluateForReward(
    nn::ClassifierTrainer* trainer, const graph::Graph& g,
    const std::vector<int64_t>& train_idx) {
  RewardInputs out;
  const nn::EvalResult eval = trainer->Evaluate(g, train_idx);
  out.accuracy = eval.accuracy;
  out.loss = eval.loss;
  if (options_.reward.kind == RewardKind::kAuc) {
    const tensor::Tensor logits = trainer->EvalLogits(g);
    out.auc = nn::MacroAucOvr(logits, dataset_->labels, train_idx,
                              dataset_->num_classes);
  }
  return out;
}

GraphRareResult GraphRareTrainer::Run(const data::Split& split) {
  const graph::Graph& g0 = dataset_->graph;
  const int64_t n = g0.num_nodes();
  const DerivedSeeds seeds = DeriveSeeds(options_.seed);
  Rng run_rng(seeds.run);

  GraphRareResult result;
  result.initial_homophily = g0.EdgeHomophily(dataset_->labels);
  result.initial_edges = g0.num_edges();

  // --- Node relative entropy, computed once (Algorithm 1, lines 1-6). ---
  Stopwatch entropy_watch;
  entropy::EntropyOptions entropy_opts = options_.entropy;
  entropy_opts.seed = seeds.entropy;
  auto index_result =
      entropy::RelativeEntropyIndex::Build(g0, dataset_->features,
                                           entropy_opts);
  GR_CHECK(index_result.ok()) << index_result.status().ToString();
  index_ = std::make_unique<entropy::RelativeEntropyIndex>(
      std::move(index_result).value());
  if (options_.sequence_mode == SequenceMode::kShuffled) {
    index_->ShuffleSequences(&run_rng);
  }
  result.entropy_build_seconds = entropy_watch.ElapsedSeconds();

  // --- Backbone + supervised trainer. ---
  Stopwatch train_watch;
  nn::ModelOptions model_opts;
  model_opts.in_features = dataset_->num_features();
  model_opts.hidden = options_.hidden;
  model_opts.num_classes = dataset_->num_classes;
  model_opts.num_layers = options_.num_layers;
  model_opts.dropout = options_.dropout;
  model_opts.gat_heads = options_.gat_heads;
  model_opts.seed = options_.seed;
  auto model = nn::MakeModel(options_.backbone, model_opts);

  nn::ClassifierTrainer::Options trainer_opts;
  trainer_opts.adam = options_.adam;
  trainer_opts.seed = options_.seed;
  nn::ClassifierTrainer trainer(
      model.get(), nn::LayerInput::Sparse(dataset_->FeaturesCsr()),
      &dataset_->labels, trainer_opts);

  // Pretrain on G_0 so accuracy/loss deltas are informative rewards.
  if (options_.pretrain_epochs > 0) {
    trainer.Fit(g0, split.train, split.val, options_.pretrain_epochs,
                options_.pretrain_patience);
  }

  // --- Co-training state. ---
  TopologyState state(n, options_.k_max, options_.d_max);
  graph::Graph current = g0;
  std::unique_ptr<rl::PpoAgent> agent;
  if (options_.policy_mode == PolicyMode::kDrl) {
    rl::PpoOptions ppo_opts = options_.ppo;
    ppo_opts.seed = seeds.ppo;
    agent = std::make_unique<rl::PpoAgent>(kObservationDim, ppo_opts);
  }
  TopologyOptimizerOptions topo_opts;
  topo_opts.enable_add = options_.enable_add;
  topo_opts.enable_remove = options_.enable_remove;

  RewardInputs prev = EvaluateForReward(&trainer, current, split.train);
  // Algorithm 1 initialises max_acc = 0, so the first iteration always
  // fine-tunes regardless of pretraining.
  double max_train_acc = 0.0;
  double last_reward = 0.0;
  bool reward_pending = false;  // PPO: Act() issued, reward not yet stored

  std::vector<tensor::Tensor> best_weights = trainer.SaveWeights();
  result.best_graph = current;
  result.best_val_accuracy =
      trainer.Evaluate(current, split.val).accuracy;
  double best_val = result.best_val_accuracy;

  for (int t = 0; t < options_.iterations; ++t) {
    // (line 9) Evaluate the GNN on the current graph, no parameter update.
    RewardInputs curr = EvaluateForReward(&trainer, current, split.train);

    // (lines 10-13) Extra supervised epochs when the topology helped. The
    // gate is >= rather than >: once training accuracy saturates (common on
    // the small WebKB graphs) a strict inequality would freeze the GNN
    // forever and the co-training could never adapt to rewired graphs.
    if (curr.accuracy >= max_train_acc && options_.finetune_epochs > 0) {
      max_train_acc = curr.accuracy;
      int since_best = 0;
      double ft_best_val = -1.0;
      for (int e = 0; e < options_.finetune_epochs; ++e) {
        trainer.TrainEpoch(current, split.train);
        const double val_acc =
            trainer.Evaluate(current, split.val).accuracy;
        if (val_acc > ft_best_val) {
          ft_best_val = val_acc;
          since_best = 0;
        } else if (++since_best >= 3) {
          break;  // early stop: avoid overfitting to G_t (Sec. IV-B)
        }
      }
    }

    // (line 14) Reward from the performance delta (Eq. 11).
    const double reward = ComputeReward(options_.reward, prev, curr);
    prev = curr;
    last_reward = reward;
    result.reward_history.push_back(reward);
    result.train_acc_history.push_back(curr.accuracy);
    result.homophily_history.push_back(
        current.EdgeHomophily(dataset_->labels));

    // Model selection on validation accuracy (Sec. V-C protocol).
    const double val_acc = trainer.Evaluate(current, split.val).accuracy;
    result.val_acc_history.push_back(val_acc);
    if (val_acc > best_val) {
      best_val = val_acc;
      best_weights = trainer.SaveWeights();
      result.best_graph = current;
    }

    // (lines 15-16) Action and state transition.
    const tensor::Tensor obs =
        BuildObservation(g0, current, state, *index_, last_reward);
    switch (options_.policy_mode) {
      case PolicyMode::kDrl: {
        if (reward_pending) {
          agent->StoreReward(reward);
          if (agent->ReadyToUpdate()) agent->Update(obs);
        }
        const rl::ActionSample action = agent->Act(obs);
        reward_pending = true;
        state.Apply(action);
        break;
      }
      case PolicyMode::kFixed:
        state.SetUniform(options_.fixed_k, options_.fixed_d);
        break;
      case PolicyMode::kRandom:
        state.SetRandom(options_.random_k_max, options_.random_d_max,
                        &run_rng);
        break;
    }

    // (line 17) Rebuild the topology for the next iteration.
    current = BuildOptimizedGraph(g0, state, *index_, topo_opts);
  }

  // Close out the last pending PPO transition.
  if (agent && reward_pending) {
    const RewardInputs final_eval =
        EvaluateForReward(&trainer, current, split.train);
    agent->StoreReward(ComputeReward(options_.reward, prev, final_eval));
  }

  // --- Final selection and test metric. ---
  trainer.LoadWeights(best_weights);
  result.best_val_accuracy = best_val;
  result.test_accuracy =
      trainer.Evaluate(result.best_graph, split.test).accuracy;
  result.final_homophily =
      result.best_graph.EdgeHomophily(dataset_->labels);
  result.final_edges = result.best_graph.num_edges();
  result.train_seconds = train_watch.ElapsedSeconds();

  // Hand the co-trained backbone (best weights already restored) back to
  // the caller — it is half of the deployable product.
  result.model = std::move(model);
  result.backbone = options_.backbone;
  result.model_options = model_opts;
  result.seed = options_.seed;
  return result;
}

}  // namespace core
}  // namespace graphrare

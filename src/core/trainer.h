// Copyright 2026 The GraphRARE Authors.
//
// The GraphRARE co-training loop (paper Algorithm 1): a backbone GNN and a
// PPO agent are trained jointly; the agent's per-node (k, d) state drives
// the topology optimization module, and the GNN's train-set accuracy/loss
// deltas are the agent's reward. Ablation switches reproduce every Table V
// row and the Fig. 5 fixed-(k,d) grids.

#ifndef GRAPHRARE_CORE_TRAINER_H_
#define GRAPHRARE_CORE_TRAINER_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/sampler.h"
#include "data/splits.h"
#include "entropy/relative_entropy.h"
#include "nn/trainer.h"
#include "rl/ppo.h"
#include "serve/artifact.h"
#include "core/reward.h"
#include "core/topology_optimizer.h"

namespace graphrare {
namespace core {

/// How per-node (k, d) values are chosen each iteration.
enum class PolicyMode {
  kDrl,     ///< PPO agent (GraphRARE proper)
  kFixed,   ///< same fixed (k, d) for every node (Fig. 5 grids)
  kRandom,  ///< per-node uniform random (Table V GCN-RE[0..x])
};

/// Whether entropy sequences are real or shuffled (Table V GCN-RA).
enum class SequenceMode {
  kEntropy,
  kShuffled,
};

/// Full configuration of one GraphRARE run.
struct GraphRareOptions {
  nn::BackboneKind backbone = nn::BackboneKind::kGcn;
  // Backbone hyper-parameters (paper Sec. V-C).
  int64_t hidden = 64;
  int num_layers = 2;
  float dropout = 0.5f;
  int gat_heads = 4;
  nn::Adam::Options adam;

  entropy::EntropyOptions entropy;
  rl::PpoOptions ppo;
  RewardOptions reward;

  /// Number of co-training iterations (DRL steps).
  int iterations = 24;
  /// Initial supervised epochs on G_0 before co-training.
  int pretrain_epochs = 50;
  int pretrain_patience = 15;
  /// "Train the GNN for a few more epochs" when accuracy improves.
  int finetune_epochs = 5;

  int k_max = 5;
  int d_max = 5;

  PolicyMode policy_mode = PolicyMode::kDrl;
  int fixed_k = 3;        ///< PolicyMode::kFixed
  int fixed_d = 2;
  int random_k_max = 5;   ///< PolicyMode::kRandom upper bounds
  int random_d_max = 5;

  SequenceMode sequence_mode = SequenceMode::kEntropy;
  bool enable_add = true;      ///< Table V GCN-RARE-remove sets this false
  bool enable_remove = true;   ///< Table V GCN-RARE-add sets this false

  uint64_t seed = 1;

  Status Validate() const;
};

/// Subsystem seeds fanned out from one master seed. GraphRareTrainer::Run,
/// the block-rollout co-training path, and the CLI's --seed flag all derive
/// through here, so every stochastic subsystem (entropy candidate sampling,
/// PPO init, neighbor sampler, env, epoch shuffling, splits) is pinned by a
/// single number instead of each defaulting its own seed independently.
struct DerivedSeeds {
  uint64_t entropy;
  uint64_t ppo;
  uint64_t sampler;
  uint64_t env;
  uint64_t shuffle;
  uint64_t splits;
  uint64_t run;  ///< trainer-internal rng (random policy mode, ablations)
  uint64_t partition;  ///< locality partitioner (data::Partitioner)
};

DerivedSeeds DeriveSeeds(uint64_t master);

/// Packages a trained backbone + topology + a dataset's features into a
/// deployable serve::ModelArtifact. Shared implementation behind the
/// result structs' ExportArtifact hooks; also usable for plain baselines.
Result<serve::ModelArtifact> PackageArtifact(
    const nn::NodeClassifier& model, nn::BackboneKind backbone,
    const nn::ModelOptions& model_options, uint64_t seed,
    const graph::Graph& graph, const data::Dataset& dataset);

/// Everything a run reports (feeds Tables III-VI and Figs. 5-7), plus the
/// deployable outcome: the co-trained backbone with its best
/// (validation-selected) weights and the graph it was selected on. The
/// model+graph pair is the product of a GraphRARE run — ExportArtifact
/// packages it for serve::InferenceEngine.
struct GraphRareResult {
  double test_accuracy = 0.0;
  double best_val_accuracy = 0.0;
  double initial_homophily = 0.0;
  double final_homophily = 0.0;  ///< homophily of the best (selected) graph
  int64_t initial_edges = 0;
  int64_t final_edges = 0;
  double entropy_build_seconds = 0.0;
  double train_seconds = 0.0;

  // Per-iteration telemetry (Fig. 6).
  std::vector<double> train_acc_history;
  std::vector<double> val_acc_history;
  std::vector<double> homophily_history;
  std::vector<double> reward_history;

  graph::Graph best_graph;

  /// The trained backbone, holding the weights that produced
  /// test_accuracy. Shared so results stay copyable; never null after a
  /// successful Run.
  std::shared_ptr<nn::NodeClassifier> model;
  /// Architecture the model was built with (artifact metadata).
  nn::BackboneKind backbone = nn::BackboneKind::kGcn;
  nn::ModelOptions model_options;
  /// Master seed of the producing run (artifact provenance).
  uint64_t seed = 0;

  /// Packages model + best_graph + the dataset's features into a
  /// deployable serve::ModelArtifact. Fails if the result holds no model
  /// (default-constructed / legacy results).
  Result<serve::ModelArtifact> ExportArtifact(
      const data::Dataset& dataset) const;
};

/// Mini-batch supervised training configuration: neighbor-sampled blocks
/// for the optimization steps, full-graph forward passes for evaluation.
struct MiniBatchOptions {
  data::SamplerOptions sampler;
  int64_t batch_size = 256;
  int max_epochs = 100;
  int patience = 20;
  /// Reshuffle the seed order every epoch. When false, batch composition
  /// is identical every epoch; only the sampled neighborhoods still vary,
  /// through the sampler's block counter.
  bool shuffle = true;

  Status Validate() const;
};

/// Outcome of a FitMiniBatch run.
struct MiniBatchFitResult {
  int epochs_run = 0;
  int64_t batches_run = 0;
  double best_val_accuracy = 0.0;
  int best_epoch = -1;
  /// Per-epoch seed-weighted means over the epoch's batches.
  std::vector<double> train_loss_history;
  std::vector<double> train_acc_history;
  /// Per-epoch full-graph validation accuracy.
  std::vector<double> val_acc_history;
};

/// Trains on sampled blocks with early stopping on full-graph validation
/// accuracy; restores the best weights before returning. `seed` drives the
/// epoch shuffling (the sampler's own seed lives in options.sampler).
MiniBatchFitResult FitMiniBatch(nn::MiniBatchTrainer* trainer,
                                const graph::Graph& g,
                                const std::vector<int64_t>& train_idx,
                                const std::vector<int64_t>& val_idx,
                                const MiniBatchOptions& options,
                                uint64_t seed);

/// Runs Algorithm 1 on one dataset split.
class GraphRareTrainer {
 public:
  /// `dataset` must outlive the trainer.
  GraphRareTrainer(const data::Dataset* dataset, GraphRareOptions options);

  GraphRareResult Run(const data::Split& split);

  /// The entropy index built for the last Run (shared across ablations in
  /// benches; exposed for inspection).
  const entropy::RelativeEntropyIndex* index() const {
    return index_ ? index_.get() : nullptr;
  }

 private:
  RewardInputs EvaluateForReward(nn::ClassifierTrainer* trainer,
                                 const graph::Graph& g,
                                 const std::vector<int64_t>& train_idx);

  const data::Dataset* dataset_;
  GraphRareOptions options_;
  std::unique_ptr<entropy::RelativeEntropyIndex> index_;
};

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TRAINER_H_

// Copyright 2026 The GraphRARE Authors.
//
// Reward function (paper Eq. 11):
//   R(S_t) = (acc_t - acc_{t-1}) + lambda_r * (loss_{t-1} - loss_t)
// plus the AUC-based alternative of the Table V "GCN-RARE-reward" ablation.

#ifndef GRAPHRARE_CORE_REWARD_H_
#define GRAPHRARE_CORE_REWARD_H_

#include "common/status.h"

namespace graphrare {
namespace core {

/// Which reward signal drives the DRL module.
enum class RewardKind {
  kAccLoss,  ///< Eq. 11 (default)
  kAuc,      ///< one-vs-rest macro AUC difference (ablation)
};

struct RewardOptions {
  RewardKind kind = RewardKind::kAccLoss;
  /// lambda_r in Eq. 11.
  double lambda_r = 1.0;
};

/// Metrics of one evaluation step used for reward computation.
struct RewardInputs {
  double accuracy = 0.0;
  double loss = 0.0;
  double auc = 0.0;  ///< only populated for RewardKind::kAuc
};

inline double ComputeReward(const RewardOptions& options,
                            const RewardInputs& prev,
                            const RewardInputs& curr) {
  switch (options.kind) {
    case RewardKind::kAccLoss:
      return (curr.accuracy - prev.accuracy) +
             options.lambda_r * (prev.loss - curr.loss);
    case RewardKind::kAuc:
      return curr.auc - prev.auc;
  }
  return 0.0;
}

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_REWARD_H_

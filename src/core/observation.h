// Copyright 2026 The GraphRARE Authors.
//
// Observation encoding for the DRL policy: one row per node summarising its
// local situation under the current state and rewired graph. All features
// are normalised to roughly [0, 1] (reward feature to [-1, 1]).

#ifndef GRAPHRARE_CORE_OBSERVATION_H_
#define GRAPHRARE_CORE_OBSERVATION_H_

#include "entropy/relative_entropy.h"
#include "graph/graph.h"
#include "core/topology_state.h"
#include "tensor/tensor.h"

namespace graphrare {
namespace core {

/// Number of per-node observation features.
inline constexpr int64_t kObservationDim = 8;

/// Builds the (N x kObservationDim) observation matrix. Id-space-agnostic:
/// `original`, `current`, `state`, and `index` only need to agree on one
/// node-id space — the full graph, or a sampled block's local space (with
/// `index` a RelativeEntropyIndex::Restrict view). Rows:
///   0: degree in G_0 / max degree in G_0
///   1: k_v / k_max
///   2: d_v / d_max
///   3: mean entropy of the top-k_max remote candidates (scaled by 1+lambda)
///   4: mean entropy of current 1-hop neighbours (scaled by 1+lambda)
///   5: remote-candidate availability, |remote| / k_max capped at 1
///   6: degree in G_t / max degree in G_0 (rewiring feedback)
///   7: last global reward clipped to [-1, 1]
tensor::Tensor BuildObservation(const graph::Graph& original,
                                const graph::Graph& current,
                                const TopologyState& state,
                                const entropy::RelativeEntropyIndex& index,
                                double last_reward);

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_OBSERVATION_H_

#include "core/telemetry.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace graphrare {
namespace core {

std::string TelemetryCsvString(const GraphRareResult& result) {
  std::ostringstream out;
  out << "iteration,train_accuracy,val_accuracy,homophily,reward\n";
  const size_t n = result.train_acc_history.size();
  for (size_t i = 0; i < n; ++i) {
    const double val = i < result.val_acc_history.size()
                           ? result.val_acc_history[i]
                           : 0.0;
    const double hom = i < result.homophily_history.size()
                           ? result.homophily_history[i]
                           : 0.0;
    const double rew =
        i < result.reward_history.size() ? result.reward_history[i] : 0.0;
    out << i << "," << result.train_acc_history[i] << "," << val << ","
        << hom << "," << rew << "\n";
  }
  return out.str();
}

Status WriteTelemetryCsv(const GraphRareResult& result,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out << TelemetryCsvString(result);
  if (!out.good()) {
    return Status::Internal(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace core
}  // namespace graphrare

#include "core/telemetry.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace graphrare {
namespace core {

std::string TelemetryCsvString(const GraphRareResult& result) {
  std::ostringstream out;
  out << "iteration,train_accuracy,val_accuracy,homophily,reward\n";
  // Row count follows the longest history: the block-rollout path fills
  // only reward/val (no per-iteration train accuracy), the full-graph
  // path fills all four.
  const size_t n = std::max(
      std::max(result.train_acc_history.size(),
               result.val_acc_history.size()),
      std::max(result.homophily_history.size(),
               result.reward_history.size()));
  const auto at = [](const std::vector<double>& h, size_t i) {
    return i < h.size() ? h[i] : 0.0;
  };
  for (size_t i = 0; i < n; ++i) {
    out << i << "," << at(result.train_acc_history, i) << ","
        << at(result.val_acc_history, i) << ","
        << at(result.homophily_history, i) << ","
        << at(result.reward_history, i) << "\n";
  }
  return out.str();
}

Status WriteTelemetryCsv(const GraphRareResult& result,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out << TelemetryCsvString(result);
  if (!out.good()) {
    return Status::Internal(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

std::string FormatBlockRound(const BlockRoundTelemetry& t) {
  return StrFormat(
      "round %d: blocks=%d nodes=%lld recorded=%lld conflicts=%lld "
      "(rate %.3f, overwrites %lld, cross-round %lld) reward=%.4f "
      "val_acc=%.4f",
      t.round, t.num_blocks, static_cast<long long>(t.block_nodes),
      static_cast<long long>(t.conflicts.nodes_recorded),
      static_cast<long long>(t.conflicts.conflict_nodes),
      t.conflicts.ConflictRate(),
      static_cast<long long>(t.conflicts.overwrites),
      static_cast<long long>(t.conflicts.cross_round_overwrites),
      t.mean_reward, t.val_accuracy);
}

void LogBlockRound(const BlockRoundTelemetry& t) {
  GR_LOG(INFO) << FormatBlockRound(t);
}

std::string BlockRoundCsvString(
    const std::vector<BlockRoundTelemetry>& rounds) {
  std::ostringstream out;
  out << "round,num_blocks,block_nodes,nodes_recorded,conflict_nodes,"
         "conflict_rate,overwrites,cross_round_overwrites,mean_reward,"
         "val_accuracy\n";
  for (const BlockRoundTelemetry& t : rounds) {
    out << t.round << "," << t.num_blocks << "," << t.block_nodes << ","
        << t.conflicts.nodes_recorded << "," << t.conflicts.conflict_nodes
        << "," << t.conflicts.ConflictRate() << "," << t.conflicts.overwrites
        << "," << t.conflicts.cross_round_overwrites << "," << t.mean_reward
        << "," << t.val_accuracy << "\n";
  }
  return out.str();
}

}  // namespace core
}  // namespace graphrare

#include "core/experiment.h"

#include <cmath>
#include <cstdlib>

#include "common/stopwatch.h"

namespace graphrare {
namespace core {

RunStats Aggregate(const std::vector<double>& values) {
  RunStats stats;
  stats.values = values;
  if (values.empty()) return stats;
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  // Sample standard deviation (ddof=1) to match the paper's +/- columns.
  stats.stddev = values.size() > 1
                     ? std::sqrt(var / static_cast<double>(values.size() - 1))
                     : 0.0;
  return stats;
}

namespace {

nn::ModelOptions ToModelOptions(const data::Dataset& dataset,
                                const ExperimentOptions& options,
                                uint64_t seed) {
  nn::ModelOptions mo;
  mo.in_features = dataset.num_features();
  mo.hidden = options.hidden;
  mo.num_classes = dataset.num_classes;
  mo.num_layers = options.num_layers;
  mo.dropout = options.dropout;
  mo.gat_heads = options.gat_heads;
  mo.seed = seed;
  return mo;
}

/// One split's outcome, for AggregateSplitRuns. `seconds` covers the fit
/// only (model construction and test evaluation stay untimed).
struct SplitRun {
  double accuracy = 0.0;
  double seconds = 0.0;
  int64_t epochs = 0;
};

/// Shared per-split scaffolding: seed derivation and the accuracy /
/// seconds-per-epoch aggregation. Both the full-graph and the mini-batch
/// runners go through here so their results stay directly comparable
/// (identical per-split seeds).
BaselineAggregate AggregateSplitRuns(
    const std::vector<data::Split>& splits, uint64_t base_seed,
    const std::function<SplitRun(const data::Split&, uint64_t)>& run_split) {
  std::vector<double> accs;
  double total_seconds = 0.0;
  int64_t total_epochs = 0;
  for (size_t s = 0; s < splits.size(); ++s) {
    const uint64_t seed = base_seed + 1000 * (s + 1);
    const SplitRun run = run_split(splits[s], seed);
    total_seconds += run.seconds;
    total_epochs += run.epochs;
    accs.push_back(run.accuracy);
  }
  BaselineAggregate agg;
  agg.accuracy = Aggregate(accs);
  agg.seconds_per_epoch =
      total_epochs > 0 ? total_seconds / static_cast<double>(total_epochs)
                       : 0.0;
  return agg;
}

}  // namespace

BaselineAggregate RunBackbone(const data::Dataset& dataset,
                              const std::vector<data::Split>& splits,
                              nn::BackboneKind kind,
                              const ExperimentOptions& options,
                              const graph::Graph* graph_override) {
  return RunCustomModel(
      dataset, splits,
      [&](uint64_t seed) {
        return nn::MakeModel(kind, ToModelOptions(dataset, options, seed));
      },
      options, graph_override);
}

BaselineAggregate RunCustomModel(
    const data::Dataset& dataset, const std::vector<data::Split>& splits,
    const std::function<std::unique_ptr<nn::NodeClassifier>(uint64_t seed)>&
        factory,
    const ExperimentOptions& options, const graph::Graph* graph_override) {
  const graph::Graph& g = graph_override ? *graph_override : dataset.graph;
  return AggregateSplitRuns(
      splits, options.seed,
      [&](const data::Split& split, uint64_t seed) {
        auto model = factory(seed);
        nn::ClassifierTrainer::Options trainer_opts;
        trainer_opts.adam = options.adam;
        trainer_opts.seed = seed;
        nn::ClassifierTrainer trainer(
            model.get(), nn::LayerInput::Sparse(dataset.FeaturesCsr()),
            &dataset.labels, trainer_opts);
        Stopwatch watch;
        const nn::FitResult fit = trainer.Fit(
            g, split.train, split.val, options.max_epochs, options.patience);
        SplitRun run;
        run.seconds = watch.ElapsedSeconds();
        run.epochs = fit.epochs_run;
        run.accuracy = trainer.Evaluate(g, split.test).accuracy;
        return run;
      });
}

BaselineAggregate RunBackboneMiniBatch(const data::Dataset& dataset,
                                       const std::vector<data::Split>& splits,
                                       nn::BackboneKind kind,
                                       const ExperimentOptions& options,
                                       const MiniBatchOptions& mb,
                                       const graph::Graph* graph_override) {
  const graph::Graph& g = graph_override ? *graph_override : dataset.graph;
  return AggregateSplitRuns(
      splits, options.seed,
      [&](const data::Split& split, uint64_t seed) {
        auto model =
            nn::MakeModel(kind, ToModelOptions(dataset, options, seed));
        nn::MiniBatchTrainer::Options trainer_opts;
        trainer_opts.adam = options.adam;
        trainer_opts.seed = seed;
        nn::MiniBatchTrainer trainer(model.get(), dataset.FeaturesCsr(),
                                     &dataset.labels, trainer_opts);
        MiniBatchOptions per_split = mb;
        per_split.sampler.seed = mb.sampler.seed + 131 * seed;
        Stopwatch watch;
        const MiniBatchFitResult fit = FitMiniBatch(
            &trainer, g, split.train, split.val, per_split, seed);
        SplitRun run;
        run.seconds = watch.ElapsedSeconds();
        run.epochs = fit.epochs_run;
        run.accuracy = trainer.Evaluate(g, split.test).accuracy;
        return run;
      });
}

GraphRareAggregate RunGraphRare(const data::Dataset& dataset,
                                const std::vector<data::Split>& splits,
                                const GraphRareOptions& options) {
  GraphRareAggregate agg;
  std::vector<double> accs;
  for (size_t s = 0; s < splits.size(); ++s) {
    GraphRareOptions per_split = options;
    per_split.seed = options.seed + 1000 * (s + 1);
    GraphRareTrainer trainer(&dataset, per_split);
    GraphRareResult result = trainer.Run(splits[s]);
    accs.push_back(result.test_accuracy);
    agg.mean_initial_homophily += result.initial_homophily;
    agg.mean_final_homophily += result.final_homophily;
    agg.mean_entropy_seconds += result.entropy_build_seconds;
    agg.mean_train_seconds += result.train_seconds;
    if (s + 1 == splits.size()) agg.last_run = std::move(result);
  }
  const double inv = splits.empty()
                         ? 0.0
                         : 1.0 / static_cast<double>(splits.size());
  agg.accuracy = Aggregate(accs);
  agg.mean_initial_homophily *= inv;
  agg.mean_final_homophily *= inv;
  agg.mean_entropy_seconds *= inv;
  agg.mean_train_seconds *= inv;
  // Rough per-epoch figure for Table VI: iterations + pretrain epochs.
  const double epochs = static_cast<double>(options.pretrain_epochs +
                                            options.iterations *
                                                (1 + options.finetune_epochs));
  agg.seconds_per_epoch =
      epochs > 0 ? agg.mean_train_seconds / epochs : 0.0;
  return agg;
}

GraphRareAggregate RunGraphRareBlocks(const data::Dataset& dataset,
                                      const std::vector<data::Split>& splits,
                                      const GraphRareOptions& options,
                                      const BlockRolloutOptions& rollout) {
  GraphRareAggregate agg;
  std::vector<double> accs;
  for (size_t s = 0; s < splits.size(); ++s) {
    GraphRareOptions per_split = options;
    per_split.seed = options.seed + 1000 * (s + 1);
    BlockCoTrainResult result =
        RunBlockCoTraining(dataset, splits[s], per_split, rollout);
    accs.push_back(result.test_accuracy);
    agg.mean_initial_homophily += dataset.Homophily();
    agg.mean_final_homophily +=
        result.best_graph.EdgeHomophily(dataset.labels);
    agg.mean_entropy_seconds += result.entropy_build_seconds;
    agg.mean_train_seconds += result.train_seconds;
    if (s + 1 == splits.size()) {
      // Telemetry in GraphRareResult terms (Fig. 6 consumers).
      agg.last_run.test_accuracy = result.test_accuracy;
      agg.last_run.best_val_accuracy = result.best_val_accuracy;
      agg.last_run.initial_homophily = dataset.Homophily();
      agg.last_run.final_homophily =
          result.best_graph.EdgeHomophily(dataset.labels);
      agg.last_run.initial_edges = result.initial_edges;
      agg.last_run.final_edges = result.final_edges;
      agg.last_run.entropy_build_seconds = result.entropy_build_seconds;
      agg.last_run.train_seconds = result.train_seconds;
      agg.last_run.reward_history = std::move(result.reward_history);
      agg.last_run.val_acc_history = std::move(result.val_acc_history);
      agg.last_run.best_graph = std::move(result.best_graph);
      agg.last_run.model = std::move(result.model);
      agg.last_run.backbone = result.backbone;
      agg.last_run.model_options = result.model_options;
      agg.last_run.seed = result.seed;
    }
  }
  const double inv =
      splits.empty() ? 0.0 : 1.0 / static_cast<double>(splits.size());
  agg.accuracy = Aggregate(accs);
  agg.mean_initial_homophily *= inv;
  agg.mean_final_homophily *= inv;
  agg.mean_entropy_seconds *= inv;
  agg.mean_train_seconds *= inv;
  const double epochs = static_cast<double>(
      options.pretrain_epochs +
      options.iterations * rollout.steps_per_episode);
  agg.seconds_per_epoch =
      epochs > 0 ? agg.mean_train_seconds / epochs : 0.0;
  return agg;
}

bool BenchFullScale() {
  const char* env = std::getenv("GRARE_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

int BenchNumSplits(int full_scale, int quick) {
  return BenchFullScale() ? full_scale : quick;
}

int64_t BenchShrink(int64_t quick_shrink) {
  return BenchFullScale() ? 1 : quick_shrink;
}

}  // namespace core
}  // namespace graphrare

#include "core/experiment.h"

#include <cmath>
#include <cstdlib>

#include "common/stopwatch.h"

namespace graphrare {
namespace core {

RunStats Aggregate(const std::vector<double>& values) {
  RunStats stats;
  stats.values = values;
  if (values.empty()) return stats;
  double sum = 0.0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  // Sample standard deviation (ddof=1) to match the paper's +/- columns.
  stats.stddev = values.size() > 1
                     ? std::sqrt(var / static_cast<double>(values.size() - 1))
                     : 0.0;
  return stats;
}

namespace {

nn::ModelOptions ToModelOptions(const data::Dataset& dataset,
                                const ExperimentOptions& options,
                                uint64_t seed) {
  nn::ModelOptions mo;
  mo.in_features = dataset.num_features();
  mo.hidden = options.hidden;
  mo.num_classes = dataset.num_classes;
  mo.num_layers = options.num_layers;
  mo.dropout = options.dropout;
  mo.gat_heads = options.gat_heads;
  mo.seed = seed;
  return mo;
}

}  // namespace

BaselineAggregate RunBackbone(const data::Dataset& dataset,
                              const std::vector<data::Split>& splits,
                              nn::BackboneKind kind,
                              const ExperimentOptions& options,
                              const graph::Graph* graph_override) {
  return RunCustomModel(
      dataset, splits,
      [&](uint64_t seed) {
        return nn::MakeModel(kind, ToModelOptions(dataset, options, seed));
      },
      options, graph_override);
}

BaselineAggregate RunCustomModel(
    const data::Dataset& dataset, const std::vector<data::Split>& splits,
    const std::function<std::unique_ptr<nn::NodeClassifier>(uint64_t seed)>&
        factory,
    const ExperimentOptions& options, const graph::Graph* graph_override) {
  const graph::Graph& g = graph_override ? *graph_override : dataset.graph;
  std::vector<double> accs;
  double total_seconds = 0.0;
  int64_t total_epochs = 0;
  for (size_t s = 0; s < splits.size(); ++s) {
    const uint64_t seed = options.seed + 1000 * (s + 1);
    auto model = factory(seed);
    nn::ClassifierTrainer::Options trainer_opts;
    trainer_opts.adam = options.adam;
    trainer_opts.seed = seed;
    nn::ClassifierTrainer trainer(model.get(),
                                  nn::LayerInput::Sparse(dataset.FeaturesCsr()),
                                  &dataset.labels, trainer_opts);
    Stopwatch watch;
    const nn::FitResult fit =
        trainer.Fit(g, splits[s].train, splits[s].val, options.max_epochs,
                    options.patience);
    total_seconds += watch.ElapsedSeconds();
    total_epochs += fit.epochs_run;
    accs.push_back(trainer.Evaluate(g, splits[s].test).accuracy);
  }
  BaselineAggregate agg;
  agg.accuracy = Aggregate(accs);
  agg.seconds_per_epoch =
      total_epochs > 0 ? total_seconds / static_cast<double>(total_epochs)
                       : 0.0;
  return agg;
}

GraphRareAggregate RunGraphRare(const data::Dataset& dataset,
                                const std::vector<data::Split>& splits,
                                const GraphRareOptions& options) {
  GraphRareAggregate agg;
  std::vector<double> accs;
  for (size_t s = 0; s < splits.size(); ++s) {
    GraphRareOptions per_split = options;
    per_split.seed = options.seed + 1000 * (s + 1);
    GraphRareTrainer trainer(&dataset, per_split);
    GraphRareResult result = trainer.Run(splits[s]);
    accs.push_back(result.test_accuracy);
    agg.mean_initial_homophily += result.initial_homophily;
    agg.mean_final_homophily += result.final_homophily;
    agg.mean_entropy_seconds += result.entropy_build_seconds;
    agg.mean_train_seconds += result.train_seconds;
    if (s + 1 == splits.size()) agg.last_run = std::move(result);
  }
  const double inv = splits.empty()
                         ? 0.0
                         : 1.0 / static_cast<double>(splits.size());
  agg.accuracy = Aggregate(accs);
  agg.mean_initial_homophily *= inv;
  agg.mean_final_homophily *= inv;
  agg.mean_entropy_seconds *= inv;
  agg.mean_train_seconds *= inv;
  // Rough per-epoch figure for Table VI: iterations + pretrain epochs.
  const double epochs = static_cast<double>(options.pretrain_epochs +
                                            options.iterations *
                                                (1 + options.finetune_epochs));
  agg.seconds_per_epoch =
      epochs > 0 ? agg.mean_train_seconds / epochs : 0.0;
  return agg;
}

bool BenchFullScale() {
  const char* env = std::getenv("GRARE_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

int BenchNumSplits(int full_scale, int quick) {
  return BenchFullScale() ? full_scale : quick;
}

int64_t BenchShrink(int64_t quick_shrink) {
  return BenchFullScale() ? 1 : quick_shrink;
}

}  // namespace core
}  // namespace graphrare

#include "core/rewiring_baselines.h"

#include <algorithm>
#include <queue>

#include "tensor/ops.h"

namespace graphrare {
namespace core {

namespace ops = tensor::ops;
using tensor::Variable;

graph::Graph BuildKnnGraph(const tensor::Tensor& features,
                           const KnnGraphOptions& options) {
  GR_CHECK_GT(options.k, 0);
  const int64_t n = features.rows();
  const tensor::Tensor z =
      entropy::EmbedFeatures(features, options.embedding);
  Rng rng(options.seed);

  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(n) * static_cast<size_t>(options.k));
  std::vector<std::pair<float, int64_t>> scored;
  for (int64_t v = 0; v < n; ++v) {
    scored.clear();
    if (n <= options.exact_limit) {
      for (int64_t u = 0; u < n; ++u) {
        if (u == v) continue;
        scored.emplace_back(
            static_cast<float>(entropy::EmbeddingDot(z, v, u)), u);
      }
    } else {
      const std::vector<int64_t> candidates = rng.SampleWithoutReplacement(
          n, std::min<int64_t>(options.sampled_candidates, n));
      for (int64_t u : candidates) {
        if (u == v) continue;
        scored.emplace_back(
            static_cast<float>(entropy::EmbeddingDot(z, v, u)), u);
      }
    }
    const size_t keep =
        std::min<size_t>(static_cast<size_t>(options.k), scored.size());
    std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(keep),
                      scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first != b.first ? a.first > b.first
                                                  : a.second < b.second;
                      });
    for (size_t i = 0; i < keep; ++i) {
      edges.emplace_back(v, scored[i].second);
    }
  }
  return graph::Graph::FromEdgeListOrDie(n, edges);
}

graph::Graph BuildUgcnStarGraph(const data::Dataset& dataset,
                                const KnnGraphOptions& options) {
  const graph::Graph knn = BuildKnnGraph(dataset.features, options);
  std::vector<graph::Edge> edges = dataset.graph.edges();
  const std::vector<graph::Edge>& knn_edges = knn.edges();
  edges.insert(edges.end(), knn_edges.begin(), knn_edges.end());
  return graph::Graph::FromEdgeListOrDie(dataset.num_nodes(), edges);
}

std::shared_ptr<const tensor::CsrMatrix> NormalizedOperator(
    const graph::Graph& g) {
  return g.NormalizedAdjacency();
}

SimpGcnStarModel::SimpGcnStarModel(
    const nn::ModelOptions& options,
    std::shared_ptr<const tensor::CsrMatrix> knn_operator)
    : knn_operator_(std::move(knn_operator)), dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  GR_CHECK(knn_operator_ != nullptr);
  Rng rng(options.seed);
  lin1_ = std::make_unique<nn::Linear>(options.in_features, options.hidden,
                                       &rng);
  lin2_ = std::make_unique<nn::Linear>(options.hidden, options.num_classes,
                                       &rng);
  RegisterChild("lin1", lin1_.get());
  RegisterChild("lin2", lin2_.get());
  // theta = 0 -> s = 0.5: start as an even blend.
  theta_ = RegisterParameter("theta", tensor::Tensor::Scalar(0.0f));
}

float SimpGcnStarModel::MixingWeight() const {
  return 1.0f / (1.0f + std::exp(-theta_.value().scalar()));
}

Variable SimpGcnStarModel::Logits(const nn::ModelInputs& in, bool training,
                                  Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  auto adj = in.graph->NormalizedAdjacency();
  Variable s = ops::Sigmoid(theta_);
  Variable one(tensor::Tensor::Scalar(1.0f), /*requires_grad=*/false);
  Variable one_minus_s = ops::Sub(one, s);

  auto blend = [&](const Variable& h) {
    return ops::Add(ops::ScaleByScalar(ops::SpMM(adj, h), s),
                    ops::ScaleByScalar(ops::SpMM(knn_operator_, h),
                                       one_minus_s));
  };

  Variable h1 = in.features.is_sparse()
                    ? lin1_->ForwardSparse(in.features.sparse)
                    : lin1_->Forward(in.features.dense);
  Variable h = ops::Relu(blend(h1));
  if (dropout_ > 0.0f && training) {
    h = ops::Dropout(h, dropout_, training, rng);
  }
  return blend(lin2_->Forward(h));
}

}  // namespace core
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Training telemetry: CSV export of GraphRareResult (the Fig. 6 curves)
// and per-round block-rollout telemetry — block sizes, merge conflicts,
// rewards — logged at the end of every PPO round so large runs surface
// scheduler health without a debugger.

#ifndef GRAPHRARE_CORE_TELEMETRY_H_
#define GRAPHRARE_CORE_TELEMETRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/edit_merger.h"
#include "core/trainer.h"

namespace graphrare {
namespace core {

/// Writes one row per co-training iteration:
/// iteration,train_accuracy,val_accuracy,homophily,reward
Status WriteTelemetryCsv(const GraphRareResult& result,
                         const std::string& path);

/// Formats the same content into a string (unit tests, stdout piping).
std::string TelemetryCsvString(const GraphRareResult& result);

/// One block-rollout round's worth of scheduler + merge telemetry.
struct BlockRoundTelemetry {
  int round = 0;
  int num_blocks = 0;
  /// Sum of block node counts this round.
  int64_t block_nodes = 0;
  /// EditMerger conflict accounting for the round (see ConflictStats).
  ConflictStats conflicts;
  double mean_reward = 0.0;
  /// Full-graph validation accuracy on the merged topology.
  double val_accuracy = 0.0;
};

/// One-line human-readable summary of a round.
std::string FormatBlockRound(const BlockRoundTelemetry& t);

/// Logs FormatBlockRound at INFO severity.
void LogBlockRound(const BlockRoundTelemetry& t);

/// CSV with one row per round:
/// round,num_blocks,block_nodes,nodes_recorded,conflict_nodes,
/// conflict_rate,overwrites,cross_round_overwrites,mean_reward,val_accuracy
std::string BlockRoundCsvString(const std::vector<BlockRoundTelemetry>& rounds);

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TELEMETRY_H_

// Copyright 2026 The GraphRARE Authors.
//
// CSV export of GraphRareResult telemetry (the Fig. 6 curves), for plotting
// with external tools.

#ifndef GRAPHRARE_CORE_TELEMETRY_H_
#define GRAPHRARE_CORE_TELEMETRY_H_

#include <string>

#include "common/status.h"
#include "core/trainer.h"

namespace graphrare {
namespace core {

/// Writes one row per co-training iteration:
/// iteration,train_accuracy,val_accuracy,homophily,reward
Status WriteTelemetryCsv(const GraphRareResult& result,
                         const std::string& path);

/// Formats the same content into a string (unit tests, stdout piping).
std::string TelemetryCsvString(const GraphRareResult& result);

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TELEMETRY_H_

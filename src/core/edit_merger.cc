#include "core/edit_merger.h"

namespace graphrare {
namespace core {

void EditMerger::BeginRound() {
  round_records_.clear();
  round_stats_ = ConflictStats();
}

void EditMerger::Record(int64_t global_v, NodeEdits edits) {
  const int64_t count = ++round_records_[global_v];
  if (count == 1) {
    ++round_stats_.nodes_recorded;
    if (edits_.count(global_v) > 0) ++round_stats_.cross_round_overwrites;
  } else {
    ++round_stats_.overwrites;
    if (count == 2) ++round_stats_.conflict_nodes;
  }
  edits_[global_v] = std::move(edits);
}

void EditMerger::RecordBlock(const graph::Subgraph& block,
                             const TopologyState& state,
                             const entropy::RelativeEntropyIndex& block_index,
                             const TopologyOptimizerOptions& options) {
  GR_CHECK_EQ(block.num_nodes(), state.num_nodes());
  GR_CHECK_EQ(block.num_nodes(), block_index.num_nodes());
  for (int64_t local = 0; local < block.num_nodes(); ++local) {
    NodeEdits edits = EditsForNode(local, state, block_index, options);
    for (int64_t& t : edits.add) t = block.nodes[static_cast<size_t>(t)];
    for (int64_t& t : edits.remove) t = block.nodes[static_cast<size_t>(t)];
    Record(block.nodes[static_cast<size_t>(local)], std::move(edits));
  }
}

int64_t EditMerger::num_pending_additions() const {
  int64_t n = 0;
  for (const auto& [v, e] : edits_) n += static_cast<int64_t>(e.add.size());
  return n;
}

int64_t EditMerger::num_pending_removals() const {
  int64_t n = 0;
  for (const auto& [v, e] : edits_) n += static_cast<int64_t>(e.remove.size());
  return n;
}

graph::Graph EditMerger::Merge(const graph::Graph& original) const {
  graph::GraphEditor editor(&original);
  for (const auto& [v, edits] : edits_) {
    GR_CHECK(v >= 0 && v < original.num_nodes())
        << "EditMerger: recorded node outside the base graph";
    for (const int64_t u : edits.add) editor.AddEdge(v, u);
    for (const int64_t u : edits.remove) editor.RemoveEdge(v, u);
  }
  return editor.Build();
}

}  // namespace core
}  // namespace graphrare

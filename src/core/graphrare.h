// Copyright 2026 The GraphRARE Authors.
//
// Umbrella header: include this to use the whole GraphRARE library.
//
// Quickstart — train, deploy, serve:
//
//   #include "core/graphrare.h"
//   using namespace graphrare;
//
//   data::Dataset ds = *data::MakeDataset("cornell");
//   auto splits = data::MakeSplits(ds.labels, ds.num_classes);
//   core::GraphRareOptions opts;
//   opts.backbone = nn::BackboneKind::kGcn;
//   core::GraphRareTrainer trainer(&ds, opts);
//   core::GraphRareResult r = trainer.Run(splits[0]);
//   // r.test_accuracy, r.final_homophily, r.best_graph, r.model ...
//
//   // The run's product is the co-trained model + optimized graph:
//   serve::ModelArtifact artifact = *r.ExportArtifact(ds);
//   artifact.Save("model.grare");
//
//   // Any process can then serve it (no training stack involved):
//   auto engine = *serve::InferenceEngine::LoadFrom("model.grare");
//   auto preds = *engine.Predict({0, 1, 2});
//   // preds[0].predicted_class, preds[0].probabilities ...

#ifndef GRAPHRARE_CORE_GRAPHRARE_H_
#define GRAPHRARE_CORE_GRAPHRARE_H_

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/registry.h"
#include "data/sampler.h"
#include "data/splits.h"
#include "entropy/relative_entropy.h"
#include "graph/graph.h"
#include "graph/graph_editor.h"
#include "graph/subgraph.h"
#include "nn/models.h"
#include "nn/trainer.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "serve/artifact.h"
#include "serve/engine.h"
#include "tensor/ops.h"
#include "core/block_rollout.h"
#include "core/edit_merger.h"
#include "core/experiment.h"
#include "core/observation.h"
#include "core/reward.h"
#include "core/rewiring_baselines.h"
#include "core/topology_env.h"
#include "core/topology_optimizer.h"
#include "core/topology_state.h"
#include "core/trainer.h"

#endif  // GRAPHRARE_CORE_GRAPHRARE_H_

// Copyright 2026 The GraphRARE Authors.
//
// Merges block-local topology edits back into the global graph. Each
// rollout block ends its episode with a per-node edit list in block-local
// id space (core/topology_optimizer.h); the merger remaps those to global
// ids and resolves overlaps between blocks with last-writer-wins per
// *source node*: when two blocks both contain node v, the block recorded
// later owns v's entire edit slice (its k_v additions and d_v removals
// replace the earlier block's). With the blocks of one rollout round
// recorded in their sampling order, the merged graph is a deterministic
// function of the round — and blocks over disjoint node sets merge to the
// same graph in any order.

#ifndef GRAPHRARE_CORE_EDIT_MERGER_H_
#define GRAPHRARE_CORE_EDIT_MERGER_H_

#include <cstdint>
#include <map>

#include "graph/subgraph.h"
#include "core/topology_optimizer.h"

namespace graphrare {
namespace core {

/// Deterministic conflict accounting for one rollout round: how often the
/// last-writer-wins rule actually fired. All counts are pure functions of
/// the multiset of (node, round) records, so they are identical across
/// thread counts and block production order.
struct ConflictStats {
  /// Distinct nodes recorded this round.
  int64_t nodes_recorded = 0;
  /// Nodes recorded by more than one block this round.
  int64_t conflict_nodes = 0;
  /// Total re-records this round (sum over nodes of records - 1).
  int64_t overwrites = 0;
  /// Nodes that already carried an edit slice from an earlier round and
  /// were re-recorded this round.
  int64_t cross_round_overwrites = 0;

  /// Fraction of this round's nodes owned by more than one block.
  double ConflictRate() const {
    return nodes_recorded > 0
               ? static_cast<double>(conflict_nodes) /
                     static_cast<double>(nodes_recorded)
               : 0.0;
  }
};

/// Accumulates per-node edit lists (global id space) and materialises the
/// merged graph against a base graph.
class EditMerger {
 public:
  /// Records node `global_v`'s edits (targets already in global ids),
  /// replacing any earlier record for the same node (last writer wins).
  /// Empty edits still claim ownership: a later block that chose
  /// (k_v, d_v) = (0, 0) erases an earlier block's edits for v.
  void Record(int64_t global_v, NodeEdits edits);

  /// Records every node of `block` from a block-local state and index
  /// (targets are remapped local -> global through block.nodes).
  void RecordBlock(const graph::Subgraph& block, const TopologyState& state,
                   const entropy::RelativeEntropyIndex& block_index,
                   const TopologyOptimizerOptions& options = {});

  int64_t num_nodes_recorded() const {
    return static_cast<int64_t>(edits_.size());
  }
  int64_t num_pending_additions() const;
  int64_t num_pending_removals() const;

  /// Opens a new conflict-accounting window: round_stats() then covers the
  /// records between this call and the next. Without a BeginRound call the
  /// window spans the merger's whole lifetime.
  void BeginRound();
  /// Conflict counters of the current window.
  const ConflictStats& round_stats() const { return round_stats_; }

  /// Applies all recorded edits to `original` (ascending node order, so the
  /// result is independent of container iteration quirks). Removals win
  /// over additions of the same edge, as in graph::GraphEditor.
  graph::Graph Merge(const graph::Graph& original) const;

  void Clear() {
    edits_.clear();
    round_records_.clear();
    round_stats_ = ConflictStats();
  }

 private:
  std::map<int64_t, NodeEdits> edits_;
  /// Records per node within the current accounting window.
  std::map<int64_t, int64_t> round_records_;
  ConflictStats round_stats_;
};

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_EDIT_MERGER_H_

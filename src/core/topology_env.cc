#include "core/topology_env.h"

#include "nn/metrics.h"
#include "core/observation.h"

namespace graphrare {
namespace core {

Status TopologyEnvOptions::Validate() const {
  if (k_max < 0 || d_max < 0) {
    return Status::InvalidArgument("k_max/d_max must be non-negative");
  }
  if (gnn_epochs_per_step < 0) {
    return Status::InvalidArgument("gnn_epochs_per_step must be >= 0");
  }
  if (reward.lambda_r < 0.0) {
    return Status::InvalidArgument("reward lambda_r must be non-negative");
  }
  return entropy.Validate();
}

TopologyEnv::TopologyEnv(const data::Dataset* dataset,
                         const data::Split* split,
                         nn::ClassifierTrainer* trainer,
                         const entropy::RelativeEntropyIndex* index,
                         const TopologyEnvOptions& options)
    : dataset_(dataset),
      split_(split),
      trainer_(trainer),
      index_(index),
      options_(options),
      current_(dataset->graph) {
  GR_CHECK(dataset != nullptr && split != nullptr && trainer != nullptr &&
           index != nullptr);
  GR_CHECK_OK(options_.Validate());
  GR_CHECK_EQ(index->num_nodes(), dataset->num_nodes());
}

int64_t TopologyEnv::obs_dim() const { return kObservationDim; }

RewardInputs TopologyEnv::Evaluate() {
  RewardInputs out;
  const nn::EvalResult eval = trainer_->Evaluate(current_, split_->train);
  out.accuracy = eval.accuracy;
  out.loss = eval.loss;
  if (options_.reward.kind == RewardKind::kAuc) {
    out.auc = nn::MacroAucOvr(trainer_->EvalLogits(current_),
                              dataset_->labels, split_->train,
                              dataset_->num_classes);
  }
  return out;
}

tensor::Tensor TopologyEnv::Reset() {
  state_ = std::make_unique<TopologyState>(dataset_->num_nodes(),
                                           options_.k_max, options_.d_max);
  current_ = dataset_->graph;
  last_reward_ = 0.0;
  prev_ = Evaluate();
  return BuildObservation(dataset_->graph, current_, *state_, *index_,
                          last_reward_);
}

double TopologyEnv::Step(const rl::ActionSample& action,
                         tensor::Tensor* next_obs) {
  GR_CHECK(state_ != nullptr) << "Step() before Reset()";
  GR_CHECK(next_obs != nullptr);

  // S_{t+1} = S_t + A_t, then rebuild G_{t+1} from G_0 (Fig. 4).
  state_->Apply(action);
  current_ = BuildOptimizedGraph(dataset_->graph, *state_, *index_);

  // Train the GNN on the rewired graph, then measure the reward (Eq. 11).
  for (int e = 0; e < options_.gnn_epochs_per_step; ++e) {
    trainer_->TrainEpoch(current_, split_->train);
  }
  const RewardInputs curr = Evaluate();
  const double reward = ComputeReward(options_.reward, prev_, curr);
  prev_ = curr;
  last_reward_ = reward;

  *next_obs = BuildObservation(dataset_->graph, current_, *state_, *index_,
                               last_reward_);
  return reward;
}

double TopologyEnv::ValidationAccuracy() {
  return trainer_->Evaluate(current_, split_->val).accuracy;
}

}  // namespace core
}  // namespace graphrare

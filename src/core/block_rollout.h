// Copyright 2026 The GraphRARE Authors.
//
// Subgraph-scoped RL topology optimization: the paper's topology MDP
// (Fig. 3) run on neighbor-sampled blocks instead of the full graph, which
// is what decouples the co-training loop's per-step cost from the global
// adjacency (SparRL-style per-subgraph edge editing). Three pieces:
//
//  * BlockTopologyEnv — one episode's MDP over a single block. All ids are
//    block-local: the state covers the block's nodes, rewiring runs
//    BuildOptimizedGraph against the block's induced graph with a
//    RelativeEntropyIndex::Restrict view, and Eq. 11 rewards come from
//    nn::MiniBatchTrainer finetune/eval steps on the block's train subset.
//
//  * BlockRolloutRunner — consumes B scheduled blocks per round from a
//    data::BlockPipeline (partition-aware seed batching + optional
//    prefetch: producers sample round R+1 while round R trains), runs one
//    lockstep episode over all B envs (a single policy forward per step
//    through rl::RunAgentOnBatchedEnvs), and records each block's final
//    edit slice into an EditMerger in block order, with per-round
//    conflict accounting surfaced through core::telemetry.
//
//  * RunBlockCoTraining — the Algorithm-1-shaped driver: entropy index,
//    pretraining, rollout rounds, validation-based model/graph selection.
//
// Full-graph mode is the B=1, fanout=infinity special case (empty
// `fanouts`: the block is graph::FullSubgraph over all nodes) and
// reproduces the full-graph TopologyEnv trajectory bitwise — same rewards,
// same rewired edge set, same post-finetune weights (tests/
// block_rollout_test.cc).

#ifndef GRAPHRARE_CORE_BLOCK_ROLLOUT_H_
#define GRAPHRARE_CORE_BLOCK_ROLLOUT_H_

#include <memory>
#include <vector>

#include "data/block_pipeline.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "data/sampler.h"
#include "data/splits.h"
#include "entropy/relative_entropy.h"
#include "nn/trainer.h"
#include "rl/env.h"
#include "core/edit_merger.h"
#include "core/telemetry.h"
#include "core/topology_env.h"
#include "core/trainer.h"

namespace graphrare {
namespace core {

/// Configuration of the block rollout scheduler.
struct BlockRolloutOptions {
  /// Blocks (parallel episodes) per rollout round. B.
  int blocks_per_round = 4;
  /// Train seed nodes per block.
  int64_t seeds_per_block = 64;
  /// Sampler fanouts for block extraction (-1 entries = unlimited). Empty
  /// = full-graph mode: every block is the identity subgraph over all
  /// nodes, today's TopologyEnv semantics.
  std::vector<int64_t> fanouts = {10, 10};
  bool sample_replace = false;
  /// Env steps per episode (each step rewires + finetunes every block).
  int steps_per_episode = 4;
  /// Per-episode MDP knobs (k_max/d_max, reward, finetune epochs).
  TopologyEnvOptions env;
  uint64_t seed = 1;

  /// Seed-batch scheduling mode. kIndependent reproduces the legacy
  /// shuffled-chunk stream bitwise; kLocality grows BFS batches so blocks
  /// overlap less and the merger sees fewer conflicts.
  data::PartitionMode partition = data::PartitionMode::kIndependent;
  /// Rounds of blocks the pipeline samples ahead of training. 0 = inline
  /// (sample on the training thread, no producer threads). The sampled
  /// stream is bitwise identical either way.
  int prefetch_depth = 1;
  /// Producer threads when prefetch_depth > 0.
  int num_producers = 1;
  /// Locality partitioner seed (ignored by kIndependent, which derives
  /// from `seed` exactly like the legacy runner). 0 = fall back to `seed`;
  /// RunBlockCoTraining overrides it with DeriveSeeds().partition.
  uint64_t partition_seed = 0;
  /// RunBlockCoTraining only: incrementally refresh the entropy index
  /// from each round's merged edits (RelativeEntropyIndex::ApplyEdits) so
  /// sequences track the rewired graph instead of G_0. Default off — the
  /// paper builds the index once, and existing trajectories depend on it.
  bool refresh_entropy = false;

  Status Validate() const;
};

/// One sampled block's episode env. Ids are block-local throughout; the
/// final (k, d) state is exported back to global space via MergeInto.
class BlockTopologyEnv : public rl::Env {
 public:
  /// `dataset` and `trainer` must outlive the env. `sorted_train_global`
  /// is the split's (ascending) train index; the env intersects it with
  /// the block to form the reward subset, which must be non-empty (blocks
  /// are seeded from train nodes, so it always is). `block_index` is the
  /// Restrict view of the global entropy index for `block`.
  BlockTopologyEnv(const data::Dataset* dataset, graph::Subgraph block,
                   const std::vector<int64_t>& sorted_train_global,
                   nn::MiniBatchTrainer* trainer,
                   entropy::RelativeEntropyIndex block_index,
                   const TopologyEnvOptions& options);

  tensor::Tensor Reset() override;
  double Step(const rl::ActionSample& action,
              tensor::Tensor* next_obs) override;

  int64_t obs_dim() const override;
  int64_t num_components() const override { return block_.num_nodes(); }

  /// Current (rewired) block graph, local ids.
  const graph::Graph& current_graph() const { return view_.graph; }
  const graph::Subgraph& block() const { return block_; }
  const TopologyState& state() const { return *state_; }

  /// Records this episode's final per-node edit slice (global ids) into
  /// the merger. Call after the episode; last writer wins on overlap.
  void MergeInto(EditMerger* merger) const;

 private:
  RewardInputs Evaluate();

  const data::Dataset* dataset_;
  nn::MiniBatchTrainer* trainer_;
  TopologyEnvOptions options_;

  graph::Subgraph block_;  ///< original block topology (G_0 induced)
  /// Rewired working copy whose seeds are the block's train subset; its
  /// graph field follows the episode's rewiring.
  graph::Subgraph view_;
  entropy::RelativeEntropyIndex index_;  ///< block-local Restrict view
  std::vector<int64_t> block_labels_;    ///< labels by local id (AUC path)

  std::unique_ptr<TopologyState> state_;
  RewardInputs prev_;
  double last_reward_ = 0.0;
};

/// Consumes scheduled block rounds from a data::BlockPipeline and runs
/// batched episodes; owns the cross-round EditMerger. One runner per
/// (dataset, split, trainer, index) tuple.
class BlockRolloutRunner {
 public:
  struct RoundStats {
    int num_blocks = 0;
    int64_t env_steps = 0;
    int64_t block_nodes = 0;   ///< sum of block sizes this round
    double mean_reward = 0.0;  ///< mean over the round's env steps
    ConflictStats conflicts;   ///< merge conflicts this round
  };

  /// All pointers must outlive the runner. `index` is the *global*
  /// entropy index; per-block Restrict views are taken internally.
  BlockRolloutRunner(const data::Dataset* dataset, const data::Split* split,
                     nn::MiniBatchTrainer* trainer,
                     const entropy::RelativeEntropyIndex* index,
                     const BlockRolloutOptions& options);

  /// One rollout round: B seed batches -> B blocks -> one lockstep
  /// episode (steps_per_episode steps, one policy forward per step across
  /// all blocks) -> edits recorded into the merger in block order.
  RoundStats RunRound(rl::PpoAgent* agent);

  /// G_0 with every edit recorded so far applied (later rounds overwrite
  /// earlier ones per node).
  graph::Graph MergedGraph() const { return merger_.Merge(dataset_->graph); }
  const EditMerger& merger() const { return merger_; }
  const BlockRolloutOptions& options() const { return options_; }

 private:
  const data::Dataset* dataset_;
  const data::Split* split_;
  nn::MiniBatchTrainer* trainer_;
  const entropy::RelativeEntropyIndex* index_;
  BlockRolloutOptions options_;

  /// Partition-aware scheduler + (optionally prefetching) sampler.
  std::unique_ptr<data::BlockPipeline> pipeline_;
  EditMerger merger_;
};

/// Outcome of a block-scoped co-training run (mirrors GraphRareResult,
/// including the retained model + ExportArtifact deployable hand-off).
struct BlockCoTrainResult {
  double test_accuracy = 0.0;
  double best_val_accuracy = 0.0;
  int64_t initial_edges = 0;
  int64_t final_edges = 0;
  double entropy_build_seconds = 0.0;
  double train_seconds = 0.0;
  int64_t env_steps = 0;
  std::vector<double> reward_history;   ///< per-round mean reward
  std::vector<double> val_acc_history;  ///< per-round merged-graph val acc
  /// Per-round scheduler + merge-conflict telemetry (also logged live).
  std::vector<BlockRoundTelemetry> round_telemetry;
  graph::Graph best_graph;

  /// The co-trained backbone with its best (validation-selected) weights.
  std::shared_ptr<nn::NodeClassifier> model;
  nn::BackboneKind backbone = nn::BackboneKind::kGcn;
  nn::ModelOptions model_options;
  uint64_t seed = 0;

  /// Packages model + best_graph into a deployable serve::ModelArtifact.
  Result<serve::ModelArtifact> ExportArtifact(
      const data::Dataset& dataset) const;
};

/// Runs block-scoped GraphRARE co-training on one split: entropy index on
/// G_0, mini-batch pretraining, `options.iterations` rollout rounds with
/// merged-graph validation selection, final test evaluation on the best
/// graph/weights. The MDP knobs of `rollout.env` (k_max, d_max, reward,
/// entropy) and every subsystem seed are overridden from `options` so one
/// GraphRareOptions + master seed configures both co-training paths.
BlockCoTrainResult RunBlockCoTraining(const data::Dataset& dataset,
                                      const data::Split& split,
                                      const GraphRareOptions& options,
                                      const BlockRolloutOptions& rollout);

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_BLOCK_ROLLOUT_H_

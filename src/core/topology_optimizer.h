// Copyright 2026 The GraphRARE Authors.
//
// Graph topology optimization module (paper Fig. 4): rebuilds G_{t+1} from
// the *original* graph G_0 and the absolute state S_{t+1} — for each node v,
// connect the top-k_v entries of its remote entropy sequence and drop the
// first d_v entries of its (ascending) neighbour sequence.

#ifndef GRAPHRARE_CORE_TOPOLOGY_OPTIMIZER_H_
#define GRAPHRARE_CORE_TOPOLOGY_OPTIMIZER_H_

#include "entropy/relative_entropy.h"
#include "graph/graph_editor.h"
#include "core/topology_state.h"

namespace graphrare {
namespace core {

/// Options controlling which edit channels are active (Table V ablations
/// GCN-RARE-add / GCN-RARE-remove).
struct TopologyOptimizerOptions {
  bool enable_add = true;
  bool enable_remove = true;
};

/// Materialises the optimized graph for a state. Deterministic.
graph::Graph BuildOptimizedGraph(const graph::Graph& original,
                                 const TopologyState& state,
                                 const entropy::RelativeEntropyIndex& index,
                                 const TopologyOptimizerOptions& options = {});

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TOPOLOGY_OPTIMIZER_H_

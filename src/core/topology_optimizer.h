// Copyright 2026 The GraphRARE Authors.
//
// Graph topology optimization module (paper Fig. 4): rebuilds G_{t+1} from
// the *original* graph G_0 and the absolute state S_{t+1} — for each node v,
// connect the top-k_v entries of its remote entropy sequence and drop the
// first d_v entries of its (ascending) neighbour sequence.
//
// The per-node edit computation is id-space-agnostic: it only reads the
// state and the entropy index, so the same code serves the full graph and a
// block-local (graph::Subgraph-scoped) index produced by
// RelativeEntropyIndex::Restrict. Block edits are merged back into the
// global graph through core::EditMerger.

#ifndef GRAPHRARE_CORE_TOPOLOGY_OPTIMIZER_H_
#define GRAPHRARE_CORE_TOPOLOGY_OPTIMIZER_H_

#include <vector>

#include "entropy/relative_entropy.h"
#include "graph/graph_editor.h"
#include "core/topology_state.h"

namespace graphrare {
namespace core {

/// Options controlling which edit channels are active (Table V ablations
/// GCN-RARE-add / GCN-RARE-remove).
struct TopologyOptimizerOptions {
  bool enable_add = true;
  bool enable_remove = true;
};

/// Edge edits contributed by one node: targets of additions (prefix of the
/// node's remote sequence) and removals (prefix of its neighbour sequence),
/// in whatever id space the producing index lives in.
struct NodeEdits {
  std::vector<int64_t> add;
  std::vector<int64_t> remove;

  bool empty() const { return add.empty() && remove.empty(); }
};

/// Edits node `v` contributes under `state` (Fig. 4, one node's slice).
/// `v`, the state, and the index must share one id space.
NodeEdits EditsForNode(int64_t v, const TopologyState& state,
                       const entropy::RelativeEntropyIndex& index,
                       const TopologyOptimizerOptions& options = {});

/// Same, writing into a caller-owned buffer (cleared first) so per-node
/// loops over the whole graph stay allocation-free after warm-up.
void AppendEditsForNode(int64_t v, const TopologyState& state,
                        const entropy::RelativeEntropyIndex& index,
                        const TopologyOptimizerOptions& options,
                        NodeEdits* out);

/// Materialises the optimized graph for a state. Deterministic. `original`,
/// `state`, and `index` must share one id space (the full graph, or a
/// block's local space).
graph::Graph BuildOptimizedGraph(const graph::Graph& original,
                                 const TopologyState& state,
                                 const entropy::RelativeEntropyIndex& index,
                                 const TopologyOptimizerOptions& options = {});

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TOPOLOGY_OPTIMIZER_H_

// Copyright 2026 The GraphRARE Authors.
//
// Multi-split experiment runners shared by the benches and examples: train a
// configuration on every split and aggregate mean +/- std, following the
// paper's protocol (test accuracy at best validation accuracy, averaged
// over random splits).

#ifndef GRAPHRARE_CORE_EXPERIMENT_H_
#define GRAPHRARE_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/registry.h"
#include "data/splits.h"
#include "core/block_rollout.h"
#include "core/rewiring_baselines.h"
#include "core/trainer.h"

namespace graphrare {
namespace core {

/// Mean/std aggregate of per-split values.
struct RunStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> values;
};

RunStats Aggregate(const std::vector<double>& values);

/// Shared experiment configuration (baseline fitting budget).
struct ExperimentOptions {
  int num_splits = 10;
  int max_epochs = 150;
  int patience = 25;
  int64_t hidden = 64;
  int num_layers = 2;
  float dropout = 0.5f;
  int gat_heads = 4;
  nn::Adam::Options adam;
  uint64_t seed = 7;

  ExperimentOptions() {
    adam.lr = 0.01f;
    adam.weight_decay = 5e-5f;
  }
};

/// Aggregate of a backbone baseline run. `seconds_per_epoch` feeds Table VI.
struct BaselineAggregate {
  RunStats accuracy;
  double seconds_per_epoch = 0.0;
};

/// Trains `kind` on each split over the given graph (defaults to the
/// dataset's original topology) and reports test accuracy stats.
BaselineAggregate RunBackbone(const data::Dataset& dataset,
                              const std::vector<data::Split>& splits,
                              nn::BackboneKind kind,
                              const ExperimentOptions& options,
                              const graph::Graph* graph_override = nullptr);

/// Same, with a caller-provided model factory (custom baselines). The
/// factory receives the per-split seed.
BaselineAggregate RunCustomModel(
    const data::Dataset& dataset, const std::vector<data::Split>& splits,
    const std::function<std::unique_ptr<nn::NodeClassifier>(uint64_t seed)>&
        factory,
    const ExperimentOptions& options,
    const graph::Graph* graph_override = nullptr);

/// Trains `kind` on each split with neighbor-sampled mini-batches
/// (evaluation stays full-graph) and reports test accuracy stats.
/// `options.max_epochs`/`patience` are overridden by `mb.max_epochs`/
/// `mb.patience`; the rest of `options` (model size, Adam, seed) applies
/// unchanged so full-graph and mini-batch runs are directly comparable.
BaselineAggregate RunBackboneMiniBatch(const data::Dataset& dataset,
                                       const std::vector<data::Split>& splits,
                                       nn::BackboneKind kind,
                                       const ExperimentOptions& options,
                                       const MiniBatchOptions& mb,
                                       const graph::Graph* graph_override =
                                           nullptr);

/// Aggregate of a GraphRARE run across splits.
struct GraphRareAggregate {
  RunStats accuracy;
  double mean_initial_homophily = 0.0;
  double mean_final_homophily = 0.0;
  double mean_entropy_seconds = 0.0;
  double mean_train_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  /// Telemetry of the final split's run (Fig. 6).
  GraphRareResult last_run;
};

/// Runs GraphRARE (options.backbone et al.) on every split. The per-split
/// seed is derived from options.seed + split index.
GraphRareAggregate RunGraphRare(const data::Dataset& dataset,
                                const std::vector<data::Split>& splits,
                                const GraphRareOptions& options);

/// Runs block-scoped GraphRARE co-training (core/block_rollout.h) on every
/// split, with the same per-split seed derivation as RunGraphRare so the
/// two paths are directly comparable. `rollout` carries the block
/// scheduler knobs; its MDP/env fields are overridden per split from
/// `options` (see RunBlockCoTraining).
GraphRareAggregate RunGraphRareBlocks(const data::Dataset& dataset,
                                      const std::vector<data::Split>& splits,
                                      const GraphRareOptions& options,
                                      const BlockRolloutOptions& rollout);

/// Quick-mode helpers for the bench binaries: GRARE_BENCH_FULL=1 restores
/// the paper-scale protocol; otherwise sizes are reduced so the whole bench
/// suite completes in minutes on a laptop CPU.
bool BenchFullScale();
int BenchNumSplits(int full_scale = 10, int quick = 2);
/// Dataset shrink factor in quick mode (1 in full scale).
int64_t BenchShrink(int64_t quick_shrink);

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_EXPERIMENT_H_

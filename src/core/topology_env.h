// Copyright 2026 The GraphRARE Authors.
//
// The topology-optimization MDP (paper Fig. 3) packaged as an rl::Env, so
// the PPO agent (or any other algorithm honouring the Env interface) can be
// driven by the generic rl::RunAgentOnEnv loop. GraphRareTrainer inlines
// this logic for fine-grained control (Algorithm 1's conditional
// finetuning); the Env form trades that for composability and is used by
// tests and the CLI's `env` mode.

#ifndef GRAPHRARE_CORE_TOPOLOGY_ENV_H_
#define GRAPHRARE_CORE_TOPOLOGY_ENV_H_

#include <memory>

#include "data/dataset.h"
#include "data/splits.h"
#include "entropy/relative_entropy.h"
#include "nn/trainer.h"
#include "rl/env.h"
#include "core/reward.h"
#include "core/topology_optimizer.h"

namespace graphrare {
namespace core {

/// Environment options.
struct TopologyEnvOptions {
  int k_max = 5;
  int d_max = 5;
  /// Supervised epochs run on the rewired graph every step (the Env form
  /// always trains; the paper's conditional variant lives in the trainer).
  int gnn_epochs_per_step = 2;
  RewardOptions reward;
  entropy::EntropyOptions entropy;
  uint64_t seed = 1;

  /// Rejects k_max/d_max < 0, negative epoch counts, lambda_r < 0, and
  /// invalid entropy options (lambda < 0, ...) with a Status instead of
  /// letting a bad configuration crash mid-episode.
  Status Validate() const;
};

/// One episode = one topology-optimization trajectory from G_0.
/// Observations are the per-node features of core/observation.h; actions
/// are per-node {-1,0,+1} deltas on (k, d); the reward is Eq. 11 computed
/// on the training subset.
class TopologyEnv : public rl::Env {
 public:
  /// `dataset`, `split`, and `trainer` must outlive the env. The trainer's
  /// model is trained in place as the episode progresses.
  TopologyEnv(const data::Dataset* dataset, const data::Split* split,
              nn::ClassifierTrainer* trainer,
              const entropy::RelativeEntropyIndex* index,
              const TopologyEnvOptions& options);

  tensor::Tensor Reset() override;
  double Step(const rl::ActionSample& action,
              tensor::Tensor* next_obs) override;

  int64_t obs_dim() const override;
  int64_t num_components() const override { return dataset_->num_nodes(); }

  /// Current (rewired) graph of the episode.
  const graph::Graph& current_graph() const { return current_; }
  /// Validation accuracy of the current model/graph (model selection).
  double ValidationAccuracy();

 private:
  RewardInputs Evaluate();

  const data::Dataset* dataset_;
  const data::Split* split_;
  nn::ClassifierTrainer* trainer_;
  const entropy::RelativeEntropyIndex* index_;
  TopologyEnvOptions options_;

  std::unique_ptr<TopologyState> state_;
  graph::Graph current_;
  RewardInputs prev_;
  double last_reward_ = 0.0;
};

}  // namespace core
}  // namespace graphrare

#endif  // GRAPHRARE_CORE_TOPOLOGY_ENV_H_

#include "net/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace graphrare {
namespace net {

namespace {

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

/// Recursive-descent parser over a bounded input.
class JsonParser {
 public:
  JsonParser(const std::string& text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> ParseDocument() {
    JsonValue value;
    GR_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON error at byte %zu: %s", pos_, message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsJsonWhitespace(text_[pos_])) ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(StrFormat("unexpected character '%c'", c));
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](const char* word) {
      const size_t n = std::strlen(word);
      if (text_.compare(pos_, n, word) != 0) return false;
      pos_ += n;
      return true;
    };
    if (match("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        !std::isfinite(v)) {
      pos_ = begin;
      return Error("malformed number: " + token);
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for ids/paths).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", e));
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue item;
      GR_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->items_.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      std::string key;
      GR_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      GR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int max_depth_;
};

Result<JsonValue> JsonValue::Parse(const std::string& text, int max_depth) {
  return JsonParser(text, max_depth).ParseDocument();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<int64_t> JsonValue::AsInt64() const {
  if (!is_number()) {
    return Status::InvalidArgument("expected an integer");
  }
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (number_ != std::floor(number_) || number_ > kExact ||
      number_ < -kExact) {
    return Status::InvalidArgument(
        StrFormat("expected an integer, got %g", number_));
  }
  return static_cast<int64_t>(number_);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace net
}  // namespace graphrare

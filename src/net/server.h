// Copyright 2026 The GraphRARE Authors.
//
// Epoll HTTP/1.1 front-end over serve::InferenceEngine — the network tier
// of the train -> artifact -> serve pipeline. A single reactor thread owns
// every connection (accept, incremental parse, response ordering for
// pipelined requests, write backpressure, idle sweeps); model evaluation
// happens on the ContinuousBatcher's worker pool, whose completions are
// marshalled back onto the loop with EventLoop::Post.
//
// Routes:
//   POST /v1/predict  {"nodes":[id,...]}          -> predictions
//   POST /v1/topk     {"node":id,"k":K}           -> top-K classes
//   POST /v1/reload   {"path":"model.grare"}      -> artifact hot-swap
//   GET  /healthz                                 -> liveness + engine info
//   GET  /metrics                                 -> text metrics (SLOs,
//                                                    latency percentiles,
//                                                    batcher counters)
//
// Hot-swap semantics: /v1/reload loads the new artifact on a side thread
// (the reactor keeps serving v1), builds the new engine with the same
// EngineOptions, then atomically publishes it through serve::EngineHandle.
// Batches in flight keep their v1 snapshot until they finish; every
// response is computed wholly by one engine version and no request is
// dropped — the hot-swap test pins this.
//
// Shutdown: Shutdown() is async-signal-safe. The server stops accepting,
// finishes every admitted request, flushes every response, then Run()
// returns — the daemon prints final percentiles afterwards.

#ifndef GRAPHRARE_NET_SERVER_H_
#define GRAPHRARE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "net/batcher.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "serve/engine.h"

namespace graphrare {
namespace net {

struct HttpServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port from port()
  int backlog = 128;
  int max_connections = 1024;
  /// Connections with no read progress and nothing in flight are closed
  /// after this long — the slow-loris guard. 0 disables the sweep.
  int idle_timeout_ms = 10000;
  /// Reactor poll granularity: idle sweeps and drain checks run per tick.
  int tick_ms = 50;
  /// Latency SLO per request; responses slower than this bump the route's
  /// slo_violations counter on /metrics.
  double slo_ms = 50.0;
  /// Default deadline for /v1/predict and /v1/topk (overridable per
  /// request with the X-Deadline-Ms header). A request still queued when
  /// its deadline passes is shed with 503 + Retry-After instead of
  /// spending engine time. 0 = no default deadline.
  double default_deadline_ms = 0.0;
  /// Ceiling for client-supplied X-Deadline-Ms values.
  double max_deadline_ms = 60000.0;
  /// Reload circuit breaker: this many consecutive reload failures open
  /// the breaker — further reloads get 503 + Retry-After until
  /// `reload_breaker_cooldown_ms` passes, then one half-open probe reload
  /// is admitted (success closes the breaker, failure reopens it). The
  /// state shows on /healthz and /metrics. 0 disables the breaker.
  int reload_breaker_threshold = 3;
  double reload_breaker_cooldown_ms = 5000.0;
  HttpLimits limits;
  BatcherOptions batcher;  ///< used when no external batcher is supplied

  Status Validate() const;
};

/// Snapshot of one route's counters.
struct RouteStats {
  std::string route;
  int64_t requests = 0;
  int64_t errors = 0;          ///< responses with status >= 400
  int64_t slo_violations = 0;  ///< responses slower than slo_ms
  int64_t shed = 0;            ///< 503s from deadlines/overload/breaker
  LatencySummary latency_ms;   ///< dispatch -> response enqueued
};

/// Renders the JSON body for a list of predictions (shared with tests and
/// the load bench so expected bodies are byte-exact).
std::string PredictionsToJson(const std::vector<serve::Prediction>& preds);
/// Renders the JSON body for a /v1/topk answer.
std::string TopKToJson(int64_t node,
                       const std::vector<std::pair<int64_t, float>>& topk);

class HttpServer {
 public:
  /// `batcher` may be null, in which case the server builds its own from
  /// options.batcher and drains it when Run() returns. A shared batcher
  /// (the daemon's file/stdin path uses the same one) stays running.
  HttpServer(std::shared_ptr<serve::EngineHandle> engine,
             std::shared_ptr<ContinuousBatcher> batcher,
             HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and listens. After success port() is the bound port.
  Status Start();
  int port() const { return port_; }

  /// Runs the reactor on the calling thread until Shutdown(). Requires a
  /// successful Start().
  void Run();

  /// Asks Run() to drain and return. Safe from any thread and from signal
  /// handlers. Idempotent.
  void Shutdown();

  /// Prometheus-style text rendering of every counter (also what
  /// GET /metrics serves).
  std::string MetricsText() const;
  std::vector<RouteStats> AllRouteStats() const;

  int64_t connections_total() const { return connections_total_.load(); }
  /// Responses computed but undeliverable because the client had gone.
  int64_t responses_client_gone() const { return client_gone_.load(); }
  const ContinuousBatcher& batcher() const { return *batcher_; }

 private:
  struct Connection;
  struct RouteMetrics;
  enum Route : int;

  void AcceptReady();
  void ConnectionReady(uint64_t conn_id, uint32_t events);
  void ReadInput(Connection* conn);
  void ParseBuffered(Connection* conn);
  void HandleRequest(Connection* conn, HttpRequest request);
  void HandlePredict(Connection* conn, uint64_t slot, bool keep_alive,
                     double deadline_ms, const std::string& body);
  void HandleTopK(Connection* conn, uint64_t slot, bool keep_alive,
                  double deadline_ms, const std::string& body);
  void HandleReload(Connection* conn, uint64_t slot, bool keep_alive,
                    const std::string& body);
  /// Serialises + enqueues at `slot`, keeping pipelined responses in
  /// request order, and records route metrics.
  void FinishRequest(Connection* conn, uint64_t slot, Route route,
                     double elapsed_ms, HttpResponse response);
  void DeliverSerialized(Connection* conn, uint64_t slot, std::string bytes,
                         bool close_after);
  void FlushOutput(Connection* conn);
  void UpdateEventMask(Connection* conn);
  void CloseConnection(Connection* conn);
  void OnTick();
  bool Drained() const;

  /// Shared with batcher completion callbacks, which may outlive the
  /// server when the batcher is externally owned. The destructor flips
  /// `alive` under the mutex: a callback that observed alive == true has
  /// finished its loop_.Post before destruction proceeds; later ones
  /// drop the response instead of touching freed memory.
  struct Liveness {
    std::mutex mu;
    bool alive = true;
  };

  std::shared_ptr<serve::EngineHandle> engine_;
  std::shared_ptr<ContinuousBatcher> batcher_;
  const bool owns_batcher_;
  HttpServerOptions options_;
  std::shared_ptr<Liveness> liveness_ = std::make_shared<Liveness>();

  EventLoop loop_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  bool draining_ = false;
  /// accept4 hit a persistent error (fd exhaustion); the listen fd is
  /// deregistered until OnTick re-arms it.
  bool accept_paused_ = false;

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  /// Requests admitted to the batcher whose response is still pending.
  int64_t inflight_ = 0;

  // Hot-swap state (loop thread only, except the worker body).
  bool reload_in_progress_ = false;
  std::thread reload_thread_;
  std::atomic<int64_t> reloads_total_{0};

  // Reload circuit breaker. Transitions happen on the loop thread; the
  // state and failure count are atomics so MetricsText (any thread) can
  // read them.
  enum class BreakerState : int { kClosed = 0, kHalfOpen = 1, kOpen = 2 };
  std::atomic<int> breaker_state_{0};
  std::atomic<int64_t> reload_failures_total_{0};
  int reload_failure_streak_ = 0;  ///< loop thread only
  Stopwatch breaker_opened_;       ///< loop thread only
  /// Cooldown still to wait before the next probe reload, or 0.
  double BreakerRemainingMs() const;
  void OnReloadOutcome(bool ok);

  std::atomic<int64_t> connections_total_{0};
  std::atomic<int64_t> connections_rejected_{0};
  std::atomic<int64_t> client_gone_{0};
  std::unique_ptr<RouteMetrics[]> routes_;
};

}  // namespace net
}  // namespace graphrare

#endif  // GRAPHRARE_NET_SERVER_H_

#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace graphrare {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

/// eventfd write with EINTR retry. Async-signal-safe (a plain write loop);
/// EAGAIN just means the counter is already non-zero — the loop is awake.
void WriteWakeFd(int fd) {
  const uint64_t one = 1;
  while (::write(fd, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Ok() const {
  if (epoll_fd_ < 0) return Status::Internal("epoll_create1 failed");
  if (wake_fd_ < 0) return Status::Internal("eventfd failed");
  return Status::OK();
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Errno("epoll_ctl(ADD)");
  }
  callbacks_[fd] = std::move(callback);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Errno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  WriteWakeFd(wake_fd_);
}

void EventLoop::Stop() {
  stop_.store(true);
  WriteWakeFd(wake_fd_);
}

void EventLoop::DrainWakeFd() {
  uint64_t value = 0;
  while (true) {
    const ssize_t n = ::read(wake_fd_, &value, sizeof(value));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;  // EAGAIN: drained
  }
}

void EventLoop::Run(int tick_ms, const std::function<void()>& on_tick) {
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load()) {
    const int n = failpoint::EpollWait("net.epoll_wait", epoll_fd_, events,
                                       kMaxEvents, tick_ms);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        DrainWakeFd();
        continue;
      }
      // A callback earlier in this batch may have closed this fd: look it
      // up fresh, and copy the handler so Remove() inside it stays safe.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      FdCallback callback = it->second;
      callback(events[i].events);
    }

    // Posted tasks (cross-thread completions) after fd events, so a task
    // targeting a connection closed in this batch sees it gone.
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
    }
    for (auto& task : tasks) task();

    if (on_tick) on_tick();
  }
}

}  // namespace net
}  // namespace graphrare

#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace graphrare {
namespace net {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

/// True when a comma-separated header value contains `token`
/// (case-insensitive), per the Connection header grammar.
bool HasToken(const std::string& value, const char* token) {
  const std::string lower = ToLower(value);
  size_t begin = 0;
  while (begin <= lower.size()) {
    size_t end = lower.find(',', begin);
    if (end == std::string::npos) end = lower.size();
    if (Trim(lower.substr(begin, end - begin)) == token) return true;
    begin = end + 1;
  }
  return false;
}

/// Strict non-negative decimal parse for Content-Length; rejects signs,
/// whitespace, junk, and overflow past `max`.
bool ParseContentLength(const std::string& value, size_t max, size_t* out) {
  if (value.empty()) return false;
  size_t n = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    const size_t digit = static_cast<size_t>(c - '0');
    if (n > max / 10 || n * 10 > max - digit) {
      // Saturate instead of failing: the caller distinguishes "too big"
      // (413) from "malformed" (400).
      *out = max + 1;
      return true;
    }
    n = n * 10 + digit;
  }
  *out = n;
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

HttpParser::State HttpParser::Fail(int http_status, std::string message) {
  error_ = Status::InvalidArgument(std::move(message));
  error_status_code_ = http_status;
  buffer_.clear();
  return State::kError;
}

HttpParser::State HttpParser::Next() {
  if (error_status_code_ != 0) return State::kError;

  // Request line.
  const size_t line_end = buffer_.find("\r\n");
  if (line_end == std::string::npos) {
    if (buffer_.size() > limits_.max_request_line) {
      return Fail(431, StrFormat("request line exceeds %zu bytes",
                                 limits_.max_request_line));
    }
    return State::kNeedMore;
  }
  if (line_end + 2 > limits_.max_request_line) {
    return Fail(431, StrFormat("request line exceeds %zu bytes",
                               limits_.max_request_line));
  }
  const std::string line = buffer_.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    return Fail(400, "malformed request line: " + line);
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    return Fail(505, "unsupported version: " + req.version);
  }

  // Header block, up to the blank line.
  size_t pos = line_end + 2;
  size_t header_bytes = 0;
  while (true) {
    const size_t eol = buffer_.find("\r\n", pos);
    if (eol == std::string::npos) {
      if (buffer_.size() - pos > limits_.max_header_bytes) {
        return Fail(431, StrFormat("headers exceed %zu bytes",
                                   limits_.max_header_bytes));
      }
      return State::kNeedMore;
    }
    if (eol == pos) {  // blank line: end of headers
      pos += 2;
      break;
    }
    const std::string header_line = buffer_.substr(pos, eol - pos);
    header_bytes += header_line.size() + 2;
    if (header_bytes > limits_.max_header_bytes) {
      return Fail(431, StrFormat("headers exceed %zu bytes",
                                 limits_.max_header_bytes));
    }
    if (req.headers.size() >= limits_.max_headers) {
      return Fail(431,
                  StrFormat("more than %zu headers", limits_.max_headers));
    }
    if (header_line[0] == ' ' || header_line[0] == '\t') {
      return Fail(400, "obsolete header line folding is not supported");
    }
    const size_t colon = header_line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Fail(400, "malformed header line: " + header_line);
    }
    const std::string name = header_line.substr(0, colon);
    if (name.find(' ') != std::string::npos ||
        name.find('\t') != std::string::npos) {
      return Fail(400, "whitespace in header name: " + name);
    }
    req.headers.emplace_back(ToLower(name),
                             Trim(header_line.substr(colon + 1)));
    pos = eol + 2;
  }

  // Body framing: identity + Content-Length only.
  if (req.FindHeader("transfer-encoding") != nullptr) {
    return Fail(501, "transfer-encoding is not supported");
  }
  size_t content_length = 0;
  if (const std::string* cl = req.FindHeader("content-length")) {
    // RFC 7230 §3.3.2: differing Content-Length values are a request
    // smuggling/desync vector behind a proxy that picks the other one —
    // reject unless every copy is byte-identical.
    for (const auto& [name, value] : req.headers) {
      if (name == "content-length" && value != *cl) {
        return Fail(400, "conflicting content-length headers");
      }
    }
    if (!ParseContentLength(*cl, limits_.max_body_bytes, &content_length)) {
      return Fail(400, "malformed content-length: " + *cl);
    }
    if (content_length > limits_.max_body_bytes) {
      return Fail(413, StrFormat("body exceeds %zu bytes",
                                 limits_.max_body_bytes));
    }
  }
  if (buffer_.size() - pos < content_length) return State::kNeedMore;
  req.body = buffer_.substr(pos, content_length);
  pos += content_length;

  // Keep-alive: HTTP/1.1 defaults on, 1.0 defaults off; the Connection
  // header overrides either way.
  req.keep_alive = req.version == "HTTP/1.1";
  if (const std::string* conn = req.FindHeader("connection")) {
    if (HasToken(*conn, "close")) req.keep_alive = false;
    if (HasToken(*conn, "keep-alive")) req.keep_alive = true;
  }

  // Consume exactly this request; pipelined followers stay buffered.
  buffer_.erase(0, pos);
  request_ = std::move(req);
  return State::kReady;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              HttpStatusReason(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  if (response.retry_after_s > 0) {
    out += StrFormat("Retry-After: %d\r\n", response.retry_after_s);
  }
  if (!response.keep_alive) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

}  // namespace net
}  // namespace graphrare

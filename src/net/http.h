// Copyright 2026 The GraphRARE Authors.
//
// Minimal HTTP/1.1 request parser and response writer for the serving
// front-end. Scope is deliberately narrow: identity-encoded bodies with an
// explicit Content-Length (chunked transfer coding is rejected), bounded
// request-line / header / body sizes, and incremental parsing so a
// connection can be fed bytes as they arrive off the socket — including
// several pipelined requests in one buffer, or a slow client trickling one
// header per read.
//
// The parser is transport-agnostic (it only ever sees a byte buffer), so
// the whole negative-path surface — truncation, oversized inputs,
// malformed framing — is unit-testable without a socket.

#ifndef GRAPHRARE_NET_HTTP_H_
#define GRAPHRARE_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace graphrare {
namespace net {

/// Size bounds the parser enforces. A request that exceeds any bound is a
/// hard parse error (the connection should be answered and closed), never
/// an unbounded allocation.
struct HttpLimits {
  size_t max_request_line = 4096;   ///< method + target + version + CRLF
  size_t max_header_bytes = 16384;  ///< all header lines combined
  size_t max_headers = 64;          ///< header count
  size_t max_body_bytes = 1 << 20;  ///< Content-Length ceiling (1 MiB)
};

/// One parsed request. Header names are lowercased; values are trimmed of
/// surrounding whitespace.
struct HttpRequest {
  std::string method;   ///< as sent (e.g. "GET", "POST")
  std::string target;   ///< origin-form target, e.g. "/v1/predict"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< resolved from version + Connection header

  /// First header with this (lowercase) name, or nullptr.
  const std::string* FindHeader(const std::string& lowercase_name) const;
};

/// Incremental request parser. Feed() appends raw bytes; Next() extracts
/// the first complete request from the front of the buffer, leaving any
/// pipelined followers buffered for the next call. Errors are sticky: once
/// a connection sends malformed framing there is no way to resynchronise,
/// so the owner should write error_response() and close.
class HttpParser {
 public:
  enum class State {
    kNeedMore,  ///< no complete request buffered yet
    kReady,     ///< request() holds a complete request
    kError,     ///< framing violation; see error() / error_status_code()
  };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Appends bytes received from the transport.
  void Feed(const char* data, size_t n) { buffer_.append(data, n); }
  void Feed(const std::string& data) { Feed(data.data(), data.size()); }

  /// Tries to parse one complete request from the buffered bytes.
  State Next();

  /// The request parsed by the last Next() == kReady. Valid until the next
  /// Next() call; callers typically std::move parts out of it.
  HttpRequest& request() { return request_; }

  /// Why parsing failed (kError only).
  const Status& error() const { return error_; }
  /// The HTTP status code the error response should carry (400, 413, 431,
  /// 501, 505).
  int error_status_code() const { return error_status_code_; }

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  State Fail(int http_status, std::string message);

  HttpLimits limits_;
  std::string buffer_;
  HttpRequest request_;
  Status error_;
  int error_status_code_ = 0;
};

/// One response. Serialize() renders the status line, Content-Type,
/// Content-Length, optionally Retry-After, and (when keep_alive is false)
/// "Connection: close".
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  bool keep_alive = true;
  /// Seconds for a "Retry-After" header (load-shed / circuit-open 503s);
  /// 0 omits the header.
  int retry_after_s = 0;
};

/// Canonical reason phrase for the status codes this server emits
/// ("Unknown" otherwise).
const char* HttpStatusReason(int status);

/// Renders the full wire form of a response.
std::string SerializeResponse(const HttpResponse& response);

}  // namespace net
}  // namespace graphrare

#endif  // GRAPHRARE_NET_HTTP_H_

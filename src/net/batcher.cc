#include "net/batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace graphrare {
namespace net {

Status BatcherOptions::Validate() const {
  if (max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (max_queue_delay_ms < 0.0) {
    return Status::InvalidArgument("max_queue_delay_ms must be >= 0");
  }
  if (max_queue_depth < 1) {
    return Status::InvalidArgument("max_queue_depth must be >= 1");
  }
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (batch_budget_ms < 0.0) {
    return Status::InvalidArgument("batch_budget_ms must be >= 0");
  }
  if (overload_recover_batches < 1) {
    return Status::InvalidArgument("overload_recover_batches must be >= 1");
  }
  return Status::OK();
}

ContinuousBatcher::ContinuousBatcher(
    std::shared_ptr<serve::EngineHandle> engine, BatcherOptions options)
    : engine_(std::move(engine)), options_(options) {
  GR_CHECK(engine_ != nullptr) << "ContinuousBatcher needs an engine handle";
  GR_CHECK(options_.Validate().ok()) << options_.Validate().ToString();
  effective_max_batch_ = options_.max_batch;
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ContinuousBatcher::~ContinuousBatcher() { Stop(); }

Status ContinuousBatcher::Submit(std::vector<int64_t> node_ids,
                                 Callback done) {
  return Submit(std::move(node_ids), 0.0, std::move(done));
}

Status ContinuousBatcher::Submit(std::vector<int64_t> node_ids,
                                 double deadline_ms, Callback done) {
  GR_CHECK(done != nullptr) << "Submit needs a completion callback";
  GR_CHECK(deadline_ms >= 0.0) << "deadline_ms must be >= 0";
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("batcher is shutting down");
    }
    if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
      ++rejected_;
      return Status::FailedPrecondition("request queue is full");
    }
    Pending p;
    p.node_ids = std::move(node_ids);
    p.done = std::move(done);
    p.seq = next_seq_++;
    p.deadline_ms = deadline_ms;
    queue_.push_back(std::move(p));
    ++submitted_;
  }
  cv_.notify_one();
  return Status::OK();
}

void ContinuousBatcher::WorkerLoop() {
  while (true) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    bool exit_worker = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained

      // Continuous admission: wait at most max_queue_delay_ms (measured
      // from the oldest queued request) for the batch to fill; take
      // whatever is there the moment it is full, stale, or stopping.
      if (options_.max_queue_delay_ms > 0.0) {
        // wait_for releases the mutex: another worker may drain the queue
        // entirely before this one re-checks, so the emptiness test must
        // come before queue_.front().
        while (!queue_.empty() &&
               static_cast<int>(queue_.size()) < effective_max_batch_ &&
               !stopping_) {
          const double remaining_ms =
              options_.max_queue_delay_ms - queue_.front().queued.ElapsedMillis();
          if (remaining_ms <= 0.0) break;
          cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                                 remaining_ms));
        }
      }

      // Load shedding at batch-formation time: a request whose deadline
      // passed while it queued gets DeadlineExceeded (delivered below,
      // outside the lock) instead of engine time. Shedding never touches
      // the seq numbers of survivors, so answered responses stay bitwise
      // identical to the no-shedding run.
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline_ms > 0.0 &&
            it->queued.ElapsedMillis() >= it->deadline_ms) {
          expired.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      shed_ += static_cast<int64_t>(expired.size());

      if (queue_.empty()) {
        exit_worker = stopping_;
      } else {
        const size_t take = std::min(
            queue_.size(), static_cast<size_t>(effective_max_batch_));
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          queue_delay_ms_.Record(queue_.front().queued.ElapsedMillis());
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        ++batches_;
        batched_requests_ += static_cast<int64_t>(take);
        max_batch_seen_ =
            std::max(max_batch_seen_, static_cast<int64_t>(take));
      }
    }
    // More work may remain for the other workers.
    cv_.notify_one();

    for (Pending& p : expired) {
      p.done(Status::DeadlineExceeded(
          StrFormat("deadline of %.1f ms expired after %.1f ms in queue",
                    p.deadline_ms, p.queued.ElapsedMillis())));
    }
    if (batch.empty()) {
      if (exit_worker) return;
      continue;  // another worker took everything, or all of it expired
    }

    // Watchdog clock: injectable delay + engine call + callback fan-out.
    Stopwatch batch_clock;
    failpoint::InjectDelay("batcher.batch");

    // One engine snapshot per batch: a hot-swap never splits a batch
    // across versions, and old engines stay alive until their last batch
    // completes.
    const std::shared_ptr<const serve::InferenceEngine> engine =
        engine_->Get();
    std::vector<std::vector<int64_t>> requests;
    std::vector<uint64_t> seeds;
    requests.reserve(batch.size());
    seeds.reserve(batch.size());
    for (const Pending& p : batch) {
      requests.push_back(p.node_ids);
      seeds.push_back(p.seq);
    }
    auto results = engine->PredictBatchWithSeeds(requests, seeds);

    if (results.ok()) {
      for (size_t i = 0; i < batch.size(); ++i) {
        batch[i].done(std::move(results.value()[i]));
      }
    } else {
      // A batch-level failure means at least one request was invalid; the
      // engine call is all-or-nothing, so re-run the members one by one
      // and let each callback see its own verdict. (The per-request seed
      // keeps the answers identical to the batched evaluation.)
      for (Pending& p : batch) {
        std::vector<std::vector<int64_t>> one = {p.node_ids};
        auto result = engine->PredictBatchWithSeeds(one, {p.seq});
        if (result.ok()) {
          p.done(std::move(result.value()[0]));
        } else {
          p.done(result.status());
        }
      }
    }
    const double batch_ms = batch_clock.ElapsedMillis();
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += static_cast<int64_t>(batch.size());
      if (options_.batch_budget_ms > 0.0) {
        if (batch_ms > options_.batch_budget_ms) {
          // Overload: halve the cap so the next batches fit the budget.
          const int shrunk = std::max(1, effective_max_batch_ / 2);
          if (shrunk < effective_max_batch_) {
            effective_max_batch_ = shrunk;
            ++overload_shrinks_;
          }
          in_budget_streak_ = 0;
        } else if (effective_max_batch_ < options_.max_batch &&
                   ++in_budget_streak_ >= options_.overload_recover_batches) {
          // Pressure dropped: grow back one step at a time.
          ++effective_max_batch_;
          in_budget_streak_ = 0;
        }
      }
    }
  }
}

void ContinuousBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

BatcherStats ContinuousBatcher::Stats() const {
  BatcherStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.batches = batches_;
    s.batched_requests = batched_requests_;
    s.max_batch_seen = max_batch_seen_;
    s.queue_depth = static_cast<int64_t>(queue_.size());
    s.shed = shed_;
    s.overload_shrinks = overload_shrinks_;
    s.effective_max_batch = effective_max_batch_;
  }
  s.queue_delay_ms = queue_delay_ms_.Summary();
  return s;
}

}  // namespace net
}  // namespace graphrare

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "net/json.h"
#include "serve/artifact.h"

namespace graphrare {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(StrFormat("%s: %s", what, std::strerror(errno)));
}

std::string ErrorBody(const std::string& message) {
  return StrFormat("{\"error\":\"%s\"}", JsonEscape(message).c_str());
}

HttpResponse ErrorResponse(int status, const std::string& message,
                           bool keep_alive = true) {
  HttpResponse r;
  r.status = status;
  r.body = ErrorBody(message);
  r.keep_alive = keep_alive;
  return r;
}

/// The request target without its query string.
std::string TargetPath(const std::string& target) {
  const size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

}  // namespace

std::string PredictionsToJson(const std::vector<serve::Prediction>& preds) {
  std::string out = "{\"predictions\":[";
  for (size_t i = 0; i < preds.size(); ++i) {
    const serve::Prediction& p = preds[i];
    if (i) out += ",";
    out += StrFormat("{\"node\":%lld,\"class\":%lld,\"probabilities\":[",
                     static_cast<long long>(p.node),
                     static_cast<long long>(p.predicted_class));
    for (size_t c = 0; c < p.probabilities.size(); ++c) {
      if (c) out += ",";
      out += StrFormat("%.9g", static_cast<double>(p.probabilities[c]));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TopKToJson(int64_t node,
                       const std::vector<std::pair<int64_t, float>>& topk) {
  std::string out =
      StrFormat("{\"node\":%lld,\"topk\":[", static_cast<long long>(node));
  for (size_t i = 0; i < topk.size(); ++i) {
    if (i) out += ",";
    out += StrFormat("{\"class\":%lld,\"probability\":%.9g}",
                     static_cast<long long>(topk[i].first),
                     static_cast<double>(topk[i].second));
  }
  out += "]}";
  return out;
}

Status HttpServerOptions::Validate() const {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  if (max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (idle_timeout_ms < 0) {
    return Status::InvalidArgument("idle_timeout_ms must be >= 0");
  }
  if (tick_ms < 1) {
    return Status::InvalidArgument("tick_ms must be >= 1");
  }
  if (slo_ms <= 0.0) {
    return Status::InvalidArgument("slo_ms must be > 0");
  }
  if (default_deadline_ms < 0.0) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (max_deadline_ms <= 0.0) {
    return Status::InvalidArgument("max_deadline_ms must be > 0");
  }
  if (reload_breaker_threshold < 0) {
    return Status::InvalidArgument("reload_breaker_threshold must be >= 0");
  }
  if (reload_breaker_cooldown_ms < 0.0) {
    return Status::InvalidArgument("reload_breaker_cooldown_ms must be >= 0");
  }
  return batcher.Validate();
}

enum HttpServer::Route : int {
  kRoutePredict = 0,
  kRouteTopk,
  kRouteReload,
  kRouteHealthz,
  kRouteMetrics,
  kRouteOther,
  kNumRoutes,
};

struct HttpServer::RouteMetrics {
  const char* name = "";
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> slo_violations{0};
  std::atomic<int64_t> shed{0};  ///< 503s from deadlines/overload/breaker
  LatencyRecorder latency_ms;
};

struct HttpServer::Connection {
  int fd = -1;
  uint64_t id = 0;
  HttpParser parser;
  Stopwatch last_activity;

  // Pipelined-response ordering: each parsed request takes the next slot;
  // serialized responses wait in `ready` until all predecessors shipped.
  uint64_t next_dispatch_slot = 0;
  uint64_t next_send_slot = 0;
  std::map<uint64_t, std::string> ready;

  std::string outbuf;
  size_t outpos = 0;
  int inflight = 0;  ///< requests at the batcher / reload thread
  bool stopped_reading = false;  ///< no further requests will be parsed
  bool saw_eof = false;          ///< peer half-closed; no more bytes arrive
  bool close_after_flush = false;
  uint32_t event_mask = 0;

  explicit Connection(HttpLimits limits) : parser(limits) {}

  bool HasPendingOutput() const { return outpos < outbuf.size(); }
  bool FullyIdle() const {
    return inflight == 0 && !HasPendingOutput() && ready.empty();
  }
};

HttpServer::HttpServer(std::shared_ptr<serve::EngineHandle> engine,
                       std::shared_ptr<ContinuousBatcher> batcher,
                       HttpServerOptions options)
    : engine_(std::move(engine)),
      batcher_(std::move(batcher)),
      owns_batcher_(batcher_ == nullptr),
      options_(std::move(options)) {
  GR_CHECK(engine_ != nullptr) << "HttpServer needs an engine handle";
  GR_CHECK(options_.Validate().ok()) << options_.Validate().ToString();
  if (batcher_ == nullptr) {
    batcher_ =
        std::make_shared<ContinuousBatcher>(engine_, options_.batcher);
  }
  routes_.reset(new RouteMetrics[kNumRoutes]);
  routes_[kRoutePredict].name = "/v1/predict";
  routes_[kRouteTopk].name = "/v1/topk";
  routes_[kRouteReload].name = "/v1/reload";
  routes_[kRouteHealthz].name = "/healthz";
  routes_[kRouteMetrics].name = "/metrics";
  routes_[kRouteOther].name = "other";
}

HttpServer::~HttpServer() {
  Shutdown();
  if (reload_thread_.joinable()) reload_thread_.join();
  // An externally owned batcher keeps running after we are gone; revoke
  // the liveness token so completions for requests this server submitted
  // drop their responses instead of posting into a destroyed loop.
  {
    std::lock_guard<std::mutex> lock(liveness_->mu);
    liveness_->alive = false;
  }
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (owns_batcher_) batcher_->Stop();
}

Status HttpServer::Start() {
  GR_RETURN_IF_ERROR(loop_.Ok());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  GR_RETURN_IF_ERROR(
      loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); }));
  started_ = true;
  return Status::OK();
}

void HttpServer::Run() {
  GR_CHECK(started_) << "HttpServer::Run before a successful Start";
  // Phase 1: serve until Shutdown() stops the loop.
  loop_.Run(options_.tick_ms, [this] { OnTick(); });

  // Phase 2: drain. Stop accepting, finish every admitted request, flush
  // every response, then return. Idle keep-alive connections are closed
  // immediately; busy ones as they complete.
  draining_ = true;
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!Drained()) {
    loop_.ResetStop();
    loop_.Run(options_.tick_ms, [this] {
      OnTick();
      if (Drained()) loop_.Stop();
    });
  }
  // Close whatever survives (idle keep-alive connections).
  while (!conns_.empty()) CloseConnection(conns_.begin()->second.get());
  if (owns_batcher_) batcher_->Stop();
}

void HttpServer::Shutdown() { loop_.Stop(); }

bool HttpServer::Drained() const {
  if (inflight_ != 0 || reload_in_progress_) return false;
  for (const auto& [id, conn] : conns_) {
    if (!conn->FullyIdle()) return false;
  }
  return true;
}

void HttpServer::OnTick() {
  if (draining_) {
    // Shed idle connections so the drain converges.
    std::vector<Connection*> idle;
    for (auto& [id, conn] : conns_) {
      if (conn->FullyIdle()) idle.push_back(conn.get());
    }
    for (Connection* conn : idle) CloseConnection(conn);
    return;
  }
  if (accept_paused_ && listen_fd_ >= 0) {
    accept_paused_ =
        !loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); })
             .ok();
  }
  if (options_.idle_timeout_ms <= 0) return;
  std::vector<Connection*> expired;
  for (auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && !conn->HasPendingOutput() &&
        conn->last_activity.ElapsedMillis() > options_.idle_timeout_ms) {
      expired.push_back(conn.get());
    }
  }
  for (Connection* conn : expired) CloseConnection(conn);
}

void HttpServer::AcceptReady() {
  while (true) {
    const int fd = failpoint::Accept4("net.accept", listen_fd_, nullptr,
                                      nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // backlog empty
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // A persistent failure (EMFILE/ENFILE fd exhaustion and kin): the
      // level-triggered listen fd would report readable on every poll and
      // busy-spin the reactor. Pause accepting; OnTick re-arms once the
      // pressure may have eased (closed connections free fds).
      loop_.Remove(listen_fd_);
      accept_paused_ = true;
      return;
    }
    if (static_cast<int>(conns_.size()) >= options_.max_connections) {
      connections_rejected_.fetch_add(1);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>(options_.limits);
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->event_mask = EPOLLIN;
    Connection* raw = conn.get();
    conns_.emplace(raw->id, std::move(conn));
    connections_total_.fetch_add(1);
    const uint64_t id = raw->id;
    if (!loop_.Add(fd, EPOLLIN, [this, id](uint32_t events) {
          ConnectionReady(id, events);
        }).ok()) {
      CloseConnection(raw);
    }
  }
}

void HttpServer::ConnectionReady(uint64_t conn_id, uint32_t events) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseConnection(conn);
    return;
  }
  if (events & EPOLLOUT) {
    FlushOutput(conn);
    if (conns_.find(conn_id) == conns_.end()) return;  // closed by flush
  }
  if (events & EPOLLIN) ReadInput(conn);
}

void HttpServer::ReadInput(Connection* conn) {
  char buf[4096];
  while (!conn->stopped_reading && !conn->saw_eof) {
    const ssize_t n = failpoint::Read("net.read", conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->last_activity.Restart();
      conn->parser.Feed(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      // Peer half-closed its sending side. Complete requests may still
      // sit in the parser buffer — answer them, then close once every
      // response is flushed. (ParseBuffered handles the close.)
      conn->saw_eof = true;
      conn->close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return;
  }
  ParseBuffered(conn);
}

void HttpServer::ParseBuffered(Connection* conn) {
  const uint64_t id = conn->id;
  while (!conn->stopped_reading) {
    const HttpParser::State state = conn->parser.Next();
    if (state == HttpParser::State::kNeedMore) break;
    if (state == HttpParser::State::kError) {
      // Framing is unrecoverable: answer (in pipeline order) and close.
      conn->stopped_reading = true;
      const uint64_t slot = conn->next_dispatch_slot++;
      const Stopwatch watch;
      FinishRequest(conn, slot, kRouteOther, watch.ElapsedMillis(),
                    ErrorResponse(conn->parser.error_status_code(),
                                  conn->parser.error().message(),
                                  /*keep_alive=*/false));
      break;
    }
    HandleRequest(conn, std::move(conn->parser.request()));
    if (conns_.find(id) == conns_.end()) return;  // closed
  }
  // FinishRequest can close the connection inline (error response fully
  // flushed with nothing in flight) — conn is gone then.
  if (conns_.find(id) == conns_.end()) return;
  if (conn->saw_eof && conn->FullyIdle()) {
    // EOF with nothing in flight, queued, or buffered to write; a
    // trailing partial request can never complete. Close now.
    CloseConnection(conn);
    return;
  }
  UpdateEventMask(conn);
}

void HttpServer::HandleRequest(Connection* conn, HttpRequest request) {
  const uint64_t slot = conn->next_dispatch_slot++;
  const bool keep_alive = request.keep_alive;
  if (!keep_alive) conn->stopped_reading = true;
  const std::string path = TargetPath(request.target);
  const Stopwatch watch;

  if (path == "/healthz") {
    if (request.method != "GET") {
      FinishRequest(conn, slot, kRouteHealthz, watch.ElapsedMillis(),
                    ErrorResponse(405, "use GET", keep_alive));
      return;
    }
    const auto engine = engine_->Get();
    const BreakerState breaker =
        static_cast<BreakerState>(breaker_state_.load());
    const char* breaker_name = breaker == BreakerState::kOpen ? "open"
                               : breaker == BreakerState::kHalfOpen
                                   ? "half_open"
                                   : "closed";
    HttpResponse r;
    r.keep_alive = keep_alive;
    r.body = StrFormat(
        "{\"status\":\"%s\",\"generation\":%lld,\"nodes\":%lld,"
        "\"classes\":%lld,\"mode\":\"%s\",\"reload_breaker\":\"%s\"}",
        breaker == BreakerState::kOpen ? "degraded" : "ok",
        static_cast<long long>(engine_->generation()),
        static_cast<long long>(engine->num_nodes()),
        static_cast<long long>(engine->num_classes()),
        engine->full_graph_mode() ? "full" : "sampled", breaker_name);
    FinishRequest(conn, slot, kRouteHealthz, watch.ElapsedMillis(),
                  std::move(r));
    return;
  }
  if (path == "/metrics") {
    if (request.method != "GET") {
      FinishRequest(conn, slot, kRouteMetrics, watch.ElapsedMillis(),
                    ErrorResponse(405, "use GET", keep_alive));
      return;
    }
    HttpResponse r;
    r.keep_alive = keep_alive;
    r.content_type = "text/plain; version=0.0.4";
    r.body = MetricsText();
    FinishRequest(conn, slot, kRouteMetrics, watch.ElapsedMillis(),
                  std::move(r));
    return;
  }
  if (path == "/v1/predict" || path == "/v1/topk" || path == "/v1/reload") {
    if (request.method != "POST") {
      const Route route = path == "/v1/predict" ? kRoutePredict
                          : path == "/v1/topk"  ? kRouteTopk
                                                : kRouteReload;
      FinishRequest(conn, slot, route, watch.ElapsedMillis(),
                    ErrorResponse(405, "use POST", keep_alive));
      return;
    }
    // Per-request deadline: the route default, overridable (within the
    // configured ceiling) by X-Deadline-Ms.
    double deadline_ms = options_.default_deadline_ms;
    if (const std::string* header = request.FindHeader("x-deadline-ms")) {
      char* end = nullptr;
      const double v = std::strtod(header->c_str(), &end);
      if (end == header->c_str() || *end != '\0' || !(v > 0.0)) {
        const Route route = path == "/v1/predict" ? kRoutePredict
                            : path == "/v1/topk"  ? kRouteTopk
                                                  : kRouteReload;
        FinishRequest(conn, slot, route, watch.ElapsedMillis(),
                      ErrorResponse(
                          400, "X-Deadline-Ms must be a positive number",
                          keep_alive));
        return;
      }
      deadline_ms = std::min(v, options_.max_deadline_ms);
    }
    if (path == "/v1/predict") {
      HandlePredict(conn, slot, keep_alive, deadline_ms, request.body);
    } else if (path == "/v1/topk") {
      HandleTopK(conn, slot, keep_alive, deadline_ms, request.body);
    } else {
      HandleReload(conn, slot, keep_alive, request.body);
    }
    return;
  }
  FinishRequest(conn, slot, kRouteOther, watch.ElapsedMillis(),
                ErrorResponse(404, "no such route: " + path, keep_alive));
}

void HttpServer::HandlePredict(Connection* conn, uint64_t slot,
                               bool keep_alive, double deadline_ms,
                               const std::string& body) {
  const Stopwatch watch;
  auto doc_or = JsonValue::Parse(body);
  if (!doc_or.ok()) {
    FinishRequest(conn, slot, kRoutePredict, watch.ElapsedMillis(),
                  ErrorResponse(400, doc_or.status().message(), keep_alive));
    return;
  }
  const JsonValue* nodes = doc_or->Find("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->items().empty()) {
    FinishRequest(conn, slot, kRoutePredict, watch.ElapsedMillis(),
                  ErrorResponse(400, "body must be {\"nodes\":[id,...]}",
                                keep_alive));
    return;
  }
  std::vector<int64_t> ids;
  ids.reserve(nodes->items().size());
  for (const JsonValue& item : nodes->items()) {
    auto id_or = item.AsInt64();
    if (!id_or.ok()) {
      FinishRequest(conn, slot, kRoutePredict, watch.ElapsedMillis(),
                    ErrorResponse(400, "nodes must be integers", keep_alive));
      return;
    }
    ids.push_back(*id_or);
  }

  const uint64_t conn_id = conn->id;
  const std::shared_ptr<Liveness> liveness = liveness_;
  const Status admitted = batcher_->Submit(
      std::move(ids), deadline_ms,
      [this, liveness, conn_id, slot, keep_alive,
       watch](Result<std::vector<serve::Prediction>> result) {
        // Worker thread: marshal onto the reactor — unless the server has
        // been destroyed under a longer-lived external batcher.
        std::lock_guard<std::mutex> lock(liveness->mu);
        if (!liveness->alive) return;
        loop_.Post([this, conn_id, slot, keep_alive, watch,
                    result = std::move(result)]() mutable {
          --inflight_;
          HttpResponse r;
          r.keep_alive = keep_alive;
          bool was_shed = false;
          if (result.ok()) {
            r.body = PredictionsToJson(result.value());
          } else if (result.status().code() ==
                     StatusCode::kDeadlineExceeded) {
            // Shed in queue: tell the client to back off briefly.
            r.status = 503;
            r.retry_after_s = 1;
            r.body = ErrorBody(result.status().message());
            was_shed = true;
          } else {
            r.status =
                result.status().code() == StatusCode::kOutOfRange ? 400 : 500;
            r.body = ErrorBody(result.status().message());
          }
          if (was_shed) routes_[kRoutePredict].shed.fetch_add(1);
          const auto it = conns_.find(conn_id);
          if (it == conns_.end()) {
            client_gone_.fetch_add(1);
            RouteMetrics& m = routes_[kRoutePredict];
            m.requests.fetch_add(1);
            if (r.status >= 400) m.errors.fetch_add(1);
            return;
          }
          Connection* c = it->second.get();
          --c->inflight;
          // FinishRequest's flush refreshes the event mask itself — and may
          // close the connection, so c must not be touched afterwards.
          FinishRequest(c, slot, kRoutePredict, watch.ElapsedMillis(),
                        std::move(r));
        });
      });
  if (!admitted.ok()) {
    // Queue full (or shutdown): shed at admission with the same contract.
    HttpResponse r = ErrorResponse(503, admitted.message(), keep_alive);
    r.retry_after_s = 1;
    routes_[kRoutePredict].shed.fetch_add(1);
    FinishRequest(conn, slot, kRoutePredict, watch.ElapsedMillis(),
                  std::move(r));
    return;
  }
  ++inflight_;
  ++conn->inflight;
}

void HttpServer::HandleTopK(Connection* conn, uint64_t slot, bool keep_alive,
                            double deadline_ms, const std::string& body) {
  const Stopwatch watch;
  auto doc_or = JsonValue::Parse(body);
  Result<int64_t> node_or =
      Status::InvalidArgument("body must be {\"node\":id,\"k\":K}");
  int64_t k = 1;
  if (doc_or.ok()) {
    if (const JsonValue* node = doc_or->Find("node")) {
      node_or = node->AsInt64();
    }
    if (const JsonValue* kv = doc_or->Find("k")) {
      auto k_or = kv->AsInt64();
      if (!k_or.ok() || *k_or < 1) {
        node_or = Status::InvalidArgument("k must be a positive integer");
      } else {
        k = *k_or;
      }
    }
  } else {
    node_or = doc_or.status();
  }
  if (!node_or.ok()) {
    FinishRequest(conn, slot, kRouteTopk, watch.ElapsedMillis(),
                  ErrorResponse(400, node_or.status().message(), keep_alive));
    return;
  }
  const int64_t node = *node_or;

  const uint64_t conn_id = conn->id;
  const std::shared_ptr<Liveness> liveness = liveness_;
  const Status admitted = batcher_->Submit(
      {node}, deadline_ms,
      [this, liveness, conn_id, slot, keep_alive, node, k,
       watch](Result<std::vector<serve::Prediction>> result) {
        std::lock_guard<std::mutex> lock(liveness->mu);
        if (!liveness->alive) return;
        loop_.Post([this, conn_id, slot, keep_alive, node, k, watch,
                    result = std::move(result)]() mutable {
          --inflight_;
          HttpResponse r;
          r.keep_alive = keep_alive;
          bool was_shed = false;
          if (result.ok()) {
            r.body = TopKToJson(
                node, serve::TopKOf(result.value()[0], static_cast<int>(k)));
          } else if (result.status().code() ==
                     StatusCode::kDeadlineExceeded) {
            r.status = 503;
            r.retry_after_s = 1;
            r.body = ErrorBody(result.status().message());
            was_shed = true;
          } else {
            r.status =
                result.status().code() == StatusCode::kOutOfRange ? 400 : 500;
            r.body = ErrorBody(result.status().message());
          }
          if (was_shed) routes_[kRouteTopk].shed.fetch_add(1);
          const auto it = conns_.find(conn_id);
          if (it == conns_.end()) {
            client_gone_.fetch_add(1);
            RouteMetrics& m = routes_[kRouteTopk];
            m.requests.fetch_add(1);
            if (r.status >= 400) m.errors.fetch_add(1);
            return;
          }
          Connection* c = it->second.get();
          --c->inflight;
          // May close the connection; c must not be touched afterwards.
          FinishRequest(c, slot, kRouteTopk, watch.ElapsedMillis(),
                        std::move(r));
        });
      });
  if (!admitted.ok()) {
    HttpResponse r = ErrorResponse(503, admitted.message(), keep_alive);
    r.retry_after_s = 1;
    routes_[kRouteTopk].shed.fetch_add(1);
    FinishRequest(conn, slot, kRouteTopk, watch.ElapsedMillis(),
                  std::move(r));
    return;
  }
  ++inflight_;
  ++conn->inflight;
}

void HttpServer::HandleReload(Connection* conn, uint64_t slot,
                              bool keep_alive, const std::string& body) {
  const Stopwatch watch;
  auto doc_or = JsonValue::Parse(body);
  const JsonValue* path_value = doc_or.ok() ? doc_or->Find("path") : nullptr;
  if (path_value == nullptr || !path_value->is_string() ||
      path_value->AsString().empty()) {
    FinishRequest(conn, slot, kRouteReload, watch.ElapsedMillis(),
                  ErrorResponse(400, "body must be {\"path\":\"...\"}",
                                keep_alive));
    return;
  }
  if (reload_in_progress_) {
    FinishRequest(conn, slot, kRouteReload, watch.ElapsedMillis(),
                  ErrorResponse(409, "a reload is already in progress",
                                keep_alive));
    return;
  }
  // Circuit breaker: while open, reloads are refused outright until the
  // cooldown passes; the first reload after cooldown runs as a half-open
  // probe (success closes the breaker, failure reopens it).
  if (static_cast<BreakerState>(breaker_state_.load()) ==
      BreakerState::kOpen) {
    const double remaining_ms = BreakerRemainingMs();
    if (remaining_ms > 0.0) {
      HttpResponse r = ErrorResponse(
          503,
          StrFormat("reload circuit breaker is open (%d consecutive "
                    "failures); retry after cooldown",
                    options_.reload_breaker_threshold),
          keep_alive);
      r.retry_after_s =
          static_cast<int>((remaining_ms + 999.0) / 1000.0);
      routes_[kRouteReload].shed.fetch_add(1);
      FinishRequest(conn, slot, kRouteReload, watch.ElapsedMillis(),
                    std::move(r));
      return;
    }
    breaker_state_.store(static_cast<int>(BreakerState::kHalfOpen));
  }
  if (reload_thread_.joinable()) reload_thread_.join();
  reload_in_progress_ = true;
  ++inflight_;
  ++conn->inflight;

  const std::string path = path_value->AsString();
  const serve::EngineOptions engine_options = engine_->Get()->options();
  const uint64_t conn_id = conn->id;
  // The artifact load + engine build (the expensive part: a full forward
  // pass in full-graph mode) runs beside the serving engine; the reactor
  // and the batch workers keep answering on v1 throughout.
  reload_thread_ = std::thread([this, path, engine_options, conn_id, slot,
                                keep_alive, watch] {
    auto swap_in = [&]() -> Result<int64_t> {
      GR_ASSIGN_OR_RETURN(serve::ModelArtifact artifact,
                          serve::ModelArtifact::Load(path));
      GR_ASSIGN_OR_RETURN(serve::InferenceEngine engine,
                          serve::InferenceEngine::FromArtifact(
                              std::move(artifact), engine_options));
      engine_->Swap(std::make_shared<const serve::InferenceEngine>(
          std::move(engine)));
      return engine_->generation();
    };
    auto generation_or = swap_in();
    loop_.Post([this, path, conn_id, slot, keep_alive, watch,
                generation_or = std::move(generation_or)] {
      reload_in_progress_ = false;
      --inflight_;
      if (generation_or.ok()) reloads_total_.fetch_add(1);
      OnReloadOutcome(generation_or.ok());
      HttpResponse r;
      r.keep_alive = keep_alive;
      if (generation_or.ok()) {
        r.body = StrFormat(
            "{\"status\":\"ok\",\"generation\":%lld,\"path\":\"%s\"}",
            static_cast<long long>(generation_or.value()),
            JsonEscape(path).c_str());
      } else {
        // The incumbent engine was never unpublished: swap_in only swaps
        // after a fully validated load, so a failure is a clean rollback.
        r.status = 500;
        r.body = StrFormat(
            "{\"error\":\"%s\",\"rolled_back\":true,\"generation\":%lld}",
            JsonEscape(generation_or.status().ToString()).c_str(),
            static_cast<long long>(engine_->generation()));
      }
      const auto it = conns_.find(conn_id);
      if (it == conns_.end()) {
        client_gone_.fetch_add(1);
        routes_[kRouteReload].requests.fetch_add(1);
        return;
      }
      Connection* c = it->second.get();
      --c->inflight;
      // May close the connection; c must not be touched afterwards.
      FinishRequest(c, slot, kRouteReload, watch.ElapsedMillis(),
                    std::move(r));
    });
  });
}

double HttpServer::BreakerRemainingMs() const {
  const double elapsed = breaker_opened_.ElapsedMillis();
  return elapsed >= options_.reload_breaker_cooldown_ms
             ? 0.0
             : options_.reload_breaker_cooldown_ms - elapsed;
}

void HttpServer::OnReloadOutcome(bool ok) {
  if (ok) {
    reload_failure_streak_ = 0;
    breaker_state_.store(static_cast<int>(BreakerState::kClosed));
    return;
  }
  reload_failures_total_.fetch_add(1);
  ++reload_failure_streak_;
  const BreakerState state =
      static_cast<BreakerState>(breaker_state_.load());
  if (options_.reload_breaker_threshold > 0 &&
      (state == BreakerState::kHalfOpen ||
       reload_failure_streak_ >= options_.reload_breaker_threshold)) {
    breaker_state_.store(static_cast<int>(BreakerState::kOpen));
    breaker_opened_.Restart();
  }
}

void HttpServer::FinishRequest(Connection* conn, uint64_t slot, Route route,
                               double elapsed_ms, HttpResponse response) {
  RouteMetrics& m = routes_[route];
  m.requests.fetch_add(1);
  if (response.status >= 400) m.errors.fetch_add(1);
  if (elapsed_ms > options_.slo_ms) m.slo_violations.fetch_add(1);
  m.latency_ms.Record(elapsed_ms);
  const bool close_after = !response.keep_alive;
  DeliverSerialized(conn, slot, SerializeResponse(response), close_after);
}

void HttpServer::DeliverSerialized(Connection* conn, uint64_t slot,
                                   std::string bytes, bool close_after) {
  if (close_after) conn->close_after_flush = true;
  conn->ready.emplace(slot, std::move(bytes));
  while (true) {
    const auto it = conn->ready.find(conn->next_send_slot);
    if (it == conn->ready.end()) break;
    conn->outbuf.append(it->second);
    conn->ready.erase(it);
    ++conn->next_send_slot;
  }
  conn->last_activity.Restart();
  FlushOutput(conn);
}

void HttpServer::FlushOutput(Connection* conn) {
  while (conn->HasPendingOutput()) {
    const ssize_t n =
        failpoint::Write("net.write", conn->fd,
                         conn->outbuf.data() + conn->outpos,
                         conn->outbuf.size() - conn->outpos);
    if (n > 0) {
      conn->outpos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // peer reset mid-response
    return;
  }
  if (!conn->HasPendingOutput()) {
    conn->outbuf.clear();
    conn->outpos = 0;
    if (conn->close_after_flush && conn->inflight == 0 &&
        conn->ready.empty()) {
      CloseConnection(conn);
      return;
    }
  }
  UpdateEventMask(conn);
}

void HttpServer::UpdateEventMask(Connection* conn) {
  uint32_t mask = 0;
  // After EOF the fd stays level-triggered readable forever; dropping
  // EPOLLIN keeps the reactor from spinning while responses are pending.
  if (!conn->stopped_reading && !conn->saw_eof) mask |= EPOLLIN;
  if (conn->HasPendingOutput()) mask |= EPOLLOUT;
  if (mask != conn->event_mask) {
    conn->event_mask = mask;
    loop_.Modify(conn->fd, mask);
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  loop_.Remove(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  // In-flight completions look the connection up by id and find nothing;
  // the global inflight_ count still reaches zero through their Posts.
  conns_.erase(conn->id);
}

std::vector<RouteStats> HttpServer::AllRouteStats() const {
  std::vector<RouteStats> out;
  out.reserve(kNumRoutes);
  for (int r = 0; r < kNumRoutes; ++r) {
    RouteStats s;
    s.route = routes_[r].name;
    s.requests = routes_[r].requests.load();
    s.errors = routes_[r].errors.load();
    s.slo_violations = routes_[r].slo_violations.load();
    s.shed = routes_[r].shed.load();
    s.latency_ms = routes_[r].latency_ms.Summary();
    out.push_back(std::move(s));
  }
  return out;
}

std::string HttpServer::MetricsText() const {
  std::string out;
  out += StrFormat("graphrare_engine_generation %lld\n",
                   static_cast<long long>(engine_->generation()));
  out += StrFormat("graphrare_engine_reloads_total %lld\n",
                   static_cast<long long>(reloads_total_.load()));
  out += StrFormat("graphrare_reload_failures_total %lld\n",
                   static_cast<long long>(reload_failures_total_.load()));
  // 0 = closed, 1 = half-open, 2 = open.
  out += StrFormat("graphrare_reload_breaker_state %d\n",
                   breaker_state_.load());
  out += StrFormat("graphrare_connections_total %lld\n",
                   static_cast<long long>(connections_total_.load()));
  out += StrFormat("graphrare_connections_rejected_total %lld\n",
                   static_cast<long long>(connections_rejected_.load()));
  out += StrFormat("graphrare_responses_client_gone_total %lld\n",
                   static_cast<long long>(client_gone_.load()));

  const BatcherStats b = batcher_->Stats();
  out += StrFormat("graphrare_batch_requests_submitted_total %lld\n",
                   static_cast<long long>(b.submitted));
  out += StrFormat("graphrare_batch_requests_rejected_total %lld\n",
                   static_cast<long long>(b.rejected));
  out += StrFormat("graphrare_batches_total %lld\n",
                   static_cast<long long>(b.batches));
  out += StrFormat("graphrare_batch_requests_total %lld\n",
                   static_cast<long long>(b.batched_requests));
  out += StrFormat("graphrare_batch_max_size %lld\n",
                   static_cast<long long>(b.max_batch_seen));
  out += StrFormat("graphrare_batch_queue_depth %lld\n",
                   static_cast<long long>(b.queue_depth));
  out += StrFormat("graphrare_batch_shed_total %lld\n",
                   static_cast<long long>(b.shed));
  out += StrFormat("graphrare_batch_effective_max %lld\n",
                   static_cast<long long>(b.effective_max_batch));
  out += StrFormat("graphrare_batch_overload_shrinks_total %lld\n",
                   static_cast<long long>(b.overload_shrinks));
  out += StrFormat(
      "graphrare_batch_queue_delay_ms{quantile=\"0.5\"} %.6g\n",
      b.queue_delay_ms.p50);
  out += StrFormat(
      "graphrare_batch_queue_delay_ms{quantile=\"0.99\"} %.6g\n",
      b.queue_delay_ms.p99);

  for (const RouteStats& s : AllRouteStats()) {
    const char* route = s.route.c_str();
    out += StrFormat("graphrare_requests_total{route=\"%s\"} %lld\n", route,
                     static_cast<long long>(s.requests));
    out += StrFormat("graphrare_request_errors_total{route=\"%s\"} %lld\n",
                     route, static_cast<long long>(s.errors));
    out += StrFormat("graphrare_requests_shed_total{route=\"%s\"} %lld\n",
                     route, static_cast<long long>(s.shed));
    out += StrFormat(
        "graphrare_slo_violations_total{route=\"%s\",slo_ms=\"%.6g\"} %lld\n",
        route, options_.slo_ms, static_cast<long long>(s.slo_violations));
    if (s.latency_ms.count > 0) {
      out += StrFormat(
          "graphrare_request_latency_ms{route=\"%s\",quantile=\"0.5\"} %.6g\n",
          route, s.latency_ms.p50);
      out += StrFormat(
          "graphrare_request_latency_ms{route=\"%s\",quantile=\"0.95\"} "
          "%.6g\n",
          route, s.latency_ms.p95);
      out += StrFormat(
          "graphrare_request_latency_ms{route=\"%s\",quantile=\"0.99\"} "
          "%.6g\n",
          route, s.latency_ms.p99);
    }
  }
  return out;
}

}  // namespace net
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Single-threaded epoll event loop: the reactor under the HTTP server.
// One thread calls Run() and owns every registered fd callback; other
// threads (batch workers, the reload thread, signal handlers) interact
// only through Post() / Stop(), both of which are safe to call from any
// thread — Stop() is additionally async-signal-safe (an atomic store plus
// an eventfd write), so a SIGINT handler can shut the server down cleanly.

#ifndef GRAPHRARE_NET_EVENT_LOOP_H_
#define GRAPHRARE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace graphrare {
namespace net {

class EventLoop {
 public:
  /// Called with the ready epoll event mask (EPOLLIN/EPOLLOUT/...).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Whether the epoll + wakeup fds came up; Run() refuses otherwise.
  Status Ok() const;

  /// Registers `fd` for `events` (level-triggered). The callback runs on
  /// the loop thread only.
  Status Add(int fd, uint32_t events, FdCallback callback);
  /// Changes the event mask of a registered fd.
  Status Modify(int fd, uint32_t events);
  /// Unregisters a fd. Does not close it.
  void Remove(int fd);

  /// Queues `fn` to run on the loop thread and wakes the loop. Safe from
  /// any thread; the queue drains once per poll iteration.
  void Post(std::function<void()> fn);

  /// Runs until Stop(). `tick_ms` bounds the poll timeout; `on_tick` (may
  /// be empty) runs after every poll wake-up — the place for coarse timers
  /// such as idle-connection sweeps and drain checks.
  void Run(int tick_ms, const std::function<void()>& on_tick);

  /// Requests Run() to return after the current iteration. Callable from
  /// any thread or from a signal handler.
  void Stop();

  /// Clears a previous Stop() so the loop can be reused (tests).
  void ResetStop() { stop_.store(false); }

  bool stopping() const { return stop_.load(); }

 private:
  void DrainWakeFd();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  std::unordered_map<int, FdCallback> callbacks_;
};

}  // namespace net
}  // namespace graphrare

#endif  // GRAPHRARE_NET_EVENT_LOOP_H_

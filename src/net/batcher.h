// Copyright 2026 The GraphRARE Authors.
//
// Continuous-batching scheduler over serve::InferenceEngine. Requests are
// admitted into a bounded queue and stamped with a global arrival sequence
// number; a small worker pool repeatedly drains up to `max_batch` queued
// requests into one PredictBatchWithSeeds call. There are no fixed batch
// boundaries: the moment a worker frees up it takes whatever has arrived
// (optionally waiting up to `max_queue_delay_ms` for a fuller batch), so
// under load batches stay full and under light traffic latency stays at
// one engine call.
//
// Determinism contract: request i's answer depends only on (its node ids,
// its arrival index) — the arrival index is the sampling seed — so for a
// fixed submission order the responses are bitwise identical to one direct
// engine.PredictBatch(all requests) call, no matter how arrivals
// interleave with batch boundaries, how many workers run, or when a
// hot-swap lands relative to the batches (each batch runs wholly against
// one engine snapshot).

#ifndef GRAPHRARE_NET_BATCHER_H_
#define GRAPHRARE_NET_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "serve/engine.h"

namespace graphrare {
namespace net {

struct BatcherOptions {
  /// Most requests one engine call may carry. 1 reproduces a plain
  /// serial request-per-call server (the bench baseline).
  int max_batch = 16;
  /// How long a worker holding a non-full batch waits for joiners before
  /// running anyway. 0 = never wait (take whatever is queued).
  double max_queue_delay_ms = 2.0;
  /// Admission bound: Submit fails once this many requests are queued
  /// (in-flight batches do not count). The HTTP tier maps this to 503.
  int max_queue_depth = 1024;
  /// Engine-call workers. Extra workers only help when the engine's own
  /// parallelism leaves cores idle (e.g. serial full-graph lookups).
  int num_workers = 1;
  /// Overload watchdog: when one batch's wall-clock (engine call included)
  /// exceeds this budget, the effective max batch halves (floor 1); after
  /// `overload_recover_batches` consecutive in-budget batches it grows
  /// back by one toward `max_batch`. 0 disables the watchdog.
  double batch_budget_ms = 0.0;
  /// Consecutive in-budget batches required before the effective max
  /// batch recovers one step.
  int overload_recover_batches = 4;

  Status Validate() const;
};

/// Point-in-time counters, plus a queue-delay summary.
struct BatcherStats {
  int64_t submitted = 0;       ///< accepted Submits
  int64_t rejected = 0;        ///< queue-full rejections
  int64_t completed = 0;       ///< callbacks invoked
  int64_t batches = 0;         ///< engine calls issued
  int64_t batched_requests = 0;  ///< sum of batch sizes
  int64_t max_batch_seen = 0;
  int64_t queue_depth = 0;     ///< currently queued (not yet in a batch)
  int64_t shed = 0;            ///< requests expired in queue (DeadlineExceeded)
  int64_t overload_shrinks = 0;  ///< watchdog halvings of the batch cap
  int64_t effective_max_batch = 0;  ///< current adaptive batch cap
  LatencySummary queue_delay_ms;  ///< submit -> batch formation
};

class ContinuousBatcher {
 public:
  /// Receives the request's predictions (or the engine's error).
  using Callback =
      std::function<void(Result<std::vector<serve::Prediction>>)>;

  /// The handle is shared with whoever performs hot-swaps. Workers start
  /// immediately.
  ContinuousBatcher(std::shared_ptr<serve::EngineHandle> engine,
                    BatcherOptions options);
  ~ContinuousBatcher();

  ContinuousBatcher(const ContinuousBatcher&) = delete;
  ContinuousBatcher& operator=(const ContinuousBatcher&) = delete;

  /// Enqueues one request. Fails fast when the queue is full or the
  /// batcher is stopping; otherwise `done` is guaranteed to be invoked
  /// exactly once, from a worker thread.
  Status Submit(std::vector<int64_t> node_ids, Callback done);

  /// Same, with a deadline: a request still queued `deadline_ms` after
  /// submission is shed at batch-formation time — its callback receives
  /// Status::DeadlineExceeded and no engine time is spent on it. 0 means
  /// no deadline. A request already inside a running batch completes
  /// normally (batches are never aborted mid-engine-call).
  Status Submit(std::vector<int64_t> node_ids, double deadline_ms,
                Callback done);

  /// Stops admission, drains every queued request through the engine, and
  /// joins the workers. Idempotent.
  void Stop();

  BatcherStats Stats() const;
  const BatcherOptions& options() const { return options_; }

 private:
  struct Pending {
    std::vector<int64_t> node_ids;
    Callback done;
    uint64_t seq = 0;
    double deadline_ms = 0.0;  ///< relative to `queued`; 0 = none
    Stopwatch queued;
  };

  void WorkerLoop();

  std::shared_ptr<serve::EngineHandle> engine_;
  BatcherOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  uint64_t next_seq_ = 0;
  // Overload watchdog state (guarded by mu_).
  int effective_max_batch_ = 1;
  int in_budget_streak_ = 0;
  // Stats (guarded by mu_ except the recorder, which locks itself).
  int64_t submitted_ = 0, rejected_ = 0, completed_ = 0;
  int64_t batches_ = 0, batched_requests_ = 0, max_batch_seen_ = 0;
  int64_t shed_ = 0, overload_shrinks_ = 0;
  LatencyRecorder queue_delay_ms_;

  std::vector<std::thread> workers_;
};

}  // namespace net
}  // namespace graphrare

#endif  // GRAPHRARE_NET_BATCHER_H_

// Copyright 2026 The GraphRARE Authors.
//
// Tiny JSON value parser + escape helper for the HTTP tier's request
// bodies. Full JSON grammar (null/bool/number/string/array/object,
// \uXXXX escapes) with a recursion-depth bound; numbers are doubles.
// Parsing is Status-based: malformed bodies become 400s, never aborts.

#ifndef GRAPHRARE_NET_JSON_H_
#define GRAPHRARE_NET_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace graphrare {
namespace net {

/// A parsed JSON value. Arrays/objects own their children by value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing non-whitespace is an error).
  static Result<JsonValue> Parse(const std::string& text,
                                 int max_depth = 32);

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// The number as an exact int64 (fails on non-numbers, fractions, and
  /// values outside the int64-exact double range).
  Result<int64_t> AsInt64() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

/// Escapes a string for embedding in a JSON document (quotes not added).
std::string JsonEscape(const std::string& s);

}  // namespace net
}  // namespace graphrare

#endif  // GRAPHRARE_NET_JSON_H_

// Copyright 2026 The GraphRARE Authors.
//
// Module base class: a named registry of trainable parameters (Variables).
// Composite modules register their children's parameters transitively.
// StateDict()/LoadStateDict() snapshot and restore all parameters by name,
// which is what model artifacts (src/serve/artifact.h) persist.

#ifndef GRAPHRARE_NN_MODULE_H_
#define GRAPHRARE_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "tensor/autograd.h"

namespace graphrare {
namespace nn {

/// Named snapshot of a module's parameter tensors, in NamedParameters()
/// order. The unit of model persistence: artifacts store exactly this.
using StateDict = std::vector<std::pair<std::string, tensor::Tensor>>;

/// Base class for everything with trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, including those of registered children.
  std::vector<tensor::Variable> Parameters() const {
    std::vector<tensor::Variable> out;
    CollectParameters(&out);
    return out;
  }

  /// Named parameters (diagnostics, serialization).
  std::vector<std::pair<std::string, tensor::Variable>> NamedParameters()
      const {
    std::vector<std::pair<std::string, tensor::Variable>> out;
    CollectNamedParameters("", &out);
    return out;
  }

  /// Deep-copies every parameter into a name -> tensor snapshot.
  nn::StateDict StateDict() const {
    nn::StateDict out;
    for (const auto& [name, v] : NamedParameters()) {
      out.emplace_back(name, v.value());
    }
    return out;
  }

  /// Restores parameters from a snapshot taken on an identically-shaped
  /// module. Entries are matched by name (any order); the dict must cover
  /// every parameter exactly once, with matching shapes. On error the
  /// module is left unchanged.
  Status LoadStateDict(const nn::StateDict& dict) {
    auto params = NamedParameters();
    if (dict.size() != params.size()) {
      return Status::InvalidArgument(StrFormat(
          "state dict holds %zu tensors but module has %zu parameters",
          dict.size(), params.size()));
    }
    // Resolve every entry before writing anything, so a failed load never
    // leaves the module half-restored.
    std::vector<const tensor::Tensor*> sources(params.size(), nullptr);
    for (const auto& [name, value] : dict) {
      size_t i = 0;
      while (i < params.size() && params[i].first != name) ++i;
      if (i == params.size()) {
        return Status::InvalidArgument(
            StrFormat("state dict names unknown parameter '%s'",
                      name.c_str()));
      }
      if (sources[i] != nullptr) {
        return Status::InvalidArgument(StrFormat(
            "state dict names parameter '%s' twice", name.c_str()));
      }
      if (!params[i].second.value().SameShape(value)) {
        return Status::InvalidArgument(StrFormat(
            "parameter '%s' is %lldx%lld but the state dict entry is "
            "%lldx%lld",
            name.c_str(), static_cast<long long>(params[i].second.rows()),
            static_cast<long long>(params[i].second.cols()),
            static_cast<long long>(value.rows()),
            static_cast<long long>(value.cols())));
      }
      sources[i] = &value;
    }
    for (size_t i = 0; i < params.size(); ++i) {
      *params[i].second.mutable_value() = *sources[i];
    }
    return Status::OK();
  }

  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.value().numel();
    return n;
  }

 protected:
  /// Registers a leaf parameter initialised with `init`; returns the handle.
  tensor::Variable RegisterParameter(std::string name, tensor::Tensor init) {
    tensor::Variable v(std::move(init), /*requires_grad=*/true);
    params_.emplace_back(std::move(name), v);
    return v;
  }

  /// Registers a child module (not owned).
  void RegisterChild(std::string name, Module* child) {
    children_.emplace_back(std::move(name), child);
  }

 private:
  void CollectParameters(std::vector<tensor::Variable>* out) const {
    for (const auto& [name, v] : params_) out->push_back(v);
    for (const auto& [name, child] : children_) child->CollectParameters(out);
  }

  void CollectNamedParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, tensor::Variable>>* out) const {
    for (const auto& [name, v] : params_) {
      out->emplace_back(prefix + name, v);
    }
    for (const auto& [name, child] : children_) {
      child->CollectNamedParameters(prefix + name + ".", out);
    }
  }

  std::vector<std::pair<std::string, tensor::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_MODULE_H_

// Copyright 2026 The GraphRARE Authors.
//
// Module base class: a named registry of trainable parameters (Variables).
// Composite modules register their children's parameters transitively.

#ifndef GRAPHRARE_NN_MODULE_H_
#define GRAPHRARE_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/autograd.h"

namespace graphrare {
namespace nn {

/// Base class for everything with trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, including those of registered children.
  std::vector<tensor::Variable> Parameters() const {
    std::vector<tensor::Variable> out;
    CollectParameters(&out);
    return out;
  }

  /// Named parameters (diagnostics, serialization).
  std::vector<std::pair<std::string, tensor::Variable>> NamedParameters()
      const {
    std::vector<std::pair<std::string, tensor::Variable>> out;
    CollectNamedParameters("", &out);
    return out;
  }

  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

  /// Total scalar parameter count.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.value().numel();
    return n;
  }

 protected:
  /// Registers a leaf parameter initialised with `init`; returns the handle.
  tensor::Variable RegisterParameter(std::string name, tensor::Tensor init) {
    tensor::Variable v(std::move(init), /*requires_grad=*/true);
    params_.emplace_back(std::move(name), v);
    return v;
  }

  /// Registers a child module (not owned).
  void RegisterChild(std::string name, Module* child) {
    children_.emplace_back(std::move(name), child);
  }

 private:
  void CollectParameters(std::vector<tensor::Variable>* out) const {
    for (const auto& [name, v] : params_) out->push_back(v);
    for (const auto& [name, child] : children_) child->CollectParameters(out);
  }

  void CollectNamedParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, tensor::Variable>>* out) const {
    for (const auto& [name, v] : params_) {
      out->emplace_back(prefix + name, v);
    }
    for (const auto& [name, child] : children_) {
      child->CollectNamedParameters(prefix + name + ".", out);
    }
  }

  std::vector<std::pair<std::string, tensor::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_MODULE_H_

// Copyright 2026 The GraphRARE Authors.
//
// Node-classification backbones: MLP, GCN, GraphSAGE, GAT, MixHop, H2GCN.
// These are the models Table III enhances with GraphRARE and compares
// against. Every model consumes whatever graph it is given, so the same
// instance trains on rewired graphs during co-training.

#ifndef GRAPHRARE_NN_MODELS_H_
#define GRAPHRARE_NN_MODELS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "nn/gnn_layers.h"

namespace graphrare {
namespace nn {

/// Supported backbone families. kSgc and kAppnp go beyond the paper's
/// Table III set; they demonstrate the framework's "any GNN" claim.
enum class BackboneKind {
  kMlp,
  kGcn,
  kSage,
  kGat,
  kMixHop,
  kH2Gcn,
  kSgc,
  kAppnp,
};

/// Stable lowercase name ("gcn", "sage", ...).
const char* BackboneName(BackboneKind kind);
Result<BackboneKind> BackboneFromName(const std::string& name);

/// Hyper-parameters shared across backbones (paper Sec. V-C: 2 layers,
/// hidden in {48, 64, 128}, dropout 0.5).
struct ModelOptions {
  int64_t in_features = 0;
  int64_t hidden = 64;
  int64_t num_classes = 0;
  int num_layers = 2;
  float dropout = 0.5f;
  int gat_heads = 4;
  /// APPNP teleport probability and power-iteration count.
  float appnp_alpha = 0.1f;
  int appnp_iterations = 10;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Everything a forward pass needs besides parameters.
struct ModelInputs {
  const graph::Graph* graph = nullptr;
  LayerInput features;
};

/// Interface of all backbones: features+graph -> class logits (N x C).
class NodeClassifier : public Module {
 public:
  virtual tensor::Variable Logits(const ModelInputs& in, bool training,
                                  Rng* rng) const = 0;
  virtual BackboneKind kind() const = 0;
};

/// Creates a backbone with freshly initialised parameters.
std::unique_ptr<NodeClassifier> MakeModel(BackboneKind kind,
                                          const ModelOptions& options);

// --- Concrete models (public for direct use and tests) -------------------

/// Feature-only baseline; ignores the graph.
class MlpModel : public NodeClassifier {
 public:
  explicit MlpModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kMlp; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  float dropout_;
};

class GcnModel : public NodeClassifier {
 public:
  explicit GcnModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kGcn; }

 private:
  std::vector<std::unique_ptr<GCNConv>> convs_;
  float dropout_;
};

class SageModel : public NodeClassifier {
 public:
  explicit SageModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kSage; }

 private:
  std::vector<std::unique_ptr<SAGEConv>> convs_;
  float dropout_;
};

class GatModel : public NodeClassifier {
 public:
  explicit GatModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kGat; }

 private:
  std::unique_ptr<GATConv> conv1_;
  std::unique_ptr<GATConv> conv2_;
  float dropout_;
};

class MixHopModel : public NodeClassifier {
 public:
  explicit MixHopModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kMixHop; }

 private:
  std::unique_ptr<MixHopConv> conv1_;
  std::unique_ptr<MixHopConv> conv2_;
  std::unique_ptr<Linear> classifier_;
  float dropout_;
};

/// H2GCN (Zhu et al. 2020): ego/neighbour separation, strict 2-hop
/// aggregation, and concatenation of all intermediate representations.
class H2GcnModel : public NodeClassifier {
 public:
  explicit H2GcnModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kH2Gcn; }

 private:
  std::unique_ptr<Linear> embed_;
  std::unique_ptr<Linear> classifier_;
  int num_rounds_;
  float dropout_;
};

/// SGC (Wu et al. 2019): logits = A_norm^K (X W) — GCN with the
/// nonlinearities removed; the whole model is one linear map over the
/// K-step propagated features.
class SgcModel : public NodeClassifier {
 public:
  explicit SgcModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kSgc; }

 private:
  std::unique_ptr<Linear> linear_;
  int hops_;
};

/// APPNP (Klicpera et al. 2019): an MLP predictor followed by personalised
/// PageRank propagation z <- (1-alpha) A_norm z + alpha h0.
class AppnpModel : public NodeClassifier {
 public:
  explicit AppnpModel(const ModelOptions& options);
  tensor::Variable Logits(const ModelInputs& in, bool training,
                          Rng* rng) const override;
  BackboneKind kind() const override { return BackboneKind::kAppnp; }

 private:
  std::unique_ptr<Linear> lin1_;
  std::unique_ptr<Linear> lin2_;
  float alpha_;
  int iterations_;
  float dropout_;
};

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_MODELS_H_

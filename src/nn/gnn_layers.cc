#include "nn/gnn_layers.h"

#include "tensor/ops.h"

namespace graphrare {
namespace nn {

namespace ops = tensor::ops;
using tensor::Variable;

namespace {

/// Applies a Linear to dense-or-sparse input.
Variable ApplyLinear(const Linear& linear, const LayerInput& x) {
  return x.is_sparse() ? linear.ForwardSparse(x.sparse)
                       : linear.Forward(x.dense);
}

}  // namespace

// ---------------------------------------------------------------- GCNConv

GCNConv::GCNConv(int64_t in_features, int64_t out_features, Rng* rng) {
  linear_ = std::make_unique<Linear>(in_features, out_features, rng);
  RegisterChild("linear", linear_.get());
}

Variable GCNConv::Forward(const graph::Graph& g, const LayerInput& x) const {
  Variable h = ApplyLinear(*linear_, x);
  return ops::SpMM(g.NormalizedAdjacency(), h);
}

// --------------------------------------------------------------- SAGEConv

SAGEConv::SAGEConv(int64_t in_features, int64_t out_features, Rng* rng) {
  self_linear_ = std::make_unique<Linear>(in_features, out_features, rng);
  neigh_linear_ = std::make_unique<Linear>(in_features, out_features, rng,
                                           /*use_bias=*/false);
  RegisterChild("self", self_linear_.get());
  RegisterChild("neigh", neigh_linear_.get());
}

Variable SAGEConv::Forward(const graph::Graph& g, const LayerInput& x) const {
  Variable self = ApplyLinear(*self_linear_, x);
  Variable neigh = ApplyLinear(*neigh_linear_, x);
  Variable agg = ops::SpMM(g.RowNormalizedAdjacency(), neigh);
  return ops::Add(self, agg);
}

// ---------------------------------------------------------------- GATConv

GATConv::GATConv(int64_t in_features, int64_t out_per_head, int num_heads,
                 Rng* rng, float attention_dropout, float negative_slope)
    : attention_dropout_(attention_dropout),
      negative_slope_(negative_slope) {
  GR_CHECK_GT(num_heads, 0);
  heads_.resize(static_cast<size_t>(num_heads));
  for (int h = 0; h < num_heads; ++h) {
    auto& head = heads_[static_cast<size_t>(h)];
    head.proj = std::make_unique<Linear>(in_features, out_per_head, rng,
                                         /*use_bias=*/false);
    RegisterChild("proj" + std::to_string(h), head.proj.get());
    head.attn_src = RegisterParameter(
        "attn_src" + std::to_string(h),
        tensor::Tensor::GlorotUniform(out_per_head, 1, rng));
    head.attn_dst = RegisterParameter(
        "attn_dst" + std::to_string(h),
        tensor::Tensor::GlorotUniform(out_per_head, 1, rng));
  }
}

Variable GATConv::Forward(const graph::Graph& g, const LayerInput& x,
                          bool training, Rng* rng) const {
  std::vector<int64_t> src;
  std::vector<int64_t> dst;
  g.DirectedEdgesWithSelfLoops(&src, &dst);
  const int64_t n = g.num_nodes();

  std::vector<Variable> head_outputs;
  head_outputs.reserve(heads_.size());
  for (const auto& head : heads_) {
    Variable h = ApplyLinear(*head.proj, x);          // (n, out)
    Variable sl = ops::MatMul(h, head.attn_src);      // (n, 1)
    Variable sr = ops::MatMul(h, head.attn_dst);      // (n, 1)
    // Fused edge kernel: leaky-relu scores, segment softmax over incoming
    // edges, attention dropout, and the alpha-weighted neighbour sum in one
    // op (bitwise the former gather/softmax/scale/scatter chain, without
    // its (E, f) intermediates).
    head_outputs.push_back(ops::GatSegmentAttention(
        h, sl, sr, src, dst, n, negative_slope_, attention_dropout_,
        training, rng));
  }
  return head_outputs.size() == 1 ? head_outputs[0]
                                  : ops::ConcatCols(head_outputs);
}

// -------------------------------------------------------------- MixHopConv

MixHopConv::MixHopConv(int64_t in_features, int64_t out_per_power, Rng* rng)
    : out_per_power_(out_per_power) {
  w0_ = std::make_unique<Linear>(in_features, out_per_power, rng);
  w1_ = std::make_unique<Linear>(in_features, out_per_power, rng);
  w2_ = std::make_unique<Linear>(in_features, out_per_power, rng);
  RegisterChild("w0", w0_.get());
  RegisterChild("w1", w1_.get());
  RegisterChild("w2", w2_.get());
}

Variable MixHopConv::Forward(const graph::Graph& g,
                             const LayerInput& x) const {
  auto adj = g.NormalizedAdjacency();
  Variable h0 = ApplyLinear(*w0_, x);
  Variable h1 = ops::SpMM(adj, ApplyLinear(*w1_, x));
  Variable h2 = ops::SpMM(adj, ops::SpMM(adj, ApplyLinear(*w2_, x)));
  return ops::ConcatCols({h0, h1, h2});
}

// ------------------------------------------------------- H2GCN aggregation

Variable H2GCNAggregate(const graph::Graph& g, const Variable& h) {
  Variable h1 = ops::SpMM(g.RowNormalizedAdjacency(), h);
  Variable h2 = ops::SpMM(g.RowNormalizedTwoHop(), h);
  return ops::ConcatCols({h1, h2});
}

}  // namespace nn
}  // namespace graphrare

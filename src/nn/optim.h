// Copyright 2026 The GraphRARE Authors.
//
// First-order optimizers over parameter Variables. State is keyed by the
// underlying autograd node, so the same optimizer instance survives
// arbitrarily many forward graphs.

#ifndef GRAPHRARE_NN_OPTIM_H_
#define GRAPHRARE_NN_OPTIM_H_

#include <vector>

#include "tensor/autograd.h"

namespace graphrare {
namespace nn {

/// Optimizer interface.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently accumulated on the
  /// parameters. Parameters without a gradient are skipped.
  virtual void Step() = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  const std::vector<tensor::Variable>& params() const { return params_; }

 protected:
  std::vector<tensor::Variable> params_;
};

/// Adam (Kingma & Ba) with decoupled-style L2 weight decay added to the
/// gradient (classic Adam + weight decay, as used by the paper's setup).
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 0.05f;           // paper Sec. V-C initial learning rate
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 5e-5f;  // paper: {5e-5, 5e-6}
  };

  Adam(std::vector<tensor::Variable> params, const Options& options);

  void Step() override;

  /// Current step count (bias-correction exponent).
  int64_t step_count() const { return t_; }
  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }

 private:
  Options options_;
  int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Plain SGD with optional momentum (ablation/testing).
class Sgd : public Optimizer {
 public:
  struct Options {
    float lr = 0.01f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  Sgd(std::vector<tensor::Variable> params, const Options& options);

  void Step() override;

 private:
  Options options_;
  std::vector<tensor::Tensor> velocity_;
};

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_OPTIM_H_

#include "nn/trainer.h"

#include "tensor/ops.h"

namespace graphrare {
namespace nn {

namespace ops = tensor::ops;
using tensor::Variable;

ClassifierTrainer::ClassifierTrainer(NodeClassifier* model,
                                     LayerInput features,
                                     const std::vector<int64_t>* labels,
                                     const Options& options)
    : model_(model),
      features_(std::move(features)),
      labels_(labels),
      dropout_rng_(options.seed ^ 0xA5A5A5A5ULL) {
  GR_CHECK(model != nullptr);
  GR_CHECK(labels != nullptr);
  optimizer_ = std::make_unique<Adam>(model->Parameters(), options.adam);
}

namespace {

std::vector<int64_t> SubsetLabels(const std::vector<int64_t>& labels,
                                  const std::vector<int64_t>& index) {
  std::vector<int64_t> out;
  out.reserve(index.size());
  for (int64_t i : index) out.push_back(labels[static_cast<size_t>(i)]);
  return out;
}

/// Loss/accuracy over a block's seed nodes, from already-computed block
/// logits. Seed labels are scattered into local-row terms so the shared
/// Accuracy metric applies unchanged.
EvalResult BlockSeedMetrics(const tensor::Tensor& logits, double loss,
                            const graph::Subgraph& block,
                            const std::vector<int64_t>& seed_labels) {
  EvalResult result;
  result.loss = loss;
  std::vector<int64_t> local_labels(block.nodes.size(), 0);
  for (size_t i = 0; i < block.seed_local.size(); ++i) {
    local_labels[static_cast<size_t>(block.seed_local[i])] = seed_labels[i];
  }
  result.accuracy = Accuracy(logits, local_labels, block.seed_local);
  return result;
}

}  // namespace

EvalResult ClassifierTrainer::TrainEpoch(
    const graph::Graph& g, const std::vector<int64_t>& train_idx) {
  GR_CHECK(!train_idx.empty());
  ModelInputs inputs;
  inputs.graph = &g;
  inputs.features = features_;

  model_->ZeroGrad();
  Variable logits = model_->Logits(inputs, /*training=*/true, &dropout_rng_);
  const std::vector<int64_t> y = SubsetLabels(*labels_, train_idx);
  Variable loss = ops::CrossEntropy(logits, train_idx, y);
  loss.Backward();
  optimizer_->Step();

  EvalResult result;
  result.loss = loss.value().scalar();
  result.accuracy = Accuracy(logits.value(), *labels_, train_idx);
  return result;
}

EvalResult ClassifierTrainer::Evaluate(const graph::Graph& g,
                                       const std::vector<int64_t>& idx) {
  GR_CHECK(!idx.empty());
  ModelInputs inputs;
  inputs.graph = &g;
  inputs.features = features_;
  Variable logits = model_->Logits(inputs, /*training=*/false, nullptr);
  const std::vector<int64_t> y = SubsetLabels(*labels_, idx);
  Variable loss = ops::CrossEntropy(logits.Detach(), idx, y);
  EvalResult result;
  result.loss = loss.value().scalar();
  result.accuracy = Accuracy(logits.value(), *labels_, idx);
  return result;
}

tensor::Tensor ClassifierTrainer::EvalLogits(const graph::Graph& g) {
  ModelInputs inputs;
  inputs.graph = &g;
  inputs.features = features_;
  return model_->Logits(inputs, /*training=*/false, nullptr).value();
}

FitResult ClassifierTrainer::Fit(const graph::Graph& g,
                                 const std::vector<int64_t>& train_idx,
                                 const std::vector<int64_t>& val_idx,
                                 int max_epochs, int patience) {
  GR_CHECK_GT(max_epochs, 0);
  GR_CHECK_GT(patience, 0);
  FitResult result;
  std::vector<tensor::Tensor> best_weights = SaveWeights();
  int since_best = 0;
  for (int epoch = 0; epoch < max_epochs; ++epoch) {
    const EvalResult train = TrainEpoch(g, train_idx);
    const EvalResult val = Evaluate(g, val_idx);
    result.train_acc_history.push_back(train.accuracy);
    result.val_acc_history.push_back(val.accuracy);
    ++result.epochs_run;
    if (val.accuracy > result.best_val_accuracy) {
      result.best_val_accuracy = val.accuracy;
      result.best_epoch = epoch;
      best_weights = SaveWeights();
      since_best = 0;
    } else if (++since_best >= patience) {
      break;
    }
  }
  LoadWeights(best_weights);
  return result;
}

MiniBatchTrainer::MiniBatchTrainer(
    NodeClassifier* model,
    std::shared_ptr<const tensor::CsrMatrix> features,
    const std::vector<int64_t>* labels, const Options& options)
    : full_(model, LayerInput::Sparse(features), labels,
            ClassifierTrainer::Options{options.adam, options.seed}),
      features_(std::move(features)),
      labels_(labels),
      dropout_rng_(options.seed ^ 0x3C3C3C3CULL) {
  GR_CHECK(features_ != nullptr);
}

EvalResult MiniBatchTrainer::TrainBatch(const graph::Subgraph& block) {
  GR_CHECK_GT(block.num_seeds(), 0);
  auto local_features = std::make_shared<tensor::CsrMatrix>(
      block.LocalRows(*features_));
  ModelInputs inputs;
  inputs.graph = &block.graph;
  inputs.features = LayerInput::Sparse(std::move(local_features));

  model()->ZeroGrad();
  Variable logits = model()->Logits(inputs, /*training=*/true, &dropout_rng_);
  std::vector<int64_t> y = SubsetLabels(*labels_, block.seed_global);
  Variable loss = ops::CrossEntropy(logits, block.seed_local, y);
  loss.Backward();
  optimizer()->Step();

  return BlockSeedMetrics(logits.value(), loss.value().scalar(), block, y);
}

EvalResult MiniBatchTrainer::Evaluate(const graph::Graph& g,
                                      const std::vector<int64_t>& idx) {
  return full_.Evaluate(g, idx);
}

EvalResult MiniBatchTrainer::EvaluateBlock(const graph::Subgraph& block) {
  GR_CHECK_GT(block.num_seeds(), 0);
  Variable logits(EvalLogitsBlock(block), /*requires_grad=*/false);
  const std::vector<int64_t> y = SubsetLabels(*labels_, block.seed_global);
  Variable loss = ops::CrossEntropy(logits, block.seed_local, y);
  return BlockSeedMetrics(logits.value(), loss.value().scalar(), block, y);
}

tensor::Tensor MiniBatchTrainer::EvalLogitsBlock(const graph::Subgraph& block) {
  auto local_features = std::make_shared<tensor::CsrMatrix>(
      block.LocalRows(*features_));
  ModelInputs inputs;
  inputs.graph = &block.graph;
  inputs.features = LayerInput::Sparse(std::move(local_features));
  return model()->Logits(inputs, /*training=*/false, nullptr).value();
}

tensor::Tensor MiniBatchTrainer::EvalLogits(const graph::Graph& g) {
  return full_.EvalLogits(g);
}

std::vector<tensor::Tensor> ClassifierTrainer::SaveWeights() const {
  std::vector<tensor::Tensor> weights;
  for (const auto& p : model_->Parameters()) weights.push_back(p.value());
  return weights;
}

void ClassifierTrainer::LoadWeights(const std::vector<tensor::Tensor>& weights) {
  auto params = model_->Parameters();
  GR_CHECK_EQ(params.size(), weights.size());
  for (size_t i = 0; i < params.size(); ++i) {
    GR_CHECK(params[i].value().SameShape(weights[i]));
    *params[i].mutable_value() = weights[i];
  }
}

}  // namespace nn
}  // namespace graphrare

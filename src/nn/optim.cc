#include "nn/optim.h"

#include <cmath>

namespace graphrare {
namespace nn {

Adam::Adam(std::vector<tensor::Variable> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(options_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(options_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const tensor::Tensor& g = p.grad();
    tensor::Tensor* w = p.mutable_value();
    tensor::Tensor& m = m_[i];
    tensor::Tensor& v = v_[i];
    const int64_t n = w->numel();
    float* pw = w->data();
    const float* pg = g.data();
    float* pm = m.data();
    float* pv = v.data();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = pg[j] + options_.weight_decay * pw[j];
      pm[j] = options_.beta1 * pm[j] + (1.0f - options_.beta1) * grad;
      pv[j] = options_.beta2 * pv[j] + (1.0f - options_.beta2) * grad * grad;
      const float m_hat = pm[j] / bc1;
      const float v_hat = pv[j] / bc2;
      pw[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

Sgd::Sgd(std::vector<tensor::Variable> params, const Options& options)
    : Optimizer(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const tensor::Tensor& g = p.grad();
    tensor::Tensor* w = p.mutable_value();
    tensor::Tensor& vel = velocity_[i];
    const int64_t n = w->numel();
    float* pw = w->data();
    const float* pg = g.data();
    float* pv = vel.data();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = pg[j] + options_.weight_decay * pw[j];
      pv[j] = options_.momentum * pv[j] + grad;
      pw[j] -= options_.lr * pv[j];
    }
  }
}

}  // namespace nn
}  // namespace graphrare

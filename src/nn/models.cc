#include "nn/models.h"

#include <algorithm>

#include "common/string_util.h"
#include "tensor/ops.h"

namespace graphrare {
namespace nn {

namespace ops = tensor::ops;
using tensor::Variable;

const char* BackboneName(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kMlp:
      return "mlp";
    case BackboneKind::kGcn:
      return "gcn";
    case BackboneKind::kSage:
      return "sage";
    case BackboneKind::kGat:
      return "gat";
    case BackboneKind::kMixHop:
      return "mixhop";
    case BackboneKind::kH2Gcn:
      return "h2gcn";
    case BackboneKind::kSgc:
      return "sgc";
    case BackboneKind::kAppnp:
      return "appnp";
  }
  return "?";
}

Result<BackboneKind> BackboneFromName(const std::string& name) {
  if (name == "mlp") return BackboneKind::kMlp;
  if (name == "gcn") return BackboneKind::kGcn;
  if (name == "sage" || name == "graphsage") return BackboneKind::kSage;
  if (name == "gat") return BackboneKind::kGat;
  if (name == "mixhop") return BackboneKind::kMixHop;
  if (name == "h2gcn") return BackboneKind::kH2Gcn;
  if (name == "sgc") return BackboneKind::kSgc;
  if (name == "appnp") return BackboneKind::kAppnp;
  return Status::NotFound(StrFormat("unknown backbone '%s'", name.c_str()));
}

Status ModelOptions::Validate() const {
  if (in_features < 1) {
    return Status::InvalidArgument("in_features must be >= 1");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (hidden < 1) return Status::InvalidArgument("hidden must be >= 1");
  if (num_layers < 1) {
    return Status::InvalidArgument("num_layers must be >= 1");
  }
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }
  if (gat_heads < 1) return Status::InvalidArgument("gat_heads must be >= 1");
  if (appnp_alpha <= 0.0f || appnp_alpha > 1.0f) {
    return Status::InvalidArgument("appnp_alpha must be in (0, 1]");
  }
  if (appnp_iterations < 1) {
    return Status::InvalidArgument("appnp_iterations must be >= 1");
  }
  return Status::OK();
}

namespace {

Variable MaybeDropout(const Variable& x, float p, bool training, Rng* rng) {
  if (p <= 0.0f || !training) return x;
  return ops::Dropout(x, p, training, rng);
}

}  // namespace

// -------------------------------------------------------------------- MLP

MlpModel::MlpModel(const ModelOptions& options) : dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  int64_t in = options.in_features;
  for (int l = 0; l < options.num_layers; ++l) {
    const int64_t out =
        l == options.num_layers - 1 ? options.num_classes : options.hidden;
    layers_.push_back(std::make_unique<Linear>(in, out, &rng));
    RegisterChild("layer" + std::to_string(l), layers_.back().get());
    in = out;
  }
}

Variable MlpModel::Logits(const ModelInputs& in, bool training,
                          Rng* rng) const {
  // Hidden layers take the fused bias+ReLU forward; the last layer emits
  // raw logits.
  const bool last_is_0 = layers_.size() == 1;
  Variable h = in.features.is_sparse()
                   ? (last_is_0 ? layers_[0]->ForwardSparse(in.features.sparse)
                                : layers_[0]->ForwardSparseRelu(
                                      in.features.sparse))
                   : (last_is_0 ? layers_[0]->Forward(in.features.dense)
                                : layers_[0]->ForwardRelu(in.features.dense));
  for (size_t l = 1; l < layers_.size(); ++l) {
    h = MaybeDropout(h, dropout_, training, rng);
    h = l + 1 < layers_.size() ? layers_[l]->ForwardRelu(h)
                               : layers_[l]->Forward(h);
  }
  return h;
}

// -------------------------------------------------------------------- GCN

GcnModel::GcnModel(const ModelOptions& options) : dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  int64_t in = options.in_features;
  for (int l = 0; l < options.num_layers; ++l) {
    const int64_t out =
        l == options.num_layers - 1 ? options.num_classes : options.hidden;
    convs_.push_back(std::make_unique<GCNConv>(in, out, &rng));
    RegisterChild("conv" + std::to_string(l), convs_.back().get());
    in = out;
  }
}

Variable GcnModel::Logits(const ModelInputs& in, bool training,
                          Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  LayerInput x = in.features;
  Variable h;
  for (size_t l = 0; l < convs_.size(); ++l) {
    h = convs_[l]->Forward(*in.graph, x);
    if (l + 1 < convs_.size()) {
      h = MaybeDropout(ops::Relu(h), dropout_, training, rng);
      x = LayerInput::Dense(h);
    }
  }
  return h;
}

// ------------------------------------------------------------------- SAGE

SageModel::SageModel(const ModelOptions& options) : dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  int64_t in = options.in_features;
  for (int l = 0; l < options.num_layers; ++l) {
    const int64_t out =
        l == options.num_layers - 1 ? options.num_classes : options.hidden;
    convs_.push_back(std::make_unique<SAGEConv>(in, out, &rng));
    RegisterChild("conv" + std::to_string(l), convs_.back().get());
    in = out;
  }
}

Variable SageModel::Logits(const ModelInputs& in, bool training,
                           Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  LayerInput x = in.features;
  Variable h;
  for (size_t l = 0; l < convs_.size(); ++l) {
    h = convs_[l]->Forward(*in.graph, x);
    if (l + 1 < convs_.size()) {
      h = MaybeDropout(ops::Relu(h), dropout_, training, rng);
      x = LayerInput::Dense(h);
    }
  }
  return h;
}

// -------------------------------------------------------------------- GAT

GatModel::GatModel(const ModelOptions& options) : dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  const int heads = options.gat_heads;
  const int64_t per_head =
      std::max<int64_t>(1, options.hidden / heads);
  conv1_ = std::make_unique<GATConv>(options.in_features, per_head, heads,
                                     &rng, options.dropout);
  conv2_ = std::make_unique<GATConv>(per_head * heads, options.num_classes,
                                     /*num_heads=*/1, &rng, options.dropout);
  RegisterChild("conv1", conv1_.get());
  RegisterChild("conv2", conv2_.get());
}

Variable GatModel::Logits(const ModelInputs& in, bool training,
                          Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  Variable h = conv1_->Forward(*in.graph, in.features, training, rng);
  h = MaybeDropout(ops::Elu(h), dropout_, training, rng);
  return conv2_->Forward(*in.graph, LayerInput::Dense(h), training, rng);
}

// ----------------------------------------------------------------- MixHop

MixHopModel::MixHopModel(const ModelOptions& options)
    : dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  const int64_t per_power = std::max<int64_t>(8, options.hidden / 3);
  conv1_ = std::make_unique<MixHopConv>(options.in_features, per_power, &rng);
  conv2_ = std::make_unique<MixHopConv>(conv1_->out_features(), per_power,
                                        &rng);
  classifier_ = std::make_unique<Linear>(conv2_->out_features(),
                                         options.num_classes, &rng);
  RegisterChild("conv1", conv1_.get());
  RegisterChild("conv2", conv2_.get());
  RegisterChild("classifier", classifier_.get());
}

Variable MixHopModel::Logits(const ModelInputs& in, bool training,
                             Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  Variable h = conv1_->Forward(*in.graph, in.features);
  h = MaybeDropout(ops::Relu(h), dropout_, training, rng);
  h = conv2_->Forward(*in.graph, LayerInput::Dense(h));
  h = MaybeDropout(ops::Relu(h), dropout_, training, rng);
  return classifier_->Forward(h);
}

// ------------------------------------------------------------------ H2GCN

H2GcnModel::H2GcnModel(const ModelOptions& options)
    : num_rounds_(std::max(1, options.num_layers - 1)),
      dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  embed_ = std::make_unique<Linear>(options.in_features, options.hidden,
                                    &rng);
  // Width after K rounds: hidden * (1 + 2 + 4 + ... + 2^K) = hidden*(2^{K+1}-1).
  int64_t total = 0;
  int64_t w = options.hidden;
  for (int r = 0; r <= num_rounds_; ++r) {
    total += w;
    w *= 2;
  }
  classifier_ = std::make_unique<Linear>(total, options.num_classes, &rng);
  RegisterChild("embed", embed_.get());
  RegisterChild("classifier", classifier_.get());
}

Variable H2GcnModel::Logits(const ModelInputs& in, bool training,
                            Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  Variable h0 = in.features.is_sparse()
                    ? embed_->ForwardSparseRelu(in.features.sparse)
                    : embed_->ForwardRelu(in.features.dense);
  std::vector<Variable> reps = {h0};
  Variable h = h0;
  for (int r = 0; r < num_rounds_; ++r) {
    h = H2GCNAggregate(*in.graph, h);
    reps.push_back(h);
  }
  Variable rep = ops::ConcatCols(reps);
  rep = MaybeDropout(rep, dropout_, training, rng);
  return classifier_->Forward(rep);
}

// -------------------------------------------------------------------- SGC

SgcModel::SgcModel(const ModelOptions& options)
    : hops_(options.num_layers) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  linear_ = std::make_unique<Linear>(options.in_features,
                                     options.num_classes, &rng);
  RegisterChild("linear", linear_.get());
}

Variable SgcModel::Logits(const ModelInputs& in, bool /*training*/,
                          Rng* /*rng*/) const {
  GR_CHECK(in.graph != nullptr);
  // Linearity lets us apply W first (cheap on sparse features), then
  // propagate: A^K (X W) == (A^K X) W.
  Variable h = in.features.is_sparse()
                   ? linear_->ForwardSparse(in.features.sparse)
                   : linear_->Forward(in.features.dense);
  auto adj = in.graph->NormalizedAdjacency();
  for (int k = 0; k < hops_; ++k) {
    h = ops::SpMM(adj, h);
  }
  return h;
}

// ------------------------------------------------------------------ APPNP

AppnpModel::AppnpModel(const ModelOptions& options)
    : alpha_(options.appnp_alpha),
      iterations_(options.appnp_iterations),
      dropout_(options.dropout) {
  GR_CHECK_OK(options.Validate());
  Rng rng(options.seed);
  lin1_ = std::make_unique<Linear>(options.in_features, options.hidden, &rng);
  lin2_ = std::make_unique<Linear>(options.hidden, options.num_classes, &rng);
  RegisterChild("lin1", lin1_.get());
  RegisterChild("lin2", lin2_.get());
}

Variable AppnpModel::Logits(const ModelInputs& in, bool training,
                            Rng* rng) const {
  GR_CHECK(in.graph != nullptr);
  Variable h = in.features.is_sparse()
                   ? lin1_->ForwardSparseRelu(in.features.sparse)
                   : lin1_->ForwardRelu(in.features.dense);
  h = MaybeDropout(h, dropout_, training, rng);
  Variable h0 = lin2_->Forward(h);
  // Personalised PageRank: z <- (1-alpha) A z + alpha h0.
  auto adj = in.graph->NormalizedAdjacency();
  Variable z = h0;
  for (int t = 0; t < iterations_; ++t) {
    z = ops::Add(ops::Scale(ops::SpMM(adj, z), 1.0f - alpha_),
                 ops::Scale(h0, alpha_));
  }
  return z;
}

// ---------------------------------------------------------------- Factory

std::unique_ptr<NodeClassifier> MakeModel(BackboneKind kind,
                                          const ModelOptions& options) {
  switch (kind) {
    case BackboneKind::kMlp:
      return std::make_unique<MlpModel>(options);
    case BackboneKind::kGcn:
      return std::make_unique<GcnModel>(options);
    case BackboneKind::kSage:
      return std::make_unique<SageModel>(options);
    case BackboneKind::kGat:
      return std::make_unique<GatModel>(options);
    case BackboneKind::kMixHop:
      return std::make_unique<MixHopModel>(options);
    case BackboneKind::kH2Gcn:
      return std::make_unique<H2GcnModel>(options);
    case BackboneKind::kSgc:
      return std::make_unique<SgcModel>(options);
    case BackboneKind::kAppnp:
      return std::make_unique<AppnpModel>(options);
  }
  GR_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace nn
}  // namespace graphrare

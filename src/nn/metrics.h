// Copyright 2026 The GraphRARE Authors.
//
// Evaluation metrics: accuracy (the paper's main metric) and one-vs-rest
// macro AUC (the alternative reward of the Table V ablation).

#ifndef GRAPHRARE_NN_METRICS_H_
#define GRAPHRARE_NN_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace graphrare {
namespace nn {

/// Fraction of rows in `index` whose argmax logit equals the label.
/// labels is the *full* label vector (indexed by node id).
double Accuracy(const tensor::Tensor& logits,
                const std::vector<int64_t>& labels,
                const std::vector<int64_t>& index);

/// One-vs-rest macro-averaged ROC AUC over the rows in `index`. Classes
/// absent from the subset are skipped. Returns 0.5 when undefined.
double MacroAucOvr(const tensor::Tensor& logits,
                   const std::vector<int64_t>& labels,
                   const std::vector<int64_t>& index, int64_t num_classes);

/// Per-row predictions (argmax over columns) for the given subset.
std::vector<int64_t> Predictions(const tensor::Tensor& logits,
                                 const std::vector<int64_t>& index);

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_METRICS_H_

// Copyright 2026 The GraphRARE Authors.
//
// Fully connected layer, with a sparse-input fast path for the first layer
// of models fed bag-of-words features.

#ifndef GRAPHRARE_NN_LINEAR_H_
#define GRAPHRARE_NN_LINEAR_H_

#include <memory>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace graphrare {
namespace nn {

/// y = x W + b with Glorot-uniform W.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         bool use_bias = true)
      : use_bias_(use_bias) {
    weight_ = RegisterParameter(
        "weight", tensor::Tensor::GlorotUniform(in_features, out_features, rng));
    if (use_bias_) {
      bias_ = RegisterParameter("bias",
                                tensor::Tensor::Zeros(1, out_features));
    }
  }

  tensor::Variable Forward(const tensor::Variable& x) const {
    tensor::Variable y = tensor::ops::MatMul(x, weight_);
    if (use_bias_) y = tensor::ops::AddBias(y, bias_);
    return y;
  }

  /// y = relu(x W + b) through the fused bias+ReLU kernel: same bits as
  /// Relu(Forward(x)), one fewer tape node and backward sweep. Models call
  /// this wherever an activation directly follows the affine layer.
  tensor::Variable ForwardRelu(const tensor::Variable& x) const {
    if (!use_bias_) return tensor::ops::Relu(Forward(x));
    return tensor::ops::AddBiasRelu(tensor::ops::MatMul(x, weight_), bias_);
  }

  /// Sparse-input forward: y = X_sparse W + b. Gradients flow into W only
  /// (the data matrix is constant), which is exactly the first-layer case.
  tensor::Variable ForwardSparse(
      const std::shared_ptr<const tensor::CsrMatrix>& x) const {
    tensor::Variable y = tensor::ops::SpMM(x, weight_);
    if (use_bias_) y = tensor::ops::AddBias(y, bias_);
    return y;
  }

  /// Fused relu(X_sparse W + b); see ForwardRelu.
  tensor::Variable ForwardSparseRelu(
      const std::shared_ptr<const tensor::CsrMatrix>& x) const {
    if (!use_bias_) return tensor::ops::Relu(ForwardSparse(x));
    return tensor::ops::AddBiasRelu(tensor::ops::SpMM(x, weight_), bias_);
  }

  const tensor::Variable& weight() const { return weight_; }
  const tensor::Variable& bias() const { return bias_; }
  int64_t in_features() const { return weight_.value().rows(); }
  int64_t out_features() const { return weight_.value().cols(); }

 private:
  tensor::Variable weight_;
  tensor::Variable bias_;
  bool use_bias_;
};

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_LINEAR_H_

// Copyright 2026 The GraphRARE Authors.
//
// Message-passing layers (Eq. 12-13 of the paper: AGGREGATE + UPDATE).
// Each layer takes the graph-derived sparse operator(s) plus node features
// and returns updated node features. Layers are graph-agnostic: the caller
// passes the operators of whatever (possibly rewired) graph is current.

#ifndef GRAPHRARE_NN_GNN_LAYERS_H_
#define GRAPHRARE_NN_GNN_LAYERS_H_

#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace graphrare {
namespace nn {

/// Node features entering a layer: dense Variable or (first layer only)
/// a constant sparse matrix.
struct LayerInput {
  tensor::Variable dense;                                // defined() if dense
  std::shared_ptr<const tensor::CsrMatrix> sparse;       // non-null if sparse

  static LayerInput Dense(tensor::Variable v) {
    LayerInput in;
    in.dense = std::move(v);
    return in;
  }
  static LayerInput Sparse(std::shared_ptr<const tensor::CsrMatrix> m) {
    LayerInput in;
    in.sparse = std::move(m);
    return in;
  }
  bool is_sparse() const { return sparse != nullptr; }
  int64_t rows() const {
    return is_sparse() ? sparse->rows() : dense.value().rows();
  }
};

/// GCN layer (Kipf & Welling): H' = D^{-1/2}(A+I)D^{-1/2} (H W).
class GCNConv : public Module {
 public:
  GCNConv(int64_t in_features, int64_t out_features, Rng* rng);

  tensor::Variable Forward(const graph::Graph& g, const LayerInput& x) const;

 private:
  std::unique_ptr<Linear> linear_;
};

/// GraphSAGE layer (mean aggregator): H' = H W_self + mean_N(H) W_neigh.
class SAGEConv : public Module {
 public:
  SAGEConv(int64_t in_features, int64_t out_features, Rng* rng);

  tensor::Variable Forward(const graph::Graph& g, const LayerInput& x) const;

 private:
  std::unique_ptr<Linear> self_linear_;
  std::unique_ptr<Linear> neigh_linear_;
};

/// Multi-head GAT layer (Velickovic et al.) with additive attention over
/// directed edges + self loops. Head outputs are concatenated.
class GATConv : public Module {
 public:
  GATConv(int64_t in_features, int64_t out_per_head, int num_heads, Rng* rng,
          float attention_dropout = 0.0f, float negative_slope = 0.2f);

  tensor::Variable Forward(const graph::Graph& g, const LayerInput& x,
                           bool training, Rng* rng) const;

  int num_heads() const { return static_cast<int>(heads_.size()); }

 private:
  struct Head {
    std::unique_ptr<Linear> proj;     // no bias
    tensor::Variable attn_src;        // (out,1)
    tensor::Variable attn_dst;        // (out,1)
  };
  std::vector<Head> heads_;
  float attention_dropout_;
  float negative_slope_;
};

/// MixHop layer (Abu-El-Haija et al.): concat over adjacency powers
/// {0, 1, 2} of \hat{A}^j (H W_j).
class MixHopConv : public Module {
 public:
  MixHopConv(int64_t in_features, int64_t out_per_power, Rng* rng);

  tensor::Variable Forward(const graph::Graph& g, const LayerInput& x) const;

  /// Output width = 3 * out_per_power.
  int64_t out_features() const { return 3 * out_per_power_; }

 private:
  int64_t out_per_power_;
  std::unique_ptr<Linear> w0_;
  std::unique_ptr<Linear> w1_;
  std::unique_ptr<Linear> w2_;
};

/// H2GCN aggregation step (Zhu et al.): concat of 1-hop and strict-2-hop
/// mean aggregations. Parameter-free (H2GCN's design); widths double.
tensor::Variable H2GCNAggregate(const graph::Graph& g,
                                const tensor::Variable& h);

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_GNN_LAYERS_H_

// Copyright 2026 The GraphRARE Authors.
//
// Supervised training driver for node classifiers. Exposes both a
// full-fit-with-early-stopping entry point (baselines) and single-epoch /
// evaluate-only steps (the GraphRARE co-training loop interleaves these
// with RL updates).

#ifndef GRAPHRARE_NN_TRAINER_H_
#define GRAPHRARE_NN_TRAINER_H_

#include <memory>
#include <vector>

#include "graph/subgraph.h"
#include "nn/metrics.h"
#include "nn/models.h"
#include "nn/optim.h"

namespace graphrare {
namespace nn {

/// Loss/accuracy pair from one evaluation.
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
};

/// Outcome of a Fit() run.
struct FitResult {
  int epochs_run = 0;
  double best_val_accuracy = 0.0;
  int best_epoch = -1;
  std::vector<double> train_acc_history;
  std::vector<double> val_acc_history;
};

/// Trains/evaluates a NodeClassifier on (graph, features, labels).
/// The graph is a per-call argument so the same trainer follows rewired
/// topologies during co-training.
class ClassifierTrainer {
 public:
  struct Options {
    Adam::Options adam;
    uint64_t seed = 1;  ///< dropout stream
  };

  /// `model` and `labels` must outlive the trainer.
  ClassifierTrainer(NodeClassifier* model, LayerInput features,
                    const std::vector<int64_t>* labels,
                    const Options& options);

  /// One optimization epoch (full-batch) on `train_idx`; returns post-update
  /// training loss/accuracy computed from the same forward pass.
  EvalResult TrainEpoch(const graph::Graph& g,
                        const std::vector<int64_t>& train_idx);

  /// Evaluation (no dropout, no gradients) on `idx`.
  EvalResult Evaluate(const graph::Graph& g, const std::vector<int64_t>& idx);

  /// Full logits in eval mode (for test metrics / AUC).
  tensor::Tensor EvalLogits(const graph::Graph& g);

  /// Trains with early stopping on validation accuracy; restores the best
  /// weights before returning.
  FitResult Fit(const graph::Graph& g, const std::vector<int64_t>& train_idx,
                const std::vector<int64_t>& val_idx, int max_epochs,
                int patience);

  /// Deep-copies all parameter tensors (early-stopping snapshots).
  std::vector<tensor::Tensor> SaveWeights() const;
  void LoadWeights(const std::vector<tensor::Tensor>& weights);

  NodeClassifier* model() { return model_; }
  Adam* optimizer() { return optimizer_.get(); }

 private:
  NodeClassifier* model_;
  LayerInput features_;
  const std::vector<int64_t>* labels_;
  std::unique_ptr<Adam> optimizer_;
  Rng dropout_rng_;
};

/// Mini-batch trainer: optimizes the model one sampled block at a time
/// (the block comes from data::NeighborSampler via graph::InducedSubgraph)
/// while evaluation stays full-graph. Per-step memory and compute scale
/// with the block, not the whole adjacency, which is what lets training
/// reach graphs far beyond full-graph SpMM budgets.
class MiniBatchTrainer {
 public:
  struct Options {
    Adam::Options adam;
    uint64_t seed = 1;  ///< dropout stream
  };

  /// `model` and `labels` must outlive the trainer. `features` is the
  /// *global* feature matrix; per-batch slices are taken per block.
  MiniBatchTrainer(NodeClassifier* model,
                   std::shared_ptr<const tensor::CsrMatrix> features,
                   const std::vector<int64_t>* labels,
                   const Options& options);

  /// One optimization step on a sampled block; loss/accuracy are over the
  /// block's seed nodes, from the same forward pass that produced the
  /// update.
  EvalResult TrainBatch(const graph::Subgraph& block);

  /// Full-graph evaluation (no dropout, no gradients) on `idx`.
  EvalResult Evaluate(const graph::Graph& g, const std::vector<int64_t>& idx);

  /// Full logits in eval mode on the full graph.
  tensor::Tensor EvalLogits(const graph::Graph& g);

  /// Block-scoped evaluation (no dropout, no gradients): forward on
  /// block.graph with the block's feature rows, loss/accuracy over the
  /// block's seed nodes. On an identity block (graph::FullSubgraph) this
  /// reproduces Evaluate(g, seeds) bitwise — the block-rollout RL reward
  /// path relies on that for its full-graph special case.
  EvalResult EvaluateBlock(const graph::Subgraph& block);

  /// Block-graph logits in eval mode (one row per *local* node).
  tensor::Tensor EvalLogitsBlock(const graph::Subgraph& block);

  std::vector<tensor::Tensor> SaveWeights() const {
    return full_.SaveWeights();
  }
  void LoadWeights(const std::vector<tensor::Tensor>& weights) {
    full_.LoadWeights(weights);
  }

  NodeClassifier* model() { return full_.model(); }
  Adam* optimizer() { return full_.optimizer(); }

 private:
  /// Full-graph twin: owns the optimizer and the evaluation paths so the
  /// two training modes share one Adam state and weight snapshots.
  ClassifierTrainer full_;
  std::shared_ptr<const tensor::CsrMatrix> features_;
  const std::vector<int64_t>* labels_;
  Rng dropout_rng_;
};

}  // namespace nn
}  // namespace graphrare

#endif  // GRAPHRARE_NN_TRAINER_H_

#include "nn/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace graphrare {
namespace nn {

double Accuracy(const tensor::Tensor& logits,
                const std::vector<int64_t>& labels,
                const std::vector<int64_t>& index) {
  GR_CHECK(!index.empty());
  int64_t correct = 0;
  for (int64_t i : index) {
    GR_CHECK(i >= 0 && i < logits.rows());
    if (logits.ArgMaxRow(i) == labels[static_cast<size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(index.size());
}

std::vector<int64_t> Predictions(const tensor::Tensor& logits,
                                 const std::vector<int64_t>& index) {
  std::vector<int64_t> preds;
  preds.reserve(index.size());
  for (int64_t i : index) preds.push_back(logits.ArgMaxRow(i));
  return preds;
}

double MacroAucOvr(const tensor::Tensor& logits,
                   const std::vector<int64_t>& labels,
                   const std::vector<int64_t>& index, int64_t num_classes) {
  GR_CHECK(!index.empty());
  GR_CHECK_GT(num_classes, 1);
  double auc_sum = 0.0;
  int64_t valid_classes = 0;
  std::vector<std::pair<float, int>> scored;  // (score, is_positive)
  for (int64_t c = 0; c < num_classes; ++c) {
    scored.clear();
    int64_t positives = 0;
    for (int64_t i : index) {
      const bool pos = labels[static_cast<size_t>(i)] == c;
      positives += pos ? 1 : 0;
      scored.emplace_back(logits.at(i, c), pos ? 1 : 0);
    }
    const int64_t negatives = static_cast<int64_t>(index.size()) - positives;
    if (positives == 0 || negatives == 0) continue;
    // Rank-based AUC (Mann-Whitney U) with midrank tie handling.
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double rank_sum_pos = 0.0;
    size_t i = 0;
    while (i < scored.size()) {
      size_t j = i;
      while (j < scored.size() && scored[j].first == scored[i].first) ++j;
      const double midrank =
          (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
      for (size_t k = i; k < j; ++k) {
        if (scored[k].second) rank_sum_pos += midrank;
      }
      i = j;
    }
    const double u = rank_sum_pos - static_cast<double>(positives) *
                                        (static_cast<double>(positives) + 1.0) /
                                        2.0;
    auc_sum += u / (static_cast<double>(positives) *
                    static_cast<double>(negatives));
    ++valid_classes;
  }
  if (valid_classes == 0) return 0.5;
  return auc_sum / static_cast<double>(valid_classes);
}

}  // namespace nn
}  // namespace graphrare

#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/string_util.h"

namespace graphrare {
namespace graph {

using tensor::CooEntry;
using tensor::CsrMatrix;

Result<Graph> Graph::FromEdgeList(int64_t num_nodes,
                                  const std::vector<Edge>& edges) {
  if (num_nodes < 0) {
    return Status::InvalidArgument("num_nodes must be non-negative");
  }
  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return Status::OutOfRange(
          StrFormat("edge (%lld,%lld) outside [0,%lld)",
                    static_cast<long long>(u), static_cast<long long>(v),
                    static_cast<long long>(num_nodes)));
    }
    if (u == v) continue;  // self loops are dropped, not an error
    canon.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  Graph g;
  g.num_nodes_ = num_nodes;
  g.edges_ = std::move(canon);
  g.BuildCsr();
  return g;
}

Graph Graph::FromEdgeListOrDie(int64_t num_nodes,
                               const std::vector<Edge>& edges) {
  auto result = FromEdgeList(num_nodes, edges);
  GR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void Graph::BuildCsr() {
  adj_row_ptr_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  adj_col_.clear();
  adj_col_.resize(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    adj_row_ptr_[static_cast<size_t>(u) + 1]++;
    adj_row_ptr_[static_cast<size_t>(v) + 1]++;
  }
  for (size_t i = 0; i < static_cast<size_t>(num_nodes_); ++i) {
    adj_row_ptr_[i + 1] += adj_row_ptr_[i];
  }
  std::vector<int64_t> cursor(adj_row_ptr_.begin(), adj_row_ptr_.end() - 1);
  for (const auto& [u, v] : edges_) {
    adj_col_[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] = v;
    adj_col_[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] = u;
  }
  for (int64_t r = 0; r < num_nodes_; ++r) {
    std::sort(adj_col_.begin() + adj_row_ptr_[static_cast<size_t>(r)],
              adj_col_.begin() + adj_row_ptr_[static_cast<size_t>(r) + 1]);
  }
}

const int64_t* Graph::NeighborsBegin(int64_t v) const {
  GR_DCHECK(v >= 0 && v < num_nodes_);
  return adj_col_.data() + adj_row_ptr_[static_cast<size_t>(v)];
}

const int64_t* Graph::NeighborsEnd(int64_t v) const {
  GR_DCHECK(v >= 0 && v < num_nodes_);
  return adj_col_.data() + adj_row_ptr_[static_cast<size_t>(v) + 1];
}

std::vector<int64_t> Graph::Neighbors(int64_t v) const {
  return std::vector<int64_t>(NeighborsBegin(v), NeighborsEnd(v));
}

int64_t Graph::Degree(int64_t v) const {
  GR_CHECK(v >= 0 && v < num_nodes_) << "Degree: node " << v << " out of range";
  return adj_row_ptr_[static_cast<size_t>(v) + 1] -
         adj_row_ptr_[static_cast<size_t>(v)];
}

int64_t Graph::MaxDegree() const {
  int64_t m = 0;
  for (int64_t v = 0; v < num_nodes_; ++v) m = std::max(m, Degree(v));
  return m;
}

bool Graph::HasEdge(int64_t u, int64_t v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_ || u == v) {
    return false;
  }
  return std::binary_search(NeighborsBegin(u), NeighborsEnd(u), v);
}

std::shared_ptr<const CsrMatrix> Graph::Adjacency() const {
  if (adjacency_) return adjacency_;
  std::vector<CooEntry> entries;
  entries.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    entries.push_back({u, v, 1.0f});
    entries.push_back({v, u, 1.0f});
  }
  adjacency_ = std::make_shared<CsrMatrix>(
      CsrMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries)));
  return adjacency_;
}

std::shared_ptr<const CsrMatrix> Graph::NormalizedAdjacency() const {
  if (normalized_) return normalized_;
  // Degrees of A + I.
  std::vector<float> inv_sqrt(static_cast<size_t>(num_nodes_));
  for (int64_t v = 0; v < num_nodes_; ++v) {
    inv_sqrt[static_cast<size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(Degree(v) + 1));
  }
  std::vector<CooEntry> entries;
  entries.reserve(edges_.size() * 2 + static_cast<size_t>(num_nodes_));
  for (const auto& [u, v] : edges_) {
    const float w = inv_sqrt[static_cast<size_t>(u)] *
                    inv_sqrt[static_cast<size_t>(v)];
    entries.push_back({u, v, w});
    entries.push_back({v, u, w});
  }
  for (int64_t v = 0; v < num_nodes_; ++v) {
    entries.push_back(
        {v, v, inv_sqrt[static_cast<size_t>(v)] * inv_sqrt[static_cast<size_t>(v)]});
  }
  normalized_ = std::make_shared<CsrMatrix>(
      CsrMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries)));
  return normalized_;
}

std::shared_ptr<const CsrMatrix> Graph::RowNormalizedAdjacency() const {
  if (row_normalized_) return row_normalized_;
  std::vector<CooEntry> entries;
  entries.reserve(edges_.size() * 2);
  for (const auto& [u, v] : edges_) {
    entries.push_back({u, v, 1.0f / static_cast<float>(Degree(u))});
    entries.push_back({v, u, 1.0f / static_cast<float>(Degree(v))});
  }
  row_normalized_ = std::make_shared<CsrMatrix>(
      CsrMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries)));
  return row_normalized_;
}

std::shared_ptr<const CsrMatrix> Graph::TwoHopAdjacency() const {
  if (two_hop_) return two_hop_;
  // A^2 gives path counts; strict 2-hop removes the diagonal and 1-hop edges.
  auto a = Adjacency();
  CsrMatrix a2 = a->Multiply(*a);
  std::vector<CooEntry> entries;
  for (int64_t r = 0; r < a2.rows(); ++r) {
    for (int64_t p = a2.row_ptr()[static_cast<size_t>(r)];
         p < a2.row_ptr()[static_cast<size_t>(r) + 1]; ++p) {
      const int64_t c = a2.col_idx()[static_cast<size_t>(p)];
      if (c == r || HasEdge(r, c)) continue;
      entries.push_back({r, c, 1.0f});
    }
  }
  two_hop_ = std::make_shared<CsrMatrix>(
      CsrMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries)));
  return two_hop_;
}

std::shared_ptr<const CsrMatrix> Graph::RowNormalizedTwoHop() const {
  if (row_normalized_two_hop_) return row_normalized_two_hop_;
  auto t = TwoHopAdjacency();
  std::vector<CooEntry> entries;
  entries.reserve(static_cast<size_t>(t->nnz()));
  for (int64_t r = 0; r < t->rows(); ++r) {
    const int64_t begin = t->row_ptr()[static_cast<size_t>(r)];
    const int64_t end = t->row_ptr()[static_cast<size_t>(r) + 1];
    const float inv = end > begin ? 1.0f / static_cast<float>(end - begin) : 0.0f;
    for (int64_t p = begin; p < end; ++p) {
      entries.push_back({r, t->col_idx()[static_cast<size_t>(p)], inv});
    }
  }
  row_normalized_two_hop_ = std::make_shared<CsrMatrix>(
      CsrMatrix::FromCoo(num_nodes_, num_nodes_, std::move(entries)));
  return row_normalized_two_hop_;
}

std::vector<int64_t> Graph::KHopNeighbors(int64_t v, int max_hops) const {
  GR_CHECK(v >= 0 && v < num_nodes_);
  GR_CHECK_GE(max_hops, 0);
  std::vector<int> dist(static_cast<size_t>(num_nodes_), -1);
  std::queue<int64_t> q;
  dist[static_cast<size_t>(v)] = 0;
  q.push(v);
  std::vector<int64_t> out;
  while (!q.empty()) {
    const int64_t u = q.front();
    q.pop();
    if (dist[static_cast<size_t>(u)] >= max_hops) continue;
    for (const int64_t* p = NeighborsBegin(u); p != NeighborsEnd(u); ++p) {
      if (dist[static_cast<size_t>(*p)] < 0) {
        dist[static_cast<size_t>(*p)] = dist[static_cast<size_t>(u)] + 1;
        out.push_back(*p);
        q.push(*p);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Graph::DirectedEdgesWithSelfLoops(std::vector<int64_t>* src,
                                       std::vector<int64_t>* dst) const {
  GR_CHECK(src != nullptr && dst != nullptr);
  src->clear();
  dst->clear();
  src->reserve(edges_.size() * 2 + static_cast<size_t>(num_nodes_));
  dst->reserve(edges_.size() * 2 + static_cast<size_t>(num_nodes_));
  for (const auto& [u, v] : edges_) {
    src->push_back(u);
    dst->push_back(v);
    src->push_back(v);
    dst->push_back(u);
  }
  for (int64_t v = 0; v < num_nodes_; ++v) {
    src->push_back(v);
    dst->push_back(v);
  }
}

double Graph::EdgeHomophily(const std::vector<int64_t>& labels) const {
  GR_CHECK_EQ(static_cast<int64_t>(labels.size()), num_nodes_);
  if (edges_.empty()) return 0.0;
  int64_t same = 0;
  for (const auto& [u, v] : edges_) {
    if (labels[static_cast<size_t>(u)] == labels[static_cast<size_t>(v)]) {
      ++same;
    }
  }
  return static_cast<double>(same) / static_cast<double>(edges_.size());
}

int64_t Graph::CountConnectedComponents() const {
  std::vector<bool> seen(static_cast<size_t>(num_nodes_), false);
  int64_t components = 0;
  std::vector<int64_t> stack;
  for (int64_t s = 0; s < num_nodes_; ++s) {
    if (seen[static_cast<size_t>(s)]) continue;
    ++components;
    stack.push_back(s);
    seen[static_cast<size_t>(s)] = true;
    while (!stack.empty()) {
      const int64_t u = stack.back();
      stack.pop_back();
      for (const int64_t* p = NeighborsBegin(u); p != NeighborsEnd(u); ++p) {
        if (!seen[static_cast<size_t>(*p)]) {
          seen[static_cast<size_t>(*p)] = true;
          stack.push_back(*p);
        }
      }
    }
  }
  return components;
}

void EdgeListDiff(const Graph& before, const Graph& after,
                  std::vector<Edge>* added, std::vector<Edge>* removed) {
  added->clear();
  removed->clear();
  const std::vector<Edge>& a = before.edges();
  const std::vector<Edge>& b = after.edges();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      removed->push_back(a[i++]);
    } else {
      added->push_back(b[j++]);
    }
  }
  for (; i < a.size(); ++i) removed->push_back(a[i]);
  for (; j < b.size(); ++j) added->push_back(b[j]);
}

}  // namespace graph
}  // namespace graphrare

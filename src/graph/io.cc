#include "graph/io.h"

#include <cstdio>
#include <fstream>

#include "common/line_reader.h"
#include "common/string_util.h"

namespace graphrare {
namespace graph {

Status SaveGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal(StrFormat("cannot open '%s' for writing",
                                      path.c_str()));
  }
  out << g.num_nodes() << " " << g.num_edges() << "\n";
  for (const auto& [u, v] : g.edges()) {
    out << u << " " << v << "\n";
  }
  if (!out.good()) {
    return Status::Internal(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  LineReader reader(&in, path);
  std::string line;
  if (!reader.Next(&line)) {
    return reader.Truncated("a 'num_nodes num_edges' header");
  }
  int64_t num_nodes = -1, num_edges = -1;
  if (!ParseIntPair(line, &num_nodes, &num_edges) || num_nodes < 0 ||
      num_edges < 0) {
    return reader.Error(
        "malformed header (want 'num_nodes num_edges', both >= 0)");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges));
  for (int64_t i = 0; i < num_edges; ++i) {
    if (!reader.Next(&line)) {
      return reader.Truncated(StrFormat(
          "%lld edges (found %lld)", static_cast<long long>(num_edges),
          static_cast<long long>(i)));
    }
    int64_t u = 0, v = 0;
    if (!ParseIntPair(line, &u, &v)) {
      return reader.Error("malformed edge (want 'u v')");
    }
    edges.emplace_back(u, v);
  }
  GR_ASSIGN_OR_RETURN(Graph g, Graph::FromEdgeList(num_nodes, edges));
  if (g.num_edges() != num_edges) {
    return Status::InvalidArgument(StrFormat(
        "'%s': %lld edges declared but %lld survived canonicalisation "
        "(duplicates or self loops in file)",
        path.c_str(), static_cast<long long>(num_edges),
        static_cast<long long>(g.num_edges())));
  }
  return g;
}

}  // namespace graph
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Induced-subgraph extraction with local<->global node remapping. This is
// the "block" structure mini-batch training runs on: the neighbor sampler
// (src/data/sampler.h) picks a node set around a batch of seed nodes, and
// the induced subgraph over that set — with all derived operators built by
// the ordinary Graph machinery — is what the GNN forward pass sees.
//
// Local ids are assigned in ascending global-id order. This is a contract,
// not a convenience: CSR rows of the sub-operators then enumerate neighbors
// in the same relative order as the full-graph operators, so with full
// fanout a mini-batch step reproduces the full-graph step bitwise (see
// tests/minibatch_test.cc).

#ifndef GRAPHRARE_GRAPH_SUBGRAPH_H_
#define GRAPHRARE_GRAPH_SUBGRAPH_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "tensor/sparse.h"

namespace graphrare {
namespace graph {

/// An induced subgraph plus the index maps needed to move between the
/// subgraph's local ids and the parent graph's global ids.
struct Subgraph {
  /// Induced topology over local ids [0, nodes.size()).
  Graph graph;
  /// Local -> global map; strictly ascending.
  std::vector<int64_t> nodes;
  /// Local ids of the batch seeds, in the caller's seed order.
  std::vector<int64_t> seed_local;
  /// The same seeds as global ids (caller's order, for label lookups).
  std::vector<int64_t> seed_global;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
  int64_t num_seeds() const { return static_cast<int64_t>(seed_local.size()); }

  /// Local id of a global node, or -1 when the node is not in the subgraph.
  int64_t GlobalToLocal(int64_t global_id) const;

  /// Rows of a global per-node matrix (features) restricted to this
  /// subgraph's nodes, in local-id order.
  tensor::CsrMatrix LocalRows(const tensor::CsrMatrix& global) const;
};

/// Extracts the subgraph of `g` induced by `nodes` (all edges of `g` with
/// both endpoints in the set). `nodes` may be unsorted and contain
/// duplicates; `seeds` must all be members of `nodes`. Fails on
/// out-of-range ids or seeds outside the node set.
Result<Subgraph> InducedSubgraph(const Graph& g, std::vector<int64_t> nodes,
                                 const std::vector<int64_t>& seeds);

/// The trivial "block": every node of `g`, identity local<->global map,
/// identical canonical edge list. This is what a neighbor-sampled block
/// degenerates to at unlimited fanout, so full-graph pipelines are the
/// B=1 special case of block-scoped ones (see core/block_rollout.h).
/// `seeds` must be in range and duplicate-free.
Subgraph FullSubgraph(const Graph& g, const std::vector<int64_t>& seeds);

}  // namespace graph
}  // namespace graphrare

#endif  // GRAPHRARE_GRAPH_SUBGRAPH_H_

// Copyright 2026 The GraphRARE Authors.
//
// Batch edge editing: collects additions and removals against a base graph
// and materialises a new Graph. This is the primitive the topology
// optimisation module (Fig. 4 of the paper) uses every RL step.

#ifndef GRAPHRARE_GRAPH_GRAPH_EDITOR_H_
#define GRAPHRARE_GRAPH_GRAPH_EDITOR_H_

#include <set>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace graphrare {
namespace graph {

/// Accumulates edge edits relative to a base graph. Removals win over
/// additions of the same edge within one batch (an edge both added and
/// removed ends up absent). Edits are idempotent.
class GraphEditor {
 public:
  explicit GraphEditor(const Graph* base);

  /// Queues an undirected edge addition. No-ops on self loops and edges
  /// already present in the base graph. Returns true if queued.
  bool AddEdge(int64_t u, int64_t v);

  /// Queues removal of an existing base edge. Returns true if queued.
  bool RemoveEdge(int64_t u, int64_t v);

  int64_t num_pending_additions() const {
    return static_cast<int64_t>(additions_.size());
  }
  int64_t num_pending_removals() const {
    return static_cast<int64_t>(removals_.size());
  }

  /// Materialises the edited graph.
  Graph Build() const;

 private:
  static Edge Canonical(int64_t u, int64_t v) {
    return u < v ? Edge{u, v} : Edge{v, u};
  }

  const Graph* base_;
  std::set<Edge> additions_;
  std::set<Edge> removals_;
};

}  // namespace graph
}  // namespace graphrare

#endif  // GRAPHRARE_GRAPH_GRAPH_EDITOR_H_

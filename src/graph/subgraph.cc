#include "graph/subgraph.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace graphrare {
namespace graph {

int64_t Subgraph::GlobalToLocal(int64_t global_id) const {
  const auto it = std::lower_bound(nodes.begin(), nodes.end(), global_id);
  if (it == nodes.end() || *it != global_id) return -1;
  return static_cast<int64_t>(it - nodes.begin());
}

tensor::CsrMatrix Subgraph::LocalRows(const tensor::CsrMatrix& global) const {
  return global.SelectRows(nodes);
}

Result<Subgraph> InducedSubgraph(const Graph& g, std::vector<int64_t> nodes,
                                 const std::vector<int64_t>& seeds) {
  for (const int64_t v : nodes) {
    if (v < 0 || v >= g.num_nodes()) {
      return Status::OutOfRange(
          StrFormat("subgraph node %lld outside [0,%lld)",
                    static_cast<long long>(v),
                    static_cast<long long>(g.num_nodes())));
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  Subgraph sub;
  sub.nodes = std::move(nodes);

  sub.seed_local.reserve(seeds.size());
  sub.seed_global.reserve(seeds.size());
  for (const int64_t s : seeds) {
    const auto it =
        std::lower_bound(sub.nodes.begin(), sub.nodes.end(), s);
    if (it == sub.nodes.end() || *it != s) {
      return Status::InvalidArgument(
          StrFormat("seed %lld not in the subgraph node set",
                    static_cast<long long>(s)));
    }
    sub.seed_local.push_back(static_cast<int64_t>(it - sub.nodes.begin()));
    sub.seed_global.push_back(s);
  }

  // Induced edges: scan each member's global adjacency once and keep the
  // u < v direction so every edge is emitted exactly once. Membership tests
  // are binary searches into the sorted node list, so extraction is
  // O(sum_deg * log |nodes|) without touching the rest of the graph.
  std::vector<Edge> edges;
  for (size_t lu = 0; lu < sub.nodes.size(); ++lu) {
    const int64_t u = sub.nodes[lu];
    for (const int64_t* p = g.NeighborsBegin(u); p != g.NeighborsEnd(u);
         ++p) {
      if (*p <= u) continue;
      const auto it =
          std::lower_bound(sub.nodes.begin() + static_cast<int64_t>(lu) + 1,
                           sub.nodes.end(), *p);
      if (it == sub.nodes.end() || *it != *p) continue;
      edges.emplace_back(static_cast<int64_t>(lu),
                         static_cast<int64_t>(it - sub.nodes.begin()));
    }
  }
  GR_ASSIGN_OR_RETURN(
      sub.graph,
      Graph::FromEdgeList(static_cast<int64_t>(sub.nodes.size()), edges));
  return sub;
}

Subgraph FullSubgraph(const Graph& g, const std::vector<int64_t>& seeds) {
  Subgraph sub;
  sub.nodes.resize(static_cast<size_t>(g.num_nodes()));
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    sub.nodes[static_cast<size_t>(v)] = v;
  }
  sub.graph = g;  // identity map: the induced graph IS the graph
  sub.seed_local.reserve(seeds.size());
  sub.seed_global.reserve(seeds.size());
  for (const int64_t s : seeds) {
    GR_CHECK(s >= 0 && s < g.num_nodes())
        << "FullSubgraph: seed " << s << " out of range";
    sub.seed_local.push_back(s);
    sub.seed_global.push_back(s);
  }
  return sub;
}

}  // namespace graph
}  // namespace graphrare

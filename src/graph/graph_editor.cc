#include "graph/graph_editor.h"

#include <algorithm>

#include "common/check.h"

namespace graphrare {
namespace graph {

GraphEditor::GraphEditor(const Graph* base) : base_(base) {
  GR_CHECK(base != nullptr);
}

bool GraphEditor::AddEdge(int64_t u, int64_t v) {
  if (u == v) return false;
  GR_CHECK(u >= 0 && u < base_->num_nodes()) << "AddEdge: bad endpoint " << u;
  GR_CHECK(v >= 0 && v < base_->num_nodes()) << "AddEdge: bad endpoint " << v;
  const Edge e = Canonical(u, v);
  if (base_->HasEdge(u, v)) {
    // Adding an existing edge cancels a queued removal (idempotent add).
    removals_.erase(e);
    return false;
  }
  return additions_.insert(e).second;
}

bool GraphEditor::RemoveEdge(int64_t u, int64_t v) {
  if (u == v) return false;
  GR_CHECK(u >= 0 && u < base_->num_nodes());
  GR_CHECK(v >= 0 && v < base_->num_nodes());
  const Edge e = Canonical(u, v);
  if (!base_->HasEdge(u, v)) {
    // Removing a not-yet-materialised addition simply unqueues it.
    additions_.erase(e);
    return false;
  }
  return removals_.insert(e).second;
}

Graph GraphEditor::Build() const {
  std::vector<Edge> edges;
  edges.reserve(base_->edges().size() + additions_.size());
  for (const auto& e : base_->edges()) {
    if (!removals_.count(e)) edges.push_back(e);
  }
  for (const auto& e : additions_) {
    if (!removals_.count(e)) edges.push_back(e);
  }
  return Graph::FromEdgeListOrDie(base_->num_nodes(), edges);
}

}  // namespace graph
}  // namespace graphrare

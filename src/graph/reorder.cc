#include "graph/reorder.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace graphrare {
namespace graph {

namespace {

/// Nodes sorted by ascending (degree, id) — the deterministic seed order
/// shared by both strategies.
std::vector<int64_t> NodesByAscendingDegree(const Graph& g) {
  std::vector<int64_t> nodes(static_cast<size_t>(g.num_nodes()));
  std::iota(nodes.begin(), nodes.end(), int64_t{0});
  std::sort(nodes.begin(), nodes.end(), [&g](int64_t a, int64_t b) {
    const int64_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  return nodes;
}

}  // namespace

std::vector<int64_t> DegreeSortPermutation(const Graph& g) {
  std::vector<int64_t> nodes(static_cast<size_t>(g.num_nodes()));
  std::iota(nodes.begin(), nodes.end(), int64_t{0});
  std::sort(nodes.begin(), nodes.end(), [&g](int64_t a, int64_t b) {
    const int64_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });
  std::vector<int64_t> perm(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    perm[static_cast<size_t>(nodes[i])] = static_cast<int64_t>(i);
  }
  return perm;
}

std::vector<int64_t> RcmPermutation(const Graph& g) {
  const int64_t n = g.num_nodes();
  std::vector<int64_t> order;  // Cuthill-McKee visit order
  order.reserve(static_cast<size_t>(n));
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<int64_t> nbrs;
  size_t head = 0;
  for (const int64_t s : NodesByAscendingDegree(g)) {
    if (visited[static_cast<size_t>(s)]) continue;
    visited[static_cast<size_t>(s)] = 1;
    order.push_back(s);
    while (head < order.size()) {
      const int64_t u = order[head++];
      nbrs.clear();
      for (const int64_t* p = g.NeighborsBegin(u); p != g.NeighborsEnd(u);
           ++p) {
        if (!visited[static_cast<size_t>(*p)]) nbrs.push_back(*p);
      }
      std::sort(nbrs.begin(), nbrs.end(), [&g](int64_t a, int64_t b) {
        const int64_t da = g.Degree(a), db = g.Degree(b);
        return da != db ? da < db : a < b;
      });
      for (const int64_t v : nbrs) {
        visited[static_cast<size_t>(v)] = 1;
        order.push_back(v);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (size_t i = 0; i < order.size(); ++i) {
    perm[static_cast<size_t>(order[i])] = static_cast<int64_t>(i);
  }
  return perm;
}

std::vector<int64_t> ReorderPermutation(const Graph& g, ReorderKind kind) {
  switch (kind) {
    case ReorderKind::kDegreeSort:
      return DegreeSortPermutation(g);
    case ReorderKind::kRcm:
      return RcmPermutation(g);
  }
  GR_CHECK(false) << "unknown ReorderKind";
  return {};
}

std::vector<int64_t> InversePermutation(const std::vector<int64_t>& perm) {
  const int64_t n = static_cast<int64_t>(perm.size());
  std::vector<int64_t> inv(perm.size(), int64_t{-1});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t p = perm[static_cast<size_t>(i)];
    GR_CHECK(p >= 0 && p < n) << "permutation value " << p << " out of range";
    GR_CHECK_EQ(inv[static_cast<size_t>(p)], -1)
        << "duplicate permutation value " << p;
    inv[static_cast<size_t>(p)] = i;
  }
  return inv;
}

Graph PermuteGraph(const Graph& g, const std::vector<int64_t>& perm) {
  GR_CHECK_EQ(static_cast<int64_t>(perm.size()), g.num_nodes());
  // Validate via InversePermutation (range + duplicate checks).
  (void)InversePermutation(perm);
  std::vector<Edge> edges;
  edges.reserve(g.edges().size());
  for (const auto& [u, v] : g.edges()) {
    edges.emplace_back(perm[static_cast<size_t>(u)],
                       perm[static_cast<size_t>(v)]);
  }
  return Graph::FromEdgeListOrDie(g.num_nodes(), edges);
}

tensor::CsrMatrix ReorderCsr(const tensor::CsrMatrix& m,
                             const std::vector<int64_t>& perm) {
  GR_CHECK_EQ(m.rows(), m.cols()) << "ReorderCsr needs a square matrix";
  return m.Permuted(perm, /*permute_rows=*/true, /*permute_cols=*/true);
}

}  // namespace graph
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Immutable undirected graph topology. Construction canonicalises the edge
// list (u < v, deduplicated, no self loops); derived operators used by the
// GNN layers (normalised adjacency, 2-hop adjacency, ...) are built lazily
// and cached. Rewiring never mutates a Graph — the GraphEditor produces a
// new one — so cached operators can be shared safely across training steps.

#ifndef GRAPHRARE_GRAPH_GRAPH_H_
#define GRAPHRARE_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "tensor/sparse.h"

namespace graphrare {
namespace graph {

/// An undirected edge with canonical ordering (u <= v after normalisation).
using Edge = std::pair<int64_t, int64_t>;

/// Immutable undirected simple graph (no self loops, no multi-edges).
class Graph {
 public:
  Graph() : num_nodes_(0) {}

  /// Builds from an edge list. Edges are canonicalised: (u,v) and (v,u)
  /// collapse, self loops are rejected, duplicates are deduplicated.
  /// Fails if any endpoint is outside [0, num_nodes).
  static Result<Graph> FromEdgeList(int64_t num_nodes,
                                    const std::vector<Edge>& edges);

  /// Same as FromEdgeList but aborts on invalid input (test convenience).
  static Graph FromEdgeListOrDie(int64_t num_nodes,
                                 const std::vector<Edge>& edges);

  int64_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges.
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Canonical (u < v) sorted edge list.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbors of v, sorted ascending.
  const int64_t* NeighborsBegin(int64_t v) const;
  const int64_t* NeighborsEnd(int64_t v) const;
  std::vector<int64_t> Neighbors(int64_t v) const;

  int64_t Degree(int64_t v) const;
  int64_t MaxDegree() const;
  bool HasEdge(int64_t u, int64_t v) const;

  /// Binary symmetric adjacency (both directions, no self loops).
  std::shared_ptr<const tensor::CsrMatrix> Adjacency() const;

  /// GCN operator D^{-1/2} (A + I) D^{-1/2} with degrees from A + I.
  std::shared_ptr<const tensor::CsrMatrix> NormalizedAdjacency() const;

  /// Row-normalised adjacency D^{-1} A (mean aggregation, no self loops).
  /// Isolated nodes produce an all-zero row.
  std::shared_ptr<const tensor::CsrMatrix> RowNormalizedAdjacency() const;

  /// Strict 2-hop neighbourhood operator: (i,j) present iff a length-2 path
  /// exists, j != i, and (i,j) is not a 1-hop edge (H2GCN's N2). Binary.
  std::shared_ptr<const tensor::CsrMatrix> TwoHopAdjacency() const;

  /// Row-normalised strict 2-hop operator.
  std::shared_ptr<const tensor::CsrMatrix> RowNormalizedTwoHop() const;

  /// Nodes at BFS distance exactly <= max_hops from v, excluding v itself.
  /// Sorted ascending.
  std::vector<int64_t> KHopNeighbors(int64_t v, int max_hops) const;

  /// Directed edge arrays (src, dst) covering both directions of each edge
  /// plus one self loop per node (GAT attention support).
  void DirectedEdgesWithSelfLoops(std::vector<int64_t>* src,
                                  std::vector<int64_t>* dst) const;

  /// Fraction of edges whose endpoints share a label (Eq. 1 of the paper).
  /// labels.size() must equal num_nodes. Returns 0 for edgeless graphs.
  double EdgeHomophily(const std::vector<int64_t>& labels) const;

  /// Number of connected components.
  int64_t CountConnectedComponents() const;

 private:
  void BuildCsr();

  int64_t num_nodes_;
  std::vector<Edge> edges_;            // canonical u < v, sorted
  std::vector<int64_t> adj_row_ptr_;   // CSR over both edge directions
  std::vector<int64_t> adj_col_;

  mutable std::shared_ptr<const tensor::CsrMatrix> adjacency_;
  mutable std::shared_ptr<const tensor::CsrMatrix> normalized_;
  mutable std::shared_ptr<const tensor::CsrMatrix> row_normalized_;
  mutable std::shared_ptr<const tensor::CsrMatrix> two_hop_;
  mutable std::shared_ptr<const tensor::CsrMatrix> row_normalized_two_hop_;
};

/// Sorted-merge diff of two graphs' canonical edge lists: `added` receives
/// the edges present in `after` but not `before`, `removed` the reverse.
/// Both outputs are cleared first and come back in canonical (u < v) sorted
/// order. O(E) single pass; the graphs must have the same node count.
void EdgeListDiff(const Graph& before, const Graph& after,
                  std::vector<Edge>* added, std::vector<Edge>* removed);

}  // namespace graph
}  // namespace graphrare

#endif  // GRAPHRARE_GRAPH_GRAPH_H_

// Copyright 2026 The GraphRARE Authors.
//
// Opt-in node reordering for CSR locality. The sparse kernels walk
// adjacency rows in node-id order and gather feature rows by column id, so
// a labelling that keeps topologically close nodes numerically close turns
// random gathers into near-sequential ones. Reordering is OPT-IN
// (--csr-reorder in the CLI): relabelling nodes permutes every CSR row and
// changes the ascending-column accumulation order inside SpMM and the
// segment reductions, so reordered results match natural-order results
// only to float tolerance, not bitwise. The permutation machinery itself
// is exact — values move, no arithmetic happens — and round-trips
// bit-for-bit (see ReorderCsr / InversePermutation).

#ifndef GRAPHRARE_GRAPH_REORDER_H_
#define GRAPHRARE_GRAPH_REORDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"

namespace graphrare {
namespace graph {

/// Reordering strategies. Permutations map old node id -> new node id.
enum class ReorderKind {
  /// Nodes sorted by descending degree (ties by ascending id): hub rows —
  /// the ones whose feature rows are gathered most — become a dense prefix
  /// that stays cache-resident. Cheap, effective on skewed graphs.
  kDegreeSort,
  /// Reverse Cuthill-McKee: per-component BFS from a minimum-degree seed,
  /// neighbours visited in ascending-degree order, final order reversed.
  /// Minimises bandwidth, so each row's neighbour gathers land in a narrow
  /// index window. The classic choice for mesh-like graphs.
  kRcm,
};

/// Permutation (old id -> new id) sorting nodes by descending degree,
/// ties broken by ascending id. Deterministic.
std::vector<int64_t> DegreeSortPermutation(const Graph& g);

/// Reverse Cuthill-McKee permutation (old id -> new id). Components are
/// seeded in ascending (degree, id) order; within a BFS level neighbours
/// are visited in ascending (degree, id) order. Deterministic.
std::vector<int64_t> RcmPermutation(const Graph& g);

/// Dispatches on `kind`.
std::vector<int64_t> ReorderPermutation(const Graph& g, ReorderKind kind);

/// Inverse permutation: InversePermutation(p)[p[i]] == i. Checks that `p`
/// is a permutation of [0, n).
std::vector<int64_t> InversePermutation(const std::vector<int64_t>& perm);

/// Relabels every node: edge (u, v) becomes (perm[u], perm[v]). The result
/// is the same topology under new ids; adjacency construction (and the
/// partitioned block path, whose BFS batches follow the new ids) then runs
/// entirely in the reordered space.
Graph PermuteGraph(const Graph& g, const std::vector<int64_t>& perm);

/// Symmetric CSR permutation: result(perm[r], perm[c]) = m(r, c), values
/// bit-exact. ReorderCsr(ReorderCsr(m, p), InversePermutation(p)) == m
/// bitwise. Requires a square matrix.
tensor::CsrMatrix ReorderCsr(const tensor::CsrMatrix& m,
                             const std::vector<int64_t>& perm);

}  // namespace graph
}  // namespace graphrare

#endif  // GRAPHRARE_GRAPH_REORDER_H_

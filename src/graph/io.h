// Copyright 2026 The GraphRARE Authors.
//
// Plain-text persistence for graphs and datasets, so optimized topologies
// can be exported to downstream tools (and back). Formats:
//
//   graph:   first line "num_nodes num_edges", then one "u v" pair per line.
//   dataset: "# graphrare-dataset v1" header, then sections
//            "nodes/classes/features" counts, edge list, labels, and a
//            sparse feature listing "node dim" per active entry.

#ifndef GRAPHRARE_GRAPH_IO_H_
#define GRAPHRARE_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace graphrare {
namespace graph {

/// Writes the canonical edge list to `path`.
Status SaveGraph(const Graph& g, const std::string& path);

/// Reads a graph written by SaveGraph.
Result<Graph> LoadGraph(const std::string& path);

}  // namespace graph
}  // namespace graphrare

#endif  // GRAPHRARE_GRAPH_IO_H_

// Copyright 2026 The GraphRARE Authors.
//
// Dataset container: topology + node features + labels, matching the
// paper's G = (V, E, X, A) with class labels y_v.

#ifndef GRAPHRARE_DATA_DATASET_H_
#define GRAPHRARE_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace graphrare {
namespace data {

/// A node-classification dataset. The graph topology is the *original*
/// topology G_0; rewired graphs produced during training reference the same
/// features/labels.
struct Dataset {
  std::string name;
  graph::Graph graph;
  tensor::Tensor features;      ///< N x d (dense; binary bag-of-words)
  std::vector<int64_t> labels;  ///< size N, values in [0, num_classes)
  int64_t num_classes = 0;

  int64_t num_nodes() const { return graph.num_nodes(); }
  int64_t num_features() const { return features.cols(); }

  /// Sparse view of the features (built lazily, cached). The generator's
  /// bag-of-words features are ~95% zeros, so first-layer X*W products run
  /// as SpMM.
  std::shared_ptr<const tensor::CsrMatrix> FeaturesCsr() const;

  /// Edge homophily ratio (Eq. 1) of the original topology.
  double Homophily() const { return graph.EdgeHomophily(labels); }

 private:
  mutable std::shared_ptr<const tensor::CsrMatrix> features_csr_;
};

/// One train/validation/test partition of node indices.
struct Split {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_DATASET_H_

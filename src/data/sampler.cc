#include "data/sampler.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "common/string_util.h"

namespace graphrare {
namespace data {

namespace {

/// SplitMix64-style finalizer used to derive independent per-node streams.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t StreamSeed(uint64_t seed, uint64_t block, uint64_t layer,
                    uint64_t node) {
  return Mix(Mix(Mix(seed ^ 0x5EEDB10CULL) ^ block) ^
             (layer * 0x9E3779B97F4A7C15ULL + node));
}

}  // namespace

Status SamplerOptions::Validate() const {
  if (fanouts.empty()) {
    return Status::InvalidArgument("fanouts must have at least one layer");
  }
  for (const int64_t f : fanouts) {
    if (f < 1 && f != -1) {
      return Status::InvalidArgument(
          "every fanout must be >= 1 (or -1 for unlimited)");
    }
  }
  return Status::OK();
}

NeighborSampler::NeighborSampler(const graph::Graph* graph,
                                 SamplerOptions options)
    : graph_(graph), options_(std::move(options)) {
  GR_CHECK(graph != nullptr);
  GR_CHECK_OK(options_.Validate());
}

std::vector<int64_t> NeighborSampler::SampleNeighbors(const graph::Graph& g,
                                                      int64_t v,
                                                      int64_t fanout,
                                                      bool replace,
                                                      Rng* rng) {
  GR_CHECK(rng != nullptr);
  GR_CHECK(fanout >= 1 || fanout == -1);
  const int64_t deg = g.Degree(v);
  if (deg == 0) return {};
  const int64_t* begin = g.NeighborsBegin(v);
  if (fanout == -1) return std::vector<int64_t>(begin, begin + deg);
  if (replace) {
    std::vector<int64_t> out;
    out.reserve(static_cast<size_t>(fanout));
    for (int64_t i = 0; i < fanout; ++i) {
      out.push_back(begin[rng->UniformInt(static_cast<uint64_t>(deg))]);
    }
    return out;
  }
  if (fanout >= deg) return std::vector<int64_t>(begin, begin + deg);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(fanout));
  if (fanout * 4 <= deg) {
    // Sparse draw: rejection-sample distinct positions in O(fanout)
    // expected time instead of copying the whole neighbor list — hubs
    // with huge degrees must not re-couple per-step cost to the
    // adjacency.
    std::unordered_set<int64_t> picked;
    picked.reserve(static_cast<size_t>(fanout) * 2);
    while (static_cast<int64_t>(out.size()) < fanout) {
      const int64_t j =
          static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(deg)));
      if (picked.insert(j).second) out.push_back(begin[j]);
    }
    return out;
  }
  std::vector<int64_t> pool(begin, begin + deg);
  for (int64_t i = 0; i < fanout; ++i) {
    const int64_t j = rng->UniformInt(i, deg - 1);
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    out.push_back(pool[static_cast<size_t>(i)]);
  }
  return out;
}

graph::Subgraph NeighborSampler::SampleBlock(
    const std::vector<int64_t>& seeds) {
  return SampleBlockAt(seeds, block_counter_++);
}

graph::Subgraph NeighborSampler::SampleBlockAt(
    const std::vector<int64_t>& seeds, uint64_t block_index) {
  GR_CHECK(!seeds.empty()) << "SampleBlock: empty seed set";
  const int64_t n = graph_->num_nodes();
  const uint64_t block = block_index;

  // Versioned membership marks double as the node-set accumulator (the
  // array is allocated once and bumping the version clears it in O(1));
  // the frontier ordering is deterministic because marks are only set in
  // the serial merge phase below.
  if (static_cast<int64_t>(mark_.size()) != n) {
    mark_.assign(static_cast<size_t>(n), 0);
    mark_version_ = 0;
  }
  const uint64_t version = ++mark_version_;
  const auto in_set = [&](int64_t v) {
    return mark_[static_cast<size_t>(v)] == version;
  };
  std::vector<int64_t> node_set;
  node_set.reserve(seeds.size() * 4);
  std::vector<int64_t> frontier;
  frontier.reserve(seeds.size());
  for (const int64_t s : seeds) {
    GR_CHECK(s >= 0 && s < n) << "SampleBlock: seed " << s << " out of range";
    GR_CHECK(!in_set(s)) << "SampleBlock: duplicate seed " << s;
    mark_[static_cast<size_t>(s)] = version;
    node_set.push_back(s);
    frontier.push_back(s);
  }

  layers_.clear();
  layers_.push_back(frontier);

  for (size_t layer = 0; layer < options_.fanouts.size(); ++layer) {
    if (frontier.empty()) {
      layers_.emplace_back();  // record the empty expansion and keep going
      continue;
    }
    const int64_t fanout = options_.fanouts[layer];
    // Per-frontier-node draws are independent streams, so the expansion
    // parallelises without any cross-thread RNG state; dynamic chunking
    // balances hub nodes. Small frontiers stay serial (grain == n).
    const int64_t fsize = static_cast<int64_t>(frontier.size());
    std::vector<std::vector<int64_t>> sampled(frontier.size());
    ParallelForDynamic(fsize, fsize > 256 ? 64 : fsize,
                       [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const int64_t u = frontier[static_cast<size_t>(i)];
        Rng rng(StreamSeed(options_.seed, block, layer,
                           static_cast<uint64_t>(u)));
        sampled[static_cast<size_t>(i)] =
            SampleNeighbors(*graph_, u, fanout, options_.replace, &rng);
      }
    });
    // Serial merge in frontier order keeps the result independent of the
    // thread schedule.
    std::vector<int64_t> next;
    for (const auto& neighbors : sampled) {
      for (const int64_t v : neighbors) {
        if (in_set(v)) continue;
        mark_[static_cast<size_t>(v)] = version;
        node_set.push_back(v);
        next.push_back(v);
      }
    }
    std::sort(next.begin(), next.end());
    frontier = next;
    layers_.push_back(std::move(next));
  }

  auto block_result = graph::InducedSubgraph(*graph_, std::move(node_set),
                                             seeds);
  GR_CHECK(block_result.ok()) << block_result.status().ToString();
  return std::move(block_result).value();
}

std::vector<std::vector<int64_t>> NeighborSampler::MakeBatches(
    std::vector<int64_t> indices, int64_t batch_size, bool shuffle,
    Rng* rng) {
  GR_CHECK_GE(batch_size, 1);
  if (shuffle) {
    GR_CHECK(rng != nullptr);
    rng->Shuffle(&indices);
  }
  std::vector<std::vector<int64_t>> batches;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(indices.size(), begin + static_cast<size_t>(batch_size));
    batches.emplace_back(indices.begin() + static_cast<int64_t>(begin),
                         indices.begin() + static_cast<int64_t>(end));
  }
  return batches;
}

}  // namespace data
}  // namespace graphrare

#include "data/partitioner.h"

#include <algorithm>

#include "data/sampler.h"

namespace graphrare {
namespace data {

Status PartitionerOptions::Validate() const {
  if (batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  return Status::OK();
}

Partitioner::Partitioner(const graph::Graph* graph,
                         std::vector<int64_t> train_nodes,
                         const PartitionerOptions& options)
    : graph_(graph),
      train_(std::move(train_nodes)),
      options_(options),
      // The legacy runner seeds its shuffle RNG as seed ^ 0xB10C5EED; both
      // modes keep that derivation so independent mode replays the exact
      // historical batch stream.
      rng_(options.seed ^ 0xB10C5EEDULL) {
  GR_CHECK(graph != nullptr);
  GR_CHECK_OK(options_.Validate());
  GR_CHECK(!train_.empty()) << "Partitioner: empty train set";
  const int64_t n = graph_->num_nodes();
  if (options_.mode == PartitionMode::kLocality) {
    assigned_.assign(static_cast<size_t>(n), 0);
    visited_.assign(static_cast<size_t>(n), 0);
    is_train_.assign(static_cast<size_t>(n), 0);
  }
  for (const int64_t v : train_) {
    GR_CHECK(v >= 0 && v < n) << "Partitioner: train node " << v
                              << " out of range";
    if (options_.mode == PartitionMode::kLocality) {
      GR_CHECK(!is_train_[static_cast<size_t>(v)])
          << "Partitioner: duplicate train node " << v;
      is_train_[static_cast<size_t>(v)] = 1;
    }
  }
}

int64_t Partitioner::batches_per_epoch() const {
  return (static_cast<int64_t>(train_.size()) + options_.batch_size - 1) /
         options_.batch_size;
}

std::vector<int64_t> Partitioner::NextBatch() {
  if (pending_.empty()) Refill();
  std::vector<int64_t> out = std::move(pending_.back());
  pending_.pop_back();
  return out;
}

std::vector<std::vector<int64_t>> Partitioner::NextBatches(int n) {
  std::vector<std::vector<int64_t>> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(NextBatch());
  return out;
}

void Partitioner::Refill() {
  pending_ = options_.mode == PartitionMode::kIndependent
                 ? NeighborSampler::MakeBatches(train_, options_.batch_size,
                                                /*shuffle=*/true, &rng_)
                 : BuildLocalityEpoch();
  std::reverse(pending_.begin(), pending_.end());
}

std::vector<std::vector<int64_t>> Partitioner::BuildLocalityEpoch() {
  // Shuffled train order is the deterministic tie-break: it decides which
  // unassigned node roots the next BFS region, and nothing else in the
  // construction consults the RNG, so the epoch is a pure function of
  // (graph, train set, rng state).
  std::vector<int64_t> order = train_;
  rng_.Shuffle(&order);

  const uint64_t assigned = ++assigned_version_;
  const auto is_assigned = [&](int64_t v) {
    return assigned_[static_cast<size_t>(v)] == assigned;
  };

  // Cap on dequeued nodes per BFS growth attempt: with a sparse train set
  // a single region could otherwise sweep the whole component hunting for
  // its last few seeds. Hitting the cap just moves on to the next root in
  // shuffled order, continuing the same (partially filled) batch.
  const int64_t visit_cap = options_.batch_size * 8 + 256;

  std::vector<std::vector<int64_t>> batches;
  batches.reserve(static_cast<size_t>(batches_per_epoch()));
  std::vector<int64_t> current;
  current.reserve(static_cast<size_t>(options_.batch_size));
  std::vector<int64_t> queue;

  for (const int64_t root : order) {
    if (is_assigned(root)) continue;
    const uint64_t visited = ++visited_version_;
    queue.clear();
    queue.push_back(root);
    visited_[static_cast<size_t>(root)] = visited;
    size_t head = 0;
    int64_t dequeued = 0;
    while (head < queue.size() && dequeued < visit_cap) {
      const int64_t u = queue[head++];
      ++dequeued;
      if (is_train_[static_cast<size_t>(u)] && !is_assigned(u)) {
        assigned_[static_cast<size_t>(u)] = assigned;
        current.push_back(u);
        if (static_cast<int64_t>(current.size()) == options_.batch_size) {
          batches.push_back(std::move(current));
          current.clear();
          current.reserve(static_cast<size_t>(options_.batch_size));
          break;
        }
      }
      // CSR neighbors are sorted ascending, so expansion order (and hence
      // the batch's seed order) is deterministic.
      for (const int64_t* p = graph_->NeighborsBegin(u);
           p != graph_->NeighborsEnd(u); ++p) {
        if (visited_[static_cast<size_t>(*p)] != visited) {
          visited_[static_cast<size_t>(*p)] = visited;
          queue.push_back(*p);
        }
      }
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

}  // namespace data
}  // namespace graphrare

#include "data/splits.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace graphrare {
namespace data {

std::vector<Split> MakeSplits(const std::vector<int64_t>& labels,
                              int64_t num_classes,
                              const SplitOptions& options) {
  GR_CHECK_GT(num_classes, 0);
  GR_CHECK(options.train_fraction > 0.0 && options.val_fraction >= 0.0 &&
           options.train_fraction + options.val_fraction < 1.0)
      << "invalid split fractions";
  GR_CHECK_GT(options.num_splits, 0);

  std::vector<std::vector<int64_t>> by_class(
      static_cast<size_t>(num_classes));
  for (size_t i = 0; i < labels.size(); ++i) {
    GR_CHECK(labels[i] >= 0 && labels[i] < num_classes)
        << "label out of range at node " << i;
    by_class[static_cast<size_t>(labels[i])].push_back(
        static_cast<int64_t>(i));
  }

  Rng rng(options.seed);
  std::vector<Split> splits;
  splits.reserve(static_cast<size_t>(options.num_splits));
  for (int s = 0; s < options.num_splits; ++s) {
    Rng split_rng = rng.Fork();
    Split split;
    for (auto members : by_class) {
      if (members.empty()) continue;
      split_rng.Shuffle(&members);
      const int64_t m = static_cast<int64_t>(members.size());
      int64_t n_train = static_cast<int64_t>(
          options.train_fraction * static_cast<double>(m));
      int64_t n_val = static_cast<int64_t>(
          options.val_fraction * static_cast<double>(m));
      if (m >= 3) {
        // Guarantee representation of every class everywhere.
        n_train = std::max<int64_t>(n_train, 1);
        n_val = std::max<int64_t>(n_val, 1);
        if (n_train + n_val >= m) {
          n_val = std::max<int64_t>(1, m - n_train - 1);
        }
        if (n_train + n_val >= m) {
          n_train = m - n_val - 1;
        }
      } else {
        n_train = std::min(n_train, m);
        n_val = std::min(n_val, m - n_train);
      }
      for (int64_t i = 0; i < m; ++i) {
        if (i < n_train) {
          split.train.push_back(members[static_cast<size_t>(i)]);
        } else if (i < n_train + n_val) {
          split.val.push_back(members[static_cast<size_t>(i)]);
        } else {
          split.test.push_back(members[static_cast<size_t>(i)]);
        }
      }
    }
    std::sort(split.train.begin(), split.train.end());
    std::sort(split.val.begin(), split.val.end());
    std::sort(split.test.begin(), split.test.end());
    splits.push_back(std::move(split));
  }
  return splits;
}

}  // namespace data
}  // namespace graphrare

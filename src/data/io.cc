#include "data/io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace graphrare {
namespace data {

namespace {
constexpr char kMagic[] = "# graphrare-dataset v1";
}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  for (int64_t i = 0; i < dataset.features.numel(); ++i) {
    const float v = dataset.features[i];
    if (v != 0.0f && v != 1.0f) {
      return Status::InvalidArgument(
          "SaveDataset requires binary features (bag-of-words)");
    }
  }
  std::ofstream out(path);
  if (!out) {
    return Status::Internal(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out << kMagic << "\n";
  out << "name " << dataset.name << "\n";
  out << "nodes " << dataset.num_nodes() << " edges "
      << dataset.graph.num_edges() << " features " << dataset.num_features()
      << " classes " << dataset.num_classes << "\n";
  out << "labels\n";
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    out << dataset.labels[i] << (i + 1 == dataset.labels.size() ? "\n" : " ");
  }
  out << "edges\n";
  for (const auto& [u, v] : dataset.graph.edges()) {
    out << u << " " << v << "\n";
  }
  out << "features\n";
  for (int64_t i = 0; i < dataset.features.rows(); ++i) {
    const float* row = dataset.features.row(i);
    for (int64_t j = 0; j < dataset.features.cols(); ++j) {
      if (row[j] != 0.0f) out << i << " " << j << "\n";
    }
  }
  out << "end\n";
  if (!out.good()) {
    return Status::Internal(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::InvalidArgument(
        StrFormat("'%s': missing dataset header", path.c_str()));
  }
  std::string keyword, name;
  if (!(in >> keyword >> name) || keyword != "name") {
    return Status::InvalidArgument("malformed name line");
  }
  int64_t n = 0, e = 0, d = 0, c = 0;
  std::string kn, ke, kd, kc;
  if (!(in >> kn >> n >> ke >> e >> kd >> d >> kc >> c) || kn != "nodes" ||
      ke != "edges" || kd != "features" || kc != "classes" || n < 0 ||
      e < 0 || d < 1 || c < 1) {
    return Status::InvalidArgument("malformed counts line");
  }

  if (!(in >> keyword) || keyword != "labels") {
    return Status::InvalidArgument("expected labels section");
  }
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (auto& y : labels) {
    if (!(in >> y) || y < 0 || y >= c) {
      return Status::InvalidArgument("malformed label");
    }
  }

  if (!(in >> keyword) || keyword != "edges") {
    return Status::InvalidArgument("expected edges section");
  }
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(e));
  for (int64_t i = 0; i < e; ++i) {
    int64_t u, v;
    if (!(in >> u >> v)) {
      return Status::InvalidArgument("truncated edge list");
    }
    edges.emplace_back(u, v);
  }

  if (!(in >> keyword) || keyword != "features") {
    return Status::InvalidArgument("expected features section");
  }
  tensor::Tensor x(n, d);
  while (in >> keyword && keyword != "end") {
    // keyword holds the node id; read the dimension.
    int64_t i = -1, j = -1;
    std::istringstream node_stream(keyword);
    if (!(node_stream >> i) || !(in >> j) || i < 0 || i >= n || j < 0 ||
        j >= d) {
      return Status::InvalidArgument("malformed feature entry");
    }
    x.at(i, j) = 1.0f;
  }
  if (keyword != "end") {
    return Status::InvalidArgument("missing end marker");
  }

  GR_ASSIGN_OR_RETURN(graph::Graph g, graph::Graph::FromEdgeList(n, edges));
  Dataset ds;
  ds.name = name;
  ds.graph = std::move(g);
  ds.features = std::move(x);
  ds.labels = std::move(labels);
  ds.num_classes = c;
  return ds;
}

}  // namespace data
}  // namespace graphrare

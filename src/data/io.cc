#include "data/io.h"

#include <fstream>
#include <sstream>

#include "common/line_reader.h"
#include "common/string_util.h"

namespace graphrare {
namespace data {

namespace {
constexpr char kMagic[] = "# graphrare-dataset v1";
}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  for (int64_t i = 0; i < dataset.features.numel(); ++i) {
    const float v = dataset.features[i];
    if (v != 0.0f && v != 1.0f) {
      return Status::InvalidArgument(
          "SaveDataset requires binary features (bag-of-words)");
    }
  }
  std::ofstream out(path);
  if (!out) {
    return Status::Internal(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out << kMagic << "\n";
  out << "name " << dataset.name << "\n";
  out << "nodes " << dataset.num_nodes() << " edges "
      << dataset.graph.num_edges() << " features " << dataset.num_features()
      << " classes " << dataset.num_classes << "\n";
  out << "labels\n";
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    out << dataset.labels[i] << (i + 1 == dataset.labels.size() ? "\n" : " ");
  }
  out << "edges\n";
  for (const auto& [u, v] : dataset.graph.edges()) {
    out << u << " " << v << "\n";
  }
  out << "features\n";
  for (int64_t i = 0; i < dataset.features.rows(); ++i) {
    const float* row = dataset.features.row(i);
    for (int64_t j = 0; j < dataset.features.cols(); ++j) {
      if (row[j] != 0.0f) out << i << " " << j << "\n";
    }
  }
  out << "end\n";
  if (!out.good()) {
    return Status::Internal(StrFormat("write failed for '%s'", path.c_str()));
  }
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  LineReader reader(&in, path);
  std::string line;

  if (!reader.Next(&line)) return reader.Truncated("the dataset header");
  if (line != kMagic) {
    return reader.Error(StrFormat("missing '%s' header", kMagic));
  }

  if (!reader.Next(&line)) return reader.Truncated("a 'name <name>' line");
  std::string keyword, name, rest;
  {
    std::istringstream ss(line);
    if (!(ss >> keyword >> name) || keyword != "name" || (ss >> rest)) {
      return reader.Error("malformed name line (want 'name <name>')");
    }
  }

  if (!reader.Next(&line)) return reader.Truncated("the counts line");
  int64_t n = 0, e = 0, d = 0, c = 0;
  {
    std::string kn, ke, kd, kc;
    std::istringstream ss(line);
    if (!(ss >> kn >> n >> ke >> e >> kd >> d >> kc >> c) ||
        kn != "nodes" || ke != "edges" || kd != "features" ||
        kc != "classes" || n < 0 || e < 0 || d < 1 || c < 1 ||
        (ss >> rest)) {
      return reader.Error(
          "malformed counts line (want 'nodes N edges E features D "
          "classes C')");
    }
  }

  if (!reader.Next(&line)) return reader.Truncated("the labels section");
  if (line != "labels") {
    return reader.Error("expected 'labels' section marker");
  }
  std::vector<int64_t> labels(static_cast<size_t>(n));
  if (n > 0) {
    if (!reader.Next(&line)) return reader.Truncated("the label values");
    std::istringstream ss(line);
    for (int64_t i = 0; i < n; ++i) {
      int64_t y = -1;
      if (!(ss >> y)) {
        return reader.Error(StrFormat(
            "expected %lld labels, line ends after %lld",
            static_cast<long long>(n), static_cast<long long>(i)));
      }
      if (y < 0 || y >= c) {
        return reader.Error(StrFormat(
            "label %lld (position %lld) outside [0, %lld)",
            static_cast<long long>(y), static_cast<long long>(i),
            static_cast<long long>(c)));
      }
      labels[static_cast<size_t>(i)] = y;
    }
    if (ss >> rest) {
      return reader.Error(StrFormat("trailing data after %lld labels",
                                    static_cast<long long>(n)));
    }
  }

  if (!reader.Next(&line)) return reader.Truncated("the edges section");
  if (line != "edges") {
    return reader.Error("expected 'edges' section marker");
  }
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(e));
  for (int64_t i = 0; i < e; ++i) {
    if (!reader.Next(&line)) {
      return reader.Truncated(StrFormat(
          "%lld edges (found %lld)", static_cast<long long>(e),
          static_cast<long long>(i)));
    }
    int64_t u = 0, v = 0;
    if (!ParseIntPair(line, &u, &v)) {
      return reader.Error("malformed edge (want 'u v')");
    }
    edges.emplace_back(u, v);
  }

  if (!reader.Next(&line)) return reader.Truncated("the features section");
  if (line != "features") {
    return reader.Error("expected 'features' section marker");
  }
  tensor::Tensor x(n, d);
  for (;;) {
    if (!reader.Next(&line)) {
      return reader.Truncated("an 'end' marker after the features");
    }
    if (line == "end") break;
    int64_t i = -1, j = -1;
    if (!ParseIntPair(line, &i, &j)) {
      return reader.Error("malformed feature entry (want 'node dim')");
    }
    if (i < 0 || i >= n || j < 0 || j >= d) {
      return reader.Error(StrFormat(
          "feature entry (%lld, %lld) outside %lld x %lld",
          static_cast<long long>(i), static_cast<long long>(j),
          static_cast<long long>(n), static_cast<long long>(d)));
    }
    x.at(i, j) = 1.0f;
  }

  GR_ASSIGN_OR_RETURN(graph::Graph g, graph::Graph::FromEdgeList(n, edges));
  Dataset ds;
  ds.name = name;
  ds.graph = std::move(g);
  ds.features = std::move(x);
  ds.labels = std::move(labels);
  ds.num_classes = c;
  return ds;
}

}  // namespace data
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Synthetic heterophilic/homophilic graph generator.
//
// The paper evaluates on Chameleon/Squirrel (Wikipedia), Cornell/Texas/
// Wisconsin (WebKB), Cora and Pubmed with the Geom-GCN splits. Those files
// are not available offline, so this generator produces *synthetic twins*:
// degree-corrected planted-partition graphs whose node/edge/feature/class
// counts and edge homophily match Table II, with class-conditional Bernoulli
// bag-of-words features. See DESIGN.md §4 for the substitution rationale.
//
// Two structural properties matter for GraphRARE and are modelled
// explicitly:
//  * edge homophily H — the fraction of same-class edges is planted exactly;
//  * informative heterophily — a tunable fraction of the *inter*-class edges
//    connect each class c to a fixed partner class pi(c) = C-1-c (an
//    involution), so two-hop neighbourhoods are class-pure. This mirrors the
//    paper's motivating examples (amino-acid and fraudster-customer
//    bipartite-like structure) and gives remote-but-informative nodes for
//    the entropy ranking to find.

#ifndef GRAPHRARE_DATA_GENERATOR_H_
#define GRAPHRARE_DATA_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"

namespace graphrare {
namespace data {

/// Parameters of the synthetic dataset generator.
struct GeneratorOptions {
  std::string name = "synthetic";
  int64_t num_nodes = 200;
  /// Target number of undirected edges (achieved exactly unless the graph
  /// saturates).
  int64_t num_edges = 400;
  int64_t num_features = 128;
  int64_t num_classes = 4;
  /// Target edge homophily ratio in [0, 1] (Eq. 1). Planted exactly (up to
  /// rounding).
  double homophily = 0.3;
  /// Degree skew: node propensities ~ u^{-degree_power}. 0 disables skew;
  /// 0.6-0.9 approximates the heavy-tailed wiki graphs.
  double degree_power = 0.0;
  /// Class-correlated connectivity: multiplies a node's degree propensity
  /// by (1 + class_degree_skew * class / (C-1)). Real graphs' local
  /// structure correlates with labels (page categories differ in
  /// connectivity); this is what makes the *structural* entropy term
  /// label-informative. 0 disables.
  double class_degree_skew = 0.0;
  /// Fraction of inter-class edges that go to the partner class pi(c)=C-1-c
  /// (informative heterophily). Remaining inter-class edges pick a uniform
  /// non-matching class.
  double partner_affinity = 0.8;
  /// Feature signal: multiplier on the activation probability of a node's
  /// class-topic words. 1.0 = no signal; 8-20 = strongly separable classes.
  double feature_signal = 8.0;
  /// Expected fraction of active words per node.
  double feature_density = 0.05;
  /// Probability that a node's topic block matches its own class; with
  /// probability 1 - fidelity the node expresses a uniformly random class
  /// topic instead. Caps feature-only (MLP) accuracy at roughly
  /// fidelity + (1 - fidelity)/C, which is how the paper's per-dataset MLP
  /// bands are planted (weak features on the wiki graphs, strong on WebKB).
  double feature_fidelity = 1.0;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Generates a dataset. Deterministic for a given options struct.
Result<Dataset> GenerateDataset(const GeneratorOptions& options);

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_GENERATOR_H_

// Copyright 2026 The GraphRARE Authors.
//
// Text persistence for whole datasets (graph + labels + sparse binary
// features), so generated twins and optimized topologies can move between
// processes and tools. Format ("# graphrare-dataset v1"):
//
//   # graphrare-dataset v1
//   name <name>
//   nodes <N> edges <E> features <d> classes <C>
//   labels
//   <N integers>
//   edges
//   <E "u v" lines>
//   features            (sparse binary: one "node dim" pair per line)
//   <nnz "i j" lines>
//   end

#ifndef GRAPHRARE_DATA_IO_H_
#define GRAPHRARE_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace graphrare {
namespace data {

/// Writes the dataset to `path`. Features must be binary (0/1), which all
/// generator outputs are; non-binary features are rejected.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_IO_H_

#include "data/registry.h"

#include <algorithm>

#include "common/string_util.h"

namespace graphrare {
namespace data {

namespace {

// Table II of the paper: name, N, E, d, C, H. The last four columns are
// generator calibration: degree_power (wiki graphs are heavy-tailed),
// partner_affinity (how class-pure two-hop neighbourhoods are),
// feature_signal / feature_density (how separable the bag-of-words is;
// WebKB features carry most of the label signal, wiki features carry
// little).
// feature_fidelity plants the paper's MLP accuracy bands (Bayes cap is
// roughly fidelity + (1-fidelity)/C): weak features on the wiki graphs,
// strong on WebKB, intermediate on the citation graphs.
// class_degree_skew makes local connectivity label-correlated, so the
// *structural* entropy term is informative on the wiki graphs whose
// features are weak — mirroring the real datasets, where Wikipedia page
// categories differ sharply in connectivity.
const DatasetSpec kSpecs[] = {
    // name        N      E       d     C  H     dpow  aff   sig   dens  fid   cds
    {"chameleon", 2277, 36101, 2325, 5, 0.23, 0.55, 0.45, 6.0, 0.04, 0.38, 2.5},
    {"squirrel", 5201, 217073, 2089, 5, 0.22, 0.65, 0.35, 6.0, 0.04, 0.16, 2.5},
    {"cornell", 183, 295, 1703, 5, 0.30, 0.30, 0.75, 10.0, 0.05, 0.78, 1.0},
    {"texas", 183, 309, 1703, 5, 0.11, 0.30, 0.80, 10.0, 0.05, 0.78, 1.0},
    {"wisconsin", 251, 499, 1703, 5, 0.21, 0.30, 0.75, 10.0, 0.05, 0.81, 1.0},
    {"cora", 2708, 5429, 1433, 7, 0.81, 0.25, 0.50, 8.0, 0.04, 0.71, 0.5},
    {"pubmed", 19717, 44338, 500, 3, 0.80, 0.25, 0.50, 8.0, 0.06, 0.78, 0.5},
};

}  // namespace

std::vector<std::string> ListDatasets() {
  std::vector<std::string> names;
  for (const auto& s : kSpecs) names.push_back(s.name);
  return names;
}

Result<DatasetSpec> GetDatasetSpec(const std::string& name) {
  for (const auto& s : kSpecs) {
    if (s.name == name) return s;
  }
  return Status::NotFound(
      StrFormat("unknown dataset '%s' (known: chameleon, squirrel, cornell, "
                "texas, wisconsin, cora, pubmed)",
                name.c_str()));
}

Result<Dataset> MakeDataset(const std::string& name, uint64_t seed) {
  return MakeDatasetScaled(name, /*shrink=*/1, seed);
}

Result<Dataset> MakeDatasetScaled(const std::string& name, int64_t shrink,
                                  uint64_t seed) {
  if (shrink < 1) {
    return Status::InvalidArgument("shrink must be >= 1");
  }
  GR_ASSIGN_OR_RETURN(DatasetSpec spec, GetDatasetSpec(name));
  GeneratorOptions options;
  options.name = shrink == 1
                     ? spec.name
                     : StrFormat("%s/%lld", spec.name.c_str(),
                                 static_cast<long long>(shrink));
  options.num_nodes = std::max<int64_t>(spec.num_classes * 4,
                                        spec.num_nodes / shrink);
  options.num_edges = std::max<int64_t>(options.num_nodes,
                                        spec.num_edges / shrink);
  const int64_t max_edges = options.num_nodes * (options.num_nodes - 1) / 2;
  options.num_edges = std::min(options.num_edges, max_edges);
  options.num_features =
      shrink == 1 ? spec.num_features
                  : std::max<int64_t>(32, spec.num_features / shrink);
  options.num_classes = spec.num_classes;
  options.homophily = spec.homophily;
  options.degree_power = spec.degree_power;
  options.partner_affinity = spec.partner_affinity;
  options.feature_signal = spec.feature_signal;
  options.feature_density = spec.feature_density;
  options.feature_fidelity = spec.feature_fidelity;
  options.class_degree_skew = spec.class_degree_skew;
  options.seed = seed * 0x9E3779B9ULL + 17;
  return GenerateDataset(options);
}

}  // namespace data
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Per-class random splits following the protocol of Pei et al. (Geom-GCN),
// which the paper adopts: 60%/20%/20% of the nodes of each class for
// train/validation/test, ten independent random splits.

#ifndef GRAPHRARE_DATA_SPLITS_H_
#define GRAPHRARE_DATA_SPLITS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace graphrare {
namespace data {

/// Options for split generation.
struct SplitOptions {
  double train_fraction = 0.6;
  double val_fraction = 0.2;
  // test gets the remainder.
  int num_splits = 10;
  uint64_t seed = 7;
};

/// Builds `options.num_splits` independent per-class random splits. Every
/// class contributes at least one node to each partition whenever it has
/// >= 3 members. Indices within each partition are sorted.
std::vector<Split> MakeSplits(const std::vector<int64_t>& labels,
                              int64_t num_classes,
                              const SplitOptions& options = {});

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_SPLITS_H_

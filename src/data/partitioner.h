// Copyright 2026 The GraphRARE Authors.
//
// Seed-batch scheduling for block-scoped co-training. A Partitioner turns
// the train set into an endless stream of seed batches with epoch
// semantics: within each epoch every train node lands in exactly one
// batch, and a fresh epoch is cut whenever the previous one drains.
//
// Two modes:
//  * kIndependent — uniform shuffled chunking, byte-identical to the
//    legacy BlockRolloutRunner stream (shuffle, chunk, pop in order), so
//    existing trajectories are unchanged.
//  * kLocality — BFS-grown batches: seeds that are close in the graph end
//    up in the same batch, so the blocks sampled around them overlap less
//    across batches and the EditMerger sees fewer write conflicts. Epoch
//    order is a deterministic seeded shuffle of the train set (the
//    tie-break for which node roots each BFS region), so the schedule is
//    reproducible bit for bit and independent of thread count.

#ifndef GRAPHRARE_DATA_PARTITIONER_H_
#define GRAPHRARE_DATA_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace graphrare {
namespace data {

/// How the train set is cut into per-block seed batches.
enum class PartitionMode {
  kIndependent,  ///< shuffled uniform chunks (legacy stream, bitwise)
  kLocality,     ///< BFS-grown batches around shuffled roots
};

/// Configuration of the seed-batch partitioner.
struct PartitionerOptions {
  PartitionMode mode = PartitionMode::kIndependent;
  /// Seed nodes per batch. Every epoch yields ceil(train / batch_size)
  /// batches, all full except possibly the last.
  int64_t batch_size = 64;
  /// Stream seed. Independent mode derives its shuffle RNG exactly like
  /// the legacy runner (seed ^ 0xB10C5EED), which is what keeps old
  /// trajectories bitwise intact; pass the rollout seed there and a
  /// dedicated derived seed for locality mode.
  uint64_t seed = 1;

  Status Validate() const;
};

/// Deterministic epoch-structured seed-batch stream over a train set.
class Partitioner {
 public:
  /// `graph` must outlive the partitioner (only used by kLocality).
  /// `train_nodes` must be non-empty, in range, and duplicate-free.
  Partitioner(const graph::Graph* graph, std::vector<int64_t> train_nodes,
              const PartitionerOptions& options);

  /// Next seed batch, cutting a fresh epoch when the current one drains.
  std::vector<int64_t> NextBatch();

  /// Convenience: `n` consecutive NextBatch() results.
  std::vector<std::vector<int64_t>> NextBatches(int n);

  const PartitionerOptions& options() const { return options_; }
  /// Batches per epoch: ceil(train / batch_size).
  int64_t batches_per_epoch() const;

 private:
  void Refill();
  std::vector<std::vector<int64_t>> BuildLocalityEpoch();

  const graph::Graph* graph_;
  std::vector<int64_t> train_;
  PartitionerOptions options_;
  Rng rng_;
  /// Current epoch's remaining batches, reversed so NextBatch pops from
  /// the back in O(1) while preserving epoch order (legacy idiom).
  std::vector<std::vector<int64_t>> pending_;

  // kLocality scratch, allocated once: versioned marks for "assigned this
  // epoch" / "visited this BFS", and a train-membership flag per node.
  std::vector<uint64_t> assigned_;
  std::vector<uint64_t> visited_;
  uint64_t assigned_version_ = 0;
  uint64_t visited_version_ = 0;
  std::vector<uint8_t> is_train_;
};

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_PARTITIONER_H_

#include "data/block_pipeline.h"

#include <algorithm>
#include <utility>

namespace graphrare {
namespace data {

Status BlockPipelineOptions::Validate() const {
  if (blocks_per_round < 1) {
    return Status::InvalidArgument("blocks_per_round must be >= 1");
  }
  if (seeds_per_block < 1) {
    return Status::InvalidArgument("seeds_per_block must be >= 1");
  }
  if (prefetch_depth < 0) {
    return Status::InvalidArgument("prefetch_depth must be >= 0");
  }
  if (num_producers < 1) {
    return Status::InvalidArgument("num_producers must be >= 1");
  }
  if (!sampler.fanouts.empty()) {
    return sampler.Validate();
  }
  return Status::OK();
}

namespace {

PartitionerOptions MakePartitionerOptions(const BlockPipelineOptions& o) {
  PartitionerOptions po;
  po.mode = o.partition;
  po.batch_size = o.seeds_per_block;
  po.seed = o.partition_seed;
  return po;
}

}  // namespace

BlockPipeline::BlockPipeline(const graph::Graph* graph,
                             std::vector<int64_t> train_nodes,
                             const BlockPipelineOptions& options)
    : graph_(graph),
      options_(options),
      partitioner_(graph, std::move(train_nodes),
                   MakePartitionerOptions(options)) {
  GR_CHECK(graph != nullptr);
  GR_CHECK_OK(options_.Validate());
  if (!options_.sampler.fanouts.empty()) {
    inline_sampler_ = std::make_unique<NeighborSampler>(graph_,
                                                        options_.sampler);
  }
  if (options_.prefetch_depth > 0) {
    producers_.reserve(static_cast<size_t>(options_.num_producers));
    for (int i = 0; i < options_.num_producers; ++i) {
      producers_.emplace_back([this] { ProducerLoop(); });
    }
  }
}

BlockPipeline::~BlockPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  produce_cv_.notify_all();
  for (std::thread& t : producers_) t.join();
}

bool BlockPipeline::ClaimRound(std::unique_lock<std::mutex>* lock,
                               RoundPlan* plan) {
  produce_cv_.wait(*lock, [this] {
    return stop_ || next_claim_ - next_consume_ < options_.prefetch_depth;
  });
  if (stop_) return false;
  plan->round = next_claim_++;
  // The schedule is fixed here, under the lock: seed batches come off the
  // (serial) partitioner stream and block indices off the global counter,
  // so the plan is identical no matter which producer wins the claim.
  plan->batches = partitioner_.NextBatches(options_.blocks_per_round);
  plan->base_block_index = blocks_issued_;
  blocks_issued_ += static_cast<uint64_t>(options_.blocks_per_round);
  return true;
}

std::vector<ScheduledBlock> BlockPipeline::ProduceRound(
    const RoundPlan& plan, NeighborSampler* sampler) const {
  std::vector<ScheduledBlock> out;
  out.reserve(plan.batches.size());
  for (size_t j = 0; j < plan.batches.size(); ++j) {
    ScheduledBlock sb;
    sb.seeds = plan.batches[j];
    sb.block_index = plan.base_block_index + static_cast<uint64_t>(j);
    sb.block = options_.sampler.fanouts.empty()
                   ? graph::FullSubgraph(*graph_, sb.seeds)
                   : sampler->SampleBlockAt(sb.seeds, sb.block_index);
    out.push_back(std::move(sb));
  }
  return out;
}

void BlockPipeline::ProducerLoop() {
  // Each producer owns its sampler: the versioned-mark scratch inside
  // NeighborSampler is per-instance state, and SampleBlockAt makes the
  // output a pure function of (graph, options, seeds, block_index).
  std::unique_ptr<NeighborSampler> sampler;
  if (!options_.sampler.fanouts.empty()) {
    sampler = std::make_unique<NeighborSampler>(graph_, options_.sampler);
  }
  while (true) {
    RoundPlan plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!ClaimRound(&lock, &plan)) return;
    }
    std::vector<ScheduledBlock> blocks = ProduceRound(plan, sampler.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready_.emplace(plan.round, std::move(blocks));
    }
    consume_cv_.notify_all();
  }
}

std::vector<ScheduledBlock> BlockPipeline::NextRound() {
  if (options_.prefetch_depth == 0) {
    RoundPlan plan;
    plan.round = next_claim_++;
    plan.batches = partitioner_.NextBatches(options_.blocks_per_round);
    plan.base_block_index = blocks_issued_;
    blocks_issued_ += static_cast<uint64_t>(options_.blocks_per_round);
    ++next_consume_;
    return ProduceRound(plan, inline_sampler_.get());
  }
  std::vector<ScheduledBlock> out;
  {
    std::unique_lock<std::mutex> lock(mu_);
    consume_cv_.wait(lock,
                     [this] { return ready_.count(next_consume_) > 0; });
    auto it = ready_.find(next_consume_);
    out = std::move(it->second);
    ready_.erase(it);
    ++next_consume_;
  }
  produce_cv_.notify_all();
  return out;
}

}  // namespace data
}  // namespace graphrare

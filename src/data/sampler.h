// Copyright 2026 The GraphRARE Authors.
//
// Layer-wise neighbor sampling (GraphSAGE-style fanout sampling) for
// mini-batch training. Starting from a batch of seed nodes, each layer
// expands the frontier by at most `fanout` sampled neighbors per node; the
// union of all layers induces the subgraph the GNN step runs on. This is
// what decouples per-step cost from the full adjacency: memory and latency
// scale with the sampled block, not the graph.
//
// Determinism: each frontier node draws from its own RNG stream derived
// from (sampler seed, block counter, layer, node id), so a block is
// bit-for-bit reproducible regardless of how many OpenMP threads expand
// the frontier — parallelism never reorders random draws within a stream.

#ifndef GRAPHRARE_DATA_SAMPLER_H_
#define GRAPHRARE_DATA_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/subgraph.h"

namespace graphrare {
namespace data {

/// Configuration of the layer-wise neighbor sampler.
struct SamplerOptions {
  /// Per-layer fanout caps, ordered from the seed layer outward. Layer l
  /// samples at most fanouts[l] neighbors of each frontier node. A fanout
  /// >= the maximum degree keeps every neighbor; -1 means unlimited (every
  /// neighbor kept, no RNG draws). For exact full-fanout equivalence with
  /// a full-graph step of an L-layer model, use L entries for
  /// row-normalised aggregators (SAGE) and L+1 for symmetric GCN
  /// normalisation (boundary degrees must be exact; see
  /// tests/minibatch_test.cc).
  std::vector<int64_t> fanouts = {10, 10};
  /// With replacement: `fanout` independent draws (duplicates collapse when
  /// the node set is formed). Without: a partial Fisher-Yates over the
  /// neighbor list, so at most min(fanout, degree) distinct neighbors.
  bool replace = false;
  uint64_t seed = 1;

  Status Validate() const;
};

/// Samples layered neighborhood blocks from a fixed graph. Stateful only in
/// the block counter: consecutive SampleBlock calls advance the stream, and
/// Reset() rewinds it so a reseeded sampler replays identical blocks.
class NeighborSampler {
 public:
  /// `graph` must outlive the sampler.
  NeighborSampler(const graph::Graph* graph, SamplerOptions options);

  /// Samples the layered neighborhood of `seeds` (which must be non-empty,
  /// in range, and duplicate-free) and returns the induced block.
  graph::Subgraph SampleBlock(const std::vector<int64_t>& seeds);

  /// Samples the block at an explicit stream position instead of the
  /// internal counter. SampleBlock(seeds) == SampleBlockAt(seeds, i) when i
  /// blocks have been drawn before, which lets a scheduler hand block
  /// indices to producer threads in any order and still reproduce the
  /// inline sampling stream bit for bit.
  graph::Subgraph SampleBlockAt(const std::vector<int64_t>& seeds,
                                uint64_t block_index);

  /// Frontier trace of the last SampleBlock: layers()[0] is the seed set,
  /// layers()[l+1] the nodes first reached at layer l (sorted ascending).
  /// Exposed for tests and diagnostics.
  const std::vector<std::vector<int64_t>>& layers() const { return layers_; }

  /// Rewinds the block counter to zero (epoch replay).
  void Reset() { block_counter_ = 0; }

  const SamplerOptions& options() const { return options_; }

  /// Samples at most `fanout` neighbors of `v` (see SamplerOptions::replace
  /// for the two modes; fanout == -1 keeps every neighbor). Public so tests
  /// can pin down per-node behavior.
  static std::vector<int64_t> SampleNeighbors(const graph::Graph& g,
                                              int64_t v, int64_t fanout,
                                              bool replace, Rng* rng);

  /// Shuffles `indices` (when `shuffle`) and chunks them into consecutive
  /// batches of at most `batch_size`. The last batch may be smaller.
  static std::vector<std::vector<int64_t>> MakeBatches(
      std::vector<int64_t> indices, int64_t batch_size, bool shuffle,
      Rng* rng);

 private:
  const graph::Graph* graph_;
  SamplerOptions options_;
  uint64_t block_counter_ = 0;
  std::vector<std::vector<int64_t>> layers_;
  /// Versioned membership marks: node v is in the current block iff
  /// mark_[v] == mark_version_. Allocated once, so per-block work stays
  /// proportional to the block, not O(num_nodes).
  std::vector<uint64_t> mark_;
  uint64_t mark_version_ = 0;
};

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_SAMPLER_H_

// Copyright 2026 The GraphRARE Authors.
//
// Prefetching block scheduler: couples a Partitioner (which seed nodes
// form each block) to a NeighborSampler (which nodes the block contains)
// and overlaps the two with training. Producer threads claim whole rounds
// from a bounded queue and sample round R+1's blocks while the consumer
// trains on round R; `prefetch_depth` bounds how many rounds may be
// buffered ahead, which is what keeps peak RSS flat at million-node scale.
//
// Determinism contract: the schedule (which seeds, which block index) is
// fixed under a mutex before any sampling happens, and every block is
// sampled at an explicit stream position via SampleBlockAt, so the stream
// of ScheduledBlocks is bit-for-bit identical whether sampling runs
// inline (prefetch_depth = 0), on one producer, or on many — regardless
// of thread scheduling or OpenMP thread count.

#ifndef GRAPHRARE_DATA_BLOCK_PIPELINE_H_
#define GRAPHRARE_DATA_BLOCK_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "data/partitioner.h"
#include "data/sampler.h"
#include "graph/subgraph.h"

namespace graphrare {
namespace data {

/// One block of a scheduled round: the sampled subgraph, the seed batch
/// that produced it, and its position in the global sampling stream.
struct ScheduledBlock {
  graph::Subgraph block;
  std::vector<int64_t> seeds;
  uint64_t block_index = 0;
};

/// Configuration of the prefetching block pipeline.
struct BlockPipelineOptions {
  /// Sampler config. Empty `sampler.fanouts` = full-graph mode: every
  /// block is graph::FullSubgraph over all nodes (no sampling, no RNG).
  SamplerOptions sampler;
  /// Blocks per round (one NextRound() call returns this many).
  int blocks_per_round = 4;
  /// Train seeds per block (the partitioner's batch size).
  int64_t seeds_per_block = 64;
  PartitionMode partition = PartitionMode::kIndependent;
  /// Seed of the partitioner stream. Independent mode should receive the
  /// rollout seed (legacy bitwise stream); locality mode its own derived
  /// seed (core::DeriveSeeds).
  uint64_t partition_seed = 1;
  /// Rounds buffered ahead of the consumer. 0 = inline: NextRound()
  /// samples synchronously on the calling thread and no threads spawn.
  int prefetch_depth = 1;
  /// Producer threads (only used when prefetch_depth > 0).
  int num_producers = 1;

  Status Validate() const;
};

/// Bounded producer/consumer pipeline of sampled block rounds.
class BlockPipeline {
 public:
  /// `graph` must outlive the pipeline. `train_nodes` must be non-empty,
  /// in range, and duplicate-free.
  BlockPipeline(const graph::Graph* graph, std::vector<int64_t> train_nodes,
                const BlockPipelineOptions& options);
  ~BlockPipeline();

  BlockPipeline(const BlockPipeline&) = delete;
  BlockPipeline& operator=(const BlockPipeline&) = delete;

  /// The next round's blocks, in schedule order. Blocks when prefetching
  /// and the round is still being sampled; samples synchronously when
  /// prefetch_depth == 0.
  std::vector<ScheduledBlock> NextRound();

  const BlockPipelineOptions& options() const { return options_; }

 private:
  struct RoundPlan {
    int64_t round = 0;
    std::vector<std::vector<int64_t>> batches;
    uint64_t base_block_index = 0;
  };

  /// Claims the next round's schedule under the lock (partitioner state +
  /// stream position), or returns false on shutdown / depth limit.
  bool ClaimRound(std::unique_lock<std::mutex>* lock, RoundPlan* plan);
  /// Samples one planned round. Pure given the plan: called from producer
  /// threads (own sampler) and from NextRound in inline mode.
  std::vector<ScheduledBlock> ProduceRound(const RoundPlan& plan,
                                           NeighborSampler* sampler) const;
  void ProducerLoop();

  const graph::Graph* graph_;
  BlockPipelineOptions options_;
  Partitioner partitioner_;
  /// Sampler of the inline path (null in full-graph mode).
  std::unique_ptr<NeighborSampler> inline_sampler_;

  std::mutex mu_;
  std::condition_variable produce_cv_;  ///< signalled when a claim may open
  std::condition_variable consume_cv_;  ///< signalled when a round lands
  int64_t next_claim_ = 0;
  int64_t next_consume_ = 0;
  uint64_t blocks_issued_ = 0;
  std::map<int64_t, std::vector<ScheduledBlock>> ready_;
  bool stop_ = false;
  std::vector<std::thread> producers_;
};

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_BLOCK_PIPELINE_H_

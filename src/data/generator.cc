#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace graphrare {
namespace data {

namespace {

/// Weighted sampling from a per-class node pool via cumulative sums.
class ClassPool {
 public:
  ClassPool(const std::vector<int64_t>& labels,
            const std::vector<double>& weights, int64_t num_classes) {
    nodes_.resize(static_cast<size_t>(num_classes));
    cumweights_.resize(static_cast<size_t>(num_classes));
    for (size_t i = 0; i < labels.size(); ++i) {
      nodes_[static_cast<size_t>(labels[i])].push_back(
          static_cast<int64_t>(i));
    }
    for (int64_t c = 0; c < num_classes; ++c) {
      auto& cw = cumweights_[static_cast<size_t>(c)];
      cw.reserve(nodes_[static_cast<size_t>(c)].size());
      double acc = 0.0;
      for (int64_t v : nodes_[static_cast<size_t>(c)]) {
        acc += weights[static_cast<size_t>(v)];
        cw.push_back(acc);
      }
    }
  }

  /// Samples a node of class c proportionally to its weight.
  int64_t Sample(int64_t c, Rng* rng) const {
    const auto& cw = cumweights_[static_cast<size_t>(c)];
    GR_CHECK(!cw.empty()) << "empty class " << c;
    const double r = rng->Uniform() * cw.back();
    const auto it = std::lower_bound(cw.begin(), cw.end(), r);
    const size_t idx = std::min(static_cast<size_t>(it - cw.begin()),
                                cw.size() - 1);
    return nodes_[static_cast<size_t>(c)][idx];
  }

  int64_t ClassSize(int64_t c) const {
    return static_cast<int64_t>(nodes_[static_cast<size_t>(c)].size());
  }

 private:
  std::vector<std::vector<int64_t>> nodes_;
  std::vector<std::vector<double>> cumweights_;
};

int64_t EdgeKey(int64_t u, int64_t v, int64_t n) {
  return std::min(u, v) * n + std::max(u, v);
}

/// Open-addressing edge-key set: one upfront allocation sized for the
/// edge budget, linear probing, no per-insert nodes. At million-node
/// scale the node-based std::unordered_set this replaces spent the bulk
/// of generation time in the allocator; the flat table keeps edge dedup
/// a streaming O(E) pass. Keys are EdgeKey values (always >= 0).
class FlatEdgeSet {
 public:
  explicit FlatEdgeSet(int64_t expected) {
    size_t cap = 16;
    // <= 0.5 load factor at the full edge budget.
    while (cap < static_cast<size_t>(std::max<int64_t>(expected, 1)) * 2) {
      cap <<= 1;
    }
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  /// True when `key` was newly inserted, false when already present.
  bool Insert(int64_t key) {
    size_t i = Hash(key) & mask_;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    return true;
  }

 private:
  static constexpr int64_t kEmpty = -1;
  static size_t Hash(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  std::vector<int64_t> slots_;
  size_t mask_ = 0;
};

}  // namespace

Status GeneratorOptions::Validate() const {
  if (num_nodes < 2) {
    return Status::InvalidArgument("num_nodes must be >= 2");
  }
  if (num_classes < 2 || num_classes > num_nodes) {
    return Status::InvalidArgument("num_classes must be in [2, num_nodes]");
  }
  if (num_features < 1) {
    return Status::InvalidArgument("num_features must be >= 1");
  }
  if (num_edges < 0) {
    return Status::InvalidArgument("num_edges must be >= 0");
  }
  const int64_t max_edges = num_nodes * (num_nodes - 1) / 2;
  if (num_edges > max_edges) {
    return Status::InvalidArgument(
        StrFormat("num_edges %lld exceeds simple-graph maximum %lld",
                  static_cast<long long>(num_edges),
                  static_cast<long long>(max_edges)));
  }
  if (homophily < 0.0 || homophily > 1.0) {
    return Status::InvalidArgument("homophily must be in [0, 1]");
  }
  if (partner_affinity < 0.0 || partner_affinity > 1.0) {
    return Status::InvalidArgument("partner_affinity must be in [0, 1]");
  }
  if (degree_power < 0.0 || degree_power >= 1.0) {
    return Status::InvalidArgument("degree_power must be in [0, 1)");
  }
  if (class_degree_skew < 0.0) {
    return Status::InvalidArgument("class_degree_skew must be >= 0");
  }
  if (feature_density <= 0.0 || feature_density > 0.5) {
    return Status::InvalidArgument("feature_density must be in (0, 0.5]");
  }
  if (feature_signal < 1.0) {
    return Status::InvalidArgument("feature_signal must be >= 1");
  }
  if (feature_fidelity < 0.0 || feature_fidelity > 1.0) {
    return Status::InvalidArgument("feature_fidelity must be in [0, 1]");
  }
  return Status::OK();
}

Result<Dataset> GenerateDataset(const GeneratorOptions& options) {
  GR_RETURN_IF_ERROR(options.Validate());
  Rng rng(options.seed);

  const int64_t n = options.num_nodes;
  const int64_t c_count = options.num_classes;

  // --- Labels: balanced, randomly assigned. ---
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % c_count;
  }
  rng.Shuffle(&labels);

  // --- Degree propensities: w = u^{-p} gives a heavy tail for p > 0;
  // class-correlated skew makes local structure label-informative. ---
  std::vector<double> weights(static_cast<size_t>(n), 1.0);
  if (options.degree_power > 0.0) {
    for (auto& w : weights) {
      double u = rng.Uniform();
      while (u < 1e-9) u = rng.Uniform();
      w = std::pow(u, -options.degree_power);
    }
  }
  if (options.class_degree_skew > 0.0 && c_count > 1) {
    for (int64_t i = 0; i < n; ++i) {
      weights[static_cast<size_t>(i)] *=
          1.0 + options.class_degree_skew *
                    static_cast<double>(labels[static_cast<size_t>(i)]) /
                    static_cast<double>(c_count - 1);
    }
  }
  ClassPool pool(labels, weights, c_count);

  // --- Edges: plant the homophily ratio exactly (up to rounding). ---
  const int64_t intra_target = static_cast<int64_t>(
      std::llround(options.homophily * static_cast<double>(options.num_edges)));
  const int64_t inter_target = options.num_edges - intra_target;

  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(options.num_edges));
  FlatEdgeSet seen(options.num_edges);

  auto try_add = [&](int64_t u, int64_t v) {
    if (u == v) return false;
    if (!seen.Insert(EdgeKey(u, v, n))) return false;
    edges.emplace_back(u, v);
    return true;
  };

  // Intra-class edges.
  int64_t added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = options.num_edges * 200 + 10000;
  while (added < intra_target && attempts < max_attempts) {
    ++attempts;
    const int64_t c = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(c_count)));
    if (pool.ClassSize(c) < 2) continue;
    const int64_t u = pool.Sample(c, &rng);
    const int64_t v = pool.Sample(c, &rng);
    if (try_add(u, v)) ++added;
  }
  const int64_t intra_added = added;

  // Inter-class edges: with probability partner_affinity the second endpoint
  // comes from the partner class pi(c) = C-1-c, otherwise a uniform
  // different class. When pi(c) == c (odd C middle class), fall back to
  // uniform different class.
  added = 0;
  attempts = 0;
  while (added < inter_target && attempts < max_attempts) {
    ++attempts;
    const int64_t cu = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(c_count)));
    int64_t cv;
    const int64_t partner = c_count - 1 - cu;
    if (partner != cu && rng.Bernoulli(options.partner_affinity)) {
      cv = partner;
    } else {
      cv = static_cast<int64_t>(rng.UniformInt(
          static_cast<uint64_t>(c_count - 1)));
      if (cv >= cu) ++cv;
    }
    const int64_t u = pool.Sample(cu, &rng);
    const int64_t v = pool.Sample(cv, &rng);
    if (try_add(u, v)) ++added;
  }

  if (static_cast<int64_t>(edges.size()) < options.num_edges) {
    GR_LOG(WARNING) << options.name << ": generated "
                    << edges.size() << "/" << options.num_edges
                    << " edges before attempt budget; graph is near-saturated";
  }

  GR_ASSIGN_OR_RETURN(graph::Graph g, graph::Graph::FromEdgeList(n, edges));
  (void)intra_added;

  // --- Features: class-conditional Bernoulli bag of words. Each class owns
  // a contiguous topic block of d/C dimensions with boosted activation. ---
  const int64_t d = options.num_features;
  const double topic_frac = 1.0 / static_cast<double>(c_count);
  // Solve p_in, p_out so that expected density matches and
  // p_in = feature_signal * p_out:
  //   density = topic_frac * p_in + (1 - topic_frac) * p_out
  double p_out = options.feature_density /
                 (topic_frac * options.feature_signal + (1.0 - topic_frac));
  double p_in = options.feature_signal * p_out;
  p_in = std::min(p_in, 0.9);

  tensor::Tensor x(n, d);
  const int64_t block = std::max<int64_t>(1, d / c_count);
  for (int64_t i = 0; i < n; ++i) {
    // Feature fidelity: a (1 - fidelity) fraction of nodes express a random
    // class topic, capping feature-only accuracy (see GeneratorOptions).
    const int64_t cls =
        rng.Bernoulli(options.feature_fidelity)
            ? labels[static_cast<size_t>(i)]
            : static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(c_count)));
    const int64_t topic_begin = cls * block;
    const int64_t topic_end =
        (cls == c_count - 1) ? d : std::min(d, topic_begin + block);
    float* row = x.row(i);
    for (int64_t j = 0; j < d; ++j) {
      const bool in_topic = j >= topic_begin && j < topic_end;
      row[j] = rng.Bernoulli(in_topic ? p_in : p_out) ? 1.0f : 0.0f;
    }
  }

  Dataset ds;
  ds.name = options.name;
  ds.graph = std::move(g);
  ds.features = std::move(x);
  ds.labels = std::move(labels);
  ds.num_classes = c_count;
  return ds;
}

std::shared_ptr<const tensor::CsrMatrix> Dataset::FeaturesCsr() const {
  if (features_csr_) return features_csr_;
  // Counting pass first so the COO buffer is one allocation even at
  // million-row scale (push_back growth would copy the array ~log times).
  size_t nnz = 0;
  for (int64_t i = 0; i < features.rows(); ++i) {
    const float* row = features.row(i);
    for (int64_t j = 0; j < features.cols(); ++j) {
      if (row[j] != 0.0f) ++nnz;
    }
  }
  std::vector<tensor::CooEntry> entries;
  entries.reserve(nnz);
  for (int64_t i = 0; i < features.rows(); ++i) {
    const float* row = features.row(i);
    for (int64_t j = 0; j < features.cols(); ++j) {
      if (row[j] != 0.0f) entries.push_back({i, j, row[j]});
    }
  }
  features_csr_ = std::make_shared<tensor::CsrMatrix>(
      tensor::CsrMatrix::FromCoo(features.rows(), features.cols(),
                                 std::move(entries)));
  return features_csr_;
}

}  // namespace data
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Registry of the paper's seven benchmark datasets (Table II), realised as
// synthetic twins via the generator. Node/edge/feature/class counts and
// edge-homophily targets match the table; the remaining generator knobs are
// calibrated so the *relative* baseline behaviour resembles the paper
// (feature-strong WebKB graphs where MLP beats GCN; structure-heavy dense
// wiki graphs where it does not; homophilic citation graphs).

#ifndef GRAPHRARE_DATA_REGISTRY_H_
#define GRAPHRARE_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/generator.h"

namespace graphrare {
namespace data {

/// Static description of a registry dataset (mirrors Table II).
struct DatasetSpec {
  std::string name;
  int64_t num_nodes;
  int64_t num_edges;
  int64_t num_features;
  int64_t num_classes;
  double homophily;
  /// Generator calibration knobs (not from the paper).
  double degree_power;
  double partner_affinity;
  double feature_signal;
  double feature_density;
  double feature_fidelity;
  double class_degree_skew;
};

/// All seven registered dataset names, paper order: chameleon, squirrel,
/// cornell, texas, wisconsin, cora, pubmed.
std::vector<std::string> ListDatasets();

/// Spec lookup by (case-sensitive) name.
Result<DatasetSpec> GetDatasetSpec(const std::string& name);

/// Materialises the synthetic twin of the named dataset. `seed` varies the
/// random realisation (splits use their own seeds; see splits.h).
Result<Dataset> MakeDataset(const std::string& name, uint64_t seed = 1);

/// Smaller-scale variant for tests and quick benches: node and edge counts
/// divided by `shrink` (>= 1), structure knobs preserved.
Result<Dataset> MakeDatasetScaled(const std::string& name, int64_t shrink,
                                  uint64_t seed = 1);

}  // namespace data
}  // namespace graphrare

#endif  // GRAPHRARE_DATA_REGISTRY_H_

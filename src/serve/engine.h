// Copyright 2026 The GraphRARE Authors.
//
// Batched inference over a loaded ModelArtifact. The engine is the serving
// half of the train->artifact->serve pipeline: it rebuilds the backbone
// once, precomputes the graph operators (and, in full-graph mode, the
// entire logit matrix), and then answers read-only queries concurrently.
//
// Two execution modes, chosen by EngineOptions::fanouts:
//
//  * full-graph (empty fanouts): one forward pass over the whole optimized
//    graph at load time; Predict is a row lookup + softmax. The cached
//    logits are bitwise the training-time eval logits (same sparse
//    features, same operators), which is what the artifact round-trip
//    tests pin down.
//
//  * neighbor-sampled (non-empty fanouts): each query samples a
//    fanout-bounded block around its nodes (data::NeighborSampler) and
//    runs the forward on the block only, so per-query cost scales with
//    the block, not the graph. Sampling is seeded per request index, so
//    PredictBatch returns identical results no matter how many OpenMP
//    threads execute it (or whether OpenMP is compiled in at all).

#ifndef GRAPHRARE_SERVE_ENGINE_H_
#define GRAPHRARE_SERVE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "serve/artifact.h"

namespace graphrare {
namespace serve {

/// Inference configuration.
struct EngineOptions {
  /// Per-layer sampling fanouts. Empty = full-graph inference (exact).
  /// -1 entries mean unlimited fanout at that layer.
  std::vector<int64_t> fanouts;
  /// Sample neighbors with replacement (see data::SamplerOptions).
  bool sample_replace = false;
  /// Base seed for the per-request sampling streams.
  uint64_t seed = 1;

  Status Validate() const;
};

/// One node's answer: argmax class plus the full probability row.
struct Prediction {
  int64_t node = -1;
  int64_t predicted_class = -1;
  std::vector<float> probabilities;  ///< softmax over num_classes logits
};

/// Top-k (class, probability) pairs of an already-computed prediction,
/// descending probability (ties broken by class id), k clamped to the
/// class count. Use this to annotate a Prediction you already hold — in
/// sampled mode a fresh engine.TopK() call would re-sample and could
/// disagree with it.
std::vector<std::pair<int64_t, float>> TopKOf(const Prediction& prediction,
                                              int k);

/// Loads an artifact once and serves batched node-classification queries.
/// All query methods are const and safe to call from concurrent threads.
class InferenceEngine {
 public:
  /// Takes ownership of the artifact, rebuilds the model, and precomputes
  /// the serving state (operators; full logits in full-graph mode).
  static Result<InferenceEngine> FromArtifact(ModelArtifact artifact,
                                              EngineOptions options = {});

  /// Convenience: ModelArtifact::Load + FromArtifact.
  static Result<InferenceEngine> LoadFrom(const std::string& path,
                                          EngineOptions options = {});

  InferenceEngine(InferenceEngine&&) = default;
  InferenceEngine& operator=(InferenceEngine&&) = default;

  /// Answers one query of (possibly repeated) node ids. Fails on ids
  /// outside [0, num_nodes()).
  Result<std::vector<Prediction>> Predict(
      const std::vector<int64_t>& node_ids) const;

  /// Answers many queries; request r is evaluated exactly as
  /// Predict-with-request-seed-r, with the requests distributed over
  /// OpenMP threads. Results are positionally aligned with `requests` and
  /// independent of thread count.
  Result<std::vector<std::vector<Prediction>>> PredictBatch(
      const std::vector<std::vector<int64_t>>& requests) const;

  /// PredictBatch with caller-supplied per-request sampling seeds (one per
  /// request). Request i is evaluated exactly as it would be at position
  /// seeds[i] of a plain PredictBatch call, so a scheduler that stamps each
  /// request with its arrival index gets answers that do not depend on how
  /// requests were grouped into engine calls — the continuous-batching
  /// tier's determinism contract. Seeds only matter in sampled mode;
  /// full-graph answers ignore them.
  Result<std::vector<std::vector<Prediction>>> PredictBatchWithSeeds(
      const std::vector<std::vector<int64_t>>& requests,
      const std::vector<uint64_t>& seeds) const;

  /// Top-k (class, probability) pairs for one node, descending
  /// probability (ties broken by class id). k is clamped to num_classes.
  Result<std::vector<std::pair<int64_t, float>>> TopK(int64_t node,
                                                      int k) const;

  int64_t num_nodes() const { return artifact_.num_nodes(); }
  int64_t num_classes() const { return artifact_.num_classes(); }
  bool full_graph_mode() const { return options_.fanouts.empty(); }
  const ModelArtifact& artifact() const { return artifact_; }
  const EngineOptions& options() const { return options_; }

  /// The precomputed logit matrix (full-graph mode only; one row per
  /// node). This is the bitwise-equality hook for artifact tests.
  const tensor::Tensor& FullLogits() const;

 private:
  InferenceEngine(ModelArtifact artifact, EngineOptions options);

  /// Evaluates one request with the sampling stream for `request_seed`.
  Result<std::vector<Prediction>> PredictWithSeed(
      const std::vector<int64_t>& node_ids, uint64_t request_seed) const;

  ModelArtifact artifact_;
  EngineOptions options_;
  std::unique_ptr<nn::NodeClassifier> model_;
  tensor::Tensor full_logits_;  ///< empty in sampled mode
};

/// Thread-safe shared handle to the live engine — the hot-swap seam of the
/// serving tier. Readers snapshot the current engine with Get() and run
/// their whole batch against that snapshot; Swap() atomically publishes a
/// replacement (artifact reload) while snapshots taken earlier keep the old
/// engine alive until their batches finish. No request is ever dropped or
/// answered by a half-installed engine.
class EngineHandle {
 public:
  explicit EngineHandle(std::shared_ptr<const InferenceEngine> engine)
      : engine_(std::move(engine)) {}

  /// Snapshot of the current engine (never null).
  std::shared_ptr<const InferenceEngine> Get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_;
  }

  /// Publishes `next` and returns the previous engine. The caller usually
  /// drops the return value; in-flight batches holding snapshots keep the
  /// old engine alive regardless.
  std::shared_ptr<const InferenceEngine> Swap(
      std::shared_ptr<const InferenceEngine> next) {
    std::lock_guard<std::mutex> lock(mu_);
    engine_.swap(next);
    ++generation_;
    return next;
  }

  /// 1 for the engine installed at construction, +1 per Swap.
  int64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const InferenceEngine> engine_;
  int64_t generation_ = 1;
};

}  // namespace serve
}  // namespace graphrare

#endif  // GRAPHRARE_SERVE_ENGINE_H_

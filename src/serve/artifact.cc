#include "serve/artifact.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace graphrare {
namespace serve {

namespace {

constexpr char kMagic[8] = {'G', 'R', 'A', 'R', 'E', 'A', 'R', 'T'};
constexpr char kEndMarker[8] = {'G', 'R', 'A', 'R', 'E', 'E', 'N', 'D'};

Status SyscallError(const std::string& path, const char* call) {
  return Status::Internal(StrFormat("'%s': %s failed: %s", path.c_str(), call,
                                    std::strerror(errno)));
}

/// Closes the fd on scope exit (Load/Save have many early returns).
class FdCloser {
 public:
  explicit FdCloser(int fd) : fd_(fd) {}
  ~FdCloser() {
    if (fd_ >= 0) ::close(fd_);
  }
  /// Hands ownership back for an error-checked close.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

// ---- Little-endian binary writer/reader -----------------------------------
//
// Fixed-width fields are written through memcpy of native representations;
// the library targets little-endian hosts only (as does every supported
// platform), and Load verifies the magic so a foreign file fails loudly.
//
// Both sides run on raw fds through the "artifact.read"/"artifact.write"
// fail points, retry EINTR, and handle short transfers, and both maintain
// a running CRC-32 that Checksum() closes at each section boundary.

class Writer {
 public:
  Writer(int fd, const std::string& path) : fd_(fd), path_(&path) {
    buf_.reserve(kFlushBytes + 64);
  }

  void Bytes(const void* data, size_t n) {
    if (!status_.ok()) return;
    crc_ = Crc32::Update(crc_, data, n);
    Append(data, n);
  }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void F32(float v) { Bytes(&v, sizeof(v)); }
  void String(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  void I64Array(const std::vector<int64_t>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(int64_t));
  }
  void F32Array(const std::vector<float>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(float));
  }
  void Tensor(const tensor::Tensor& t) {
    I64(t.rows());
    I64(t.cols());
    Bytes(t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
  }

  /// Closes the current section: writes the u32 CRC-32 of every byte since
  /// the previous boundary (the CRC field belongs to no section) and resets
  /// the running CRC.
  void Checksum() {
    if (!status_.ok()) return;
    const uint32_t crc = crc_;
    Append(&crc, sizeof(crc));
    crc_ = 0;
  }

  /// Flushes buffered bytes and returns the first error, if any.
  Status Finish() {
    if (status_.ok()) FlushBuf();
    return status_;
  }

 private:
  static constexpr size_t kFlushBytes = 256 * 1024;

  void Append(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
    if (buf_.size() >= kFlushBytes) FlushBuf();
  }

  void FlushBuf() {
    const char* p = buf_.data();
    size_t left = buf_.size();
    while (left > 0) {
      const ssize_t w = failpoint::Write("artifact.write", fd_, p, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        status_ = SyscallError(*path_, "write");
        break;
      }
      p += w;
      left -= static_cast<size_t>(w);
    }
    buf_.clear();
  }

  int fd_;
  const std::string* path_;
  std::string buf_;
  uint32_t crc_ = 0;
  Status status_ = Status::OK();
};

class Reader {
 public:
  /// `file_size` bounds every length/count read from the stream: a file
  /// cannot hold more payload than its own bytes, so a corrupt header can
  /// never force an allocation beyond the (already-read) file size.
  Reader(int fd, std::string path, uint64_t file_size)
      : fd_(fd), path_(std::move(path)), file_size_(file_size) {
    buf_.resize(64 * 1024);
  }

  Status Bytes(void* data, size_t n) {
    GR_RETURN_IF_ERROR(RawBytes(data, n));
    crc_ = Crc32::Update(crc_, data, n);
    return Status::OK();
  }
  Status U32(uint32_t* v) { return Bytes(v, sizeof(*v)); }
  Status U64(uint64_t* v) { return Bytes(v, sizeof(*v)); }
  Status I64(int64_t* v) { return Bytes(v, sizeof(*v)); }
  Status F32(float* v) { return Bytes(v, sizeof(*v)); }

  /// Verifies the u32 CRC closing the current section against the running
  /// CRC of the bytes read since the previous boundary, then resets it.
  Status Checksum(const char* section) {
    uint32_t stored = 0;
    GR_RETURN_IF_ERROR(RawBytes(&stored, sizeof(stored)));
    if (stored != crc_) {
      return Status::InvalidArgument(StrFormat(
          "'%s': checksum mismatch in section '%s' (stored %08x, computed "
          "%08x; corrupt artifact)",
          path_.c_str(), section, stored, crc_));
    }
    crc_ = 0;
    return Status::OK();
  }

  /// Bytes between the cursor and the end of the file.
  uint64_t RemainingBytes() const {
    return file_size_ > offset_ ? file_size_ - offset_ : 0;
  }

  Status String(std::string* s, uint64_t max_len = 1ULL << 20) {
    uint64_t len = 0;
    GR_RETURN_IF_ERROR(U64(&len));
    if (len > max_len || len > RemainingBytes()) {
      return Status::InvalidArgument(StrFormat(
          "'%s': implausible string length %llu (corrupt artifact?)",
          path_.c_str(), static_cast<unsigned long long>(len)));
    }
    s->resize(static_cast<size_t>(len));
    return Bytes(s->data(), static_cast<size_t>(len));
  }

  /// Reads a length-prefixed array, rejecting counts beyond `max_elems`
  /// or beyond what the file can physically hold *before* allocating.
  Status I64Array(std::vector<int64_t>* v, uint64_t max_elems) {
    uint64_t n = 0;
    GR_RETURN_IF_ERROR(U64(&n));
    if (n > max_elems || n > RemainingBytes() / sizeof(int64_t)) {
      return ImplausibleCount(n, max_elems, sizeof(int64_t));
    }
    v->resize(static_cast<size_t>(n));
    return Bytes(v->data(), static_cast<size_t>(n) * sizeof(int64_t));
  }
  Status F32Array(std::vector<float>* v, uint64_t max_elems) {
    uint64_t n = 0;
    GR_RETURN_IF_ERROR(U64(&n));
    if (n > max_elems || n > RemainingBytes() / sizeof(float)) {
      return ImplausibleCount(n, max_elems, sizeof(float));
    }
    v->resize(static_cast<size_t>(n));
    return Bytes(v->data(), static_cast<size_t>(n) * sizeof(float));
  }
  Status Tensor(tensor::Tensor* t) {
    int64_t rows = 0, cols = 0;
    GR_RETURN_IF_ERROR(I64(&rows));
    GR_RETURN_IF_ERROR(I64(&cols));
    // Per-dimension and overflow-safe product checks: rows*cols may not
    // be formed before both operands are known small enough.
    const uint64_t max_numel = RemainingBytes() / sizeof(float);
    if (rows < 0 || cols < 0 ||
        (rows > 0 && static_cast<uint64_t>(cols) >
                         max_numel / static_cast<uint64_t>(rows))) {
      return Status::InvalidArgument(StrFormat(
          "'%s': implausible tensor shape %lldx%lld", path_.c_str(),
          static_cast<long long>(rows), static_cast<long long>(cols)));
    }
    std::vector<float> data(static_cast<size_t>(rows * cols));
    GR_RETURN_IF_ERROR(
        Bytes(data.data(), data.size() * sizeof(float)));
    *t = tensor::Tensor::FromData(rows, cols, std::move(data));
    return Status::OK();
  }

  const std::string& path() const { return path_; }

 private:
  /// Copies `n` bytes to `data` without touching the running CRC, refilling
  /// the buffer through the fail-point shim; EINTR retries and short reads
  /// are absorbed here.
  Status RawBytes(void* data, size_t n) {
    char* out = static_cast<char*>(data);
    while (n > 0) {
      if (pos_ == len_) {
        const ssize_t r =
            failpoint::Read("artifact.read", fd_, buf_.data(), buf_.size());
        if (r < 0) {
          if (errno == EINTR) continue;
          return SyscallError(path_, "read");
        }
        if (r == 0) {
          return Status::InvalidArgument(
              StrFormat("'%s': truncated artifact (wanted %zu bytes at "
                        "offset %llu)",
                        path_.c_str(), n,
                        static_cast<unsigned long long>(offset_)));
        }
        len_ = static_cast<size_t>(r);
        pos_ = 0;
      }
      const size_t take = std::min(n, len_ - pos_);
      std::memcpy(out, buf_.data() + pos_, take);
      pos_ += take;
      out += take;
      n -= take;
      offset_ += take;
    }
    return Status::OK();
  }

  Status ImplausibleCount(uint64_t n, uint64_t max_elems,
                          uint64_t elem_size) {
    return Status::InvalidArgument(StrFormat(
        "'%s': implausible element count %llu (limit %llu; corrupt "
        "artifact?)",
        path_.c_str(), static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(
            std::min(max_elems, RemainingBytes() / elem_size))));
  }

  int fd_;
  std::string path_;
  uint64_t file_size_;
  uint64_t offset_ = 0;
  std::vector<char> buf_;
  size_t pos_ = 0;
  size_t len_ = 0;
  uint32_t crc_ = 0;
};

void WriteModelOptions(Writer* w, const nn::ModelOptions& mo) {
  w->I64(mo.in_features);
  w->I64(mo.hidden);
  w->I64(mo.num_classes);
  w->U32(static_cast<uint32_t>(mo.num_layers));
  w->F32(mo.dropout);
  w->U32(static_cast<uint32_t>(mo.gat_heads));
  w->F32(mo.appnp_alpha);
  w->U32(static_cast<uint32_t>(mo.appnp_iterations));
  w->U64(mo.seed);
}

Status ReadModelOptions(Reader* r, nn::ModelOptions* mo) {
  uint32_t num_layers = 0, gat_heads = 0, appnp_iterations = 0;
  GR_RETURN_IF_ERROR(r->I64(&mo->in_features));
  GR_RETURN_IF_ERROR(r->I64(&mo->hidden));
  GR_RETURN_IF_ERROR(r->I64(&mo->num_classes));
  GR_RETURN_IF_ERROR(r->U32(&num_layers));
  GR_RETURN_IF_ERROR(r->F32(&mo->dropout));
  GR_RETURN_IF_ERROR(r->U32(&gat_heads));
  GR_RETURN_IF_ERROR(r->F32(&mo->appnp_alpha));
  GR_RETURN_IF_ERROR(r->U32(&appnp_iterations));
  GR_RETURN_IF_ERROR(r->U64(&mo->seed));
  mo->num_layers = static_cast<int>(num_layers);
  mo->gat_heads = static_cast<int>(gat_heads);
  mo->appnp_iterations = static_cast<int>(appnp_iterations);
  return Status::OK();
}

/// Best-effort fsync of the directory holding `path` so the rename itself
/// is durable; failure is ignored (the data fsync already happened).
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status ModelArtifact::Validate() const {
  GR_RETURN_IF_ERROR(model_options.Validate());
  if (weights.empty()) {
    return Status::InvalidArgument("artifact holds no weight tensors");
  }
  if (features == nullptr) {
    return Status::InvalidArgument("artifact holds no feature matrix");
  }
  if (features->rows() != graph.num_nodes()) {
    return Status::InvalidArgument(StrFormat(
        "feature matrix has %lld rows but the graph has %lld nodes",
        static_cast<long long>(features->rows()),
        static_cast<long long>(graph.num_nodes())));
  }
  if (features->cols() != model_options.in_features) {
    return Status::InvalidArgument(StrFormat(
        "feature width %lld != model in_features %lld",
        static_cast<long long>(features->cols()),
        static_cast<long long>(model_options.in_features)));
  }
  if (!labels.empty()) {
    if (static_cast<int64_t>(labels.size()) != graph.num_nodes()) {
      return Status::InvalidArgument(StrFormat(
          "%zu labels for %lld nodes", labels.size(),
          static_cast<long long>(graph.num_nodes())));
    }
    for (const int64_t y : labels) {
      if (y < 0 || y >= model_options.num_classes) {
        return Status::InvalidArgument(
            StrFormat("label %lld outside [0, %lld)",
                      static_cast<long long>(y),
                      static_cast<long long>(model_options.num_classes)));
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<nn::NodeClassifier>> ModelArtifact::MakeModel() const {
  GR_RETURN_IF_ERROR(Validate());
  std::unique_ptr<nn::NodeClassifier> model =
      nn::MakeModel(backbone, model_options);
  GR_RETURN_IF_ERROR(model->LoadStateDict(weights));
  return model;
}

Status ModelArtifact::Save(const std::string& path) const {
  GR_RETURN_IF_ERROR(Validate());
  const std::string tmp = path + ".tmp";
  const int fd = failpoint::Open("artifact.open", tmp.c_str(),
                                 O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return SyscallError(tmp, "open");
  FdCloser closer(fd);

  Writer w(fd, tmp);
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kArtifactSchemaVersion);
  w.U32(static_cast<uint32_t>(backbone));
  WriteModelOptions(&w, model_options);
  w.U64(seed);
  w.String(dataset_name);
  w.Checksum();  // meta

  w.I64(graph.num_nodes());
  w.I64(graph.num_edges());
  for (const auto& [u, v] : graph.edges()) {
    w.I64(u);
    w.I64(v);
  }
  w.Checksum();  // graph

  w.I64(features->rows());
  w.I64(features->cols());
  w.I64Array(features->row_ptr());
  w.I64Array(features->col_idx());
  w.F32Array(features->values());
  w.Checksum();  // features

  w.I64Array(labels);
  w.Checksum();  // labels

  w.U64(weights.size());
  for (const auto& [name, value] : weights) {
    w.String(name);
    w.Tensor(value);
  }
  w.Checksum();  // weights
  w.Bytes(kEndMarker, sizeof(kEndMarker));

  Status status = w.Finish();
  if (status.ok()) {
    while (failpoint::Fsync("artifact.fsync", fd) != 0) {
      if (errno == EINTR) continue;
      status = SyscallError(tmp, "fsync");
      break;
    }
  }
  if (status.ok()) {
    if (::close(closer.Release()) != 0) status = SyscallError(tmp, "close");
  }
  if (status.ok() &&
      failpoint::Rename("artifact.rename", tmp.c_str(), path.c_str()) != 0) {
    status = SyscallError(path, "rename");
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::OK();
}

Result<ModelArtifact> ModelArtifact::Load(const std::string& path) {
  const int fd = failpoint::Open("artifact.open", path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
    }
    return SyscallError(path, "open");
  }
  FdCloser closer(fd);
  struct stat st = {};
  if (::fstat(fd, &st) != 0) return SyscallError(path, "fstat");
  Reader r(fd, path, static_cast<uint64_t>(st.st_size));

  char magic[sizeof(kMagic)] = {};
  GR_RETURN_IF_ERROR(r.Bytes(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        StrFormat("'%s': not a GraphRARE model artifact (bad magic)",
                  path.c_str()));
  }
  uint32_t version = 0;
  GR_RETURN_IF_ERROR(r.U32(&version));
  if (version != kArtifactSchemaVersion) {
    return Status::InvalidArgument(StrFormat(
        "'%s': artifact schema v%u, this build reads v%u", path.c_str(),
        version, kArtifactSchemaVersion));
  }

  ModelArtifact art;
  uint32_t backbone_raw = 0;
  GR_RETURN_IF_ERROR(r.U32(&backbone_raw));
  if (backbone_raw > static_cast<uint32_t>(nn::BackboneKind::kAppnp)) {
    return Status::InvalidArgument(StrFormat(
        "'%s': unknown backbone kind %u", path.c_str(), backbone_raw));
  }
  art.backbone = static_cast<nn::BackboneKind>(backbone_raw);
  GR_RETURN_IF_ERROR(ReadModelOptions(&r, &art.model_options));
  GR_RETURN_IF_ERROR(r.U64(&art.seed));
  GR_RETURN_IF_ERROR(r.String(&art.dataset_name));
  GR_RETURN_IF_ERROR(r.Checksum("meta"));

  int64_t num_nodes = 0, num_edges = 0;
  GR_RETURN_IF_ERROR(r.I64(&num_nodes));
  GR_RETURN_IF_ERROR(r.I64(&num_edges));
  // The file itself bounds both counts before anything is allocated:
  // each edge occupies two i64s here, and a valid artifact later carries
  // a features row_ptr of num_nodes + 1 i64s.
  if (num_nodes < 0 || num_edges < 0 ||
      static_cast<uint64_t>(num_nodes) >
          r.RemainingBytes() / sizeof(int64_t) ||
      static_cast<uint64_t>(num_edges) >
          r.RemainingBytes() / (2 * sizeof(int64_t))) {
    return Status::InvalidArgument(
        StrFormat("'%s': implausible graph header (%lld nodes, %lld edges)",
                  path.c_str(), static_cast<long long>(num_nodes),
                  static_cast<long long>(num_edges)));
  }
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges));
  for (int64_t i = 0; i < num_edges; ++i) {
    int64_t u = 0, v = 0;
    GR_RETURN_IF_ERROR(r.I64(&u));
    GR_RETURN_IF_ERROR(r.I64(&v));
    edges.emplace_back(u, v);
  }
  GR_RETURN_IF_ERROR(r.Checksum("graph"));
  GR_ASSIGN_OR_RETURN(art.graph, graph::Graph::FromEdgeList(num_nodes, edges));

  int64_t frows = 0, fcols = 0;
  GR_RETURN_IF_ERROR(r.I64(&frows));
  GR_RETURN_IF_ERROR(r.I64(&fcols));
  if (frows < 0 || fcols < 0) {
    return Status::InvalidArgument(
        StrFormat("'%s': negative feature shape", path.c_str()));
  }
  std::vector<int64_t> row_ptr, col_idx;
  std::vector<float> values;
  GR_RETURN_IF_ERROR(
      r.I64Array(&row_ptr, static_cast<uint64_t>(frows) + 1));
  GR_RETURN_IF_ERROR(r.I64Array(&col_idx, 1ULL << 40));
  GR_RETURN_IF_ERROR(r.F32Array(&values, 1ULL << 40));
  GR_RETURN_IF_ERROR(r.Checksum("features"));
  if (static_cast<int64_t>(row_ptr.size()) != frows + 1 ||
      col_idx.size() != values.size() || row_ptr.empty() ||
      row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<int64_t>(col_idx.size())) {
    return Status::InvalidArgument(
        StrFormat("'%s': inconsistent feature CSR arrays", path.c_str()));
  }
  for (size_t i = 1; i < row_ptr.size(); ++i) {
    // Monotonicity: a shuffled row_ptr would otherwise reassign entries
    // to the wrong rows below and still "load" successfully. The CRC
    // catches wire corruption; this catches a buggy writer.
    if (row_ptr[i] < row_ptr[i - 1]) {
      return Status::InvalidArgument(StrFormat(
          "'%s': feature CSR row_ptr not monotonic", path.c_str()));
    }
  }
  // Rebuild through FromCoo: re-validates indices and restores the exact
  // canonical CSR (entries were saved in row-major sorted order).
  std::vector<tensor::CooEntry> entries;
  entries.reserve(values.size());
  for (int64_t row = 0; row < frows; ++row) {
    for (int64_t p = row_ptr[static_cast<size_t>(row)];
         p < row_ptr[static_cast<size_t>(row) + 1]; ++p) {
      if (p < 0 || p >= static_cast<int64_t>(col_idx.size()) ||
          col_idx[static_cast<size_t>(p)] < 0 ||
          col_idx[static_cast<size_t>(p)] >= fcols) {
        return Status::InvalidArgument(StrFormat(
            "'%s': feature CSR entry out of range", path.c_str()));
      }
      entries.push_back({row, col_idx[static_cast<size_t>(p)],
                         values[static_cast<size_t>(p)]});
    }
  }
  art.features = std::make_shared<tensor::CsrMatrix>(
      tensor::CsrMatrix::FromCoo(frows, fcols, std::move(entries)));

  GR_RETURN_IF_ERROR(
      r.I64Array(&art.labels, static_cast<uint64_t>(num_nodes)));
  GR_RETURN_IF_ERROR(r.Checksum("labels"));

  uint64_t num_weights = 0;
  GR_RETURN_IF_ERROR(r.U64(&num_weights));
  if (num_weights > 1ULL << 16) {
    return Status::InvalidArgument(
        StrFormat("'%s': implausible weight-tensor count %llu", path.c_str(),
                  static_cast<unsigned long long>(num_weights)));
  }
  art.weights.reserve(static_cast<size_t>(num_weights));
  for (uint64_t i = 0; i < num_weights; ++i) {
    std::string name;
    tensor::Tensor value;
    GR_RETURN_IF_ERROR(r.String(&name));
    GR_RETURN_IF_ERROR(r.Tensor(&value));
    art.weights.emplace_back(std::move(name), std::move(value));
  }
  GR_RETURN_IF_ERROR(r.Checksum("weights"));

  char end[sizeof(kEndMarker)] = {};
  GR_RETURN_IF_ERROR(r.Bytes(end, sizeof(end)));
  if (std::memcmp(end, kEndMarker, sizeof(kEndMarker)) != 0) {
    return Status::InvalidArgument(
        StrFormat("'%s': missing end marker (truncated artifact?)",
                  path.c_str()));
  }
  GR_RETURN_IF_ERROR(art.Validate());
  return art;
}

}  // namespace serve
}  // namespace graphrare

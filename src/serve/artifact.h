// Copyright 2026 The GraphRARE Authors.
//
// Deployable model artifact: everything a serving process needs to answer
// node-classification queries, in one versioned binary file. A GraphRARE
// run produces the co-trained backbone *and* the optimized topology — the
// artifact packages both (plus the features the model was trained on and
// enough metadata to rebuild the backbone) so inference never touches the
// training stack.
//
// Binary layout (little-endian, schema kArtifactSchemaVersion). The file
// is five checksummed sections followed by an end marker; each section is
// its payload followed by a u32 CRC-32 (IEEE 802.3) of exactly that
// payload, so a torn or bit-flipped file is rejected before its contents
// are trusted (the CRC fields themselves belong to no section's CRC):
//
//   meta        "GRAREART" magic (8 bytes), u32 schema version,
//               u32 backbone kind, ModelOptions (fixed-width fields, see
//               artifact.cc), u64 run seed,
//               string dataset name (u64 length + bytes)
//   u32         CRC-32 of the meta section
//   graph       num_nodes, num_edges, canonical (u < v) edge list
//   u32         CRC-32 of the graph section
//   features    CSR: rows, cols, nnz, row_ptr, col_idx, values
//   u32         CRC-32 of the features section
//   labels      count (0 = absent) + values
//   u32         CRC-32 of the labels section
//   weights     count, then per tensor: name, rows, cols, float32 data
//   u32         CRC-32 of the weights section
//   "GRAREEND"  end marker (truncation check)

#ifndef GRAPHRARE_SERVE_ARTIFACT_H_
#define GRAPHRARE_SERVE_ARTIFACT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "nn/models.h"
#include "tensor/sparse.h"

namespace graphrare {
namespace serve {

/// Bump when the binary layout changes; Load rejects other versions.
/// v2 added the per-section CRC-32 checksums.
constexpr uint32_t kArtifactSchemaVersion = 2;

/// A trained backbone + optimized graph + features, ready to serve.
struct ModelArtifact {
  nn::BackboneKind backbone = nn::BackboneKind::kGcn;
  /// Architecture hyper-parameters the weights were trained under
  /// (in_features/hidden/num_classes/... — MakeModel reconstructs from
  /// these). model_options.seed is the init seed; weights override the
  /// initialisation anyway.
  nn::ModelOptions model_options;
  /// Named parameter tensors (nn::Module::StateDict order).
  nn::StateDict weights;
  /// The optimized topology the model co-trained with (GraphRARE's G*).
  graph::Graph graph;
  /// Node features in CSR form — the same sparse matrix training fed the
  /// model, so a served forward pass is bitwise the training-time one.
  /// Shared so exporting from a Dataset and serving from an engine never
  /// copy the matrix. Never null on a valid artifact.
  std::shared_ptr<const tensor::CsrMatrix> features;
  /// Ground-truth labels (may be empty; kept for offline evaluation).
  std::vector<int64_t> labels;
  std::string dataset_name;
  /// Master seed of the producing run (provenance).
  uint64_t seed = 0;

  int64_t num_nodes() const { return graph.num_nodes(); }
  int64_t num_classes() const { return model_options.num_classes; }

  /// Structural consistency: non-empty weights, features row per node,
  /// feature width == model_options.in_features, labels absent or one per
  /// node with values in range.
  Status Validate() const;

  /// Rebuilds the backbone from `model_options` and loads `weights` into
  /// it. The returned model is independent of this artifact.
  Result<std::unique_ptr<nn::NodeClassifier>> MakeModel() const;

  /// Writes the versioned binary file atomically: the bytes go to
  /// `<path>.tmp`, are fsync'ed, and the temp file is renamed over `path`,
  /// so a crash mid-save never leaves a torn artifact at `path` (the temp
  /// file is unlinked on failure). Overwrites an existing file. Errors name
  /// the failing syscall. I/O runs through the "artifact.*" fail points.
  Status Save(const std::string& path) const;

  /// Reads an artifact written by Save. Fails with NotFound on a missing
  /// file and InvalidArgument on bad magic, wrong schema version, a
  /// section checksum mismatch, or a truncated/corrupt payload.
  static Result<ModelArtifact> Load(const std::string& path);
};

}  // namespace serve
}  // namespace graphrare

#endif  // GRAPHRARE_SERVE_ARTIFACT_H_

#include "serve/engine.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/string_util.h"
#include "data/sampler.h"
#include "graph/subgraph.h"

namespace graphrare {
namespace serve {

namespace {

/// Decorrelates the per-request sampling streams from the engine seed.
uint64_t RequestSeed(uint64_t engine_seed, uint64_t request_index) {
  return engine_seed + 0x9E3779B97F4A7C15ULL * (request_index + 1);
}

/// Stable softmax of one logit row.
std::vector<float> SoftmaxRow(const float* logits, int64_t n) {
  float max_logit = logits[0];
  for (int64_t c = 1; c < n; ++c) max_logit = std::max(max_logit, logits[c]);
  std::vector<float> probs(static_cast<size_t>(n));
  float sum = 0.0f;
  for (int64_t c = 0; c < n; ++c) {
    probs[static_cast<size_t>(c)] = std::exp(logits[c] - max_logit);
    sum += probs[static_cast<size_t>(c)];
  }
  for (float& p : probs) p /= sum;
  return probs;
}

}  // namespace

Status EngineOptions::Validate() const {
  for (const int64_t f : fanouts) {
    if (f < 1 && f != -1) {
      return Status::InvalidArgument(
          "every fanout must be >= 1 (or -1 for unlimited)");
    }
  }
  return Status::OK();
}

InferenceEngine::InferenceEngine(ModelArtifact artifact,
                                 EngineOptions options)
    : artifact_(std::move(artifact)), options_(std::move(options)) {}

Result<InferenceEngine> InferenceEngine::FromArtifact(ModelArtifact artifact,
                                                      EngineOptions options) {
  GR_RETURN_IF_ERROR(options.Validate());
  InferenceEngine engine(std::move(artifact), std::move(options));
  GR_ASSIGN_OR_RETURN(engine.model_, engine.artifact_.MakeModel());
  if (engine.full_graph_mode()) {
    // One exact forward pass at load time; queries are row lookups. This
    // also warms every lazily-built graph operator, so the engine never
    // mutates shared state once serving starts.
    nn::ModelInputs inputs;
    inputs.graph = &engine.artifact_.graph;
    inputs.features = nn::LayerInput::Sparse(engine.artifact_.features);
    engine.full_logits_ =
        engine.model_->Logits(inputs, /*training=*/false, nullptr).value();
  }
  return engine;
}

Result<InferenceEngine> InferenceEngine::LoadFrom(const std::string& path,
                                                  EngineOptions options) {
  GR_ASSIGN_OR_RETURN(ModelArtifact artifact, ModelArtifact::Load(path));
  return FromArtifact(std::move(artifact), std::move(options));
}

const tensor::Tensor& InferenceEngine::FullLogits() const {
  GR_CHECK(full_graph_mode())
      << "FullLogits() is only available in full-graph mode";
  return full_logits_;
}

Result<std::vector<Prediction>> InferenceEngine::PredictWithSeed(
    const std::vector<int64_t>& node_ids, uint64_t request_seed) const {
  if (node_ids.empty()) {
    return Status::InvalidArgument("empty query: no node ids");
  }
  for (const int64_t id : node_ids) {
    if (id < 0 || id >= num_nodes()) {
      return Status::OutOfRange(
          StrFormat("node id %lld outside [0, %lld)",
                    static_cast<long long>(id),
                    static_cast<long long>(num_nodes())));
    }
  }

  // Resolve each queried node to a row of some logit matrix.
  const tensor::Tensor* logits = nullptr;
  tensor::Tensor block_logits;
  std::vector<int64_t> rows;
  rows.reserve(node_ids.size());
  if (full_graph_mode()) {
    logits = &full_logits_;
    rows = node_ids;
  } else {
    // Sampled forward on the fanout-bounded block around the (deduped)
    // query nodes. The sampler is request-local and seeded by request
    // index, so concurrent queries never share mutable state and results
    // are independent of scheduling.
    std::vector<int64_t> seeds = node_ids;
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    data::SamplerOptions so;
    so.fanouts = options_.fanouts;
    so.replace = options_.sample_replace;
    so.seed = RequestSeed(options_.seed, request_seed);
    data::NeighborSampler sampler(&artifact_.graph, so);
    const graph::Subgraph block = sampler.SampleBlock(seeds);
    auto local_features = std::make_shared<tensor::CsrMatrix>(
        block.LocalRows(*artifact_.features));
    nn::ModelInputs inputs;
    inputs.graph = &block.graph;
    inputs.features = nn::LayerInput::Sparse(std::move(local_features));
    block_logits =
        model_->Logits(inputs, /*training=*/false, nullptr).value();
    logits = &block_logits;
    for (const int64_t id : node_ids) {
      rows.push_back(block.GlobalToLocal(id));
    }
  }

  std::vector<Prediction> out;
  out.reserve(node_ids.size());
  for (size_t i = 0; i < node_ids.size(); ++i) {
    Prediction p;
    p.node = node_ids[i];
    p.probabilities = SoftmaxRow(logits->row(rows[i]), num_classes());
    p.predicted_class = logits->ArgMaxRow(rows[i]);
    out.push_back(std::move(p));
  }
  return out;
}

Result<std::vector<Prediction>> InferenceEngine::Predict(
    const std::vector<int64_t>& node_ids) const {
  return PredictWithSeed(node_ids, 0);
}

Result<std::vector<std::vector<Prediction>>> InferenceEngine::PredictBatch(
    const std::vector<std::vector<int64_t>>& requests) const {
  std::vector<uint64_t> seeds(requests.size());
  for (size_t r = 0; r < seeds.size(); ++r) seeds[r] = static_cast<uint64_t>(r);
  return PredictBatchWithSeeds(requests, seeds);
}

Result<std::vector<std::vector<Prediction>>>
InferenceEngine::PredictBatchWithSeeds(
    const std::vector<std::vector<int64_t>>& requests,
    const std::vector<uint64_t>& seeds) const {
  if (seeds.size() != requests.size()) {
    return Status::InvalidArgument(
        StrFormat("PredictBatchWithSeeds: %zu requests but %zu seeds",
                  requests.size(), seeds.size()));
  }
  const int64_t n = static_cast<int64_t>(requests.size());
  std::vector<std::vector<Prediction>> out(requests.size());
  std::vector<Status> statuses(requests.size());
  // Requests are seeded by their caller-visible index, so any schedule
  // produces the same batch; dynamic chunking absorbs mixed query sizes.
  ParallelForDynamic(n, 1, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      auto result = PredictWithSeed(requests[static_cast<size_t>(r)],
                                    seeds[static_cast<size_t>(r)]);
      if (result.ok()) {
        out[static_cast<size_t>(r)] = std::move(result).value();
      } else {
        statuses[static_cast<size_t>(r)] = result.status();
      }
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return out;
}

std::vector<std::pair<int64_t, float>> TopKOf(const Prediction& prediction,
                                              int k) {
  const std::vector<float>& probs = prediction.probabilities;
  std::vector<std::pair<int64_t, float>> ranked;
  ranked.reserve(probs.size());
  for (size_t c = 0; c < probs.size(); ++c) {
    ranked.emplace_back(static_cast<int64_t>(c), probs[c]);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (k >= 0 && ranked.size() > static_cast<size_t>(k)) {
    ranked.resize(static_cast<size_t>(k));
  }
  return ranked;
}

Result<std::vector<std::pair<int64_t, float>>> InferenceEngine::TopK(
    int64_t node, int k) const {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  GR_ASSIGN_OR_RETURN(std::vector<Prediction> preds, Predict({node}));
  return TopKOf(preds[0], k);
}

}  // namespace serve
}  // namespace graphrare

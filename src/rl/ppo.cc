#include "rl/ppo.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace graphrare {
namespace rl {

namespace ops = tensor::ops;
using tensor::Tensor;
using tensor::Variable;

Status PpoOptions::Validate() const {
  if (hidden < 1) return Status::InvalidArgument("hidden must be >= 1");
  if (lr <= 0.0f) return Status::InvalidArgument("lr must be positive");
  if (clip <= 0.0f || clip >= 1.0f) {
    return Status::InvalidArgument("clip must be in (0, 1)");
  }
  if (gamma < 0.0f || gamma > 1.0f) {
    return Status::InvalidArgument("gamma must be in [0, 1]");
  }
  if (gae_lambda < 0.0f || gae_lambda > 1.0f) {
    return Status::InvalidArgument("gae_lambda must be in [0, 1]");
  }
  if (update_epochs < 1) {
    return Status::InvalidArgument("update_epochs must be >= 1");
  }
  if (steps_per_update < 1) {
    return Status::InvalidArgument("steps_per_update must be >= 1");
  }
  return Status::OK();
}

namespace {

/// Row-wise stable log-softmax at value level (sampling path, no autograd).
void RowLogSoftmax(const Tensor& logits, Tensor* out) {
  *out = Tensor(logits.rows(), logits.cols());
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const float* pl = logits.row(r);
    float* po = out->row(r);
    float mx = pl[0];
    for (int64_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, pl[c]);
    double lse = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) lse += std::exp(pl[c] - mx);
    const float log_z = mx + static_cast<float>(std::log(lse));
    for (int64_t c = 0; c < logits.cols(); ++c) po[c] = pl[c] - log_z;
  }
}

/// Samples one categorical choice per row from log-probabilities.
void SampleRows(const Tensor& logp, Rng* rng, std::vector<int64_t>* choices) {
  choices->clear();
  choices->reserve(static_cast<size_t>(logp.rows()));
  for (int64_t r = 0; r < logp.rows(); ++r) {
    const float* p = logp.row(r);
    double u = rng->Uniform();
    int64_t pick = logp.cols() - 1;
    double acc = 0.0;
    for (int64_t c = 0; c < logp.cols(); ++c) {
      acc += std::exp(p[c]);
      if (u < acc) {
        pick = c;
        break;
      }
    }
    choices->push_back(pick);
  }
}

/// Mean per-row categorical entropy of a logits Variable, as a graph node.
Variable MeanEntropy(const Variable& logits) {
  Variable p = ops::SoftmaxRows(logits);
  Variable lp = ops::LogSoftmaxRows(logits);
  return ops::Neg(ops::MeanAll(ops::RowSumCols(ops::Mul(p, lp))));
}

}  // namespace

PpoAgent::PpoAgent(int64_t obs_dim, const PpoOptions& options)
    : options_(options), rng_(options.seed) {
  GR_CHECK_OK(options.Validate());
  Rng init_rng(options.seed ^ 0xC0FFEEULL);
  policy_ = std::make_unique<ActorCriticPolicy>(obs_dim, options.hidden,
                                                &init_rng);
  nn::Adam::Options adam;
  adam.lr = options.lr;
  adam.weight_decay = 0.0f;
  optimizer_ = std::make_unique<nn::Adam>(policy_->Parameters(), adam);
}

ActionSample PpoAgent::Act(const Tensor& obs) {
  GR_CHECK(!pending_reward_)
      << "Act() called twice without StoreReward() in between";
  Variable obs_var(obs, /*requires_grad=*/false);
  PolicyOutput out = policy_->Forward(obs_var);

  Tensor k_logp, d_logp;
  RowLogSoftmax(out.k_logits.value(), &k_logp);
  RowLogSoftmax(out.d_logits.value(), &d_logp);

  Transition t;
  t.obs = obs;
  SampleRows(k_logp, &rng_, &t.k_choice);
  SampleRows(d_logp, &rng_, &t.d_choice);
  t.logprob = Tensor(obs.rows(), 1);
  for (int64_t i = 0; i < obs.rows(); ++i) {
    t.logprob.at(i, 0) = k_logp.at(i, t.k_choice[static_cast<size_t>(i)]) +
                         d_logp.at(i, t.d_choice[static_cast<size_t>(i)]);
  }
  t.value = out.value.value().scalar();

  ActionSample sample;
  sample.delta_k.reserve(t.k_choice.size());
  sample.delta_d.reserve(t.d_choice.size());
  for (int64_t c : t.k_choice) sample.delta_k.push_back(static_cast<int>(c) - 1);
  for (int64_t c : t.d_choice) sample.delta_d.push_back(static_cast<int>(c) - 1);

  buffer_.push_back(std::move(t));
  pending_reward_ = true;
  return sample;
}

void PpoAgent::StoreReward(double reward) {
  GR_CHECK(pending_reward_) << "StoreReward() without a preceding Act()";
  buffer_.back().reward = reward;
  pending_reward_ = false;
}

bool PpoAgent::ReadyToUpdate() const {
  return !pending_reward_ &&
         static_cast<int>(buffer_.size()) >= options_.steps_per_update;
}

double PpoAgent::MeanBufferedReward() const {
  if (buffer_.empty()) return 0.0;
  double s = 0.0;
  int count = 0;
  for (const auto& t : buffer_) {
    s += t.reward;
    ++count;
  }
  return s / count;
}

void PpoAgent::ComputeAdvantages(double last_value,
                                 std::vector<double>* advantages,
                                 std::vector<double>* returns) const {
  const size_t n = buffer_.size();
  advantages->assign(n, 0.0);
  returns->assign(n, 0.0);
  double next_adv = 0.0;
  double next_value = last_value;
  for (size_t i = n; i-- > 0;) {
    const double delta = buffer_[i].reward +
                         options_.gamma * next_value - buffer_[i].value;
    next_adv = delta + options_.gamma * options_.gae_lambda * next_adv;
    (*advantages)[i] = next_adv;
    next_value = buffer_[i].value;
    (*returns)[i] = (*advantages)[i] + buffer_[i].value;
  }
}

double PpoAgent::Update(const Tensor& last_value_obs) {
  GR_CHECK(!pending_reward_) << "Update() with a reward still pending";
  GR_CHECK(!buffer_.empty());

  Variable last_obs_var(last_value_obs, /*requires_grad=*/false);
  const double last_value =
      policy_->Forward(last_obs_var).value.value().scalar();

  std::vector<double> advantages, returns;
  ComputeAdvantages(last_value, &advantages, &returns);

  if (options_.normalize_advantage && advantages.size() > 1) {
    double mean = 0.0;
    for (double a : advantages) mean += a;
    mean /= static_cast<double>(advantages.size());
    double var = 0.0;
    for (double a : advantages) var += (a - mean) * (a - mean);
    var /= static_cast<double>(advantages.size());
    const double stddev = std::sqrt(std::max(var, 1e-12));
    for (double& a : advantages) a = (a - mean) / (stddev + 1e-8);
  }

  const float inv_steps = 1.0f / static_cast<float>(buffer_.size());
  double final_actor_loss = 0.0;
  for (int epoch = 0; epoch < options_.update_epochs; ++epoch) {
    policy_->ZeroGrad();
    double epoch_actor_loss = 0.0;
    for (size_t i = 0; i < buffer_.size(); ++i) {
      const Transition& t = buffer_[i];
      const float adv = static_cast<float>(advantages[i]);
      Variable obs_var(t.obs, /*requires_grad=*/false);
      PolicyOutput out = policy_->Forward(obs_var);

      Variable k_logp = ops::GatherCols(ops::LogSoftmaxRows(out.k_logits),
                                        t.k_choice);
      Variable d_logp = ops::GatherCols(ops::LogSoftmaxRows(out.d_logits),
                                        t.d_choice);
      Variable logp_new = ops::Add(k_logp, d_logp);  // (N,1)
      Variable old_logp(t.logprob, /*requires_grad=*/false);

      Variable actor_loss;
      if (options_.joint_ratio) {
        // Strict SB3 semantics: a single importance ratio per step.
        Variable ratio =
            ops::Exp(ops::Sub(ops::SumAll(logp_new), ops::SumAll(old_logp)));
        Variable surr1 = ops::Scale(ratio, adv);
        Variable surr2 = ops::Scale(
            ops::Clamp(ratio, 1.0f - options_.clip, 1.0f + options_.clip),
            adv);
        actor_loss = ops::Neg(ops::Min(surr1, surr2));
      } else {
        // Per-node factorised ratios, averaged.
        Variable ratio = ops::Exp(ops::Sub(logp_new, old_logp));
        Variable surr1 = ops::Scale(ratio, adv);
        Variable surr2 = ops::Scale(
            ops::Clamp(ratio, 1.0f - options_.clip, 1.0f + options_.clip),
            adv);
        actor_loss = ops::Neg(ops::MeanAll(ops::Min(surr1, surr2)));
      }

      Variable value_loss = ops::MseLoss(
          out.value,
          Variable(Tensor::Scalar(static_cast<float>(returns[i])), false));
      Variable entropy =
          ops::Add(MeanEntropy(out.k_logits), MeanEntropy(out.d_logits));

      Variable total = ops::Add(
          actor_loss,
          ops::Sub(ops::Scale(value_loss, options_.value_coef),
                   ops::Scale(entropy, options_.entropy_coef)));
      // Average gradients over the rollout: scale each step's contribution.
      ops::Scale(total, inv_steps).Backward();
      epoch_actor_loss += actor_loss.value().scalar();
    }
    optimizer_->Step();
    final_actor_loss = epoch_actor_loss / static_cast<double>(buffer_.size());
  }

  buffer_.clear();
  ++num_updates_;
  return final_actor_loss;
}

}  // namespace rl
}  // namespace graphrare

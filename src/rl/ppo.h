// Copyright 2026 The GraphRARE Authors.
//
// Proximal Policy Optimization (Schulman et al. 2017) for the multi-discrete
// topology MDP. Replaces Stable-Baselines3 [33] + OpenAI Gym [2] in the
// paper's stack.
//
// The joint action factorises over nodes and heads; the clipped surrogate is
// computed per node (the per-node log-prob is logp_k + logp_d) and averaged,
// which keeps importance ratios bounded for graphs with thousands of nodes.
// An option restores the strict SB3 behaviour (single joint ratio per step).

#ifndef GRAPHRARE_RL_PPO_H_
#define GRAPHRARE_RL_PPO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "nn/optim.h"
#include "rl/policy.h"

namespace graphrare {
namespace rl {

/// PPO hyper-parameters.
struct PpoOptions {
  int64_t hidden = 64;
  float lr = 3e-4f;
  float clip = 0.2f;
  float gamma = 0.99f;
  float gae_lambda = 0.95f;
  float value_coef = 0.5f;
  float entropy_coef = 0.01f;
  int update_epochs = 4;
  /// Steps collected between updates (rollout length).
  int steps_per_update = 8;
  bool normalize_advantage = true;
  /// false: per-node factorised ratios (default, numerically robust).
  /// true: one joint ratio per step (strict SB3 MultiDiscrete semantics).
  bool joint_ratio = false;
  uint64_t seed = 5;

  Status Validate() const;
};

/// The sampled action for one step: per-node deltas in {-1, 0, +1}.
struct ActionSample {
  std::vector<int> delta_k;
  std::vector<int> delta_d;
};

/// One stored transition.
struct Transition {
  tensor::Tensor obs;           // (N, obs_dim)
  std::vector<int64_t> k_choice;  // per node in {0,1,2}
  std::vector<int64_t> d_choice;
  tensor::Tensor logprob;       // (N, 1) per-node joint logprob (k + d)
  double value = 0.0;
  double reward = 0.0;
};

/// PPO agent: act / store-reward / update cycle driven by the co-training
/// loop. Owns the policy network and its optimizer.
class PpoAgent {
 public:
  PpoAgent(int64_t obs_dim, const PpoOptions& options);

  /// Samples an action for the given observation and records the transition
  /// (reward filled in later via StoreReward).
  ActionSample Act(const tensor::Tensor& obs);

  /// Attaches the reward to the most recent transition.
  void StoreReward(double reward);

  /// True when the rollout buffer reached steps_per_update.
  bool ReadyToUpdate() const;

  /// Runs PPO epochs over the buffered rollout, then clears the buffer.
  /// `last_value_obs` bootstraps the value of the state following the final
  /// transition. Returns the mean actor loss of the final epoch.
  double Update(const tensor::Tensor& last_value_obs);

  /// Mean reward currently in the buffer (telemetry for Fig. 6c).
  double MeanBufferedReward() const;

  const ActorCriticPolicy& policy() const { return *policy_; }
  int64_t num_updates() const { return num_updates_; }

 private:
  /// GAE(lambda) advantages + returns for the buffered trajectory.
  void ComputeAdvantages(double last_value, std::vector<double>* advantages,
                         std::vector<double>* returns) const;

  PpoOptions options_;
  std::unique_ptr<ActorCriticPolicy> policy_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<Transition> buffer_;
  Rng rng_;
  int64_t num_updates_ = 0;
  bool pending_reward_ = false;
};

}  // namespace rl
}  // namespace graphrare

#endif  // GRAPHRARE_RL_PPO_H_

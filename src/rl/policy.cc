#include "rl/policy.h"

#include "tensor/ops.h"

namespace graphrare {
namespace rl {

namespace ops = tensor::ops;

ActorCriticPolicy::ActorCriticPolicy(int64_t obs_dim, int64_t hidden,
                                     Rng* rng) {
  fc1_ = std::make_unique<nn::Linear>(obs_dim, hidden, rng);
  fc2_ = std::make_unique<nn::Linear>(hidden, hidden, rng);
  k_head_ = std::make_unique<nn::Linear>(hidden, kNumActionChoices, rng);
  d_head_ = std::make_unique<nn::Linear>(hidden, kNumActionChoices, rng);
  value_head_ = std::make_unique<nn::Linear>(hidden, 1, rng);
  RegisterChild("fc1", fc1_.get());
  RegisterChild("fc2", fc2_.get());
  RegisterChild("k_head", k_head_.get());
  RegisterChild("d_head", d_head_.get());
  RegisterChild("value_head", value_head_.get());
}

PolicyOutput ActorCriticPolicy::Forward(const tensor::Variable& obs) const {
  tensor::Variable h = ops::Tanh(fc1_->Forward(obs));
  h = ops::Tanh(fc2_->Forward(h));
  PolicyOutput out;
  out.k_logits = k_head_->Forward(h);
  out.d_logits = d_head_->Forward(h);
  out.value = ops::MeanAll(value_head_->Forward(h));
  return out;
}

}  // namespace rl
}  // namespace graphrare

// Copyright 2026 The GraphRARE Authors.
//
// Generic environment interface for the multi-discrete topology MDP. The
// GraphRARE co-training loop drives PpoAgent directly (Algorithm 1), but
// the interface lets the agent be reused on other environments (tests use a
// synthetic bandit-style env to validate learning).

#ifndef GRAPHRARE_RL_ENV_H_
#define GRAPHRARE_RL_ENV_H_

#include "rl/ppo.h"
#include "tensor/tensor.h"

namespace graphrare {
namespace rl {

/// A multi-discrete environment: observations are one row per action
/// component pair, actions are per-row {-1, 0, +1} deltas on two channels.
class Env {
 public:
  virtual ~Env() = default;

  /// Resets to the initial state, returning the first observation.
  virtual tensor::Tensor Reset() = 0;

  /// Applies the action; returns the reward and writes the next observation.
  virtual double Step(const ActionSample& action,
                      tensor::Tensor* next_obs) = 0;

  virtual int64_t obs_dim() const = 0;
  virtual int64_t num_components() const = 0;
};

/// Runs `steps` agent-environment interactions with PPO updates whenever the
/// rollout buffer fills. Returns the sequence of rewards (telemetry).
std::vector<double> RunAgentOnEnv(PpoAgent* agent, Env* env, int steps);

/// Lockstep-batched episode driver for externally constructed env sets
/// (e.g. one env per sampled subgraph block): resets every env, then for
/// `steps` iterations row-concatenates the observations, samples ONE action
/// for the combined rows (a single policy forward for the whole batch),
/// splits the action back per env, and stores the mean env reward as the
/// transition reward. PPO updates trigger on the shared rollout buffer as
/// usual. With a single env this reproduces RunAgentOnEnv step-for-step,
/// bitwise. Returns the per-step mean rewards.
std::vector<double> RunAgentOnBatchedEnvs(PpoAgent* agent,
                                          const std::vector<Env*>& envs,
                                          int steps);

}  // namespace rl
}  // namespace graphrare

#endif  // GRAPHRARE_RL_ENV_H_

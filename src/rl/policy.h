// Copyright 2026 The GraphRARE Authors.
//
// Actor-critic network for the multi-discrete topology MDP (paper Sec.
// IV-B). The observation is one row per node; a shared tanh MLP trunk feeds
// two 3-way categorical heads (Delta-k and Delta-d per node, actions
// {-1, 0, +1}) and a value head whose per-node outputs are mean-pooled into
// the scalar state value. This mirrors Stable-Baselines3's MultiDiscrete
// MlpPolicy, with the per-node factorisation made explicit.

#ifndef GRAPHRARE_RL_POLICY_H_
#define GRAPHRARE_RL_POLICY_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace graphrare {
namespace rl {

/// Number of choices per action component: {-1, 0, +1}.
inline constexpr int kNumActionChoices = 3;

/// Forward products of the policy network.
struct PolicyOutput {
  tensor::Variable k_logits;  ///< (N, 3) logits of the Delta-k head
  tensor::Variable d_logits;  ///< (N, 3) logits of the Delta-d head
  tensor::Variable value;     ///< (1, 1) state value
};

/// Shared-trunk actor-critic MLP.
class ActorCriticPolicy : public nn::Module {
 public:
  ActorCriticPolicy(int64_t obs_dim, int64_t hidden, Rng* rng);

  /// obs is (N, obs_dim); one row per node.
  PolicyOutput Forward(const tensor::Variable& obs) const;

  int64_t obs_dim() const { return fc1_->in_features(); }

 private:
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  std::unique_ptr<nn::Linear> k_head_;
  std::unique_ptr<nn::Linear> d_head_;
  std::unique_ptr<nn::Linear> value_head_;
};

}  // namespace rl
}  // namespace graphrare

#endif  // GRAPHRARE_RL_POLICY_H_

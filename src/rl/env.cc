#include "rl/env.h"

#include <algorithm>

namespace graphrare {
namespace rl {

std::vector<double> RunAgentOnEnv(PpoAgent* agent, Env* env, int steps) {
  GR_CHECK(agent != nullptr && env != nullptr);
  std::vector<double> rewards;
  rewards.reserve(static_cast<size_t>(steps));
  tensor::Tensor obs = env->Reset();
  for (int t = 0; t < steps; ++t) {
    const ActionSample action = agent->Act(obs);
    tensor::Tensor next_obs;
    const double reward = env->Step(action, &next_obs);
    agent->StoreReward(reward);
    rewards.push_back(reward);
    if (agent->ReadyToUpdate()) {
      agent->Update(next_obs);
    }
    obs = std::move(next_obs);
  }
  return rewards;
}

namespace {

/// Row-concatenates per-env observation matrices (all share obs_dim).
tensor::Tensor ConcatRows(const std::vector<tensor::Tensor>& parts) {
  GR_CHECK(!parts.empty());
  const int64_t cols = parts[0].cols();
  int64_t rows = 0;
  for (const auto& p : parts) {
    GR_CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  tensor::Tensor out(rows, cols);
  int64_t at = 0;
  for (const auto& p : parts) {
    for (int64_t r = 0; r < p.rows(); ++r, ++at) {
      std::copy(p.row(r), p.row(r) + cols, out.row(at));
    }
  }
  return out;
}

/// The rows [begin, begin + count) of a batched action.
ActionSample SliceAction(const ActionSample& action, int64_t begin,
                         int64_t count) {
  ActionSample out;
  out.delta_k.assign(action.delta_k.begin() + begin,
                     action.delta_k.begin() + begin + count);
  out.delta_d.assign(action.delta_d.begin() + begin,
                     action.delta_d.begin() + begin + count);
  return out;
}

}  // namespace

std::vector<double> RunAgentOnBatchedEnvs(PpoAgent* agent,
                                          const std::vector<Env*>& envs,
                                          int steps) {
  GR_CHECK(agent != nullptr);
  GR_CHECK(!envs.empty());
  std::vector<tensor::Tensor> obs(envs.size());
  for (size_t i = 0; i < envs.size(); ++i) {
    GR_CHECK(envs[i] != nullptr);
    obs[i] = envs[i]->Reset();
  }
  std::vector<double> mean_rewards;
  mean_rewards.reserve(static_cast<size_t>(steps));
  for (int t = 0; t < steps; ++t) {
    const ActionSample action = agent->Act(ConcatRows(obs));
    double reward_sum = 0.0;
    int64_t row = 0;
    for (size_t i = 0; i < envs.size(); ++i) {
      const int64_t rows = obs[i].rows();
      tensor::Tensor next;
      reward_sum += envs[i]->Step(SliceAction(action, row, rows), &next);
      GR_CHECK_EQ(next.rows(), rows)
          << "batched envs must keep their component count fixed";
      obs[i] = std::move(next);
      row += rows;
    }
    const double mean_reward =
        reward_sum / static_cast<double>(envs.size());
    agent->StoreReward(mean_reward);
    mean_rewards.push_back(mean_reward);
    if (agent->ReadyToUpdate()) {
      agent->Update(ConcatRows(obs));
    }
  }
  return mean_rewards;
}

}  // namespace rl
}  // namespace graphrare

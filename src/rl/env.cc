#include "rl/env.h"

namespace graphrare {
namespace rl {

std::vector<double> RunAgentOnEnv(PpoAgent* agent, Env* env, int steps) {
  GR_CHECK(agent != nullptr && env != nullptr);
  std::vector<double> rewards;
  rewards.reserve(static_cast<size_t>(steps));
  tensor::Tensor obs = env->Reset();
  for (int t = 0; t < steps; ++t) {
    const ActionSample action = agent->Act(obs);
    tensor::Tensor next_obs;
    const double reward = env->Step(action, &next_obs);
    agent->StoreReward(reward);
    rewards.push_back(reward);
    if (agent->ReadyToUpdate()) {
      agent->Update(next_obs);
    }
    obs = std::move(next_obs);
  }
  return rewards;
}

}  // namespace rl
}  // namespace graphrare

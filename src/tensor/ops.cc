#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/parallel.h"

namespace graphrare {
namespace tensor {
namespace ops {

namespace {

/// Adds `delta` into the parent's grad buffer if it participates in autograd.
void Accumulate(const std::shared_ptr<AutogradNode>& parent,
                const Tensor& delta) {
  if (!parent->requires_grad) return;
  parent->EnsureGrad();
  parent->grad.AddInPlace(delta);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  GR_CHECK(a.value().SameShape(b.value()))
      << "Add shape mismatch " << a.value().rows() << "x" << a.value().cols()
      << " vs " << b.value().rows() << "x" << b.value().cols();
  Tensor out = a.value();
  out.AddInPlace(b.value());
  return MakeOpNode(std::move(out), {a, b}, [](AutogradNode* n) {
    Accumulate(n->parents[0], n->grad);
    Accumulate(n->parents[1], n->grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  GR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  out.AxpyInPlace(-1.0f, b.value());
  return MakeOpNode(std::move(out), {a, b}, [](AutogradNode* n) {
    Accumulate(n->parents[0], n->grad);
    if (n->parents[1]->requires_grad) {
      n->parents[1]->EnsureGrad();
      n->parents[1]->grad.AxpyInPlace(-1.0f, n->grad);
    }
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  GR_CHECK(a.value().SameShape(b.value()));
  Tensor out = a.value();
  out.MulInPlace(b.value());
  return MakeOpNode(std::move(out), {a, b}, [](AutogradNode* n) {
    if (n->parents[0]->requires_grad) {
      Tensor d = n->grad;
      d.MulInPlace(n->parents[1]->value);
      Accumulate(n->parents[0], d);
    }
    if (n->parents[1]->requires_grad) {
      Tensor d = n->grad;
      d.MulInPlace(n->parents[0]->value);
      Accumulate(n->parents[1], d);
    }
  });
}

Variable AddBias(const Variable& a, const Variable& bias) {
  GR_CHECK_EQ(bias.value().rows(), 1);
  GR_CHECK_EQ(bias.value().cols(), a.value().cols());
  Tensor out = a.value();
  const float* pb = bias.value().data();
  for (int64_t r = 0; r < out.rows(); ++r) {
    float* pr = out.row(r);
    for (int64_t c = 0; c < out.cols(); ++c) pr[c] += pb[c];
  }
  return MakeOpNode(std::move(out), {a, bias}, [](AutogradNode* n) {
    Accumulate(n->parents[0], n->grad);
    if (n->parents[1]->requires_grad) {
      Accumulate(n->parents[1], ColSum(n->grad));
    }
  });
}

Variable AddBiasRelu(const Variable& a, const Variable& bias) {
  GR_CHECK_EQ(bias.value().rows(), 1);
  GR_CHECK_EQ(bias.value().cols(), a.value().cols());
  Tensor out = a.value();
  const float* pb = bias.value().data();
  const int64_t cols = out.cols();
  {
    float* po = out.data();
    ParallelFor(out.rows(), 256, [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        float* pr = po + r * cols;
        for (int64_t c = 0; c < cols; ++c) {
          const float v = pr[c] + pb[c];
          pr[c] = v > 0.0f ? v : 0.0f;
        }
      }
    });
  }
  // The mask is recoverable from the saved output (y > 0 iff x > 0), so no
  // extra buffer is captured.
  return MakeOpNode(std::move(out), {a, bias}, [](AutogradNode* n) {
    const Tensor& y = n->value;
    const int64_t rows = y.rows();
    const int64_t cols = y.cols();
    if (n->parents[0]->requires_grad) {
      n->parents[0]->EnsureGrad();
      Tensor& pg = n->parents[0]->grad;
      ParallelFor(rows, 256, [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* gy = n->grad.row(r);
          const float* py = y.row(r);
          float* pgr = pg.row(r);
          for (int64_t c = 0; c < cols; ++c) {
            if (py[c] > 0.0f) pgr[c] += gy[c];
          }
        }
      });
    }
    if (n->parents[1]->requires_grad) {
      // Masked column sums with the same fixed row-block structure as
      // ColSum, so the fused path stays bitwise equal to the
      // Relu -> AddBias backward chain at any size.
      Tensor db = ParallelReduce<Tensor>(
          rows, kColSumRowBlock, Tensor(1, cols),
          [&](int64_t r0, int64_t r1) {
            Tensor partial(1, cols);
            float* po = partial.data();
            for (int64_t r = r0; r < r1; ++r) {
              const float* gy = n->grad.row(r);
              const float* py = y.row(r);
              for (int64_t c = 0; c < cols; ++c) {
                if (py[c] > 0.0f) po[c] += gy[c];
              }
            }
            return partial;
          },
          [](Tensor acc, Tensor partial) {
            acc.AddInPlace(partial);
            return acc;
          });
      Accumulate(n->parents[1], db);
    }
  });
}

Variable Scale(const Variable& a, float c) {
  Tensor out = a.value();
  out.ScaleInPlace(c);
  return MakeOpNode(std::move(out), {a}, [c](AutogradNode* n) {
    if (n->parents[0]->requires_grad) {
      n->parents[0]->EnsureGrad();
      n->parents[0]->grad.AxpyInPlace(c, n->grad);
    }
  });
}

Variable AddScalar(const Variable& a, float c) {
  Tensor out = a.value();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] += c;
  return MakeOpNode(std::move(out), {a}, [](AutogradNode* n) {
    Accumulate(n->parents[0], n->grad);
  });
}

Variable Neg(const Variable& a) { return Scale(a, -1.0f); }

Variable Square(const Variable& a) { return Mul(a, a); }

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor out = tensor::MatMul(a.value(), b.value());
  return MakeOpNode(std::move(out), {a, b}, [](AutogradNode* n) {
    // dA = G * B^T ; dB = A^T * G
    if (n->parents[0]->requires_grad) {
      Accumulate(n->parents[0],
                 tensor::MatMulTransB(n->grad, n->parents[1]->value));
    }
    if (n->parents[1]->requires_grad) {
      Accumulate(n->parents[1],
                 tensor::MatMulTransA(n->parents[0]->value, n->grad));
    }
  });
}

Variable SpMM(std::shared_ptr<const CsrMatrix> s, const Variable& x) {
  GR_CHECK(s != nullptr);
  Tensor out = s->SpMM(x.value());
  return MakeOpNode(std::move(out), {x}, [s](AutogradNode* n) {
    if (n->parents[0]->requires_grad) {
      Accumulate(n->parents[0], s->Transposed()->SpMM(n->grad));
    }
  });
}

namespace {

/// Shared implementation for elementwise unary ops. `dydx` receives (x, y)
/// and returns the local derivative.
template <typename FwdFn, typename GradFn>
Variable UnaryElementwise(const Variable& a, FwdFn fwd, GradFn dydx) {
  Tensor out = a.value();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = fwd(p[i]);
  Tensor saved_out = out;  // captured for gradient formulas that use y
  return MakeOpNode(
      std::move(out), {a},
      [saved_out = std::move(saved_out), dydx](AutogradNode* n) {
        if (!n->parents[0]->requires_grad) return;
        const Tensor& x = n->parents[0]->value;
        Tensor d = n->grad;
        float* pd = d.data();
        const float* px = x.data();
        const float* py = saved_out.data();
        for (int64_t i = 0; i < d.numel(); ++i) {
          pd[i] *= dydx(px[i], py[i]);
        }
        Accumulate(n->parents[0], d);
      });
}

}  // namespace

Variable Relu(const Variable& a) {
  return UnaryElementwise(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Variable LeakyRelu(const Variable& a, float negative_slope) {
  return UnaryElementwise(
      a,
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      });
}

Variable Elu(const Variable& a, float alpha) {
  return UnaryElementwise(
      a,
      [alpha](float x) { return x > 0.0f ? x : alpha * (std::exp(x) - 1.0f); },
      [alpha](float x, float y) { return x > 0.0f ? 1.0f : y + alpha; });
}

Variable Tanh(const Variable& a) {
  return UnaryElementwise(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Variable Sigmoid(const Variable& a) {
  return UnaryElementwise(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Variable Exp(const Variable& a) {
  return UnaryElementwise(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Variable Log(const Variable& a) {
  return UnaryElementwise(
      a,
      [](float x) {
        GR_DCHECK(x > 0.0f);
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  GR_CHECK(p >= 0.0f && p < 1.0f) << "dropout p must be in [0,1), got " << p;
  if (!training || p == 0.0f) return a;
  GR_CHECK(rng != nullptr);
  const float keep = 1.0f - p;
  Tensor mask(a.value().rows(), a.value().cols());
  Tensor out = a.value();
  float* pm = mask.data();
  float* po = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    const bool kept = !rng->Bernoulli(p);
    pm[i] = kept ? 1.0f / keep : 0.0f;
    po[i] *= pm[i];
  }
  return MakeOpNode(std::move(out), {a},
                    [mask = std::move(mask)](AutogradNode* n) {
                      if (!n->parents[0]->requires_grad) return;
                      Tensor d = n->grad;
                      d.MulInPlace(mask);
                      Accumulate(n->parents[0], d);
                    });
}

Variable LogSoftmaxRows(const Variable& a) {
  const Tensor& x = a.value();
  Tensor out(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float* px = x.row(r);
    float* po = out.row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t c = 0; c < x.cols(); ++c) mx = std::max(mx, px[c]);
    double lse = 0.0;
    for (int64_t c = 0; c < x.cols(); ++c) lse += std::exp(px[c] - mx);
    const float log_z = mx + static_cast<float>(std::log(lse));
    for (int64_t c = 0; c < x.cols(); ++c) po[c] = px[c] - log_z;
  }
  Tensor saved = out;
  return MakeOpNode(
      std::move(out), {a}, [saved = std::move(saved)](AutogradNode* n) {
        if (!n->parents[0]->requires_grad) return;
        // dX = G - softmax(x) * rowsum(G)
        Tensor d = n->grad;
        for (int64_t r = 0; r < d.rows(); ++r) {
          const float* pg = n->grad.row(r);
          const float* plp = saved.row(r);
          float* pd = d.row(r);
          float gsum = 0.0f;
          for (int64_t c = 0; c < d.cols(); ++c) gsum += pg[c];
          for (int64_t c = 0; c < d.cols(); ++c) {
            pd[c] = pg[c] - std::exp(plp[c]) * gsum;
          }
        }
        Accumulate(n->parents[0], d);
      });
}

Variable SoftmaxRows(const Variable& a) {
  const Tensor& x = a.value();
  Tensor out(x.rows(), x.cols());
  for (int64_t r = 0; r < x.rows(); ++r) {
    const float* px = x.row(r);
    float* po = out.row(r);
    float mx = -std::numeric_limits<float>::infinity();
    for (int64_t c = 0; c < x.cols(); ++c) mx = std::max(mx, px[c]);
    double z = 0.0;
    for (int64_t c = 0; c < x.cols(); ++c) {
      po[c] = std::exp(px[c] - mx);
      z += po[c];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int64_t c = 0; c < x.cols(); ++c) po[c] *= inv;
  }
  Tensor saved = out;
  return MakeOpNode(
      std::move(out), {a}, [saved = std::move(saved)](AutogradNode* n) {
        if (!n->parents[0]->requires_grad) return;
        // dX = y .* (G - rowsum(G .* y))
        Tensor d = n->grad;
        for (int64_t r = 0; r < d.rows(); ++r) {
          const float* pg = n->grad.row(r);
          const float* py = saved.row(r);
          float* pd = d.row(r);
          float dot = 0.0f;
          for (int64_t c = 0; c < d.cols(); ++c) dot += pg[c] * py[c];
          for (int64_t c = 0; c < d.cols(); ++c) {
            pd[c] = py[c] * (pg[c] - dot);
          }
        }
        Accumulate(n->parents[0], d);
      });
}

Variable NllLoss(const Variable& logp, const std::vector<int64_t>& labels) {
  const Tensor& lp = logp.value();
  GR_CHECK_EQ(lp.rows(), static_cast<int64_t>(labels.size()));
  GR_CHECK_GT(lp.rows(), 0);
  double loss = 0.0;
  for (int64_t i = 0; i < lp.rows(); ++i) {
    GR_CHECK(labels[static_cast<size_t>(i)] >= 0 &&
             labels[static_cast<size_t>(i)] < lp.cols())
        << "label out of range";
    loss -= lp.at(i, labels[static_cast<size_t>(i)]);
  }
  loss /= static_cast<double>(lp.rows());
  return MakeOpNode(Tensor::Scalar(static_cast<float>(loss)), {logp},
                    [labels](AutogradNode* n) {
                      if (!n->parents[0]->requires_grad) return;
                      const float g = n->grad.scalar();
                      const int64_t m = n->parents[0]->value.rows();
                      n->parents[0]->EnsureGrad();
                      Tensor& pg = n->parents[0]->grad;
                      const float scale = g / static_cast<float>(m);
                      for (int64_t i = 0; i < m; ++i) {
                        pg.at(i, labels[static_cast<size_t>(i)]) -= scale;
                      }
                    });
}

Variable LogSoftmaxNll(const Variable& logits, std::vector<int64_t> index,
                       std::vector<int64_t> labels) {
  GR_CHECK_EQ(index.size(), labels.size());
  GR_CHECK(!index.empty());
  const Tensor& x = logits.value();
  const int64_t m = static_cast<int64_t>(index.size());
  const int64_t cols = x.cols();
  GR_CHECK_GT(cols, 0);
  for (int64_t i = 0; i < m; ++i) {
    GR_CHECK(index[static_cast<size_t>(i)] >= 0 &&
             index[static_cast<size_t>(i)] < x.rows())
        << "gather index out of range";
    GR_CHECK(labels[static_cast<size_t>(i)] >= 0 &&
             labels[static_cast<size_t>(i)] < cols)
        << "label out of range";
  }

  // One pass per selected row: row max, log partition, and the picked
  // log-probability. log_z is saved so backward can rebuild the softmax
  // factors from the parent's logits without a stored (m, c) matrix.
  Tensor logz(m, 1);
  Tensor picked(m, 1);
  ParallelFor(m, 256, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float* px = x.row(index[static_cast<size_t>(i)]);
      float mx = -std::numeric_limits<float>::infinity();
      for (int64_t c = 0; c < cols; ++c) mx = std::max(mx, px[c]);
      double lse = 0.0;
      for (int64_t c = 0; c < cols; ++c) lse += std::exp(px[c] - mx);
      const float log_z = mx + static_cast<float>(std::log(lse));
      logz.at(i, 0) = log_z;
      picked.at(i, 0) = px[labels[static_cast<size_t>(i)]] - log_z;
    }
  });
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) loss -= picked.at(i, 0);
  loss /= static_cast<double>(m);

  return MakeOpNode(
      Tensor::Scalar(static_cast<float>(loss)), {logits},
      [index = std::move(index), labels = std::move(labels),
       logz = std::move(logz)](AutogradNode* n) {
        if (!n->parents[0]->requires_grad) return;
        const Tensor& x = n->parents[0]->value;
        const int64_t cols = x.cols();
        const float g = n->grad.scalar();
        const float scale = g / static_cast<float>(index.size());
        n->parents[0]->EnsureGrad();
        Tensor& pg = n->parents[0]->grad;
        // Serial over the selection: duplicate indices must accumulate in
        // a fixed order.
        for (size_t i = 0; i < index.size(); ++i) {
          const int64_t r = index[i];
          const float lz = logz.at(static_cast<int64_t>(i), 0);
          const float* px = x.row(r);
          float* pgr = pg.row(r);
          for (int64_t c = 0; c < cols; ++c) {
            pgr[c] += scale * std::exp(px[c] - lz);
          }
          pgr[labels[i]] -= scale;
        }
      });
}

Variable SumAll(const Variable& a) {
  return MakeOpNode(Tensor::Scalar(a.value().Sum()), {a},
                    [](AutogradNode* n) {
                      if (!n->parents[0]->requires_grad) return;
                      const float g = n->grad.scalar();
                      n->parents[0]->EnsureGrad();
                      Tensor& pg = n->parents[0]->grad;
                      float* p = pg.data();
                      for (int64_t i = 0; i < pg.numel(); ++i) p[i] += g;
                    });
}

Variable MeanAll(const Variable& a) {
  const int64_t n_elem = a.value().numel();
  GR_CHECK_GT(n_elem, 0);
  return MakeOpNode(Tensor::Scalar(a.value().Mean()), {a},
                    [n_elem](AutogradNode* n) {
                      if (!n->parents[0]->requires_grad) return;
                      const float g =
                          n->grad.scalar() / static_cast<float>(n_elem);
                      n->parents[0]->EnsureGrad();
                      Tensor& pg = n->parents[0]->grad;
                      float* p = pg.data();
                      for (int64_t i = 0; i < pg.numel(); ++i) p[i] += g;
                    });
}

Variable RowSumCols(const Variable& a) {
  Tensor out = RowSum(a.value());
  return MakeOpNode(std::move(out), {a}, [](AutogradNode* n) {
    if (!n->parents[0]->requires_grad) return;
    n->parents[0]->EnsureGrad();
    Tensor& pg = n->parents[0]->grad;
    for (int64_t r = 0; r < pg.rows(); ++r) {
      const float g = n->grad.at(r, 0);
      float* p = pg.row(r);
      for (int64_t c = 0; c < pg.cols(); ++c) p[c] += g;
    }
  });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  GR_CHECK(!parts.empty());
  const int64_t rows = parts[0].value().rows();
  int64_t total_cols = 0;
  for (const auto& p : parts) {
    GR_CHECK_EQ(p.value().rows(), rows);
    total_cols += p.value().cols();
  }
  Tensor out(rows, total_cols);
  std::vector<int64_t> offsets;
  offsets.reserve(parts.size() + 1);
  int64_t off = 0;
  for (const auto& p : parts) {
    offsets.push_back(off);
    const Tensor& v = p.value();
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(v.row(r), v.row(r) + v.cols(), out.row(r) + off);
    }
    off += v.cols();
  }
  offsets.push_back(off);
  return MakeOpNode(std::move(out), parts,
                    [offsets](AutogradNode* n) {
                      for (size_t k = 0; k < n->parents.size(); ++k) {
                        auto& parent = n->parents[k];
                        if (!parent->requires_grad) continue;
                        parent->EnsureGrad();
                        Tensor& pg = parent->grad;
                        const int64_t o = offsets[k];
                        for (int64_t r = 0; r < pg.rows(); ++r) {
                          const float* src = n->grad.row(r) + o;
                          float* dst = pg.row(r);
                          for (int64_t c = 0; c < pg.cols(); ++c) {
                            dst[c] += src[c];
                          }
                        }
                      }
                    });
}

Variable GatherRows(const Variable& x, std::vector<int64_t> idx) {
  const Tensor& v = x.value();
  Tensor out(static_cast<int64_t>(idx.size()), v.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    GR_CHECK(idx[i] >= 0 && idx[i] < v.rows()) << "gather index out of range";
    std::copy(v.row(idx[i]), v.row(idx[i]) + v.cols(),
              out.row(static_cast<int64_t>(i)));
  }
  return MakeOpNode(std::move(out), {x}, [idx = std::move(idx)](AutogradNode* n) {
    if (!n->parents[0]->requires_grad) return;
    n->parents[0]->EnsureGrad();
    Tensor& pg = n->parents[0]->grad;
    for (size_t i = 0; i < idx.size(); ++i) {
      const float* src = n->grad.row(static_cast<int64_t>(i));
      float* dst = pg.row(idx[i]);
      for (int64_t c = 0; c < pg.cols(); ++c) dst[c] += src[c];
    }
  });
}

Variable ScatterAddRows(const Variable& x, std::vector<int64_t> idx,
                        int64_t num_rows) {
  const Tensor& v = x.value();
  GR_CHECK_EQ(v.rows(), static_cast<int64_t>(idx.size()));
  Tensor out(num_rows, v.cols());
  for (size_t i = 0; i < idx.size(); ++i) {
    GR_CHECK(idx[i] >= 0 && idx[i] < num_rows) << "scatter index out of range";
    const float* src = v.row(static_cast<int64_t>(i));
    float* dst = out.row(idx[i]);
    for (int64_t c = 0; c < v.cols(); ++c) dst[c] += src[c];
  }
  return MakeOpNode(std::move(out), {x}, [idx = std::move(idx)](AutogradNode* n) {
    if (!n->parents[0]->requires_grad) return;
    n->parents[0]->EnsureGrad();
    Tensor& pg = n->parents[0]->grad;
    for (size_t i = 0; i < idx.size(); ++i) {
      const float* src = n->grad.row(idx[i]);
      float* dst = pg.row(static_cast<int64_t>(i));
      for (int64_t c = 0; c < pg.cols(); ++c) dst[c] += src[c];
    }
  });
}

Variable GatherCols(const Variable& x, std::vector<int64_t> idx) {
  const Tensor& v = x.value();
  GR_CHECK_EQ(v.rows(), static_cast<int64_t>(idx.size()));
  Tensor out(v.rows(), 1);
  for (int64_t i = 0; i < v.rows(); ++i) {
    GR_CHECK(idx[static_cast<size_t>(i)] >= 0 &&
             idx[static_cast<size_t>(i)] < v.cols());
    out.at(i, 0) = v.at(i, idx[static_cast<size_t>(i)]);
  }
  return MakeOpNode(std::move(out), {x}, [idx = std::move(idx)](AutogradNode* n) {
    if (!n->parents[0]->requires_grad) return;
    n->parents[0]->EnsureGrad();
    Tensor& pg = n->parents[0]->grad;
    for (int64_t i = 0; i < pg.rows(); ++i) {
      pg.at(i, idx[static_cast<size_t>(i)]) += n->grad.at(i, 0);
    }
  });
}

Variable RowScale(const Variable& x, const Variable& s) {
  const Tensor& v = x.value();
  GR_CHECK_EQ(s.value().rows(), v.rows());
  GR_CHECK_EQ(s.value().cols(), 1);
  Tensor out = v;
  for (int64_t r = 0; r < v.rows(); ++r) {
    const float sv = s.value().at(r, 0);
    float* p = out.row(r);
    for (int64_t c = 0; c < v.cols(); ++c) p[c] *= sv;
  }
  return MakeOpNode(std::move(out), {x, s}, [](AutogradNode* n) {
    const Tensor& xv = n->parents[0]->value;
    const Tensor& sv = n->parents[1]->value;
    if (n->parents[0]->requires_grad) {
      n->parents[0]->EnsureGrad();
      Tensor& pg = n->parents[0]->grad;
      for (int64_t r = 0; r < pg.rows(); ++r) {
        const float svr = sv.at(r, 0);
        const float* g = n->grad.row(r);
        float* p = pg.row(r);
        for (int64_t c = 0; c < pg.cols(); ++c) p[c] += g[c] * svr;
      }
    }
    if (n->parents[1]->requires_grad) {
      n->parents[1]->EnsureGrad();
      Tensor& pg = n->parents[1]->grad;
      for (int64_t r = 0; r < xv.rows(); ++r) {
        const float* g = n->grad.row(r);
        const float* xr = xv.row(r);
        float dot = 0.0f;
        for (int64_t c = 0; c < xv.cols(); ++c) dot += g[c] * xr[c];
        pg.at(r, 0) += dot;
      }
    }
  });
}

Variable ScaleByScalar(const Variable& x, const Variable& s) {
  GR_CHECK(s.value().is_scalar());
  Tensor out = x.value();
  out.ScaleInPlace(s.value().scalar());
  return MakeOpNode(std::move(out), {x, s}, [](AutogradNode* n) {
    const float sv = n->parents[1]->value.scalar();
    if (n->parents[0]->requires_grad) {
      n->parents[0]->EnsureGrad();
      n->parents[0]->grad.AxpyInPlace(sv, n->grad);
    }
    if (n->parents[1]->requires_grad) {
      const Tensor& xv = n->parents[0]->value;
      double dot = 0.0;
      for (int64_t i = 0; i < xv.numel(); ++i) dot += xv[i] * n->grad[i];
      n->parents[1]->EnsureGrad();
      n->parents[1]->grad[0] += static_cast<float>(dot);
    }
  });
}

Variable SegmentSoftmax(const Variable& scores, std::vector<int64_t> seg,
                        int64_t num_segments) {
  const Tensor& sc = scores.value();
  GR_CHECK_EQ(sc.cols(), 1);
  GR_CHECK_EQ(sc.rows(), static_cast<int64_t>(seg.size()));
  const int64_t e = sc.rows();

  std::vector<float> seg_max(static_cast<size_t>(num_segments),
                             -std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = seg[static_cast<size_t>(i)];
    GR_CHECK(s >= 0 && s < num_segments) << "segment index out of range";
    seg_max[static_cast<size_t>(s)] =
        std::max(seg_max[static_cast<size_t>(s)], sc.at(i, 0));
  }
  std::vector<double> seg_sum(static_cast<size_t>(num_segments), 0.0);
  Tensor out(e, 1);
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = seg[static_cast<size_t>(i)];
    out.at(i, 0) = std::exp(sc.at(i, 0) - seg_max[static_cast<size_t>(s)]);
    seg_sum[static_cast<size_t>(s)] += out.at(i, 0);
  }
  for (int64_t i = 0; i < e; ++i) {
    const int64_t s = seg[static_cast<size_t>(i)];
    out.at(i, 0) = static_cast<float>(out.at(i, 0) /
                                      seg_sum[static_cast<size_t>(s)]);
  }
  Tensor saved = out;
  return MakeOpNode(
      std::move(out), {scores},
      [seg = std::move(seg), num_segments,
       saved = std::move(saved)](AutogradNode* n) {
        if (!n->parents[0]->requires_grad) return;
        // d score_i = alpha_i * (G_i - sum_{j in seg(i)} alpha_j G_j)
        std::vector<double> seg_dot(static_cast<size_t>(num_segments), 0.0);
        const int64_t e = saved.rows();
        for (int64_t i = 0; i < e; ++i) {
          seg_dot[static_cast<size_t>(seg[static_cast<size_t>(i)])] +=
              static_cast<double>(saved.at(i, 0)) * n->grad.at(i, 0);
        }
        n->parents[0]->EnsureGrad();
        Tensor& pg = n->parents[0]->grad;
        for (int64_t i = 0; i < e; ++i) {
          const double dot =
              seg_dot[static_cast<size_t>(seg[static_cast<size_t>(i)])];
          pg.at(i, 0) += static_cast<float>(
              saved.at(i, 0) * (n->grad.at(i, 0) - dot));
        }
      });
}

Variable GatSegmentAttention(const Variable& h, const Variable& sl,
                             const Variable& sr, std::vector<int64_t> src,
                             std::vector<int64_t> dst, int64_t num_nodes,
                             float negative_slope, float dropout_p,
                             bool training, Rng* rng) {
  const Tensor& hv = h.value();
  GR_CHECK_EQ(sl.value().cols(), 1);
  GR_CHECK_EQ(sr.value().cols(), 1);
  GR_CHECK_EQ(sl.value().rows(), hv.rows());
  GR_CHECK_EQ(sr.value().rows(), hv.rows());
  GR_CHECK_EQ(src.size(), dst.size());
  GR_CHECK(dropout_p >= 0.0f && dropout_p < 1.0f)
      << "dropout p must be in [0,1), got " << dropout_p;
  const int64_t e = static_cast<int64_t>(src.size());
  const int64_t f = hv.cols();
  for (int64_t i = 0; i < e; ++i) {
    GR_CHECK(src[static_cast<size_t>(i)] >= 0 &&
             src[static_cast<size_t>(i)] < hv.rows())
        << "edge src out of range";
    GR_CHECK(dst[static_cast<size_t>(i)] >= 0 &&
             dst[static_cast<size_t>(i)] < num_nodes)
        << "edge dst out of range";
  }
  const float* psl = sl.value().data();
  const float* psr = sr.value().data();

  // Attention scores + segment softmax, numerically step-for-step the
  // LeakyRelu(sl[src] + sr[dst]) -> SegmentSoftmax chain: float segment
  // max, float exp(score - max), double segment sum in ascending edge
  // order, float(w / sum) weights.
  std::vector<float> escore(static_cast<size_t>(e));
  std::vector<float> seg_max(static_cast<size_t>(num_nodes),
                             -std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < e; ++i) {
    const float pre = psl[src[static_cast<size_t>(i)]] +
                      psr[dst[static_cast<size_t>(i)]];
    const float sc = pre > 0.0f ? pre : negative_slope * pre;
    escore[static_cast<size_t>(i)] = sc;
    const size_t s = static_cast<size_t>(dst[static_cast<size_t>(i)]);
    seg_max[s] = std::max(seg_max[s], sc);
  }
  std::vector<double> seg_sum(static_cast<size_t>(num_nodes), 0.0);
  Tensor alpha(e, 1);
  float* pa = alpha.data();
  for (int64_t i = 0; i < e; ++i) {
    const size_t s = static_cast<size_t>(dst[static_cast<size_t>(i)]);
    pa[i] = std::exp(escore[static_cast<size_t>(i)] - seg_max[s]);
    seg_sum[s] += pa[i];
  }
  for (int64_t i = 0; i < e; ++i) {
    const size_t s = static_cast<size_t>(dst[static_cast<size_t>(i)]);
    pa[i] = static_cast<float>(pa[i] / seg_sum[s]);
  }

  // Attention dropout: one Bernoulli per edge in edge order — the same
  // draws ops::Dropout would make on the (e, 1) alpha tensor, so the RNG
  // stream downstream of this op is unchanged by the fusion.
  const bool use_dropout = training && dropout_p > 0.0f;
  Tensor mask;
  if (use_dropout) {
    GR_CHECK(rng != nullptr);
    const float keep = 1.0f - dropout_p;
    mask = Tensor(e, 1);
    float* pm = mask.data();
    for (int64_t i = 0; i < e; ++i) {
      pm[i] = rng->Bernoulli(dropout_p) ? 0.0f : 1.0f / keep;
    }
  }
  const float* pm = use_dropout ? mask.data() : nullptr;

  // Messages scattered straight into the output, ascending edge order
  // exactly like ScatterAddRows (the dst segments are interleaved, so the
  // scatter stays serial — same cost the chain paid).
  Tensor out(num_nodes, f);
  float* po = out.data();
  const float* ph = hv.data();
  for (int64_t i = 0; i < e; ++i) {
    const float a =
        use_dropout ? pa[i] * pm[i] : pa[i];
    const float* hr = ph + src[static_cast<size_t>(i)] * f;
    float* orow = po + dst[static_cast<size_t>(i)] * f;
    for (int64_t c = 0; c < f; ++c) orow[c] += a * hr[c];
  }

  return MakeOpNode(
      std::move(out), {h, sl, sr},
      [src = std::move(src), dst = std::move(dst), alpha = std::move(alpha),
       mask = std::move(mask), use_dropout, negative_slope,
       num_nodes](AutogradNode* n) {
        const Tensor& hv = n->parents[0]->value;
        const float* psl = n->parents[1]->value.data();
        const float* psr = n->parents[2]->value.data();
        const int64_t e = alpha.rows();
        const int64_t f = hv.cols();
        const float* pa = alpha.data();
        const float* pm = use_dropout ? mask.data() : nullptr;
        const bool need_h = n->parents[0]->requires_grad;
        const bool need_sl = n->parents[1]->requires_grad;
        const bool need_sr = n->parents[2]->requires_grad;

        // ScatterAdd + RowScale + Gather backward in one edge pass:
        // d_alpha_i is the float ascending-c dot the RowScale backward
        // computes, and h's gradient receives each edge's contribution in
        // the same ascending edge order the chain's gather-scatter used.
        std::vector<float> d_alpha(static_cast<size_t>(e));
        Tensor* hg = nullptr;
        if (need_h) hg = n->parents[0]->EnsureGrad();
        const float* pg = n->grad.data();
        for (int64_t i = 0; i < e; ++i) {
          const float* g = pg + dst[static_cast<size_t>(i)] * f;
          const float* hr =
              hv.data() + src[static_cast<size_t>(i)] * f;
          float dot = 0.0f;
          for (int64_t c = 0; c < f; ++c) dot += g[c] * hr[c];
          const float ad = use_dropout ? pa[i] * pm[i] : pa[i];
          // Dropout backward folds into the same pass: d(alpha) = dot * m.
          d_alpha[static_cast<size_t>(i)] =
              use_dropout ? dot * pm[i] : dot;
          if (need_h) {
            float* hgr = hg->data() + src[static_cast<size_t>(i)] * f;
            for (int64_t c = 0; c < f; ++c) hgr[c] += g[c] * ad;
          }
        }
        if (!need_sl && !need_sr) return;

        // SegmentSoftmax backward: double segment dots in ascending edge
        // order, then d_e -> leaky-relu mask -> scatter into sl / sr. The
        // pre-activation is recomputed from the saved parents (a float add
        // — bit-identical to the forward's), so only alpha and the mask
        // were kept on the tape.
        std::vector<double> seg_dot(static_cast<size_t>(num_nodes), 0.0);
        for (int64_t i = 0; i < e; ++i) {
          seg_dot[static_cast<size_t>(dst[static_cast<size_t>(i)])] +=
              static_cast<double>(pa[i]) * d_alpha[static_cast<size_t>(i)];
        }
        float* slg = need_sl ? n->parents[1]->EnsureGrad()->data() : nullptr;
        float* srg = need_sr ? n->parents[2]->EnsureGrad()->data() : nullptr;
        for (int64_t i = 0; i < e; ++i) {
          const size_t si = static_cast<size_t>(src[static_cast<size_t>(i)]);
          const size_t di = static_cast<size_t>(dst[static_cast<size_t>(i)]);
          const float de = static_cast<float>(
              pa[i] * (d_alpha[static_cast<size_t>(i)] - seg_dot[di]));
          const float pre = psl[si] + psr[di];
          const float dpre = de * (pre > 0.0f ? 1.0f : negative_slope);
          if (need_sl) slg[si] += dpre;
          if (need_sr) srg[di] += dpre;
        }
      });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  GR_CHECK_LE(lo, hi);
  return UnaryElementwise(
      a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); },
      [lo, hi](float x, float) {
        return (x >= lo && x <= hi) ? 1.0f : 0.0f;
      });
}

Variable Min(const Variable& a, const Variable& b) {
  GR_CHECK(a.value().SameShape(b.value()));
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  Tensor out(av.rows(), av.cols());
  Tensor mask(av.rows(), av.cols());  // 1 where a is selected
  for (int64_t i = 0; i < out.numel(); ++i) {
    if (av[i] <= bv[i]) {
      out[i] = av[i];
      mask[i] = 1.0f;
    } else {
      out[i] = bv[i];
      mask[i] = 0.0f;
    }
  }
  return MakeOpNode(std::move(out), {a, b},
                    [mask = std::move(mask)](AutogradNode* n) {
                      if (n->parents[0]->requires_grad) {
                        Tensor d = n->grad;
                        d.MulInPlace(mask);
                        Accumulate(n->parents[0], d);
                      }
                      if (n->parents[1]->requires_grad) {
                        Tensor d = n->grad;
                        float* p = d.data();
                        const float* m = mask.data();
                        for (int64_t i = 0; i < d.numel(); ++i) {
                          p[i] *= (1.0f - m[i]);
                        }
                        Accumulate(n->parents[1], d);
                      }
                    });
}

Variable CrossEntropy(const Variable& logits, const std::vector<int64_t>& index,
                      const std::vector<int64_t>& labels) {
  // Fused kernel: bitwise the LogSoftmaxRows -> GatherRows -> NllLoss chain
  // without materialising the (m, c) log-probability matrix or touching
  // unselected rows in the backward pass.
  return LogSoftmaxNll(logits, index, labels);
}

Variable MseLoss(const Variable& a, const Variable& b) {
  return MeanAll(Square(Sub(a, b)));
}

}  // namespace ops
}  // namespace tensor
}  // namespace graphrare

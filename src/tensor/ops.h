// Copyright 2026 The GraphRARE Authors.
//
// Differentiable operations over Variable. Every op returns a fresh tape
// node whose backward accumulates into the parents' gradients. Shapes follow
// the library convention: everything is 2-D, vectors are (n,1) columns,
// scalars are (1,1).

#ifndef GRAPHRARE_TENSOR_OPS_H_
#define GRAPHRARE_TENSOR_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "tensor/autograd.h"
#include "tensor/sparse.h"

namespace graphrare {
namespace tensor {
namespace ops {

// -- Arithmetic -----------------------------------------------------------

/// Elementwise a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// Elementwise a - b (same shape).
Variable Sub(const Variable& a, const Variable& b);
/// Elementwise a * b (same shape).
Variable Mul(const Variable& a, const Variable& b);
/// a + bias, bias shape (1, n) broadcast over rows of a (m, n).
Variable AddBias(const Variable& a, const Variable& bias);
/// Fused relu(a + bias): one pass forward, and one backward sweep that
/// produces both d_a and the bias column sums. Bitwise identical to
/// Relu(AddBias(a, bias)) — the fusion only removes the intermediate tape
/// node and its buffers from the dense-layer hot path.
Variable AddBiasRelu(const Variable& a, const Variable& bias);
/// c * a for a compile-time constant c.
Variable Scale(const Variable& a, float c);
/// a + c elementwise.
Variable AddScalar(const Variable& a, float c);
/// -a.
Variable Neg(const Variable& a);
/// a^2 elementwise.
Variable Square(const Variable& a);

// -- Matrix products ------------------------------------------------------

/// Dense matmul (m,k)x(k,n) -> (m,n).
Variable MatMul(const Variable& a, const Variable& b);
/// Sparse-dense product y = S x, S fixed (no gradient flows into S).
/// The CSR matrix is captured by shared_ptr; its transpose is cached inside.
Variable SpMM(std::shared_ptr<const CsrMatrix> s, const Variable& x);

// -- Nonlinearities -------------------------------------------------------

Variable Relu(const Variable& a);
Variable LeakyRelu(const Variable& a, float negative_slope = 0.2f);
Variable Elu(const Variable& a, float alpha = 1.0f);
Variable Tanh(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Exp(const Variable& a);
/// Natural log; inputs must be positive.
Variable Log(const Variable& a);

/// Inverted dropout. Identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

// -- Softmax family -------------------------------------------------------

/// Row-wise log-softmax (numerically stable).
Variable LogSoftmaxRows(const Variable& a);
/// Row-wise softmax.
Variable SoftmaxRows(const Variable& a);

/// Negative log-likelihood over *all* rows of logp (m, c) with integer
/// labels (size m): -(1/m) sum_i logp[i, labels[i]]. Returns a scalar.
Variable NllLoss(const Variable& logp, const std::vector<int64_t>& labels);

/// Fused log-softmax + NLL over the rows of `logits` selected by `index`
/// (labels[i] is the class of row index[i]); mean reduction over the
/// selection. One pass per selected row — the (m, c) log-probability matrix
/// of the LogSoftmaxRows/GatherRows/NllLoss chain is never materialised and
/// the backward touches only the selected rows. For distinct indices (every
/// real call site: train/seed node sets) the loss and gradients match that
/// chain bitwise; duplicate indices still accumulate correctly (one
/// occurrence at a time, in index order) but may differ from the chain in
/// the last ulp, since the chain folds duplicates into one row update.
/// CrossEntropy routes here.
Variable LogSoftmaxNll(const Variable& logits, std::vector<int64_t> index,
                       std::vector<int64_t> labels);

// -- Reductions -----------------------------------------------------------

/// Sum of all elements -> scalar.
Variable SumAll(const Variable& a);
/// Mean of all elements -> scalar.
Variable MeanAll(const Variable& a);
/// Row sums (m,n) -> (m,1).
Variable RowSumCols(const Variable& a);

// -- Shape / indexing -----------------------------------------------------

/// Horizontal concatenation [a1 | a2 | ...]; all inputs share row count.
Variable ConcatCols(const std::vector<Variable>& parts);
/// Y[i,:] = X[idx[i],:]. Backward scatter-adds.
Variable GatherRows(const Variable& x, std::vector<int64_t> idx);
/// Y (n,f) with Y[idx[i],:] += X[i,:] (X is (e,f)).
Variable ScatterAddRows(const Variable& x, std::vector<int64_t> idx,
                        int64_t num_rows);
/// y[i] = X[i, idx[i]] -> (m,1). One element per row.
Variable GatherCols(const Variable& x, std::vector<int64_t> idx);
/// Y[i,:] = X[i,:] * s[i] with s shape (m,1).
Variable RowScale(const Variable& x, const Variable& s);
/// Y = s * X where s is a trainable (1,1) scalar Variable.
Variable ScaleByScalar(const Variable& x, const Variable& s);

// -- Segment operations (edge-level GNN math) -----------------------------

/// Softmax of scores (e,1) within segments given by seg[i] in [0, n).
/// Segments need not be contiguous. Used for GAT attention normalisation.
Variable SegmentSoftmax(const Variable& scores, std::vector<int64_t> seg,
                        int64_t num_segments);

/// Fused GAT attention edge kernel. Computes, for per-node features h
/// (n, f) and per-node attention scores sl / sr (n, 1):
///
///   e_i     = leaky_relu(sl[src[i]] + sr[dst[i]], negative_slope)
///   alpha_i = segment_softmax(e, dst)_i          (optionally dropped out)
///   out[v]  = sum_{i : dst[i] == v} alpha_i * h[src[i], :]
///
/// in one pass over the edges, replacing the GatherRows -> Add -> LeakyRelu
/// -> SegmentSoftmax -> (Dropout) -> GatherRows -> RowScale ->
/// ScatterAddRows chain. Forward and backward are bitwise identical to that
/// chain: per-edge arithmetic uses the same expressions, all segment
/// reductions and scatter accumulations run in the same ascending-edge
/// order, and dropout (applied when `training` and dropout_p > 0) draws
/// exactly one Bernoulli(dropout_p) per edge in edge order, so the RNG
/// stream matches ops::Dropout on the (e, 1) alpha tensor. Only the (e, 1)
/// attention weights and dropout mask are saved for backward — none of the
/// chain's (e, f) edge-message intermediates are materialised or taped.
Variable GatSegmentAttention(const Variable& h, const Variable& sl,
                             const Variable& sr, std::vector<int64_t> src,
                             std::vector<int64_t> dst, int64_t num_nodes,
                             float negative_slope, float dropout_p,
                             bool training, Rng* rng);

// -- Clipping (PPO) -------------------------------------------------------

/// Elementwise clamp; gradient passes only where lo < a < hi.
Variable Clamp(const Variable& a, float lo, float hi);
/// Elementwise minimum of a and b; gradient flows to the smaller input
/// (ties -> a).
Variable Min(const Variable& a, const Variable& b);

// -- Convenience ----------------------------------------------------------

/// Cross-entropy over the rows of `logits` selected by `index` with labels
/// `labels` (labels[i] is the class of row index[i]). Mean reduction.
Variable CrossEntropy(const Variable& logits, const std::vector<int64_t>& index,
                      const std::vector<int64_t>& labels);

/// Mean squared error between a and b (same shape) -> scalar.
Variable MseLoss(const Variable& a, const Variable& b);

}  // namespace ops
}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_OPS_H_

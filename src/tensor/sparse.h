// Copyright 2026 The GraphRARE Authors.
//
// Compressed sparse row matrix for graph adjacency operators. Used by the
// GNN layers (SpMM is the message-passing hot loop) and by GCN
// normalisation. Values are float so normalised adjacencies fit directly.
//
// Thread-safety: a CsrMatrix is immutable after construction, and the lazy
// Transposed() cache is initialised under std::call_once, so any number of
// threads may share one matrix for reads (SpMM forward + backward on a
// shared adjacency included). The mutating helpers (assignment, moves) are
// not synchronised — don't reassign a matrix other threads are reading.

#ifndef GRAPHRARE_TENSOR_SPARSE_H_
#define GRAPHRARE_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace graphrare {
namespace tensor {

/// A COO triple used when assembling sparse matrices.
struct CooEntry {
  int64_t row;
  int64_t col;
  float value;
};

/// Immutable CSR matrix. Rows are sorted by construction; duplicate COO
/// entries are summed.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) {}

  // Copies and moves transfer the matrix but not the transpose cache: a
  // fired std::once_flag cannot be re-armed, so the destination gets a
  // fresh slot and simply recomputes the transpose on first use.
  CsrMatrix(const CsrMatrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        row_ptr_(other.row_ptr_),
        col_idx_(other.col_idx_),
        values_(other.values_) {}
  CsrMatrix& operator=(const CsrMatrix& other) {
    if (this != &other) *this = CsrMatrix(other);
    return *this;
  }
  CsrMatrix(CsrMatrix&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        row_ptr_(std::move(other.row_ptr_)),
        col_idx_(std::move(other.col_idx_)),
        values_(std::move(other.values_)) {
    other.rows_ = 0;
    other.cols_ = 0;
  }
  CsrMatrix& operator=(CsrMatrix&& other) noexcept {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      row_ptr_ = std::move(other.row_ptr_);
      col_idx_ = std::move(other.col_idx_);
      values_ = std::move(other.values_);
      transpose_slot_ = std::make_unique<TransposeSlot>();
      other.rows_ = 0;
      other.cols_ = 0;
    }
    return *this;
  }

  /// Builds from COO entries (any order; duplicates summed).
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           std::vector<CooEntry> entries);

  /// Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Y = A * X (dense). X is (cols x f) -> Y (rows x f). The feature
  /// dimension runs through 8-wide vector panels with the accumulators held
  /// in registers across each row's nonzeros; per-(row, feature)
  /// accumulation stays in ascending CSR order, so the result is bitwise
  /// identical to the scalar loop under any thread count.
  Tensor SpMM(const Tensor& x) const;

  /// y = A * x for a column vector (cols x 1).
  Tensor SpMV(const Tensor& x) const { return SpMM(x); }

  /// Transposed copy. Cached: repeated calls return the same shared matrix
  /// (backward passes need A^T on every step). Thread-safe: concurrent
  /// first calls race only into a std::call_once.
  std::shared_ptr<const CsrMatrix> Transposed() const;

  /// Sparse-sparse product (this * other). Used for 2-hop adjacency in
  /// H2GCN. Result values are the path counts / weight sums.
  CsrMatrix Multiply(const CsrMatrix& other) const;

  /// Returns a copy with all values replaced by `v`.
  CsrMatrix WithUniformValues(float v) const;

  /// Row-sliced copy: result row i is this matrix's row rows[i] (entries and
  /// in-row ordering preserved exactly). Rows may repeat and appear in any
  /// order. Used to build per-batch feature matrices for sampled subgraphs.
  CsrMatrix SelectRows(const std::vector<int64_t>& rows) const;

  /// Symmetric permutation copy: result(perm[r], perm[c]) = this(r, c).
  /// `perm` maps old index -> new index and must be a permutation of
  /// [0, n) for both dimensions it is applied to (rows when
  /// `permute_rows`, columns when `permute_cols`). Values are copied
  /// bit-exactly; only their positions move. Used by graph::ReorderCsr.
  CsrMatrix Permuted(const std::vector<int64_t>& perm, bool permute_rows,
                     bool permute_cols) const;

  /// Element lookup (binary search within the row). Zero when absent.
  float At(int64_t r, int64_t c) const;

  /// Dense copy (tests and small visualisations only).
  Tensor ToDense() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;  // size rows_+1
  std::vector<int64_t> col_idx_;  // size nnz, sorted within each row
  std::vector<float> values_;    // size nnz

  // Lazy transpose cache. The std::call_once makes the initial build safe
  // when two threads hit the SpMM backward on a shared adjacency at once;
  // after the call_once returns, the shared_ptr is read-only. The slot
  // lives behind a unique_ptr because a fired once_flag cannot be re-armed:
  // assignment installs a fresh slot instead (see operator=).
  struct TransposeSlot {
    std::once_flag once;
    std::shared_ptr<const CsrMatrix> value;
  };
  mutable std::unique_ptr<TransposeSlot> transpose_slot_ =
      std::make_unique<TransposeSlot>();
};

}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_SPARSE_H_

// Copyright 2026 The GraphRARE Authors.
//
// Compressed sparse row matrix for graph adjacency operators. Used by the
// GNN layers (SpMM is the message-passing hot loop) and by GCN
// normalisation. Values are float so normalised adjacencies fit directly.

#ifndef GRAPHRARE_TENSOR_SPARSE_H_
#define GRAPHRARE_TENSOR_SPARSE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace graphrare {
namespace tensor {

/// A COO triple used when assembling sparse matrices.
struct CooEntry {
  int64_t row;
  int64_t col;
  float value;
};

/// Immutable CSR matrix. Rows are sorted by construction; duplicate COO
/// entries are summed.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) {}

  /// Builds from COO entries (any order; duplicates summed).
  static CsrMatrix FromCoo(int64_t rows, int64_t cols,
                           std::vector<CooEntry> entries);

  /// Identity matrix of size n.
  static CsrMatrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Y = A * X (dense). X is (cols x f) -> Y (rows x f).
  Tensor SpMM(const Tensor& x) const;

  /// y = A * x for a column vector (cols x 1).
  Tensor SpMV(const Tensor& x) const { return SpMM(x); }

  /// Transposed copy. Cached: repeated calls return the same shared matrix
  /// (backward passes need A^T on every step).
  std::shared_ptr<const CsrMatrix> Transposed() const;

  /// Sparse-sparse product (this * other). Used for 2-hop adjacency in
  /// H2GCN. Result values are the path counts / weight sums.
  CsrMatrix Multiply(const CsrMatrix& other) const;

  /// Returns a copy with all values replaced by `v`.
  CsrMatrix WithUniformValues(float v) const;

  /// Row-sliced copy: result row i is this matrix's row rows[i] (entries and
  /// in-row ordering preserved exactly). Rows may repeat and appear in any
  /// order. Used to build per-batch feature matrices for sampled subgraphs.
  CsrMatrix SelectRows(const std::vector<int64_t>& rows) const;

  /// Element lookup (binary search within the row). Zero when absent.
  float At(int64_t r, int64_t c) const;

  /// Dense copy (tests and small visualisations only).
  Tensor ToDense() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;  // size rows_+1
  std::vector<int64_t> col_idx_;  // size nnz, sorted within each row
  std::vector<float> values_;    // size nnz

  mutable std::shared_ptr<const CsrMatrix> transposed_cache_;
};

}  // namespace tensor
}  // namespace graphrare

#endif  // GRAPHRARE_TENSOR_SPARSE_H_
